// Ablation (ours): does model-driven tuning actually matter?
//
//  (a) Parameter sensitivity: perturb the fitted contention slope and the
//      remote-transfer cost by +/-50%, re-optimize the tree, and measure
//      the resulting broadcast on the *true* machine. If the tuned tree
//      were insensitive, the capability model would be over-engineered.
//  (b) Fixed-shape baselines: measured cost of classic tree shapes
//      (flat, binary, binomial-ish via fanout-(k) regular trees) vs the
//      model-tuned tree.
//  (c) --attr-report: model-vs-attribution cross-validation. For each of
//      the 15 cluster x memory configurations, fit the capability model,
//      run a mixed coherence workload with the attribution ledger
//      attached, and compare each fitted latency constant against the
//      measured mean attributed time of the access category it predicts.
//      Rows whose relative disagreement exceeds --band are flagged (the
//      workload is contended, so measured means sit above the uncontended
//      constants; the report is diagnostic, not a gate).
#include <iostream>

#include "bench_common.hpp"
#include "check/workload.hpp"
#include "coll/harness.hpp"
#include "coll/runtime.hpp"
#include "coll/tuned.hpp"
#include "model/fit.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

namespace {

// Measures a broadcast over a *given* tree (bypassing the optimizer).
double measure_tree(const MachineConfig& cfg, const TunedTree& tree,
                    int nthreads, int iters) {
  Machine machine(cfg);
  coll::World w;
  w.machine = &machine;
  w.slots = make_schedule(cfg, Schedule::kScatter, nthreads);
  w.place = Placement{MemKind::kMCDRAM, std::nullopt};
  coll::Recorder rec(nthreads, iters);
  coll::TunedBroadcast impl(w, tree);
  for (int r = 0; r < nthreads; ++r) {
    machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                       impl.program(r, iters, &rec));
  }
  machine.run();
  CAPMEM_CHECK(rec.errors() == 0);
  return rec.per_iter_max().median;
}

// Regular tree: every node has fanout k (sizes balanced).
TreeNode regular_tree(int n, int k) {
  TreeNode node;
  node.size = n;
  int remaining = n - 1;
  for (int i = 0; i < k && remaining > 0; ++i) {
    const int share = (remaining + (k - i) - 1) / (k - i);
    node.children.push_back(regular_tree(share, k));
    remaining -= share;
  }
  return node;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int fit_iters = static_cast<int>(cli.get_int("fit_iters", 21));
  const int iters = static_cast<int>(cli.get_int("iters", 51));
  const int nthreads = static_cast<int>(cli.get_int("threads", 64));
  const bool attr_report = cli.get_flag(
      "attr-report", false,
      "cross-validate fitted constants against measured attribution over "
      "all cluster x memory configurations (skips the ablation tables)");
  const double band = cli.get_double(
      "band", 0.5, "relative disagreement flagged in --attr-report");
  cli.finish();

  if (attr_report) {
    obs.set_config("attr-report all-modes");
    obs.phase("attr-report");
    Table tr("Model vs attribution — fitted constants vs measured means");
    tr.set_header({"config", "term", "fitted ns", "measured ns", "samples",
                   "ratio", "verdict"});
    int flagged = 0;
    for (ClusterMode cm : all_cluster_modes()) {
      for (MemoryMode mm :
           {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
        const std::string config_name =
            std::string(to_string(cm)) + "/" + to_string(mm);
        MachineConfig ccfg = knl7210(cm, mm);
        bench::SuiteOptions cso;
        cso.run.iters = fit_iters;
        const CapabilityModel cmodel = fit_cache_model(ccfg, cso);

        obs::attr::Sink sink;
        using obs::attr::TimeCat;
        sink.add_crossval("r_local", cmodel.r_local, TimeCat::kL1);
        sink.add_crossval("r_l2", cmodel.r_l2, TimeCat::kL2Tile);
        sink.add_crossval("r_remote", cmodel.r_remote, TimeCat::kRemoteL2);
        if (mm == MemoryMode::kFlat) {
          sink.add_crossval("r_mem_dram", cmodel.r_mem_dram, TimeCat::kDram);
          sink.add_crossval("r_mem_mcdram", cmodel.r_mem_mcdram,
                            TimeCat::kMcdram);
        } else {
          // Cache and hybrid modes route DDR behind the MCDRAM cache: the
          // memory constants predict the hit and miss categories instead.
          sink.add_crossval("r_mem_mcdram", cmodel.r_mem_mcdram,
                            TimeCat::kMcCacheHit);
          sink.add_crossval("r_mem_dram", cmodel.r_mem_dram,
                            TimeCat::kMcCacheMiss);
        }

        check::WorkloadSpec spec;
        spec.threads = nthreads <= 10 ? nthreads : 10;
        spec.cluster = cm;
        spec.memory = mm;
        check::run_workload(spec, nullptr, nullptr, &sink);

        for (const obs::attr::Sink::CrossRow& row : sink.crossval()) {
          if (row.samples == 0 || row.fitted_ns <= 0) {
            tr.add_row({config_name, row.term, fmt_num(row.fitted_ns, 1),
                        "-", "0", "-", "n/a"});
            continue;
          }
          const double ratio = row.measured_ns / row.fitted_ns;
          const bool out = ratio < 1.0 - band || ratio > 1.0 + band;
          if (out) ++flagged;
          tr.add_row({config_name, row.term, fmt_num(row.fitted_ns, 1),
                      fmt_num(row.measured_ns, 1),
                      std::to_string(row.samples), fmt_num(ratio, 2),
                      out ? "FLAG" : "ok"});
        }
      }
    }
    benchbin::emit(tr);
    std::cout << "attr-report: " << flagged << " term(s) beyond +/-"
              << fmt_num(band * 100, 0) << "% band\n";
    obs.finish();
    return 0;
  }

  MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kFlat);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 SNC4/flat");
  obs.set_seed(cfg.seed);
  obs.phase("fit");
  bench::SuiteOptions so;
  so.run.iters = fit_iters;
  const CapabilityModel m = fit_cache_model(cfg, so);
  const int tiles = cfg.active_tiles;

  obs.phase("perturb");
  Table t("Ablation (a) — tuning under perturbed model parameters");
  t.set_header({"model variant", "root fanout", "depth", "predicted ns",
                "measured bcast ns"});
  struct Variant {
    const char* name;
    double beta_scale;
    double rr_scale;
  };
  for (const Variant v : {Variant{"fitted", 1.0, 1.0},
                          Variant{"beta x0.5", 0.5, 1.0},
                          Variant{"beta x2", 2.0, 1.0},
                          Variant{"R_R x0.5", 1.0, 0.5},
                          Variant{"R_R x2", 1.0, 2.0},
                          Variant{"no contention", 0.0, 1.0}}) {
    CapabilityModel mv = m;
    mv.contention.beta *= v.beta_scale;
    mv.r_remote *= v.rr_scale;
    const TunedTree tree =
        optimize_tree(mv, tiles, TreeKind::kBroadcast, MemKind::kMCDRAM);
    const double measured = measure_tree(cfg, tree, nthreads, iters);
    t.add_row({v.name, fmt_num(tree.root.fanout(), 0),
               fmt_num(tree_depth(tree.root), 0),
               fmt_num(tree.predicted_ns, 0), fmt_num(measured, 0)});
  }
  benchbin::emit(t);

  obs.phase("shapes");
  Table t2("Ablation (b) — fixed tree shapes vs the model-tuned tree");
  t2.set_header({"shape", "depth", "measured bcast ns"});
  {
    const TunedTree tuned =
        optimize_tree(m, tiles, TreeKind::kBroadcast, MemKind::kMCDRAM);
    t2.add_row({"model-tuned", fmt_num(tree_depth(tuned.root), 0),
                fmt_num(measure_tree(cfg, tuned, nthreads, iters), 0)});
    for (int k : {1, 2, 4, 8, tiles - 1}) {
      TunedTree fixed;
      fixed.root = regular_tree(tiles, k);
      const std::string name =
          k == tiles - 1 ? "flat" : "regular k=" + std::to_string(k);
      t2.add_row({name, fmt_num(tree_depth(fixed.root), 0),
                  fmt_num(measure_tree(cfg, fixed, nthreads, iters), 0)});
    }
  }
  benchbin::emit(t2);
  return 0;
}
