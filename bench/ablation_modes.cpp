// Ablation (ours): the capability model and the tuned collectives across
// all fifteen KNL configurations (5 cluster x 3 memory modes). The paper
// reports that mode differences are small for communication ("usually
// below 10%"); this bench quantifies that for the fitted parameters, the
// tuned tree shapes, and the measured collective cost.
#include <iostream>

#include "bench_common.hpp"
#include "coll/harness.hpp"
#include "exec/experiment.hpp"
#include "model/fit.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

namespace {

// One fully-measured configuration cell, built independently per config so
// the 15 configs can fan out across host workers.
struct ConfigRow {
  ClusterMode cm;
  MemoryMode mm;
  std::vector<std::string> cells;
  std::size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int fit_iters = static_cast<int>(cli.get_int("fit_iters", 21));
  const int iters = static_cast<int>(cli.get_int("iters", 51));
  const int nthreads = static_cast<int>(cli.get_int("threads", 64));
  const int jobs = cli.get_jobs();
  cli.finish();
  obs.set_config("knl7210 all-modes");
  obs.set_jobs(jobs);
  obs.phase("configs");

  Table t("Ablation — model + tuned collectives across all 15 configs");
  t.set_header({"cluster", "memory", "R_R", "R_I", "beta", "tree fanout",
                "tree depth", "barrier ns", "bcast ns", "reduce ns"});

  std::vector<std::pair<ClusterMode, MemoryMode>> configs;
  for (ClusterMode cm : all_cluster_modes()) {
    for (MemoryMode mm :
         {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
      configs.emplace_back(cm, mm);
    }
  }
  // Parallelism is across configs; each config's own fit/runs stay serial.
  const std::vector<ConfigRow> rows = exec::parallel_map<ConfigRow>(
      static_cast<int>(configs.size()), jobs, [&](int i) {
        const auto [cm, mm] = configs[static_cast<std::size_t>(i)];
        MachineConfig cfg = knl7210(cm, mm);
        if (mm != MemoryMode::kFlat) cfg.scale_memory(64);
        benchbin::observe(obs, cfg);  // sinks are thread-safe
        bench::SuiteOptions so;
        so.run.iters = fit_iters;
        const CapabilityModel m = fit_cache_model(cfg, so);
        const MemKind cell_kind =
            mm == MemoryMode::kCache ? MemKind::kDDR : MemKind::kMCDRAM;
        const TunedTree tree = optimize_tree(
            m, cfg.active_tiles, TreeKind::kBroadcast, cell_kind);
        coll::HarnessOptions ho;
        ho.iters = iters;
        ho.cell_kind = cell_kind;
        const auto bar = coll::run_collective(
            cfg, coll::Algo::kTunedBarrier, nthreads, &m, ho);
        const auto bc = coll::run_collective(
            cfg, coll::Algo::kTunedBroadcast, nthreads, &m, ho);
        const auto rd = coll::run_collective(
            cfg, coll::Algo::kTunedReduce, nthreads, &m, ho);
        ConfigRow row;
        row.cm = cm;
        row.mm = mm;
        row.errors = bar.errors + bc.errors + rd.errors;
        row.cells = {to_string(cm), to_string(mm), fmt_num(m.r_remote, 0),
                     fmt_num(m.r_mem(cell_kind), 0),
                     fmt_num(m.contention.beta, 1),
                     fmt_num(tree.root.fanout(), 0),
                     fmt_num(tree_depth(tree.root), 0),
                     fmt_num(bar.per_iter_max.median, 0),
                     fmt_num(bc.per_iter_max.median, 0),
                     fmt_num(rd.per_iter_max.median, 0)};
        return row;
      });
  for (const ConfigRow& row : rows) {
    if (row.errors != 0) {
      std::cout << "!! validation errors in " << to_string(row.cm) << "/"
                << to_string(row.mm) << "\n";
      return 1;
    }
    t.add_row(row.cells);
  }
  benchbin::emit(t);
  std::cout << "Paper reference: differences between configuration modes "
               "are usually below 10% for communication algorithms\n";
  return 0;
}
