// Shared scaffolding for the bench binaries: every target prints the
// paper-style table to stdout (aligned text) followed by a CSV block, so
// the output is both human-checkable against the paper and plot-ready.
#pragma once

#include <iostream>
#include <string>

#include "bench/measurement.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/session.hpp"
#include "sim/config.hpp"

namespace capmem::benchbin {

/// Attaches an obs::Session's sinks to a machine config: every Machine the
/// harness builds from `cfg` then traces into --trace-out, aggregates into
/// --metrics-out, and merges its attribution ledger into --attr-out. A
/// no-op (null hooks) when the flags weren't given.
inline void observe(obs::Session& s, sim::MachineConfig& cfg) {
  cfg.trace = s.trace();
  cfg.metrics = s.metrics();
  cfg.attr = s.attr();
}

/// Registers the fitted capability constants of `p` with the attribution
/// sink's cross-validation section: each latency term is checked against
/// the measured mean time of the access category it predicts. No-op
/// without --attr-out.
inline void crossval_model(obs::Session& s, const sim::LatencyParams& lat) {
  obs::attr::Sink* sink = s.attr();
  if (sink == nullptr) return;
  sink->add_crossval("r_local(l1_hit)", lat.l1_hit, obs::attr::TimeCat::kL1);
  sink->add_crossval("r_l2(l2_tile_e)", lat.l2_tile_e,
                     obs::attr::TimeCat::kL2Tile);
  sink->add_crossval("r_remote(remote_base)", lat.remote_base,
                     obs::attr::TimeCat::kRemoteL2);
  sink->add_crossval("r_mem_dram(dram_service)", lat.dram_service,
                     obs::attr::TimeCat::kDram);
  sink->add_crossval("r_mem_mcdram(mcdram_service)", lat.mcdram_service,
                     obs::attr::TimeCat::kMcdram);
}

/// Registers the --machine / --protocol flags and builds the requested
/// MachineConfig. Defaults reproduce the historical single-machine
/// behaviour (knl_38t, MESIF) byte-for-byte. Call between Cli construction
/// and cli.finish().
inline sim::MachineConfig machine_from_cli(
    Cli& cli, sim::ClusterMode cluster,
    sim::MemoryMode memory = sim::MemoryMode::kFlat) {
  const std::string machine = cli.get_string(
      "machine", "knl_38t",
      "machine preset (knl_38t, tiny_8t, mini_16t, tall_24t, wide_64t)");
  const std::string protocol = cli.get_string(
      "protocol", "mesif", "coherence protocol (mesif, mesi, mosi)");
  sim::MachineConfig cfg = sim::machine_preset(machine, cluster, memory);
  cfg.protocol = sim::parse_protocol(protocol);
  return cfg;
}

/// Prints a table twice: aligned text and CSV (separated by a marker).
inline void emit(const Table& t) {
  t.print(std::cout);
  std::cout << "--- csv ---\n";
  t.print_csv(std::cout);
  std::cout << '\n';
}

/// Formats "median [q1,q3]" for boxplot-style cells.
inline std::string box_cell(const Summary& s, int prec = 0) {
  return fmt_num(s.median, prec) + " [" + fmt_num(s.q1, prec) + "," +
         fmt_num(s.q3, prec) + "]";
}

/// Adds a Series to a table as rows (x, median, q1, q3, min, max).
inline void series_rows(Table& t, const bench::Series& s,
                        const std::string& label, int prec = 1) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    t.add_row({label, fmt_num(s.xs[i], 0), fmt_num(s.ys[i].median, prec),
               fmt_num(s.ys[i].q1, prec), fmt_num(s.ys[i].q3, prec),
               fmt_num(s.ys[i].min, prec), fmt_num(s.ys[i].max, prec)});
  }
}

}  // namespace capmem::benchbin
