// Extension bench: model-tuned allreduce (reduce + broadcast composition)
// vs flat-OpenMP-style and binomial-MPI-style baselines — the natural next
// collective after the paper's three, built entirely from the same fitted
// capability model.
#include "fig_collective_common.hpp"

int main(int argc, char** argv) {
  using capmem::coll::Algo;
  return capmem::benchbin::run_collective_figure(
      argc, argv, Algo::kTunedAllreduce, Algo::kOmpAllreduce,
      Algo::kMpiAllreduce, "Extension — allreduce",
      "No paper reference (extension); expect roughly reduce+broadcast "
      "composition of Figures 7 and 8");
}
