// Extension bench: multi-line payload broadcast. Sweeps the message size
// from one line to 64 KB; for every size the tree is re-optimized with the
// fitted multi-line law inside Eq. 1, and the tuned tree is measured
// against the flat everyone-pulls-from-root baseline. Shows the optimizer
// narrowing the fanout as per-child copies get more expensive.
#include <iostream>

#include "bench_common.hpp"
#include "coll/harness.hpp"
#include "coll/payload_bcast.hpp"
#include "common/ascii_plot.hpp"
#include "exec/experiment.hpp"
#include "model/fit.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

namespace {

double measure(const MachineConfig& cfg, int nthreads, int iters,
               std::uint64_t bytes, const TunedTree* tree) {
  Machine machine(cfg);
  coll::World w;
  w.machine = &machine;
  w.slots = make_schedule(cfg, Schedule::kScatter, nthreads);
  w.place = Placement{MemKind::kMCDRAM, std::nullopt};
  coll::Recorder rec(nthreads, iters);
  if (tree != nullptr) {
    coll::TunedPayloadBroadcast impl(w, *tree, bytes);
    for (int r = 0; r < nthreads; ++r) {
      machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                         impl.program(r, iters, &rec));
    }
    machine.run();
  } else {
    coll::FlatPayloadBroadcast impl(w, bytes);
    for (int r = 0; r < nthreads; ++r) {
      machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                         impl.program(r, iters, &rec));
    }
    machine.run();
  }
  CAPMEM_CHECK_MSG(rec.errors() == 0, "payload validation failed");
  return rec.per_iter_max().median;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 51));
  const int nthreads = static_cast<int>(cli.get_int("threads", 64));
  const int jobs = cli.get_jobs();
  cli.finish();

  MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kFlat);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 SNC4/flat");
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  obs.phase("fit");
  bench::SuiteOptions so;
  so.run.iters = 21;
  so.jobs = jobs;
  const CapabilityModel m = fit_cache_model(cfg, so);
  std::cout << "multi-line law: " << fmt_num(m.multiline.alpha, 0) << " + "
            << fmt_num(m.multiline.beta, 2) << "*lines ns (r2="
            << fmt_num(m.multiline.r2, 3) << ")\n\n";

  obs.phase("sweep");
  Table t("Extension — payload broadcast vs message size (SNC4-flat, " +
          std::to_string(nthreads) + " threads) [ns]");
  t.set_header({"bytes", "tuned fanout", "tuned depth", "tuned measured",
                "model best", "flat measured", "speedup"});
  PlotSeries tuned_s{"tuned", {}, {}}, flat_s{"flat", {}, {}};
  const int tiles = std::min(nthreads, cfg.active_tiles);
  const std::vector<std::uint64_t> all_bytes{kLineBytes, KiB(1), KiB(4),
                                             KiB(16), KiB(64)};
  // Trees are optimized serially (pure model arithmetic); the tuned/flat
  // measurements per size fan out through the exec layer.
  std::vector<TunedTree> trees;
  for (std::uint64_t bytes : all_bytes) {
    trees.push_back(optimize_tree(m, tiles, TreeKind::kBroadcast,
                                  MemKind::kMCDRAM,
                                  static_cast<int>(lines_for(bytes))));
  }
  struct Measured {
    double tuned, flat;
  };
  const std::vector<Measured> measured = exec::parallel_map<Measured>(
      static_cast<int>(all_bytes.size()), jobs, [&](int i) {
        const std::uint64_t bytes = all_bytes[static_cast<std::size_t>(i)];
        return Measured{
            measure(cfg, nthreads, iters, bytes,
                    &trees[static_cast<std::size_t>(i)]),
            measure(cfg, nthreads, iters, bytes, nullptr)};
      });
  for (std::size_t i = 0; i < all_bytes.size(); ++i) {
    const std::uint64_t bytes = all_bytes[i];
    const TunedTree& tree = trees[i];
    const double tuned = measured[i].tuned;
    const double flat = measured[i].flat;
    t.add_row({fmt_num(static_cast<double>(bytes), 0),
               fmt_num(tree.root.fanout(), 0),
               fmt_num(tree_depth(tree.root), 0), fmt_num(tuned, 0),
               fmt_num(tree.predicted_ns, 0), fmt_num(flat, 0),
               fmt_num(flat / tuned, 2) + "x"});
    tuned_s.xs.push_back(static_cast<double>(bytes));
    tuned_s.ys.push_back(tuned);
    flat_s.xs.push_back(static_cast<double>(bytes));
    flat_s.ys.push_back(flat);
  }
  benchbin::emit(t);
  PlotOptions po;
  po.log_x = true;
  po.log_y = true;
  po.title = "payload broadcast: tuned vs flat";
  po.x_label = "message bytes";
  po.y_label = "ns (log)";
  ascii_plot(std::cout, {tuned_s, flat_s}, po);
  std::cout
      << "Finding: the tuned tree wins for small messages (the Eq. 1 "
         "regime); as the payload\ngrows the optimizer itself converges to "
         "a flat depth-1 shape, and the direct\neveryone-pulls baseline "
         "wins outright — forward-state migration parallelizes the\n"
         "supply, so staging copies and acks are pure overhead. The "
         "single-line capability\nmodel (the paper's scope) stops being "
         "the binding constraint around 4 KB.\n";
  return 0;
}
