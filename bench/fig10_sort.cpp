// Reproduces paper Figure 10: parallel merge sort vs thread count for
// small / intermediate / large inputs in SNC4-flat MCDRAM, next to the
// memory models (latency and inverse-bandwidth cost) and the full models
// (memory + fitted overhead), with the >10%-overhead cutoff. Also prints
// the MCDRAM-vs-DRAM comparison the model predicts to be negligible.
//
// The paper's large point is 1 GB; the discrete-event budget caps the
// default at 64 MB (same regime: far larger than the 33 MB of aggregate
// L2, deep cross-thread merge tree). Use --large_mb to raise it.
#include <iostream>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "exec/experiment.hpp"
#include "model/fit.hpp"
#include "sort/harness.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::sort;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int fit_iters = static_cast<int>(cli.get_int("fit_iters", 31));
  const std::uint64_t large_mb = static_cast<std::uint64_t>(
      cli.get_int("large_mb", 64, "large input size (paper: 1024)"));
  const bool full_sweep =
      cli.get_flag("full_sweep", false, "all thread counts at every size");
  const int jobs = cli.get_jobs();
  cli.finish();

  MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kFlat);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 SNC4/flat");
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  obs.phase("fit");

  // Capability model: cache half + a focused bandwidth fit (copy at 1 and
  // at full-chip threads) instead of the whole stream suite.
  bench::SuiteOptions sopts;
  sopts.run.iters = fit_iters;
  sopts.jobs = jobs;
  model::CapabilityModel caps = model::fit_cache_model(cfg, sopts);
  // Four independent anchor measurements (1-thread and aggregate copy per
  // memory kind) fan out through the exec layer.
  const std::vector<double> anchors = exec::parallel_map<double>(
      4, jobs, [&](int i) {
        const MemKind kind = i / 2 == 0 ? MemKind::kDDR : MemKind::kMCDRAM;
        bench::StreamConfig sc;
        sc.kind = kind;
        sc.run.iters = 5;
        sc.buffer_bytes = KiB(256);
        sc.nthreads = i % 2 == 0
                          ? 1
                          : (kind == MemKind::kDDR ? 16 : cfg.cores());
        return bench::stream_bench(cfg, bench::StreamOp::kCopy, sc)
            .gbps.median;
      });
  for (int ki = 0; ki < 2; ++ki) {
    auto& law = ki == 0 ? caps.bw_dram : caps.bw_mcdram;
    law.per_thread_gbps =
        anchors[static_cast<std::size_t>(ki * 2)] / 2.0;  // copy: R+W bytes
    law.aggregate_gbps = anchors[static_cast<std::size_t>(ki * 2 + 1)] / 2.0;
  }

  SortOptions so;
  so.kind = MemKind::kMCDRAM;
  const std::vector<int> fit_threads{1, 2, 4, 8, 16, 32, 64, 128, 256};
  const model::SortModel sm =
      make_sort_model(cfg, caps, so.kind, fit_threads, so, jobs);
  std::cout << "overhead model: " << fmt_num(sm.overhead().alpha, 0) << " + "
            << fmt_num(sm.overhead().beta, 1) << "*threads\n\n";

  struct Size {
    const char* label;
    std::uint64_t bytes;
    std::vector<int> threads;
  };
  std::vector<Size> sizes{
      {"1 KB", KiB(1), {1, 2, 4, 8, 16, 32, 64, 128, 256}},
      {"4 MB", MiB(4), {1, 2, 4, 8, 16, 32, 64, 128, 256}},
      {"large", MiB(large_mb), {1, 4, 16, 64, 256}},
  };
  if (full_sweep) {
    sizes[2].threads = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  }

  for (const Size& sz : sizes) {
    obs.phase(std::string("sort-") + sz.label);
    const SortCurves c = sort_sweep(cfg, sm, sz.bytes, sz.threads, so, jobs);
    Table t(std::string("Figure 10 — sorting ") + sz.label +
            " (SNC4-flat, MCDRAM) [ns]");
    t.set_header({"threads", "measured", "mem model (lat)",
                  "mem model (BW)", "full model (lat)", "full model (BW)"});
    for (std::size_t i = 0; i < c.threads.size(); ++i) {
      t.add_row({fmt_num(c.threads[i], 0), fmt_num(c.measured_ns[i], 0),
                 fmt_num(c.mem_model_lat_ns[i], 0),
                 fmt_num(c.mem_model_bw_ns[i], 0),
                 fmt_num(c.full_model_lat_ns[i], 0),
                 fmt_num(c.full_model_bw_ns[i], 0)});
    }
    benchbin::emit(t);
    {
      auto mk = [&](const char* name, const std::vector<double>& ys) {
        PlotSeries ps{name, {}, ys};
        for (int n : c.threads) ps.xs.push_back(n);
        return ps;
      };
      PlotOptions po;
      po.log_x = true;
      po.log_y = true;
      po.title = std::string("Figure 10 — ") + sz.label;
      po.x_label = "threads";
      po.y_label = "ns (log)";
      ascii_plot(std::cout,
                 {mk("measured", c.measured_ns),
                  mk("mem model (lat)", c.mem_model_lat_ns),
                  mk("mem model (BW)", c.mem_model_bw_ns),
                  mk("full model (BW)", c.full_model_bw_ns)},
                 po);
    }
    std::cout << "correct: " << (c.all_correct ? "yes" : "NO")
              << "; >10% overhead from "
              << (c.cutoff_threads > 0 ? fmt_num(c.cutoff_threads, 0)
                                       : std::string("never"))
              << " threads\n\n";
  }

  // The paper's headline: MCDRAM does not improve this sort over DRAM.
  std::cout << "== MCDRAM vs DRAM (4 MB and " << large_mb << " MB) ==\n";
  struct ComparePoint {
    std::uint64_t bytes;
    int n;
  };
  std::vector<ComparePoint> cpoints;
  for (std::uint64_t bytes : {MiB(4), MiB(large_mb)}) {
    for (int n : {64, 256}) cpoints.push_back({bytes, n});
  }
  struct CompareResult {
    double td, tm;
  };
  const std::vector<CompareResult> cmps =
      exec::parallel_map<CompareResult>(
          static_cast<int>(cpoints.size()), jobs, [&](int i) {
            const ComparePoint& p = cpoints[static_cast<std::size_t>(i)];
            SortOptions d = so;
            d.kind = MemKind::kDDR;
            SortOptions m2 = so;
            m2.kind = MemKind::kMCDRAM;
            return CompareResult{
                parallel_merge_sort(cfg, p.bytes, p.n, d).total_ns,
                parallel_merge_sort(cfg, p.bytes, p.n, m2).total_ns};
          });
  for (std::size_t i = 0; i < cpoints.size(); ++i) {
    std::cout << cpoints[i].bytes / MiB(1) << " MB, " << cpoints[i].n
              << " threads: DRAM/MCDRAM = "
              << fmt_num(cmps[i].td / cmps[i].tm, 3)
              << " (paper: ~1, MCDRAM does not help)\n";
  }
  return 0;
}
