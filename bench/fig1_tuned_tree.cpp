// Reproduces paper Figure 1: the model-tuned reduction tree for 64 cores
// on KNL in cache mode (one thread per core -> 32 tile leaders in the
// inter-tile tree, flat stage inside each tile). Prints the tree, its
// per-level fanouts, and the model prediction; also prints the broadcast
// tree for comparison.
#include <iostream>

#include "bench_common.hpp"
#include "model/fit.hpp"
#include "model/tree_opt.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters =
      static_cast<int>(cli.get_int("iters", 31, "suite iterations"));
  const std::string mode_s =
      cli.get_string("mode", "QUAD", "cluster mode (paper fig: cache mode)");
  cli.finish();

  MachineConfig cfg =
      knl7210(cluster_mode_from_string(mode_s), MemoryMode::kCache);
  cfg.scale_memory(64);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 " + mode_s + "/cache");
  obs.set_seed(cfg.seed);
  obs.phase("fit");
  bench::SuiteOptions opts;
  opts.run.iters = iters;
  const CapabilityModel m = fit_cache_model(cfg, opts);

  std::cout << "Fitted model: R_L=" << fmt_num(m.r_local, 1)
            << " R_tile=" << fmt_num(m.r_tile, 0)
            << " R_R=" << fmt_num(m.r_remote, 0)
            << " R_I=" << fmt_num(m.r_mem_dram, 0) << " T_C(N)="
            << fmt_num(m.contention.alpha, 0) << "+"
            << fmt_num(m.contention.beta, 1) << "*N\n\n";

  obs.phase("tune");
  const int tiles = cfg.active_tiles;  // 64 cores, 1 thread/core, 2/tile
  for (TreeKind kind : {TreeKind::kReduce, TreeKind::kBroadcast}) {
    const TunedTree t = optimize_tree(m, tiles, kind, MemKind::kDDR);
    std::cout << "== Model-tuned "
              << (kind == TreeKind::kReduce ? "REDUCE" : "BROADCAST")
              << " tree over " << tiles << " tiles ("
              << to_string(cfg.cluster) << "-cache) ==\n";
    std::cout << "predicted inter-tile cost: " << fmt_num(t.predicted_ns, 0)
              << " ns, depth " << tree_depth(t.root) << ", root fanout "
              << t.root.fanout() << "\n";
    std::cout << render_tree(t.root) << "\n";
  }

  // Fanout profile per subtree size — shows the non-triviality the paper
  // highlights (no regular k-ary/binomial tree matches this).
  Table prof("optimal root fanout vs subtree size (reduce)");
  prof.set_header({"tiles", "fanout", "depth", "predicted ns"});
  for (int n : {2, 4, 8, 12, 16, 20, 24, 28, 32, 38}) {
    const TunedTree t = optimize_tree(m, n, TreeKind::kReduce, MemKind::kDDR);
    prof.add_row({fmt_num(n, 0), fmt_num(t.root.fanout(), 0),
                  fmt_num(tree_depth(t.root), 0),
                  fmt_num(t.predicted_ns, 0)});
  }
  benchbin::emit(prof);
  return 0;
}
