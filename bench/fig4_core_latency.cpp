// Reproduces paper Figure 4: latency of cache-line transfers between core 0
// and every other core in SNC4-flat mode, for states M, E and I.
#include <iostream>

#include "bench/c2c.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 31));
  const std::string mode_s = cli.get_string("mode", "SNC4");
  const int jobs = cli.get_jobs();
  cli.finish();

  MachineConfig cfg =
      knl7210(cluster_mode_from_string(mode_s), MemoryMode::kFlat);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 " + mode_s + "/flat");
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  obs.phase("sweep");
  C2COptions opts;
  opts.run.iters = iters;
  const auto series = c2c_latency_per_core(
      cfg, /*origin=*/0, {PrepState::kM, PrepState::kE, PrepState::kI},
      opts, jobs);

  Table t("Figure 4 — per-core transfer latency, core 0 reading (" + mode_s +
          "-flat)");
  t.set_header({"state", "core", "median ns", "q1", "q3", "min", "max"});
  for (const auto& s : series) benchbin::series_rows(t, s, s.name, 1);
  benchbin::emit(t);
  {
    std::vector<PlotSeries> plots;
    for (const auto& s : series) {
      PlotSeries ps{s.name, s.xs, {}};
      for (const auto& y : s.ys) ps.ys.push_back(y.median);
      plots.push_back(std::move(ps));
    }
    PlotOptions po;
    po.title = "Figure 4 — per-core read latency";
    po.x_label = "core";
    po.y_label = "ns";
    ascii_plot(std::cout, plots, po);
  }

  // Shape summary: the paper highlights per-quadrant latency steps.
  for (const auto& s : series) {
    std::vector<double> meds;
    for (const auto& y : s.ys) meds.push_back(y.median);
    const Summary sum = summarize(meds);
    std::cout << "state " << s.name << ": median " << fmt_num(sum.median, 0)
              << " ns, spread " << fmt_num(sum.min, 0) << "-"
              << fmt_num(sum.max, 0) << " ns\n";
  }
  std::cout << "Paper reference: M ~107-122 ns, E ~98-114 ns, I (memory) "
               "~130-175 ns; same-tile cores far cheaper\n";
  return 0;
}
