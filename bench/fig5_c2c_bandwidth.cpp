// Reproduces paper Figure 5: bandwidth of cache-to-cache copies in
// SNC4-cache mode vs message size (64 B - 256 KB), for M and E states, with
// the remote buffer in the same tile, the same quadrant, and a remote
// quadrant.
#include <iostream>

#include "bench/multiline.hpp"
#include "bench_common.hpp"
#include "sim/topology.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::bench;

namespace {
// Picks a victim core in the probe's quadrant (but another tile), and one
// in a remote quadrant — SNC modes expose the domains, as on real KNL.
int core_in_domain(const MachineConfig& cfg, const Topology& topo,
                   int want_domain, int avoid_tile) {
  for (int t = 0; t < topo.active_tiles(); ++t) {
    if (t != avoid_tile &&
        topo.domain_of_tile(t, cfg.cluster) == want_domain) {
      return topo.first_core_of_tile(t);
    }
  }
  return -1;
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 21));
  const int jobs = cli.get_jobs();
  cli.finish();

  MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kCache);
  cfg.scale_memory(64);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 SNC4/cache");
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  const Topology topo(cfg);
  const int probe = 0;
  const int probe_tile = 0;
  const int probe_domain = topo.domain_of_tile(probe_tile, cfg.cluster);

  struct Placement2 {
    const char* name;
    int victim;
  };
  std::vector<Placement2> places;
  places.push_back({"same-tile", 1});
  places.push_back(
      {"same-quadrant", core_in_domain(cfg, topo, probe_domain, probe_tile)});
  places.push_back(
      {"remote-quadrant",
       core_in_domain(cfg, topo, (probe_domain + 2) % 4, probe_tile)});

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 64; s <= KiB(256); s *= 2) sizes.push_back(s);

  Table t("Figure 5 — c2c copy bandwidth vs size (SNC4-cache) [GB/s]");
  t.set_header({"series", "bytes", "median", "q1", "q3", "min", "max"});
  MultilineOptions opts;
  opts.run.iters = iters;
  for (PrepState st : {PrepState::kM, PrepState::kE}) {
    obs.phase(std::string("sweep-") + to_string(st));
    for (const auto& p : places) {
      if (p.victim < 0) continue;
      const Series s = multiline_size_sweep(cfg, p.victim, probe, sizes,
                                            XferOp::kCopy, st, opts, jobs);
      benchbin::series_rows(
          t, s, std::string(to_string(st)) + "-" + p.name, 2);
    }
  }
  benchbin::emit(t);
  std::cout << "Paper reference: local (tile) copies fastest while data "
               "fits in cache, E > M within the tile, remote placements "
               "~6-7.5 GB/s and insensitive to quadrant\n";
  return 0;
}
