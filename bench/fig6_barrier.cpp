// Reproduces paper Figure 6: barrier performance in SNC4-flat (MCDRAM),
// tuned dissemination + min-max band vs OpenMP/MPI baselines.
#include "fig_collective_common.hpp"

int main(int argc, char** argv) {
  using capmem::coll::Algo;
  return capmem::benchbin::run_collective_figure(
      argc, argv, Algo::kTunedBarrier, Algo::kOmpBarrier, Algo::kMpiBarrier,
      "Figure 6 — barrier",
      "Paper reference: tuned up to 7x over OpenMP and 24x over MPI");
}
