// Reproduces paper Figure 7: broadcast performance in SNC4-flat (MCDRAM),
// model-tuned tree + min-max band vs OpenMP/MPI baselines.
#include "fig_collective_common.hpp"

int main(int argc, char** argv) {
  using capmem::coll::Algo;
  return capmem::benchbin::run_collective_figure(
      argc, argv, Algo::kTunedBroadcast, Algo::kOmpBroadcast,
      Algo::kMpiBroadcast, "Figure 7 — broadcast",
      "Paper reference: tuned up to 3x over OpenMP and 13x over MPI");
}
