// Reproduces paper Figure 8: reduce performance in SNC4-flat (MCDRAM),
// model-tuned tree + min-max band vs OpenMP/MPI baselines.
#include "fig_collective_common.hpp"

int main(int argc, char** argv) {
  using capmem::coll::Algo;
  return capmem::benchbin::run_collective_figure(
      argc, argv, Algo::kTunedReduce, Algo::kOmpReduce, Algo::kMpiReduce,
      "Figure 8 — reduce",
      "Paper reference: tuned up to 5x over OpenMP and 14x over MPI");
}
