// Reproduces paper Figure 9: memory bandwidth of the triad benchmark in
// SNC4-flat mode vs thread count, MCDRAM vs DRAM, for the "filling cores"
// (compact, 4 SMT threads per core) and "filling tiles" (one thread per
// core) schedules.
#include <iostream>

#include "bench/stream.hpp"
#include "bench_common.hpp"
#include "common/ascii_plot.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(cli.get_int("iters", 5));
  const std::string mode_s = cli.get_string("mode", "SNC4");
  const int max_threads = static_cast<int>(cli.get_int(
      "max-threads", 256, "cap the thread sweep (reduced golden/test runs)"));
  const int jobs = cli.get_jobs();
  cli.finish();

  MachineConfig cfg =
      knl7210(cluster_mode_from_string(mode_s), MemoryMode::kFlat);
  benchbin::observe(obs, cfg);
  obs.set_config("knl7210 " + mode_s + "/flat");
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  std::vector<int> threads;
  for (int n : {1, 4, 8, 16, 32, 64, 128, 256})
    if (n <= max_threads) threads.push_back(n);

  Table t("Figure 9 — triad bandwidth vs threads (" + mode_s +
          "-flat) [GB/s]");
  t.set_header({"series", "threads", "median", "q1", "q3", "min", "max"});
  std::vector<PlotSeries> plots;
  for (Schedule sched : {Schedule::kFillCores, Schedule::kFillTiles}) {
    obs.phase(std::string("sweep-") + to_string(sched));
    for (MemKind kind : {MemKind::kMCDRAM, MemKind::kDDR}) {
      StreamConfig sc;
      sc.kind = kind;
      sc.sched = sched;
      sc.nt = true;
      sc.run.iters = iters;
      sc.buffer_bytes = KiB(256);
      const Series s = stream_thread_sweep(cfg, StreamOp::kTriad, sc,
                                           threads, jobs);
      const std::string label =
          std::string(to_string(kind)) + "/" + to_string(sched);
      benchbin::series_rows(t, s, label, 0);
      PlotSeries ps{label, s.xs, {}};
      for (const auto& y : s.ys) ps.ys.push_back(y.median);
      plots.push_back(std::move(ps));
    }
  }
  benchbin::emit(t);
  PlotOptions po;
  po.log_x = true;
  po.title = "Figure 9 — triad GB/s vs threads";
  po.x_label = "threads";
  po.y_label = "GB/s";
  ascii_plot(std::cout, plots, po);
  std::cout
      << "Paper reference: MCDRAM needs ~256 threads (filling cores) or "
         "all 64 cores (filling tiles) to peak at 300-400 GB/s; DRAM "
         "saturates at ~70-80 GB/s with 16 cores\n";
  return 0;
}
