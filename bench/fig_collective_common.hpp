// Shared driver for Figures 6 (barrier), 7 (broadcast) and 8 (reduce):
// thread sweep in SNC4-flat with cells in MCDRAM, tuned algorithm with its
// min-max model band vs the OpenMP-style and MPI-style baselines, for both
// pinning schedules (filling tiles / scatter).
#pragma once

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "coll/harness.hpp"
#include "common/ascii_plot.hpp"
#include "exec/progress.hpp"
#include "model/fit.hpp"

namespace capmem::benchbin {

inline int run_collective_figure(int argc, char** argv, coll::Algo tuned,
                                 coll::Algo omp, coll::Algo mpi,
                                 const char* figure_name,
                                 const char* paper_ref) {
  using namespace capmem::sim;
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(
      cli.get_int("iters", 101, "iterations (paper: 1000)"));
  const int fit_iters =
      static_cast<int>(cli.get_int("fit_iters", 31, "model-fit iterations"));
  const std::string mode_s = cli.get_string("mode", "SNC4");
  const int max_threads = static_cast<int>(cli.get_int(
      "max-threads", 256,
      "largest thread count in the sweep (small traced runs: 16)"));
  MachineConfig cfg = machine_from_cli(
      cli, cluster_mode_from_string(mode_s), MemoryMode::kFlat);
  const int jobs = cli.get_jobs();
  const bool progress = cli.get_flag(
      "progress", false,
      "heartbeat line on stderr while the sweep batches run");
  cli.finish();

  // Batches are dispatched sweep by sweep, so the meter runs in
  // indeterminate mode: a growing completed-count rather than an ETA.
  std::unique_ptr<exec::ProgressMeter> meter;
  if (progress) {
    meter = std::make_unique<exec::ProgressMeter>(figure_name);
    exec::set_progress_meter(meter.get());
  }

  observe(obs, cfg);
  crossval_model(obs, cfg.lat);
  obs.set_config(std::string(cfg.name) + " " + to_string(cfg.cluster) + "/" +
                 to_string(cfg.memory));
  obs.set_seed(cfg.seed);
  obs.set_jobs(jobs);
  obs.phase("fit");
  bench::SuiteOptions sopts;
  sopts.run.iters = fit_iters;
  sopts.jobs = jobs;
  const model::CapabilityModel m = model::fit_cache_model(cfg, sopts);

  const std::vector<int> threads{2, 4, 8, 16, 32, 64, 128, 256};
  const coll::Algo algos[3] = {tuned, omp, mpi};

  for (Schedule sched : {Schedule::kFillTiles, Schedule::kScatter}) {
    obs.phase(std::string("sweep-") + to_string(sched));
    Table t(std::string(figure_name) + " — " + to_string(sched) +
            " (SNC4-flat, MCDRAM cells) [ns]");
    t.set_header({"algorithm", "threads", "median", "q1", "q3", "min", "max",
                  "model best", "model worst"});
    std::size_t total_errors = 0;
    std::vector<PlotSeries> plots;
    PlotSeries band_lo{"model best", {}, {}};
    PlotSeries band_hi{"model worst", {}, {}};
    coll::HarnessOptions ho;
    ho.iters = iters;
    ho.sched = sched;
    // All (algorithm, thread-count) cells fan out through the exec layer.
    std::vector<coll::SweepPoint> points;
    for (coll::Algo a : algos) {
      for (int n : threads) {
        if (n > cfg.hw_threads() || n > max_threads) continue;
        points.push_back({a, n});
      }
    }
    const std::vector<coll::CollResult> results =
        coll::run_collective_sweep(cfg, points, &m, ho, jobs);
    std::size_t idx = 0;
    for (coll::Algo a : algos) {
      PlotSeries ps{coll::to_string(a), {}, {}};
      for (int n : threads) {
        if (n > cfg.hw_threads() || n > max_threads) continue;
        const coll::CollResult& r = results[idx++];
        total_errors += r.errors;
        ps.xs.push_back(n);
        ps.ys.push_back(r.per_iter_max.median);
        if (r.has_band) {
          band_lo.xs.push_back(n);
          band_lo.ys.push_back(r.band.best_ns);
          band_hi.xs.push_back(n);
          band_hi.ys.push_back(r.band.worst_ns);
        }
        t.add_row({coll::to_string(a), fmt_num(n, 0),
                   fmt_num(r.per_iter_max.median, 0),
                   fmt_num(r.per_iter_max.q1, 0),
                   fmt_num(r.per_iter_max.q3, 0),
                   fmt_num(r.per_iter_max.min, 0),
                   fmt_num(r.per_iter_max.max, 0),
                   r.has_band ? fmt_num(r.band.best_ns, 0) : "-",
                   r.has_band ? fmt_num(r.band.worst_ns, 0) : "-"});
      }
      plots.push_back(std::move(ps));
    }
    plots.push_back(std::move(band_lo));
    plots.push_back(std::move(band_hi));
    emit(t);
    PlotOptions po;
    po.log_x = true;
    po.log_y = true;
    po.title = std::string(figure_name) + " (" + to_string(sched) + ")";
    po.x_label = "threads";
    po.y_label = "ns (log)";
    ascii_plot(std::cout, plots, po);
    if (total_errors != 0) {
      std::cout << "!! validation errors: " << total_errors << "\n";
      return 1;
    }
    // Speedup summary at the paper's headline points (batched the same way).
    std::vector<coll::SweepPoint> headline;
    for (int n : {64, 256}) {
      if (n > cfg.hw_threads() || n > max_threads) continue;
      headline.push_back({tuned, n});
      headline.push_back({omp, n});
      headline.push_back({mpi, n});
    }
    const std::vector<coll::CollResult> head_results =
        coll::run_collective_sweep(cfg, headline, &m, ho, jobs);
    for (std::size_t h = 0; h + 2 < head_results.size(); h += 3) {
      const double tu = head_results[h].per_iter_max.median;
      const double om = head_results[h + 1].per_iter_max.median;
      const double mp = head_results[h + 2].per_iter_max.median;
      std::cout << "speedup @" << headline[h].nthreads << " threads ("
                << to_string(sched) << "): " << fmt_num(om / tu, 1)
                << "x over OpenMP, " << fmt_num(mp / tu, 1)
                << "x over MPI\n";
    }
  }
  exec::set_progress_meter(nullptr);
  meter.reset();
  std::cout << paper_ref << "\n";
  obs.finish();
  return 0;
}

}  // namespace capmem::benchbin
