// Differential fuzzing harness: randomized workloads over every
// cluster x memory configuration, each schedule cross-checked by the
// capmem::check layer (SC oracle, MESIF invariant sweeps, inline shadow).
//
// One pass runs --seeds schedules per configuration (15 configurations:
// 5 cluster modes x 3 memory modes), fanned out over --jobs host workers
// with exec-derived per-cell seeds, so stdout is identical for any worker
// count. With --budget-seconds N the pass repeats with fresh seeds until
// the wall budget runs out (the scheduled long-fuzz CI mode).
//
// On divergence the harness minimizes the first failing schedule (prefix
// bisection + thread halving), writes a self-contained repro to
// --repro-out, optionally re-runs it into a Chrome trace
// (--trace-on-divergence), and exits nonzero.
#include <chrono>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "check/differ.hpp"
#include "exec/experiment.hpp"
#include "exec/seed.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::check;

namespace {

struct ConfigCell {
  ClusterMode cluster;
  MemoryMode memory;
  std::string name;
};

std::vector<ConfigCell> all_configs() {
  std::vector<ConfigCell> cells;
  for (ClusterMode cm : all_cluster_modes()) {
    for (MemoryMode mm :
         {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
      cells.push_back({cm, mm,
                       std::string(to_string(cm)) + "/" + to_string(mm)});
    }
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int seeds = static_cast<int>(cli.get_int(
      "seeds", 70, "schedules per configuration per pass"));
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "base seed"));
  const int threads = static_cast<int>(
      cli.get_int("threads", 10, "simulated threads per schedule"));
  const int ops = static_cast<int>(
      cli.get_int("ops", 160, "ops per simulated thread"));
  const int data_lines = static_cast<int>(
      cli.get_int("data-lines", 12, "shared data lines"));
  const int counter_lines = static_cast<int>(
      cli.get_int("counter-lines", 2, "fetch-add counter lines"));
  const double budget = cli.get_double(
      "budget-seconds", 0.0, "repeat with fresh seeds until exhausted");
  const std::string repro_out = cli.get_string(
      "repro-out", "fuzz_repro.txt", "divergence repro file");
  const std::string trace_out = cli.get_string(
      "trace-on-divergence", "",
      "Chrome trace of the minimized divergence");
  const int jobs = cli.get_jobs();
  cli.finish();
  obs.set_config("fuzz-diff all-modes");
  obs.set_seed(base_seed);
  obs.set_jobs(jobs);

  const std::vector<ConfigCell> cells = all_configs();
  const auto make_spec = [&](const ConfigCell& cell, std::uint64_t seed) {
    WorkloadSpec spec;
    spec.threads = threads;
    spec.ops_per_thread = ops;
    spec.data_lines = data_lines;
    spec.counter_lines = counter_lines;
    spec.seed = seed;
    spec.cluster = cell.cluster;
    spec.memory = cell.memory;
    return spec;
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::vector<std::uint64_t> per_cell_schedules(cells.size(), 0);
  std::vector<std::uint64_t> per_cell_divergences(cells.size(), 0);
  std::uint64_t total_schedules = 0;
  std::uint64_t total_divergences = 0;
  bool have_failure = false;
  WorkloadSpec first_failure;

  int pass = 0;
  do {
    obs.phase("pass" + std::to_string(pass));
    const int njobs = static_cast<int>(cells.size()) * seeds;
    const std::vector<DiffOutcome> outcomes =
        exec::parallel_map<DiffOutcome>(njobs, jobs, [&](int i) {
          const std::size_t cell = static_cast<std::size_t>(i) /
                                   static_cast<std::size_t>(seeds);
          const std::size_t trial = static_cast<std::size_t>(i) %
                                    static_cast<std::size_t>(seeds);
          const std::uint64_t seed = exec::derive_seed(
              base_seed + static_cast<std::uint64_t>(pass), cell, trial);
          return run_diff(make_spec(cells[cell], seed));
        });
    for (int i = 0; i < njobs; ++i) {
      const std::size_t cell = static_cast<std::size_t>(i) /
                               static_cast<std::size_t>(seeds);
      const DiffOutcome& o = outcomes[static_cast<std::size_t>(i)];
      per_cell_schedules[cell]++;
      total_schedules++;
      if (o.ok) continue;
      per_cell_divergences[cell]++;
      total_divergences++;
      if (!have_failure) {
        have_failure = true;
        first_failure = o.spec;
        std::cout << "DIVERGENCE " << o.spec.label() << ":\n"
                  << o.report << '\n';
      }
    }
    ++pass;
  } while (!have_failure && budget > 0 && elapsed_s() < budget);

  Table t("fuzz-diff — schedules per configuration");
  t.set_header({"config", "schedules", "divergences"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    t.add_row({cells[c].name, std::to_string(per_cell_schedules[c]),
               std::to_string(per_cell_divergences[c])});
  }
  benchbin::emit(t);

  if (obs.metrics() != nullptr) {
    obs.metrics()->add("check.schedules",
                       static_cast<double>(total_schedules));
    obs.metrics()->add("check.divergences",
                       static_cast<double>(total_divergences));
  }

  if (have_failure) {
    std::cout << "minimizing first divergence...\n";
    const WorkloadSpec min_spec = minimize(first_failure);
    DiffOutcome min_out;
    if (!trace_out.empty()) {
      obs::ChromeTraceWriter writer(trace_out);
      min_out = run_diff(min_spec, &writer);
      writer.flush();
      std::cout << "trace: " << trace_out << '\n';
    } else {
      min_out = run_diff(min_spec);
    }
    std::ofstream repro(repro_out);
    repro << repro_text(min_out.ok ? run_diff(first_failure) : min_out);
    std::cout << "repro: " << repro_out << " (" << min_spec.label()
              << ")\n";
    std::cout << "FAIL fuzz-diff: " << total_schedules << " schedules, "
              << total_divergences << " divergences\n";
    return 1;
  }
  std::cout << "PASS fuzz-diff: " << total_schedules
            << " schedules across " << cells.size()
            << " configurations, 0 divergences\n";
  return 0;
}
