// Differential fuzzing harness: randomized workloads over every
// cluster x memory configuration, each schedule cross-checked by the
// capmem::check layer (SC oracle, protocol invariant sweeps, inline
// shadow). --machine / --protocol run the same sweep on any machine-factory
// preset and coherence protocol (defaults: knl_38t, MESIF).
//
// One pass runs --seeds schedules per configuration (15 configurations:
// 5 cluster modes x 3 memory modes), fanned out over --jobs host workers
// with exec-derived per-cell seeds, so stdout is identical for any worker
// count. With --budget-seconds N the pass repeats with fresh seeds until
// the wall budget runs out (the scheduled long-fuzz CI mode).
//
// The sweep is fault-tolerant: cells run under exec::run_jobs_recover, so
// one schedule that trips the engine watchdog (--max-steps, or a real
// deadlock/livelock) is *quarantined* — recorded with a minimized repro —
// while every other cell completes and reports. --checkpoint FILE records
// each completed (pass, config, seed) cell as it finishes; re-running with
// the same flags resumes the sweep without re-running completed cells.
// --inject-abort config:seed:steps plants a deterministic engine abort in
// one cell (CI smoke for the quarantine path); --fault-severity runs every
// schedule on seed-derived degraded silicon (fault::FaultPlan).
//
// On divergence the harness minimizes the first failing schedule (prefix
// bisection + thread halving), writes a self-contained repro to
// --repro-out, optionally re-runs it into a Chrome trace
// (--trace-on-divergence), and exits 1. A sweep whose only failures are
// quarantined aborts exits 2 with a partial-results summary.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "check/differ.hpp"
#include "exec/experiment.hpp"
#include "exec/progress.hpp"
#include "exec/seed.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::check;

namespace {

struct ConfigCell {
  ClusterMode cluster;
  MemoryMode memory;
  std::string name;
};

std::vector<ConfigCell> all_configs() {
  std::vector<ConfigCell> cells;
  for (ClusterMode cm : all_cluster_modes()) {
    for (MemoryMode mm :
         {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
      cells.push_back({cm, mm,
                       std::string(to_string(cm)) + "/" + to_string(mm)});
    }
  }
  return cells;
}

// Completed-cell ledger: one "P|Q <pass> <config> <trial>" line per
// finished cell (P = passed, Q = quarantined). Divergent cells are never
// checkpointed — a resumed sweep re-runs them and fails again.
using CellKey = std::tuple<int, std::size_t, std::size_t>;

std::map<CellKey, char> load_checkpoint(const std::string& path) {
  std::map<CellKey, char> done;
  if (path.empty()) return done;
  std::ifstream in(path);
  char status = 0;
  int pass = 0;
  std::size_t cell = 0, trial = 0;
  while (in >> status >> pass >> cell >> trial) {
    if (status == 'P' || status == 'Q') done[{pass, cell, trial}] = status;
  }
  return done;
}

// One quarantined cell of this run.
struct Quarantine {
  WorkloadSpec spec;
  bool reproducible = false;  ///< spec re-runs to the same failure
  std::string report;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int seeds = static_cast<int>(cli.get_int(
      "seeds", 70, "schedules per configuration per pass"));
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1, "base seed"));
  const int threads = static_cast<int>(
      cli.get_int("threads", 10, "simulated threads per schedule"));
  const int ops = static_cast<int>(
      cli.get_int("ops", 160, "ops per simulated thread"));
  const int data_lines = static_cast<int>(
      cli.get_int("data-lines", 12, "shared data lines"));
  const int counter_lines = static_cast<int>(
      cli.get_int("counter-lines", 2, "fetch-add counter lines"));
  const double budget = cli.get_double(
      "budget-seconds", 0.0, "repeat with fresh seeds until exhausted");
  const std::string repro_out = cli.get_string(
      "repro-out", "fuzz_repro.txt", "divergence repro file");
  const std::string trace_out = cli.get_string(
      "trace-on-divergence", "",
      "Chrome trace of the minimized divergence");
  const std::uint64_t max_steps = static_cast<std::uint64_t>(cli.get_int(
      "max-steps", 0, "engine step budget per schedule (0 = unlimited)"));
  const int fault_severity = static_cast<int>(cli.get_int(
      "fault-severity", 0, "degraded-silicon severity 0-3 for every cell"));
  const std::string machine_s = cli.get_string(
      "machine", "knl_38t",
      "machine preset every cell runs on (see machine_preset)");
  const Protocol protocol = parse_protocol(cli.get_string(
      "protocol", "mesif", "coherence protocol (mesif, mesi, mosi)"));
  const std::string checkpoint_path = cli.get_string(
      "checkpoint", "", "completed-cell ledger for resume ('' = off)");
  const std::string inject_abort = cli.get_string(
      "inject-abort", "",
      "config:seed:steps — step-budget abort in one pass-0 cell");
  const std::string quarantine_out = cli.get_string(
      "quarantine-out", "fuzz_quarantine.txt",
      "partial-results summary file (written when cells are quarantined)");
  const int jobs = cli.get_jobs();
  const bool progress = cli.get_flag(
      "progress", false,
      "heartbeat line on stderr (completed/total, rate, eta, quarantines)");
  cli.finish();
  obs.set_config("fuzz-diff all-modes");
  obs.set_seed(base_seed);
  obs.set_jobs(jobs);

  long inj_cell = -1, inj_trial = -1, inj_steps = 0;
  if (!inject_abort.empty()) {
    if (std::sscanf(inject_abort.c_str(), "%ld:%ld:%ld", &inj_cell,
                    &inj_trial, &inj_steps) != 3 ||
        inj_cell < 0 || inj_trial < 0 || inj_steps <= 0) {
      std::cerr << "bad --inject-abort '" << inject_abort
                << "' (want config:seed:steps)\n";
      return 64;
    }
  }

  const std::vector<ConfigCell> cells = all_configs();
  const auto make_spec = [&](int pass, std::size_t cell, std::size_t trial) {
    WorkloadSpec spec;
    spec.threads = threads;
    spec.ops_per_thread = ops;
    spec.data_lines = data_lines;
    spec.counter_lines = counter_lines;
    spec.seed = exec::derive_seed(
        base_seed + static_cast<std::uint64_t>(pass), cell, trial);
    spec.cluster = cells[cell].cluster;
    spec.memory = cells[cell].memory;
    spec.max_steps = max_steps;
    spec.fault_severity = fault_severity;
    spec.machine = machine_s;
    spec.protocol = protocol;
    if (pass == 0 && static_cast<long>(cell) == inj_cell &&
        static_cast<long>(trial) == inj_trial) {
      spec.max_steps = static_cast<std::uint64_t>(inj_steps);
    }
    return spec;
  };

  std::map<CellKey, char> done = load_checkpoint(checkpoint_path);
  std::ofstream ledger;
  std::mutex ledger_mu;
  if (!checkpoint_path.empty()) {
    ledger.open(checkpoint_path, std::ios::app);
    if (!ledger) {
      std::cerr << "cannot open checkpoint '" << checkpoint_path << "'\n";
      return 64;
    }
  }
  const std::size_t resumed = done.size();
  if (resumed > 0) {
    std::cout << "checkpoint: skipping " << resumed
              << " completed cell(s) from " << checkpoint_path << '\n';
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Heartbeat for the sweep: run_jobs grows the total as each pass is
  // dispatched and ticks per completed cell; the recovery layer feeds
  // quarantine counts. Uninstalled (and its line finished) before the
  // table goes to stdout so the two streams never interleave confusingly.
  std::unique_ptr<exec::ProgressMeter> meter;
  if (progress) {
    meter = std::make_unique<exec::ProgressMeter>("fuzz");
    exec::set_progress_meter(meter.get());
  }

  std::vector<std::uint64_t> per_cell_schedules(cells.size(), 0);
  std::vector<std::uint64_t> per_cell_divergences(cells.size(), 0);
  std::uint64_t total_schedules = 0;
  std::uint64_t total_divergences = 0;
  bool have_failure = false;
  WorkloadSpec first_failure;
  std::vector<Quarantine> quarantined;

  int pass = 0;
  do {
    obs.phase("pass" + std::to_string(pass));
    const int njobs = static_cast<int>(cells.size()) * seeds;

    // Cells still to run this pass (everything, without a checkpoint).
    std::vector<int> pending;
    std::vector<DiffOutcome> outcomes(static_cast<std::size_t>(njobs));
    pending.reserve(static_cast<std::size_t>(njobs));
    for (int i = 0; i < njobs; ++i) {
      const std::size_t cell = static_cast<std::size_t>(i) /
                               static_cast<std::size_t>(seeds);
      const std::size_t trial = static_cast<std::size_t>(i) %
                                static_cast<std::size_t>(seeds);
      const auto it = done.find({pass, cell, trial});
      if (it == done.end()) {
        pending.push_back(i);
        continue;
      }
      DiffOutcome& o = outcomes[static_cast<std::size_t>(i)];
      o.spec = make_spec(pass, cell, trial);
      if (it->second == 'Q') {
        o.ok = false;
        o.aborted = true;
        o.report = "  quarantined in a previous run (checkpoint)\n";
      }
    }

    auto [slots, report] = exec::try_parallel_map<DiffOutcome>(
        static_cast<int>(pending.size()), jobs, [&](int p) {
          const int i = pending[static_cast<std::size_t>(p)];
          const std::size_t cell = static_cast<std::size_t>(i) /
                                   static_cast<std::size_t>(seeds);
          const std::size_t trial = static_cast<std::size_t>(i) %
                                    static_cast<std::size_t>(seeds);
          DiffOutcome o = run_diff(make_spec(pass, cell, trial), nullptr,
                                   obs.attr());
          if (ledger.is_open() && (o.ok || o.aborted)) {
            std::lock_guard<std::mutex> lk(ledger_mu);
            ledger << (o.ok ? 'P' : 'Q') << ' ' << pass << ' ' << cell
                   << ' ' << trial << '\n';
            ledger.flush();
          }
          return o;
        });
    for (std::size_t p = 0; p < pending.size(); ++p) {
      outcomes[static_cast<std::size_t>(pending[p])] = std::move(slots[p]);
    }
    // Host-side failures (exceptions that escaped run_diff itself): the
    // recovery layer kept the batch alive; fold them in as quarantined.
    for (const exec::JobFailure& f : report.failures) {
      const int i = pending[f.job];
      DiffOutcome& o = outcomes[static_cast<std::size_t>(i)];
      o.ok = false;
      o.aborted = true;
      o.report = "  job " + std::string(to_string(f.status)) + " after " +
                 std::to_string(f.attempts) + " attempt(s): " + f.error +
                 '\n';
    }

    for (int i = 0; i < njobs; ++i) {
      const std::size_t cell = static_cast<std::size_t>(i) /
                               static_cast<std::size_t>(seeds);
      const DiffOutcome& o = outcomes[static_cast<std::size_t>(i)];
      per_cell_schedules[cell]++;
      total_schedules++;
      if (o.ok) continue;
      if (o.aborted) {
        std::cout << "QUARANTINE " << o.spec.label() << " ["
                  << cells[cell].name << "]:\n"
                  << o.report << '\n';
        quarantined.push_back(Quarantine{o.spec, false, o.report});
        continue;
      }
      per_cell_divergences[cell]++;
      total_divergences++;
      if (!have_failure) {
        have_failure = true;
        first_failure = o.spec;
        std::cout << "DIVERGENCE " << o.spec.label() << ":\n"
                  << o.report << '\n';
      }
    }
    ++pass;
  } while (!have_failure && quarantined.empty() && budget > 0 &&
           elapsed_s() < budget);

  exec::set_progress_meter(nullptr);
  meter.reset();  // finishes the stderr line before stdout's table

  Table t("fuzz-diff — schedules per configuration");
  t.set_header({"config", "schedules", "divergences"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    t.add_row({cells[c].name, std::to_string(per_cell_schedules[c]),
               std::to_string(per_cell_divergences[c])});
  }
  benchbin::emit(t);

  if (obs.metrics() != nullptr) {
    obs.metrics()->add("check.schedules",
                       static_cast<double>(total_schedules));
    obs.metrics()->add("check.divergences",
                       static_cast<double>(total_divergences));
    obs.metrics()->add("check.quarantined",
                       static_cast<double>(quarantined.size()));
  }

  if (have_failure) {
    std::cout << "minimizing first divergence...\n";
    const WorkloadSpec min_spec = minimize(first_failure);
    DiffOutcome min_out;
    if (!trace_out.empty()) {
      obs::ChromeTraceWriter writer(trace_out);
      min_out = run_diff(min_spec, &writer);
      writer.flush();
      std::cout << "trace: " << trace_out << '\n';
    } else {
      min_out = run_diff(min_spec);
    }
    std::ofstream repro(repro_out);
    repro << repro_text(min_out.ok ? run_diff(first_failure) : min_out);
    std::cout << "repro: " << repro_out << " (" << min_spec.label()
              << ")\n";
    std::cout << "FAIL fuzz-diff: " << total_schedules << " schedules, "
              << total_divergences << " divergences\n";
    return 1;
  }

  if (!quarantined.empty()) {
    // Partial results: everything else completed. Minimize the first
    // quarantined cell that still reproduces (checkpoint-synthesized
    // entries and one-shot host failures may not).
    bool wrote_repro = false;
    for (Quarantine& q : quarantined) {
      const DiffOutcome again = run_diff(q.spec);
      if (again.ok) continue;
      q.reproducible = true;
      std::cout << "minimizing first quarantined abort...\n";
      const WorkloadSpec min_spec = minimize(q.spec);
      const DiffOutcome min_out = run_diff(min_spec);
      std::ofstream repro(repro_out);
      repro << repro_text(min_out.ok ? again : min_out);
      std::cout << "repro: " << repro_out << " (" << min_spec.label()
                << ")\n";
      wrote_repro = true;
      break;
    }
    std::ofstream qf(quarantine_out);
    qf << "capmem fuzz-diff partial results\n"
       << "completed: " << (total_schedules - quarantined.size())
       << " schedule(s), quarantined: " << quarantined.size() << '\n';
    for (const Quarantine& q : quarantined) {
      qf << "quarantined " << q.spec.label()
         << (q.reproducible ? " [reproduced]" : "") << '\n'
         << q.report;
    }
    std::cout << "quarantine summary: " << quarantine_out << '\n';
    if (!wrote_repro) {
      std::cout << "(no quarantined cell reproduced on re-run; "
                   "no repro written)\n";
    }
    std::cout << "PARTIAL fuzz-diff: " << total_schedules
              << " schedules, " << quarantined.size()
              << " quarantined, 0 divergences\n";
    return 2;
  }

  std::cout << "PASS fuzz-diff: " << total_schedules
            << " schedules across " << cells.size()
            << " configurations, 0 divergences\n";
  return 0;
}
