// Host-level microbenchmarks (google-benchmark) of the simulator's hot
// paths: these bound how large an experiment the DES can afford, which is
// what dictated the scaled sizes documented in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include "sim/line_table.hpp"
#include "sim/machine.hpp"

using namespace capmem;
using namespace capmem::sim;

namespace {

void BM_LineTableChurn(benchmark::State& state) {
  LineTable<LineEntry> table;
  std::uint64_t key = 0;
  for (auto _ : state) {
    LineEntry& e = table.get_or_create(key);
    benchmark::DoNotOptimize(e);
    if (key >= 4096) table.erase(key - 4096);
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineTableChurn);

void BM_LineTableFind(benchmark::State& state) {
  LineTable<LineEntry> table;
  for (std::uint64_t k = 0; k < 100000; ++k) table.get_or_create(k);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(key % 100000));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LineTableFind);

void BM_L1HitAccess(benchmark::State& state) {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  Topology topo(cfg);
  Rng rng(1);
  MemSystem mem(cfg, topo, rng);
  Placement place;
  Nanos now = 0;
  // Warm one line into L1.
  now = mem.access(0, 0, 5, place, AccessType::kRead, {}, now).finish;
  for (auto _ : state) {
    now = mem.access(0, 0, 5, place, AccessType::kRead, {}, now).finish;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L1HitAccess);

void BM_StreamMissAccess(benchmark::State& state) {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  Topology topo(cfg);
  Rng rng(1);
  MemSystem mem(cfg, topo, rng);
  Placement place;
  AccessOpts opts;
  opts.streaming = true;
  Nanos now = 0;
  Line line = 0;
  for (auto _ : state) {
    now = mem.access(0, 0, line++, place, AccessType::kRead, opts, now)
              .finish;
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamMissAccess);

void BM_EngineStepThroughput(benchmark::State& state) {
  // Cost per scheduler round-trip: one task advancing repeatedly.
  const int kSteps = 10000;
  for (auto _ : state) {
    Engine e(1);
    auto prog = []() -> Task {
      for (int i = 0; i < kSteps; ++i) co_await Advance{1.0};
    };
    e.spawn(prog());
    e.run();
    benchmark::DoNotOptimize(e.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_EngineStepThroughput);

void BM_SpinWakeRoundTrip(benchmark::State& state) {
  // Flag ping-pong between two simulated threads (collective hot path).
  const int kRounds = 500;
  for (auto _ : state) {
    MachineConfig cfg = knl7210();
    cfg.noise.enabled = false;
    Machine m(cfg);
    const Addr a = m.alloc("a", kLineBytes, {}, true);
    const Addr b = m.alloc("b", kLineBytes, {}, true);
    m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
      for (int i = 1; i <= kRounds; ++i) {
        co_await ctx.write_u64(a, static_cast<std::uint64_t>(i));
        co_await ctx.wait_eq(b, static_cast<std::uint64_t>(i));
      }
    });
    m.add_thread({10, 0}, [&](Ctx& ctx) -> Task {
      for (int i = 1; i <= kRounds; ++i) {
        co_await ctx.wait_eq(a, static_cast<std::uint64_t>(i));
        co_await ctx.write_u64(b, static_cast<std::uint64_t>(i));
      }
    });
    m.run();
    benchmark::DoNotOptimize(m.elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRounds);
}
BENCHMARK(BM_SpinWakeRoundTrip);

}  // namespace

BENCHMARK_MAIN();
