// perf_sim: event-throughput microbenchmark for the simulator hot path.
//
// Runs 3 representative workloads x 3 cluster modes and reports engine
// events/sec, ns/event and peak RSS. Each cell is repeated --reps times on
// a fresh Machine; the virtual-time result (steps, virt_ns) must be
// bit-identical across reps — a mismatch is a determinism bug and exits
// nonzero. Wall-clock numbers are informational only and never gate.
//
// Workloads (sized so a full run finishes in ~a minute on one core):
//   barrier  dissemination barrier rounds over per-(thread,stage) flag
//            lines — park/unpark and run-queue heavy (the fig6 shape).
//   triad    per-thread private STREAM-triad buffers — channel reservation
//            and scheduler-callback (RangeOp pump) heavy (the fig9 shape).
//   mixed    per-thread random single-line loads/stores plus occasional
//            fetch_add on a shared buffer — directory/line-table heavy.
//
// CHECKSUM lines carry the deterministic part of each cell; scripts in CI
// compare them across engine rewrites (`scripts/bench_json.py --expect`).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "exec/host.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"

using namespace capmem;
using namespace capmem::sim;

namespace {

struct CellSpec {
  std::string workload;
  ClusterMode mode;
  int threads = 0;
};

struct CellResult {
  CellSpec spec;
  std::uint64_t steps = 0;
  Nanos virt_ns = 0;
  double best_wall_s = 0;
};

struct Sizes {
  int barrier_threads, barrier_iters;
  int triad_threads, triad_iters;
  std::uint64_t triad_bytes;
  int mixed_threads, mixed_ops;
};

Sizes full_sizes() { return {64, 200, 16, 3, KiB(256), 32, 3000}; }
Sizes quick_sizes() { return {16, 10, 8, 2, KiB(64), 8, 300}; }

int log2_floor(int n) {
  int k = 0;
  while ((1 << (k + 1)) <= n) ++k;
  return k;
}

/// Dissemination-barrier rounds: thread i in stage k signals partner
/// (i + 2^k) mod n and spins on its own flag, one cache line per
/// (thread, stage) slot. Flags carry the iteration number so lines are
/// reused (and waiter lists on them churn) across iterations.
void build_barrier(Machine& m, int nthreads, int iters) {
  const int stages = log2_floor(nthreads);
  const Addr flags = m.alloc("flags",
                             static_cast<std::uint64_t>(nthreads) * stages *
                                 kLineBytes,
                             {}, /*with_data=*/true);
  auto flag = [=](int tid, int stage) {
    return flags + (static_cast<std::uint64_t>(tid) * stages + stage) *
                       kLineBytes;
  };
  for (int i = 0; i < nthreads; ++i) {
    m.add_thread({.core = i % 64, .smt = i / 64},
                 [=, n = nthreads](Ctx& ctx) -> Task {
                   for (int it = 1; it <= iters; ++it) {
                     for (int k = 0; k < stages; ++k) {
                       const int partner = (i + (1 << k)) % n;
                       co_await ctx.write_u64(
                           flag(partner, k),
                           static_cast<std::uint64_t>(it));
                       co_await ctx.wait_eq(flag(i, k),
                                            static_cast<std::uint64_t>(it));
                     }
                   }
                 });
  }
}

/// Private STREAM triad per thread: a[i] = b[i] + s*c[i] over dataless
/// buffers, chunked one line per scheduler step (the fig9 shape).
void build_triad(Machine& m, int nthreads, int iters,
                 std::uint64_t bytes) {
  for (int i = 0; i < nthreads; ++i) {
    const std::string p = "t" + std::to_string(i);
    const Addr a = m.alloc(p + ".a", bytes);
    const Addr b = m.alloc(p + ".b", bytes);
    const Addr c = m.alloc(p + ".c", bytes);
    m.add_thread({.core = i % 64, .smt = i / 64}, [=](Ctx& ctx) -> Task {
      for (int it = 0; it < iters; ++it) {
        co_await ctx.triad(a, b, c, bytes, {.nt = true});
        co_await ctx.sync();
      }
    });
  }
}

/// Random single-line traffic over one shared buffer: mostly loads, some
/// stores, occasional fetch_add — stresses the directory and line tables
/// with an adversarial (hash-scattered) access pattern.
void build_mixed(Machine& m, int nthreads, int ops, std::uint64_t seed) {
  const std::uint64_t lines = 4096;
  const Addr buf = m.alloc("shared", lines * kLineBytes, {},
                           /*with_data=*/true);
  for (int i = 0; i < nthreads; ++i) {
    m.add_thread({.core = i % 64, .smt = i / 64}, [=](Ctx& ctx) -> Task {
      Rng rng(seed ^ (0x5bf0315ull * (i + 1)));
      for (int op = 0; op < ops; ++op) {
        const Addr a = buf + rng.next_below(lines) * kLineBytes;
        const std::uint64_t kind = rng.next_below(100);
        if (kind < 70) {
          co_await ctx.read_u64(a);
        } else if (kind < 95) {
          co_await ctx.write_u64(a, rng.next_u64());
        } else {
          co_await ctx.fetch_add_u64(a, 1);
        }
      }
    });
  }
}

CellResult run_cell(const CellSpec& spec, const Sizes& sz, int reps,
                    std::uint64_t seed, Protocol protocol) {
  CellResult r;
  r.spec = spec;
  for (int rep = 0; rep < reps; ++rep) {
    MachineConfig cfg = knl7210(spec.mode, MemoryMode::kFlat);
    cfg.protocol = protocol;
    Machine m(cfg);
    if (spec.workload == "barrier") {
      build_barrier(m, sz.barrier_threads, sz.barrier_iters);
    } else if (spec.workload == "triad") {
      build_triad(m, sz.triad_threads, sz.triad_iters, sz.triad_bytes);
    } else {
      build_mixed(m, sz.mixed_threads, sz.mixed_ops, seed);
    }
    const double t0 = exec::host_now_seconds();
    m.run();
    const double wall = exec::host_now_seconds() - t0;
    const std::uint64_t steps = m.engine().steps();
    const Nanos virt = m.elapsed();
    if (rep == 0) {
      r.steps = steps;
      r.virt_ns = virt;
      r.best_wall_s = wall;
    } else {
      CAPMEM_CHECK_MSG(steps == r.steps && virt == r.virt_ns,
                       "nondeterministic cell " << spec.workload << "/"
                       << to_string(spec.mode) << ": rep " << rep
                       << " gave steps=" << steps << " virt=" << virt
                       << " vs steps=" << r.steps << " virt=" << r.virt_ns);
      if (wall < r.best_wall_s) r.best_wall_s = wall;
    }
  }
  return r;
}

void write_json(const std::string& path, const std::vector<CellResult>& rs,
                bool quick, int reps, const Sizes& sz) {
  std::ofstream out(path);
  CAPMEM_CHECK_MSG(out.good(), "cannot open " << path);
  char buf[64];
  out << "{\n  \"schema\": \"capmem.perf_sim.v1\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"barrier_threads\": " << sz.barrier_threads << ",\n";
  out << "  \"peak_rss_bytes\": " << exec::host_peak_rss_bytes() << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const CellResult& r = rs[i];
    const double evs = r.best_wall_s > 0
                           ? static_cast<double>(r.steps) / r.best_wall_s
                           : 0.0;
    std::snprintf(buf, sizeof buf, "%.17g", r.virt_ns);
    out << "    {\"workload\": \"" << r.spec.workload << "\", \"mode\": \""
        << to_string(r.spec.mode) << "\", \"threads\": " << r.spec.threads
        << ", \"steps\": " << r.steps << ", \"virt_ns\": " << buf
        << ", \"best_wall_s\": " << r.best_wall_s
        << ", \"events_per_sec\": " << evs << "}"
        << (i + 1 < rs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool quick = cli.get_flag("quick", false);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 2 : 3));
  const std::string only_workload = cli.get_string("workload", "all");
  const std::string only_mode = cli.get_string("mode", "all");
  const std::string json_out = cli.get_string("json-out", "");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 4242));
  const Protocol protocol = parse_protocol(cli.get_string(
      "protocol", "mesif",
      "coherence protocol for every cell (mesif, mesi, mosi)"));
  cli.finish();

  const Sizes sz = quick ? quick_sizes() : full_sizes();
  std::vector<CellSpec> cells;
  for (const std::string w : {"barrier", "triad", "mixed"}) {
    if (only_workload != "all" && only_workload != w) continue;
    for (ClusterMode mode :
         {ClusterMode::kQuadrant, ClusterMode::kSNC4, ClusterMode::kA2A}) {
      if (only_mode != "all" && only_mode != to_string(mode)) continue;
      int threads = w == "barrier"  ? sz.barrier_threads
                    : w == "triad" ? sz.triad_threads
                                   : sz.mixed_threads;
      cells.push_back({w, mode, threads});
    }
  }

  std::printf("perf_sim (%s, reps=%d)\n", quick ? "quick" : "full", reps);
  std::printf("%-8s %-5s %8s %12s %16s %12s %10s\n", "workload", "mode",
              "threads", "steps", "virt_ns", "events/sec", "ns/event");
  std::vector<CellResult> results;
  for (const CellSpec& spec : cells) {
    const CellResult r = run_cell(spec, sz, reps, seed, protocol);
    const double evs = r.best_wall_s > 0
                           ? static_cast<double>(r.steps) / r.best_wall_s
                           : 0.0;
    const double nspe = r.steps > 0 ? 1e9 * r.best_wall_s /
                                          static_cast<double>(r.steps)
                                    : 0.0;
    std::printf("%-8s %-5s %8d %12llu %16.6g %12.4g %10.1f\n",
                spec.workload.c_str(), to_string(spec.mode), spec.threads,
                static_cast<unsigned long long>(r.steps), r.virt_ns, evs,
                nspe);
    // Deterministic payload for cross-build comparison: never includes
    // wall-clock numbers.
    std::printf("CHECKSUM %s %s steps=%llu virt_ns=%.17g\n",
                spec.workload.c_str(), to_string(spec.mode),
                static_cast<unsigned long long>(r.steps), r.virt_ns);
    results.push_back(r);
  }
  std::printf("peak_rss_bytes=%llu\n",
              static_cast<unsigned long long>(exec::host_peak_rss_bytes()));
  if (!json_out.empty()) write_json(json_out, results, quick, reps, sz);
  return 0;
}
