// Reproduces paper Table I: cache-to-cache benchmark results across all
// five cluster modes (flat memory) — latencies per state and location,
// single-thread read/copy bandwidths, congestion, and the contention law.
#include <iostream>

#include "bench/suite.hpp"
#include "bench_common.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(cli.get_int(
      "iters", 51, "iterations per experiment (paper: 1000)"));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int jobs = cli.get_jobs();
  cli.finish();
  obs.set_config("knl7210 all-modes/flat");
  obs.set_seed(seed);
  obs.set_jobs(jobs);

  Table t("Table I — cache-to-cache (flat memory)");
  t.set_header({"row", "SNC4", "SNC2", "QUAD", "HEM", "A2A"});

  std::vector<SuiteResults> results;
  for (ClusterMode mode : all_cluster_modes()) {
    obs.phase(std::string("suite-") + to_string(mode));
    SuiteOptions opts;
    opts.run.iters = iters;
    opts.run.seed = seed;
    opts.streams = false;
    opts.jobs = jobs;
    MachineConfig cfg = knl7210(mode, MemoryMode::kFlat);
    benchbin::observe(obs, cfg);
    results.push_back(run_suite(cfg, opts));
  }

  auto row = [&](const std::string& name, auto getter, int prec = 0) {
    std::vector<std::string> cells{name};
    for (const auto& r : results) cells.push_back(getter(r, prec));
    t.add_row(cells);
  };
  auto med = [](const Summary& s, int prec) { return fmt_num(s.median, prec); };
  auto range = [](const bench::Range& r, int prec) {
    return fmt_num(r.lo, prec) + "-" + fmt_num(r.hi, prec);
  };

  row("Latency Local L1 [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.lat_l1, 1); });
  row("Latency Tile M [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.lat_tile_m, p); });
  row("Latency Tile E [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.lat_tile_e, p); });
  row("Latency Tile S/F [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.lat_tile_sf, p); });
  row("Latency Remote M [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return range(r.range_remote_m, p); });
  row("Latency Remote E [ns]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return range(r.range_remote_e, p); });
  row("Latency Remote S/F [ns]", [&](const SuiteResults& r, [[maybe_unused]] int p) {
    return range(r.range_remote_sf, p);
  });
  row("BW Read [GB/s]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.bw_read_remote, 1); });
  row("BW Copy Tile M [GB/s]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.bw_copy_tile_m, 1); });
  row("BW Copy Tile E [GB/s]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.bw_copy_tile_e, 1); });
  row("BW Copy Remote [GB/s]",
      [&](const SuiteResults& r, [[maybe_unused]] int p) { return med(r.bw_copy_remote, 1); });
  row("Congestion (P2P pairs)", [&](const SuiteResults& r, [[maybe_unused]] int p) {
    return r.congestion.ratio < 1.15 ? std::string("None")
                                     : fmt_num(r.congestion.ratio, 2) + "x";
  });
  row("Contention alpha [ns]", [&](const SuiteResults& r, [[maybe_unused]] int p) {
    return fmt_num(r.contention.fit.alpha, 0);
  });
  row("Contention beta [ns]", [&](const SuiteResults& r, [[maybe_unused]] int p) {
    return fmt_num(r.contention.fit.beta, 1);
  });
  row("Contention fit r2", [&](const SuiteResults& r, [[maybe_unused]] int p) {
    return fmt_num(r.contention.fit.r2, 3);
  });

  benchbin::emit(t);
  std::cout << "Paper reference (QUAD): L1 3.8 | tile 34/18/14 | remote "
               "119/116/107-117 | read 2.5 | copy 7.5-9.2 | contention "
               "200+34N | congestion none\n";
  return 0;
}
