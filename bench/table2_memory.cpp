// Reproduces paper Table II: memory benchmark results — latency plus
// copy/read/write/triad bandwidth (randomized-NT medians and STREAM-style
// peaks) for all five cluster modes, in flat and cache memory mode.
//
// Cache mode runs on a memory-scaled machine (MCDRAM cache capacity scaled
// by --cache_scale) so the footprint/capacity ratio of the randomized
// protocol matches a realistically loaded memory-side cache.
#include <iostream>

#include "bench/suite.hpp"
#include "bench_common.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::bench;

namespace {

void stream_rows(Table& t, const std::vector<SuiteResults>& results,
                 bool mcdram_rows) {
  const char* opn[4] = {"Copy", "Read", "Write", "Triad"};
  const char* kind = mcdram_rows ? "MCDRAM" : "DRAM";
  for (int oi = 0; oi < 4; ++oi) {
    std::vector<std::string> cells{std::string("BW ") + opn[oi] + " " +
                                   kind + " NT/peak [GB/s]"};
    for (const auto& r : results) {
      const int ki = mcdram_rows ? 1 : 0;
      if (mcdram_rows && !r.has_mcdram_streams) {
        cells.push_back("-");
        continue;
      }
      cells.push_back(fmt_num(r.stream[oi][ki].nt_random.gbps.median, 0) +
                      " / " +
                      fmt_num(r.stream[oi][ki].stream_peak.peak_gbps, 0));
    }
    t.add_row(cells);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  obs::Session obs(cli, argc, argv);
  const int iters = static_cast<int>(
      cli.get_int("iters", 31, "latency iterations (paper: 1000)"));
  const bool fast = cli.get_flag("fast", false, "smaller stream configs");
  const std::uint64_t cache_scale = static_cast<std::uint64_t>(cli.get_int(
      "cache_scale", 64,
      "memory scale divisor for cache-mode runs (footprint realism)"));
  const std::string modes_s = cli.get_string(
      "modes", "all",
      "comma-separated cluster modes to run (reduced golden/test runs)");
  const int jobs = cli.get_jobs();
  cli.finish();
  obs.set_config("knl7210 all-modes/flat+cache");
  obs.set_jobs(jobs);

  std::vector<ClusterMode> modes;
  if (modes_s == "all") {
    modes = all_cluster_modes();
  } else {
    for (std::size_t pos = 0; pos < modes_s.size();) {
      std::size_t comma = modes_s.find(',', pos);
      if (comma == std::string::npos) comma = modes_s.size();
      modes.push_back(
          cluster_mode_from_string(modes_s.substr(pos, comma - pos)));
      pos = comma + 1;
    }
  }

  for (MemoryMode mem : {MemoryMode::kFlat, MemoryMode::kCache}) {
    obs.phase(std::string("suite-") + to_string(mem));
    std::vector<SuiteResults> results;
    for (ClusterMode mode : modes) {
      MachineConfig cfg = knl7210(mode, mem);
      if (mem == MemoryMode::kCache) cfg.scale_memory(cache_scale);
      benchbin::observe(obs, cfg);
      SuiteOptions opts;
      opts.run.iters = iters;
      opts.fast = fast;
      opts.jobs = jobs;
      results.push_back(run_suite(cfg, opts));
    }

    Table t(std::string("Table II — memory (") + to_string(mem) + " mode)");
    std::vector<std::string> header{"row"};
    for (ClusterMode mode : modes) header.push_back(to_string(mode));
    t.set_header(header);
    {
      std::vector<std::string> cells{"Latency DRAM [ns]"};
      for (const auto& r : results)
        cells.push_back(fmt_num(r.mem_lat_dram.median, 0));
      t.add_row(cells);
    }
    if (mem == MemoryMode::kFlat) {
      std::vector<std::string> cells{"Latency MCDRAM [ns]"};
      for (const auto& r : results)
        cells.push_back(
            r.mem_lat_mcdram ? fmt_num(r.mem_lat_mcdram->median, 0) : "-");
      t.add_row(cells);
    }
    stream_rows(t, results, /*mcdram_rows=*/false);
    if (mem == MemoryMode::kFlat) stream_rows(t, results, true);
    benchbin::emit(t);
  }
  std::cout
      << "Paper reference (QUAD flat): lat 140/167 | DRAM 70/77/36/74 | "
         "MCDRAM 333/314/171/340; cache mode: lat 166, copy 175, read 124, "
         "write 72, triad 296\n";
  return 0;
}
