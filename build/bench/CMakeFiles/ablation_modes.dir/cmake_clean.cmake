file(REMOVE_RECURSE
  "CMakeFiles/ablation_modes.dir/ablation_modes.cpp.o"
  "CMakeFiles/ablation_modes.dir/ablation_modes.cpp.o.d"
  "ablation_modes"
  "ablation_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
