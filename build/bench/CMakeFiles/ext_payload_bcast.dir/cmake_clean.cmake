file(REMOVE_RECURSE
  "CMakeFiles/ext_payload_bcast.dir/ext_payload_bcast.cpp.o"
  "CMakeFiles/ext_payload_bcast.dir/ext_payload_bcast.cpp.o.d"
  "ext_payload_bcast"
  "ext_payload_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_payload_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
