# Empty dependencies file for ext_payload_bcast.
# This may be replaced when dependencies are built.
