file(REMOVE_RECURSE
  "CMakeFiles/fig10_sort.dir/fig10_sort.cpp.o"
  "CMakeFiles/fig10_sort.dir/fig10_sort.cpp.o.d"
  "fig10_sort"
  "fig10_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
