# Empty compiler generated dependencies file for fig10_sort.
# This may be replaced when dependencies are built.
