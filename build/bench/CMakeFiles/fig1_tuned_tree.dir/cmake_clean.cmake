file(REMOVE_RECURSE
  "CMakeFiles/fig1_tuned_tree.dir/fig1_tuned_tree.cpp.o"
  "CMakeFiles/fig1_tuned_tree.dir/fig1_tuned_tree.cpp.o.d"
  "fig1_tuned_tree"
  "fig1_tuned_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tuned_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
