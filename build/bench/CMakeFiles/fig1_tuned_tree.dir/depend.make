# Empty dependencies file for fig1_tuned_tree.
# This may be replaced when dependencies are built.
