file(REMOVE_RECURSE
  "CMakeFiles/fig5_c2c_bandwidth.dir/fig5_c2c_bandwidth.cpp.o"
  "CMakeFiles/fig5_c2c_bandwidth.dir/fig5_c2c_bandwidth.cpp.o.d"
  "fig5_c2c_bandwidth"
  "fig5_c2c_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_c2c_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
