# Empty dependencies file for fig5_c2c_bandwidth.
# This may be replaced when dependencies are built.
