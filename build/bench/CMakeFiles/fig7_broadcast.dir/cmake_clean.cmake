file(REMOVE_RECURSE
  "CMakeFiles/fig7_broadcast.dir/fig7_broadcast.cpp.o"
  "CMakeFiles/fig7_broadcast.dir/fig7_broadcast.cpp.o.d"
  "fig7_broadcast"
  "fig7_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
