# Empty compiler generated dependencies file for fig7_broadcast.
# This may be replaced when dependencies are built.
