file(REMOVE_RECURSE
  "CMakeFiles/fig8_reduce.dir/fig8_reduce.cpp.o"
  "CMakeFiles/fig8_reduce.dir/fig8_reduce.cpp.o.d"
  "fig8_reduce"
  "fig8_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
