# Empty dependencies file for fig8_reduce.
# This may be replaced when dependencies are built.
