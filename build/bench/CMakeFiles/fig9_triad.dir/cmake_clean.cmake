file(REMOVE_RECURSE
  "CMakeFiles/fig9_triad.dir/fig9_triad.cpp.o"
  "CMakeFiles/fig9_triad.dir/fig9_triad.cpp.o.d"
  "fig9_triad"
  "fig9_triad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_triad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
