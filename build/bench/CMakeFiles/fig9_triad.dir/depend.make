# Empty dependencies file for fig9_triad.
# This may be replaced when dependencies are built.
