file(REMOVE_RECURSE
  "CMakeFiles/table1_cache_to_cache.dir/table1_cache_to_cache.cpp.o"
  "CMakeFiles/table1_cache_to_cache.dir/table1_cache_to_cache.cpp.o.d"
  "table1_cache_to_cache"
  "table1_cache_to_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cache_to_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
