# Empty dependencies file for table1_cache_to_cache.
# This may be replaced when dependencies are built.
