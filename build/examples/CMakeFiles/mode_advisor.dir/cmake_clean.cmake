file(REMOVE_RECURSE
  "CMakeFiles/mode_advisor.dir/mode_advisor.cpp.o"
  "CMakeFiles/mode_advisor.dir/mode_advisor.cpp.o.d"
  "mode_advisor"
  "mode_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mode_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
