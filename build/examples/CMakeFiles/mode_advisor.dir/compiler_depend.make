# Empty compiler generated dependencies file for mode_advisor.
# This may be replaced when dependencies are built.
