# Empty dependencies file for sort_explorer.
# This may be replaced when dependencies are built.
