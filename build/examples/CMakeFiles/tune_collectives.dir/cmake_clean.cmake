file(REMOVE_RECURSE
  "CMakeFiles/tune_collectives.dir/tune_collectives.cpp.o"
  "CMakeFiles/tune_collectives.dir/tune_collectives.cpp.o.d"
  "tune_collectives"
  "tune_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
