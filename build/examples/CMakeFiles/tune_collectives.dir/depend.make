# Empty dependencies file for tune_collectives.
# This may be replaced when dependencies are built.
