
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench/c2c.cpp" "src/CMakeFiles/capmem_bench.dir/bench/c2c.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/c2c.cpp.o.d"
  "/root/repo/src/bench/congestion.cpp" "src/CMakeFiles/capmem_bench.dir/bench/congestion.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/congestion.cpp.o.d"
  "/root/repo/src/bench/contention.cpp" "src/CMakeFiles/capmem_bench.dir/bench/contention.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/contention.cpp.o.d"
  "/root/repo/src/bench/measurement.cpp" "src/CMakeFiles/capmem_bench.dir/bench/measurement.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/measurement.cpp.o.d"
  "/root/repo/src/bench/multiline.cpp" "src/CMakeFiles/capmem_bench.dir/bench/multiline.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/multiline.cpp.o.d"
  "/root/repo/src/bench/pointer_chase.cpp" "src/CMakeFiles/capmem_bench.dir/bench/pointer_chase.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/pointer_chase.cpp.o.d"
  "/root/repo/src/bench/stream.cpp" "src/CMakeFiles/capmem_bench.dir/bench/stream.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/stream.cpp.o.d"
  "/root/repo/src/bench/suite.cpp" "src/CMakeFiles/capmem_bench.dir/bench/suite.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/suite.cpp.o.d"
  "/root/repo/src/bench/windows.cpp" "src/CMakeFiles/capmem_bench.dir/bench/windows.cpp.o" "gcc" "src/CMakeFiles/capmem_bench.dir/bench/windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
