file(REMOVE_RECURSE
  "CMakeFiles/capmem_bench.dir/bench/c2c.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/c2c.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/congestion.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/congestion.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/contention.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/contention.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/measurement.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/measurement.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/multiline.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/multiline.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/pointer_chase.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/pointer_chase.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/stream.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/stream.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/suite.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/suite.cpp.o.d"
  "CMakeFiles/capmem_bench.dir/bench/windows.cpp.o"
  "CMakeFiles/capmem_bench.dir/bench/windows.cpp.o.d"
  "libcapmem_bench.a"
  "libcapmem_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
