file(REMOVE_RECURSE
  "libcapmem_bench.a"
)
