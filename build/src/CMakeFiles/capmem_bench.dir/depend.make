# Empty dependencies file for capmem_bench.
# This may be replaced when dependencies are built.
