
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/baseline_mpi.cpp" "src/CMakeFiles/capmem_coll.dir/coll/baseline_mpi.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/baseline_mpi.cpp.o.d"
  "/root/repo/src/coll/baseline_omp.cpp" "src/CMakeFiles/capmem_coll.dir/coll/baseline_omp.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/baseline_omp.cpp.o.d"
  "/root/repo/src/coll/harness.cpp" "src/CMakeFiles/capmem_coll.dir/coll/harness.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/harness.cpp.o.d"
  "/root/repo/src/coll/payload_bcast.cpp" "src/CMakeFiles/capmem_coll.dir/coll/payload_bcast.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/payload_bcast.cpp.o.d"
  "/root/repo/src/coll/runtime.cpp" "src/CMakeFiles/capmem_coll.dir/coll/runtime.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/runtime.cpp.o.d"
  "/root/repo/src/coll/tuned.cpp" "src/CMakeFiles/capmem_coll.dir/coll/tuned.cpp.o" "gcc" "src/CMakeFiles/capmem_coll.dir/coll/tuned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capmem_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
