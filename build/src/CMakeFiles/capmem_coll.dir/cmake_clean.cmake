file(REMOVE_RECURSE
  "CMakeFiles/capmem_coll.dir/coll/baseline_mpi.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/baseline_mpi.cpp.o.d"
  "CMakeFiles/capmem_coll.dir/coll/baseline_omp.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/baseline_omp.cpp.o.d"
  "CMakeFiles/capmem_coll.dir/coll/harness.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/harness.cpp.o.d"
  "CMakeFiles/capmem_coll.dir/coll/payload_bcast.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/payload_bcast.cpp.o.d"
  "CMakeFiles/capmem_coll.dir/coll/runtime.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/runtime.cpp.o.d"
  "CMakeFiles/capmem_coll.dir/coll/tuned.cpp.o"
  "CMakeFiles/capmem_coll.dir/coll/tuned.cpp.o.d"
  "libcapmem_coll.a"
  "libcapmem_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
