file(REMOVE_RECURSE
  "libcapmem_coll.a"
)
