# Empty compiler generated dependencies file for capmem_coll.
# This may be replaced when dependencies are built.
