file(REMOVE_RECURSE
  "CMakeFiles/capmem_common.dir/common/ascii_plot.cpp.o"
  "CMakeFiles/capmem_common.dir/common/ascii_plot.cpp.o.d"
  "CMakeFiles/capmem_common.dir/common/cli.cpp.o"
  "CMakeFiles/capmem_common.dir/common/cli.cpp.o.d"
  "CMakeFiles/capmem_common.dir/common/linreg.cpp.o"
  "CMakeFiles/capmem_common.dir/common/linreg.cpp.o.d"
  "CMakeFiles/capmem_common.dir/common/log.cpp.o"
  "CMakeFiles/capmem_common.dir/common/log.cpp.o.d"
  "CMakeFiles/capmem_common.dir/common/stats.cpp.o"
  "CMakeFiles/capmem_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/capmem_common.dir/common/table.cpp.o"
  "CMakeFiles/capmem_common.dir/common/table.cpp.o.d"
  "libcapmem_common.a"
  "libcapmem_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
