file(REMOVE_RECURSE
  "libcapmem_common.a"
)
