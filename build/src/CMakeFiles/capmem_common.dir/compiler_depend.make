# Empty compiler generated dependencies file for capmem_common.
# This may be replaced when dependencies are built.
