
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/advisor.cpp" "src/CMakeFiles/capmem_model.dir/model/advisor.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/advisor.cpp.o.d"
  "/root/repo/src/model/collective_model.cpp" "src/CMakeFiles/capmem_model.dir/model/collective_model.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/collective_model.cpp.o.d"
  "/root/repo/src/model/dissemination_opt.cpp" "src/CMakeFiles/capmem_model.dir/model/dissemination_opt.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/dissemination_opt.cpp.o.d"
  "/root/repo/src/model/efficiency.cpp" "src/CMakeFiles/capmem_model.dir/model/efficiency.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/efficiency.cpp.o.d"
  "/root/repo/src/model/fit.cpp" "src/CMakeFiles/capmem_model.dir/model/fit.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/fit.cpp.o.d"
  "/root/repo/src/model/params.cpp" "src/CMakeFiles/capmem_model.dir/model/params.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/params.cpp.o.d"
  "/root/repo/src/model/roofline.cpp" "src/CMakeFiles/capmem_model.dir/model/roofline.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/roofline.cpp.o.d"
  "/root/repo/src/model/sort_model.cpp" "src/CMakeFiles/capmem_model.dir/model/sort_model.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/sort_model.cpp.o.d"
  "/root/repo/src/model/tree_opt.cpp" "src/CMakeFiles/capmem_model.dir/model/tree_opt.cpp.o" "gcc" "src/CMakeFiles/capmem_model.dir/model/tree_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capmem_bench.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/capmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
