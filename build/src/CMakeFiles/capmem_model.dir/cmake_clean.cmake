file(REMOVE_RECURSE
  "CMakeFiles/capmem_model.dir/model/advisor.cpp.o"
  "CMakeFiles/capmem_model.dir/model/advisor.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/collective_model.cpp.o"
  "CMakeFiles/capmem_model.dir/model/collective_model.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/dissemination_opt.cpp.o"
  "CMakeFiles/capmem_model.dir/model/dissemination_opt.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/efficiency.cpp.o"
  "CMakeFiles/capmem_model.dir/model/efficiency.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/fit.cpp.o"
  "CMakeFiles/capmem_model.dir/model/fit.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/params.cpp.o"
  "CMakeFiles/capmem_model.dir/model/params.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/roofline.cpp.o"
  "CMakeFiles/capmem_model.dir/model/roofline.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/sort_model.cpp.o"
  "CMakeFiles/capmem_model.dir/model/sort_model.cpp.o.d"
  "CMakeFiles/capmem_model.dir/model/tree_opt.cpp.o"
  "CMakeFiles/capmem_model.dir/model/tree_opt.cpp.o.d"
  "libcapmem_model.a"
  "libcapmem_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
