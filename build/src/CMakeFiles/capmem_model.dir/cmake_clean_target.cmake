file(REMOVE_RECURSE
  "libcapmem_model.a"
)
