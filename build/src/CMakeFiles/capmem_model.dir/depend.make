# Empty dependencies file for capmem_model.
# This may be replaced when dependencies are built.
