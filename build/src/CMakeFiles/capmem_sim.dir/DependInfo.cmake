
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address.cpp" "src/CMakeFiles/capmem_sim.dir/sim/address.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/address.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/capmem_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/coherence.cpp" "src/CMakeFiles/capmem_sim.dir/sim/coherence.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/coherence.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/capmem_sim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/capmem_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/capmem_sim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/mcdram_cache.cpp" "src/CMakeFiles/capmem_sim.dir/sim/mcdram_cache.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/mcdram_cache.cpp.o.d"
  "/root/repo/src/sim/mem_map.cpp" "src/CMakeFiles/capmem_sim.dir/sim/mem_map.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/mem_map.cpp.o.d"
  "/root/repo/src/sim/memsys.cpp" "src/CMakeFiles/capmem_sim.dir/sim/memsys.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/memsys.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/capmem_sim.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/thread.cpp" "src/CMakeFiles/capmem_sim.dir/sim/thread.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/thread.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/capmem_sim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/capmem_sim.dir/sim/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capmem_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
