file(REMOVE_RECURSE
  "CMakeFiles/capmem_sim.dir/sim/address.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/address.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/coherence.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/coherence.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/config.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/config.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/machine.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/machine.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/mcdram_cache.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/mcdram_cache.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/mem_map.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/mem_map.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/memsys.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/memsys.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/resource.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/resource.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/thread.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/thread.cpp.o.d"
  "CMakeFiles/capmem_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/capmem_sim.dir/sim/topology.cpp.o.d"
  "libcapmem_sim.a"
  "libcapmem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
