file(REMOVE_RECURSE
  "libcapmem_sim.a"
)
