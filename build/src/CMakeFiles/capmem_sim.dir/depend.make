# Empty dependencies file for capmem_sim.
# This may be replaced when dependencies are built.
