file(REMOVE_RECURSE
  "CMakeFiles/capmem_sort.dir/sort/bitonic_net.cpp.o"
  "CMakeFiles/capmem_sort.dir/sort/bitonic_net.cpp.o.d"
  "CMakeFiles/capmem_sort.dir/sort/harness.cpp.o"
  "CMakeFiles/capmem_sort.dir/sort/harness.cpp.o.d"
  "CMakeFiles/capmem_sort.dir/sort/merge.cpp.o"
  "CMakeFiles/capmem_sort.dir/sort/merge.cpp.o.d"
  "CMakeFiles/capmem_sort.dir/sort/parallel_sort.cpp.o"
  "CMakeFiles/capmem_sort.dir/sort/parallel_sort.cpp.o.d"
  "libcapmem_sort.a"
  "libcapmem_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capmem_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
