file(REMOVE_RECURSE
  "libcapmem_sort.a"
)
