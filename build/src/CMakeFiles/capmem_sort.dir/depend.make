# Empty dependencies file for capmem_sort.
# This may be replaced when dependencies are built.
