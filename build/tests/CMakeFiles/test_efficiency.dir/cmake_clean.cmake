file(REMOVE_RECURSE
  "CMakeFiles/test_efficiency.dir/test_efficiency.cpp.o"
  "CMakeFiles/test_efficiency.dir/test_efficiency.cpp.o.d"
  "test_efficiency"
  "test_efficiency.pdb"
  "test_efficiency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
