file(REMOVE_RECURSE
  "CMakeFiles/test_line_table.dir/test_line_table.cpp.o"
  "CMakeFiles/test_line_table.dir/test_line_table.cpp.o.d"
  "test_line_table"
  "test_line_table.pdb"
  "test_line_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
