file(REMOVE_RECURSE
  "CMakeFiles/test_mcdram_cache.dir/test_mcdram_cache.cpp.o"
  "CMakeFiles/test_mcdram_cache.dir/test_mcdram_cache.cpp.o.d"
  "test_mcdram_cache"
  "test_mcdram_cache.pdb"
  "test_mcdram_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mcdram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
