# Empty compiler generated dependencies file for test_mcdram_cache.
# This may be replaced when dependencies are built.
