file(REMOVE_RECURSE
  "CMakeFiles/test_mem_map.dir/test_mem_map.cpp.o"
  "CMakeFiles/test_mem_map.dir/test_mem_map.cpp.o.d"
  "test_mem_map"
  "test_mem_map.pdb"
  "test_mem_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
