# Empty compiler generated dependencies file for test_mem_map.
# This may be replaced when dependencies are built.
