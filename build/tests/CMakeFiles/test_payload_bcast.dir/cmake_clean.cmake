file(REMOVE_RECURSE
  "CMakeFiles/test_payload_bcast.dir/test_payload_bcast.cpp.o"
  "CMakeFiles/test_payload_bcast.dir/test_payload_bcast.cpp.o.d"
  "test_payload_bcast"
  "test_payload_bcast.pdb"
  "test_payload_bcast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payload_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
