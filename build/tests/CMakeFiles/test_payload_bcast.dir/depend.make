# Empty dependencies file for test_payload_bcast.
# This may be replaced when dependencies are built.
