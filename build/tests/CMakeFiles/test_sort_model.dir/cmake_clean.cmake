file(REMOVE_RECURSE
  "CMakeFiles/test_sort_model.dir/test_sort_model.cpp.o"
  "CMakeFiles/test_sort_model.dir/test_sort_model.cpp.o.d"
  "test_sort_model"
  "test_sort_model.pdb"
  "test_sort_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
