# Empty dependencies file for test_sort_model.
# This may be replaced when dependencies are built.
