file(REMOVE_RECURSE
  "CMakeFiles/test_windows.dir/test_windows.cpp.o"
  "CMakeFiles/test_windows.dir/test_windows.cpp.o.d"
  "test_windows"
  "test_windows.pdb"
  "test_windows[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
