// Mode-selection walkthrough (paper §VII: "when using a flat mode, we need
// performance models in order to decide which data has to be allocated in
// which memory"). Fits the model once, then asks the advisor about several
// application profiles — including the merge-sort-shaped one.
//
//   $ ./mode_advisor
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/advisor.hpp"
#include "model/fit.hpp"
#include "model/roofline.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_log_level();
  const int iters = static_cast<int>(cli.get_int("iters", 21));
  cli.finish();

  const MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kFlat);
  bench::SuiteOptions opts;
  opts.run.iters = iters;
  opts.fast = true;
  CapabilityModel m = fit(bench::run_suite(cfg, opts));

  struct Case {
    const char* name;
    AppProfile p;
  };
  const Case cases[] = {
      {"STREAM-like stencil (64 threads, 8 GB)",
       {GiB(8), 64, 1.0, false}},
      {"pointer-chasing graph walk (16 threads, 4 GB)",
       {GiB(4), 16, 0.05, false}},
      {"parallel merge sort (64 threads, 1 GB, thread decay)",
       {GiB(1), 64, 0.9, true}},
      {"huge streaming join (64 threads, 60 GB)",
       {GiB(60), 64, 1.0, false}},
      {"few-thread stream (4 threads)", {GiB(1), 4, 1.0, false}},
  };

  Table t("memory-placement advice (flat mode)");
  t.set_header({"application", "advice", "GB/s", "lat ns", "gain"});
  for (const Case& c : cases) {
    const Advice a = advise(m, c.p);
    t.add_row({c.name, to_string(a.kind), fmt_num(a.expected_gbps, 0),
               fmt_num(a.expected_latency_ns, 0),
               fmt_num(a.speedup_vs_other, 2) + "x"});
    std::cout << "  " << c.name << ":\n    -> " << a.reasoning << "\n";
  }
  std::cout << '\n';
  t.print(std::cout);

  std::cout << "\nroofline view (for comparison; the paper argues it cannot "
               "*tune* algorithms):\n";
  for (const Roofline& r : build_rooflines(m)) {
    std::cout << "  " << r.memory_name << ": ridge at "
              << fmt_num(r.ridge_point(), 1)
              << " flop/byte; a 0.25 flop/byte kernel attains "
              << fmt_num(r.attainable(0.25), 0) << " GFLOP/s\n";
  }
  return 0;
}
