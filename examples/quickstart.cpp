// Quickstart: the full capability-model pipeline in ~60 lines.
//
//   1. configure a simulated KNL (cluster mode x memory mode),
//   2. run the measurement suite on it,
//   3. fit the capability model,
//   4. save it, reload it, and use it to answer a performance question.
//
//   $ ./quickstart --cluster=SNC4 --memory=flat
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/fit.hpp"

using namespace capmem;
using namespace capmem::sim;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_log_level();
  const std::string cluster = cli.get_string("cluster", "QUAD");
  const std::string memory = cli.get_string("memory", "flat");
  const int iters = static_cast<int>(cli.get_int("iters", 21));
  const std::string save = cli.get_string("save", "", "model output file");
  const int jobs = cli.get_jobs();
  cli.finish();

  // 1. The machine under test.
  MachineConfig cfg = knl7210(cluster_mode_from_string(cluster),
                              memory_mode_from_string(memory));
  if (cfg.memory != MemoryMode::kFlat) cfg.scale_memory(64);
  std::cout << "machine: " << cfg.name << " (" << cfg.cores() << " cores, "
            << to_string(cfg.cluster) << "/" << to_string(cfg.memory)
            << ")\n";

  // 2 + 3. Measure and fit (cache half only: a few seconds).
  bench::SuiteOptions opts;
  opts.run.iters = iters;
  opts.jobs = jobs;
  const model::CapabilityModel m = model::fit_cache_model(cfg, opts);

  Table t("fitted capability model");
  t.set_header({"parameter", "value", "meaning"});
  t.add_row({"R_L", fmt_num(m.r_local, 1) + " ns", "local poll hit"});
  t.add_row({"R_tile", fmt_num(m.r_tile, 0) + " ns", "intra-tile transfer"});
  t.add_row({"R_R", fmt_num(m.r_remote, 0) + " ns", "remote transfer"});
  t.add_row({"R_I (DRAM)", fmt_num(m.r_mem_dram, 0) + " ns",
             "line from far memory"});
  t.add_row({"R_I (MCDRAM)", fmt_num(m.r_mem_mcdram, 0) + " ns",
             "line from near memory"});
  t.add_row({"T_C(N)",
             fmt_num(m.contention.alpha, 0) + " + " +
                 fmt_num(m.contention.beta, 1) + "*N ns",
             "N readers on one line"});
  t.print(std::cout);

  // 4. Round-trip and a model-driven answer.
  std::stringstream buf;
  m.save(buf);
  const model::CapabilityModel reloaded = model::CapabilityModel::load(buf);
  std::cout << "\nserialization round-trip: "
            << (reloaded == m ? "ok" : "MISMATCH") << "\n";
  if (!save.empty()) {
    std::ofstream out(save);
    m.save(out);
    std::cout << "model written to " << save << "\n";
  }

  std::cout << "\nQ: how expensive is it if 32 threads poll one flag?\n"
            << "A: T_C(32) = " << fmt_num(m.t_contention(32), 0)
            << " ns vs a single remote read of " << fmt_num(m.r_remote, 0)
            << " ns — serialize wide fan-ins.\n";
  return 0;
}
