// Application-assessment walkthrough (the paper's second use case): run the
// parallel bitonic merge sort under both memories, compare with the sort
// model's predictions, and reproduce the paper's counter-intuitive finding
// that the 5x-bandwidth MCDRAM does not speed this "memory-bound" sort up.
//
//   $ ./sort_explorer --bytes_mb=16 --threads=64
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "exec/experiment.hpp"
#include "model/efficiency.hpp"
#include "model/fit.hpp"
#include "sort/harness.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::sort;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_log_level();
  const std::uint64_t bytes =
      MiB(static_cast<std::uint64_t>(cli.get_int("bytes_mb", 16)));
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const int jobs = cli.get_jobs();
  cli.finish();

  const MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kFlat);
  bench::SuiteOptions sopts;
  sopts.run.iters = 21;
  sopts.jobs = jobs;
  model::CapabilityModel caps = model::fit_cache_model(cfg, sopts);
  // Minimal bandwidth anchor (copy at 1 / saturated thread counts); the
  // four measurements fan out through the exec layer.
  const std::vector<double> anchors = exec::parallel_map<double>(
      4, jobs, [&](int i) {
        const MemKind kind = i / 2 == 0 ? MemKind::kDDR : MemKind::kMCDRAM;
        bench::StreamConfig sc;
        sc.kind = kind;
        sc.run.iters = 5;
        sc.buffer_bytes = KiB(256);
        sc.nthreads = i % 2 == 0
                          ? 1
                          : (kind == MemKind::kDDR ? 16 : cfg.cores());
        return bench::stream_bench(cfg, bench::StreamOp::kCopy, sc)
            .gbps.median;
      });
  for (int ki = 0; ki < 2; ++ki) {
    auto& law = ki == 0 ? caps.bw_dram : caps.bw_mcdram;
    law.per_thread_gbps = anchors[static_cast<std::size_t>(ki * 2)] / 2.0;
    law.aggregate_gbps = anchors[static_cast<std::size_t>(ki * 2 + 1)] / 2.0;
  }
  std::cout << "bandwidth law: DRAM "
            << fmt_num(caps.bw_dram.per_thread_gbps, 1) << " GB/s/thread -> "
            << fmt_num(caps.bw_dram.aggregate_gbps, 0) << " GB/s; MCDRAM "
            << fmt_num(caps.bw_mcdram.per_thread_gbps, 1) << " -> "
            << fmt_num(caps.bw_mcdram.aggregate_gbps, 0) << "\n\n";

  SortOptions so;
  const model::SortModel sm =
      make_sort_model(cfg, caps, MemKind::kMCDRAM, {1, 4, 16, 64}, so, jobs);

  Table t("sorting " + std::to_string(bytes / MiB(1)) + " MB with " +
          std::to_string(threads) + " threads");
  t.set_header({"memory", "measured ms", "model (BW) ms", "model (lat) ms",
                "verified"});
  double per_kind[2] = {0, 0};
  for (int ki = 0; ki < 2; ++ki) {
    const MemKind kind = ki == 0 ? MemKind::kDDR : MemKind::kMCDRAM;
    SortOptions o = so;
    o.kind = kind;
    const SortRun run = parallel_merge_sort(cfg, bytes, threads, o);
    per_kind[ki] = run.total_ns;
    t.add_row({to_string(kind), fmt_num(run.total_ns / 1e6, 2),
               fmt_num(sm.predict(bytes, threads, kind, true) / 1e6, 2),
               fmt_num(sm.predict(bytes, threads, kind, false) / 1e6, 2),
               run.sorted_ok && run.checksum_ok ? "yes" : "NO"});
    // Resource-efficiency assessment from the run's event counters — the
    // paper's "how efficiently does the application use the memory
    // subsystem" question, quantified.
    const model::EfficiencyReport rep = model::assess(
        caps, run.counters, run.total_ns, threads, kind);
    std::cout << "  " << to_string(kind) << ": " << rep.verdict << "\n";
  }
  std::cout << '\n';
  t.print(std::cout);

  const double gain = per_kind[0] / per_kind[1];
  std::cout << "\nMCDRAM speedup over DRAM: " << fmt_num(gain, 2) << "x\n";
  std::cout << "The model explains why (paper §V.B.3): only the first merge "
               "stages involve all\n"
               "cores; the thread count then halves per stage until a single "
               "thread works at\n"
               "~" << fmt_num(caps.bw_dram.per_thread_gbps * 2, 0)
            << " GB/s on either memory — so the 5x aggregate bandwidth of "
               "MCDRAM is\n"
               "mostly unusable, while its higher latency still costs.\n";
  return 0;
}
