// Topology explorer: renders the simulated die (paper Figs. 2-3) — the
// tile grid with IMC/EDC stops, the cluster-domain partition for every
// mode, and a worked L2-miss walk showing how the cluster mode changes the
// directory placement (the paper's Fig. 3 steps 1-4).
//
//   $ ./topology_explorer --cluster=SNC4
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/mem_map.hpp"
#include "sim/topology.hpp"

using namespace capmem;
using namespace capmem::sim;

namespace {

void render_grid(const MachineConfig& cfg, const Topology& topo,
                 ClusterMode mode) {
  // Build a map from grid coordinate to label.
  std::map<std::pair<int, int>, std::string> label;
  for (int t = 0; t < topo.active_tiles(); ++t) {
    const Coord c = topo.tile_coord(t);
    label[{c.row, c.col}] =
        "T" + std::to_string(t) + "/" +
        std::to_string(topo.domain_of_tile(t, mode));
  }
  for (int i = 0; i < cfg.dram_controllers; ++i) {
    const Coord c = topo.imc_coord(i);
    label[{c.row, c.col}] += "*IMC" + std::to_string(i);
  }
  for (int e = 0; e < cfg.mcdram_controllers; ++e) {
    const Coord c = topo.edc_coord(e);
    label[{c.row, c.col}] += "*EDC" + std::to_string(e);
  }
  std::cout << "Die grid under " << to_string(mode)
            << " (Tt/d = tile t in domain d; * marks a shared stop):\n";
  for (int r = 0; r < cfg.mesh_rows; ++r) {
    for (int c = 0; c < cfg.mesh_cols; ++c) {
      const auto it = label.find({r, c});
      std::string cell = it == label.end() ? "." : it->second;
      cell.resize(12, ' ');
      std::cout << cell;
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_log_level();
  const std::string cluster = cli.get_string("cluster", "SNC4");
  cli.finish();
  const ClusterMode mode = cluster_mode_from_string(cluster);
  const MachineConfig cfg = knl7210(mode, MemoryMode::kFlat);
  const Topology topo(cfg);
  const MemMap map(cfg, topo);

  render_grid(cfg, topo, mode);

  Table t("domain census");
  t.set_header({"mode", "domains", "tiles per domain"});
  for (ClusterMode m : all_cluster_modes()) {
    std::string sizes;
    for (int d = 0; d < Topology::domains(m); ++d) {
      if (!sizes.empty()) sizes += ", ";
      sizes += std::to_string(topo.tiles_in_domain(m, d).size());
    }
    t.add_row({to_string(m), fmt_num(Topology::domains(m), 0), sizes});
  }
  t.print(std::cout);

  // Fig. 3-style walk: where does an L2 miss from tile 0 go?
  std::cout << "\nL2-miss walk from tile 0 (paper Fig. 3 steps):\n";
  const Coord req = topo.tile_coord(0);
  for (Line line : {Line{100}, Line{20000}, Line{30000000}}) {
    const MemTarget tgt = map.target(line, {MemKind::kDDR, std::nullopt});
    const Coord home = topo.tile_coord(tgt.home_tile);
    std::cout << "  line " << line << ": (1) miss at tile 0 (" << req.row
              << "," << req.col << ") -> (2) directory at tile "
              << tgt.home_tile << " (" << home.row << "," << home.col
              << "), domain "
              << topo.domain_of_tile(tgt.home_tile, mode)
              << " -> (3) forward to " << to_string(tgt.kind) << " channel "
              << tgt.channel << " at (" << tgt.mem_stop.row << ","
              << tgt.mem_stop.col << ") -> (4) reply; path "
              << topo.hops(req, home) + topo.hops(home, tgt.mem_stop) +
                     topo.hops(tgt.mem_stop, req)
              << " hops\n";
  }
  std::cout << "\nUnder A2A the directory may land anywhere on the die; "
               "quadrant/SNC keep it in\nthe memory's quadrant (shorter "
               "step 2-3 legs), which is the entire difference\nbetween "
               "the modes for an L2 miss (paper SII.D).\n";
  return 0;
}
