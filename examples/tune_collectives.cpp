// Model-tuning walkthrough (the paper's first use case): fit the capability
// model, derive the optimal broadcast/reduce tree and dissemination barrier
// for a chosen thread count, then validate the predictions by running the
// tuned algorithms — and the naive baselines — on the simulated machine.
//
//   $ ./tune_collectives --threads=64 --cluster=SNC4
#include <iostream>

#include "coll/harness.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "model/fit.hpp"

using namespace capmem;
using namespace capmem::sim;
using namespace capmem::model;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  cli.get_log_level();
  const int threads = static_cast<int>(cli.get_int("threads", 64));
  const std::string cluster = cli.get_string("cluster", "SNC4");
  const int iters = static_cast<int>(cli.get_int("iters", 101));
  const int jobs = cli.get_jobs();
  cli.finish();

  const MachineConfig cfg =
      knl7210(cluster_mode_from_string(cluster), MemoryMode::kFlat);
  bench::SuiteOptions sopts;
  sopts.run.iters = 21;
  sopts.jobs = jobs;
  const CapabilityModel m = fit_cache_model(cfg, sopts);

  // What the optimizer decides, and why.
  const auto d = optimize_dissemination(m, threads, MemKind::kMCDRAM);
  std::cout << "barrier: dissemination with m=" << d.m << ", r=" << d.rounds
            << " rounds (predicted " << fmt_num(d.predicted_ns, 0)
            << " ns)\n";
  std::cout << "  cost law: r*(R_I + m*R_R); larger m trades rounds for "
               "per-round transfers\n\n";
  const ThreadLayout lay = layout_for(threads, cfg.active_tiles,
                                      cfg.cores_per_tile *
                                          cfg.threads_per_core,
                                      /*scatter=*/true);
  const TunedTree tree =
      optimize_tree(m, lay.tiles, TreeKind::kBroadcast, MemKind::kMCDRAM);
  std::cout << "broadcast: tuned tree over " << lay.tiles
            << " tiles, root fanout " << tree.root.fanout() << ", depth "
            << tree_depth(tree.root) << " (predicted "
            << fmt_num(tree.predicted_ns, 0) << " ns inter-tile)\n";
  std::cout << render_tree(tree.root) << "\n";

  // Validate: model vs simulation, tuned vs baselines.
  Table t("measured on the simulated KNL (" + cluster + "-flat, " +
          std::to_string(threads) + " threads)");
  t.set_header(
      {"algorithm", "median ns", "model best", "model worst", "vs tuned"});
  double tuned_med[3] = {0, 0, 0};
  const coll::Algo algos[9] = {
      coll::Algo::kTunedBarrier, coll::Algo::kTunedBroadcast,
      coll::Algo::kTunedReduce,  coll::Algo::kOmpBarrier,
      coll::Algo::kOmpBroadcast, coll::Algo::kOmpReduce,
      coll::Algo::kMpiBarrier,   coll::Algo::kMpiBroadcast,
      coll::Algo::kMpiReduce};
  coll::HarnessOptions ho;
  ho.iters = iters;
  std::vector<coll::SweepPoint> points;
  for (int i = 0; i < 9; ++i) points.push_back({algos[i], threads});
  const std::vector<coll::CollResult> results =
      coll::run_collective_sweep(cfg, points, &m, ho, jobs);
  for (int i = 0; i < 9; ++i) {
    const coll::CollResult& r = results[static_cast<std::size_t>(i)];
    if (r.errors != 0) {
      std::cerr << "validation failed for " << coll::to_string(algos[i])
                << "\n";
      return 1;
    }
    if (i < 3) tuned_med[i] = r.per_iter_max.median;
    t.add_row({coll::to_string(algos[i]), fmt_num(r.per_iter_max.median, 0),
               r.has_band ? fmt_num(r.band.best_ns, 0) : "-",
               r.has_band ? fmt_num(r.band.worst_ns, 0) : "-",
               i < 3 ? "1x"
                     : fmt_num(r.per_iter_max.median / tuned_med[i % 3], 1) +
                           "x"});
  }
  t.print(std::cout);
  return 0;
}
