#!/usr/bin/env python3
"""Run bench/perf_sim and emit/check/compare tracked benchmark documents.

Three jobs, all driven from the perf_sim JSON dump (capmem.perf_sim.v1):

  * Emit: run perf_sim, optionally join a recorded baseline run, and write a
    tracked document (BENCH_PR4.json, BENCH_PR6.json, ... — tag it with
    --schema) with events/sec, ns/event, wall time and peak RSS per cell
    plus per-cell speedup vs the baseline. The emitted document is
    validated against its own --schema tag before it is written: a missing
    run section, empty workload rows, or a cell without the fields the
    check/compare modes rely on is a loud failure, not a silent artifact.

  * Check (--expect FILE): compare the DETERMINISTIC part of the fresh run —
    steps and virt_ns per (workload, mode) cell — against the cells recorded
    in FILE. Any mismatch exits 2. Timing is never compared: wall clock,
    events/sec and RSS are informational and may move with the host. This
    is the CI perf-smoke gate.

  * Compare (--compare OLD NEW): the perf-trajectory sentinel. Reads two
    emitted documents (no perf_sim run needed), prints a per-workload delta
    table of events/sec, and exits 3 when any cell of NEW falls below
    --min-ratio x its OLD throughput, or when OLD has a workload row that
    NEW is missing. The default --min-ratio 0.2 tolerates shared-runner
    noise while still catching order-of-magnitude trajectory collapses.

Examples:
  python3 scripts/bench_json.py --perf-sim build/bench/perf_sim \
      --baseline BENCH_PR4.json --out BENCH_PR4.json
  python3 scripts/bench_json.py --perf-sim build/bench/perf_sim \
      --quick --expect BENCH_PR6.json --out bench_smoke.json
  python3 scripts/bench_json.py --compare BENCH_PR6.json bench_smoke.json \
      --quick --min-ratio 0.2
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_perf_sim(binary, quick, reps, extra):
    """Runs perf_sim with a --json-out temp file and returns the parsed doc."""
    fd, path = tempfile.mkstemp(suffix=".json", prefix="perf_sim_")
    os.close(fd)
    cmd = [binary, "--json-out", path]
    if quick:
        cmd.append("--quick")
    if reps is not None:
        cmd += ["--reps", str(reps)]
    cmd += extra
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            sys.exit("bench_json: perf_sim exited %d" % proc.returncode)
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def cells_of(doc, quick=False):
    """Cell list keyed by (workload, mode) from either schema. For a
    bench_pr4 doc, `quick` selects the quick_run section (the CI smoke
    shape) instead of the full run."""
    rows = doc.get("results")
    if rows is None:  # bench_pr4 doc
        section = "quick_run" if quick else "run"
        rows = doc.get(section, {}).get("results", [])
    return {(r["workload"], r["mode"]): r for r in rows}


def check_expected(run_doc, expect_doc, quick=False):
    """Compares steps/virt_ns per cell; returns a list of mismatch strings."""
    got = cells_of(run_doc)
    want = cells_of(expect_doc, quick=quick)
    errors = []
    if not want:
        return ["expected document has no %s cells"
                % ("quick_run" if quick else "run")]
    for key, w in sorted(want.items()):
        g = got.get(key)
        if g is None:
            errors.append("missing cell %s/%s" % key)
            continue
        for field in ("steps", "virt_ns", "threads"):
            if g.get(field) != w.get(field):
                errors.append(
                    "%s/%s %s: got %r want %r"
                    % (key[0], key[1], field, g.get(field), w.get(field))
                )
    return errors


def enrich(rows):
    """Adds derived ns/event to each cell (events/sec is already recorded)."""
    for r in rows:
        steps = r.get("steps", 0)
        wall = r.get("best_wall_s", 0.0)
        r["ns_per_event"] = 1e9 * wall / steps if steps > 0 else 0.0
    return rows


# Every emitted cell must carry the deterministic fields (--expect) and the
# timing fields (--compare); a document missing them would silently pass
# future gates by having nothing to gate on.
REQUIRED_CELL_FIELDS = (
    "workload", "mode", "threads", "steps", "virt_ns",
    "events_per_sec", "best_wall_s", "ns_per_event",
)


def validate_doc(doc, schema, section):
    """Validates an emitted document against its own schema tag; returns a
    list of problem strings (empty when the document is well-formed)."""
    problems = []
    if doc.get("schema") != schema:
        problems.append("schema tag %r != requested %r"
                        % (doc.get("schema"), schema))
    rows = doc.get(section, {}).get("results", [])
    if not rows:
        problems.append("section %r has no workload rows" % section)
    seen = set()
    for i, r in enumerate(rows):
        for field in REQUIRED_CELL_FIELDS:
            if field not in r:
                problems.append("%s cell %d (%s/%s) missing field %r"
                                % (section, i, r.get("workload", "?"),
                                   r.get("mode", "?"), field))
        key = (r.get("workload"), r.get("mode"))
        if key in seen:
            problems.append("%s has duplicate cell %s/%s" % ((section,) + key))
        seen.add(key)
    return problems


def load_doc_cells(path, quick):
    """Loads an emitted document and returns its cells, failing loudly on a
    missing/empty workload section (a truncated artifact must not pass)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit("bench_json: cannot read %s: %s" % (path, e))
    cells = cells_of(doc, quick=quick)
    if not cells:
        sys.exit("bench_json: %s has no %s workload rows"
                 % (path, "quick_run" if quick else "run"))
    return cells


def compare_docs(old_path, new_path, min_ratio, quick):
    """Perf-trajectory sentinel: per-workload events/sec delta table.
    Returns the number of gate failures (regressions + missing rows)."""
    old = load_doc_cells(old_path, quick)
    new = load_doc_cells(new_path, quick)
    rows = []
    failures = 0
    for key in sorted(set(old) | set(new)):
        label = "%s/%s" % key
        o, n = old.get(key), new.get(key)
        if n is None:
            rows.append((label, o.get("events_per_sec", 0.0), None, None,
                         "MISSING in %s" % new_path))
            failures += 1
            continue
        if o is None:
            rows.append((label, None, n.get("events_per_sec", 0.0), None,
                         "new workload"))
            continue
        o_eps = o.get("events_per_sec", 0.0)
        n_eps = n.get("events_per_sec", 0.0)
        if o_eps <= 0:
            rows.append((label, o_eps, n_eps, None, "no old timing"))
            continue
        ratio = n_eps / o_eps
        if ratio < min_ratio:
            rows.append((label, o_eps, n_eps, ratio,
                         "REGRESSION (< %.2fx)" % min_ratio))
            failures += 1
        else:
            rows.append((label, o_eps, n_eps, ratio, "ok"))

    def fmt(v, ratio=False):
        if v is None:
            return "-"
        return "%.3f" % v if ratio else "%.0f" % v

    header = ("workload", "old ev/s", "new ev/s", "ratio", "verdict")
    table = [header] + [
        (label, fmt(o_eps), fmt(n_eps), fmt(ratio, ratio=True), verdict)
        for label, o_eps, n_eps, ratio, verdict in rows
    ]
    widths = [max(len(r[c]) for r in table) for c in range(len(header))]
    for r in table:
        print("  ".join(cell.ljust(w) for cell, w in zip(r, widths)).rstrip())
    print("compare: %d cell(s), %d failure(s), floor %.2fx of %s"
          % (len(rows), failures, min_ratio, old_path))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--perf-sim", default=None,
        help="path to the binary (required unless --compare)",
    )
    ap.add_argument("--quick", action="store_true", help="reduced sizes")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--out", default=None, help="write the document here")
    ap.add_argument(
        "--baseline",
        default=None,
        help="recorded run (perf_sim or bench_pr4 JSON) to join and "
        "compute speedups against",
    )
    ap.add_argument(
        "--record-quick",
        action="store_true",
        help="additionally run perf_sim --quick and record its cells as "
        "quick_run (what CI's --quick --expect checks against)",
    )
    ap.add_argument(
        "--expect",
        default=None,
        help="recorded run whose deterministic cells (steps, virt_ns) must "
        "match this run exactly; mismatch exits 2",
    )
    ap.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="perf-trajectory sentinel: delta table of events/sec between "
        "two emitted documents; exits 3 when a NEW cell drops below "
        "--min-ratio x OLD or an OLD workload row is missing from NEW",
    )
    ap.add_argument(
        "--min-ratio",
        type=float,
        default=0.2,
        help="--compare floor: NEW must keep at least this fraction of "
        "OLD's events/sec per cell (default 0.2; CI timing is noisy)",
    )
    ap.add_argument(
        "--schema",
        default="capmem.bench_pr4.v1",
        help="schema tag stamped on the emitted document (e.g. "
        "capmem.bench_pr6.v1); checking ignores the tag",
    )
    ap.add_argument(
        "extra", nargs="*", help="extra perf_sim args after '--'"
    )
    args = ap.parse_args()

    if args.compare:
        if args.min_ratio <= 0:
            sys.exit("bench_json: --min-ratio must be positive")
        failures = compare_docs(args.compare[0], args.compare[1],
                                args.min_ratio, args.quick)
        sys.exit(3 if failures else 0)

    if not args.perf_sim:
        sys.exit("bench_json: --perf-sim is required unless --compare")

    run = run_perf_sim(args.perf_sim, args.quick, args.reps, args.extra)
    enrich(run.get("results", []))
    section = "quick_run" if args.quick else "run"
    doc = {"schema": args.schema, section: run}
    if args.record_quick and not args.quick:
        quick_run = run_perf_sim(args.perf_sim, True, None, args.extra)
        enrich(quick_run.get("results", []))
        doc["quick_run"] = quick_run

    if args.baseline:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        base = base_doc.get("run", base_doc) if "run" in base_doc else base_doc
        if "baseline" in base_doc:  # chain: keep the oldest recorded run
            base = base_doc["baseline"]
        enrich(base.get("results", []))
        doc["baseline"] = base
        speedup = {}
        base_cells = cells_of({"results": base.get("results", [])})
        for key, r in cells_of(run).items():
            b = base_cells.get(key)
            if b and b.get("events_per_sec", 0) > 0:
                speedup["%s %s" % key] = round(
                    r["events_per_sec"] / b["events_per_sec"], 3
                )
        doc["speedup_events_per_sec"] = speedup

    problems = validate_doc(doc, args.schema, section)
    if args.record_quick and not args.quick:
        problems += validate_doc(doc, args.schema, "quick_run")
    if problems:
        for p in problems:
            print("SCHEMA VIOLATION:", p, file=sys.stderr)
        sys.exit("bench_json: emitted document fails self-validation")

    rc = 0
    if args.expect:
        with open(args.expect) as f:
            expect_doc = json.load(f)
        errors = check_expected(run, expect_doc, quick=args.quick)
        if errors:
            for e in errors:
                print("CHECKSUM MISMATCH:", e, file=sys.stderr)
            rc = 2
        else:
            n = len(cells_of(expect_doc, quick=args.quick))
            print("checksums match (%d cells)" % n, file=sys.stderr)

    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    sys.exit(rc)


if __name__ == "__main__":
    main()
