#!/usr/bin/env python3
"""Run bench/perf_sim and emit/check a tracked benchmark document.

Two jobs, both driven from the perf_sim JSON dump (capmem.perf_sim.v1):

  * Emit: run perf_sim, optionally join a recorded baseline run, and write a
    tracked document (BENCH_PR4.json, BENCH_PR6.json, ... — tag it with
    --schema) with events/sec, ns/event, wall time and peak RSS per cell
    plus per-cell speedup vs the baseline.

  * Check (--expect FILE): compare the DETERMINISTIC part of the fresh run —
    steps and virt_ns per (workload, mode) cell — against the cells recorded
    in FILE. Any mismatch exits nonzero. Timing is never compared: wall
    clock, events/sec and RSS are informational and may move with the host.
    This is the CI perf-smoke gate.

Examples:
  python3 scripts/bench_json.py --perf-sim build/bench/perf_sim \
      --baseline BENCH_PR4.json --out BENCH_PR4.json
  python3 scripts/bench_json.py --perf-sim build/bench/perf_sim \
      --quick --expect BENCH_PR4.json --out bench_smoke.json
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_perf_sim(binary, quick, reps, extra):
    """Runs perf_sim with a --json-out temp file and returns the parsed doc."""
    fd, path = tempfile.mkstemp(suffix=".json", prefix="perf_sim_")
    os.close(fd)
    cmd = [binary, "--json-out", path]
    if quick:
        cmd.append("--quick")
    if reps is not None:
        cmd += ["--reps", str(reps)]
    cmd += extra
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            sys.exit("bench_json: perf_sim exited %d" % proc.returncode)
        with open(path) as f:
            return json.load(f)
    finally:
        os.unlink(path)


def cells_of(doc, quick=False):
    """Cell list keyed by (workload, mode) from either schema. For a
    bench_pr4 doc, `quick` selects the quick_run section (the CI smoke
    shape) instead of the full run."""
    rows = doc.get("results")
    if rows is None:  # bench_pr4 doc
        section = "quick_run" if quick else "run"
        rows = doc.get(section, {}).get("results", [])
    return {(r["workload"], r["mode"]): r for r in rows}


def check_expected(run_doc, expect_doc, quick=False):
    """Compares steps/virt_ns per cell; returns a list of mismatch strings."""
    got = cells_of(run_doc)
    want = cells_of(expect_doc, quick=quick)
    errors = []
    if not want:
        return ["expected document has no %s cells"
                % ("quick_run" if quick else "run")]
    for key, w in sorted(want.items()):
        g = got.get(key)
        if g is None:
            errors.append("missing cell %s/%s" % key)
            continue
        for field in ("steps", "virt_ns", "threads"):
            if g.get(field) != w.get(field):
                errors.append(
                    "%s/%s %s: got %r want %r"
                    % (key[0], key[1], field, g.get(field), w.get(field))
                )
    return errors


def enrich(rows):
    """Adds derived ns/event to each cell (events/sec is already recorded)."""
    for r in rows:
        steps = r.get("steps", 0)
        wall = r.get("best_wall_s", 0.0)
        r["ns_per_event"] = 1e9 * wall / steps if steps > 0 else 0.0
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--perf-sim", required=True, help="path to the binary")
    ap.add_argument("--quick", action="store_true", help="reduced sizes")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--out", default=None, help="write the document here")
    ap.add_argument(
        "--baseline",
        default=None,
        help="recorded run (perf_sim or bench_pr4 JSON) to join and "
        "compute speedups against",
    )
    ap.add_argument(
        "--record-quick",
        action="store_true",
        help="additionally run perf_sim --quick and record its cells as "
        "quick_run (what CI's --quick --expect checks against)",
    )
    ap.add_argument(
        "--expect",
        default=None,
        help="recorded run whose deterministic cells (steps, virt_ns) must "
        "match this run exactly; mismatch exits 2",
    )
    ap.add_argument(
        "--schema",
        default="capmem.bench_pr4.v1",
        help="schema tag stamped on the emitted document (e.g. "
        "capmem.bench_pr6.v1); checking ignores the tag",
    )
    ap.add_argument(
        "extra", nargs="*", help="extra perf_sim args after '--'"
    )
    args = ap.parse_args()

    run = run_perf_sim(args.perf_sim, args.quick, args.reps, args.extra)
    enrich(run.get("results", []))
    section = "quick_run" if args.quick else "run"
    doc = {"schema": args.schema, section: run}
    if args.record_quick and not args.quick:
        quick_run = run_perf_sim(args.perf_sim, True, None, args.extra)
        enrich(quick_run.get("results", []))
        doc["quick_run"] = quick_run

    if args.baseline:
        with open(args.baseline) as f:
            base_doc = json.load(f)
        base = base_doc.get("run", base_doc) if "run" in base_doc else base_doc
        if "baseline" in base_doc:  # chain: keep the oldest recorded run
            base = base_doc["baseline"]
        enrich(base.get("results", []))
        doc["baseline"] = base
        speedup = {}
        base_cells = cells_of({"results": base.get("results", [])})
        for key, r in cells_of(run).items():
            b = base_cells.get(key)
            if b and b.get("events_per_sec", 0) > 0:
                speedup["%s %s" % key] = round(
                    r["events_per_sec"] / b["events_per_sec"], 3
                )
        doc["speedup_events_per_sec"] = speedup

    rc = 0
    if args.expect:
        with open(args.expect) as f:
            expect_doc = json.load(f)
        errors = check_expected(run, expect_doc, quick=args.quick)
        if errors:
            for e in errors:
                print("CHECKSUM MISMATCH:", e, file=sys.stderr)
            rc = 2
        else:
            n = len(cells_of(expect_doc, quick=args.quick))
            print("checksums match (%d cells)" % n, file=sys.stderr)

    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    sys.exit(rc)


if __name__ == "__main__":
    main()
