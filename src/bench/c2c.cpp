#include "bench/c2c.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/experiment.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::AccessOpts;
using sim::AccessType;
using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::Task;

const char* to_string(PrepState s) {
  switch (s) {
    case PrepState::kM: return "M";
    case PrepState::kE: return "E";
    case PrepState::kS: return "S";
    case PrepState::kF: return "F";
    case PrepState::kI: return "I";
  }
  return "?";
}

namespace {

int pick_helper_core(const sim::MachineConfig& cfg, int victim, int probe,
                     int requested) {
  if (requested >= 0) return requested;
  const int cpt = cfg.cores_per_tile;
  for (int c = 0; c < cfg.cores(); ++c) {
    if (c / cpt != victim / cpt && c / cpt != probe / cpt) return c;
  }
  CAPMEM_CHECK_MSG(false, "machine too small for a helper tile");
}

}  // namespace

Summary c2c_read_latency(const sim::MachineConfig& cfg, int victim_core,
                         int probe_core, PrepState state,
                         const C2COptions& opts) {
  CAPMEM_CHECK(victim_core >= 0 && victim_core < cfg.cores());
  CAPMEM_CHECK(probe_core >= 0 && probe_core < cfg.cores());
  Machine m(cfg);
  const int iters = opts.run.iters;
  const Addr pool = m.alloc(
      "c2c_pool",
      static_cast<std::uint64_t>(opts.pool_lines) * kLineBytes, {}, false);

  // Pre-draw the randomized line sequence (same for all threads).
  Rng rng(opts.run.seed);
  std::vector<Addr> line_addr;
  line_addr.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    line_addr.push_back(
        pool + rng.next_below(static_cast<std::uint64_t>(opts.pool_lines)) *
                   kLineBytes);
  }

  SampleVec samples;
  const bool helper_needed =
      state == PrepState::kS || state == PrepState::kF;
  const int helper_core =
      helper_needed
          ? pick_helper_core(cfg, victim_core, probe_core, opts.helper_core)
          : -1;

  // Iteration protocol (all threads execute the same barrier sequence):
  //   sync -> victim flushes the line (untimed reset)
  //   sync -> prep 1: victim M-write / E,S-read; helper F-read
  //   sync -> prep 2: victim F-read; helper S-read
  //   sync -> probe performs the timed read
  m.add_thread({victim_core, 0}, [&, state](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.sync();
      ctx.machine().flush_buffer(line_addr[static_cast<std::size_t>(i)],
                                 kLineBytes);
      co_await ctx.sync();
      const Addr a = line_addr[static_cast<std::size_t>(i)];
      if (state == PrepState::kM) {
        co_await ctx.touch(a, AccessType::kWrite);
      } else if (state == PrepState::kE || state == PrepState::kS) {
        co_await ctx.touch(a, AccessType::kRead);
      }
      co_await ctx.sync();
      if (state == PrepState::kF) {
        co_await ctx.touch(a, AccessType::kRead);
      }
      co_await ctx.sync();
    }
  });
  if (helper_needed) {
    m.add_thread({helper_core, 0}, [&, state](Ctx& ctx) -> Task {
      for (int i = 0; i < iters; ++i) {
        co_await ctx.sync();
        co_await ctx.sync();
        const Addr a = line_addr[static_cast<std::size_t>(i)];
        if (state == PrepState::kF) {
          co_await ctx.touch(a, AccessType::kRead);
        }
        co_await ctx.sync();
        if (state == PrepState::kS) {
          co_await ctx.touch(a, AccessType::kRead);
        }
        co_await ctx.sync();
      }
    });
  }
  m.add_thread({probe_core, 0}, [&](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.sync();
      co_await ctx.sync();
      co_await ctx.sync();
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      co_await ctx.touch(line_addr[static_cast<std::size_t>(i)],
                         AccessType::kRead);
      samples.add(ctx.now() - t0);
    }
  });
  m.run();
  return samples.summary();
}

std::vector<Series> c2c_latency_per_core(const sim::MachineConfig& cfg,
                                         int origin,
                                         std::vector<PrepState> states,
                                         const C2COptions& opts, int jobs) {
  // Enumerate the (state, victim core) grid up front so the cells can fan
  // out as independent jobs; the series are then assembled in grid order.
  struct Cell {
    PrepState state;
    int core;
  };
  std::vector<Cell> cells;
  for (PrepState st : states) {
    for (int core = 0; core < cfg.cores(); ++core) {
      if (core == origin) continue;
      cells.push_back({st, core});
    }
  }
  const std::vector<Summary> measured = exec::parallel_map<Summary>(
      static_cast<int>(cells.size()), jobs, [&](int i) {
        const Cell& c = cells[static_cast<std::size_t>(i)];
        return c2c_read_latency(cfg, /*victim=*/c.core, /*probe=*/origin,
                                c.state, opts);
      });

  std::vector<Series> out;
  std::size_t idx = 0;
  for (PrepState st : states) {
    Series s;
    s.name = to_string(st);
    for (int core = 0; core < cfg.cores(); ++core) {
      if (core == origin) continue;
      s.add(core, measured[idx++]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace capmem::bench
