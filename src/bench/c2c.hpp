// Cache-to-cache single-line latency benchmark (paper §IV.A.1, Table I
// "Latency", Figure 4).
//
// A victim thread prepares one cache line in a controlled MESIF state
// (optionally with a helper thread for S/F), then a probe thread reads it
// and the read cost is recorded. Lines are drawn randomly from a pool, the
// preparation happens between harness barriers, and medians are reported —
// the BenchIT-style protocol.
#pragma once

#include "bench/measurement.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

/// State the line is prepared into, in the victim's cache.
enum class PrepState { kM, kE, kS, kF, kI };
const char* to_string(PrepState s);

struct C2COptions {
  RunOpts run;
  int pool_lines = 256;  ///< lines in the randomized pool
  /// Core hosting the helper thread for S/F preparation; must differ in
  /// tile from both victim and prober. -1 = auto-pick.
  int helper_core = -1;
};

/// Latency of `probe_core` reading a line held by `victim_core`'s cache in
/// `state`. With state kI the line is flushed and the read is served by
/// memory, so this doubles as the memory-latency probe of Table II.
Summary c2c_read_latency(const sim::MachineConfig& cfg, int victim_core,
                         int probe_core, PrepState state,
                         const C2COptions& opts = {});

/// Figure 4: latency of core `origin` reading a line in every other core's
/// cache, per state. Returns one Series per state with x = core id. Each
/// (state, core) cell is an isolated simulation and runs on `jobs` host
/// threads (exec layer); results are bit-identical for any jobs value.
std::vector<Series> c2c_latency_per_core(const sim::MachineConfig& cfg,
                                         int origin,
                                         std::vector<PrepState> states,
                                         const C2COptions& opts = {},
                                         int jobs = 1);

}  // namespace capmem::bench
