#include "bench/congestion.hpp"

#include "common/check.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::Task;

Summary congestion_point(const sim::MachineConfig& cfg, int pairs,
                         const CongestionOptions& opts) {
  CAPMEM_CHECK(pairs >= 1);
  const int tiles = cfg.active_tiles;
  CAPMEM_CHECK_MSG(pairs * 2 <= tiles,
                   "need two tiles per pair, have " << tiles);
  Machine m(cfg);
  const int iters = opts.run.iters;

  // Pair p: pinger on tile p, ponger on tile p + tiles/2 — every ping-pong
  // crosses roughly half the mesh.
  std::vector<Addr> ping(static_cast<std::size_t>(pairs));
  std::vector<Addr> pong(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    ping[static_cast<std::size_t>(p)] =
        m.alloc("ping" + std::to_string(p), kLineBytes, {}, true);
    pong[static_cast<std::size_t>(p)] =
        m.alloc("pong" + std::to_string(p), kLineBytes, {}, true);
  }

  std::vector<double> rtt(static_cast<std::size_t>(pairs), 0.0);
  SampleVec per_iter_max;

  for (int p = 0; p < pairs; ++p) {
    const int tile_a = p;
    const int tile_b = p + tiles / 2;
    m.add_thread({tile_a * cfg.cores_per_tile, 0},
                 [&, p](Ctx& ctx) -> Task {
                   const Addr my_ping = ping[static_cast<std::size_t>(p)];
                   const Addr my_pong = pong[static_cast<std::size_t>(p)];
                   for (int i = 0; i < iters; ++i) {
                     co_await ctx.sync();
                     const Nanos t0 = ctx.now();
                     co_await ctx.write_u64(my_ping,
                                            static_cast<std::uint64_t>(i) + 1);
                     co_await ctx.wait_eq(my_pong,
                                          static_cast<std::uint64_t>(i) + 1);
                     rtt[static_cast<std::size_t>(p)] = ctx.now() - t0;
                     co_await ctx.sync();
                     if (p == 0) {
                       double mx = 0;
                       for (double d : rtt) mx = std::max(mx, d);
                       per_iter_max.add(mx);
                     }
                   }
                 });
    m.add_thread({tile_b * cfg.cores_per_tile, 0},
                 [&, p](Ctx& ctx) -> Task {
                   const Addr my_ping = ping[static_cast<std::size_t>(p)];
                   const Addr my_pong = pong[static_cast<std::size_t>(p)];
                   for (int i = 0; i < iters; ++i) {
                     co_await ctx.sync();
                     co_await ctx.wait_eq(my_ping,
                                          static_cast<std::uint64_t>(i) + 1);
                     co_await ctx.write_u64(my_pong,
                                            static_cast<std::uint64_t>(i) + 1);
                     co_await ctx.sync();
                   }
                 });
  }
  m.run();
  return per_iter_max.summary();
}

CongestionResult congestion_pairs(const sim::MachineConfig& cfg,
                                  const std::vector<int>& pair_counts,
                                  const CongestionOptions& opts) {
  CongestionResult out;
  out.latency_vs_pairs.name = "p2p-pairs";
  for (int p : pair_counts) {
    out.latency_vs_pairs.add(p, congestion_point(cfg, p, opts));
  }
  if (out.latency_vs_pairs.size() >= 2) {
    const double first = out.latency_vs_pairs.ys.front().median;
    const double last = out.latency_vs_pairs.ys.back().median;
    out.ratio = first > 0 ? last / first : 1.0;
  }
  return out;
}

}  // namespace capmem::bench
