// Mesh congestion benchmark (paper §IV.A.3, Table I "Congestion").
//
// Pairs of threads on distinct tile pairs run simultaneous ping-pongs; if
// the mesh were a bottleneck, round-trip latency would climb with the pair
// count. On KNL (and in this model) it does not — the paper reports "None".
#pragma once

#include <vector>

#include "bench/measurement.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

struct CongestionOptions {
  RunOpts run;
};

struct CongestionResult {
  Series latency_vs_pairs;  ///< x = concurrent pairs, y = round-trip max
  /// median(latency at max pairs) / median(latency at 1 pair); ~1 means no
  /// observable congestion.
  double ratio = 1.0;
};

/// Round-trip latency of `pairs` concurrent cross-tile ping-pongs.
Summary congestion_point(const sim::MachineConfig& cfg, int pairs,
                         const CongestionOptions& opts = {});

CongestionResult congestion_pairs(const sim::MachineConfig& cfg,
                                  const std::vector<int>& pair_counts,
                                  const CongestionOptions& opts = {});

}  // namespace capmem::bench
