#include "bench/contention.hpp"

#include "common/check.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::AccessType;
using sim::Addr;
using sim::CpuSlot;
using sim::Ctx;
using sim::Machine;
using sim::Task;

Summary contention_point(const sim::MachineConfig& cfg, int n,
                         const ContentionOptions& opts) {
  CAPMEM_CHECK(n >= 1);
  Machine m(cfg);
  const int iters = opts.run.iters;
  const Addr hot = m.alloc("hot", kLineBytes, {}, false);

  // Owner on core 0; readers scheduled from core 2 upward so none shares
  // the owner's tile (which would short-circuit the directory).
  const auto all = sim::make_schedule(cfg, opts.sched, cfg.hw_threads());
  std::vector<CpuSlot> readers;
  for (const CpuSlot& s : all) {
    if (s.core / cfg.cores_per_tile == 0) continue;  // skip owner tile
    readers.push_back(s);
    if (static_cast<int>(readers.size()) == n) break;
  }
  CAPMEM_CHECK_MSG(static_cast<int>(readers.size()) == n,
                   "machine too small for " << n << " readers");

  std::vector<double> done(static_cast<std::size_t>(n), 0.0);
  SampleVec per_iter_max;

  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.sync();
      ctx.machine().flush_buffer(hot, kLineBytes);
      co_await ctx.touch(hot, opts.owner_writes ? AccessType::kWrite
                                                : AccessType::kRead);
      co_await ctx.sync();
      // Readers run here.
      co_await ctx.sync();
    }
  });
  for (int r = 0; r < n; ++r) {
    m.add_thread(readers[static_cast<std::size_t>(r)],
                 [&, r](Ctx& ctx) -> Task {
                   const Addr local = ctx.machine().alloc(
                       "local" + std::to_string(r), kLineBytes, {}, false);
                   for (int i = 0; i < iters; ++i) {
                     co_await ctx.sync();
                     co_await ctx.sync();
                     const Nanos t0 = ctx.now();
                     co_await ctx.touch(hot, AccessType::kRead);
                     co_await ctx.touch(local, AccessType::kWrite);
                     done[static_cast<std::size_t>(r)] = ctx.now() - t0;
                     co_await ctx.sync();
                     if (r == 0) {
                       double mx = 0;
                       for (double d : done) mx = std::max(mx, d);
                       per_iter_max.add(mx);
                     }
                   }
                 });
  }
  m.run();
  return per_iter_max.summary();
}

ContentionResult contention_1n(const sim::MachineConfig& cfg,
                               const std::vector<int>& ns,
                               const ContentionOptions& opts) {
  ContentionResult out;
  out.per_n.name = "contention-1:N";
  std::vector<double> xs, ys;
  for (int n : ns) {
    const Summary s = contention_point(cfg, n, opts);
    out.per_n.add(n, s);
    xs.push_back(n);
    ys.push_back(s.median);
  }
  out.fit = fit_linear(xs, ys);
  return out;
}

}  // namespace capmem::bench
