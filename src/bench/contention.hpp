// 1:N contention benchmark (paper §IV.A.2, Table I "Contention").
//
// One owner thread holds a one-line buffer in M state; N other threads read
// ("copy") it simultaneously into thread-local buffers. The per-iteration
// value is the maximum completion time across the N readers; sweeping N and
// fitting a line yields the paper's T_C(N) = alpha + beta*N law.
#pragma once

#include <vector>

#include "bench/measurement.hpp"
#include "common/linreg.hpp"
#include "sim/config.hpp"
#include "sim/thread.hpp"

namespace capmem::bench {

struct ContentionOptions {
  RunOpts run;
  /// Reader pinning: one per tile first (paper's "each new thread runs in a
  /// different tile") or filling cores within tiles.
  sim::Schedule sched = sim::Schedule::kFillTiles;
  /// State the hot line is prepared into before each iteration.
  bool owner_writes = true;  ///< true: M state; false: E state
};

struct ContentionResult {
  LinearFit fit;        ///< T_C(N) = alpha + beta*N over the sweep
  Series per_n;         ///< x = N, y = per-iteration-max summary
};

/// Max completion time when `n` readers hit the owner's line at once.
Summary contention_point(const sim::MachineConfig& cfg, int n,
                         const ContentionOptions& opts = {});

/// Full sweep + linear fit.
ContentionResult contention_1n(const sim::MachineConfig& cfg,
                               const std::vector<int>& ns,
                               const ContentionOptions& opts = {});

}  // namespace capmem::bench
