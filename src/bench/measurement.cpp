#include "bench/measurement.hpp"

#include <algorithm>

namespace capmem::bench {

double SampleVec::max() const {
  if (v_.empty()) return 0.0;
  return *std::max_element(v_.begin(), v_.end());
}

}  // namespace capmem::bench
