// Shared measurement scaffolding for the benchmark suite.
//
// Conventions follow the paper (§III.A): every experiment runs many
// iterations; per-iteration values are reduced with the maximum across the
// participating threads ("the cost of each iteration within each thread —
// we use the maximum value measured per iteration"); medians are reported,
// and series carry full Summaries so confidence intervals and boxplots can
// be printed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace capmem::bench {

/// Accumulates per-iteration samples.
class SampleVec {
 public:
  void add(double v) { v_.push_back(v); }
  void clear() { v_.clear(); }
  std::size_t size() const { return v_.size(); }
  const std::vector<double>& values() const { return v_; }
  Summary summary() const { return summarize(v_); }
  double median() const { return capmem::median(v_); }
  double max() const;

 private:
  std::vector<double> v_;
};

/// One named series of (x, Summary) points — the shape behind every figure.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<Summary> ys;

  void add(double x, const Summary& y) {
    xs.push_back(x);
    ys.push_back(y);
  }
  std::size_t size() const { return xs.size(); }
};

/// Global iteration defaults. The paper uses 1000 iterations throughout;
/// the simulator's determinism lets the suite converge with fewer, and every
/// bench binary exposes --iters to restore the paper's count.
struct RunOpts {
  int iters = 101;
  std::uint64_t seed = 1;
};

}  // namespace capmem::bench
