#include "bench/multiline.hpp"

#include "common/check.hpp"
#include "exec/experiment.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::Addr;
using sim::BufOpts;
using sim::Ctx;
using sim::Machine;
using sim::Task;

const char* to_string(XferOp op) {
  return op == XferOp::kCopy ? "copy" : "read";
}

Summary multiline_bw(const sim::MachineConfig& cfg, int victim_core,
                     int probe_core, std::uint64_t bytes, XferOp op,
                     PrepState state, const MultilineOptions& opts) {
  CAPMEM_CHECK(state == PrepState::kM || state == PrepState::kE);
  CAPMEM_CHECK(bytes >= kLineBytes);
  Machine m(cfg);
  const int iters = opts.run.iters + opts.warmup;
  const Addr msg = m.alloc("msg", bytes, {}, false);
  const Addr local = m.alloc("local", bytes, {}, false);

  // Single-threaded phases: big chunks are safe and much faster to simulate.
  BufOpts prep_opts;
  prep_opts.chunk_lines = 64;
  BufOpts probe_opts;
  probe_opts.vector = opts.vector;
  probe_opts.chunk_lines = 64;

  SampleVec samples;
  int kept = 0;

  m.add_thread({victim_core, 0}, [&, state](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.sync();
      ctx.machine().flush_buffer(msg, bytes);
      if (state == PrepState::kM) {
        co_await ctx.write_buf(msg, bytes, prep_opts);
      } else {
        co_await ctx.read_buf(msg, bytes, prep_opts);
      }
      co_await ctx.sync();
      co_await ctx.sync();
    }
  });
  m.add_thread({probe_core, 0}, [&, op](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.sync();
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      if (op == XferOp::kCopy) {
        co_await ctx.copy(local, msg, bytes, probe_opts);
      } else {
        co_await ctx.read_buf(msg, bytes, probe_opts);
      }
      const Nanos dt = ctx.now() - t0;
      if (i >= opts.warmup) {
        samples.add(bandwidth_gbps(bytes, dt));
        ++kept;
      }
      co_await ctx.sync();
    }
  });
  m.run();
  CAPMEM_CHECK(kept == opts.run.iters);
  return samples.summary();
}

Series multiline_size_sweep(const sim::MachineConfig& cfg, int victim_core,
                            int probe_core,
                            const std::vector<std::uint64_t>& sizes,
                            XferOp op, PrepState state,
                            const MultilineOptions& opts, int jobs) {
  Series s;
  s.name = std::string(to_string(op)) + "-" + to_string(state);
  const std::vector<Summary> measured = exec::parallel_map<Summary>(
      static_cast<int>(sizes.size()), jobs, [&](int i) {
        return multiline_bw(cfg, victim_core, probe_core,
                            sizes[static_cast<std::size_t>(i)], op, state,
                            opts);
      });
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    s.add(static_cast<double>(sizes[i]), measured[i]);
  }
  return s;
}

}  // namespace capmem::bench
