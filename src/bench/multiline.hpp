// Multi-line cache-to-cache transfer benchmark (paper §IV.A.4, Table I
// "Bandwidth", Figure 5).
//
// A victim thread leaves a message of S bytes in its L2 (state M or E); the
// probe thread then copies it into a local buffer, or reads it into
// registers. Bandwidth is payload bytes / probe time. Sizes sweep 64 B to
// 256 KB; vector vs scalar access is an option (the paper reports 2.5 vs
// 1 GB/s read, ~9 vs ~6 GB/s copy).
#pragma once

#include <vector>

#include "bench/c2c.hpp"
#include "bench/measurement.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

enum class XferOp { kCopy, kRead };
const char* to_string(XferOp op);

struct MultilineOptions {
  RunOpts run;
  bool vector = true;
  int warmup = 3;  ///< discarded leading iterations (cold local buffer)
};

/// Bandwidth (GB/s of payload) for the probe transferring `bytes` that the
/// victim holds in `state` (kM or kE).
Summary multiline_bw(const sim::MachineConfig& cfg, int victim_core,
                     int probe_core, std::uint64_t bytes, XferOp op,
                     PrepState state, const MultilineOptions& opts = {});

/// Size sweep; x = message bytes. Each point is an isolated simulation and
/// runs on `jobs` host threads (exec layer); results are bit-identical for
/// any jobs value.
Series multiline_size_sweep(const sim::MachineConfig& cfg, int victim_core,
                            int probe_core,
                            const std::vector<std::uint64_t>& sizes,
                            XferOp op, PrepState state,
                            const MultilineOptions& opts = {}, int jobs = 1);

}  // namespace capmem::bench
