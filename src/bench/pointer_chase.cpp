#include "bench/pointer_chase.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::AccessType;
using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::MemKind;
using sim::MemoryMode;
using sim::Task;

Summary memory_latency(const sim::MachineConfig& cfg, MemKind kind,
                       const MemLatencyOptions& opts) {
  Machine m(cfg);
  const bool cache_mode = cfg.memory == MemoryMode::kCache;
  std::uint64_t pool_bytes = opts.pool_bytes;
  if (pool_bytes == 0) {
    pool_bytes = std::min<std::uint64_t>(MiB(4), cfg.mcdram_bytes / 2);
  }
  const sim::Placement place{cache_mode ? MemKind::kDDR : kind,
                             std::nullopt};
  const Addr pool = m.alloc("latpool", pool_bytes, place, false);
  const std::uint64_t pool_lines = pool_bytes / kLineBytes;

  Rng rng(opts.run.seed);
  SampleVec samples;

  m.add_thread({opts.core, 0}, [&](Ctx& ctx) -> Task {
    if (cache_mode) {
      // Warm the memory-side cache with one pass over the pool so the
      // measured mix reflects a resident working set (the paper's random
      // buffers are far smaller than the 16 GB MCDRAM cache).
      sim::BufOpts warm;
      warm.chunk_lines = 64;
      co_await ctx.read_buf(pool, pool_bytes, warm);
    }
    for (int i = 0; i < opts.run.iters; ++i) {
      const Addr a = pool + rng.next_below(pool_lines) * kLineBytes;
      // Drop the line from the coherent caches but leave the memory-side
      // MCDRAM cache warm (that is the realistic cache-mode behaviour).
      ctx.machine().flush_buffer(a, kLineBytes,
                                 /*drop_mcdram_cache=*/false);
      const Nanos t0 = ctx.now();
      co_await ctx.touch(a, AccessType::kRead);
      samples.add(ctx.now() - t0);
    }
  });
  m.run();
  return samples.summary();
}

}  // namespace capmem::bench
