// Memory-latency benchmark (paper §V.A / Table II "Latency"): BenchIT-style
// dependent loads to lines drawn randomly from a pool, with the cache
// hierarchy flushed for the measured line so the access is served by memory.
//
// In flat mode the pool is placed in DRAM or MCDRAM explicitly. In cache
// mode the per-line flush keeps the memory-side MCDRAM cache intact, so the
// measured latency mixes MCDRAM-cache hits and misses exactly like the real
// benchmark's randomized accesses — and shows the extra tag-check cost and
// variability the paper describes.
#pragma once

#include <optional>

#include "bench/measurement.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

struct MemLatencyOptions {
  RunOpts run;
  /// Pool footprint. 0 = auto: a few MB in flat mode; 2x the MCDRAM cache
  /// capacity in cache mode (so hits and misses both occur).
  std::uint64_t pool_bytes = 0;
  int core = 0;
};

/// Median latency of loads served by `kind` memory (kind ignored in cache
/// mode — everything is DDR-backed behind the MCDRAM cache).
Summary memory_latency(const sim::MachineConfig& cfg, sim::MemKind kind,
                       const MemLatencyOptions& opts = {});

}  // namespace capmem::bench
