#include "bench/stream.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/experiment.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::Addr;
using sim::BufOpts;
using sim::CpuSlot;
using sim::Ctx;
using sim::Machine;
using sim::MemKind;
using sim::MemoryMode;
using sim::Task;

const char* to_string(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy: return "copy";
    case StreamOp::kRead: return "read";
    case StreamOp::kWrite: return "write";
    case StreamOp::kTriad: return "triad";
  }
  return "?";
}

double stream_bytes_factor(StreamOp op) {
  switch (op) {
    case StreamOp::kCopy: return 2.0;
    case StreamOp::kTriad: return 3.0;
    case StreamOp::kRead:
    case StreamOp::kWrite: return 1.0;
  }
  return 1.0;
}

namespace {
// Stream arrays needed by a kernel (dst plus 0-2 sources).
int arrays_for(StreamOp op) {
  switch (op) {
    case StreamOp::kTriad: return 3;
    case StreamOp::kCopy: return 2;
    default: return 1;
  }
}
}  // namespace

StreamResult stream_bench(const sim::MachineConfig& cfg, StreamOp op,
                          const StreamConfig& sc) {
  CAPMEM_CHECK(sc.nthreads >= 1 && sc.buffer_bytes >= kLineBytes);
  Machine m(cfg);
  const bool cache_mode = cfg.memory == MemoryMode::kCache;
  const sim::Placement place{cache_mode ? MemKind::kDDR : sc.kind,
                             std::nullopt};
  const int narr = arrays_for(op);
  const int pool = sc.randomize ? sc.pool_buffers : 1;

  // Per thread: `pool` slots x `narr` arrays.
  std::vector<std::vector<Addr>> arrays(
      static_cast<std::size_t>(sc.nthreads));
  for (int t = 0; t < sc.nthreads; ++t) {
    for (int s = 0; s < pool * narr; ++s) {
      arrays[static_cast<std::size_t>(t)].push_back(
          m.alloc("s" + std::to_string(t) + "_" + std::to_string(s),
                  sc.buffer_bytes, place, false));
    }
  }

  // Pre-drawn random slot choice per (iteration, thread).
  Rng rng(sc.run.seed);
  const int iters = sc.run.iters;
  std::vector<int> choice(static_cast<std::size_t>(iters * sc.nthreads), 0);
  for (auto& c : choice)
    c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(pool)));

  const auto slots = sim::make_schedule(cfg, sc.sched, sc.nthreads);
  std::vector<double> dur(static_cast<std::size_t>(sc.nthreads), 0.0);
  SampleVec per_iter_gbps;
  const double conv =
      stream_bytes_factor(op) * static_cast<double>(sc.buffer_bytes) *
      sc.nthreads;

  for (int t = 0; t < sc.nthreads; ++t) {
    m.add_thread(slots[static_cast<std::size_t>(t)],
                 [&, t, op](Ctx& ctx) -> Task {
                   BufOpts o;
                   o.nt = sc.nt;
                   o.vector = sc.vector;
                   for (int i = 0; i < iters; ++i) {
                     co_await ctx.sync();
                     const int slot =
                         choice[static_cast<std::size_t>(i * sc.nthreads +
                                                         t)];
                     const auto& arr = arrays[static_cast<std::size_t>(t)];
                     // Reset the coherent caches for this iteration's
                     // arrays (the memory-side MCDRAM cache stays warm):
                     // stands in for STREAM's arrays being far larger than
                     // the caches, which the scaled simulation footprint
                     // is not.
                     for (int k = 0; k < narr; ++k) {
                       ctx.machine().flush_buffer(
                           arr[static_cast<std::size_t>(slot * narr + k)],
                           sc.buffer_bytes, /*drop_mcdram_cache=*/false);
                     }
                     const Addr a =
                         arr[static_cast<std::size_t>(slot * narr)];
                     const Nanos t0 = ctx.now();
                     switch (op) {
                       case StreamOp::kRead:
                         co_await ctx.read_buf(a, sc.buffer_bytes, o);
                         break;
                       case StreamOp::kWrite:
                         co_await ctx.write_buf(a, sc.buffer_bytes, o);
                         break;
                       case StreamOp::kCopy:
                         co_await ctx.copy(
                             a,
                             arr[static_cast<std::size_t>(slot * narr + 1)],
                             sc.buffer_bytes, o);
                         break;
                       case StreamOp::kTriad:
                         co_await ctx.triad(
                             a,
                             arr[static_cast<std::size_t>(slot * narr + 1)],
                             arr[static_cast<std::size_t>(slot * narr + 2)],
                             sc.buffer_bytes, o);
                         break;
                     }
                     dur[static_cast<std::size_t>(t)] = ctx.now() - t0;
                     co_await ctx.sync();
                     if (t == 0) {
                       double mx = 0;
                       for (double d : dur) mx = std::max(mx, d);
                       per_iter_gbps.add(conv / mx);
                     }
                   }
                 });
  }
  m.run();
  StreamResult out;
  out.gbps = per_iter_gbps.summary();
  out.peak_gbps = per_iter_gbps.max();
  return out;
}

Series stream_thread_sweep(const sim::MachineConfig& cfg, StreamOp op,
                           StreamConfig sc,
                           const std::vector<int>& thread_counts,
                           int jobs) {
  Series s;
  s.name = std::string(to_string(op)) + "-" +
           std::string(sim::to_string(sc.kind)) + "-" +
           sim::to_string(sc.sched);
  const std::vector<StreamResult> results =
      exec::parallel_map<StreamResult>(
          static_cast<int>(thread_counts.size()), jobs, [&](int i) {
            StreamConfig point = sc;
            point.nthreads = thread_counts[static_cast<std::size_t>(i)];
            return stream_bench(cfg, op, point);
          });
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    s.add(thread_counts[i], results[i].gbps);
  }
  return s;
}

}  // namespace capmem::bench
