// STREAM-style memory bandwidth benchmarks (paper §V.A, Table II, Fig. 9).
//
// Four kernels — copy (a[i]=b[i]), read (a=b[i]), write (b[i]=a), triad
// (a[i]=b[i]+s*c[i]) — with non-temporal variants, run by n threads under a
// pinning schedule. Two protocols:
//   * randomized (the paper's custom benchmark): every iteration each
//     thread picks a random buffer out of its pool; the median over
//     iterations is reported ("the expected performance");
//   * stream-peak (classic STREAM): fixed buffers, best iteration — the
//     tuned-peak columns of Table II.
// Reported GB/s follow the STREAM byte-count convention (copy 2n, triad 3n,
// read/write n).
#pragma once

#include <vector>

#include "bench/measurement.hpp"
#include "sim/config.hpp"
#include "sim/thread.hpp"

namespace capmem::bench {

enum class StreamOp { kCopy, kRead, kWrite, kTriad };
const char* to_string(StreamOp op);

/// STREAM-convention bytes moved per element-array byte.
double stream_bytes_factor(StreamOp op);

struct StreamConfig {
  RunOpts run{.iters = 11, .seed = 1};
  int nthreads = 16;
  sim::Schedule sched = sim::Schedule::kFillTiles;
  sim::MemKind kind = sim::MemKind::kDDR;  ///< ignored in cache mode
  bool nt = true;
  bool vector = true;
  std::uint64_t buffer_bytes = KiB(512);  ///< per stream array per thread
  int pool_buffers = 4;                   ///< randomized protocol pool size
  bool randomize = true;  ///< false = stream-peak protocol (fixed buffers)
};

struct StreamResult {
  Summary gbps;      ///< per-iteration aggregate GB/s (median = headline)
  double peak_gbps;  ///< best iteration (the STREAM-peak style number)
};

StreamResult stream_bench(const sim::MachineConfig& cfg, StreamOp op,
                          const StreamConfig& sc);

/// Thread-count sweep (Fig. 9); x = nthreads. Each point is an isolated
/// simulation and runs on `jobs` host threads (exec layer); results are
/// bit-identical for any jobs value.
Series stream_thread_sweep(const sim::MachineConfig& cfg, StreamOp op,
                           StreamConfig sc,
                           const std::vector<int>& thread_counts,
                           int jobs = 1);

}  // namespace capmem::bench
