#include "bench/suite.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/log.hpp"

namespace capmem::bench {

using sim::MemKind;
using sim::MemoryMode;
using sim::Schedule;

namespace {

// Pools samples from several victim cores into one Summary plus the
// min/max-of-medians range.
struct Pooled {
  Summary pooled;
  Range range;
};

Pooled pool_remote(const sim::MachineConfig& cfg, PrepState state,
                   int samples, const C2COptions& copts) {
  std::vector<double> meds;
  std::vector<double> all;
  const int probe = 0;
  const int step = std::max(1, cfg.active_tiles / (samples + 1));
  for (int k = 1; k <= samples; ++k) {
    const int victim = (k * step % cfg.active_tiles) * cfg.cores_per_tile;
    if (victim / cfg.cores_per_tile == 0) continue;  // skip probe tile
    const Summary s = c2c_read_latency(cfg, victim, probe, state, copts);
    meds.push_back(s.median);
    all.push_back(s.median);
  }
  Pooled out;
  out.pooled = summarize(all);
  out.range.lo = *std::min_element(meds.begin(), meds.end());
  out.range.hi = *std::max_element(meds.begin(), meds.end());
  return out;
}

}  // namespace

SuiteResults run_suite(const sim::MachineConfig& cfg,
                       const SuiteOptions& opts) {
  SuiteResults r;
  r.cfg = cfg;
  C2COptions copts;
  copts.run = opts.run;

  CAPMEM_LOG_INFO << "suite[" << sim::to_string(cfg.cluster) << "/"
                  << sim::to_string(cfg.memory) << "]: cache-to-cache";
  // L1: re-read on the same core.
  r.lat_l1 = c2c_read_latency(cfg, 0, 0, PrepState::kE, copts);
  // Same tile: victim core 1, probe core 0.
  r.lat_tile_m = c2c_read_latency(cfg, 1, 0, PrepState::kM, copts);
  r.lat_tile_e = c2c_read_latency(cfg, 1, 0, PrepState::kE, copts);
  r.lat_tile_sf = c2c_read_latency(cfg, 1, 0, PrepState::kS, copts);
  // Remote tiles: several victims for the range cells.
  {
    const Pooled m = pool_remote(cfg, PrepState::kM, opts.remote_samples,
                                 copts);
    r.lat_remote_m = m.pooled;
    r.range_remote_m = m.range;
    const Pooled e = pool_remote(cfg, PrepState::kE, opts.remote_samples,
                                 copts);
    r.lat_remote_e = e.pooled;
    r.range_remote_e = e.range;
    const Pooled sf = pool_remote(cfg, PrepState::kF, opts.remote_samples,
                                  copts);
    r.lat_remote_sf = sf.pooled;
    r.range_remote_sf = sf.range;
  }

  CAPMEM_LOG_INFO << "suite: multi-line transfers";
  MultilineOptions mopts;
  mopts.run = opts.run;
  const int remote_core =
      (cfg.active_tiles / 2) * cfg.cores_per_tile;  // far tile
  const std::uint64_t msg = KiB(64);
  r.bw_read_remote =
      multiline_bw(cfg, remote_core, 0, msg, XferOp::kRead, PrepState::kE,
                   mopts);
  r.bw_copy_remote =
      multiline_bw(cfg, remote_core, 0, msg, XferOp::kCopy, PrepState::kE,
                   mopts);
  r.bw_copy_tile_m =
      multiline_bw(cfg, 1, 0, msg, XferOp::kCopy, PrepState::kM, mopts);
  r.bw_copy_tile_e =
      multiline_bw(cfg, 1, 0, msg, XferOp::kCopy, PrepState::kE, mopts);
  {
    // Size sweep for the alpha + beta*N multi-line law.
    std::vector<double> xs, ys;
    for (std::uint64_t bytes : {kLineBytes, KiB(1), KiB(8), KiB(64)}) {
      const Summary gbps = multiline_bw(cfg, remote_core, 0, bytes,
                                        XferOp::kCopy, PrepState::kM, mopts);
      xs.push_back(static_cast<double>(lines_for(bytes)));
      ys.push_back(static_cast<double>(bytes) / gbps.median);  // ns
    }
    r.multiline_ns = fit_linear(xs, ys);
  }

  CAPMEM_LOG_INFO << "suite: contention / congestion";
  ContentionOptions cnopts;
  cnopts.run = opts.run;
  r.contention = contention_1n(cfg, opts.contention_ns, cnopts);
  CongestionOptions cgopts;
  cgopts.run.iters = std::max(11, opts.run.iters / 4);
  cgopts.run.seed = opts.run.seed;
  r.congestion =
      congestion_pairs(cfg, {1, 2, 4, std::max(4, cfg.active_tiles / 4)},
                       cgopts);

  CAPMEM_LOG_INFO << "suite: memory latency";
  MemLatencyOptions lopts;
  lopts.run = opts.run;
  r.mem_lat_dram = memory_latency(cfg, MemKind::kDDR, lopts);
  if (cfg.memory != MemoryMode::kCache) {
    r.mem_lat_mcdram = memory_latency(cfg, MemKind::kMCDRAM, lopts);
  }

  if (!opts.streams) return r;
  CAPMEM_LOG_INFO << "suite: stream kernels";
  const bool flat_kinds = cfg.memory != MemoryMode::kCache;
  r.has_mcdram_streams = flat_kinds;
  r.has_streams = true;
  const StreamOp ops[4] = {StreamOp::kCopy, StreamOp::kRead,
                           StreamOp::kWrite, StreamOp::kTriad};
  for (int oi = 0; oi < 4; ++oi) {
    for (int ki = 0; ki < (flat_kinds ? 2 : 1); ++ki) {
      const MemKind kind = ki == 0 ? MemKind::kDDR : MemKind::kMCDRAM;
      StreamConfig sc;
      sc.kind = kind;
      sc.run.seed = opts.run.seed;
      if (opts.fast) {
        sc.run.iters = 5;
        sc.buffer_bytes = KiB(128);
        sc.nthreads = std::min(16, cfg.cores());
        sc.pool_buffers = 2;
      } else {
        sc.run.iters = 9;
        sc.buffer_bytes = KiB(256);
        // DRAM saturates with ~16 cores; MCDRAM needs the full chip.
        sc.nthreads =
            kind == MemKind::kDDR ? std::min(16, cfg.cores()) : cfg.cores();
        sc.sched = Schedule::kFillTiles;
      }
      auto& cell = r.stream[oi][ki];
      sc.nt = true;
      sc.randomize = true;
      cell.nt_random = stream_bench(cfg, ops[oi], sc);
      sc.nt = true;
      sc.randomize = false;  // classic STREAM protocol: fixed buffers
      cell.stream_peak = stream_bench(cfg, ops[oi], sc);
      if (ops[oi] == StreamOp::kCopy) {
        StreamConfig one = sc;
        one.nthreads = 1;
        one.randomize = true;
        r.copy_1thread[ki] = stream_bench(cfg, StreamOp::kCopy, one);
      }
    }
  }
  return r;
}

}  // namespace capmem::bench
