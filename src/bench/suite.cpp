#include "bench/suite.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"
#include "common/log.hpp"
#include "exec/pool.hpp"

namespace capmem::bench {

using sim::MemKind;
using sim::MemoryMode;
using sim::Schedule;

namespace {

// Victim cores sampled for the remote-latency range cells.
std::vector<int> remote_victims(const sim::MachineConfig& cfg, int samples) {
  std::vector<int> victims;
  const int step = std::max(1, cfg.active_tiles / (samples + 1));
  for (int k = 1; k <= samples; ++k) {
    const int victim = (k * step % cfg.active_tiles) * cfg.cores_per_tile;
    if (victim / cfg.cores_per_tile == 0) continue;  // skip probe tile
    victims.push_back(victim);
  }
  return victims;
}

// Pools the per-victim summaries of one state into one Summary plus the
// min/max-of-medians range (the paper's "107-122"-style cells).
struct Pooled {
  Summary pooled;
  Range range;
};

Pooled pool_remote(const std::vector<Summary>& per_victim) {
  std::vector<double> meds;
  meds.reserve(per_victim.size());
  for (const Summary& s : per_victim) meds.push_back(s.median);
  Pooled out;
  out.pooled = summarize(meds);
  out.range.lo = *std::min_element(meds.begin(), meds.end());
  out.range.hi = *std::max_element(meds.begin(), meds.end());
  return out;
}

}  // namespace

// The suite is planned as a list of independent experiment cells — every
// job below builds its own Machine and writes one exclusive slot — then
// executed on opts.jobs host threads and reduced in planning order. All
// cell parameters (including seeds) are fixed at planning time, so the
// results are bit-identical for every jobs value, and identical to the
// historical serial loop.
SuiteResults run_suite(const sim::MachineConfig& cfg,
                       const SuiteOptions& opts) {
  SuiteResults r;
  r.cfg = cfg;
  std::vector<std::function<void()>> jobs;

  CAPMEM_LOG_INFO << "suite[" << sim::to_string(cfg.cluster) << "/"
                  << sim::to_string(cfg.memory) << "]: planning "
                  << (opts.jobs == 1 ? "serial" : "parallel") << " run";

  // --- Cache-to-cache latency cells (Table I top half) ---
  C2COptions copts;
  copts.run = opts.run;
  // L1: re-read on the same core.
  jobs.push_back(
      [&, copts] { r.lat_l1 = c2c_read_latency(cfg, 0, 0, PrepState::kE, copts); });
  // Same tile: victim core 1, probe core 0.
  jobs.push_back([&, copts] {
    r.lat_tile_m = c2c_read_latency(cfg, 1, 0, PrepState::kM, copts);
  });
  jobs.push_back([&, copts] {
    r.lat_tile_e = c2c_read_latency(cfg, 1, 0, PrepState::kE, copts);
  });
  jobs.push_back([&, copts] {
    r.lat_tile_sf = c2c_read_latency(cfg, 1, 0, PrepState::kS, copts);
  });
  // Remote tiles: several victims per state for the range cells.
  const std::vector<int> victims =
      remote_victims(cfg, opts.remote_samples);
  CAPMEM_CHECK_MSG(!victims.empty(), "no remote victim tiles to sample");
  const PrepState remote_states[3] = {PrepState::kM, PrepState::kE,
                                      PrepState::kF};
  std::vector<Summary> remote_slots[3];
  for (int si = 0; si < 3; ++si) {
    remote_slots[si].resize(victims.size());
    for (std::size_t vi = 0; vi < victims.size(); ++vi) {
      jobs.push_back([&, copts, si, vi] {
        remote_slots[si][vi] = c2c_read_latency(
            cfg, victims[vi], /*probe=*/0, remote_states[si], copts);
      });
    }
  }

  // --- Multi-line transfers (Table I bandwidth cells) ---
  MultilineOptions mopts;
  mopts.run = opts.run;
  const int remote_core =
      (cfg.active_tiles / 2) * cfg.cores_per_tile;  // far tile
  const std::uint64_t msg = KiB(64);
  jobs.push_back([&, mopts] {
    r.bw_read_remote = multiline_bw(cfg, remote_core, 0, msg, XferOp::kRead,
                                    PrepState::kE, mopts);
  });
  jobs.push_back([&, mopts] {
    r.bw_copy_remote = multiline_bw(cfg, remote_core, 0, msg, XferOp::kCopy,
                                    PrepState::kE, mopts);
  });
  jobs.push_back([&, mopts] {
    r.bw_copy_tile_m =
        multiline_bw(cfg, 1, 0, msg, XferOp::kCopy, PrepState::kM, mopts);
  });
  jobs.push_back([&, mopts] {
    r.bw_copy_tile_e =
        multiline_bw(cfg, 1, 0, msg, XferOp::kCopy, PrepState::kE, mopts);
  });
  // Size sweep for the alpha + beta*N multi-line law.
  const std::uint64_t sweep_bytes[4] = {kLineBytes, KiB(1), KiB(8), KiB(64)};
  Summary sweep_slots[4];
  for (int i = 0; i < 4; ++i) {
    jobs.push_back([&, mopts, i] {
      sweep_slots[i] = multiline_bw(cfg, remote_core, 0, sweep_bytes[i],
                                    XferOp::kCopy, PrepState::kM, mopts);
    });
  }

  // --- Contention / congestion ---
  ContentionOptions cnopts;
  cnopts.run = opts.run;
  std::vector<Summary> cont_slots(opts.contention_ns.size());
  for (std::size_t i = 0; i < opts.contention_ns.size(); ++i) {
    jobs.push_back([&, cnopts, i] {
      cont_slots[i] = contention_point(cfg, opts.contention_ns[i], cnopts);
    });
  }
  CongestionOptions cgopts;
  cgopts.run = opts.run;  // one RunOpts threaded through, then adjusted
  cgopts.run.iters = std::max(11, opts.run.iters / 4);
  const std::vector<int> pair_counts{1, 2, 4,
                                     std::max(4, cfg.active_tiles / 4)};
  std::vector<Summary> cong_slots(pair_counts.size());
  for (std::size_t i = 0; i < pair_counts.size(); ++i) {
    jobs.push_back([&, cgopts, i] {
      cong_slots[i] = congestion_point(cfg, pair_counts[i], cgopts);
    });
  }

  // --- Memory latency (Table II) ---
  MemLatencyOptions lopts;
  lopts.run = opts.run;
  jobs.push_back(
      [&, lopts] { r.mem_lat_dram = memory_latency(cfg, MemKind::kDDR, lopts); });
  if (cfg.memory != MemoryMode::kCache) {
    jobs.push_back([&, lopts] {
      r.mem_lat_mcdram = memory_latency(cfg, MemKind::kMCDRAM, lopts);
    });
  }

  // --- Stream kernels (Table II bandwidth) ---
  const StreamOp ops[4] = {StreamOp::kCopy, StreamOp::kRead,
                           StreamOp::kWrite, StreamOp::kTriad};
  if (opts.streams) {
    const bool flat_kinds = cfg.memory != MemoryMode::kCache;
    r.has_mcdram_streams = flat_kinds;
    r.has_streams = true;
    for (int oi = 0; oi < 4; ++oi) {
      for (int ki = 0; ki < (flat_kinds ? 2 : 1); ++ki) {
        const MemKind kind = ki == 0 ? MemKind::kDDR : MemKind::kMCDRAM;
        StreamConfig sc;
        sc.kind = kind;
        sc.run = opts.run;  // one RunOpts threaded through, then adjusted
        if (opts.fast) {
          sc.run.iters = 5;
          sc.buffer_bytes = KiB(128);
          sc.nthreads = std::min(16, cfg.cores());
          sc.pool_buffers = 2;
        } else {
          sc.run.iters = 9;
          sc.buffer_bytes = KiB(256);
          // DRAM saturates with ~16 cores; MCDRAM needs the full chip.
          sc.nthreads =
              kind == MemKind::kDDR ? std::min(16, cfg.cores()) : cfg.cores();
          sc.sched = Schedule::kFillTiles;
        }
        sc.nt = true;
        StreamConfig nt_random = sc;
        nt_random.randomize = true;
        StreamConfig stream_peak = sc;
        stream_peak.randomize = false;  // classic STREAM: fixed buffers
        jobs.push_back([&, oi, ki, nt_random] {
          r.stream[oi][ki].nt_random = stream_bench(cfg, ops[oi], nt_random);
        });
        jobs.push_back([&, oi, ki, stream_peak] {
          r.stream[oi][ki].stream_peak =
              stream_bench(cfg, ops[oi], stream_peak);
        });
        if (ops[oi] == StreamOp::kCopy) {
          StreamConfig one = nt_random;
          one.nthreads = 1;
          jobs.push_back([&, ki, one] {
            r.copy_1thread[ki] = stream_bench(cfg, StreamOp::kCopy, one);
          });
        }
      }
    }
  }

  // --- Execute ---
  CAPMEM_LOG_INFO << "suite: running " << jobs.size() << " cells on "
                  << std::max(1, opts.jobs) << " worker(s)";
  exec::run_jobs(std::move(jobs), opts.jobs);

  // --- Reduce (planning order; pure functions of the slot values) ---
  for (int si = 0; si < 3; ++si) {
    const Pooled p = pool_remote(remote_slots[si]);
    switch (remote_states[si]) {
      case PrepState::kM:
        r.lat_remote_m = p.pooled;
        r.range_remote_m = p.range;
        break;
      case PrepState::kE:
        r.lat_remote_e = p.pooled;
        r.range_remote_e = p.range;
        break;
      default:
        r.lat_remote_sf = p.pooled;
        r.range_remote_sf = p.range;
        break;
    }
  }
  {
    std::vector<double> xs, ys;
    for (int i = 0; i < 4; ++i) {
      xs.push_back(static_cast<double>(lines_for(sweep_bytes[i])));
      ys.push_back(static_cast<double>(sweep_bytes[i]) /
                   sweep_slots[i].median);  // ns
    }
    r.multiline_ns = fit_linear(xs, ys);
  }
  {
    r.contention.per_n.name = "contention-1:N";
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < opts.contention_ns.size(); ++i) {
      r.contention.per_n.add(opts.contention_ns[i], cont_slots[i]);
      xs.push_back(opts.contention_ns[i]);
      ys.push_back(cont_slots[i].median);
    }
    r.contention.fit = fit_linear(xs, ys);
  }
  {
    r.congestion.latency_vs_pairs.name = "p2p-pairs";
    for (std::size_t i = 0; i < pair_counts.size(); ++i) {
      r.congestion.latency_vs_pairs.add(pair_counts[i], cong_slots[i]);
    }
    if (r.congestion.latency_vs_pairs.size() >= 2) {
      const double first = r.congestion.latency_vs_pairs.ys.front().median;
      const double last = r.congestion.latency_vs_pairs.ys.back().median;
      r.congestion.ratio = first > 0 ? last / first : 1.0;
    }
  }
  return r;
}

}  // namespace capmem::bench
