// Full measurement suite for one machine configuration: everything the
// capability-model fit needs, i.e. the contents of the paper's Tables I
// and II for that configuration.
#pragma once

#include <optional>

#include "bench/c2c.hpp"
#include "common/linreg.hpp"
#include "bench/congestion.hpp"
#include "bench/contention.hpp"
#include "bench/multiline.hpp"
#include "bench/pointer_chase.hpp"
#include "bench/stream.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

struct SuiteOptions {
  RunOpts run{.iters = 51, .seed = 1};
  /// Victim tiles sampled for the remote-latency ranges.
  int remote_samples = 5;
  /// Contention sweep points.
  std::vector<int> contention_ns{1, 2, 4, 8, 16, 24};
  /// Fast mode shrinks the stream experiments (fewer threads/iterations);
  /// used by tests and quick example runs.
  bool fast = false;
  /// Skip the (expensive) stream kernels — enough for fitting the
  /// cache-to-cache half of the model (collective tuning).
  bool streams = true;
  /// Host worker threads for the suite's experiment cells (exec::Pool).
  /// Every cell is an isolated simulation, so results are bit-identical
  /// for any value; 1 = serial reference path, 0 = hardware concurrency.
  int jobs = 1;
};

/// min/max of medians across sampled victims — the paper's "107-122"-style
/// range cells.
struct Range {
  double lo = 0;
  double hi = 0;
};

struct SuiteResults {
  sim::MachineConfig cfg;

  // --- Table I: cache-to-cache ---
  Summary lat_l1;
  Summary lat_tile_m, lat_tile_e, lat_tile_sf;
  Summary lat_remote_m, lat_remote_e, lat_remote_sf;  // pooled samples
  Range range_remote_m, range_remote_e, range_remote_sf;
  Summary bw_read_remote;     // GB/s, single thread, vector
  Summary bw_copy_tile_m, bw_copy_tile_e;
  Summary bw_copy_remote;
  /// Multi-line remote copy law: time(ns) = alpha + beta * lines
  /// (paper §IV.A.4: "we fit a linear regression model (alpha + beta*N)").
  LinearFit multiline_ns;
  ContentionResult contention;
  CongestionResult congestion;

  // --- Table II: memory ---
  Summary mem_lat_dram;                    // cache mode: the single latency
  std::optional<Summary> mem_lat_mcdram;   // absent in cache mode
  struct StreamCell {
    StreamResult nt_random;   // the paper's custom benchmark (NT, random)
    StreamResult stream_peak; // classic STREAM protocol
  };
  // Indexed [op][kind]; kind 0 = DRAM (or the only kind in cache mode),
  // kind 1 = MCDRAM (flat modes only).
  StreamCell stream[4][2];
  /// Single-thread copy bandwidth per kind (the sort model's per-thread
  /// achievable-bandwidth anchor).
  StreamResult copy_1thread[2];
  bool has_mcdram_streams = false;
  bool has_streams = false;
};

SuiteResults run_suite(const sim::MachineConfig& cfg,
                       const SuiteOptions& opts = {});

}  // namespace capmem::bench
