#include "bench/windows.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {

using sim::AccessType;
using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::Task;

std::vector<double> calibrate_tsc_skew(const sim::MachineConfig& cfg,
                                       int iters) {
  CAPMEM_CHECK(iters >= 1);
  std::vector<double> skew(static_cast<std::size_t>(cfg.cores()), 0.0);
  const double res = cfg.tsc_resolution_ns;

  for (int core = 1; core < cfg.cores(); ++core) {
    Machine m(cfg);
    const Addr ping = m.alloc("ping", kLineBytes, {}, true);
    const Addr pong = m.alloc("pong", kLineBytes, {}, true);
    std::vector<double> offsets;

    // Peer sends its TSC (t1); core 0 stamps receipt (t2) and reply (t3);
    // peer stamps the reply receipt (t4). With symmetric transfer delay d:
    //   t2 = t1 + skew0 - skewc + d,  t4 = t3 - skew0 + skewc + d
    //   => ((t2 - t1) - (t4 - t3)) / 2 = skew0 - skewc = -offset(c).
    m.add_thread({0, 0}, [&, iters](Ctx& ctx) -> Task {
      for (int i = 1; i <= iters; ++i) {
        co_await ctx.wait_eq(ping, static_cast<std::uint64_t>(i));
        const std::uint64_t t2 = ctx.rdtsc();
        co_await ctx.write_u64(pong + 8, t2);  // also carries t3 below
        co_await ctx.write_u64(pong + 16, ctx.rdtsc());
        co_await ctx.write_u64(pong, static_cast<std::uint64_t>(i));
      }
    });
    m.add_thread({core, 0}, [&, iters, res](Ctx& ctx) -> Task {
      for (int i = 1; i <= iters; ++i) {
        const std::uint64_t t1 = ctx.rdtsc();
        co_await ctx.write_u64(ping + 8, t1);
        co_await ctx.write_u64(ping, static_cast<std::uint64_t>(i));
        co_await ctx.wait_eq(pong, static_cast<std::uint64_t>(i));
        const std::uint64_t t4 = ctx.rdtsc();
        const std::uint64_t t2 = ctx.peek_u64(pong + 8);
        const std::uint64_t t3 = ctx.peek_u64(pong + 16);
        const double fwd = static_cast<double>(t2) - static_cast<double>(t1);
        const double bwd = static_cast<double>(t4) - static_cast<double>(t3);
        // offset(core) = skew_core - skew_0 = (bwd - fwd) / 2 ticks.
        offsets.push_back((bwd - fwd) / 2.0 * res);
      }
    });
    m.run();
    skew[static_cast<std::size_t>(core)] = median(offsets);
  }
  return skew;
}

Summary c2c_read_latency_windowed(const sim::MachineConfig& cfg,
                                  int victim_core, int probe_core,
                                  PrepState state,
                                  const WindowOptions& opts) {
  CAPMEM_CHECK_MSG(state == PrepState::kM || state == PrepState::kE,
                   "windowed harness supports single-preparer states");
  // Calibration pass first, as the paper does.
  const std::vector<double> skew = calibrate_tsc_skew(cfg, 9);

  Machine m(cfg);
  const int iters = opts.run.iters;
  const Addr pool = m.alloc(
      "wpool", static_cast<std::uint64_t>(opts.pool_lines) * kLineBytes, {},
      false);
  Rng rng(opts.run.seed);
  std::vector<Addr> line_addr;
  for (int i = 0; i < iters; ++i) {
    line_addr.push_back(
        pool + rng.next_below(static_cast<std::uint64_t>(opts.pool_lines)) *
                   kLineBytes);
  }
  SampleVec samples;
  const double res = cfg.tsc_resolution_ns;
  const double window = opts.window_ns;

  // Each iteration i spans two windows: preparation in window 2i, probe in
  // window 2i+1. All threads agree on corrected-TSC window boundaries; a
  // thread spins until its raw TSC reaches target + estimated_skew, which
  // is what the real harness does (estimation error shifts starts by a few
  // ns — windows are much longer than a transfer, so that is harmless).
  auto window_target_ticks = [&, res](int w, int core) {
    const double corrected_ns = 1000.0 + w * window;
    return static_cast<std::uint64_t>(
        (corrected_ns + skew[static_cast<std::size_t>(core)]) / res);
  };

  m.add_thread({victim_core, 0}, [&, state](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.until_tsc(window_target_ticks(2 * i, ctx.core()));
      const Addr a = line_addr[static_cast<std::size_t>(i)];
      ctx.machine().flush_buffer(a, kLineBytes);
      co_await ctx.touch(a, state == PrepState::kM ? AccessType::kWrite
                                                   : AccessType::kRead);
    }
  });
  m.add_thread({probe_core, 0}, [&](Ctx& ctx) -> Task {
    for (int i = 0; i < iters; ++i) {
      co_await ctx.until_tsc(window_target_ticks(2 * i + 1, ctx.core()));
      const Nanos t0 = ctx.now();
      co_await ctx.touch(line_addr[static_cast<std::size_t>(i)],
                         AccessType::kRead);
      samples.add(ctx.now() - t0);
    }
  });
  m.run();
  return samples.summary();
}

}  // namespace capmem::bench
