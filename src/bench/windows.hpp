// TSC-window thread synchronization (paper §III.A: "Threads are
// synchronized with window intervals based on the use of the TSC counter.
// Before initializing the windows, the TSC skew among cores is calculated").
//
// This is the measurement harness real hardware needs: per-core TSC offsets
// are estimated with flag ping-pongs against core 0, and iterations then
// start at agreed TSC window boundaries instead of through a software
// barrier. The engine-level sync() used elsewhere is the idealized stand-in;
// this module exists to exercise (and validate) the realistic protocol.
#pragma once

#include <vector>

#include "bench/c2c.hpp"
#include "bench/measurement.hpp"
#include "sim/config.hpp"

namespace capmem::bench {

/// Estimated TSC offset of each core relative to core 0, in nanoseconds
/// (entry 0 is 0 by construction). Uses the symmetric ping-pong estimator
/// offset = ((t2 - t1) + (t3 - t4)) / 2 with `iters` repetitions per core,
/// taking medians.
std::vector<double> calibrate_tsc_skew(const sim::MachineConfig& cfg,
                                       int iters = 15);

struct WindowOptions {
  RunOpts run;
  /// Window length; must exceed the longest iteration (the harness checks
  /// and widens if an iteration overruns its window).
  Nanos window_ns = 5000.0;
  int pool_lines = 256;
};

/// Cache-to-cache read latency measured with the window-synchronized
/// harness instead of engine barriers: validates that the idealized sync
/// does not distort the reported medians.
Summary c2c_read_latency_windowed(const sim::MachineConfig& cfg,
                                  int victim_core, int probe_core,
                                  PrepState state,
                                  const WindowOptions& opts = {});

}  // namespace capmem::bench
