#include "check/checker.hpp"

#include <sstream>
#include <utility>

#include "obs/trace.hpp"
#include "sim/memsys.hpp"

namespace capmem::check {

Checker::Checker(const sim::MachineConfig& cfg)
    : Checker(cfg, Options{}) {}

Checker::Checker(const sim::MachineConfig& cfg, Options opt)
    : opt_(opt),
      invariants_(cfg.active_tiles, cfg.cores(),
                  sim::rules_of(cfg.protocol)) {}

void Checker::absorb(std::vector<Violation>&& fresh) {
  for (Violation& v : fresh) {
    ++total_;
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::EventKind::kCheckViolation;
      e.t = v.t;
      e.tid = v.tid;
      e.line = v.line;
      trace_->on_event(e);
    }
    if (stored_.size() < opt_.max_stored) stored_.push_back(std::move(v));
  }
}

void Checker::on_access(const sim::AccessRecord& rec) {
  std::vector<Violation> v;
  oracle_.observe(rec, v);
  if (!v.empty()) absorb(std::move(v));
}

void Checker::on_transition(sim::Line line, const sim::LineEntry& entry,
                            const sim::MemSystem& mem) {
  std::vector<Violation> v;
  invariants_.check_entry(line, entry, mem, v);
  ++transitions_;
  if (opt_.sweep_period > 0 &&
      transitions_ % static_cast<std::uint64_t>(opt_.sweep_period) == 0) {
    invariants_.sweep(mem, v);
  }
  if (!v.empty()) absorb(std::move(v));
}

void Checker::on_dir_lookup(sim::Line line, const sim::Placement& place,
                            int home_tile) {
  (void)place;  // one line belongs to one allocation: the line keys the map
  std::vector<Violation> v;
  invariants_.note_home(line, home_tile, v);
  if (!v.empty()) absorb(std::move(v));
}

void Checker::on_flush(sim::Line line) { oracle_.on_flush(line); }

void Checker::on_drop(sim::Line line) { oracle_.on_drop(line); }

void Checker::on_reset() { oracle_.on_reset(); }

void Checker::final_sweep(const sim::MemSystem& mem) {
  std::vector<Violation> v;
  invariants_.sweep(mem, v);
  if (!v.empty()) absorb(std::move(v));
}

std::string Checker::report() const {
  if (ok()) return {};
  std::ostringstream os;
  os << total_ << " violation(s) over " << oracle_.accesses()
     << " accesses / " << transitions_ << " transitions:\n"
     << format_violations(stored_, opt_.max_stored);
  return os.str();
}

}  // namespace capmem::check
