// Checker: the CheckHook implementation tying the oracle and the MESIF
// invariant sweeps to one Machine.
//
// Attach by setting MachineConfig::check before constructing the Machine:
//
//   sim::MachineConfig cfg = sim::knl7210(...);
//   check::Checker checker(cfg);
//   cfg.check = &checker;
//   sim::Machine m(cfg);
//   ... run ...
//   checker.final_sweep(m.memsys());
//   if (!checker.ok()) log << checker.report();
//
// The checker is a pure observer (no RNG draws, no simulation state
// mutation), so attaching it never changes virtual-time results; with
// `check` left null the simulator pays a single branch. One Checker serves
// exactly one Machine — under --jobs fan-out each job owns its own pair.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "check/violation.hpp"
#include "sim/config.hpp"
#include "sim/hooks.hpp"

namespace capmem::obs {
class TraceSink;
}  // namespace capmem::obs

namespace capmem::check {

class Checker final : public sim::CheckHook {
 public:
  struct Options {
    /// Full cross-structure sweep every Nth transition (entry-local checks
    /// run on every one). 0 disables periodic sweeps.
    int sweep_period = 128;
    /// Violations stored verbatim; the rest are only counted.
    std::size_t max_stored = 32;
  };

  explicit Checker(const sim::MachineConfig& cfg);
  Checker(const sim::MachineConfig& cfg, Options opt);

  // --- sim::CheckHook ---
  void on_access(const sim::AccessRecord& rec) override;
  void on_transition(sim::Line line, const sim::LineEntry& entry,
                     const sim::MemSystem& mem) override;
  void on_dir_lookup(sim::Line line, const sim::Placement& place,
                     int home_tile) override;
  void on_flush(sim::Line line) override;
  void on_drop(sim::Line line) override;
  void on_reset() override;

  /// Optional sink: every recorded violation additionally emits a
  /// kCheckViolation instant, so divergences land inside Chrome traces
  /// next to the accesses that caused them.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Full invariant sweep over the final machine state; call after run().
  void final_sweep(const sim::MemSystem& mem);

  bool ok() const { return total_ == 0; }
  std::uint64_t violation_count() const { return total_; }
  const std::vector<Violation>& violations() const { return stored_; }
  const Oracle& oracle() const { return oracle_; }
  std::uint64_t transitions() const { return transitions_; }

  /// Multi-line human-readable summary (empty string when ok()).
  std::string report() const;

 private:
  void absorb(std::vector<Violation>&& fresh);

  Options opt_;
  Oracle oracle_;
  InvariantChecker invariants_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<Violation> stored_;
  std::uint64_t total_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace capmem::check
