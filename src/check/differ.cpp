#include "check/differ.hpp"

#include <algorithm>
#include <sstream>

namespace capmem::check {

namespace {

void mismatch(std::ostringstream& os, const char* what, int index,
              std::uint64_t expect, std::uint64_t got) {
  os << "  diff: " << what << '[' << index << "] expected " << expect
     << ", simulator has " << got << '\n';
}

}  // namespace

DiffOutcome run_diff(const WorkloadSpec& spec, obs::TraceSink* trace,
                     obs::attr::Sink* attr) {
  DiffOutcome out;
  out.spec = spec;
  Checker checker(workload_config(spec));
  const WorkloadResult r = run_workload(spec, &checker, trace, attr);
  out.violations = checker.violation_count();
  out.elapsed = r.elapsed;

  std::ostringstream os;
  out.aborted = r.aborted;
  if (!r.ran) {
    os << "  simulator threw: " << r.error << '\n';
  } else {
    for (int i = 0; i < spec.data_lines; ++i) {
      const std::size_t li = static_cast<std::size_t>(i);
      if (r.final_data[li] != r.expected_data[li])
        mismatch(os, "data", i, r.expected_data[li], r.final_data[li]);
      // The oracle saw only the access stream (no values); its last-writer
      // prediction must reproduce the shadow's final value. encode_value is
      // never 0, so shadow 0 means the line was never written.
      const Oracle::WriterInfo* w = checker.oracle().writer(
          r.data_base_line + static_cast<sim::Line>(i));
      if (r.expected_data[li] == 0) {
        if (w != nullptr)
          os << "  diff: oracle saw " << w->total_writes
             << " write(s) to untouched data[" << i << "]\n";
      } else if (w == nullptr) {
        os << "  diff: oracle saw no writes to data[" << i << "]\n";
      } else if (encode_value(w->last_tid, w->last_count) !=
                 r.expected_data[li]) {
        mismatch(os, "oracle-predicted data", i, r.expected_data[li],
                 encode_value(w->last_tid, w->last_count));
      }
    }
    for (int i = 0; i < spec.counter_lines; ++i) {
      const std::size_t li = static_cast<std::size_t>(i);
      if (r.final_counter[li] != r.expected_counter[li])
        mismatch(os, "counter", i, r.expected_counter[li],
                 r.final_counter[li]);
    }
    for (int t = 0; t < spec.threads; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      if (r.final_slot[ti] != r.expected_slot[ti])
        mismatch(os, "slot", t, r.expected_slot[ti], r.final_slot[ti]);
    }
  }
  if (!checker.ok()) os << checker.report();

  out.report = os.str();
  out.ok = out.report.empty();
  return out;
}

WorkloadSpec minimize(const WorkloadSpec& failing) {
  WorkloadSpec best = failing;
  // Shortest failing per-thread prefix. Divergence need not be monotone in
  // the prefix length, but bisection still lands on *a* failing prefix.
  int lo = 1;
  int hi = failing.prefix < 0 ? failing.ops_per_thread : failing.prefix;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    WorkloadSpec probe = best;
    probe.prefix = mid;
    if (!run_diff(probe).ok) {
      hi = mid;
      best = probe;
    } else {
      lo = mid + 1;
    }
  }
  best.prefix = hi;
  if (run_diff(best).ok) {
    // The bisection's last probe passed at hi; fall back to the original.
    best = failing;
  }
  // Fewer threads, while the failure persists.
  while (best.threads > 1) {
    WorkloadSpec probe = best;
    probe.threads = std::max(1, best.threads / 2);
    if (!run_diff(probe).ok) {
      best = probe;
    } else {
      break;
    }
  }
  return best;
}

std::string repro_text(const DiffOutcome& outcome) {
  const WorkloadSpec& s = outcome.spec;
  std::ostringstream os;
  os << "capmem fuzz-diff divergence repro\n"
     << "spec: " << s.label() << '\n'
     << "  threads=" << s.threads << " data_lines=" << s.data_lines
     << " counter_lines=" << s.counter_lines << " ops_per_thread="
     << s.ops_per_thread << " prefix=" << s.prefix << " seed=" << s.seed
     << '\n'
     << "  cluster=" << sim::to_string(s.cluster) << " memory="
     << sim::to_string(s.memory) << " sched=" << sim::to_string(s.sched)
     << '\n';
  if (s.machine != "knl_38t" || s.protocol != sim::Protocol::kMesif) {
    os << "  machine=" << s.machine << " protocol="
       << sim::to_string(s.protocol) << '\n';
  }
  if (s.max_steps != 0 || s.fault_severity != 0) {
    os << "  max_steps=" << s.max_steps
       << " fault_severity=" << s.fault_severity << '\n';
  }
  os << "violations: " << outcome.violations << '\n'
     << "report:\n"
     << outcome.report << "schedule (per thread, executed prefix):\n";
  const auto ops = generate_ops(s);
  const int nops = s.prefix < 0 ? s.ops_per_thread
                                : std::min(s.prefix, s.ops_per_thread);
  int emitted = 0;
  for (int t = 0; t < s.threads && emitted < 4000; ++t) {
    os << "  t" << t << ':';
    for (int i = 0; i < nops && emitted < 4000; ++i, ++emitted) {
      const Op& op = ops[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(i)];
      os << ' ' << to_string(op.kind);
      switch (op.kind) {
        case OpKind::kRead:
        case OpKind::kWrite:
        case OpKind::kNtWrite:
        case OpKind::kFlush: os << 'd' << op.arg; break;
        case OpKind::kFetchAdd: os << 'c' << op.arg << '+' << op.val; break;
        case OpKind::kCompute:
          os << static_cast<int>(op.ns) << "ns";
          break;
        default: break;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace capmem::check
