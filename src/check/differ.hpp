// Differential harness: simulator vs oracle vs inline SC shadow.
//
// One seeded schedule runs attached to a fresh Checker; divergence is any
// of
//   * a Checker violation (oracle version mismatch, MESIF invariant break,
//     residency drift, home-CHA instability),
//   * a CheckError thrown by the simulator's own assertions,
//   * final memory differing from the inline SC shadow (data lines,
//     counter sums, false-sharing slots),
//   * the oracle's last-writer prediction differing from the shadow.
// On divergence, `minimize` shrinks the schedule (prefix bisection, then
// thread halving) and `repro_text` renders a self-contained repro: the
// spec, the violation report, and the minimized per-thread op schedule.
#pragma once

#include <string>

#include "check/workload.hpp"

namespace capmem::check {

struct DiffOutcome {
  WorkloadSpec spec;            ///< exactly what ran (incl. prefix)
  bool ok = true;
  bool aborted = false;         ///< !ok via sim::SimAbort, not divergence
  std::uint64_t violations = 0; ///< checker-recorded violation count
  std::string report;           ///< empty when ok
  double elapsed = 0;
};

/// Runs one schedule with full checking; see file comment for what counts
/// as divergence. Optional `trace` feeds machine events and violation
/// instants into a Chrome trace; optional `attr` collects the machine's
/// virtual-time attribution ledger (conservation-checked at merge).
DiffOutcome run_diff(const WorkloadSpec& spec,
                     obs::TraceSink* trace = nullptr,
                     obs::attr::Sink* attr = nullptr);

/// Shrinks a diverging spec to a smaller one that still diverges: binary
/// search for the shortest failing per-thread prefix, then halve the
/// thread count while the failure persists. `failing` must diverge.
WorkloadSpec minimize(const WorkloadSpec& failing);

/// Self-contained repro text for a diverging outcome.
std::string repro_text(const DiffOutcome& outcome);

}  // namespace capmem::check
