#include "check/invariants.hpp"

#include <bit>
#include <sstream>

#include "sim/memsys.hpp"

namespace capmem::check {

namespace {

void add(std::vector<Violation>& out, sim::Line line,
         const std::string& what) {
  out.push_back(Violation{what, line, -1, 0});
}

}  // namespace

void InvariantChecker::check_entry(sim::Line line, const sim::LineEntry& e,
                                   const sim::MemSystem& mem,
                                   std::vector<Violation>& out) const {
  // Mask width: no bits beyond the active tiles / cores.
  if (tiles_ < 64 && (e.l2_mask >> tiles_) != 0)
    add(out, line, "invariant: l2_mask has bits beyond the active tiles");
  if (cores_ < 64 && (e.l1_mask >> cores_) != 0)
    add(out, line, "invariant: l1_mask has bits beyond the active cores");

  if (e.owner >= 0) {
    // Owned line: the owner holds a copy; unless the protocol shares dirty
    // lines (MOSI's O), it holds the *only* copy. "No line is dirty in two
    // tiles" follows: dirty lives on the unique owner.
    if (e.owner >= tiles_)
      add(out, line, "invariant: owner tile out of range");
    else if (!e.present_in_tile(e.owner)) {
      add(out, line, "invariant: owner has no L2 copy of its line");
    }
    if (rules_->dirty_shared) {
      // MOSI: extra copies are legal only on a dirty (O) line; a clean
      // owned line is M/E bookkeeping the protocol does not have.
      if (!e.dirty && std::popcount(e.l2_mask) != 1) {
        std::ostringstream os;
        os << "invariant: clean owned line has " << std::popcount(e.l2_mask)
           << " L2 copies, mask=" << e.l2_mask << " owner=" << e.owner;
        add(out, line, os.str());
      }
    } else if (std::popcount(e.l2_mask) != 1) {
      std::ostringstream os;
      os << "invariant: owned (" << (e.dirty ? "M" : "E")
         << ") line must have exactly the owner's L2 copy, mask="
         << e.l2_mask << " owner=" << e.owner;
      add(out, line, os.str());
    }
    if (!rules_->has_exclusive && !e.dirty)
      add(out, line,
          "invariant: protocol has no E state, yet a clean line is owned");
    if (e.forward != -1)
      add(out, line, "invariant: owned line has a forwarder");
  } else {
    if (e.dirty)
      add(out, line, "invariant: dirty line without an owner");
    if (!rules_->has_forward && e.forward != -1)
      add(out, line,
          "invariant: protocol has no F state, yet a forwarder is set");
    if (e.forward >= 0) {
      // F implies at least one sharer — the forwarder itself.
      if (e.forward >= tiles_ || !e.present_in_tile(e.forward))
        add(out, line, "invariant: forwarder is not a sharer");
    }
    if (e.l2_mask == 0 && e.forward != -1)
      add(out, line, "invariant: globally invalid line has a forwarder");
  }

  // Directory sharer set vs the actual L2 tag arrays, both directions. The
  // superset direction (a mask bit with no tag) is a phantom sharer; the
  // subset direction (a tag with no mask bit) is a stale copy that will
  // serve data the protocol no longer guarantees.
  for (int t = 0; t < tiles_; ++t) {
    const bool claimed = (e.l2_mask >> t) & 1ull;
    const bool resident = mem.line_in_l2(t, line);
    if (claimed == resident) continue;
    std::ostringstream os;
    os << "invariant: "
       << (claimed ? "directory claims an L2 copy tile " + std::to_string(t)
                       + " does not hold"
                   : "stale L2 copy in tile " + std::to_string(t)
                       + " the directory forgot");
    add(out, line, os.str());
  }

  // L1 bits: present in the actual L1, and included in the holder tile's
  // L2 residency (the hierarchy is inclusive).
  for (int c = 0; c < cores_; ++c) {
    const bool claimed = (e.l1_mask >> c) & 1ull;
    const bool resident = mem.line_in_l1(c, line);
    if (claimed != resident) {
      std::ostringstream os;
      os << "invariant: l1_mask/core " << c << " disagree (mask "
         << claimed << ", tag array " << resident << ")";
      add(out, line, os.str());
      continue;
    }
    if (claimed && !e.present_in_tile(mem.tile_of_core(c))) {
      std::ostringstream os;
      os << "invariant: L1 copy in core " << c
         << " without L2 backing in its tile";
      add(out, line, os.str());
    }
  }
}

void InvariantChecker::sweep(const sim::MemSystem& mem,
                             std::vector<Violation>& out) const {
  mem.directory().for_each(
      [&](std::uint64_t line, const sim::LineEntry& e) {
        check_entry(line, e, mem, out);
      });

  // Reverse direction: tags with no directory backing. The per-entry check
  // cannot see these once the entry itself has been dropped.
  for (int t = 0; t < tiles_; ++t) {
    mem.l2_cache(t).for_each_line([&](sim::Line line) {
      const sim::LineEntry* e = mem.directory().find(line);
      if (e == nullptr || !e->present_in_tile(t)) {
        std::ostringstream os;
        os << "invariant: L2 tag in tile " << t
           << " with no directory record";
        add(out, line, os.str());
      }
    });
  }
  for (int c = 0; c < cores_; ++c) {
    mem.l1_cache(c).for_each_line([&](sim::Line line) {
      const sim::LineEntry* e = mem.directory().find(line);
      if (e == nullptr || !((e->l1_mask >> c) & 1ull)) {
        std::ostringstream os;
        os << "invariant: L1 tag in core " << c
           << " with no directory record";
        add(out, line, os.str());
      }
    });
  }
}

void InvariantChecker::note_home(sim::Line line, int home_tile,
                                 std::vector<Violation>& out) {
  if (home_tile < 0 || home_tile >= tiles_) {
    std::ostringstream os;
    os << "invariant: home CHA " << home_tile << " out of range";
    add(out, line, os.str());
    return;
  }
  const auto [it, inserted] = homes_.emplace(line, home_tile);
  if (!inserted && it->second != home_tile) {
    std::ostringstream os;
    os << "invariant: home CHA moved from tile " << it->second << " to "
       << home_tile;
    add(out, line, os.str());
  }
}

}  // namespace capmem::check
