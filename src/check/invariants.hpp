// Coherence global invariant checking against the live machine state.
//
// Directory::check_entry validates an entry in isolation; this module
// validates the entry *against the machine*: the directory's sharer sets
// must agree with the actual L1/L2 tag arrays, L1 residency must be
// included in the holding tile's L2 residency, and the home-CHA mapping
// must resolve every line to the same directory tile for the whole run
// (under all five cluster modes the mapping is a pure function of the
// line). The cross-structure checks are what catch bugs the entry-local
// ones cannot: a stale L2 tag the directory forgot, or an L1 copy in a
// tile with no L2 backing.
//
// The entry-local legality rules are protocol-parametric: the checker is
// built with the machine's ProtocolRules table, so MOSI's dirty-shared
// lines are legal there while MESI's phantom forwarders are not.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/violation.hpp"
#include "sim/protocol.hpp"

namespace capmem::sim {
class MemSystem;
struct LineEntry;
}  // namespace capmem::sim

namespace capmem::check {

class InvariantChecker {
 public:
  /// `tiles` / `cores` are the machine's active tile and core counts.
  /// Defaults to the MESIF legality table.
  InvariantChecker(int tiles, int cores)
      : InvariantChecker(tiles, cores,
                         sim::rules_of(sim::Protocol::kMesif)) {}
  InvariantChecker(int tiles, int cores, const sim::ProtocolRules& rules)
      : tiles_(tiles), cores_(cores), rules_(&rules) {}

  /// Entry-local protocol invariants plus the residency cross-check for one
  /// line: single owner (sole copy unless the protocol shares dirty lines),
  /// dirty implies owner, F implies a sharer (and forbidden entirely when
  /// the protocol has no F), directory sharer set == actual L2 residency,
  /// L1 bits == actual L1 residency and included in the holder tile's L2
  /// set.
  void check_entry(sim::Line line, const sim::LineEntry& e,
                   const sim::MemSystem& mem,
                   std::vector<Violation>& out) const;

  /// Whole-machine sweep: check_entry over every tracked line, plus the
  /// reverse direction — every resident L1/L2 tag must be backed by a
  /// directory entry listing it (catches stale tags of dropped lines).
  void sweep(const sim::MemSystem& mem, std::vector<Violation>& out) const;

  /// Records a home-CHA resolution; a line resolving to two different home
  /// tiles within one run is a violation in every cluster mode.
  void note_home(sim::Line line, int home_tile, std::vector<Violation>& out);

 private:
  int tiles_;
  int cores_;
  const sim::ProtocolRules* rules_;
  std::unordered_map<std::uint64_t, int> homes_;  // line -> home tile
};

}  // namespace capmem::check
