#include "check/oracle.hpp"

#include <sstream>

#include "sim/memsys.hpp"

namespace capmem::check {

std::string format_violations(const std::vector<Violation>& v,
                              std::size_t max) {
  std::ostringstream os;
  std::size_t n = 0;
  for (const Violation& x : v) {
    if (n++ == max) {
      os << "  ... (" << v.size() - max << " more)\n";
      break;
    }
    os << "  [line " << x.line << " tid " << x.tid << " t " << x.t << "] "
       << x.what << '\n';
  }
  return os.str();
}

void Oracle::observe(const sim::AccessRecord& rec,
                     std::vector<Violation>& out) {
  ++accesses_;
  const auto fail = [&](const std::string& what) {
    out.push_back(Violation{what, rec.line, rec.tid, rec.start});
  };

  if (rec.finish < rec.start) {
    std::ostringstream os;
    os << "oracle: access finishes before it starts (start " << rec.start
       << ", finish " << rec.finish << ")";
    fail(os.str());
  }

  if (rec.type == sim::AccessType::kWrite) {
    ++writes_;
    WriterInfo& w = writers_[rec.line];
    // Stores commit in arrival order; a write arriving before the line's
    // previous write would reorder committed values.
    if (w.total_writes > 0 && rec.start < w.last_write_start) {
      std::ostringstream os;
      os << "oracle: write arrival went backwards (" << rec.start
         << " after " << w.last_write_start << ")";
      fail(os.str());
    }
    w.last_tid = rec.tid;
    w.last_count = ++w.per_tid[rec.tid];
    w.total_writes++;
    w.last_write_start = rec.start;

    // Every store — cached RFO, silent upgrade, or non-temporal — bumps the
    // directory version by exactly one.
    std::uint64_t& v = versions_[rec.line];
    const std::uint64_t expect = v + 1;
    if (rec.version_after != expect) {
      std::ostringstream os;
      os << "oracle: store left directory version " << rec.version_after
         << ", model expects " << expect;
      fail(os.str());
    }
    v = rec.version_after;  // resync so one fault is not reported N times
    return;
  }

  // Reads never change the version. The entry may have been freshly
  // (re-)created by this access, in which case the model adopts it.
  const auto it = versions_.find(rec.line);
  if (it == versions_.end()) {
    versions_.emplace(rec.line, rec.version_after);
  } else if (rec.version_after != it->second) {
    std::ostringstream os;
    os << "oracle: read changed directory version from " << it->second
       << " to " << rec.version_after;
    fail(os.str());
    it->second = rec.version_after;
  }
}

const Oracle::WriterInfo* Oracle::writer(sim::Line line) const {
  const auto it = writers_.find(line);
  return it == writers_.end() ? nullptr : &it->second;
}

}  // namespace capmem::check
