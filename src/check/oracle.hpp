// Sequentially-consistent oracle memory for differential testing.
//
// The simulator commits stores in arrival order: coroutine bodies execute
// in nondecreasing virtual time, and a store's value lands in the address
// space at issue, before the access latency elapses. The oracle replays the
// memory system's access stream (CheckHook::on_access order, which is that
// same arrival order) against a flat model with no caches, no directory and
// no timing, predicting
//   * the directory version counter of every line (writes bump it by
//     exactly one, reads leave it alone, flush/eviction-drop restart it),
//   * the last writer of every line plus that writer's per-line write
//     count — enough for a workload that writes encode(tid, count) values
//     to predict final memory contents without the oracle ever seeing data,
//   * per-line write-issue monotonicity (arrival order never goes
//     backwards for stores; spin-probe reads may legally run "in the
//     future" inside notifications, so reads are exempt).
// Any mismatch between the stream and the model is a recorded Violation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "check/violation.hpp"
#include "sim/hooks.hpp"

namespace capmem::check {

class Oracle {
 public:
  /// Everything the oracle knows about who wrote a line. Survives flushes
  /// and drops (memory keeps its value when caches let go of the line).
  struct WriterInfo {
    int last_tid = -1;              ///< tid of the most recent writer
    std::uint64_t last_count = 0;   ///< that writer's write count at the time
    std::uint64_t total_writes = 0;
    Nanos last_write_start = 0;     ///< arrival time of the latest write
    std::unordered_map<int, std::uint64_t> per_tid;
  };

  /// Feeds one access in execution order; divergences append to `out`.
  void observe(const sim::AccessRecord& rec, std::vector<Violation>& out);

  /// The line's directory entry was dropped / flushed: its version counter
  /// restarts at zero, but memory (and thus writer info) is unaffected.
  void on_drop(sim::Line line) { versions_.erase(line); }
  void on_flush(sim::Line line) { versions_.erase(line); }

  /// Whole-machine reset (directory cleared wholesale).
  void on_reset() { versions_.clear(); }

  /// Writer info for `line`, or nullptr when it was never written.
  const WriterInfo* writer(sim::Line line) const;

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t writes() const { return writes_; }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> versions_;  // line -> v
  std::unordered_map<std::uint64_t, WriterInfo> writers_;
  std::uint64_t accesses_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace capmem::check
