// A divergence found by the model-based checking layer (capmem::check).
//
// Violations are *recorded*, never thrown: the hooks that produce them run
// inside simulator hot paths and coroutine frames, where unwinding would
// leave the machine half-transitioned. Harnesses inspect Checker::ok() /
// report() after the run instead.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/address.hpp"

namespace capmem::check {

struct Violation {
  std::string what;     ///< human-readable description of the divergence
  sim::Line line = 0;   ///< offending cache line, when line-related
  int tid = -1;         ///< simulated thread involved, -1 if none
  Nanos t = 0;          ///< virtual time of the offending event, when known
};

/// "what" strings of `v`, one per line, capped at `max` entries.
std::string format_violations(const std::vector<Violation>& v,
                              std::size_t max = 16);

}  // namespace capmem::check
