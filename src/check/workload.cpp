#include "check/workload.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "sim/machine.hpp"

namespace capmem::check {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "R";
    case OpKind::kWrite: return "W";
    case OpKind::kNtWrite: return "NTW";
    case OpKind::kFetchAdd: return "FA";
    case OpKind::kFalseShare: return "FS";
    case OpKind::kStream: return "STRM";
    case OpKind::kFlush: return "FLUSH";
    case OpKind::kCompute: return "C";
  }
  return "?";
}

std::string WorkloadSpec::label() const {
  std::ostringstream os;
  os << sim::to_string(cluster) << '/' << sim::to_string(memory) << " t"
     << threads << " ops" << ops_per_thread;
  if (prefix >= 0) os << "[:" << prefix << ']';
  os << " seed" << seed;
  if (max_steps != 0) os << " steps<=" << max_steps;
  if (fault_severity != 0) os << " fault" << fault_severity;
  if (machine != "knl_38t" || protocol != sim::Protocol::kMesif) {
    os << ' ' << machine << '/' << sim::to_string(protocol);
  }
  return os.str();
}

std::vector<std::vector<Op>> generate_ops(const WorkloadSpec& spec) {
  std::vector<std::vector<Op>> all(static_cast<std::size_t>(spec.threads));
  for (int t = 0; t < spec.threads; ++t) {
    Rng rng(spec.seed * 1000003 + static_cast<std::uint64_t>(t));
    auto& ops = all[static_cast<std::size_t>(t)];
    ops.reserve(static_cast<std::size_t>(spec.ops_per_thread));
    for (int i = 0; i < spec.ops_per_thread; ++i) {
      Op op;
      const std::uint64_t roll = rng.next_below(100);
      const auto data_line = [&] {
        return static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(spec.data_lines)));
      };
      if (roll < 30) {
        op.kind = OpKind::kRead;
        op.arg = data_line();
      } else if (roll < 50) {
        op.kind = OpKind::kWrite;
        op.arg = data_line();
      } else if (roll < 57) {
        op.kind = OpKind::kNtWrite;
        op.arg = data_line();
      } else if (roll < 67) {
        op.kind = OpKind::kFetchAdd;
        op.arg = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(spec.counter_lines)));
        op.val = 1 + rng.next_below(7);
      } else if (roll < 80) {
        op.kind = OpKind::kFalseShare;
      } else if (roll < 86) {
        op.kind = OpKind::kStream;
      } else if (roll < 91) {
        op.kind = OpKind::kFlush;
        op.arg = data_line();
      } else {
        op.kind = OpKind::kCompute;
        op.ns = rng.uniform(1.0, 40.0);
      }
      ops.push_back(op);
    }
  }
  return all;
}

sim::MachineConfig workload_config(const WorkloadSpec& spec) {
  sim::MachineConfig cfg =
      sim::machine_preset(spec.machine, spec.cluster, spec.memory);
  cfg.protocol = spec.protocol;
  // Cache/hybrid runs shrink the memory-side tag array to a footprint the
  // fuzz working set actually exercises (same scaling as test_fuzz). Small
  // presets carry less memory than KNL: clamp so the scaled capacities stay
  // at least a MiB per kind.
  if (spec.memory != sim::MemoryMode::kFlat) {
    const std::uint64_t max_scale =
        std::min(cfg.dram_bytes, cfg.mcdram_bytes) / MiB(1);
    const std::uint64_t scale = std::min<std::uint64_t>(256, max_scale);
    if (scale > 1) cfg.scale_memory(scale);
  }
  cfg.seed = spec.seed;
  return cfg;
}

WorkloadResult run_workload(const WorkloadSpec& spec, Checker* checker,
                            obs::TraceSink* trace, obs::attr::Sink* attr) {
  using namespace capmem::sim;
  CAPMEM_CHECK(spec.threads >= 1 && spec.data_lines >= 1 &&
               spec.counter_lines >= 1);
  MachineConfig cfg = workload_config(spec);
  cfg.watchdog.max_steps = spec.max_steps;
  // The plan is a local: cfg.fault borrows it, and every Machine built from
  // cfg dies before this frame does.
  fault::FaultPlan plan;
  if (spec.fault_severity != 0) {
    plan = fault::from_seed(spec.seed, spec.fault_severity);
    fault::apply(cfg, plan);
  }
  CAPMEM_CHECK(spec.threads <= cfg.hw_threads());
  cfg.check = checker;
  cfg.trace = trace;
  cfg.attr = attr;
  if (checker != nullptr) checker->set_trace(trace);

  const auto ops = generate_ops(spec);
  const int nops = spec.prefix < 0
                       ? spec.ops_per_thread
                       : std::min(spec.prefix, spec.ops_per_thread);

  WorkloadResult out;
  out.expected_data.assign(static_cast<std::size_t>(spec.data_lines), 0);
  out.expected_counter.assign(static_cast<std::size_t>(spec.counter_lines),
                              0);
  out.expected_slot.assign(static_cast<std::size_t>(spec.threads), 0);

  Machine m(cfg);
  const Addr data = m.alloc(
      "data", static_cast<std::uint64_t>(spec.data_lines) * kLineBytes, {},
      true);
  out.data_base_line = line_of(data);
  const Addr counters = m.alloc(
      "counters",
      static_cast<std::uint64_t>(spec.counter_lines) * kLineBytes, {}, true);
  // One 64-bit slot per thread, eight to a line: false sharing by layout.
  const Addr slots = m.alloc(
      "slots", static_cast<std::uint64_t>(spec.threads) * 8, {}, true);
  std::vector<Addr> priv(static_cast<std::size_t>(spec.threads));
  for (int t = 0; t < spec.threads; ++t) {
    priv[static_cast<std::size_t>(t)] =
        m.alloc("priv" + std::to_string(t), KiB(4), {}, false);
  }

  const auto slot_list = make_schedule(cfg, spec.sched, spec.threads);
  // Write counts per (thread, data line), feeding encode_value. Indexed
  // [t][line]; only thread t touches row t, and the shadow vectors are
  // updated in coroutine execution order == store commit order.
  std::vector<std::vector<std::uint64_t>> wcount(
      static_cast<std::size_t>(spec.threads),
      std::vector<std::uint64_t>(static_cast<std::size_t>(spec.data_lines),
                                 0));
  std::vector<std::uint64_t> fs_count(
      static_cast<std::size_t>(spec.threads), 0);

  for (int t = 0; t < spec.threads; ++t) {
    m.add_thread(slot_list[static_cast<std::size_t>(t)],
                 [&, t](Ctx& ctx) -> Task {
      const auto& my_ops = ops[static_cast<std::size_t>(t)];
      for (int i = 0; i < nops; ++i) {
        const Op op = my_ops[static_cast<std::size_t>(i)];
        const std::size_t li = static_cast<std::size_t>(op.arg);
        switch (op.kind) {
          case OpKind::kRead:
            co_await ctx.read_u64(data + li * kLineBytes);
            break;
          case OpKind::kWrite:
          case OpKind::kNtWrite: {
            const std::uint64_t v = encode_value(
                t, ++wcount[static_cast<std::size_t>(t)][li]);
            out.expected_data[li] = v;
            AccessOpts o;
            o.nt = op.kind == OpKind::kNtWrite;
            co_await ctx.write_u64(data + li * kLineBytes, v, o);
            break;
          }
          case OpKind::kFetchAdd:
            out.expected_counter[li] += op.val;
            co_await ctx.fetch_add_u64(counters + li * kLineBytes, op.val);
            break;
          case OpKind::kFalseShare: {
            const std::uint64_t v =
                ++fs_count[static_cast<std::size_t>(t)];
            out.expected_slot[static_cast<std::size_t>(t)] = v;
            co_await ctx.write_u64(
                slots + static_cast<std::uint64_t>(t) * 8, v);
            break;
          }
          case OpKind::kStream:
            co_await ctx.read_buf(priv[static_cast<std::size_t>(t)],
                                  KiB(4));
            break;
          case OpKind::kFlush:
            ctx.machine().memsys().flush_line(
                line_of(data + li * kLineBytes));
            break;
          case OpKind::kCompute:
            co_await ctx.compute(op.ns);
            break;
        }
      }
    });
  }

  try {
    m.run();
    m.memsys().directory().check_all();
    if (checker != nullptr) checker->final_sweep(m.memsys());
    out.ran = true;
  } catch (const SimAbort& e) {
    out.aborted = true;
    out.error = e.what();
    return out;
  } catch (const CheckError& e) {
    out.error = e.what();
    return out;
  }

  out.elapsed = m.elapsed();
  out.dir_lines = m.memsys().directory().tracked_lines();
  for (int i = 0; i < spec.data_lines; ++i) {
    out.final_data.push_back(m.space().load<std::uint64_t>(
        data + static_cast<std::uint64_t>(i) * kLineBytes));
  }
  for (int i = 0; i < spec.counter_lines; ++i) {
    out.final_counter.push_back(m.space().load<std::uint64_t>(
        counters + static_cast<std::uint64_t>(i) * kLineBytes));
  }
  for (int t = 0; t < spec.threads; ++t) {
    out.final_slot.push_back(m.space().load<std::uint64_t>(
        slots + static_cast<std::uint64_t>(t) * 8));
  }
  return out;
}

}  // namespace capmem::check
