// Randomized workload generation for differential testing.
//
// A WorkloadSpec deterministically expands (seed -> per-thread op lists)
// into a mixed coherence workload: shared-line reads and writes,
// non-temporal stores, atomic fetch-adds on contended counters,
// false-sharing stores (threads hammering distinct words of shared lines),
// private streaming traffic for cache churn, and mid-run line flushes.
// While running, the harness maintains an inline sequentially-consistent
// shadow of what memory must contain at the end — coroutine bodies execute
// in arrival order, the same order the simulator commits stores, so
// updating the shadow right before each issued store replays commit order
// exactly. run_workload returns both the shadow and the simulator's final
// memory so a differ can compare them, with a Checker hooked into every
// access and MESIF transition along the way.
//
// Schedules are replayable by (seed, threads, ops) alone, and `prefix`
// truncates every thread's list for divergence minimization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "sim/config.hpp"
#include "sim/thread.hpp"

namespace capmem::obs {
class TraceSink;
}  // namespace capmem::obs

namespace capmem::obs::attr {
class Sink;
}  // namespace capmem::obs::attr

namespace capmem::check {

struct WorkloadSpec {
  int threads = 10;
  int data_lines = 12;     ///< shared multi-writer lines (encode values)
  int counter_lines = 2;   ///< fetch-add counters (order-free sums)
  int ops_per_thread = 160;
  int prefix = -1;         ///< execute only the first N ops/thread (-1: all)
  std::uint64_t seed = 1;
  sim::ClusterMode cluster = sim::ClusterMode::kQuadrant;
  sim::MemoryMode memory = sim::MemoryMode::kFlat;
  sim::Schedule sched = sim::Schedule::kScatter;
  /// Coherence protocol and machine preset the workload runs on. The
  /// defaults reproduce the historical fuzz transcripts byte-for-byte;
  /// label() mentions either only when it differs from the default.
  sim::Protocol protocol = sim::Protocol::kMesif;
  std::string machine = "knl_38t";
  /// Engine step budget (0 = unlimited): trips the watchdog with a
  /// sim::SimAbort instead of letting a pathological schedule run away.
  std::uint64_t max_steps = 0;
  /// Degraded-silicon severity 0-3 (fault::from_seed(seed, severity));
  /// 0 = healthy, byte-identical to the pre-fault simulator.
  int fault_severity = 0;

  /// "quad/flat t10 ops160 seed42", with "[:N]" appended under a prefix
  /// and " steps<=N" / " faultN" / " <machine>/<protocol>" when those
  /// knobs are set to non-default values.
  std::string label() const;
};

enum class OpKind : std::uint8_t {
  kRead,        ///< timed 64-bit load of a shared data line
  kWrite,       ///< store encode(tid, count) to a shared data line
  kNtWrite,     ///< the same through the non-temporal path
  kFetchAdd,    ///< atomic add on a shared counter line
  kFalseShare,  ///< store to this thread's word of a shared slot line
  kStream,      ///< streaming read over a private buffer (cache churn)
  kFlush,       ///< untimed flush of a shared data line
  kCompute,     ///< virtual-time gap (decorrelates thread clocks)
};
const char* to_string(OpKind k);

struct Op {
  OpKind kind = OpKind::kRead;
  int arg = 0;             ///< data/counter line index, when line-directed
  std::uint64_t val = 0;   ///< fetch-add delta
  double ns = 0;           ///< compute-gap length
};

/// The value thread `tid` stores on its `count`th write to a data line.
/// Distinct across (tid, count), so final memory identifies its writer.
constexpr std::uint64_t encode_value(int tid, std::uint64_t count) {
  return (static_cast<std::uint64_t>(tid + 1) << 32) | count;
}

/// Per-thread op lists; pure function of (seed, threads, ops, line counts).
std::vector<std::vector<Op>> generate_ops(const WorkloadSpec& spec);

/// The MachineConfig a workload runs on (hooks not yet attached).
sim::MachineConfig workload_config(const WorkloadSpec& spec);

struct WorkloadResult {
  bool ran = false;       ///< false when the simulator threw (divergence)
  bool aborted = false;   ///< !ran due to a sim::SimAbort (watchdog/deadlock)
  std::string error;      ///< the exception message when !ran
  double elapsed = 0;
  std::uint64_t dir_lines = 0;
  sim::Line data_base_line = 0;  ///< line index of data line 0 (oracle key)

  // Inline SC shadow vs the simulator's final memory, index-aligned.
  std::vector<std::uint64_t> expected_data, final_data;        // per line
  std::vector<std::uint64_t> expected_counter, final_counter;  // per line
  std::vector<std::uint64_t> expected_slot, final_slot;        // per thread
};

/// Builds the machine, runs the expanded schedule, and returns shadow +
/// final memory. `checker` (nullable) is attached as MachineConfig::check
/// and final-swept after the run; `trace` (nullable) receives the machine's
/// trace events and the checker's violation instants; `attr` (nullable)
/// collects the machine's virtual-time attribution ledger.
WorkloadResult run_workload(const WorkloadSpec& spec, Checker* checker,
                            obs::TraceSink* trace = nullptr,
                            obs::attr::Sink* attr = nullptr);

}  // namespace capmem::check
