#include "coll/baseline_mpi.hpp"

#include "coll/harness.hpp"
#include "coll/tuned.hpp"
#include "common/check.hpp"

namespace capmem::coll {

using sim::Ctx;
using sim::Task;

namespace {
int log2_rounds(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}
}  // namespace

// ----------------------------------------------------------------- barrier

MpiBarrier::MpiBarrier(World& w, MpiCosts costs)
    : w_(&w),
      costs_(costs),
      rounds_(std::max(1, log2_rounds(w.nranks()))),
      mailbox_(*w.machine, "mpi_bar", w.nranks(), rounds_, w.place) {}

sim::Machine::Program MpiBarrier::program(int rank, int iters,
                                          Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    const double progress = costs_.progress_per_rank * n;
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      for (int j = 0; j < rounds_; ++j) {
        const int peer = (rank + (1 << j)) % n;
        co_await ctx.compute(costs_.send_overhead);
        co_await ctx.write_u64(mailbox_.flag(peer, j), seq);
        co_await ctx.compute(progress);
        co_await ctx.wait_eq(mailbox_.flag(rank, j), seq);
        co_await ctx.compute(costs_.recv_overhead);
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// --------------------------------------------------------------- broadcast

MpiBroadcast::MpiBroadcast(World& w, MpiCosts costs)
    : w_(&w),
      costs_(costs),
      mailbox_(*w.machine, "mpi_bc", w.nranks(), 1, w.place),
      acks_(*w.machine, "mpi_bc_local", w.nranks(), 1, w.place) {}

sim::Machine::Program MpiBroadcast::program(int rank, int iters,
                                            Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    const double progress = costs_.progress_per_rank * n;
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t v = 0;
      // Binomial tree: ranks below `mask` hold the payload.
      bool have = rank == 0;
      if (have) v = bcast_value(it);
      for (int mask = 1; mask < n; mask <<= 1) {
        if (!have && rank < 2 * mask && rank >= mask) {
          // Receive from rank - mask: progress, poll, double copy out.
          co_await ctx.compute(progress);
          co_await ctx.wait_eq(mailbox_.flag(rank, 0), seq);
          v = co_await ctx.read_u64(mailbox_.payload(rank, 0));
          co_await ctx.write_u64(acks_.payload(rank, 0), v);  // copy-out
          co_await ctx.compute(costs_.recv_overhead);
          have = true;
        } else if (have && rank < mask && rank + mask < n) {
          // Send to rank + mask: marshal + copy into the staging segment.
          co_await ctx.compute(costs_.send_overhead);
          co_await ctx.write_u64(mailbox_.payload(rank + mask, 0), v);
          co_await ctx.write_u64(mailbox_.flag(rank + mask, 0), seq);
        }
      }
      if (v != bcast_value(it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// --------------------------------------------------------------- allreduce

MpiAllreduce::MpiAllreduce(World& w, MpiCosts costs)
    : w_(&w),
      costs_(costs),
      rd_mailbox_(*w.machine, "mpi_ar_rd", w.nranks(),
                  std::max(1, log2_rounds(w.nranks())), w.place),
      bc_mailbox_(*w.machine, "mpi_ar_bc", w.nranks(), 1, w.place),
      locals_(*w.machine, "mpi_ar_loc", w.nranks(), 1, w.place) {}

sim::Machine::Program MpiAllreduce::program(int rank, int iters,
                                            Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    const double progress = costs_.progress_per_rank * n;
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      // Binomial reduce towards rank 0.
      std::uint64_t acc = reduce_contrib(rank, it);
      int slot = 0;
      for (int mask = 1; mask < n; mask <<= 1, ++slot) {
        if (rank & mask) {
          co_await ctx.compute(costs_.send_overhead);
          co_await ctx.write_u64(rd_mailbox_.payload(rank - mask, slot),
                                 acc);
          co_await ctx.write_u64(rd_mailbox_.flag(rank - mask, slot), seq);
          break;
        }
        if (rank + mask < n) {
          co_await ctx.compute(progress);
          co_await ctx.wait_eq(rd_mailbox_.flag(rank, slot), seq);
          acc += co_await ctx.read_u64(rd_mailbox_.payload(rank, slot));
          co_await ctx.compute(costs_.recv_overhead);
        }
      }
      // Binomial broadcast of the total from rank 0.
      std::uint64_t total = acc;
      bool have = rank == 0;
      for (int mask = 1; mask < n; mask <<= 1) {
        if (!have && rank < 2 * mask && rank >= mask) {
          co_await ctx.compute(progress);
          co_await ctx.wait_eq(bc_mailbox_.flag(rank, 0), seq);
          total = co_await ctx.read_u64(bc_mailbox_.payload(rank, 0));
          co_await ctx.write_u64(locals_.payload(rank, 0), total);
          co_await ctx.compute(costs_.recv_overhead);
          have = true;
        } else if (have && rank < mask && rank + mask < n) {
          co_await ctx.compute(costs_.send_overhead);
          co_await ctx.write_u64(bc_mailbox_.payload(rank + mask, 0),
                                 total);
          co_await ctx.write_u64(bc_mailbox_.flag(rank + mask, 0), seq);
        }
      }
      if (total != reduce_expected(n, it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// ------------------------------------------------------------------ reduce

MpiReduce::MpiReduce(World& w, MpiCosts costs)
    : w_(&w),
      costs_(costs),
      mailbox_(*w.machine, "mpi_rd", w.nranks(),
               std::max(1, log2_rounds(w.nranks())), w.place) {}

sim::Machine::Program MpiReduce::program(int rank, int iters,
                                         Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    const double progress = costs_.progress_per_rank * n;
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t acc = reduce_contrib(rank, it);
      int slot = 0;
      for (int mask = 1; mask < n; mask <<= 1, ++slot) {
        if (rank & mask) {
          // Send my partial to rank - mask and leave the tree.
          co_await ctx.compute(costs_.send_overhead);
          co_await ctx.write_u64(mailbox_.payload(rank - mask, slot), acc);
          co_await ctx.write_u64(mailbox_.flag(rank - mask, slot), seq);
          break;
        }
        if (rank + mask < n) {
          co_await ctx.compute(progress);
          co_await ctx.wait_eq(mailbox_.flag(rank, slot), seq);
          acc += co_await ctx.read_u64(mailbox_.payload(rank, slot));
          co_await ctx.compute(costs_.recv_overhead);
        }
      }
      if (rank == 0 && acc != reduce_expected(n, it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

}  // namespace capmem::coll
