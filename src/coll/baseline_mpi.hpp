// Intel-MPI-style baseline collectives (paper §IV.B.3 comparison).
//
// MPI ranks live in separate address spaces, so every transfer is a double
// copy through a shared staging segment plus an eager-protocol envelope.
// On top of the copies, each message pays software overhead: argument
// marshalling / matching on both sides, and a progress-engine term that
// scans per-peer connection state and therefore grows with the rank count
// (the paper: "most MPI implementations utilize different address spaces
// and are thus at a disadvantage"). Collectives are binomial trees /
// dissemination exactly like production MPI libraries.
#pragma once

#include "coll/runtime.hpp"

namespace capmem::coll {

class Recorder;

/// Software-overhead model of the MPI library itself (ns).
struct MpiCosts {
  double send_overhead = 350.0;
  double recv_overhead = 350.0;
  /// Progress-engine scan per posted receive, multiplied by the number of
  /// ranks (connection endpoints to poll).
  double progress_per_rank = 40.0;
};

class MpiBarrier {
 public:
  MpiBarrier(World& w, MpiCosts costs = {});
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  MpiCosts costs_;
  int rounds_;
  CellSet mailbox_;  // per rank: one staging slot per round
};

class MpiBroadcast {
 public:
  MpiBroadcast(World& w, MpiCosts costs = {});
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  MpiCosts costs_;
  CellSet mailbox_;  // per rank: eager staging cell
  CellSet acks_;
};

/// MPI_Allreduce-style: binomial reduce to rank 0, then binomial
/// broadcast, each hop a staged double copy with software overheads.
class MpiAllreduce {
 public:
  MpiAllreduce(World& w, MpiCosts costs = {});
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  MpiCosts costs_;
  CellSet rd_mailbox_;  // per rank, one slot per binomial round
  CellSet bc_mailbox_;
  CellSet locals_;
};

class MpiReduce {
 public:
  MpiReduce(World& w, MpiCosts costs = {});
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  MpiCosts costs_;
  CellSet mailbox_;  // per rank: one staging slot per binomial round
};

}  // namespace capmem::coll
