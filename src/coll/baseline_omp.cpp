#include "coll/baseline_omp.hpp"

#include "coll/harness.hpp"
#include "coll/tuned.hpp"  // shared value/verification helpers

namespace capmem::coll {

using sim::Ctx;
using sim::Task;

OmpBarrier::OmpBarrier(World& w)
    : w_(&w), state_(*w.machine, "omp_bar", 1, 2, w.place) {}

sim::Machine::Program OmpBarrier::program(int rank, int iters,
                                          Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      // Cumulative counter avoids resets; the seq-th barrier completes
      // when the counter reaches n*seq.
      const std::uint64_t arrived =
          co_await ctx.fetch_add_u64(state_.flag(0, 0), 1) + 1;
      if (arrived == static_cast<std::uint64_t>(n) * seq) {
        co_await ctx.write_u64(state_.flag(0, 1), seq);
      } else {
        co_await ctx.wait_eq(state_.flag(0, 1), seq);
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

OmpBroadcast::OmpBroadcast(World& w)
    : w_(&w), cell_(*w.machine, "omp_bc", 1, 1, w.place) {}

sim::Machine::Program OmpBroadcast::program(int rank, int iters,
                                            Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t v;
      if (rank == 0) {
        v = bcast_value(it);
        co_await ctx.write_u64(cell_.payload(0), v);
        co_await ctx.write_u64(cell_.flag(0), seq);
      } else {
        co_await ctx.wait_eq(cell_.flag(0), seq);
        v = co_await ctx.read_u64(cell_.payload(0));
      }
      if (v != bcast_value(it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

OmpAllreduce::OmpAllreduce(World& w)
    : w_(&w),
      cells_(*w.machine, "omp_ar", w.nranks(), 1, w.place),
      result_(*w.machine, "omp_ar_res", 1, 1, w.place) {}

sim::Machine::Program OmpAllreduce::program(int rank, int iters,
                                            Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t total;
      if (rank != 0) {
        co_await ctx.write_u64(cells_.payload(rank),
                               reduce_contrib(rank, it));
        co_await ctx.write_u64(cells_.flag(rank), seq);
        co_await ctx.wait_eq(result_.flag(0), seq);
        total = co_await ctx.read_u64(result_.payload(0));
      } else {
        std::uint64_t acc = reduce_contrib(0, it);
        for (int r = 1; r < n; ++r) {
          co_await ctx.wait_eq(cells_.flag(r), seq);
          acc += co_await ctx.read_u64(cells_.payload(r));
        }
        co_await ctx.write_u64(result_.payload(0), acc);
        co_await ctx.write_u64(result_.flag(0), seq);
        total = acc;
      }
      if (total != reduce_expected(n, it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

OmpReduce::OmpReduce(World& w)
    : w_(&w), cells_(*w.machine, "omp_rd", w.nranks(), 1, w.place) {}

sim::Machine::Program OmpReduce::program(int rank, int iters,
                                         Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      if (rank != 0) {
        co_await ctx.write_u64(cells_.payload(rank),
                               reduce_contrib(rank, it));
        co_await ctx.write_u64(cells_.flag(rank), seq);
      } else {
        std::uint64_t acc = reduce_contrib(0, it);
        for (int r = 1; r < n; ++r) {
          co_await ctx.wait_eq(cells_.flag(r), seq);
          acc += co_await ctx.read_u64(cells_.payload(r));
        }
        if (acc != reduce_expected(n, it)) rec->flag_error();
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

}  // namespace capmem::coll
