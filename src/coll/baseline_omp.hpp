// OpenMP-runtime-style baseline collectives (paper §IV.B.3 comparison).
//
// These model the algorithmic structure of typical OpenMP runtimes, which
// is what the paper's speedups are measured against:
//   barrier   — centralized: atomic arrival counter + one release flag that
//               every thread polls (contention grows linearly with N).
//   broadcast — flat: the master publishes one cell; all N-1 threads poll
//               the same line.
//   reduce    — flat gather: every thread publishes a private cell; the
//               master collects them sequentially.
#pragma once

#include "coll/runtime.hpp"

namespace capmem::coll {

class Recorder;

class OmpBarrier {
 public:
  explicit OmpBarrier(World& w);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  CellSet state_;  // slot 0 of rank 0: counter; slot 1: release flag
};

class OmpBroadcast {
 public:
  explicit OmpBroadcast(World& w);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  CellSet cell_;  // single master cell
};

/// Flat allreduce: gather into the master, master publishes the total.
class OmpAllreduce {
 public:
  explicit OmpAllreduce(World& w);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  CellSet cells_;   // per rank contributions
  CellSet result_;  // master's published total
};

class OmpReduce {
 public:
  explicit OmpReduce(World& w);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  CellSet cells_;  // per rank
};

}  // namespace capmem::coll
