#include "coll/harness.hpp"

#include <algorithm>

#include "coll/baseline_mpi.hpp"
#include "coll/baseline_omp.hpp"
#include "coll/tuned.hpp"
#include "common/check.hpp"
#include "exec/experiment.hpp"
#include "sim/machine.hpp"

namespace capmem::coll {

using sim::Machine;

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kTunedBarrier: return "tuned-barrier";
    case Algo::kTunedBroadcast: return "tuned-broadcast";
    case Algo::kTunedReduce: return "tuned-reduce";
    case Algo::kOmpBarrier: return "omp-barrier";
    case Algo::kOmpBroadcast: return "omp-broadcast";
    case Algo::kOmpReduce: return "omp-reduce";
    case Algo::kMpiBarrier: return "mpi-barrier";
    case Algo::kMpiBroadcast: return "mpi-broadcast";
    case Algo::kMpiReduce: return "mpi-reduce";
    case Algo::kTunedAllreduce: return "tuned-allreduce";
    case Algo::kOmpAllreduce: return "omp-allreduce";
    case Algo::kMpiAllreduce: return "mpi-allreduce";
  }
  return "?";
}

bool is_tuned(Algo a) {
  return a == Algo::kTunedBarrier || a == Algo::kTunedBroadcast ||
         a == Algo::kTunedReduce || a == Algo::kTunedAllreduce;
}

Recorder::Recorder(int nranks, int iters)
    : nranks_(nranks),
      iters_(iters),
      cells_(static_cast<std::size_t>(nranks) *
                 static_cast<std::size_t>(iters),
             0.0) {}

void Recorder::record(int rank, int iter, double ns) {
  CAPMEM_CHECK(rank >= 0 && rank < nranks_ && iter >= 0 && iter < iters_);
  cells_[static_cast<std::size_t>(rank) * static_cast<std::size_t>(iters_) +
         static_cast<std::size_t>(iter)] = ns;
}

std::vector<double> Recorder::iter_max_series() const {
  std::vector<double> out(static_cast<std::size_t>(iters_), 0.0);
  for (int it = 0; it < iters_; ++it) {
    double mx = 0;
    for (int r = 0; r < nranks_; ++r) {
      mx = std::max(mx,
                    cells_[static_cast<std::size_t>(r) *
                               static_cast<std::size_t>(iters_) +
                           static_cast<std::size_t>(it)]);
    }
    out[static_cast<std::size_t>(it)] = mx;
  }
  return out;
}

Summary Recorder::per_iter_max() const {
  return summarize(iter_max_series());
}

CollResult run_collective(const sim::MachineConfig& cfg, Algo algo,
                          int nthreads, const model::CapabilityModel* model,
                          const HarnessOptions& opts) {
  CAPMEM_CHECK(nthreads >= 2);
  CAPMEM_CHECK_MSG(!is_tuned(algo) || model != nullptr,
                   "tuned collectives need a fitted capability model");
  Machine machine(cfg);
  World w;
  w.machine = &machine;
  w.slots = sim::make_schedule(cfg, opts.sched, nthreads);
  const bool cache_mode = cfg.memory == sim::MemoryMode::kCache;
  w.place = sim::Placement{
      cache_mode ? sim::MemKind::kDDR : opts.cell_kind, std::nullopt};

  Recorder rec(nthreads, opts.iters);
  CollResult out;

  // Thread layout for the model band (tiles actually touched).
  TileGroups groups;
  {
    World probe = w;
    groups = group_by_tile(probe);
  }
  model::ThreadLayout lay;
  lay.nthreads = nthreads;
  lay.tiles = static_cast<int>(groups.leaders.size());
  lay.threads_per_tile =
      (nthreads + lay.tiles - 1) / std::max(1, lay.tiles);

  auto spawn_all = [&](auto& impl) {
    for (int r = 0; r < nthreads; ++r) {
      machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                         impl.program(r, opts.iters, &rec));
    }
  };

  switch (algo) {
    case Algo::kTunedBarrier: {
      const auto d =
          model::optimize_dissemination(*model, nthreads, opts.cell_kind);
      TunedBarrier impl(w, d);
      spawn_all(impl);
      machine.run();
      out.band = model::barrier_band(*model, lay, opts.cell_kind);
      out.has_band = true;
      break;
    }
    case Algo::kTunedBroadcast: {
      const auto tree = model::optimize_tree(
          *model, lay.tiles, model::TreeKind::kBroadcast, opts.cell_kind);
      TunedBroadcast impl(w, tree);
      spawn_all(impl);
      machine.run();
      out.band = model::broadcast_band(*model, lay, opts.cell_kind);
      out.has_band = true;
      break;
    }
    case Algo::kTunedReduce: {
      const auto tree = model::optimize_tree(
          *model, lay.tiles, model::TreeKind::kReduce, opts.cell_kind);
      TunedReduce impl(w, tree);
      spawn_all(impl);
      machine.run();
      out.band = model::reduce_band(*model, lay, opts.cell_kind);
      out.has_band = true;
      break;
    }
    case Algo::kOmpBarrier: {
      OmpBarrier impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kOmpBroadcast: {
      OmpBroadcast impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kOmpReduce: {
      OmpReduce impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kMpiBarrier: {
      MpiBarrier impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kMpiBroadcast: {
      MpiBroadcast impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kMpiReduce: {
      MpiReduce impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kTunedAllreduce: {
      const auto rtree = model::optimize_tree(
          *model, lay.tiles, model::TreeKind::kReduce, opts.cell_kind);
      const auto btree = model::optimize_tree(
          *model, lay.tiles, model::TreeKind::kBroadcast, opts.cell_kind);
      TunedAllreduce impl(w, rtree, btree);
      spawn_all(impl);
      machine.run();
      out.band = model::allreduce_band(*model, lay, opts.cell_kind);
      out.has_band = true;
      break;
    }
    case Algo::kOmpAllreduce: {
      OmpAllreduce impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
    case Algo::kMpiAllreduce: {
      MpiAllreduce impl(w);
      spawn_all(impl);
      machine.run();
      break;
    }
  }

  out.per_iter_max = rec.per_iter_max();
  out.errors = rec.errors();
  return out;
}

std::vector<CollResult> run_collective_sweep(
    const sim::MachineConfig& cfg, const std::vector<SweepPoint>& points,
    const model::CapabilityModel* model, const HarnessOptions& opts,
    int jobs) {
  exec::Experiment<SweepPoint, CollResult> e;
  e.configs = points;
  e.trials = 1;
  e.base_seed = opts.seed;
  e.program = [&cfg, model, &opts](const SweepPoint& p,
                                   const exec::Trial& trial) {
    HarnessOptions ho = opts;
    ho.seed = trial.seed;  // per-point seed, stable across jobs values
    return run_collective(cfg, p.algo, p.nthreads, model, ho);
  };
  return exec::run_experiment(e, jobs);
}

}  // namespace capmem::coll
