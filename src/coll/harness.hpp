// Collective benchmark harness (paper §IV.B.3): runs one algorithm for many
// iterations under a pinning schedule, records per-rank per-iteration costs,
// reduces them with the per-iteration maximum across ranks, and reports the
// boxplot summary next to the min-max model band.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "model/collective_model.hpp"
#include "model/params.hpp"
#include "sim/config.hpp"
#include "sim/thread.hpp"

namespace capmem::coll {

enum class Algo {
  kTunedBarrier,
  kTunedBroadcast,
  kTunedReduce,
  kOmpBarrier,
  kOmpBroadcast,
  kOmpReduce,
  kMpiBarrier,
  kMpiBroadcast,
  kMpiReduce,
  // Extension beyond the paper's three collectives:
  kTunedAllreduce,
  kOmpAllreduce,
  kMpiAllreduce,
};
const char* to_string(Algo a);
bool is_tuned(Algo a);

/// Collects per-(rank, iteration) durations during a run.
class Recorder {
 public:
  Recorder(int nranks, int iters);
  void record(int rank, int iter, double ns);
  void flag_error() { ++errors_; }

  /// Per-iteration maxima across ranks, summarized (the paper's metric).
  Summary per_iter_max() const;
  std::vector<double> iter_max_series() const;
  std::size_t errors() const { return errors_; }

 private:
  int nranks_;
  int iters_;
  std::vector<double> cells_;  // rank-major
  std::size_t errors_ = 0;
};

struct HarnessOptions {
  int iters = 101;
  sim::Schedule sched = sim::Schedule::kScatter;
  sim::MemKind cell_kind = sim::MemKind::kMCDRAM;  ///< Figs. 6-8: MCDRAM
  std::uint64_t seed = 1;
};

struct CollResult {
  Summary per_iter_max;        ///< ns; median is the headline number
  std::size_t errors = 0;      ///< data-validation failures (must be 0)
  model::CostBand band;        ///< min-max model prediction (tuned algos)
  bool has_band = false;
};

/// Runs `algo` with `nthreads` ranks on a fresh machine. Tuned algorithms
/// require the fitted capability model (`model` may be null for baselines).
CollResult run_collective(const sim::MachineConfig& cfg, Algo algo,
                          int nthreads, const model::CapabilityModel* model,
                          const HarnessOptions& opts = {});

/// One cell of a collective sweep: an algorithm at a thread count.
struct SweepPoint {
  Algo algo;
  int nthreads;
};

/// Runs every sweep point as one isolated experiment job (exec layer) on
/// `jobs` host threads; the results come back in point order and are
/// bit-identical for any jobs value. Each point's HarnessOptions seed is
/// derived deterministically from (opts.seed, point index).
std::vector<CollResult> run_collective_sweep(
    const sim::MachineConfig& cfg, const std::vector<SweepPoint>& points,
    const model::CapabilityModel* model, const HarnessOptions& opts = {},
    int jobs = 1);

}  // namespace capmem::coll
