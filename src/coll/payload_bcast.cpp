#include "coll/payload_bcast.hpp"

#include "coll/harness.hpp"
#include "coll/tuned.hpp"
#include "common/check.hpp"

namespace capmem::coll {

using sim::Addr;
using sim::Ctx;
using sim::Task;

std::uint64_t payload_word(int it, std::uint64_t word_index) {
  return (static_cast<std::uint64_t>(it) + 1) * 0x9e3779b97f4a7c15ull +
         word_index * 0xbf58476d1ce4e5b9ull;
}

namespace {
// Fills a data buffer with the iteration's pattern (untimed host setup for
// the root; consumers validate first/last words after their timed copy).
void fill_payload(sim::Machine& m, Addr buf, std::uint64_t bytes, int it) {
  for (std::uint64_t w = 0; w < bytes / 8; ++w) {
    m.space().store<std::uint64_t>(buf + w * 8, payload_word(it, w));
  }
}

bool validate_payload(sim::Machine& m, Addr buf, std::uint64_t bytes,
                      int it) {
  const std::uint64_t last = bytes / 8 - 1;
  return m.space().load<std::uint64_t>(buf) == payload_word(it, 0) &&
         m.space().load<std::uint64_t>(buf + last * 8) ==
             payload_word(it, last);
}
}  // namespace

TunedPayloadBroadcast::TunedPayloadBroadcast(World& w,
                                             const model::TunedTree& tree,
                                             std::uint64_t payload_bytes)
    : w_(&w),
      groups_(group_by_tile(w)),
      payload_bytes_(lines_for(payload_bytes) * kLineBytes),
      flags_(*w.machine, "pb_flags", static_cast<int>(groups_.leaders.size()),
             2, w.place) {
  const TreePlan plan = flatten_tree(tree.root);
  CAPMEM_CHECK(plan.parent.size() == groups_.leaders.size());
  parent_ = plan.parent;
  children_ = plan.children;
  bufs_ = w.machine->alloc(
      "pb_bufs",
      payload_bytes_ * static_cast<std::uint64_t>(groups_.leaders.size()),
      w.place, /*with_data=*/true);
}

Addr TunedPayloadBroadcast::buf_of(int group) const {
  return bufs_ + static_cast<std::uint64_t>(group) * payload_bytes_;
}

sim::Machine::Program TunedPayloadBroadcast::program(int rank, int iters,
                                                     Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int g = groups_.group_of_rank(rank);
    const bool leader = groups_.is_leader(rank);
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      // Prepare the payload only once every rank has finished the previous
      // iteration (the barrier guarantees no one is still copying it).
      if (leader && parent_[static_cast<std::size_t>(g)] < 0) {
        fill_payload(ctx.machine(), buf_of(g), payload_bytes_, it);
      }
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      if (leader) {
        if (parent_[static_cast<std::size_t>(g)] < 0) {
          co_await ctx.write_u64(flags_.flag(g, 0), seq);
        } else {
          const int pg = parent_[static_cast<std::size_t>(g)];
          co_await ctx.wait_eq(flags_.flag(pg, 0), seq);
          // Copy the s-line message from the parent's staging buffer into
          // mine, then publish + ack.
          co_await ctx.copy(buf_of(g), buf_of(pg), payload_bytes_);
          co_await ctx.write_u64(flags_.flag(g, 0), seq);
          co_await ctx.write_u64(flags_.flag(g, 1), seq);  // ack
        }
        for (int cg : children_[static_cast<std::size_t>(g)]) {
          co_await ctx.wait_eq(flags_.flag(cg, 1), seq);
        }
        if (!validate_payload(ctx.machine(), buf_of(g), payload_bytes_,
                              it)) {
          rec->flag_error();
        }
      } else {
        // Tile members read the leader's buffer in place (shared L2).
        co_await ctx.wait_eq(flags_.flag(g, 0), seq);
        co_await ctx.read_buf(buf_of(g), payload_bytes_);
        if (!validate_payload(ctx.machine(), buf_of(g), payload_bytes_,
                              it)) {
          rec->flag_error();
        }
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

FlatPayloadBroadcast::FlatPayloadBroadcast(World& w,
                                           std::uint64_t payload_bytes)
    : w_(&w),
      payload_bytes_(lines_for(payload_bytes) * kLineBytes),
      flag_(*w.machine, "fpb_flag", 1, 1, w.place) {
  root_buf_ = w.machine->alloc("fpb_root", payload_bytes_, w.place, true);
  local_bufs_ = w.machine->alloc(
      "fpb_local",
      payload_bytes_ * static_cast<std::uint64_t>(w.nranks()), w.place,
      true);
}

sim::Machine::Program FlatPayloadBroadcast::program(int rank, int iters,
                                                    Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const Addr mine =
        local_bufs_ + static_cast<std::uint64_t>(rank) * payload_bytes_;
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      if (rank == 0) {
        fill_payload(ctx.machine(), root_buf_, payload_bytes_, it);
      }
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      if (rank == 0) {
        co_await ctx.write_u64(flag_.flag(0), seq);
      } else {
        co_await ctx.wait_eq(flag_.flag(0), seq);
        // Everyone pulls the full message from the root's buffer at once:
        // all the contention the tuned tree avoids.
        co_await ctx.copy(mine, root_buf_, payload_bytes_);
        if (!validate_payload(ctx.machine(), mine, payload_bytes_, it)) {
          rec->flag_error();
        }
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

}  // namespace capmem::coll
