// Multi-line payload broadcast (extension): generalizes the paper's tuned
// broadcast from an 8-byte cell to s-line messages, using the fitted
// alpha + beta*N multi-line transfer law (§IV.A.4) inside Eq. 1 — the tree
// is re-optimized per message size, so the fanout/depth trade-off shifts as
// the per-child copy gets more expensive.
#pragma once

#include "coll/runtime.hpp"
#include "model/tree_opt.hpp"

namespace capmem::coll {

class Recorder;

/// Deterministic payload pattern; validation re-derives it per iteration.
std::uint64_t payload_word(int it, std::uint64_t word_index);

class TunedPayloadBroadcast {
 public:
  /// `payload_bytes` rounded up to whole lines. The tree should have been
  /// optimized with the matching payload_lines.
  TunedPayloadBroadcast(World& w, const model::TunedTree& tree,
                        std::uint64_t payload_bytes);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

  std::uint64_t payload_bytes() const { return payload_bytes_; }

 private:
  World* w_;
  TileGroups groups_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::uint64_t payload_bytes_;
  CellSet flags_;   // per group: flag + ack
  sim::Addr bufs_;  // per group: payload staging buffer
  sim::Addr buf_of(int group) const;
};

/// Flat baseline: every rank copies the s-line message straight from the
/// root's buffer (the OpenMP-ish shape for large payloads).
class FlatPayloadBroadcast {
 public:
  FlatPayloadBroadcast(World& w, std::uint64_t payload_bytes);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  std::uint64_t payload_bytes_;
  CellSet flag_;
  sim::Addr root_buf_;
  sim::Addr local_bufs_;
};

}  // namespace capmem::coll
