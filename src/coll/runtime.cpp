#include "coll/runtime.hpp"

#include <map>

#include "common/check.hpp"

namespace capmem::coll {

using sim::Addr;

CellSet::CellSet(sim::Machine& m, const char* name, int nranks,
                 int slots_per_rank, sim::Placement place)
    : nranks_(nranks), slots_(slots_per_rank) {
  CAPMEM_CHECK(nranks >= 1 && slots_per_rank >= 1);
  base_ = m.alloc(name,
                  static_cast<std::uint64_t>(nranks) *
                      static_cast<std::uint64_t>(slots_per_rank) * kLineBytes,
                  place, /*with_data=*/true);
}

Addr CellSet::flag(int rank, int slot) const {
  CAPMEM_CHECK(rank >= 0 && rank < nranks_ && slot >= 0 && slot < slots_);
  return base_ + (static_cast<std::uint64_t>(rank) *
                      static_cast<std::uint64_t>(slots_) +
                  static_cast<std::uint64_t>(slot)) *
                     kLineBytes;
}

Addr CellSet::payload(int rank, int slot) const {
  return flag(rank, slot) + 8;
}

int TileGroups::group_of_rank(int rank) const {
  return group_index[static_cast<std::size_t>(rank)];
}

bool TileGroups::is_leader(int rank) const {
  return leader_flag[static_cast<std::size_t>(rank)];
}

TileGroups group_by_tile(const World& w) {
  TileGroups g;
  g.group_index.assign(static_cast<std::size_t>(w.nranks()), -1);
  g.leader_flag.assign(static_cast<std::size_t>(w.nranks()), false);
  std::map<int, int> tile_to_group;
  for (int r = 0; r < w.nranks(); ++r) {
    const int tile = w.tile_of_rank(r);
    auto [it, inserted] =
        tile_to_group.try_emplace(tile, static_cast<int>(g.leaders.size()));
    if (inserted) {
      g.leaders.push_back(r);
      g.members.emplace_back();
      g.leader_flag[static_cast<std::size_t>(r)] = true;
    } else {
      g.members[static_cast<std::size_t>(it->second)].push_back(r);
    }
    g.group_index[static_cast<std::size_t>(r)] = it->second;
  }
  return g;
}

}  // namespace capmem::coll
