// Shared-memory collective runtime on the simulated machine.
//
// Communication cells follow the paper's design: each rank owns one cache
// line holding a sequence flag and an 8-byte payload *in the same line*
// (so a consumer pays one transfer for flag + data, the R_I + R_L term of
// Eq. 1), plus a separate ack line. Iterations are distinguished by
// monotonically increasing sequence numbers, so no flags ever need
// resetting and every wait is wait_eq(flag, seq).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace capmem::coll {

/// Per-rank communication cells for one collective instance.
class CellSet {
 public:
  /// Allocates cells for `nranks` ranks; `slots_per_rank` independent flag
  /// lines each (dissemination needs one per (round, peer slot)).
  CellSet(sim::Machine& m, const char* name, int nranks, int slots_per_rank,
          sim::Placement place);

  /// Flag word of (rank, slot) — first 8 bytes of the cell line.
  sim::Addr flag(int rank, int slot = 0) const;
  /// Payload word of (rank, slot) — second 8 bytes, same line.
  sim::Addr payload(int rank, int slot = 0) const;

  int ranks() const { return nranks_; }
  int slots() const { return slots_; }

 private:
  sim::Addr base_ = 0;
  int nranks_ = 0;
  int slots_ = 0;
};

/// Rank -> pinning map plus common collective-world context.
struct World {
  sim::Machine* machine = nullptr;
  std::vector<sim::CpuSlot> slots;  // rank -> cpu
  sim::Placement place;             // where the cells live

  int nranks() const { return static_cast<int>(slots.size()); }
  int tile_of_rank(int rank) const {
    return machine->topology().tile_of_core(
        slots[static_cast<std::size_t>(rank)].core);
  }
};

/// Groups ranks by tile: leaders[i] is the first rank on tile-group i, and
/// members[i] lists the other ranks on that tile (intra-tile stage).
struct TileGroups {
  std::vector<int> leaders;
  std::vector<std::vector<int>> members;  // parallel to leaders
  int group_of_rank(int rank) const;      // index into leaders
  bool is_leader(int rank) const;

  std::vector<int> group_index;  // rank -> group
  std::vector<bool> leader_flag; // rank -> leader?
};

TileGroups group_by_tile(const World& w);

}  // namespace capmem::coll
