#include "coll/tuned.hpp"

#include "coll/harness.hpp"
#include "common/check.hpp"

namespace capmem::coll {

using sim::Addr;
using sim::Ctx;
using sim::Task;

std::uint64_t bcast_value(int it) {
  return static_cast<std::uint64_t>(it) * 2654435761ull + 1;
}

std::uint64_t reduce_contrib(int rank, int it) {
  return static_cast<std::uint64_t>(rank) * 7 +
         static_cast<std::uint64_t>(it) + 1;
}

std::uint64_t reduce_expected(int nranks, int it) {
  std::uint64_t total = 0;
  for (int r = 0; r < nranks; ++r) total += reduce_contrib(r, it);
  return total;
}

namespace {
void flatten(const model::TreeNode& node, int parent, TreePlan& plan) {
  const int id = static_cast<int>(plan.parent.size());
  plan.parent.push_back(parent);
  plan.children.emplace_back();
  if (parent >= 0) plan.children[static_cast<std::size_t>(parent)].push_back(id);
  for (const model::TreeNode& c : node.children) flatten(c, id, plan);
}
}  // namespace

TreePlan flatten_tree(const model::TreeNode& root) {
  TreePlan plan;
  flatten(root, -1, plan);
  return plan;
}

// --------------------------------------------------------------- broadcast

TunedBroadcast::TunedBroadcast(World& w, const model::TunedTree& tree)
    : w_(&w),
      groups_(group_by_tile(w)),
      plan_(flatten_tree(tree.root)),
      cells_(*w.machine, "bc_cells", static_cast<int>(groups_.leaders.size()),
             1, w.place),
      acks_(*w.machine, "bc_acks", static_cast<int>(groups_.leaders.size()),
            1, w.place) {
  CAPMEM_CHECK_MSG(plan_.parent.size() == groups_.leaders.size(),
                   "tuned tree size must equal the tile-group count");
}

sim::Machine::Program TunedBroadcast::program(int rank, int iters,
                                              Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int g = groups_.group_of_rank(rank);
    const bool leader = groups_.is_leader(rank);
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t v = 0;
      if (leader) {
        if (plan_.parent[static_cast<std::size_t>(g)] < 0) {
          v = bcast_value(it);  // root originates the payload
        } else {
          const int pg = plan_.parent[static_cast<std::size_t>(g)];
          co_await ctx.wait_eq(cells_.flag(pg), seq);
          v = co_await ctx.read_u64(cells_.payload(pg));
          // Ack so the parent knows the payload was copied out.
          co_await ctx.write_u64(acks_.flag(g), seq);
        }
        // Publish for my tree children and my tile members: payload first,
        // flag second (same line: one coherence transfer for consumers).
        const bool has_consumers =
            !plan_.children[static_cast<std::size_t>(g)].empty() ||
            !groups_.members[static_cast<std::size_t>(g)].empty();
        if (has_consumers) {
          co_await ctx.write_u64(cells_.payload(g), v);
          co_await ctx.write_u64(cells_.flag(g), seq);
        }
        for (int cg : plan_.children[static_cast<std::size_t>(g)]) {
          co_await ctx.wait_eq(acks_.flag(cg), seq);
        }
      } else {
        co_await ctx.wait_eq(cells_.flag(g), seq);
        v = co_await ctx.read_u64(cells_.payload(g));
      }
      if (v != bcast_value(it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// ------------------------------------------------------------------ reduce

TunedReduce::TunedReduce(World& w, const model::TunedTree& tree)
    : w_(&w),
      groups_(group_by_tile(w)),
      plan_(flatten_tree(tree.root)),
      rank_cells_(*w.machine, "rd_cells", w.nranks(), 1, w.place) {
  CAPMEM_CHECK(plan_.parent.size() == groups_.leaders.size());
}

sim::Machine::Program TunedReduce::program(int rank, int iters,
                                           Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int g = groups_.group_of_rank(rank);
    const bool leader = groups_.is_leader(rank);
    const int nranks = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      if (!leader) {
        // Publish my contribution for the tile leader.
        co_await ctx.write_u64(rank_cells_.payload(rank),
                               reduce_contrib(rank, it));
        co_await ctx.write_u64(rank_cells_.flag(rank), seq);
      } else {
        std::uint64_t acc = reduce_contrib(rank, it);
        // Intra-tile gather (cheap polling within the tile).
        for (int mr : groups_.members[static_cast<std::size_t>(g)]) {
          co_await ctx.wait_eq(rank_cells_.flag(mr), seq);
          acc += co_await ctx.read_u64(rank_cells_.payload(mr));
        }
        // Inter-tile gather from my tree children's leaders.
        for (int cg : plan_.children[static_cast<std::size_t>(g)]) {
          const int cr = groups_.leaders[static_cast<std::size_t>(cg)];
          co_await ctx.wait_eq(rank_cells_.flag(cr), seq);
          acc += co_await ctx.read_u64(rank_cells_.payload(cr));
        }
        if (plan_.parent[static_cast<std::size_t>(g)] >= 0) {
          co_await ctx.write_u64(rank_cells_.payload(rank), acc);
          co_await ctx.write_u64(rank_cells_.flag(rank), seq);
        } else if (acc != reduce_expected(nranks, it)) {
          rec->flag_error();
        }
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// --------------------------------------------------------------- allreduce

TunedAllreduce::TunedAllreduce(World& w, const model::TunedTree& reduce_tree,
                               const model::TunedTree& bcast_tree)
    : w_(&w),
      groups_(group_by_tile(w)),
      rplan_(flatten_tree(reduce_tree.root)),
      bplan_(flatten_tree(bcast_tree.root)),
      rank_cells_(*w.machine, "ar_rd", w.nranks(), 1, w.place),
      bc_cells_(*w.machine, "ar_bc",
                static_cast<int>(groups_.leaders.size()), 1, w.place),
      acks_(*w.machine, "ar_ack",
            static_cast<int>(groups_.leaders.size()), 1, w.place) {
  CAPMEM_CHECK(rplan_.parent.size() == groups_.leaders.size());
  CAPMEM_CHECK(bplan_.parent.size() == groups_.leaders.size());
}

sim::Machine::Program TunedAllreduce::program(int rank, int iters,
                                              Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int g = groups_.group_of_rank(rank);
    const bool leader = groups_.is_leader(rank);
    const int nranks = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      std::uint64_t result = 0;
      if (!leader) {
        // Reduce phase: publish contribution, then wait for the broadcast
        // of the total from my tile leader.
        co_await ctx.write_u64(rank_cells_.payload(rank),
                               reduce_contrib(rank, it));
        co_await ctx.write_u64(rank_cells_.flag(rank), seq);
        co_await ctx.wait_eq(bc_cells_.flag(g), seq);
        result = co_await ctx.read_u64(bc_cells_.payload(g));
      } else {
        // Reduce up the reduce tree.
        std::uint64_t acc = reduce_contrib(rank, it);
        for (int mr : groups_.members[static_cast<std::size_t>(g)]) {
          co_await ctx.wait_eq(rank_cells_.flag(mr), seq);
          acc += co_await ctx.read_u64(rank_cells_.payload(mr));
        }
        for (int cg : rplan_.children[static_cast<std::size_t>(g)]) {
          const int cr = groups_.leaders[static_cast<std::size_t>(cg)];
          co_await ctx.wait_eq(rank_cells_.flag(cr), seq);
          acc += co_await ctx.read_u64(rank_cells_.payload(cr));
        }
        if (rplan_.parent[static_cast<std::size_t>(g)] >= 0) {
          co_await ctx.write_u64(rank_cells_.payload(rank), acc);
          co_await ctx.write_u64(rank_cells_.flag(rank), seq);
        }
        // Broadcast the total down the broadcast tree.
        if (bplan_.parent[static_cast<std::size_t>(g)] < 0) {
          result = acc;  // root holds the global sum
        } else {
          const int pg = bplan_.parent[static_cast<std::size_t>(g)];
          co_await ctx.wait_eq(bc_cells_.flag(pg), seq);
          result = co_await ctx.read_u64(bc_cells_.payload(pg));
          co_await ctx.write_u64(acks_.flag(g), seq);
        }
        co_await ctx.write_u64(bc_cells_.payload(g), result);
        co_await ctx.write_u64(bc_cells_.flag(g), seq);
        for (int cg : bplan_.children[static_cast<std::size_t>(g)]) {
          co_await ctx.wait_eq(acks_.flag(cg), seq);
        }
      }
      if (result != reduce_expected(nranks, it)) rec->flag_error();
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

// ----------------------------------------------------------------- barrier

TunedBarrier::TunedBarrier(World& w, const model::TunedDissemination& diss)
    : w_(&w),
      rounds_(diss.rounds > 0 ? diss.rounds : 1),
      m_(diss.m),
      flags_(*w.machine, "bar_flags", w.nranks(),
             (diss.rounds > 0 ? diss.rounds : 1) * diss.m, w.place) {}

sim::Machine::Program TunedBarrier::program(int rank, int iters,
                                            Recorder* rec) {
  return [this, rank, iters, rec](Ctx& ctx) -> Task {
    const int n = w_->nranks();
    for (int it = 0; it < iters; ++it) {
      co_await ctx.sync();
      const Nanos t0 = ctx.now();
      const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
      long long stride = 1;  // (m+1)^j
      for (int j = 0; j < rounds_; ++j) {
        for (int c = 1; c <= m_; ++c) {
          const int peer =
              static_cast<int>((rank + c * stride) % n);
          co_await ctx.write_u64(flags_.flag(peer, j * m_ + (c - 1)), seq);
        }
        for (int c = 1; c <= m_; ++c) {
          co_await ctx.wait_eq(flags_.flag(rank, j * m_ + (c - 1)), seq);
        }
        stride *= (m_ + 1);
      }
      rec->record(rank, it, ctx.now() - t0);
    }
  };
}

}  // namespace capmem::coll
