// Model-tuned collectives (paper §IV.B): the optimizer's tree / (r, m)
// choice executed on the simulated machine.
//
// Broadcast / reduce: the tuned inter-tile tree runs between tile-leader
// ranks; the remaining ranks of each tile are served by a flat intra-tile
// stage (cheap polling isolated from the expensive inter-tile polling).
// Barrier: a global generalized dissemination with the tuned fanout m.
#pragma once

#include "coll/runtime.hpp"
#include "model/dissemination_opt.hpp"
#include "model/tree_opt.hpp"

namespace capmem::coll {

class Recorder;

/// Expected broadcast payload for iteration `it` (validation).
std::uint64_t bcast_value(int it);
/// Per-rank reduce contribution and the expected total.
std::uint64_t reduce_contrib(int rank, int it);
std::uint64_t reduce_expected(int nranks, int it);

/// Tree flattened over tile groups: preorder node k <-> tile group k.
struct TreePlan {
  std::vector<int> parent;                 ///< group -> parent group (-1 root)
  std::vector<std::vector<int>> children;  ///< group -> child groups
};
TreePlan flatten_tree(const model::TreeNode& root);

class TunedBroadcast {
 public:
  /// `w` must outlive the machine run.
  TunedBroadcast(World& w, const model::TunedTree& tree);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  TileGroups groups_;
  TreePlan plan_;
  CellSet cells_;  // per group: payload + flag
  CellSet acks_;   // per group: ack to its parent
};

class TunedReduce {
 public:
  TunedReduce(World& w, const model::TunedTree& tree);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  TileGroups groups_;
  TreePlan plan_;
  CellSet rank_cells_;   // per rank: member / leader partial contributions
};

/// Allreduce = tuned reduce up the tree, then tuned broadcast of the
/// result down the same tree (extension beyond the paper's three
/// collectives; every rank ends with the global sum).
class TunedAllreduce {
 public:
  TunedAllreduce(World& w, const model::TunedTree& reduce_tree,
                 const model::TunedTree& bcast_tree);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);

 private:
  World* w_;
  TileGroups groups_;
  TreePlan rplan_;
  TreePlan bplan_;
  CellSet rank_cells_;  // reduce phase
  CellSet bc_cells_;    // broadcast phase
  CellSet acks_;
};

class TunedBarrier {
 public:
  TunedBarrier(World& w, const model::TunedDissemination& diss);
  sim::Machine::Program program(int rank, int iters, Recorder* rec);
  int rounds() const { return rounds_; }
  int fanout() const { return m_; }

 private:
  World* w_;
  int rounds_;
  int m_;
  CellSet flags_;  // per rank: rounds * m flag slots
};

}  // namespace capmem::coll
