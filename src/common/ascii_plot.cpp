#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace capmem {

namespace {
double maybe_log(double v, bool log_scale) {
  if (!log_scale) return v;
  CAPMEM_CHECK_MSG(v > 0, "log-scale plot with non-positive value");
  return std::log10(v);
}
}  // namespace

void ascii_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& opts) {
  CAPMEM_CHECK(opts.width >= 10 && opts.height >= 4);
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const PlotSeries& s : series) {
    CAPMEM_CHECK(s.xs.size() == s.ys.size());
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double x = maybe_log(s.xs[i], opts.log_x);
      const double y = maybe_log(s.ys[i], opts.log_y);
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
      any = true;
    }
  }
  if (!any) {
    os << "(empty plot)\n";
    return;
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + 1;

  std::vector<std::string> grid(
      static_cast<std::size_t>(opts.height),
      std::string(static_cast<std::size_t>(opts.width), ' '));
  auto col_of = [&](double x) {
    return std::clamp(
        static_cast<int>(std::lround((maybe_log(x, opts.log_x) - xmin) /
                                     (xmax - xmin) * (opts.width - 1))),
        0, opts.width - 1);
  };
  auto row_of = [&](double y) {
    return std::clamp(
        static_cast<int>(std::lround((maybe_log(y, opts.log_y) - ymin) /
                                     (ymax - ymin) * (opts.height - 1))),
        0, opts.height - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = static_cast<char>('a' + (si % 26));
    const PlotSeries& s = series[si];
    // Connect consecutive points with interpolated marks, then stamp the
    // points themselves.
    for (std::size_t i = 1; i < s.xs.size(); ++i) {
      const int c0 = col_of(s.xs[i - 1]), c1 = col_of(s.xs[i]);
      const int r0 = row_of(s.ys[i - 1]), r1 = row_of(s.ys[i]);
      const int steps = std::max({std::abs(c1 - c0), std::abs(r1 - r0), 1});
      for (int k = 0; k <= steps; ++k) {
        const int c = c0 + (c1 - c0) * k / steps;
        const int r = r0 + (r1 - r0) * k / steps;
        grid[static_cast<std::size_t>(opts.height - 1 - r)]
            [static_cast<std::size_t>(c)] = '.';
      }
    }
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      grid[static_cast<std::size_t>(opts.height - 1 - row_of(s.ys[i]))]
          [static_cast<std::size_t>(col_of(s.xs[i]))] = mark;
    }
  }

  if (!opts.title.empty()) os << opts.title << '\n';
  auto unlog = [](double v, bool log_scale) {
    return log_scale ? std::pow(10.0, v) : v;
  };
  for (int r = 0; r < opts.height; ++r) {
    const double y =
        ymax - (ymax - ymin) * r / std::max(1, opts.height - 1);
    std::ostringstream lab;
    lab << std::setw(10) << fmt_num(unlog(y, opts.log_y), 1);
    os << lab.str() << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(10, ' ') << " +" << std::string(
      static_cast<std::size_t>(opts.width), '-')
     << '\n';
  os << std::string(12, ' ') << fmt_num(unlog(xmin, opts.log_x), 1)
     << std::string(static_cast<std::size_t>(std::max(4, opts.width - 16)),
                    ' ')
     << fmt_num(unlog(xmax, opts.log_x), 1);
  if (!opts.x_label.empty()) os << "  (" << opts.x_label << ")";
  os << '\n';
  // Legend.
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "  " << static_cast<char>('a' + (si % 26)) << " = "
       << series[si].name << '\n';
  }
  if (!opts.y_label.empty()) os << "  y: " << opts.y_label << '\n';
}

}  // namespace capmem
