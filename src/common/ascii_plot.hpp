// ASCII line/scatter plots for the figure benches: every fig*_ binary
// renders its series as a terminal chart next to the numeric table, so the
// reproduced figures can be eyeballed against the paper without plotting
// tools.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace capmem {

struct PlotSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

struct PlotOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders series as an ASCII chart. Each series uses its own marker
/// (a, b, c, ...); overlapping points show the later series' marker.
void ascii_plot(std::ostream& os, const std::vector<PlotSeries>& series,
                const PlotOptions& opts = {});

}  // namespace capmem
