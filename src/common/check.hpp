// Lightweight precondition / invariant checking for capmem.
//
// CAPMEM_CHECK is always on (argument validation on public API boundaries,
// following I.5/I.6 of the C++ Core Guidelines: state preconditions and check
// them where cheap). CAPMEM_DCHECK compiles out in NDEBUG builds and is used
// on hot simulator paths for protocol invariants.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace capmem {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

/// How a retrying executor (capmem::exec) must treat a failure.
/// Deterministic failures reproduce on any same-seed retry (quarantine the
/// job, keep its repro); transient failures are host-side (allocation,
/// system resources) and may succeed on retry; timeouts are watchdog-budget
/// exhaustion — retrying the same budget just burns it again.
enum class FailureClass { kDeterministic, kTransient, kTimeout };

inline const char* to_string(FailureClass c) {
  switch (c) {
    case FailureClass::kDeterministic: return "deterministic";
    case FailureClass::kTransient: return "transient";
    case FailureClass::kTimeout: return "timeout";
  }
  return "?";
}

/// Mixin for exceptions that know their own FailureClass (sim::SimAbort
/// implements it). Executors catch by this base to classify without
/// depending on the throwing layer.
class ClassifiedFailure {
 public:
  virtual ~ClassifiedFailure() = default;
  virtual FailureClass failure_class() const = 0;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace capmem

#define CAPMEM_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::capmem::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define CAPMEM_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::capmem::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define CAPMEM_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define CAPMEM_DCHECK(cond) CAPMEM_CHECK(cond)
#endif
