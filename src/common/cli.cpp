#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>

#include <thread>

#include "common/check.hpp"

namespace capmem {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    CAPMEM_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "options must start with --, got '" << arg << "'");
    arg = arg.substr(2);
    if (arg == "help") {
      help_requested_ = true;
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

std::string Cli::get_string(const std::string& name, std::string def,
                            const std::string& help) {
  declared_[name] = {help, def};
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help) {
  declared_[name] = {help, std::to_string(def)};
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::stod(it->second);
}

bool Cli::get_flag(const std::string& name, bool def,
                   const std::string& help) {
  declared_[name] = {help, def ? "true" : "false"};
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

int Cli::get_jobs(int def) {
  const std::int64_t v = get_int(
      "jobs", def,
      "parallel experiment jobs (0 = all hardware threads); results are "
      "identical for every value");
  if (v <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<int>(v);
}

LogLevel Cli::get_log_level() {
  const std::string s = get_string(
      "log-level", "",
      "stderr log verbosity: error, warn, info, debug (default: $CAPMEM_LOG "
      "or info)");
  if (s.empty()) return log_level();
  const LogLevel level = log_level_from_string(s);
  set_log_level(level);
  return level;
}

void Cli::finish() {
  if (help_requested_) {
    std::cout << "usage: " << program_ << " [options]\n";
    for (const auto& [name, decl] : declared_) {
      std::cout << "  --" << name << " (default: " << decl.def << ")";
      if (!decl.help.empty()) std::cout << "  " << decl.help;
      std::cout << '\n';
    }
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    CAPMEM_CHECK_MSG(declared_.count(name) != 0,
                     "unknown option --" << name);
  }
}

}  // namespace capmem
