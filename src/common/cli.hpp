// Minimal command-line option parsing for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag`. Unknown
// options are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace capmem {

class Cli {
 public:
  /// Parses argv. Throws CheckError on malformed or unknown options once
  /// `finish()` is called (options are declared by the get_* calls between
  /// construction and finish()).
  Cli(int argc, const char* const* argv);

  /// Declares and reads a string option with a default.
  std::string get_string(const std::string& name, std::string def,
                         const std::string& help = {});
  /// Declares and reads an integer option with a default.
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help = {});
  /// Declares and reads a floating-point option with a default.
  double get_double(const std::string& name, double def,
                    const std::string& help = {});
  /// Declares and reads a boolean flag (present => true, or --x=false).
  bool get_flag(const std::string& name, bool def = false,
                const std::string& help = {});
  /// Declares and reads the shared `--jobs` option: host worker threads for
  /// parallel experiment execution (exec::Pool). 0 resolves to the host's
  /// hardware concurrency; the default 1 is the serial reference path.
  /// Results are bit-identical for every value.
  int get_jobs(int def = 1);
  /// Declares and reads the shared `--log-level {error,warn,info,debug}`
  /// option. The flag overrides $CAPMEM_LOG; when absent the environment
  /// (default info) stands. Applies the level process-wide via
  /// set_log_level() and returns it.
  LogLevel get_log_level();

  /// Validates that every supplied option was declared; prints usage and
  /// exits(0) when --help was given. Call once after all get_* calls.
  void finish();

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  struct Decl {
    std::string help;
    std::string def;
  };
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, Decl> declared_;
  bool help_requested_ = false;
};

}  // namespace capmem
