#include "common/linreg.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace capmem {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  CAPMEM_CHECK(xs.size() == ys.size());
  LinearFit fit;
  const std::size_t n = xs.size();
  if (n == 0) return fit;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0 || n < 2) {
    fit.alpha = my;
    fit.beta = 0.0;
    fit.r2 = 0.0;
    return fit;
  }
  fit.beta = sxy / sxx;
  fit.alpha = my - fit.beta * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace capmem
