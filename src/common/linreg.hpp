// Ordinary least squares fitting for the model layer.
//
// The paper fits two linear laws by regression: the 1:N contention cost
// T_C(N) = alpha + beta*N (Table I) and the multi-line transfer latency
// alpha + beta*N_lines (Section IV.A.4), plus the sort overhead model
// (Section V.B.2). This is the shared implementation.
#pragma once

#include <span>

namespace capmem {

/// Result of fitting y = alpha + beta * x.
struct LinearFit {
  double alpha = 0;  ///< intercept
  double beta = 0;   ///< slope
  double r2 = 0;     ///< coefficient of determination
  /// Predicted value at `x`.
  double operator()(double x) const { return alpha + beta * x; }
};

/// Fits y = alpha + beta*x by OLS. Requires xs.size() == ys.size() >= 2 and
/// at least two distinct x values; otherwise returns a flat fit through the
/// mean with r2 = 0.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

}  // namespace capmem
