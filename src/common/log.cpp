#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/check.hpp"

namespace capmem {

namespace {
// -1 = no override; otherwise a LogLevel value set by set_log_level().
std::atomic<int> g_level_override{-1};
}  // namespace

LogLevel log_level() {
  const int ov = g_level_override.load(std::memory_order_relaxed);
  if (ov >= 0) return static_cast<LogLevel>(ov);
  static const LogLevel level = [] {
    const char* env = std::getenv("CAPMEM_LOG");
    if (env == nullptr) return LogLevel::kInfo;
    const std::string s = env;
    if (s == "error") return LogLevel::kError;
    if (s == "warn") return LogLevel::kWarn;
    if (s == "debug") return LogLevel::kDebug;
    return LogLevel::kInfo;
  }();
  return level;
}

void set_log_level(LogLevel level) {
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level_from_string(const std::string& s) {
  if (s == "error") return LogLevel::kError;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  CAPMEM_CHECK_MSG(false, "unknown log level '"
                              << s << "' (error, warn, info, debug)");
  return LogLevel::kInfo;  // unreachable
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* tag = "info";
  switch (level) {
    case LogLevel::kError: tag = "error"; break;
    case LogLevel::kWarn: tag = "warn"; break;
    case LogLevel::kInfo: tag = "info"; break;
    case LogLevel::kDebug: tag = "debug"; break;
  }
  // One mutex so lines from concurrent exec::Pool workers don't interleave.
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::cerr << "[capmem:" << tag << "] " << msg << '\n';
}

}  // namespace capmem
