#include "common/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace capmem {

LogLevel log_level() {
  static const LogLevel level = [] {
    const char* env = std::getenv("CAPMEM_LOG");
    if (env == nullptr) return LogLevel::kInfo;
    const std::string s = env;
    if (s == "error") return LogLevel::kError;
    if (s == "warn") return LogLevel::kWarn;
    if (s == "debug") return LogLevel::kDebug;
    return LogLevel::kInfo;
  }();
  return level;
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* tag = "info";
  switch (level) {
    case LogLevel::kError: tag = "error"; break;
    case LogLevel::kWarn: tag = "warn"; break;
    case LogLevel::kInfo: tag = "info"; break;
    case LogLevel::kDebug: tag = "debug"; break;
  }
  // One mutex so lines from concurrent exec::Pool workers don't interleave.
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::cerr << "[capmem:" << tag << "] " << msg << '\n';
}

}  // namespace capmem
