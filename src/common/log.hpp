// Tiny leveled logger. Benches use it for progress lines on stderr so stdout
// stays machine-parseable. Level is taken from $CAPMEM_LOG (error|warn|info|
// debug), default info; a --log-level CLI flag (Cli::get_log_level) overrides
// the environment via set_log_level.
#pragma once

#include <sstream>
#include <string>

namespace capmem {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current process-wide log level: an explicit set_log_level() override when
/// present, otherwise the value read once from the environment.
LogLevel log_level();

/// Overrides the environment-derived level for the rest of the process.
void set_log_level(LogLevel level);

/// Parses {error, warn, info, debug}; throws CheckError on anything else.
LogLevel log_level_from_string(const std::string& s);

/// Emits one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace capmem

#define CAPMEM_LOG_INFO ::capmem::detail::LogStream(::capmem::LogLevel::kInfo)
#define CAPMEM_LOG_WARN ::capmem::detail::LogStream(::capmem::LogLevel::kWarn)
#define CAPMEM_LOG_DEBUG \
  ::capmem::detail::LogStream(::capmem::LogLevel::kDebug)
