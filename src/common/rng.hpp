// Deterministic random number generation.
//
// The simulator must be bit-reproducible for a given seed, so we ship our own
// small generator (xoshiro256**, public domain algorithm by Blackman & Vigna)
// instead of depending on the unspecified std::mt19937 distributions.
// Distribution helpers here are exact and platform-independent.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace capmem {

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state deterministically from `seed`.
  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a single word over the 256-bit state.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      w = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    CAPMEM_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection method: unbiased and fast.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = (0 - bound) % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= std::numeric_limits<double>::min()) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Lognormal multiplier with median 1 and shape sigma: exp(sigma * N(0,1)).
  double lognormal_factor(double sigma) { return std::exp(sigma * normal()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace capmem
