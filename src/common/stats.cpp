#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace capmem {

double quantile(std::span<const double> xs, double q) {
  CAPMEM_CHECK(q >= 0.0 && q <= 1.0);
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  auto at_q = [&](double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  };
  s.min = v.front();
  s.max = v.back();
  s.q1 = at_q(0.25);
  s.median = at_q(0.5);
  s.q3 = at_q(0.75);
  s.mean = mean(xs);
  s.stddev = stddev(xs);

  // Distribution-free 95% CI for the median from order statistics:
  // ranks n/2 ± 1.96*sqrt(n)/2 (normal approximation to the binomial).
  const double nn = static_cast<double>(v.size());
  const double half = 1.96 * std::sqrt(nn) / 2.0;
  auto clamp_idx = [&](double r) {
    return static_cast<std::size_t>(
        std::clamp(r, 0.0, nn - 1.0));
  };
  s.median_ci_lo = v[clamp_idx(nn / 2.0 - half - 1.0)];
  s.median_ci_hi = v[clamp_idx(nn / 2.0 + half)];
  return s;
}

bool Summary::median_within(double frac) const {
  if (median == 0.0) return median_ci_lo == 0.0 && median_ci_hi == 0.0;
  const double half =
      std::max(median - median_ci_lo, median_ci_hi - median);
  return half <= frac * std::abs(median);
}

std::string Summary::str() const {
  std::ostringstream os;
  os.precision(4);
  os << median << " [" << median_ci_lo << "," << median_ci_hi
     << "] n=" << n;
  return os.str();
}

std::vector<double> elementwise_max(
    const std::vector<std::vector<double>>& series) {
  if (series.empty()) return {};
  const std::size_t len = series.front().size();
  for (const auto& s : series) CAPMEM_CHECK(s.size() == len);
  std::vector<double> out(len, 0.0);
  for (std::size_t i = 0; i < len; ++i) {
    double m = series.front()[i];
    for (const auto& s : series) m = std::max(m, s[i]);
    out[i] = m;
  }
  return out;
}

}  // namespace capmem
