// Robust summary statistics used by the measurement layer.
//
// The paper reports medians ("within 10% of the 95% confidence intervals"),
// boxplots for the collective experiments, and maxima across threads per
// iteration. This module provides exactly those estimators.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace capmem {

/// Five-number summary plus mean/CI, the shape behind the paper's boxplots.
struct Summary {
  std::size_t n = 0;
  double min = 0;
  double q1 = 0;      ///< 25th percentile
  double median = 0;  ///< 50th percentile
  double q3 = 0;      ///< 75th percentile
  double max = 0;
  double mean = 0;
  double stddev = 0;        ///< sample standard deviation
  double median_ci_lo = 0;  ///< 95% CI of the median (order-statistic method)
  double median_ci_hi = 0;

  /// Interquartile range.
  double iqr() const { return q3 - q1; }
  /// True when the median CI half-width is within `frac` of the median,
  /// the acceptance criterion the paper states for its tables.
  bool median_within(double frac) const;
  /// Short human-readable rendering, e.g. "118.2 [113.9,121.0] n=1000".
  std::string str() const;
};

/// Computes the full summary of `xs`. Empty input yields a zero summary.
Summary summarize(std::span<const double> xs);

/// Quantile with linear interpolation between closest ranks, q in [0,1].
double quantile(std::span<const double> xs, double q);

/// Median (convenience wrapper over `quantile`).
double median(std::span<const double> xs);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation; 0 for n < 2.
double stddev(std::span<const double> xs);

/// Element-wise maximum across equally sized series (the "maximum measured
/// per iteration across threads" reduction used by the Xeon Phi benchmarks).
/// All inner series must have the same length.
std::vector<double> elementwise_max(
    const std::vector<std::vector<double>>& series);

}  // namespace capmem
