#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace capmem {

std::string fmt_num(double v, int prec) {
  if (!std::isfinite(v)) return "nan";
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

void Table::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::add_row_nums(const std::string& label,
                         std::initializer_list<double> values, int prec) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt_num(v, prec));
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(width[i]) + 2) << cell;
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << quote(r[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace capmem
