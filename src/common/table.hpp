// ASCII / CSV table emission for the bench binaries.
//
// Every bench target prints the paper's table or figure series both as an
// aligned text table (human inspection) and as CSV (plotting). The builder is
// row-major: set headers once, then append stringified cells.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace capmem {

/// Formats a double with `prec` significant-ish decimal digits, trimming
/// trailing zeros ("118", "3.8", "0.25").
std::string fmt_num(double v, int prec = 3);

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Replaces the header row.
  void set_header(std::vector<std::string> cols);

  /// Appends a row of already formatted cells. Rows may be ragged; printing
  /// pads to the widest row.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats every value with fmt_num.
  void add_row_nums(const std::string& label,
                    std::initializer_list<double> values, int prec = 3);

  /// Writes an aligned text rendering.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace capmem
