// Strong-ish unit helpers used throughout the library.
//
// Simulated time is kept as double nanoseconds (picosecond-scale resolution is
// irrelevant for this model; doubles keep the fitting math simple). Bandwidth
// is reported in GB/s = bytes / ns.
#pragma once

#include <cstdint>

namespace capmem {

/// Simulated time in nanoseconds.
using Nanos = double;

/// Bandwidth in GB/s. Numerically equal to bytes-per-nanosecond.
using GBps = double;

/// One cache line, the unit of coherence and of cost accounting.
inline constexpr std::uint64_t kLineBytes = 64;

constexpr std::uint64_t KiB(std::uint64_t n) { return n * 1024ull; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n * 1024ull * 1024ull; }
constexpr std::uint64_t GiB(std::uint64_t n) {
  return n * 1024ull * 1024ull * 1024ull;
}

/// Bandwidth achieved when moving `bytes` in `ns` simulated nanoseconds.
constexpr GBps bandwidth_gbps(std::uint64_t bytes, Nanos ns) {
  return ns > 0.0 ? static_cast<double>(bytes) / ns : 0.0;
}

/// Number of cache lines covering `bytes` (rounded up).
constexpr std::uint64_t lines_for(std::uint64_t bytes) {
  return (bytes + kLineBytes - 1) / kLineBytes;
}

}  // namespace capmem
