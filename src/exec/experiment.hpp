// Experiment: the one seam between "what to measure" and "how to run it".
//
// An Experiment is a grid of configuration cells times repeated trials.
// Every (config, trial) pair runs as one isolated job — each builds its own
// sim::Machine, so jobs share nothing — with a seed derived purely from
// (base_seed, config_id, trial). Results land in a pre-sized slot array
// (one slot per job, no mutex on the result path) and are reduced per
// config in trial order, so the output is bit-identical for any worker
// count, and identical to running the grid serially in submission order.
//
// The harness loops in bench::run_suite, coll::run_collective_sweep and
// sort::sort_sweep are all instances of this shape; future fault injection
// or remote dispatch plugs in here without touching the harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "exec/pool.hpp"
#include "exec/recovery.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"

namespace capmem::exec {

/// Identity of one job within an experiment grid, plus its derived seed.
struct Trial {
  int config_id = 0;        ///< index into Experiment::configs
  int index = 0;            ///< repetition index within the config
  std::uint64_t seed = 0;   ///< derive_seed(base_seed, config_id, index)
};

template <typename Config, typename Result>
struct Experiment {
  /// One entry per grid cell; each cell runs `trials` isolated programs.
  std::vector<Config> configs;
  int trials = 1;
  std::uint64_t base_seed = 1;
  /// Program factory: builds and runs one isolated trial (its own Machine,
  /// its own buffers) and returns its result. Must not touch shared mutable
  /// state — determinism and thread-safety both depend on it.
  std::function<Result(const Config&, const Trial&)> program;
  /// Reduces one config's trial results (in trial order) to the config's
  /// result. Unset: the sole trial's result is returned (requires trials
  /// == 1).
  std::function<Result(const Config&, std::vector<Result>&&)> reduce;
};

/// Runs the experiment grid on `nworkers` host threads (<= 1: inline,
/// serially, in submission order). Returns one reduced Result per config,
/// in config order.
template <typename Config, typename Result>
std::vector<Result> run_experiment(const Experiment<Config, Result>& e,
                                   int nworkers) {
  CAPMEM_CHECK(e.trials >= 1);
  CAPMEM_CHECK_MSG(e.reduce != nullptr || e.trials == 1,
                   "multi-trial experiments need a reducer");
  CAPMEM_CHECK(e.program != nullptr);
  const std::size_t ncfg = e.configs.size();
  const std::size_t ntrials = static_cast<std::size_t>(e.trials);
  if (obs::Registry* reg = obs::process_registry()) {
    reg->add("exec.experiments", 1);
    reg->add("exec.cells", static_cast<double>(ncfg));
    reg->add("exec.trials", static_cast<double>(ncfg * ntrials));
  }
  std::vector<Result> slots(ncfg * ntrials);  // one exclusive slot per job
  std::vector<std::function<void()>> jobs;
  jobs.reserve(ncfg * ntrials);
  for (std::size_t c = 0; c < ncfg; ++c) {
    for (std::size_t t = 0; t < ntrials; ++t) {
      Trial trial{static_cast<int>(c), static_cast<int>(t),
                  derive_seed(e.base_seed, c, t)};
      Result* slot = &slots[c * ntrials + t];
      jobs.push_back([&e, c, trial, slot] {
        *slot = e.program(e.configs[c], trial);
      });
    }
  }
  run_jobs(std::move(jobs), nworkers);

  std::vector<Result> out;
  out.reserve(ncfg);
  for (std::size_t c = 0; c < ncfg; ++c) {
    if (e.reduce == nullptr) {
      out.push_back(std::move(slots[c]));
      continue;
    }
    std::vector<Result> per_trial(
        std::make_move_iterator(slots.begin() +
                                static_cast<std::ptrdiff_t>(c * ntrials)),
        std::make_move_iterator(slots.begin() +
                                static_cast<std::ptrdiff_t>((c + 1) *
                                                            ntrials)));
    out.push_back(e.reduce(e.configs[c], std::move(per_trial)));
  }
  return out;
}

/// Index-parallel map: runs `fn(i)` for i in [0, n) and returns the results
/// in index order. The degenerate one-trial Experiment, for harness loops
/// whose cells are already fully described by their index.
template <typename Result, typename Fn>
std::vector<Result> parallel_map(int n, int nworkers, Fn&& fn) {
  CAPMEM_CHECK(n >= 0);
  std::vector<Result> slots(static_cast<std::size_t>(n));
  std::vector<std::function<void()>> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Result* slot = &slots[static_cast<std::size_t>(i)];
    jobs.push_back([&fn, i, slot] { *slot = fn(i); });
  }
  run_jobs(std::move(jobs), nworkers);
  return slots;
}

/// Fault-tolerant parallel_map: like parallel_map, but a failing index
/// never takes the batch down. Slots of non-Ok jobs keep their
/// default-constructed value; the BatchReport says which (by index, ==
/// submission order) and why.
template <typename Result, typename Fn>
std::pair<std::vector<Result>, BatchReport> try_parallel_map(
    int n, int nworkers, Fn&& fn, const RecoveryOptions& opts = {}) {
  CAPMEM_CHECK(n >= 0);
  std::vector<Result> slots(static_cast<std::size_t>(n));
  std::vector<std::function<void()>> jobs;
  jobs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Result* slot = &slots[static_cast<std::size_t>(i)];
    jobs.push_back([&fn, i, slot] { *slot = fn(i); });
  }
  BatchReport rep = run_jobs_recover(std::move(jobs), nworkers, opts);
  return {std::move(slots), std::move(rep)};
}

}  // namespace capmem::exec
