#include "exec/host.hpp"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace capmem::exec {

std::uint64_t host_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024ull;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

double host_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace capmem::exec
