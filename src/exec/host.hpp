// Host-side resource probes for the perf harnesses.
//
// The exec layer is the one place that talks to the host (threads, wall
// clocks), so host resource accounting lives here too. These values are
// nondeterministic by nature: they may appear in perf reports and metrics
// files, never in experiment results or golden stdout.
#pragma once

#include <cstdint>

namespace capmem::exec {

/// Peak resident-set size of this process in bytes (getrusage; 0 when the
/// platform does not report it).
std::uint64_t host_peak_rss_bytes();

/// Monotonic host wall clock in seconds (steady_clock; perf timing only).
double host_now_seconds();

}  // namespace capmem::exec
