#include "exec/pool.hpp"

#include <algorithm>

namespace capmem::exec {

Pool::Pool(int nworkers) {
  if (nworkers <= 0) nworkers = default_jobs();
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> Pool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

int Pool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void Pool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || head_ < queue_.size(); });
      if (head_ >= queue_.size()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_[head_++]);
      // Drop the drained prefix occasionally so long-lived pools don't
      // accumulate dead tasks.
      if (head_ > 64 && head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    task();  // exceptions land in the task's future
  }
}

void run_jobs(std::vector<std::function<void()>>&& jobs, int nworkers) {
  if (nworkers <= 1) {
    for (auto& j : jobs) j();
    return;
  }
  Pool pool(std::min<int>(nworkers, static_cast<int>(jobs.size())));
  std::vector<std::future<void>> futs;
  futs.reserve(jobs.size());
  for (auto& j : jobs) futs.push_back(pool.submit(std::move(j)));
  // Wait for everything before rethrowing so no job still references the
  // caller's slots when run_jobs returns via an exception.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace capmem::exec
