#include "exec/pool.hpp"

#include <algorithm>
#include <chrono>

#include "exec/progress.hpp"
#include "obs/metrics.hpp"

namespace capmem::exec {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

// The unobserved dispatch path. Every job runs (a throw never skips later
// jobs' slots); failures come back by submission index, already ordered.
std::vector<JobError> collect_raw(std::vector<std::function<void()>>&& jobs,
                                  int nworkers) {
  std::vector<JobError> errors;
  if (nworkers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        jobs[i]();
      } catch (...) {
        errors.push_back(JobError{i, std::current_exception()});
      }
    }
    return errors;
  }
  Pool pool(std::min<int>(nworkers, static_cast<int>(jobs.size())));
  std::vector<std::future<void>> futs;
  futs.reserve(jobs.size());
  for (auto& j : jobs) futs.push_back(pool.submit(std::move(j)));
  // Wait for everything before returning so no job still references the
  // caller's slots when run_jobs_collect returns.
  for (std::size_t i = 0; i < futs.size(); ++i) {
    try {
      futs[i].get();
    } catch (...) {
      errors.push_back(JobError{i, std::current_exception()});
    }
  }
  return errors;
}

// Wraps every job with host wall-time profiling recorded into the process
// registry (installed by obs::Session for --metrics-out). Host times are
// nondeterministic by nature; they only ever land in the metrics JSON,
// never in experiment results or stdout.
std::vector<JobError> run_jobs_profiled(
    std::vector<std::function<void()>>&& jobs, int nworkers,
    obs::Registry& reg) {
  const std::size_t njobs = jobs.size();
  const Clock::time_point batch_start = Clock::now();
  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(njobs);
  for (auto& j : jobs) {
    wrapped.push_back(
        [job = std::move(j), batch_start, &reg] {
          // Time from batch submission to job start: queueing behind other
          // batches' work plus earlier jobs on this worker slot.
          const double queue_us = us_since(batch_start);
          const Clock::time_point t0 = Clock::now();
          job();
          reg.record("exec.job_wall_us", us_since(t0));
          reg.record("exec.job_queue_wait_us", queue_us);
        });
  }
  reg.add("exec.batches", 1);
  reg.add("exec.jobs", static_cast<double>(njobs));
  reg.set("exec.workers", static_cast<double>(std::max(1, nworkers)));
  const double wall_sum_before = reg.hist("exec.job_wall_us").sum;
  std::vector<JobError> errors = collect_raw(std::move(wrapped), nworkers);
  const double batch_us = us_since(batch_start);
  reg.record("exec.batch_wall_us", batch_us);
  // Worker utilization of this batch: summed job wall time over the
  // worker-seconds the batch occupied (1.0 = perfectly packed).
  const double batch_wall_sum =
      reg.hist("exec.job_wall_us").sum - wall_sum_before;
  const double denom =
      batch_us *
      std::max(1, std::min(nworkers, static_cast<int>(njobs)));
  if (denom > 0) reg.record("exec.worker_util", batch_wall_sum / denom);
  return errors;
}

// Installed failure handler (process-wide, like the process registry).
JobFailureHandler g_failure_handler;

}  // namespace

Pool::Pool(int nworkers) {
  if (nworkers <= 0) nworkers = default_jobs();
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<void> Pool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

int Pool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void Pool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || head_ < queue_.size(); });
      if (head_ >= queue_.size()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_[head_++]);
      // Drop the drained prefix occasionally so long-lived pools don't
      // accumulate dead tasks.
      if (head_ > 64 && head_ * 2 > queue_.size()) {
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    task();  // exceptions land in the task's future
  }
}

std::vector<JobError> run_jobs_collect(
    std::vector<std::function<void()>>&& jobs, int nworkers) {
  if (ProgressMeter* pm = progress_meter()) {
    // The meter ticks when a job leaves its slot — including on a throw, so
    // the heartbeat never undercounts a failing sweep.
    pm->add_total(jobs.size());
    for (auto& j : jobs) {
      j = [job = std::move(j), pm] {
        struct Tick {
          ProgressMeter* p;
          ~Tick() { p->tick(); }
        } tick{pm};
        job();
      };
    }
  }
  obs::Registry* reg = obs::process_registry();
  if (reg == nullptr) return collect_raw(std::move(jobs), nworkers);
  return run_jobs_profiled(std::move(jobs), nworkers, *reg);
}

JobFailureHandler set_job_failure_handler(JobFailureHandler h) {
  JobFailureHandler prev = std::move(g_failure_handler);
  g_failure_handler = std::move(h);
  return prev;
}

void run_jobs(std::vector<std::function<void()>>&& jobs, int nworkers) {
  std::vector<JobError> errors = run_jobs_collect(std::move(jobs), nworkers);
  if (errors.empty()) return;
  if (g_failure_handler) {
    for (const JobError& e : errors) g_failure_handler(e.job, e.error);
    return;
  }
  std::rethrow_exception(errors.front().error);
}

}  // namespace capmem::exec
