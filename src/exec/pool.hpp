// Fixed-size worker-thread pool for parallel experiment execution.
//
// The simulator is single-threaded by design (one Engine per Machine), but
// every experiment — a suite cell, a collective run, a sort trial — builds
// its own isolated Machine, so experiments are embarrassingly parallel
// across *host* threads. Pool is the one place in the codebase that spawns
// host threads; everything above it stays deterministic by (a) deriving
// seeds with exec::derive_seed instead of reading run order, and (b)
// writing results into pre-sized per-job slots merged in submission order.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

namespace capmem::exec {

class Pool {
 public:
  /// Spawns `nworkers` host threads; nworkers <= 0 means default_jobs().
  explicit Pool(int nworkers = 0);
  /// Joins all workers. Pending jobs are finished first.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it has run
  /// (or rethrows what it threw).
  std::future<void> submit(std::function<void()> fn);

  int size() const { return static_cast<int>(workers_.size()); }

  /// Host hardware concurrency (>= 1), the `--jobs 0` resolution.
  static int default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::packaged_task<void()>> queue_;  // FIFO via head index
  std::size_t head_ = 0;
  bool stop_ = false;
};

/// One failed job: its submission index plus the exception it threw.
struct JobError {
  std::size_t job = 0;
  std::exception_ptr error;
};

/// Runs every job in `jobs`. With `nworkers` <= 1 the jobs run inline on
/// the calling thread, in order — the serial reference path; otherwise they
/// run on a Pool of `nworkers` threads. All jobs run even when some throw;
/// failures are collected in submission order and returned, and results are
/// whatever the jobs wrote into their own slots: callers give each job
/// exclusive storage and merge in deterministic order.
///
/// When an obs::Registry is installed as the process registry (obs::Session
/// with --metrics-out), every job is additionally wrapped with host
/// wall-time profiling: exec.job_wall_us / exec.job_queue_wait_us /
/// exec.batch_wall_us histograms and an exec.worker_util estimate. Host
/// times are nondeterministic; they appear only in the metrics output and
/// never influence job results.
std::vector<JobError> run_jobs_collect(
    std::vector<std::function<void()>>&& jobs, int nworkers);

/// Observes each failed job of a run_jobs batch, in submission order.
using JobFailureHandler =
    std::function<void(std::size_t job, std::exception_ptr error)>;

/// Installs a process-wide handler run_jobs delivers failures to (null to
/// uninstall); returns the previous handler. Not thread-safe: install
/// before batches start, as obs::Session does for its hooks.
JobFailureHandler set_job_failure_handler(JobFailureHandler h);

/// run_jobs_collect, then failure delivery: every failure goes to the
/// installed JobFailureHandler in submission order; without a handler the
/// first failure is rethrown (the historical contract — bit-identical
/// behavior on the happy path and for existing callers).
void run_jobs(std::vector<std::function<void()>>&& jobs, int nworkers);

}  // namespace capmem::exec
