#include "exec/progress.hpp"

#include <cstdio>

namespace capmem::exec {

namespace {

using Clock = std::chrono::steady_clock;

// Re-render at most every 100 ms: visible liveness without drowning slow
// terminals (a sweep can finish thousands of jobs per second).
constexpr auto kMinRedraw = std::chrono::milliseconds(100);

ProgressMeter* g_meter = nullptr;

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::uint64_t total)
    : label_(std::move(label)),
      total_(total),
      start_(Clock::now()),
      last_show_(start_ - kMinRedraw) {}

ProgressMeter::~ProgressMeter() {
  std::lock_guard<std::mutex> lk(mu_);
  if (shown_) {
    std::fprintf(stderr, "\r%s\n", render_locked().c_str());
    std::fflush(stderr);
  }
}

void ProgressMeter::add_total(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  if (n == 0) return;
  total_ += n;
  show_locked();
}

void ProgressMeter::tick(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  done_ += n;
  const auto now = Clock::now();
  if (now - last_show_ < kMinRedraw) return;
  last_show_ = now;
  show_locked();
}

void ProgressMeter::note_quarantined(std::uint64_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  if (n == 0) return;
  quarantined_ += n;
  show_locked();
}

std::uint64_t ProgressMeter::completed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return done_;
}

std::uint64_t ProgressMeter::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

std::uint64_t ProgressMeter::quarantined() const {
  std::lock_guard<std::mutex> lk(mu_);
  return quarantined_;
}

std::string ProgressMeter::line() const {
  std::lock_guard<std::mutex> lk(mu_);
  return render_locked();
}

std::string ProgressMeter::render_locked() const {
  const double secs =
      std::chrono::duration<double>(Clock::now() - start_).count();
  const double rate = secs > 0 ? static_cast<double>(done_) / secs : 0.0;
  char buf[160];
  if (total_ > 0) {
    int n = std::snprintf(buf, sizeof(buf), "%s  %llu/%llu jobs  %.1f/s",
                          label_.c_str(),
                          static_cast<unsigned long long>(done_),
                          static_cast<unsigned long long>(total_), rate);
    if (rate > 0 && done_ < total_) {
      const double eta = static_cast<double>(total_ - done_) / rate;
      n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                         "  eta %.0fs", eta);
    }
    if (quarantined_ > 0) {
      std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                    "  quarantined %llu",
                    static_cast<unsigned long long>(quarantined_));
    }
  } else {
    int n = std::snprintf(buf, sizeof(buf), "%s  %llu jobs  %.1f/s",
                          label_.c_str(),
                          static_cast<unsigned long long>(done_), rate);
    if (quarantined_ > 0) {
      std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                    "  quarantined %llu",
                    static_cast<unsigned long long>(quarantined_));
    }
  }
  return buf;
}

void ProgressMeter::show_locked() {
  // Left-justified fixed width wipes leftovers of a previously longer line.
  std::fprintf(stderr, "\r%-78s", render_locked().c_str());
  std::fflush(stderr);
  shown_ = true;
}

ProgressMeter* progress_meter() { return g_meter; }

ProgressMeter* set_progress_meter(ProgressMeter* m) {
  ProgressMeter* prev = g_meter;
  g_meter = m;
  return prev;
}

}  // namespace capmem::exec
