// Opt-in heartbeat for long experiment batches (--progress).
//
// A ProgressMeter renders a single throttled status line to stderr
// ("fuzz  12/96 jobs  4.1/s  eta 20s  quarantined 1") while exec::run_jobs
// works through a batch. It is installed process-wide (like the process
// registry and the job-failure handler); run_jobs ticks it once per
// completed job and the recovery layer feeds quarantine counts. Without an
// installed meter the hot path pays one pointer test per batch.
//
// stderr only, and throttled on host wall time: stdout stays byte-identical
// with the meter on or off, so goldens and fuzz transcripts never see it.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace capmem::exec {

class ProgressMeter {
 public:
  /// `total` == 0 means indeterminate: the line shows a running count only
  /// (figure sweeps enqueue batches of unknown overall size).
  explicit ProgressMeter(std::string label, std::uint64_t total = 0);
  /// Finishes the line with a newline when anything was rendered.
  ~ProgressMeter();

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Grows the expected-total (run_jobs adds each batch it dispatches).
  void add_total(std::uint64_t n);
  /// Marks `n` jobs completed (also called for failed jobs: they consumed
  /// a slot). Re-renders the line, rate-limited on wall time.
  void tick(std::uint64_t n = 1);
  /// Counts jobs the recovery layer quarantined.
  void note_quarantined(std::uint64_t n);

  std::uint64_t completed() const;
  std::uint64_t total() const;
  std::uint64_t quarantined() const;

  /// The status line as rendered (no carriage return / newline): label,
  /// completed[/total] jobs, jobs per second, eta when the total is known,
  /// quarantine count when nonzero.
  std::string line() const;

 private:
  std::string render_locked() const;
  void show_locked();

  std::string label_;
  mutable std::mutex mu_;
  std::uint64_t total_;
  std::uint64_t done_ = 0;
  std::uint64_t quarantined_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_show_;
  bool shown_ = false;
};

/// The installed meter, or null. Not thread-safe to install mid-batch:
/// set it before batches start, clear it after (benches do both around
/// their sweep).
ProgressMeter* progress_meter();
/// Installs `m` (null to uninstall); returns the previous meter.
ProgressMeter* set_progress_meter(ProgressMeter* m);

}  // namespace capmem::exec
