#include "exec/recovery.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>
#include <system_error>
#include <thread>

#include "exec/progress.hpp"
#include "obs/metrics.hpp"

namespace capmem::exec {

namespace {

std::string what_of(std::exception_ptr ep) {
  if (!ep) return "unknown failure";
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "non-standard exception";
  }
}

}  // namespace

FailureClass default_failure_class(std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const ClassifiedFailure& c) {
    return c.failure_class();
  } catch (const std::bad_alloc&) {
    return FailureClass::kTransient;
  } catch (const std::system_error&) {
    return FailureClass::kTransient;
  } catch (...) {
    return FailureClass::kDeterministic;
  }
}

std::string BatchReport::summary() const {
  std::ostringstream os;
  os << "exec: " << jobs << " job(s) — " << ok << " ok, " << failed
     << " failed, " << timed_out << " timed out, " << quarantined
     << " quarantined, " << retried << " retried\n";
  for (const JobFailure& f : failures) {
    os << "  job " << f.job << ' ' << to_string(f.status) << " after "
       << f.attempts << " attempt(s) [" << to_string(f.cls)
       << "]: " << f.error << '\n';
  }
  return os.str();
}

BatchReport run_jobs_recover(std::vector<std::function<void()>>&& jobs,
                             int nworkers, const RecoveryOptions& opts) {
  const std::size_t njobs = jobs.size();
  const RetryPolicy& rp = opts.retry;
  CAPMEM_CHECK(rp.max_attempts >= 1);
  const FailureClassifier classify =
      opts.classify ? opts.classify : default_failure_class;

  // Per-job outcome slots, exclusive to each wrapper (same slot discipline
  // run_jobs gives its callers).
  struct Slot {
    JobStatus status = JobStatus::kOk;
    FailureClass cls = FailureClass::kDeterministic;
    int attempts = 1;
    std::exception_ptr eptr;
  };
  std::vector<Slot> slots(njobs);

  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(njobs);
  for (std::size_t i = 0; i < njobs; ++i) {
    Slot* slot = &slots[i];
    wrapped.push_back([job = std::move(jobs[i]), slot, &classify, &rp] {
      double backoff = rp.backoff_ms;
      for (int attempt = 1;; ++attempt) {
        slot->attempts = attempt;
        try {
          job();  // same functor every attempt: same derived seed
          slot->status = JobStatus::kOk;
          slot->eptr = nullptr;
          return;
        } catch (...) {
          slot->eptr = std::current_exception();
          slot->cls = classify(slot->eptr);
        }
        if (slot->cls == FailureClass::kTransient &&
            attempt < rp.max_attempts) {
          if (rp.sleep && backoff > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff));
          }
          backoff = std::min(backoff * rp.backoff_factor, rp.max_backoff_ms);
          continue;
        }
        switch (slot->cls) {
          case FailureClass::kDeterministic:
            slot->status = JobStatus::kQuarantined;
            break;
          case FailureClass::kTimeout:
            slot->status = JobStatus::kTimedOut;
            break;
          case FailureClass::kTransient:
            slot->status = JobStatus::kFailed;
            break;
        }
        return;  // recorded, not rethrown: sibling jobs keep running
      }
    });
  }
  run_jobs_collect(std::move(wrapped), nworkers);  // wrappers never throw

  BatchReport rep;
  rep.jobs = njobs;
  for (std::size_t i = 0; i < njobs; ++i) {
    const Slot& s = slots[i];
    if (s.attempts > 1) ++rep.retried;
    if (s.status == JobStatus::kOk) {
      ++rep.ok;
      continue;
    }
    switch (s.status) {
      case JobStatus::kFailed: ++rep.failed; break;
      case JobStatus::kTimedOut: ++rep.timed_out; break;
      case JobStatus::kQuarantined: ++rep.quarantined; break;
      case JobStatus::kOk: break;
    }
    JobFailure f;
    f.job = i;
    f.status = s.status;
    f.cls = s.cls;
    f.attempts = s.attempts;
    f.eptr = s.eptr;
    f.error = what_of(s.eptr);
    rep.failures.push_back(std::move(f));
  }

  if (ProgressMeter* pm = progress_meter()) {
    pm->note_quarantined(rep.quarantined);
  }
  if (obs::Registry* reg = obs::process_registry()) {
    reg->add("exec.jobs_ok", static_cast<double>(rep.ok));
    reg->add("exec.jobs_failed", static_cast<double>(rep.failed));
    reg->add("exec.jobs_timed_out", static_cast<double>(rep.timed_out));
    reg->add("exec.jobs_quarantined", static_cast<double>(rep.quarantined));
    reg->add("exec.jobs_retried", static_cast<double>(rep.retried));
  }
  return rep;
}

}  // namespace capmem::exec
