// Fault-tolerant batch execution on top of exec::run_jobs_collect.
//
// A sweep of hundreds of simulated experiments must not lose everything to
// one pathological cell: run_jobs_recover runs a batch to completion,
// classifies each failure (common/check.hpp FailureClass), retries
// transient host failures with bounded exponential backoff — re-invoking
// the *same* job functor, so a job that derives its seed with
// exec::derive_seed reproduces its first attempt exactly — and quarantines
// deterministic failures instead of retrying what will fail again. The
// caller gets a BatchReport: per-job outcomes in submission order and a
// summary string that is byte-identical for any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "exec/pool.hpp"

namespace capmem::exec {

/// Terminal outcome of one job in a recovered batch.
enum class JobStatus : std::uint8_t {
  kOk,           ///< completed (possibly after transient retries)
  kFailed,       ///< transient failure persisted through every retry
  kTimedOut,     ///< watchdog-budget exhaustion (FailureClass::kTimeout)
  kQuarantined,  ///< deterministic failure: retrying cannot help
};

inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kTimedOut: return "timed-out";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

/// One non-Ok job of a recovered batch.
struct JobFailure {
  std::size_t job = 0;        ///< submission index
  JobStatus status = JobStatus::kFailed;
  FailureClass cls = FailureClass::kDeterministic;
  int attempts = 1;           ///< total attempts, including the first
  std::string error;          ///< what() of the final attempt's exception
  std::exception_ptr eptr;    ///< final attempt's exception, for rethrow
};

/// Outcome of run_jobs_recover. `failures` is in submission order; counts
/// partition the batch (ok + failed + timed_out + quarantined == jobs).
struct BatchReport {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t quarantined = 0;
  std::size_t retried = 0;  ///< jobs that needed more than one attempt
  std::vector<JobFailure> failures;

  bool all_ok() const { return failures.empty(); }
  /// Deterministic multi-line summary (same text at any --jobs level):
  /// one header line plus one line per failure, newline-terminated.
  std::string summary() const;
};

/// Retry policy for transient host failures. Deterministic failures and
/// timeouts are never retried regardless of max_attempts.
struct RetryPolicy {
  int max_attempts = 3;        ///< total attempts per job (>= 1)
  double backoff_ms = 10.0;    ///< sleep before the first retry
  double backoff_factor = 4.0; ///< growth per subsequent retry
  double max_backoff_ms = 2000.0;
  bool sleep = true;           ///< false: skip the host sleep (tests)
};

/// Maps an exception to a FailureClass. The default classifier unwraps
/// ClassifiedFailure implementers (sim::SimAbort), treats allocation /
/// system-resource errors as transient, and everything else — CheckError,
/// logic errors, unknown exceptions — as deterministic.
using FailureClassifier = std::function<FailureClass(std::exception_ptr)>;
FailureClass default_failure_class(std::exception_ptr ep);

struct RecoveryOptions {
  RetryPolicy retry;
  FailureClassifier classify;  ///< null = default_failure_class
};

/// Runs `jobs` (same slot discipline as run_jobs) with retry/quarantine
/// recovery. Never throws on job failure — inspect the report. With a
/// process registry attached, adds exec.jobs_ok / exec.jobs_failed /
/// exec.jobs_timed_out / exec.jobs_quarantined / exec.jobs_retried.
BatchReport run_jobs_recover(std::vector<std::function<void()>>&& jobs,
                             int nworkers,
                             const RecoveryOptions& opts = {});

}  // namespace capmem::exec
