// Deterministic per-trial seed derivation for the execution layer.
//
// Parallel experiment execution must not change results: every (config,
// trial) cell of an experiment grid gets its seed from the user-facing base
// seed through a pure function, so the derived seed — and therefore the
// trial — is identical whether the cell runs first on one worker or last on
// sixteen. The mixer is SplitMix64 (the same finalizer Rng::reseed uses to
// spread a seed over the xoshiro state), applied in three keyed rounds so
// that neighbouring (config, trial) pairs land far apart.
#pragma once

#include <cstdint>

namespace capmem::exec {

/// One SplitMix64 step: advances `state` by the golden-ratio increment and
/// returns the finalized output word.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Seed for trial `trial` of experiment cell `config_id`, derived from the
/// user's `base_seed`. Pure and platform-independent: stable across runs,
/// worker counts, and submission order. Distinct (config_id, trial) pairs
/// map to distinct seeds for any realistic grid (tested collision-free over
/// large grids in test_exec).
inline std::uint64_t derive_seed(std::uint64_t base_seed,
                                 std::uint64_t config_id,
                                 std::uint64_t trial) {
  std::uint64_t s = base_seed;
  std::uint64_t x = splitmix64(s);
  s ^= config_id * 0xbf58476d1ce4e5b9ull;
  x ^= splitmix64(s);
  s ^= trial * 0x94d049bb133111ebull;
  x ^= splitmix64(s);
  return x;
}

}  // namespace capmem::exec
