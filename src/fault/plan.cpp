#include "fault/plan.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "sim/config.hpp"

namespace capmem::fault {

namespace {

// SplitMix64 finalizer — same construction exec::derive_seed uses, local so
// sim-linked code does not grow an exec dependency.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::uint8_t> FaultPlan::degraded_tile_mask(
    int active_tiles) const {
  CAPMEM_CHECK(active_tiles > 0);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(active_tiles), 0);
  if (!mesh_enabled()) return mask;
  const int want = std::min(degraded_tiles, active_tiles);
  // Deterministic sample without replacement: walk a keyed permutation
  // stream until `want` distinct tiles are marked.
  int marked = 0;
  for (std::uint64_t i = 0; marked < want; ++i) {
    const auto t = static_cast<std::size_t>(
        mix64(seed ^ (0xFA01ull << 32) ^ i) %
        static_cast<std::uint64_t>(active_tiles));
    if (mask[t]) continue;
    mask[t] = 1;
    ++marked;
  }
  return mask;
}

std::vector<double> FaultPlan::channel_factors(int channels,
                                               bool mcdram) const {
  CAPMEM_CHECK(channels > 0);
  std::vector<double> f(static_cast<std::size_t>(channels), 1.0);
  if (!channels_enabled()) return f;
  const int want = std::min(
      mcdram ? flaky_mcdram_channels : flaky_dram_channels, channels);
  const std::uint64_t stream = seed ^ (mcdram ? 0xFA02ull : 0xFA03ull) << 32;
  int marked = 0;
  for (std::uint64_t i = 0; marked < want; ++i) {
    const auto c = static_cast<std::size_t>(
        mix64(stream ^ i) % static_cast<std::uint64_t>(channels));
    if (f[c] != 1.0) continue;
    f[c] = channel_rate_factor;
    ++marked;
  }
  return f;
}

std::string FaultPlan::describe() const {
  if (!enabled()) return "healthy";
  std::ostringstream os;
  os << "seed=" << seed;
  if (extra_disabled_tiles > 0) {
    os << ", -" << extra_disabled_tiles << " tiles";
  }
  if (mesh_enabled()) {
    os << ", " << degraded_tiles << " lossy mesh endpoint(s) +"
       << link_retry_ns << " ns";
  }
  if (channels_enabled()) {
    os << ", flaky channels ddr=" << flaky_dram_channels
       << " mcdram=" << flaky_mcdram_channels << " @x"
       << channel_rate_factor;
  }
  if (stuck_enabled()) {
    os << ", " << stuck_line_fraction * 100.0
       << "% sticky dir lines +" << stuck_retry_ns << " ns";
  }
  return os.str();
}

FaultPlan from_seed(std::uint64_t seed, int severity) {
  CAPMEM_CHECK(severity >= 0 && severity <= 3);
  FaultPlan p;
  p.seed = mix64(seed ^ 0xFA0Dull);
  if (severity >= 1) {
    p.degraded_tiles = 2 + static_cast<int>(p.seed % 3);  // 2-4 endpoints
  }
  if (severity >= 2) {
    p.flaky_dram_channels = 1 + static_cast<int>(mix64(p.seed + 1) % 2);
    p.flaky_mcdram_channels = 1 + static_cast<int>(mix64(p.seed + 2) % 3);
    p.stuck_line_fraction = 0.02;
  }
  if (severity >= 3) {
    p.extra_disabled_tiles = 4;
    p.stuck_line_fraction = 0.05;
  }
  return p;
}

void apply(sim::MachineConfig& cfg, const FaultPlan& plan) {
  if (plan.extra_disabled_tiles > 0) {
    CAPMEM_CHECK_MSG(plan.extra_disabled_tiles % 4 == 0,
                     "extra_disabled_tiles must disable one tile per "
                     "quadrant (multiple of 4)");
    CAPMEM_CHECK_MSG(cfg.active_tiles - plan.extra_disabled_tiles >= 4,
                     "fault plan would disable every tile");
    cfg.active_tiles -= plan.extra_disabled_tiles;
  }
  cfg.fault = &plan;
}

}  // namespace capmem::fault
