// Deterministic hardware-fault injection for the simulated KNL.
//
// Real manycore parts ship degraded: the KNL 7210 itself fuses off 2 of its
// 38 tiles, and fielded machines accumulate flaky links, slow channels and
// sticky directory entries well before they fail outright. A FaultPlan is a
// seed-derived description of such degraded silicon. It is injected through
// the same nullable MachineConfig hook seam as the observability sinks: null
// by default, one-branch disabled paths, and — because every penalty is a
// deterministic additive latency, never an extra RNG draw — attaching a
// disabled plan is byte-identical to attaching none.
//
// The plan degrades, it never breaks: faulty hardware in this model retries
// and succeeds slower, exercising exactly the code paths (topology
// yield-victim rerouting, directory serialization, channel reservation)
// that healthy runs use, with shifted constants. Crash-style failures are
// the engine watchdog's department (sim/abort.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace capmem::sim {
struct MachineConfig;
}  // namespace capmem::sim

namespace capmem::fault {

/// Seed-derived description of degraded silicon. All knobs default to
/// healthy; `enabled()` is false for a default-constructed plan.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< selects *which* tiles/channels/lines degrade

  /// Extra tiles fused off beyond the stock disabled set. Must be a
  /// multiple of 4 (one per quadrant, like the topology's own victim
  /// selection). Applied by apply() as a reduction of active_tiles, so the
  /// same per-quadrant yield-victim path real binning exercises runs.
  int extra_disabled_tiles = 0;

  /// Tiles whose mesh endpoints are lossy: every directory / cache-to-cache
  /// / memory path touching one pays `link_retry_ns` per degraded endpoint
  /// (one link-level retry worth of latency).
  int degraded_tiles = 0;
  double link_retry_ns = 40.0;

  /// Flaky memory channels, serving at `channel_rate_factor` of the healthy
  /// rate (controller-level CRC retry loops eat the difference).
  int flaky_dram_channels = 0;
  int flaky_mcdram_channels = 0;
  double channel_rate_factor = 0.5;

  /// Fraction of directory lines whose CHA entry is sticky: each access
  /// pays one `stuck_retry_ns` re-lookup before service.
  double stuck_line_fraction = 0.0;
  double stuck_retry_ns = 120.0;

  bool mesh_enabled() const {
    return degraded_tiles > 0 && link_retry_ns > 0;
  }
  bool channels_enabled() const {
    return (flaky_dram_channels > 0 || flaky_mcdram_channels > 0) &&
           channel_rate_factor < 1.0;
  }
  bool stuck_enabled() const {
    return stuck_line_fraction > 0 && stuck_retry_ns > 0;
  }
  bool enabled() const {
    return extra_disabled_tiles > 0 || mesh_enabled() ||
           channels_enabled() || stuck_enabled();
  }

  /// Per-tile degraded-endpoint flags for a machine with `active_tiles`
  /// tiles. Which tiles degrade depends only on (seed, active_tiles).
  std::vector<std::uint8_t> degraded_tile_mask(int active_tiles) const;

  /// Per-channel rate factors for a pool of `channels` servers (1.0 =
  /// healthy). `mcdram` picks an independent seed stream so DDR and MCDRAM
  /// faults don't mirror each other.
  std::vector<double> channel_factors(int channels, bool mcdram) const;

  /// Whether directory line `line` is sticky under this plan. Hot-path
  /// inline: one multiply-xor hash against the fraction threshold.
  bool line_stuck(std::uint64_t line) const {
    std::uint64_t x = (line + 1) * 0x9E3779B97F4A7C15ull ^ seed;
    x ^= x >> 29;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 32;
    // Compare against the fraction as a fixed-point threshold over 2^32.
    const auto thresh = static_cast<std::uint64_t>(
        stuck_line_fraction * 4294967296.0);
    return (x >> 32) < thresh;
  }

  /// One-line human description ("severity 2: -4 tiles, 3 lossy links,
  /// ...") for manifests and quarantine reports.
  std::string describe() const;
};

/// Canonical seed-derived plans at increasing severity. 0 is healthy
/// (enabled() == false); 1-3 degrade progressively: lossy mesh links, then
/// flaky channels + sticky directory lines, then extra fused-off tiles on
/// top. The same (seed, severity) always yields the same plan.
FaultPlan from_seed(std::uint64_t seed, int severity);

/// Injects the plan into a machine config: reduces active_tiles by
/// extra_disabled_tiles (CHECKed to stay a valid multiple of 4) and points
/// cfg.fault at `plan`. The plan is borrowed, not copied — it must outlive
/// every Machine built from cfg.
void apply(sim::MachineConfig& cfg, const FaultPlan& plan);

}  // namespace capmem::fault
