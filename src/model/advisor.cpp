#include "model/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace capmem::model {

Advice advise(const CapabilityModel& m, const AppProfile& p) {
  CAPMEM_CHECK(p.threads >= 1);
  CAPMEM_CHECK(p.streaming_fraction >= 0 && p.streaming_fraction <= 1);
  Advice a;
  std::ostringstream why;

  if (!m.has_mcdram) {
    a.kind = sim::MemKind::kDDR;
    a.expected_gbps = m.bw_dram.at_threads(p.threads);
    a.expected_latency_ns = m.lat_dram;
    a.reasoning =
        "cache mode: no explicit MCDRAM range; the memory-side cache "
        "applies transparently";
    return a;
  }

  // Effective per-kind "goodness": blend bandwidth and (inverse) latency by
  // the streaming fraction. Decaying-thread apps are judged in the
  // single-thread regime: their wall time is dominated by the deepest
  // stages, where one thread processes the whole data set and the
  // per-thread ramp — nearly identical for both memories — is all that
  // matters (paper §V.B.3: "the achievable bandwidth for a single thread
  // is around 8 GB/s in both memories").
  const int eff_threads = p.thread_decay ? 1 : p.threads;
  auto score = [&](sim::MemKind k) {
    const double bw = m.bw(k).at_threads(eff_threads);
    const double lat = m.mem_latency(k);
    const double stream_score = bw;
    const double latency_score = 1000.0 / lat;  // arbitrary common scale
    return p.streaming_fraction * stream_score +
           (1.0 - p.streaming_fraction) * latency_score * 10.0;
  };
  const double s_dram = score(sim::MemKind::kDDR);
  const double s_mc = score(sim::MemKind::kMCDRAM);

  const bool fits_mcdram = p.working_set_bytes <= GiB(16);
  if (!fits_mcdram) why << "working set exceeds the 16 GB MCDRAM; ";
  const bool mcdram_wins = s_mc > s_dram * 1.05 && fits_mcdram;
  a.kind = mcdram_wins ? sim::MemKind::kMCDRAM : sim::MemKind::kDDR;
  a.expected_gbps = m.bw(a.kind).at_threads(p.threads);
  a.expected_latency_ns = m.mem_latency(a.kind);
  if (!fits_mcdram) {
    a.speedup_vs_other = 1.0;  // no viable alternative to compare against
  } else {
    a.speedup_vs_other =
        mcdram_wins ? s_mc / s_dram : s_dram / std::max(1e-9, s_mc);
  }

  if (mcdram_wins) {
    why << "streaming-heavy profile with " << eff_threads
        << " effective threads: MCDRAM's aggregate bandwidth ("
        << m.bw_mcdram.aggregate_gbps << " GB/s vs "
        << m.bw_dram.aggregate_gbps << ") dominates its latency penalty";
  } else if (p.thread_decay) {
    why << "thread count decays during the run, so phases run in the "
           "per-thread-bandwidth regime where both memories are equal "
           "and MCDRAM only adds latency (the paper's merge-sort finding)";
  } else if (p.streaming_fraction < 0.5) {
    why << "latency-bound profile: DRAM is " << m.lat_mcdram - m.lat_dram
        << " ns faster per access than MCDRAM";
  } else {
    why << "DRAM already sustains the profile's demand at " << p.threads
        << " threads";
  }
  a.reasoning = why.str();
  return a;
}

}  // namespace capmem::model
