// Memory-placement advisor (extension; paper §VII: "when using a flat mode,
// we need performance models in order to decide which data has to be
// allocated in which memory"). Given an application profile, the advisor
// uses the fitted capability model to recommend a memory kind and predict
// the achievable bandwidth/latency, with the reasoning spelled out.
#pragma once

#include <string>

#include "model/params.hpp"

namespace capmem::model {

/// Coarse application profile, in the terms the capability model speaks.
struct AppProfile {
  std::uint64_t working_set_bytes = 0;
  int threads = 1;
  /// 0 = pure latency-bound pointer chasing, 1 = pure streaming.
  double streaming_fraction = 1.0;
  /// Does the thread count decay over the run (e.g. tree reductions,
  /// merge sorts)? Such apps rarely benefit from MCDRAM (paper §V.B).
  bool thread_decay = false;
};

struct Advice {
  sim::MemKind kind = sim::MemKind::kDDR;
  double expected_gbps = 0;       ///< at the profile's thread count
  double expected_latency_ns = 0;
  double speedup_vs_other = 1.0;  ///< predicted gain over the other kind
  std::string reasoning;          ///< human-readable justification
};

Advice advise(const CapabilityModel& m, const AppProfile& profile);

}  // namespace capmem::model
