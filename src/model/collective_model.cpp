#include "model/collective_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace capmem::model {

ThreadLayout layout_for(int nthreads, int tiles_available,
                        int threads_per_tile_max, bool scatter) {
  CAPMEM_CHECK(nthreads >= 1 && tiles_available >= 1 &&
               threads_per_tile_max >= 1);
  CAPMEM_CHECK(nthreads <= tiles_available * threads_per_tile_max);
  ThreadLayout lay;
  lay.nthreads = nthreads;
  if (scatter) {
    lay.tiles = std::min(nthreads, tiles_available);
    lay.threads_per_tile = (nthreads + lay.tiles - 1) / lay.tiles;
  } else {
    // Fill tiles: use as few tiles as possible.
    lay.threads_per_tile = std::min(nthreads, threads_per_tile_max);
    lay.tiles = (nthreads + lay.threads_per_tile - 1) / lay.threads_per_tile;
  }
  return lay;
}

double intra_tile_cost(const CapabilityModel& m, int threads_per_tile,
                       TreeKind kind) {
  if (threads_per_tile <= 1) return 0.0;
  const int k = threads_per_tile - 1;
  // Flat stage inside the tile: the leader publishes (or collects) through
  // the shared L2; polling is cheap and isolated from the inter-tile level
  // (the paper's expensive/cheap polling separation).
  if (kind == TreeKind::kBroadcast) {
    return m.r_local + k * m.r_tile;
  }
  return m.r_local + k * (m.r_tile + m.r_local);
}

CostBand broadcast_band(const CapabilityModel& m, const ThreadLayout& lay,
                        sim::MemKind buffer) {
  const TunedTree tree =
      optimize_tree(m, lay.tiles, TreeKind::kBroadcast, buffer);
  CostBand band;
  band.best_ns = tree.predicted_ns +
                 intra_tile_cost(m, lay.threads_per_tile,
                                 TreeKind::kBroadcast);
  band.worst_ns = tree_cost(m, tree.root, TreeKind::kBroadcast, buffer,
                            /*worst=*/true) +
                  2.0 * intra_tile_cost(m, lay.threads_per_tile,
                                        TreeKind::kBroadcast);
  return band;
}

CostBand reduce_band(const CapabilityModel& m, const ThreadLayout& lay,
                     sim::MemKind buffer) {
  const TunedTree tree =
      optimize_tree(m, lay.tiles, TreeKind::kReduce, buffer);
  CostBand band;
  band.best_ns =
      tree.predicted_ns +
      intra_tile_cost(m, lay.threads_per_tile, TreeKind::kReduce);
  band.worst_ns = tree_cost(m, tree.root, TreeKind::kReduce, buffer,
                            /*worst=*/true) +
                  2.0 * intra_tile_cost(m, lay.threads_per_tile,
                                        TreeKind::kReduce);
  return band;
}

CostBand allreduce_band(const CapabilityModel& m, const ThreadLayout& lay,
                        sim::MemKind buffer) {
  const CostBand r = reduce_band(m, lay, buffer);
  const CostBand b = broadcast_band(m, lay, buffer);
  return CostBand{r.best_ns + b.best_ns, r.worst_ns + b.worst_ns};
}

CostBand barrier_band(const CapabilityModel& m, const ThreadLayout& lay,
                      sim::MemKind buffer) {
  const TunedDissemination d =
      optimize_dissemination(m, lay.nthreads, buffer);
  CostBand band;
  band.best_ns = d.predicted_ns;
  band.worst_ns =
      dissemination_cost_worst(m, lay.nthreads, d.m, buffer);
  return band;
}

}  // namespace capmem::model
