// Whole-collective cost predictions with min-max bands (paper §IV.B.3,
// the black shadows of Figs. 6-8).
//
// Threads map onto tiles via a pinning layout; collectives are composed as
//   broadcast/reduce: inter-tile tuned tree + flat intra-tile stage
//   barrier:          global dissemination over all threads (the paper
//                     found that intra-tile gather/broadcast stages do not
//                     pay off, §IV.B.2)
// Because polling outcomes are unpredictable, predictions are bands
// [best, worst] (min-max model); the best case is what the tuner optimizes.
#pragma once

#include "model/dissemination_opt.hpp"
#include "model/params.hpp"
#include "model/tree_opt.hpp"

namespace capmem::model {

struct CostBand {
  double best_ns = 0;
  double worst_ns = 0;
};

/// How `nthreads` spread over tiles under a schedule: the number of tiles
/// touched and the maximum threads per tile.
struct ThreadLayout {
  int nthreads = 1;
  int tiles = 1;
  int threads_per_tile = 1;
};

/// Layout for the paper's two schedules ("scatter": one thread per tile
/// first; "fill tiles": both cores of a tile before the next tile).
ThreadLayout layout_for(int nthreads, int tiles_available,
                        int threads_per_tile_max, bool scatter);

/// Flat intra-tile stage cost (leader distributes to / collects from the
/// other threads of its tile).
double intra_tile_cost(const CapabilityModel& m, int threads_per_tile,
                       TreeKind kind);

/// Tuned broadcast / reduce / barrier predictions.
CostBand broadcast_band(const CapabilityModel& m, const ThreadLayout& lay,
                        sim::MemKind buffer);
CostBand reduce_band(const CapabilityModel& m, const ThreadLayout& lay,
                     sim::MemKind buffer);
CostBand barrier_band(const CapabilityModel& m, const ThreadLayout& lay,
                      sim::MemKind buffer);

/// Allreduce = tuned reduce followed by tuned broadcast over the same
/// layout (extension: the paper tunes the two halves; their composition is
/// the natural next collective).
CostBand allreduce_band(const CapabilityModel& m, const ThreadLayout& lay,
                        sim::MemKind buffer);

}  // namespace capmem::model
