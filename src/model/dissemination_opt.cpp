#include "model/dissemination_opt.hpp"

#include "common/check.hpp"

namespace capmem::model {

int dissemination_rounds(int n, int m) {
  CAPMEM_CHECK(n >= 1 && m >= 1);
  int r = 0;
  // Smallest r with (m+1)^r >= n, without pow() rounding surprises.
  long long reach = 1;
  while (reach < n) {
    reach *= (m + 1);
    ++r;
  }
  return r;
}

double dissemination_cost(const CapabilityModel& model, int n, int m,
                          sim::MemKind buffer) {
  const int r = dissemination_rounds(n, m);
  return r * (model.r_mem(buffer) + m * model.r_remote);
}

double dissemination_cost_worst(const CapabilityModel& model, int n, int m,
                                sim::MemKind buffer) {
  const int r = dissemination_rounds(n, m);
  return r * (model.r_mem(buffer) +
              m * (model.r_remote + model.contention.beta * m));
}

TunedDissemination optimize_dissemination(const CapabilityModel& model,
                                          int n, sim::MemKind buffer) {
  CAPMEM_CHECK(n >= 1);
  TunedDissemination best;
  if (n == 1) return best;
  for (int m = 1; m <= n - 1; ++m) {
    const double c = dissemination_cost(model, n, m, buffer);
    if (best.rounds == 0 || c < best.predicted_ns) {
      best.m = m;
      best.rounds = dissemination_rounds(n, m);
      best.predicted_ns = c;
    }
  }
  return best;
}

}  // namespace capmem::model
