// Model-tuned dissemination barrier (paper §IV.B.2, Eq. 2).
//
// A generalized dissemination barrier runs r rounds; in each round every
// thread signals m peers and waits for m peers, with (m+1)^r >= n. The
// model cost is T(r, m) = r * (R_I + m * R_R); the optimizer enumerates m.
#pragma once

#include "model/params.hpp"

namespace capmem::model {

struct TunedDissemination {
  int rounds = 0;
  int m = 1;  ///< peers signalled per round
  double predicted_ns = 0;
};

/// Rounds needed for n threads with fanout m: ceil(log_{m+1}(n)).
int dissemination_rounds(int n, int m);

/// Eq. 2 cost for given (n, m). `buffer` locates the flag cells.
double dissemination_cost(const CapabilityModel& model, int n, int m,
                          sim::MemKind buffer);

/// Pessimistic cost for the min-max band: every remote flag read contends
/// with the other m readers of that round.
double dissemination_cost_worst(const CapabilityModel& model, int n, int m,
                                sim::MemKind buffer);

/// Exact minimization over m in [1, n-1].
TunedDissemination optimize_dissemination(const CapabilityModel& model,
                                          int n, sim::MemKind buffer);

}  // namespace capmem::model
