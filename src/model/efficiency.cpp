#include "model/efficiency.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"

namespace capmem::model {

EfficiencyReport assess(const CapabilityModel& m,
                        const std::vector<sim::ThreadCounters>& counters,
                        double elapsed_ns, int threads, sim::MemKind kind) {
  CAPMEM_CHECK(elapsed_ns > 0 && threads >= 1);
  EfficiencyReport r;
  for (const sim::ThreadCounters& c : counters) {
    r.l1_hits += c.l1_hits;
    r.l2_hits += c.l2_tile_hits;
    r.remote_hits += c.remote_hits;
    r.dram_lines += c.dram_lines + c.mc_cache_hits + c.mc_cache_misses;
    r.mcdram_lines += c.mcdram_lines;
    r.total_ops += c.line_ops;
  }
  if (r.total_ops == 0) {
    r.verdict = "no memory operations recorded";
    return r;
  }
  r.cache_hit_fraction =
      static_cast<double>(r.l1_hits + r.l2_hits) /
      static_cast<double>(r.total_ops);

  const std::uint64_t mem_lines = r.dram_lines + r.mcdram_lines;
  const double mem_bytes = static_cast<double>(mem_lines * kLineBytes);
  r.memory_gbps = mem_bytes / elapsed_ns;
  r.achievable_gbps = m.bw(kind).at_threads(threads);
  if (r.achievable_gbps > 0) {
    r.memory_efficiency = r.memory_gbps / r.achievable_gbps;
    r.memory_bound_ns = mem_bytes / r.achievable_gbps;
    r.overhead_fraction =
        std::max(0.0, (elapsed_ns - r.memory_bound_ns) / elapsed_ns);
  }

  std::ostringstream os;
  os << fmt_num(r.cache_hit_fraction * 100, 0) << "% of " << r.total_ops
     << " line ops hit in cache; memory traffic ran at "
     << fmt_num(r.memory_gbps, 1) << " GB/s ("
     << fmt_num(r.memory_efficiency * 100, 0) << "% of the achievable "
     << fmt_num(r.achievable_gbps, 1) << "); "
     << fmt_num(r.overhead_fraction * 100, 0)
     << "% of the wall time is not explained by memory traffic";
  if (r.memory_bound()) {
    os << " -> memory-bound";
  } else if (r.cache_hit_fraction > 0.5) {
    os << " -> cache-resident (L1/L2 traffic dominates; neither memory nor "
          "overhead is the bottleneck)";
  } else {
    os << " -> NOT memory-bound (overhead-dominated)";
  }
  r.verdict = os.str();
  return r;
}

}  // namespace capmem::model
