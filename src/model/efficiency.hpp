// Resource-efficiency assessment (paper §V.B / §VII: "a performance model
// can guide us in assessing how efficient is our application in terms of
// resource usage").
//
// Given the event counters an application run left behind (per-thread line
// ops per level of the hierarchy), its wall time, and the capability model,
// this module computes where the traffic went, the achieved memory
// bandwidth, and how close that is to what the model says was achievable —
// the quantitative version of Fig. 10's ">10% overhead" verdict.
#pragma once

#include <string>
#include <vector>

#include "model/params.hpp"
#include "sim/memsys.hpp"

namespace capmem::model {

struct EfficiencyReport {
  // Traffic breakdown (cache lines).
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t dram_lines = 0;
  std::uint64_t mcdram_lines = 0;
  std::uint64_t total_ops = 0;

  double cache_hit_fraction = 0;   ///< (L1+L2) / total
  double memory_gbps = 0;          ///< achieved memory bandwidth
  double achievable_gbps = 0;      ///< model's B(threads) for the kind used
  double memory_efficiency = 0;    ///< achieved / achievable
  /// Lower bound on runtime from memory traffic alone at achievable BW.
  double memory_bound_ns = 0;
  /// Fraction of the wall time not explained by the memory bound — the
  /// paper's overhead criterion (">10% means no longer memory-bound").
  double overhead_fraction = 0;

  std::string verdict;  ///< human-readable summary

  bool memory_bound(double threshold = 0.10) const {
    return overhead_fraction <= threshold;
  }
};

/// Analyzes a finished run: `counters` for every participating thread,
/// `elapsed_ns` the makespan, `threads` the worker count, `kind` the
/// memory the data lived in.
EfficiencyReport assess(const CapabilityModel& m,
                        const std::vector<sim::ThreadCounters>& counters,
                        double elapsed_ns, int threads, sim::MemKind kind);

}  // namespace capmem::model
