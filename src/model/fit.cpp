#include "model/fit.hpp"

namespace capmem::model {

CapabilityModel fit(const bench::SuiteResults& suite) {
  CapabilityModel m;
  m.machine = suite.cfg.name;
  m.cluster = suite.cfg.cluster;
  m.memory = suite.cfg.memory;

  // Cache half. R_L is the poll-hit cost (the line stays resident between
  // polls); R_R uses the modified-state remote median because collective
  // cells are written by their producer right before being read.
  m.r_local = suite.lat_l1.median;
  m.r_l2 = suite.lat_tile_e.median;
  m.r_tile = suite.lat_tile_m.median;
  m.r_remote = suite.lat_remote_m.median;
  m.r_mem_dram = suite.mem_lat_dram.median;
  m.r_mem_mcdram = suite.mem_lat_mcdram ? suite.mem_lat_mcdram->median
                                        : suite.mem_lat_dram.median;
  m.contention = suite.contention.fit;
  m.c2c_copy_gbps = suite.bw_copy_remote.median;
  m.multiline = suite.multiline_ns;

  // Memory half.
  m.lat_dram = suite.mem_lat_dram.median;
  m.lat_mcdram = m.r_mem_mcdram;
  // Flat and hybrid modes expose an explicit MCDRAM range regardless of
  // whether the stream kernels ran.
  m.has_mcdram = suite.cfg.memory != sim::MemoryMode::kCache;
  if (suite.has_streams) {
    // Copy is the merge-sort-shaped kernel (one read + one write stream):
    // its single-thread and saturated medians anchor the bandwidth law.
    m.bw_dram.per_thread_gbps = suite.copy_1thread[0].gbps.median;
    m.bw_dram.aggregate_gbps = suite.stream[0][0].nt_random.gbps.median;
    if (suite.has_mcdram_streams) {
      m.bw_mcdram.per_thread_gbps = suite.copy_1thread[1].gbps.median;
      m.bw_mcdram.aggregate_gbps = suite.stream[0][1].nt_random.gbps.median;
    } else {
      m.bw_mcdram = m.bw_dram;
    }
  } else {
    // Latency-only fallback: one line per latency, single outstanding miss.
    const double line = static_cast<double>(kLineBytes);
    m.bw_dram.per_thread_gbps = line / m.lat_dram;
    m.bw_dram.aggregate_gbps = 0;  // unknown: uncapped
    m.bw_mcdram.per_thread_gbps = line / m.lat_mcdram;
    m.bw_mcdram.aggregate_gbps = 0;
  }
  return m;
}

CapabilityModel fit_cache_model(const sim::MachineConfig& cfg,
                                const bench::SuiteOptions& opts) {
  bench::SuiteOptions o = opts;
  o.streams = false;
  return fit(bench::run_suite(cfg, o));
}

}  // namespace capmem::model
