// Measurement -> capability model (the "parametrize" step of the paper's
// methodology). Only medians and regression fits from the benchmark layer
// enter the model; the simulator's ground-truth constants are never read.
#pragma once

#include "bench/suite.hpp"
#include "model/params.hpp"

namespace capmem::model {

/// Builds the capability model from a completed suite run. If the suite
/// skipped the stream kernels, the bandwidth laws fall back to the memory
/// latencies' implied single-line throughput (latency-only model).
CapabilityModel fit(const bench::SuiteResults& suite);

/// Convenience: run the (cache-half) suite and fit, for callers that only
/// need the collective-tuning parameters.
CapabilityModel fit_cache_model(const sim::MachineConfig& cfg,
                                const bench::SuiteOptions& opts = {});

}  // namespace capmem::model
