#include "model/params.hpp"

#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace capmem::model {

double CapabilityModel::t_contention(int n) const {
  const double t = contention(n);
  return t > r_remote ? t : r_remote;
}

void CapabilityModel::save(std::ostream& os) const {
  os.precision(17);  // lossless double round-trip
  os << "machine " << machine << '\n';
  os << "cluster " << sim::to_string(cluster) << '\n';
  os << "memory " << sim::to_string(memory) << '\n';
  auto kv = [&os](const char* k, double v) { os << k << ' ' << v << '\n'; };
  kv("r_local", r_local);
  kv("r_l2", r_l2);
  kv("r_tile", r_tile);
  kv("r_remote", r_remote);
  kv("r_mem_dram", r_mem_dram);
  kv("r_mem_mcdram", r_mem_mcdram);
  kv("contention_alpha", contention.alpha);
  kv("contention_beta", contention.beta);
  kv("contention_r2", contention.r2);
  kv("c2c_copy_gbps", c2c_copy_gbps);
  kv("multiline_alpha", multiline.alpha);
  kv("multiline_beta", multiline.beta);
  kv("multiline_r2", multiline.r2);
  kv("lat_dram", lat_dram);
  kv("lat_mcdram", lat_mcdram);
  kv("bw_dram_thread", bw_dram.per_thread_gbps);
  kv("bw_dram_agg", bw_dram.aggregate_gbps);
  kv("bw_mcdram_thread", bw_mcdram.per_thread_gbps);
  kv("bw_mcdram_agg", bw_mcdram.aggregate_gbps);
  kv("has_mcdram", has_mcdram ? 1 : 0);
}

CapabilityModel CapabilityModel::load(std::istream& is) {
  std::map<std::string, std::string> kv;
  std::string key, value;
  while (is >> key >> value) kv[key] = value;
  auto num = [&kv](const char* k) {
    const auto it = kv.find(k);
    CAPMEM_CHECK_MSG(it != kv.end(), "missing model key '" << k << "'");
    return std::stod(it->second);
  };
  CapabilityModel m;
  m.machine = kv.count("machine") ? kv["machine"] : "unknown";
  CAPMEM_CHECK(kv.count("cluster") && kv.count("memory"));
  m.cluster = sim::cluster_mode_from_string(kv["cluster"]);
  m.memory = sim::memory_mode_from_string(kv["memory"]);
  m.r_local = num("r_local");
  m.r_l2 = num("r_l2");
  m.r_tile = num("r_tile");
  m.r_remote = num("r_remote");
  m.r_mem_dram = num("r_mem_dram");
  m.r_mem_mcdram = num("r_mem_mcdram");
  m.contention.alpha = num("contention_alpha");
  m.contention.beta = num("contention_beta");
  m.contention.r2 = num("contention_r2");
  m.c2c_copy_gbps = num("c2c_copy_gbps");
  m.multiline.alpha = num("multiline_alpha");
  m.multiline.beta = num("multiline_beta");
  m.multiline.r2 = num("multiline_r2");
  m.lat_dram = num("lat_dram");
  m.lat_mcdram = num("lat_mcdram");
  m.bw_dram.per_thread_gbps = num("bw_dram_thread");
  m.bw_dram.aggregate_gbps = num("bw_dram_agg");
  m.bw_mcdram.per_thread_gbps = num("bw_mcdram_thread");
  m.bw_mcdram.aggregate_gbps = num("bw_mcdram_agg");
  m.has_mcdram = num("has_mcdram") != 0;
  return m;
}

namespace {
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a) + std::abs(b));
}
}  // namespace

bool operator==(const CapabilityModel& a, const CapabilityModel& b) {
  return a.machine == b.machine && a.cluster == b.cluster &&
         a.memory == b.memory && close(a.r_local, b.r_local) &&
         close(a.r_l2, b.r_l2) &&
         close(a.r_tile, b.r_tile) && close(a.r_remote, b.r_remote) &&
         close(a.r_mem_dram, b.r_mem_dram) &&
         close(a.r_mem_mcdram, b.r_mem_mcdram) &&
         close(a.contention.alpha, b.contention.alpha) &&
         close(a.contention.beta, b.contention.beta) &&
         close(a.c2c_copy_gbps, b.c2c_copy_gbps) &&
         close(a.multiline.alpha, b.multiline.alpha) &&
         close(a.multiline.beta, b.multiline.beta) &&
         close(a.lat_dram, b.lat_dram) && close(a.lat_mcdram, b.lat_mcdram) &&
         close(a.bw_dram.per_thread_gbps, b.bw_dram.per_thread_gbps) &&
         close(a.bw_dram.aggregate_gbps, b.bw_dram.aggregate_gbps) &&
         close(a.bw_mcdram.per_thread_gbps, b.bw_mcdram.per_thread_gbps) &&
         close(a.bw_mcdram.aggregate_gbps, b.bw_mcdram.aggregate_gbps) &&
         a.has_mcdram == b.has_mcdram;
}

}  // namespace capmem::model
