// The capability model — the paper's central artifact.
//
// A CapabilityModel is the parametrized analytic description of one machine
// configuration, populated purely from measurements (bench::SuiteResults).
// Its two halves:
//   * cache capabilities (§IV): R_L / R_R / R_I line-transfer costs, the
//     contention law T_C(N) = alpha + beta*N, and the multi-line copy law —
//     the inputs of the communication-algorithm tuning (Eqs. 1-2);
//   * memory capabilities (§V): latency and achievable bandwidth per memory
//     kind, per-thread and aggregate — the inputs of the sort model
//     (Eqs. 3-5) and of mode-selection reasoning.
#pragma once

#include <iosfwd>
#include <string>

#include "common/linreg.hpp"
#include "sim/config.hpp"

namespace capmem::model {

/// Achievable-bandwidth law for one memory kind: per-thread ramp capped by
/// the aggregate ("B(n) = min(n * per_thread, aggregate)").
struct BandwidthLaw {
  double per_thread_gbps = 0;  ///< single-thread streaming bandwidth
  double aggregate_gbps = 0;   ///< chip-wide saturation

  double at_threads(int n) const {
    const double ramp = per_thread_gbps * n;
    return aggregate_gbps > 0 ? (ramp < aggregate_gbps ? ramp
                                                       : aggregate_gbps)
                              : ramp;
  }
};

struct CapabilityModel {
  std::string machine;
  sim::ClusterMode cluster = sim::ClusterMode::kQuadrant;
  sim::MemoryMode memory = sim::MemoryMode::kFlat;

  // --- cache capabilities (ns per cache line) ---
  double r_local = 0;   ///< R_L: line already in the local cache (poll hit)
  double r_l2 = 0;      ///< own-tile L2 read (clean line, sort model costL2)
  double r_tile = 0;    ///< intra-tile transfer (other core's L2 line, M)
  double r_remote = 0;  ///< R_R: remote-tile transfer (modified line)
  double r_mem_dram = 0;    ///< R_I when the buffer lives in DRAM
  double r_mem_mcdram = 0;  ///< R_I when it lives in MCDRAM (= dram in
                            ///< cache mode)
  /// Contention law T_C(N) = alpha + beta*N for N simultaneous readers.
  LinearFit contention;
  /// Single-thread remote copy bandwidth (GB/s) for payload estimation.
  double c2c_copy_gbps = 0;
  /// Multi-line remote copy: time(ns) = alpha + beta*lines (§IV.A.4 fit).
  LinearFit multiline;

  /// Cost of pulling an s-line message from a remote cache (falls back to
  /// R_R for one line / when the multi-line law was not fitted).
  double r_message(int lines) const {
    if (lines <= 1 || multiline.beta <= 0) return r_remote;
    const double t = multiline(lines);
    return t > r_remote ? t : r_remote;
  }

  // --- memory capabilities ---
  double lat_dram = 0;
  double lat_mcdram = 0;  ///< == lat_dram proxy in cache mode
  BandwidthLaw bw_dram;
  BandwidthLaw bw_mcdram;  ///< unset in cache mode
  bool has_mcdram = true;

  /// R_I for a buffer of `kind` (paper Eq. 1/2 parameter).
  double r_mem(sim::MemKind kind) const {
    return kind == sim::MemKind::kDDR ? r_mem_dram : r_mem_mcdram;
  }
  double mem_latency(sim::MemKind kind) const {
    return kind == sim::MemKind::kDDR ? lat_dram : lat_mcdram;
  }
  const BandwidthLaw& bw(sim::MemKind kind) const {
    return kind == sim::MemKind::kDDR ? bw_dram : bw_mcdram;
  }
  /// T_C(n), clamped below by the uncontended remote transfer.
  double t_contention(int n) const;

  /// Key-value text round trip (so expensive fits can be cached on disk).
  void save(std::ostream& os) const;
  static CapabilityModel load(std::istream& is);
};

bool operator==(const CapabilityModel& a, const CapabilityModel& b);

}  // namespace capmem::model
