#include "model/roofline.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace capmem::model {

double Roofline::attainable(double flops_per_byte) const {
  CAPMEM_CHECK(flops_per_byte >= 0);
  return std::min(peak_gflops, mem_gbps * flops_per_byte);
}

double Roofline::ridge_point() const {
  return mem_gbps > 0 ? peak_gflops / mem_gbps : 0.0;
}

bool Roofline::memory_bound(double flops_per_byte) const {
  return flops_per_byte < ridge_point();
}

std::vector<Roofline> build_rooflines(const CapabilityModel& m,
                                      double peak_gflops) {
  std::vector<Roofline> out;
  Roofline dram;
  dram.peak_gflops = peak_gflops;
  dram.mem_gbps = m.bw_dram.aggregate_gbps;
  dram.memory_name = "DRAM";
  out.push_back(dram);
  if (m.has_mcdram) {
    Roofline mc;
    mc.peak_gflops = peak_gflops;
    mc.mem_gbps = m.bw_mcdram.aggregate_gbps;
    mc.memory_name = "MCDRAM";
    out.push_back(mc);
  }
  return out;
}

}  // namespace capmem::model
