// Roofline comparison (related-work extension, paper §VI: Doerfler et al.
// apply the roofline to KNL; the paper argues it cannot *optimize*
// algorithms — this module exists so the two model styles can be compared
// side by side).
#pragma once

#include <string>
#include <vector>

#include "model/params.hpp"

namespace capmem::model {

struct Roofline {
  double peak_gflops = 0;       ///< compute roof
  double mem_gbps = 0;          ///< memory roof (measured, not peak!)
  std::string memory_name;

  /// Attainable GFLOP/s at arithmetic intensity `flops_per_byte`.
  double attainable(double flops_per_byte) const;
  /// Intensity at which the kernel turns compute-bound.
  double ridge_point() const;
  /// True when a kernel of this intensity is memory-bound.
  bool memory_bound(double flops_per_byte) const;
};

/// Rooflines (one per memory kind) built from the capability model's
/// measured achievable bandwidths and the documented peak FLOP rate
/// (KNL 7210: 64 cores x 2 VPUs x 16 SP lanes x 2 (FMA) x 1.3 GHz).
std::vector<Roofline> build_rooflines(const CapabilityModel& m,
                                      double peak_gflops = 5324.8);

}  // namespace capmem::model
