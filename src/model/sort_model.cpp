#include "model/sort_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace capmem::model {

namespace {
int ceil_log2(std::uint64_t v) {
  int l = 0;
  while ((1ull << l) < v) ++l;
  return l;
}
}  // namespace

double SortModel::level_line_cost(std::uint64_t working_set_bytes,
                                  int active_threads, sim::MemKind kind,
                                  bool use_bandwidth) const {
  // Working set of one merge level per thread: the two input lists plus
  // the output (ping-pong) — 2x the output size.
  const std::uint64_t ws = 2 * working_set_bytes;
  if (ws <= arch_.l1_bytes) return caps_.r_local;
  if (ws <= arch_.l2_bytes /
                static_cast<std::uint64_t>(arch_.threads_per_tile)) {
    return caps_.r_l2;
  }
  if (!use_bandwidth) return caps_.mem_latency(kind);
  // Best case: ordered input lists are streamed; the active threads share
  // the achievable copy bandwidth B(n). A merge moves its payload once in
  // and once out, and B already counts payload once, so the per-line-op
  // cost is (64/2) / (B(n)/n).
  const BandwidthLaw& law = caps_.bw(kind);
  double per_thread = law.per_thread_gbps;
  if (law.aggregate_gbps > 0) {
    per_thread = law.at_threads(active_threads) / active_threads;
  }
  CAPMEM_CHECK(per_thread > 0);
  return (static_cast<double>(kLineBytes) / 2.0) / per_thread;
}

double SortModel::predict(std::uint64_t bytes, int nthreads,
                          sim::MemKind kind, bool use_bandwidth,
                          bool include_sync) const {
  CAPMEM_CHECK(bytes >= kLineBytes && nthreads >= 1);
  const std::uint64_t total_lines = lines_for(bytes);
  const std::uint64_t per_thread_lines =
      std::max<std::uint64_t>(1, (total_lines + nthreads - 1) /
                                     static_cast<std::uint64_t>(nthreads));
  double t = 0;

  // Phase 1 — every thread sorts its chunk: log2(chunk) merge levels, all
  // threads active; level l produces runs of 2^l lines. The first level
  // reads the input from memory (the 2n*costmem term of Eq. 3).
  const int local_levels = std::max(1, ceil_log2(per_thread_lines));
  for (int l = 1; l <= local_levels; ++l) {
    const std::uint64_t run_bytes = (1ull << l) * kLineBytes;
    double per_line =
        l == 1 ? level_line_cost(bytes, nthreads, kind, use_bandwidth)
               : level_line_cost(std::min<std::uint64_t>(run_bytes, bytes),
                                 nthreads, kind, use_bandwidth);
    t += 2.0 * static_cast<double>(per_thread_lines) * per_line +
         arch_.bitonic_ns_per_line * static_cast<double>(per_thread_lines);
  }

  // Phase 2 — cross-thread merge tree: log2(p) stages; at stage j only
  // p/2^j threads work, each producing runs of per_thread*2^j lines, and
  // each stage hands off through a flag (R_L + R_R).
  const int stages = ceil_log2(static_cast<std::uint64_t>(nthreads));
  for (int j = 1; j <= stages; ++j) {
    const int active = std::max(1, nthreads >> j);
    const std::uint64_t out_lines = per_thread_lines << j;
    const std::uint64_t out_bytes = out_lines * kLineBytes;
    const double per_line =
        level_line_cost(std::min<std::uint64_t>(out_bytes, bytes), active,
                        kind, use_bandwidth);
    t += 2.0 * static_cast<double>(out_lines) * per_line +
         arch_.bitonic_ns_per_line * static_cast<double>(out_lines) +
         (include_sync ? caps_.r_local + caps_.r_remote : 0.0);
  }
  return t;
}

void SortModel::fit_overhead(std::span<const int> threads,
                             std::span<const double> measured_1kb_ns,
                             sim::MemKind kind) {
  CAPMEM_CHECK(threads.size() == measured_1kb_ns.size());
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const double model = predict(KiB(1), threads[i], kind,
                                 /*use_bandwidth=*/false,
                                 /*include_sync=*/false);
    xs.push_back(threads[i]);
    ys.push_back(std::max(0.0, measured_1kb_ns[i] - model));
  }
  overhead_ = fit_linear(xs, ys);
}

double SortModel::predict_full(std::uint64_t bytes, int nthreads,
                               sim::MemKind kind, bool use_bandwidth) const {
  return predict(bytes, nthreads, kind, use_bandwidth,
                 /*include_sync=*/false) +
         std::max(0.0, overhead_(nthreads));
}

double SortModel::overhead_fraction(std::uint64_t bytes, int nthreads,
                                    sim::MemKind kind) const {
  const double mem = predict(bytes, nthreads, kind, /*use_bandwidth=*/true,
                             /*include_sync=*/false);
  if (mem <= 0) return 0;
  return std::max(0.0, overhead_(nthreads)) / mem;
}

}  // namespace capmem::model
