// Memory-access model of the parallel bitonic merge sort (paper §V.B,
// Eqs. 3-5, Fig. 10).
//
// The sort merges runs level by level; every merge of n output lines costs
// n reads + n writes. The per-line cost depends on where the working set of
// the level lives (L1, L2, memory — Eqs. 3, 4, 5) and, for memory, on
// whether the latency (worst case: interleaved random reads) or the inverse
// achievable bandwidth (best case: ordered streams, shared by the active
// threads) is charged. On top of the merge traffic the model adds the
// bitonic-network vector compute and the inter-stage flag synchronization
// (R_L + R_R). A separately fitted linear overhead model (thread
// management, recursion, false sharing; fitted at 1 KB) completes the
// "full model".
#pragma once

#include <cstdint>
#include <span>

#include "common/linreg.hpp"
#include "model/params.hpp"

namespace capmem::model {

/// Architecture facts the model takes from the data sheet (the paper does
/// the same — cache sizes and vector-unit throughput are documented, not
/// measured).
struct SortArch {
  std::uint64_t l1_bytes = 32 * 1024;
  std::uint64_t l2_bytes = 1024 * 1024;
  int threads_per_tile = 2;
  /// Vector compute per line pushed through the width-16 bitonic network:
  /// ~12 AVX-512 min/max/shuffle ops at 1.3 GHz across 2 VPUs.
  double bitonic_ns_per_line = 4.6;
};

class SortModel {
 public:
  SortModel(CapabilityModel caps, SortArch arch)
      : caps_(std::move(caps)), arch_(arch) {}

  /// Predicted sort time (ns) for `bytes` of int32 keys with `nthreads`,
  /// buffers in `kind`. `use_bandwidth` selects the best-case memory cost
  /// (1/achievable-bandwidth) vs the worst case (latency per line).
  /// `include_sync` adds the per-stage flag handoffs; the overhead fit
  /// excludes them so synchronization lands in the overhead term, matching
  /// the paper's decomposition (overhead = thread management + sync +
  /// false sharing).
  double predict(std::uint64_t bytes, int nthreads, sim::MemKind kind,
                 bool use_bandwidth, bool include_sync = true) const;

  /// Full model = memory model + fitted overhead (call fit_overhead first).
  double predict_full(std::uint64_t bytes, int nthreads, sim::MemKind kind,
                      bool use_bandwidth) const;

  /// Fits the linear overhead model from measured 1 KB sort times across
  /// thread counts (paper §V.B.2): overhead(p) = measured(p) - model(p).
  void fit_overhead(std::span<const int> threads,
                    std::span<const double> measured_1kb_ns,
                    sim::MemKind kind);

  const LinearFit& overhead() const { return overhead_; }
  const CapabilityModel& caps() const { return caps_; }
  const SortArch& arch() const { return arch_; }

  /// Fraction overhead/memory-model at this point; the paper flags the
  /// implementation as no longer memory-bound when it exceeds 10%.
  double overhead_fraction(std::uint64_t bytes, int nthreads,
                           sim::MemKind kind) const;

 private:
  double level_line_cost(std::uint64_t working_set_bytes, int active_threads,
                         sim::MemKind kind, bool use_bandwidth) const;

  CapabilityModel caps_;
  SortArch arch_;
  LinearFit overhead_;
};

}  // namespace capmem::model
