#include "model/tree_opt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace capmem::model {

int tree_depth(const TreeNode& n) {
  int d = 0;
  for (const TreeNode& c : n.children) d = std::max(d, 1 + tree_depth(c));
  return d;
}

int tree_nodes(const TreeNode& n) {
  int total = 1;
  for (const TreeNode& c : n.children) total += tree_nodes(c);
  return total;
}

double level_cost(const CapabilityModel& m, TreeKind kind, int fanout,
                  sim::MemKind buffer, int payload_lines) {
  CAPMEM_CHECK(fanout >= 1 && payload_lines >= 1);
  const double r_i = m.r_mem(buffer);
  const double msg = m.r_message(payload_lines);
  if (kind == TreeKind::kBroadcast) {
    if (payload_lines <= 1) {
      // Parent copies payload + sets flag (R_I + R_L); children poll under
      // contention (T_C(k)), copy, and ack sequentially (R_I + k*R_R) —
      // exactly Eq. 1.
      return r_i + m.r_local + m.t_contention(fanout) + r_i +
             fanout * msg;
    }
    // Multi-line payloads: the k children's copies overlap (forward-state
    // migration distributes the supply across the readers' tiles), so a
    // level costs one message transfer plus a per-extra-reader
    // serialization at the contention slope, not k full copies.
    return r_i + m.r_local + m.t_contention(fanout) + r_i + msg +
           (fanout - 1) * m.contention.beta;
  }
  // Reduce: children publish partial results into per-child cells (no
  // contention) and set flags; the parent polls and pulls each child's
  // cell, combining locally (k * (R_msg + R_L)), with the extra buffering
  // paid once (R_I).
  return r_i + m.r_local + r_i + fanout * (msg + m.r_local);
}

double level_cost_worst(const CapabilityModel& m, TreeKind kind, int fanout,
                        sim::MemKind buffer, int payload_lines) {
  // Min-max pessimism: the poll/copy of each child additionally contends
  // with the other fanout-1 requesters at the parent's lines, so every
  // remote transfer pays the contention slope.
  const double penalty = fanout * m.contention.beta * fanout;
  return level_cost(m, kind, fanout, buffer, payload_lines) + penalty;
}

namespace {

struct DpEntry {
  double cost = 0;
  int best_fanout = 0;
};

// Memoized cost table: dp[n] = optimal subtree cost for n nodes.
std::vector<DpEntry> solve(const CapabilityModel& m, int tiles,
                           TreeKind kind, sim::MemKind buffer,
                           int payload_lines) {
  std::vector<DpEntry> dp(static_cast<std::size_t>(tiles) + 1);
  dp[1] = {0.0, 0};
  for (int n = 2; n <= tiles; ++n) {
    double best = -1;
    int best_k = 1;
    for (int k = 1; k <= n - 1; ++k) {
      // Balanced split: the largest subtree has ceil((n-1)/k) nodes, and
      // the subtree cost is nondecreasing in size, so this is optimal.
      const int largest = (n - 1 + k - 1) / k;
      const double c = level_cost(m, kind, k, buffer, payload_lines) +
                       dp[static_cast<std::size_t>(largest)].cost;
      if (best < 0 || c < best) {
        best = c;
        best_k = k;
      }
    }
    dp[static_cast<std::size_t>(n)] = {best, best_k};
  }
  return dp;
}

TreeNode build(const std::vector<DpEntry>& dp, int n) {
  TreeNode node;
  node.size = n;
  if (n == 1) return node;
  const int k = dp[static_cast<std::size_t>(n)].best_fanout;
  // Distribute n-1 nodes over k children as evenly as possible.
  int remaining = n - 1;
  for (int i = 0; i < k; ++i) {
    const int share = (remaining + (k - i) - 1) / (k - i);
    node.children.push_back(build(dp, share));
    remaining -= share;
  }
  CAPMEM_CHECK(remaining == 0);
  return node;
}

}  // namespace

TunedTree optimize_tree(const CapabilityModel& m, int tiles, TreeKind kind,
                        sim::MemKind buffer, int payload_lines) {
  CAPMEM_CHECK(tiles >= 1);
  TunedTree out;
  out.kind = kind;
  if (tiles == 1) {
    out.root = TreeNode{};
    out.predicted_ns = 0;
    return out;
  }
  const auto dp = solve(m, tiles, kind, buffer, payload_lines);
  out.root = build(dp, tiles);
  out.predicted_ns = dp[static_cast<std::size_t>(tiles)].cost;
  CAPMEM_CHECK(tree_nodes(out.root) == tiles);
  return out;
}

double tree_cost(const CapabilityModel& m, const TreeNode& root,
                 TreeKind kind, sim::MemKind buffer, bool worst,
                 int payload_lines) {
  if (root.children.empty()) return 0.0;
  const double lev =
      worst ? level_cost_worst(m, kind, root.fanout(), buffer, payload_lines)
            : level_cost(m, kind, root.fanout(), buffer, payload_lines);
  double deepest = 0;
  for (const TreeNode& c : root.children) {
    deepest = std::max(
        deepest, tree_cost(m, c, kind, buffer, worst, payload_lines));
  }
  return lev + deepest;
}

namespace {
void render(const TreeNode& n, const std::string& prefix, bool last,
            std::ostringstream& os, int& next_id) {
  const int id = next_id++;
  os << prefix << (prefix.empty() ? "" : (last ? "`-- " : "|-- ")) << id;
  if (n.fanout() > 0) os << " (k=" << n.fanout() << ")";
  os << '\n';
  const std::string child_prefix =
      prefix + (prefix.empty() ? "" : (last ? "    " : "|   "));
  for (std::size_t i = 0; i < n.children.size(); ++i) {
    render(n.children[i], child_prefix.empty() ? " " : child_prefix,
           i + 1 == n.children.size(), os, next_id);
  }
}
}  // namespace

std::string render_tree(const TreeNode& root) {
  std::ostringstream os;
  int next_id = 0;
  render(root, "", true, os, next_id);
  return os.str();
}

}  // namespace capmem::model
