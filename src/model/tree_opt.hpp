// Model-tuned broadcast/reduce trees (paper §IV.B.1, Eq. 1, Fig. 1).
//
// The inter-tile collective is a generic tree in which node i has an
// arbitrary number of children k_i. The cost of a level with fanout k is
//
//   T_lev(k) = R_I + R_L + T_C(k) + R_I + k * R_R            (broadcast)
//
// (parent publishes payload + flag; k children poll the flag under
// contention and copy the payload; children ack sequentially), and the tree
// cost is T_lev(k_0) + max over subtrees — minimized exactly by memoized
// search over fanouts with balanced subtree splits (optimal because the
// subtree cost is nondecreasing in size).
#pragma once

#include <string>
#include <vector>

#include "model/params.hpp"

namespace capmem::model {

/// A tuned tree over `size` nodes (node 0 is the root of the subtree).
struct TreeNode {
  int size = 1;  ///< nodes in this subtree, including the root
  std::vector<TreeNode> children;
  int fanout() const { return static_cast<int>(children.size()); }
};

/// Depth (edges) of the deepest leaf.
int tree_depth(const TreeNode& n);
/// Total node count (must equal `size`; used by tests).
int tree_nodes(const TreeNode& n);

enum class TreeKind { kBroadcast, kReduce };

struct TunedTree {
  TreeNode root;
  double predicted_ns = 0;
  TreeKind kind = TreeKind::kBroadcast;
};

/// Cost of one level with fanout k under `m`. `buffer` is where the
/// payload cells live (R_I term); `payload_lines` generalizes Eq. 1 to
/// multi-line messages via the fitted alpha + beta*N transfer law.
double level_cost(const CapabilityModel& m, TreeKind kind, int fanout,
                  sim::MemKind buffer, int payload_lines = 1);

/// Pessimistic variant for the min-max band: every child's payload read
/// additionally contends at the parent's line.
double level_cost_worst(const CapabilityModel& m, TreeKind kind, int fanout,
                        sim::MemKind buffer, int payload_lines = 1);

/// Exact minimization of Eq. 1 over trees with `tiles` nodes.
TunedTree optimize_tree(const CapabilityModel& m, int tiles, TreeKind kind,
                        sim::MemKind buffer, int payload_lines = 1);

/// Cost of an arbitrary tree under the model (worst=false -> Eq. 1 cost).
double tree_cost(const CapabilityModel& m, const TreeNode& root,
                 TreeKind kind, sim::MemKind buffer, bool worst = false,
                 int payload_lines = 1);

/// Multi-line ASCII rendering of the tree (Fig. 1-style printout).
std::string render_tree(const TreeNode& root);

}  // namespace capmem::model
