#include "obs/attr.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"

namespace capmem::obs::attr {

const char* to_string(TimeCat c) {
  switch (c) {
    case TimeCat::kCompute: return "compute";
    case TimeCat::kTimerWait: return "timer_wait";
    case TimeCat::kBarrierWait: return "barrier_wait";
    case TimeCat::kParkWait: return "park_wait";
    case TimeCat::kL1: return "access.l1";
    case TimeCat::kL2Tile: return "access.l2_tile";
    case TimeCat::kRemoteL2: return "access.remote_l2";
    case TimeCat::kDram: return "access.dram";
    case TimeCat::kMcdram: return "access.mcdram";
    case TimeCat::kMcCacheHit: return "access.mc_cache_hit";
    case TimeCat::kMcCacheMiss: return "access.mc_cache_miss";
    case TimeCat::kEndSlack: return "end_slack";
    case TimeCat::kUnattributed: return "unattributed";
    case TimeCat::kCount: break;
  }
  return "?";
}

const char* to_string(TransLabel l) {
  switch (l) {
    case TransLabel::kInvalidate: return "invalidate";
    case TransLabel::kUpgrade: return "upgrade";
    case TransLabel::kDowngrade: return "downgrade";
    case TransLabel::kShare: return "share";
    case TransLabel::kCount: break;
  }
  return "?";
}

namespace {

// Mirrors sim::TileState's enumerator order (coherence.hpp); attr is an
// obs-layer component and must not include sim headers, so the coupling is
// by position only and unknown values degrade to "?".
const char* state_name(int s) {
  static const char* kNames[Ledger::kTransStates] = {
      "I", "S", "E", "M", "F", "O", "?", "?"};
  return (s >= 0 && s < Ledger::kTransStates) ? kNames[s] : "?";
}

TransLabel label_of(const char* label) {
  if (label == nullptr) return TransLabel::kCount;
  switch (label[0]) {
    case 'i': return TransLabel::kInvalidate;
    case 'u': return TransLabel::kUpgrade;
    case 'd': return TransLabel::kDowngrade;
    case 's': return TransLabel::kShare;
    default: return TransLabel::kCount;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Ledger

Ledger::Ledger(int tiles) : tiles_(std::max(tiles, 1)) {
  const std::size_t ncells =
      static_cast<std::size_t>(TimeCat::kCount) *
      static_cast<std::size_t>(tiles_);
  cells_.assign(ncells, 0);
  counts_.assign(ncells, 0);
  hop_v_tile_.assign(static_cast<std::size_t>(tiles_), 0);
  hop_h_tile_.assign(static_cast<std::size_t>(tiles_), 0);
  dir_lookups_.assign(static_cast<std::size_t>(tiles_), 0);
}

void Ledger::ensure_task(int tid) {
  CAPMEM_DCHECK(tid >= 0);
  const std::size_t need = static_cast<std::size_t>(tid) + 1;
  if (mirror_.size() < need) {
    mirror_.resize(need, 0);
    spawn_.resize(need, 0);
    final_.resize(need, 0);
    task_tile_.resize(need, 0);
    edges_.resize(need);
  }
}

void Ledger::on_spawn(int tid, double clock) {
  ensure_task(tid);
  const Ticks t = to_ticks(clock);
  mirror_[static_cast<std::size_t>(tid)] = t;
  spawn_[static_cast<std::size_t>(tid)] = t;
}

void Ledger::set_task_tile(int tid, int tile) {
  ensure_task(tid);
  if (tile < 0 || tile >= tiles_) tile = 0;
  task_tile_[static_cast<std::size_t>(tid)] = tile;
}

void Ledger::on_wake_edge(int woken, int writer, std::uint64_t key,
                          double t) {
  if (writer < 0 || writer == woken) return;
  ensure_task(woken);
  ensure_task(writer);
  edges_[static_cast<std::size_t>(woken)].push_back(
      Edge{writer, t, key, /*kind=*/0});
}

void Ledger::on_sync_edge(int tid, int releaser, double t) {
  if (releaser < 0 || releaser == tid) return;
  ensure_task(tid);
  ensure_task(releaser);
  edges_[static_cast<std::size_t>(tid)].push_back(
      Edge{releaser, t, 0, /*kind=*/1});
}

void Ledger::count_access(int tile, TimeCat level_cat) {
  if (tile < 0 || tile >= tiles_) tile = 0;
  ++counts_[cell_idx(level_cat, tile)];
}

void Ledger::add_hops(int tile, int vertical, int horizontal) {
  if (tile < 0 || tile >= tiles_) tile = 0;
  hops_v_ += static_cast<std::uint64_t>(vertical);
  hops_h_ += static_cast<std::uint64_t>(horizontal);
  hop_v_tile_[static_cast<std::size_t>(tile)] +=
      static_cast<std::uint64_t>(vertical);
  hop_h_tile_[static_cast<std::size_t>(tile)] +=
      static_cast<std::uint64_t>(horizontal);
}

void Ledger::add_dir_lookup(int home_tile, double queue_ns,
                            double service_ns) {
  if (home_tile < 0 || home_tile >= tiles_) home_tile = 0;
  ++dir_lookups_[static_cast<std::size_t>(home_tile)];
  cha_queue_ns_ += queue_ns;
  cha_service_ns_ += service_ns;
}

void Ledger::add_transition(int from_state, int to_state,
                            const char* label) {
  const TransLabel l = label_of(label);
  if (l == TransLabel::kCount) return;
  from_state = std::clamp(from_state, 0, kTransStates - 1);
  to_state = std::clamp(to_state, 0, kTransStates - 1);
  ++trans_[static_cast<int>(l)][from_state][to_state];
}

void Ledger::set_channel_busy(double ddr_ns, double mcdram_ns) {
  ddr_busy_ns_ = ddr_ns;
  mcdram_busy_ns_ = mcdram_ns;
}

void Ledger::finalize(double end_time_ns) {
  CAPMEM_CHECK_MSG(!finalized_, "attr::Ledger finalized twice");
  end_time_ns_ = end_time_ns;
  // Snapshot final clocks (the critical-path anchor) before the end-slack
  // charge moves every mirror to the engine end time.
  final_ = mirror_;
  for (int tid = 0; tid < tasks(); ++tid) {
    charge(tid, TimeCat::kEndSlack,
           to_ns(mirror_[static_cast<std::size_t>(tid)]), end_time_ns);
  }
  finalized_ = true;
}

Ticks Ledger::total(TimeCat c) const {
  Ticks sum = 0;
  for (int t = 0; t < tiles_; ++t) sum += cells_[cell_idx(c, t)];
  return sum;
}

Ticks Ledger::total_all() const {
  Ticks sum = 0;
  for (Ticks v : cells_) sum += v;
  return sum;
}

Ticks Ledger::expected_total() const {
  const Ticks end = to_ticks(end_time_ns_);
  Ticks sum = 0;
  for (Ticks s : spawn_) sum += end - s;
  return sum;
}

std::uint64_t Ledger::access_count_total(TimeCat c) const {
  std::uint64_t sum = 0;
  for (int t = 0; t < tiles_; ++t) sum += counts_[cell_idx(c, t)];
  return sum;
}

std::uint64_t Ledger::dir_lookups_total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t v : dir_lookups_) sum += v;
  return sum;
}

std::uint64_t Ledger::transition(TransLabel l, int from, int to) const {
  if (l == TransLabel::kCount) return 0;
  if (from < 0 || from >= kTransStates || to < 0 || to >= kTransStates) {
    return 0;
  }
  return trans_[static_cast<int>(l)][from][to];
}

std::vector<PathLink> Ledger::critical_path(std::size_t max_links) const {
  std::vector<PathLink> links;
  if (!finalized_ || tasks() == 0) return links;
  // Anchor: the task whose own work ends last (ties: smallest tid, so the
  // walk is deterministic).
  int cur = 0;
  for (int tid = 1; tid < tasks(); ++tid) {
    if (final_[static_cast<std::size_t>(tid)] >
        final_[static_cast<std::size_t>(cur)]) {
      cur = tid;
    }
  }
  double t_cur = to_ns(final_[static_cast<std::size_t>(cur)]);
  while (links.size() < max_links) {
    // Latest dependency resolved at or before the current frontier. Edges
    // are appended in nondecreasing time per task, so scan from the back.
    const std::vector<Edge>& es = edges_[static_cast<std::size_t>(cur)];
    const Edge* best = nullptr;
    for (auto it = es.rbegin(); it != es.rend(); ++it) {
      if (it->t <= t_cur) {
        best = &*it;
        break;
      }
    }
    if (best == nullptr) break;
    PathLink link;
    link.tid = cur;
    link.pred = best->pred;
    link.tile = task_tile_[static_cast<std::size_t>(cur)];
    link.pred_tile = task_tile_[static_cast<std::size_t>(best->pred)];
    link.t = best->t;
    link.dur = t_cur - best->t;
    link.kind = best->kind == 0 ? "wake" : "sync";
    link.key = best->key;
    links.push_back(link);
    // Strictly-decreasing frontier bounds the walk even if a zero-length
    // dependency chain loops back through the same task.
    const double next_t =
        best->t < t_cur ? best->t
                        : std::nextafter(best->t, -1.0);
    cur = best->pred;
    t_cur = next_t;
    if (t_cur < 0) break;
  }
  std::reverse(links.begin(), links.end());
  return links;
}

// ---------------------------------------------------------------------------
// Sink

void Sink::merge(const Ledger& l, const std::string& label) {
  CAPMEM_CHECK_MSG(l.finalized(),
                   "attr::Sink::merge on a ledger that was not finalized");
  CAPMEM_CHECK_MSG(
      l.conserved(),
      "attribution conservation violated for '"
          << label << "': sum of category cells = " << l.total_all()
          << " ticks, expected sum of task lifetimes = "
          << l.expected_total() << " ticks (end = " << l.end_time_ns()
          << " ns, " << l.tasks() << " task(s))");
  std::lock_guard<std::mutex> lk(mu_);
  ++machines_;
  tasks_ += static_cast<std::uint64_t>(l.tasks());
  total_ += l.total_all();
  expected_ += l.expected_total();
  if (l.tiles() > tiles_) {
    // Re-layout [cat][tile] with the wider tile count.
    std::vector<Ticks> wider(
        static_cast<std::size_t>(TimeCat::kCount) *
            static_cast<std::size_t>(l.tiles()),
        0);
    for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
      for (int t = 0; t < tiles_; ++t) {
        wider[static_cast<std::size_t>(c) *
                  static_cast<std::size_t>(l.tiles()) +
              static_cast<std::size_t>(t)] =
            tile_time_[static_cast<std::size_t>(c) *
                           static_cast<std::size_t>(tiles_) +
                       static_cast<std::size_t>(t)];
      }
    }
    tile_time_ = std::move(wider);
    tiles_ = l.tiles();
  }
  LabelAgg& agg = by_label_[label];
  ++agg.machines;
  for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
    const TimeCat cat = static_cast<TimeCat>(c);
    const Ticks tt = l.total(cat);
    time_[c] += tt;
    agg.time[c] += tt;
    const std::uint64_t cc = l.access_count_total(cat);
    counts_[c] += cc;
    agg.counts[c] += cc;
    for (int t = 0; t < l.tiles(); ++t) {
      tile_time_[static_cast<std::size_t>(c) *
                     static_cast<std::size_t>(tiles_) +
                 static_cast<std::size_t>(t)] += l.cell(cat, t);
    }
  }
  hops_v_ += l.hops_vertical();
  hops_h_ += l.hops_horizontal();
  dir_lookups_ += l.dir_lookups_total();
  cha_queue_ns_ += l.cha_queue_ns();
  cha_service_ns_ += l.cha_service_ns();
  ddr_busy_ns_ += l.ddr_busy_ns();
  mcdram_busy_ns_ += l.mcdram_busy_ns();
  for (int li = 0; li < static_cast<int>(TransLabel::kCount); ++li) {
    for (int f = 0; f < Ledger::kTransStates; ++f) {
      for (int t = 0; t < Ledger::kTransStates; ++t) {
        const std::uint64_t n =
            l.transition(static_cast<TransLabel>(li), f, t);
        if (n == 0) continue;
        std::string key = state_name(f);
        key += "->";
        key += state_name(t);
        key += ' ';
        key += to_string(static_cast<TransLabel>(li));
        transitions_[key] += n;
      }
    }
  }
  // Keep the critical path of the longest-running machine: it is the one a
  // collective figure's bound comes from. Ties keep the first merged (the
  // merge order under --jobs is nondeterministic, but ties across distinct
  // machines are vanishingly rare and the report labels its source).
  if (l.end_time_ns() > crit_end_ns_) {
    std::vector<PathLink> p = l.critical_path();
    if (!p.empty()) {
      crit_path_ = std::move(p);
      crit_end_ns_ = l.end_time_ns();
      crit_label_ = label;
    }
  }
}

std::uint64_t Sink::machines() const {
  std::lock_guard<std::mutex> lk(mu_);
  return machines_;
}

std::uint64_t Sink::tasks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tasks_;
}

Ticks Sink::total_ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

Ticks Sink::expected_ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return expected_;
}

Ticks Sink::unattributed_ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return time_[static_cast<int>(TimeCat::kUnattributed)];
}

Ticks Sink::time(TimeCat c) const {
  std::lock_guard<std::mutex> lk(mu_);
  return time_[static_cast<int>(c)];
}

std::uint64_t Sink::access_count(TimeCat c) const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_[static_cast<int>(c)];
}

double Sink::mean_access_ns(TimeCat c) const {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t n = counts_[static_cast<int>(c)];
  if (n == 0) return 0;
  return to_ns(time_[static_cast<int>(c)]) / static_cast<double>(n);
}

std::uint64_t Sink::hops_vertical() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hops_v_;
}

std::uint64_t Sink::hops_horizontal() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hops_h_;
}

std::vector<PathLink> Sink::critical_path() const {
  std::lock_guard<std::mutex> lk(mu_);
  return crit_path_;
}

void Sink::add_crossval(const std::string& term, double fitted_ns,
                        TimeCat cat) {
  std::lock_guard<std::mutex> lk(mu_);
  crossval_.push_back(CrossRow{term, fitted_ns, cat, 0, 0});
}

std::vector<Sink::CrossRow> Sink::crossval() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<CrossRow> rows = crossval_;
  for (CrossRow& r : rows) {
    const int c = static_cast<int>(r.cat);
    r.samples = counts_[c];
    r.measured_ns = r.samples == 0
                        ? 0
                        : to_ns(time_[c]) / static_cast<double>(r.samples);
  }
  return rows;
}

void Sink::dump_json(std::ostream& os, double band) const {
  // crossval() takes the lock itself; compute before locking.
  const std::vector<CrossRow> xval = crossval();
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\n  \"schema\": \"capmem.attr.v1\",\n";
  os << "  \"machines\": " << machines_ << ",\n";
  os << "  \"tasks\": " << tasks_ << ",\n";
  os << "  \"conservation\": {\n";
  os << "    \"total_ticks\": " << total_ << ",\n";
  os << "    \"expected_ticks\": " << expected_ << ",\n";
  os << "    \"unattributed_ticks\": "
     << time_[static_cast<int>(TimeCat::kUnattributed)] << ",\n";
  os << "    \"exact\": " << (total_ == expected_ ? "true" : "false")
     << "\n  },\n";
  os << "  \"time_ns\": {\n";
  for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
    os << "    \"" << to_string(static_cast<TimeCat>(c))
       << "\": " << to_ns(time_[c])
       << (c + 1 < static_cast<int>(TimeCat::kCount) ? ",\n" : "\n");
  }
  os << "  },\n";
  os << "  \"time_by_tile_ns\": {\n";
  for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
    os << "    \"" << to_string(static_cast<TimeCat>(c)) << "\": [";
    for (int t = 0; t < tiles_; ++t) {
      os << (t == 0 ? "" : ", ")
         << to_ns(tile_time_[static_cast<std::size_t>(c) *
                                 static_cast<std::size_t>(tiles_) +
                             static_cast<std::size_t>(t)]);
    }
    os << "]" << (c + 1 < static_cast<int>(TimeCat::kCount) ? ",\n" : "\n");
  }
  os << "  },\n";
  os << "  \"access_counts\": {\n";
  bool first = true;
  for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
    if (counts_[c] == 0) continue;
    os << (first ? "" : ",\n") << "    \""
       << to_string(static_cast<TimeCat>(c)) << "\": " << counts_[c];
    first = false;
  }
  os << "\n  },\n";
  os << "  \"access_mean_ns\": {\n";
  first = true;
  for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
    if (counts_[c] == 0) continue;
    os << (first ? "" : ",\n") << "    \""
       << to_string(static_cast<TimeCat>(c))
       << "\": " << to_ns(time_[c]) / static_cast<double>(counts_[c]);
    first = false;
  }
  os << "\n  },\n";
  os << "  \"traffic\": {\n";
  os << "    \"mesh_hops_vertical\": " << hops_v_ << ",\n";
  os << "    \"mesh_hops_horizontal\": " << hops_h_ << ",\n";
  os << "    \"dir_lookups\": " << dir_lookups_ << ",\n";
  os << "    \"cha_queue_ns\": " << cha_queue_ns_ << ",\n";
  os << "    \"cha_service_ns\": " << cha_service_ns_ << ",\n";
  os << "    \"channel_busy_ns\": {\"ddr\": " << ddr_busy_ns_
     << ", \"mcdram\": " << mcdram_busy_ns_ << "},\n";
  os << "    \"coherence_transitions\": {";
  first = true;
  for (const auto& [key, n] : transitions_) {
    os << (first ? "" : ", ") << "\"" << key << "\": " << n;
    first = false;
  }
  os << "}\n  },\n";
  os << "  \"by_config\": {\n";
  first = true;
  for (const auto& [label, agg] : by_label_) {
    os << (first ? "" : ",\n") << "    \"" << label
       << "\": {\"machines\": " << agg.machines << ", \"time_ns\": {";
    bool f2 = true;
    for (int c = 0; c < static_cast<int>(TimeCat::kCount); ++c) {
      if (agg.time[c] == 0) continue;
      os << (f2 ? "" : ", ") << "\"" << to_string(static_cast<TimeCat>(c))
         << "\": " << to_ns(agg.time[c]);
      f2 = false;
    }
    os << "}}";
    first = false;
  }
  os << "\n  },\n";
  os << "  \"crossval\": {\n    \"band\": " << band << ",\n    \"rows\": [";
  first = true;
  for (const CrossRow& r : xval) {
    const double ratio =
        r.measured_ns > 0 ? r.fitted_ns / r.measured_ns : 0;
    const bool within =
        r.samples > 0 && ratio >= 1 - band && ratio <= 1 + band;
    os << (first ? "\n" : ",\n") << "      {\"term\": \"" << r.term
       << "\", \"category\": \"" << to_string(r.cat)
       << "\", \"fitted_ns\": " << r.fitted_ns
       << ", \"measured_ns\": " << r.measured_ns
       << ", \"samples\": " << r.samples << ", \"ratio\": " << ratio
       << ", \"within_band\": " << (within ? "true" : "false") << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "]\n  },\n";
  os << "  \"critical_path\": {\n";
  os << "    \"machine\": \"" << crit_label_ << "\",\n";
  os << "    \"virt_ns\": " << (crit_end_ns_ < 0 ? 0.0 : crit_end_ns_)
     << ",\n";
  os << "    \"links\": [";
  first = true;
  for (const PathLink& l : crit_path_) {
    os << (first ? "\n" : ",\n") << "      {\"tid\": " << l.tid
       << ", \"tile\": " << l.tile << ", \"pred\": " << l.pred
       << ", \"pred_tile\": " << l.pred_tile << ", \"kind\": \"" << l.kind
       << "\", \"t_ns\": " << l.t << ", \"dur_ns\": " << l.dur
       << ", \"line\": " << l.key << "}";
    first = false;
  }
  os << (first ? "" : "\n    ") << "]\n  }\n}\n";
}

}  // namespace capmem::obs::attr
