// Virtual-time attribution: an exact, deterministic ledger that charges
// every simulated nanosecond to a category and every message to a traffic
// counter, plus a critical-path extractor for collectives.
//
// Attribution is an observer behind the same nullable-hook seam as tracing
// and metrics: a Machine owns one Ledger when MachineConfig::attr is set,
// the hot path pays one pointer test per charge site when detached, and the
// Ledger never steers the simulation.
//
// Exactness. `Nanos` is a double, and double addition is not associative,
// so "sum of categories == virtual time" cannot be checked in floating
// point. The ledger therefore accounts in integer picosecond ticks
// (to_ticks). Each charge site reports the task clock before and after a
// mutation; the ledger charges ticks(after) - ticks(before) and keeps a
// per-task mirror of the last charged-to clock. Per task the charges
// telescope, so
//
//     sum over (category, tile) cells
//       == sum over tasks of ticks(end) - ticks(spawn)      (exact, int64)
//
// holds by construction *if every clock-mutation site charges*. A site
// that forgets shows up as a nonzero kUnattributed cell (the mirror
// mismatch is charged there, keeping the identity intact while flagging
// the gap); tests assert kUnattributed == 0.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace capmem::obs::attr {

/// Integer picoseconds: the exact currency of the ledger.
using Ticks = std::int64_t;

inline Ticks to_ticks(double ns) {
  return static_cast<Ticks>(std::llround(ns * 1e3));
}

inline double to_ns(Ticks t) { return static_cast<double>(t) * 1e-3; }

/// Conserved task-time categories. Together they partition each task's
/// lifetime [spawn, engine end]; access categories are keyed by the level
/// that served the line (polling reads while parked are charged as
/// accesses at their serving level, the park interval as kParkWait).
enum class TimeCat : std::uint8_t {
  kCompute = 0,     // Advance: modelled core work between memory ops
  kTimerWait,       // AdvanceTo: waiting for an absolute virtual time
  kBarrierWait,     // sync_arrive: waiting for the last barrier arrival
  kParkWait,        // parked on a line until a writer's notify
  kL1,              // access served by the local L1
  kL2Tile,          // access served by the tile-shared L2
  kRemoteL2,        // access served cache-to-cache from a remote tile
  kDram,            // access served by a DDR channel
  kMcdram,          // access served by an MCDRAM channel (flat region)
  kMcCacheHit,      // access hitting the MCDRAM-as-cache
  kMcCacheMiss,     // access missing the MCDRAM-as-cache (DDR fill)
  kEndSlack,        // task finished before the engine: idle tail
  kUnattributed,    // mirror mismatch: a charge site was missed
  kCount,
};

const char* to_string(TimeCat c);

/// Coherence-transition labels (note_coherence's label vocabulary).
enum class TransLabel : std::uint8_t {
  kInvalidate = 0,
  kUpgrade,
  kDowngrade,
  kShare,
  kCount,
};

const char* to_string(TransLabel l);

/// One backward dependency link of the extracted critical path:
/// task `tid` (on `tile`) could not proceed before time `t` because of
/// `pred` (on `pred_tile`); it then ran for `dur` ns until the next link
/// (or its completion). `kind` is "wake" (line notify) or "sync"
/// (barrier release); `key` is the line address for wake links.
struct PathLink {
  int tid = -1;
  int pred = -1;
  int tile = 0;
  int pred_tile = 0;
  double t = 0;
  double dur = 0;
  const char* kind = "wake";
  std::uint64_t key = 0;
};

/// Per-Machine attribution ledger. Single-threaded (one Machine runs on
/// one host thread); merged into a shared Sink when the run finishes.
class Ledger {
 public:
  /// Width of the transition table: covers every sim::TileState value
  /// (coupled by enumerator position; attr never includes sim headers).
  static constexpr int kTransStates = 8;

  explicit Ledger(int tiles);

  // --- task lifecycle -----------------------------------------------------
  void on_spawn(int tid, double clock);
  void set_task_tile(int tid, int tile);

  /// Charge ticks(to) - ticks(from) of task `tid` to `cat`. `from` must be
  /// the task clock the previous charge left it at; any gap is charged to
  /// kUnattributed so conservation still holds while the miss is visible.
  void charge(int tid, TimeCat cat, double from, double to) {
    const Ticks t0 = to_ticks(from);
    const Ticks t1 = to_ticks(to);
    ensure_task(tid);
    const int tile = task_tile_[static_cast<std::size_t>(tid)];
    Ticks& m = mirror_[static_cast<std::size_t>(tid)];
    if (t0 != m) cells_[cell_idx(TimeCat::kUnattributed, tile)] += t0 - m;
    cells_[cell_idx(cat, tile)] += t1 - t0;
    m = t1;
  }

  // --- critical-path predecessor records ---------------------------------
  /// Task `woken` resumed at time `t` because `writer` made line `key`
  /// visible (writer < 0: unknown writer, recorded without a pred link).
  void on_wake_edge(int woken, int writer, std::uint64_t key, double t);
  /// Task `tid` left a barrier at `t`, released by last-arriver `releaser`.
  void on_sync_edge(int tid, int releaser, double t);

  // --- traffic (reported, not part of the conservation identity) ---------
  void count_access(int tile, TimeCat level_cat);
  void add_hops(int tile, int vertical, int horizontal);
  void add_dir_lookup(int home_tile, double queue_ns, double service_ns);
  void add_transition(int from_state, int to_state, const char* label);
  void set_channel_busy(double ddr_ns, double mcdram_ns);

  /// Close the ledger at engine end time: charges each task's idle tail to
  /// kEndSlack. Must be called exactly once, after which conserved() is
  /// meaningful.
  void finalize(double end_time_ns);

  // --- queries ------------------------------------------------------------
  int tiles() const { return tiles_; }
  int tasks() const { return static_cast<int>(mirror_.size()); }
  bool finalized() const { return finalized_; }
  double end_time_ns() const { return end_time_ns_; }

  Ticks cell(TimeCat c, int tile) const {
    return cells_[cell_idx(c, tile)];
  }
  Ticks total(TimeCat c) const;
  /// Sum of every (category, tile) cell.
  Ticks total_all() const;
  /// Sum over tasks of ticks(end) - ticks(spawn): what total_all() must
  /// equal exactly once finalized.
  Ticks expected_total() const;
  bool conserved() const {
    return finalized_ && total_all() == expected_total();
  }
  Ticks unattributed() const { return total(TimeCat::kUnattributed); }

  std::uint64_t access_count(TimeCat c, int tile) const {
    return counts_[cell_idx(c, tile)];
  }
  std::uint64_t access_count_total(TimeCat c) const;
  std::uint64_t hops_vertical() const { return hops_v_; }
  std::uint64_t hops_horizontal() const { return hops_h_; }
  std::uint64_t hop_vertical_tile(int t) const {
    return hop_v_tile_[static_cast<std::size_t>(t)];
  }
  std::uint64_t hop_horizontal_tile(int t) const {
    return hop_h_tile_[static_cast<std::size_t>(t)];
  }
  std::uint64_t dir_lookups(int tile) const {
    return dir_lookups_[static_cast<std::size_t>(tile)];
  }
  std::uint64_t dir_lookups_total() const;
  double cha_queue_ns() const { return cha_queue_ns_; }
  double cha_service_ns() const { return cha_service_ns_; }
  std::uint64_t transition(TransLabel l, int from, int to) const;
  double ddr_busy_ns() const { return ddr_busy_ns_; }
  double mcdram_busy_ns() const { return mcdram_busy_ns_; }

  /// Dominant dependency chain ending at the task with the largest final
  /// clock, in forward (source -> sink) order. Requires finalize().
  std::vector<PathLink> critical_path(std::size_t max_links = 64) const;

 private:
  struct Edge {
    int pred = -1;
    double t = 0;
    std::uint64_t key = 0;
    std::uint8_t kind = 0;  // 0 = wake, 1 = sync
  };

  std::size_t cell_idx(TimeCat c, int tile) const {
    return static_cast<std::size_t>(c) * static_cast<std::size_t>(tiles_) +
           static_cast<std::size_t>(tile);
  }
  void ensure_task(int tid);

  int tiles_;
  std::vector<Ticks> cells_;            // [cat][tile]
  std::vector<std::uint64_t> counts_;   // [cat][tile], access cats only
  std::vector<Ticks> mirror_;           // per task: last charged-to clock
  std::vector<Ticks> spawn_;            // per task: spawn clock
  std::vector<Ticks> final_;            // per task: clock before end slack
  std::vector<int> task_tile_;          // per task: home tile for cells
  std::vector<std::vector<Edge>> edges_;
  std::vector<std::uint64_t> hop_v_tile_, hop_h_tile_;
  std::uint64_t hops_v_ = 0, hops_h_ = 0;
  std::vector<std::uint64_t> dir_lookups_;  // per home tile
  double cha_queue_ns_ = 0, cha_service_ns_ = 0;
  // [label][from][to]; states are clamped to < kTransStates.
  std::uint64_t trans_[static_cast<int>(TransLabel::kCount)]
                      [kTransStates][kTransStates] = {};
  double ddr_busy_ns_ = 0, mcdram_busy_ns_ = 0;
  double end_time_ns_ = 0;
  bool finalized_ = false;
};

/// Thread-safe aggregator: Machines (possibly on exec::Pool workers) merge
/// their Ledgers here; the Session dumps one JSON report (capmem.attr.v1)
/// at the end. merge() enforces the conservation invariant — a
/// non-conserving ledger is a bug and throws CheckError.
class Sink {
 public:
  /// One model-vs-attribution cross-validation row: a fitted capability
  /// constant checked against the measured mean time of an access category.
  struct CrossRow {
    std::string term;
    double fitted_ns = 0;
    TimeCat cat = TimeCat::kL1;
    double measured_ns = 0;     // filled by crossval()
    std::uint64_t samples = 0;  // filled by crossval()
  };

  void merge(const Ledger& l, const std::string& label);

  std::uint64_t machines() const;
  std::uint64_t tasks() const;
  Ticks total_ticks() const;
  Ticks expected_ticks() const;
  Ticks unattributed_ticks() const;
  Ticks time(TimeCat c) const;
  std::uint64_t access_count(TimeCat c) const;
  /// Mean attributed ns per access for a level category (0 if unseen).
  double mean_access_ns(TimeCat c) const;
  std::uint64_t hops_vertical() const;
  std::uint64_t hops_horizontal() const;
  /// Critical path of the merged machine with the longest virtual time.
  std::vector<PathLink> critical_path() const;

  /// Register a fitted constant for the cross-validation section of the
  /// report; measured means are computed from merged cells at query time.
  void add_crossval(const std::string& term, double fitted_ns, TimeCat cat);
  std::vector<CrossRow> crossval() const;

  /// capmem.attr.v1 report. `band`: relative disagreement beyond which a
  /// cross-validation row is flagged.
  void dump_json(std::ostream& os, double band = 0.5) const;

 private:
  struct LabelAgg {
    std::uint64_t machines = 0;
    Ticks time[static_cast<int>(TimeCat::kCount)] = {};
    std::uint64_t counts[static_cast<int>(TimeCat::kCount)] = {};
  };

  mutable std::mutex mu_;
  std::uint64_t machines_ = 0;
  std::uint64_t tasks_ = 0;
  Ticks total_ = 0, expected_ = 0;
  Ticks time_[static_cast<int>(TimeCat::kCount)] = {};
  std::uint64_t counts_[static_cast<int>(TimeCat::kCount)] = {};
  std::vector<Ticks> tile_time_;          // [cat][tile], tiles = max merged
  int tiles_ = 0;
  std::uint64_t hops_v_ = 0, hops_h_ = 0;
  std::uint64_t dir_lookups_ = 0;
  double cha_queue_ns_ = 0, cha_service_ns_ = 0;
  std::map<std::string, std::uint64_t> transitions_;  // "S->M upgrade" -> n
  double ddr_busy_ns_ = 0, mcdram_busy_ns_ = 0;
  std::map<std::string, LabelAgg> by_label_;
  std::vector<PathLink> crit_path_;
  double crit_end_ns_ = -1;
  std::string crit_label_;
  std::vector<CrossRow> crossval_;
};

}  // namespace capmem::obs::attr
