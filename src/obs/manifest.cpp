#include "obs/manifest.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>

namespace capmem::obs {

namespace {

void append_str(std::string& s, const std::string& v) {
  s += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') {
      s += '\\';
      s += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      s += buf;
    } else {
      s += c;
    }
  }
  s += '"';
}

}  // namespace

void RunManifest::dump_json(std::ostream& os) const {
  std::string s;
  s.reserve(1024);
  s += "{\n  \"schema\": \"capmem.manifest.v1\",\n  \"program\": ";
  append_str(s, program);
  s += ",\n  \"args\": [";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) s += ", ";
    append_str(s, args[i]);
  }
  s += "],\n  \"config\": ";
  append_str(s, config);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"seed\": %llu,\n  \"jobs\": %d,\n  \"git\": ",
                static_cast<unsigned long long>(seed), jobs);
  s += buf;
  append_str(s, git);
  s += ",\n  \"started\": ";
  append_str(s, started);
  s += ",\n  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    s += i == 0 ? "\n    " : ",\n    ";
    s += "{\"name\": ";
    append_str(s, phases[i].name);
    std::snprintf(buf, sizeof(buf), ", \"wall_ms\": %.3f}",
                  phases[i].wall_ms);
    s += buf;
  }
  s += phases.empty() ? "]\n" : "\n  ]\n";
  s += "}\n";
  os << s;
}

std::string git_describe() {
#if defined(_WIN32)
  return "unknown";
#else
  std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), p) != nullptr) out += buf;
  const int rc = ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (rc != 0 || out.empty()) return "unknown";
  return out;
#endif
}

std::string iso8601_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

}  // namespace capmem::obs
