// Run manifests: every bench binary can write a small JSON document that
// makes its artifacts self-describing — the exact command line, machine
// configuration label, base seed, host jobs, the git revision the binary
// was run from, and per-phase host wall timings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace capmem::obs {

struct RunManifest {
  std::string program;             ///< argv[0]
  std::vector<std::string> args;   ///< argv[1..]
  std::string config;              ///< e.g. "knl7210 SNC4/flat"
  std::uint64_t seed = 0;
  int jobs = 1;
  std::string git = "unknown";     ///< `git describe --always --dirty`
  std::string started;             ///< ISO-8601 UTC start time

  struct Phase {
    std::string name;
    double wall_ms = 0;
  };
  std::vector<Phase> phases;

  /// Deterministically formatted JSON (modulo the host-time fields).
  void dump_json(std::ostream& os) const;
};

/// `git describe --always --dirty` of the current directory's repository,
/// or "unknown" when git is unavailable / not a repository.
std::string git_describe();

/// Current UTC time formatted as ISO-8601 (seconds resolution).
std::string iso8601_now();

}  // namespace capmem::obs
