#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace capmem::obs {

namespace {

int bucket_index(double v) {
  if (!(v > 0)) return 0;  // non-positive and NaN -> bucket 0
  int e = 0;
  std::frexp(v, &e);  // v = m * 2^e with m in [0.5, 1)
  const int idx = e + Log2Hist::kBias;
  if (idx < 0) return 0;
  if (idx >= Log2Hist::kBuckets) return Log2Hist::kBuckets - 1;
  return idx;
}

// Prints a double as JSON: finite shortest-roundtrip-ish, non-finite as 0.
void append_num(std::string& s, double v) {
  if (!std::isfinite(v)) {
    s += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  s += buf;
}

void append_key(std::string& s, const std::string& name) {
  s += '"';
  for (char c : name) {
    // Instrument names are identifiers; anything exotic is escaped hex-free
    // by replacement so the dump is always valid JSON.
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      s += '_';
    } else {
      s += c;
    }
  }
  s += '"';
}

}  // namespace

void Log2Hist::record(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  ++buckets[static_cast<std::size_t>(bucket_index(v))];
}

void Log2Hist::merge(const Log2Hist& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  count += o.count;
  sum += o.sum;
  for (int i = 0; i < kBuckets; ++i) {
    buckets[static_cast<std::size_t>(i)] +=
        o.buckets[static_cast<std::size_t>(i)];
  }
}

double Log2Hist::bucket_le(int i) { return std::ldexp(1.0, i - kBias); }

void Registry::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_[name] += delta;
}

void Registry::set(const std::string& name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_[name] = v;
}

void Registry::record(const std::string& name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  hists_[name].record(v);
}

void Registry::merge_hist(const std::string& name, const Log2Hist& h) {
  if (h.count == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  hists_[name].merge(h);
}

double Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

bool Registry::has_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.count(name) != 0;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Log2Hist Registry::hist(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = hists_.find(name);
  return it == hists_.end() ? Log2Hist{} : it->second;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.empty() && gauges_.empty() && hists_.empty();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

void Registry::dump_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string s;
  s.reserve(4096);
  s += "{\n  \"schema\": \"capmem.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    s += first ? "\n    " : ",\n    ";
    first = false;
    append_key(s, name);
    s += ": ";
    append_num(s, v);
  }
  s += first ? "},\n" : "\n  },\n";
  s += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    s += first ? "\n    " : ",\n    ";
    first = false;
    append_key(s, name);
    s += ": ";
    append_num(s, v);
  }
  s += first ? "},\n" : "\n  },\n";
  s += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists_) {
    s += first ? "\n    " : ",\n    ";
    first = false;
    append_key(s, name);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %llu, \"sum\": ",
                  static_cast<unsigned long long>(h.count));
    s += buf;
    append_num(s, h.sum);
    s += ", \"min\": ";
    append_num(s, h.min);
    s += ", \"max\": ";
    append_num(s, h.max);
    s += ", \"mean\": ";
    append_num(s, h.mean());
    s += ", \"buckets\": [";
    bool bfirst = true;
    for (int i = 0; i < Log2Hist::kBuckets; ++i) {
      const std::uint64_t c = h.buckets[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      if (!bfirst) s += ", ";
      bfirst = false;
      s += "{\"le\": ";
      append_num(s, Log2Hist::bucket_le(i));
      std::snprintf(buf, sizeof(buf), ", \"count\": %llu}",
                    static_cast<unsigned long long>(c));
      s += buf;
    }
    s += "]}";
  }
  s += first ? "}\n" : "\n  }\n";
  s += "}\n";
  os << s;
}

namespace {
std::atomic<Registry*> g_process_registry{nullptr};
}  // namespace

Registry* process_registry() {
  return g_process_registry.load(std::memory_order_acquire);
}

void set_process_registry(Registry* r) {
  g_process_registry.store(r, std::memory_order_release);
}

}  // namespace capmem::obs
