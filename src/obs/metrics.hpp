// Component metrics: counters, gauges and fixed-bucket log2 histograms.
//
// The hot-path contract: simulator components record into their *own*
// fixed-size Log2Hist / counter fields (no locks, no allocations), and a
// Machine merges them into the shared Registry once, at the end of its run.
// Registry operations take a mutex and use string keys — they are end-of-run
// and harness-level operations, never per-access ones.
//
// The Registry dump is a stable JSON document (keys sorted, deterministic
// formatting) written by --metrics-out.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>

namespace capmem::obs {

/// Power-of-two-bucketed histogram with a fixed footprint. Bucket `i` counts
/// values v with 2^(i-1-kBias) < v <= 2^(i-kBias); bucket 0 additionally
/// absorbs v <= 0. With kBias = 16 the buckets span ~1.5e-5 ns .. 1.4e14 ns,
/// comfortably covering queue delays through whole-run wall times.
struct Log2Hist {
  static constexpr int kBuckets = 64;
  static constexpr int kBias = 16;

  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  void record(double v);
  void merge(const Log2Hist& o);
  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Upper edge of bucket `i`.
  static double bucket_le(int i);
};

/// Named instrument store. Thread-safe: concurrent Machines (exec::Pool
/// workers) merge their end-of-run metrics under one mutex.
class Registry {
 public:
  /// Adds `delta` to counter `name` (created at 0).
  void add(const std::string& name, double delta);
  /// Sets gauge `name`; concurrent setters race benignly (last write wins),
  /// use counters or histograms for aggregation across machines.
  void set(const std::string& name, double v);
  /// Records one sample into histogram `name`.
  void record(const std::string& name, double v);
  /// Merges a locally accumulated histogram into histogram `name`.
  void merge_hist(const std::string& name, const Log2Hist& h);

  double counter(const std::string& name) const;  ///< 0 when absent
  bool has_counter(const std::string& name) const;
  double gauge(const std::string& name) const;    ///< 0 when absent
  /// Copy of histogram `name`; zero-count when absent.
  Log2Hist hist(const std::string& name) const;

  bool empty() const;
  void clear();

  /// Deterministic JSON dump (schema documented in DESIGN.md §Observability).
  void dump_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Log2Hist> hists_;
};

/// Process-wide registry used by host-side layers that have no MachineConfig
/// to carry hooks (exec::run_jobs worker/queue profiling). Null by default;
/// obs::Session installs its registry here for the --metrics-out lifetime.
Registry* process_registry();
void set_process_registry(Registry* r);

}  // namespace capmem::obs
