#include "obs/session.hpp"

#include <fstream>

#include "common/check.hpp"
#include "common/cli.hpp"

namespace capmem::obs {

Session::Session(Cli& cli, int argc, const char* const* argv) {
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write a Chrome trace-event JSON (Perfetto) here");
  const std::string trace_events = cli.get_string(
      "trace-events", "all",
      "comma list of traced categories: task, access, coherence, directory, "
      "noc, channel, all");
  metrics_path_ = cli.get_string(
      "metrics-out", "", "write component metrics as JSON here");
  attr_path_ = cli.get_string(
      "attr-out", "",
      "write the virtual-time attribution report (per-category time/traffic "
      "ledger, critical path, model cross-validation) as JSON here");
  manifest_path_ = cli.get_string(
      "manifest-out", "", "write the run manifest as JSON here");
  cli.get_log_level();

  manifest_.program = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) manifest_.args.emplace_back(argv[i]);
  manifest_.started = iso8601_now();

  if (!trace_out.empty()) {
    trace_ = std::make_unique<ChromeTraceWriter>(
        trace_out, parse_categories(trace_events));
  }
  metrics_enabled_ = !metrics_path_.empty();
  if (!attr_path_.empty()) attr_ = std::make_unique<attr::Sink>();
  const bool want_manifest = metrics_enabled_ || !manifest_path_.empty();
  if (want_manifest) manifest_.git = git_describe();
  if (metrics_enabled_) set_process_registry(&registry_);
}

Session::~Session() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; a failed flush loses the artifact only.
  }
}

TraceSink* Session::trace() { return trace_.get(); }

Registry* Session::metrics() {
  return metrics_enabled_ ? &registry_ : nullptr;
}

attr::Sink* Session::attr() { return attr_.get(); }

void Session::close_phase() {
  if (open_phase_.empty()) return;
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - phase_start_)
          .count();
  manifest_.phases.push_back({open_phase_, ms});
  open_phase_.clear();
}

void Session::phase(const std::string& name) {
  close_phase();
  open_phase_ = name;
  phase_start_ = std::chrono::steady_clock::now();
}

void Session::finish() {
  if (finished_) return;
  finished_ = true;
  close_phase();
  if (metrics_enabled_ && process_registry() == &registry_) {
    set_process_registry(nullptr);
  }
  if (trace_ != nullptr) trace_->flush();
  if (metrics_enabled_) {
    std::ofstream os(metrics_path_);
    CAPMEM_CHECK_MSG(os.good(),
                     "cannot open metrics file '" << metrics_path_ << "'");
    os << "{\n\"schema\": \"capmem.run.v1\",\n\"manifest\": ";
    manifest_.dump_json(os);
    os << ",\n\"metrics\": ";
    registry_.dump_json(os);
    os << "}\n";
  }
  if (attr_ != nullptr) {
    std::ofstream os(attr_path_);
    CAPMEM_CHECK_MSG(os.good(),
                     "cannot open attribution file '" << attr_path_ << "'");
    attr_->dump_json(os);
  }
  if (!manifest_path_.empty()) {
    std::ofstream os(manifest_path_);
    CAPMEM_CHECK_MSG(os.good(),
                     "cannot open manifest file '" << manifest_path_ << "'");
    manifest_.dump_json(os);
  }
}

}  // namespace capmem::obs
