// obs::Session — the one-stop observability frontend for bench binaries.
//
// A Session declares the shared observability flags on a Cli
// (--trace-out, --trace-events, --metrics-out, --manifest-out, --log-level),
// owns the resulting sinks, and writes the output files when finished:
//
//   Cli cli(argc, argv);
//   obs::Session obs(cli, argc, argv);
//   ... declare bench-specific flags ...
//   cli.finish();
//   cfg.trace = obs.trace();      // or bench::observe(obs, cfg)
//   cfg.metrics = obs.metrics();
//   obs.phase("sweep");
//   ... run ...
//   obs.finish();                 // also called by the destructor
//
// With none of the flags given every accessor returns nullptr and finish()
// writes nothing — the bench's stdout and virtual-time results are
// untouched either way (sinks observe, never steer).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/attr.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace capmem {
class Cli;
}  // namespace capmem

namespace capmem::obs {

class Session {
 public:
  /// Declares the observability options on `cli` and reads them. `argc` /
  /// `argv` are recorded in the run manifest. Also applies --log-level.
  Session(Cli& cli, int argc, const char* const* argv);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Trace sink for MachineConfig::trace; null without --trace-out.
  TraceSink* trace();
  /// Metrics registry for MachineConfig::metrics; null without
  /// --metrics-out. While non-null it is also installed as the process
  /// registry so exec::run_jobs records host-side profiling into it.
  Registry* metrics();
  /// Attribution sink for MachineConfig::attr; null without --attr-out.
  /// Thread-safe: Machines running on exec::Pool workers merge into it.
  attr::Sink* attr();

  /// True when any output flag was given.
  bool enabled() const {
    return trace_ != nullptr || metrics_enabled_ || attr_ != nullptr;
  }

  /// Manifest annotations (config label, base seed, host jobs).
  void set_config(const std::string& config) { manifest_.config = config; }
  void set_seed(std::uint64_t seed) { manifest_.seed = seed; }
  void set_jobs(int jobs) { manifest_.jobs = jobs; }

  /// Starts a named phase; the previous phase (if any) is closed and its
  /// host wall time recorded in the manifest.
  void phase(const std::string& name);

  /// Closes the current phase and writes all requested outputs (trace
  /// footer, metrics JSON with embedded manifest, standalone manifest).
  /// Idempotent; the destructor calls it.
  void finish();

  const RunManifest& manifest() const { return manifest_; }

 private:
  void close_phase();

  std::unique_ptr<ChromeTraceWriter> trace_;
  Registry registry_;
  std::unique_ptr<attr::Sink> attr_;
  std::string attr_path_;
  bool metrics_enabled_ = false;
  std::string metrics_path_;
  std::string manifest_path_;
  RunManifest manifest_;
  std::string open_phase_;
  std::chrono::steady_clock::time_point phase_start_{};
  bool finished_ = false;
};

}  // namespace capmem::obs
