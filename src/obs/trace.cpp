#include "obs/trace.hpp"

#include <cinttypes>
#include <sstream>
#include <string_view>

#include "common/check.hpp"

namespace capmem::obs {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskResume: return "task-resume";
    case EventKind::kTaskPark: return "task-park";
    case EventKind::kTaskUnpark: return "task-unpark";
    case EventKind::kTaskFinish: return "task-finish";
    case EventKind::kSyncRelease: return "sync-release";
    case EventKind::kLineAccess: return "line-access";
    case EventKind::kCoherence: return "coherence";
    case EventKind::kDirLookup: return "dir-lookup";
    case EventKind::kNocHops: return "noc-hops";
    case EventKind::kChannelXfer: return "channel-xfer";
    case EventKind::kCheckViolation: return "check-violation";
    case EventKind::kFaultRetry: return "fault-retry";
    case EventKind::kAbort: return "abort";
    case EventKind::kCritEdge: return "crit-edge";
  }
  return "?";
}

unsigned category_of(EventKind k) {
  switch (k) {
    case EventKind::kTaskResume:
    case EventKind::kTaskPark:
    case EventKind::kTaskUnpark:
    case EventKind::kTaskFinish:
    case EventKind::kSyncRelease: return kCatTask;
    case EventKind::kLineAccess: return kCatAccess;
    case EventKind::kCoherence: return kCatCoherence;
    case EventKind::kDirLookup: return kCatDirectory;
    case EventKind::kNocHops: return kCatNoc;
    case EventKind::kChannelXfer: return kCatChannel;
    case EventKind::kCheckViolation: return kCatCheck;
    case EventKind::kFaultRetry:
    case EventKind::kAbort: return kCatFault;
    case EventKind::kCritEdge: return kCatTask;
  }
  return kCatTask;
}

unsigned parse_categories(const std::string& csv) {
  unsigned mask = 0;
  std::istringstream is(csv);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (part.empty()) continue;
    if (part == "all") mask |= kCatAll;
    else if (part == "task") mask |= kCatTask;
    else if (part == "access") mask |= kCatAccess;
    else if (part == "coherence") mask |= kCatCoherence;
    else if (part == "directory") mask |= kCatDirectory;
    else if (part == "noc") mask |= kCatNoc;
    else if (part == "channel") mask |= kCatChannel;
    else if (part == "check") mask |= kCatCheck;
    else if (part == "fault") mask |= kCatFault;
    else {
      CAPMEM_CHECK_MSG(false, "unknown trace event category '"
                                  << part
                                  << "' (task, access, coherence, directory, "
                                     "noc, channel, check, fault, all)");
    }
  }
  CAPMEM_CHECK_MSG(mask != 0, "empty trace event category list");
  return mask;
}

namespace {

// Chrome trace process ids: one synthetic "process" per track family.
constexpr int kPidTasks = 1;     // per-task scheduling tracks
constexpr int kPidCores = 2;     // per-core line-access tracks
constexpr int kPidChannels = 3;  // per-channel resource tracks
constexpr int kPidDirectory = 4; // per-home-tile CHA tracks

// Escapes nothing: every string we emit is a static identifier (no quotes,
// no control characters) — enforced by the emitting call sites.
void append_common(std::string& s, const char* name, const char* cat, char ph,
                   int pid, long long track, double t_ns) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":%d,"
                "\"tid\":%lld,\"ts\":%.6f",
                name, cat, ph, pid, track, t_ns / 1000.0);
  s += buf;
}

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::string path, unsigned categories)
    : path_(std::move(path)), categories_(categories) {
  f_ = std::fopen(path_.c_str(), "wb");
  CAPMEM_CHECK_MSG(f_ != nullptr, "cannot open trace file '" << path_ << "'");
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f_);
  // Track-family names so Perfetto groups the tracks readably.
  const struct { int pid; const char* name; } procs[] = {
      {kPidTasks, "sim tasks"},
      {kPidCores, "sim cores"},
      {kPidChannels, "sim channels"},
      {kPidDirectory, "sim directory"},
  };
  bool first = true;
  for (const auto& p : procs) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", p.pid, p.name);
    std::fputs(buf, f_);
    first = false;
  }
}

ChromeTraceWriter::~ChromeTraceWriter() { flush(); }

void ChromeTraceWriter::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return;
  closed_ = true;
  std::fputs("\n]}\n", f_);
  std::fclose(f_);
  f_ = nullptr;
}

void ChromeTraceWriter::write_raw(const std::string& json) {
  std::fputs(",\n", f_);
  std::fputs(json.c_str(), f_);
  ++written_;
}

void ChromeTraceWriter::on_event(const TraceEvent& e) {
  if ((category_of(e.kind) & categories_) == 0) return;
  std::string s;
  s.reserve(192);
  char buf[160];
  switch (e.kind) {
    case EventKind::kTaskResume:
      append_common(s, "resume", "task", 'i', kPidTasks, e.tid, e.t);
      s += ",\"s\":\"t\"}";
      break;
    case EventKind::kTaskPark:
      append_common(s, "park", "task", 'i', kPidTasks, e.tid, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"t\",\"args\":{\"line\":%" PRIu64 "}}", e.line);
      s += buf;
      break;
    case EventKind::kTaskUnpark:
      // A complete slice spanning the parked interval on the task's track.
      append_common(s, "parked", "task", 'X', kPidTasks, e.tid, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"dur\":%.6f,\"args\":{\"line\":%" PRIu64 "}}",
                    e.dur / 1000.0, e.line);
      s += buf;
      break;
    case EventKind::kTaskFinish:
      append_common(s, "finish", "task", 'i', kPidTasks, e.tid, e.t);
      s += ",\"s\":\"t\"}";
      break;
    case EventKind::kSyncRelease:
      append_common(s, "sync", "task", 'i', kPidTasks, 0, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"g\",\"args\":{\"arrivals\":%d}}", e.a);
      s += buf;
      break;
    case EventKind::kLineAccess:
      append_common(s, e.label != nullptr ? e.label : "access", "access", 'X',
                    kPidCores, e.core, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"dur\":%.6f,\"args\":{\"tid\":%d,\"tile\":%d,"
                    "\"line\":%" PRIu64 "}}",
                    e.dur / 1000.0, e.tid, e.tile, e.line);
      s += buf;
      break;
    case EventKind::kCoherence:
      append_common(s, e.label != nullptr ? e.label : "coherence", "coherence",
                    'i', kPidCores, e.core, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"t\",\"args\":{\"tid\":%d,\"tile\":%d,"
                    "\"line\":%" PRIu64 ",\"from\":%d,\"to\":%d}}",
                    e.tid, e.tile, e.line, e.a, e.b);
      s += buf;
      break;
    case EventKind::kDirLookup:
      append_common(s, "cha", "directory", 'X', kPidDirectory, e.a, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"dur\":%.6f,\"args\":{\"tid\":%d,\"line\":%" PRIu64
                    ",\"queue_ns\":%.3f}}",
                    e.dur / 1000.0, e.tid, e.line, e.queue_ns);
      s += buf;
      break;
    case EventKind::kNocHops:
      append_common(s, "hops", "noc", 'i', kPidCores, e.core, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"t\",\"args\":{\"tid\":%d,\"hops\":%d}}", e.tid,
                    e.a);
      s += buf;
      break;
    case EventKind::kChannelXfer: {
      // Channel tracks: DRAM channels first, MCDRAM offset by 100 so the
      // two pools never collide on one track id.
      const bool mcdram =
          e.label != nullptr && std::string_view(e.label) == "mcdram";
      append_common(s, e.label != nullptr ? e.label : "xfer", "channel", 'X',
                    kPidChannels, (mcdram ? 100 : 0) + e.a, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"dur\":%.6f,\"args\":{\"channel\":%d,"
                    "\"queue_ns\":%.3f}}",
                    e.dur / 1000.0, e.a, e.queue_ns);
      s += buf;
      break;
    }
    case EventKind::kCheckViolation:
      // Divergence marks land on the offending core's track so the
      // surrounding access/coherence context is one click away.
      append_common(s, e.label != nullptr ? e.label : "divergence", "check",
                    'i', kPidCores, e.core, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"g\",\"args\":{\"tid\":%d,\"tile\":%d,"
                    "\"line\":%" PRIu64 "}}",
                    e.tid, e.tile, e.line);
      s += buf;
      break;
    case EventKind::kFaultRetry:
      append_common(s, e.label != nullptr ? e.label : "fault-retry", "fault",
                    'i', kPidCores, e.core, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"s\":\"t\",\"args\":{\"tid\":%d,\"line\":%" PRIu64
                    ",\"retries\":%d}}",
                    e.tid, e.line, e.a);
      s += buf;
      break;
    case EventKind::kAbort:
      // Global mark on the stuck task's track: the whole run ends here.
      append_common(s, e.label != nullptr ? e.label : "abort", "fault", 'i',
                    kPidTasks, e.tid, e.t);
      std::snprintf(buf, sizeof(buf), ",\"s\":\"g\",\"args\":{\"tid\":%d}}",
                    e.tid);
      s += buf;
      break;
    case EventKind::kCritEdge: {
      // One flow-event pair per critical-path link: an "s" record on the
      // predecessor's task track and a matching "f" on the waiter's, sharing
      // the link ordinal as flow id. Perfetto draws them as arrows.
      append_common(s, e.label != nullptr ? e.label : "crit", "task", 's',
                    kPidTasks, e.a, e.t);
      std::snprintf(buf, sizeof(buf),
                    ",\"id\":%d,\"args\":{\"line\":%" PRIu64 "}}", e.b,
                    e.line);
      s += buf;
      s += ",\n";
      append_common(s, e.label != nullptr ? e.label : "crit", "task", 'f',
                    kPidTasks, e.tid, e.t);
      std::snprintf(buf, sizeof(buf), ",\"bp\":\"e\",\"id\":%d}", e.b);
      s += buf;
      break;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return;
  write_raw(s);
}

}  // namespace capmem::obs
