// Virtual-time event tracing: the observability seam of the simulator.
//
// The simulator's components (engine, memory system, channel pools) emit
// typed TraceEvents through a nullable TraceSink pointer. The disabled path
// is a single branch on that pointer — default runs execute zero tracing
// code beyond it, so virtual-time results are byte-identical with tracing
// on or off (sinks observe, never steer).
//
// ChromeTraceWriter serializes events to Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing): one track per simulated task, one per
// core for line accesses, and one resource track per memory channel. Events
// are streamed to disk as they arrive, so trace memory stays O(1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace capmem::obs {

/// Typed events of the simulator's virtual-time taxonomy.
enum class EventKind : std::uint8_t {
  kTaskResume,   ///< scheduler resumed task `tid` at t
  kTaskPark,     ///< task parked on a wait key (spin-wait)
  kTaskUnpark,   ///< task woken; t = park time, dur = parked interval
  kTaskFinish,   ///< task coroutine completed
  kSyncRelease,  ///< engine barrier released (a = arrivals)
  kLineAccess,   ///< timed line access; dur = latency, label = serving level
  kCoherence,    ///< directory state transition; a = from, b = to TileState
  kDirLookup,    ///< home-CHA request; a = home tile, queue_ns = CHA queue
  kNocHops,      ///< mesh traversal; a = hop count of the request path
  kChannelXfer,  ///< channel reservation; a = channel, dur = service,
                 ///<   queue_ns = controller queue delay, label = pool name
  kCheckViolation,  ///< capmem::check divergence; label = checker message
  kFaultRetry,   ///< fault-injection retry; label = fault site, a = retries
  kAbort,        ///< engine SimAbort; tid = stuck task, label = abort kind
  kCritEdge,     ///< critical-path dependency; tid = waiter, a = predecessor,
                 ///<   b = link ordinal (flow id), label = "wake" / "sync"
};

const char* to_string(EventKind k);

/// Category bits for trace filtering (--trace-events).
enum : unsigned {
  kCatTask = 1u << 0,
  kCatAccess = 1u << 1,
  kCatCoherence = 1u << 2,
  kCatDirectory = 1u << 3,
  kCatNoc = 1u << 4,
  kCatChannel = 1u << 5,
  kCatCheck = 1u << 6,
  kCatFault = 1u << 7,
  kCatAll = (1u << 8) - 1,
};
unsigned category_of(EventKind k);
/// Parses a comma list of {task,access,coherence,directory,noc,channel,all};
/// throws CheckError on unknown names.
unsigned parse_categories(const std::string& csv);

/// One event. Fields beyond (kind, t) are kind-specific; unused ones stay at
/// their defaults. `label` must point at a string with static storage
/// duration (level names, state names, pool names) — sinks may keep it.
struct TraceEvent {
  EventKind kind = EventKind::kTaskResume;
  double t = 0;                  ///< virtual nanoseconds (start)
  double dur = 0;                ///< duration in virtual ns (0 = instant)
  int tid = -1;                  ///< simulated thread id
  int core = -1;
  int tile = -1;
  std::uint64_t line = 0;        ///< cache-line index, when line-related
  int a = -1;                    ///< kind-specific (state, channel, hops...)
  int b = -1;
  double queue_ns = 0;           ///< queueing delay component, when known
  const char* label = nullptr;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called from simulator hot paths (and, under --jobs N, from concurrent
  /// host threads): implementations must be thread-safe and must not
  /// interact with simulation state.
  virtual void on_event(const TraceEvent& e) = 0;
};

/// Discards every event. An *enabled* sink with zero effect — used by tests
/// to assert that observation never perturbs virtual time.
class NullSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
};

/// Streams events to a Chrome trace-event JSON file. Thread-safe; events
/// from concurrently running Machines interleave in arrival order (each
/// event carries its own virtual timestamp, so viewers re-sort).
class ChromeTraceWriter final : public TraceSink {
 public:
  /// Opens `path` for writing and emits the JSON preamble plus track
  /// metadata. Throws CheckError when the file cannot be opened.
  explicit ChromeTraceWriter(std::string path, unsigned categories = kCatAll);
  ~ChromeTraceWriter() override;

  void on_event(const TraceEvent& e) override;

  /// Closes the JSON document and the file. Idempotent; the destructor
  /// calls it too.
  void flush();

  std::uint64_t events_written() const { return written_; }
  const std::string& path() const { return path_; }

 private:
  void write_raw(const std::string& json);  // one event object, unlocked

  std::mutex mu_;
  std::string path_;
  std::FILE* f_ = nullptr;
  unsigned categories_ = kCatAll;
  std::uint64_t written_ = 0;
  bool closed_ = false;
};

}  // namespace capmem::obs
