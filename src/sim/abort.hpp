// Structured, catchable simulation aborts and the watchdog budgets that
// raise them.
//
// The engine used to have exactly one failure mode — a deadlock report —
// and a pathological schedule that never deadlocks (a livelock spinning on
// a never-written flag line, or a runaway op storm) would hang the process.
// WatchdogBudget bounds a run in scheduler steps, virtual time, and park
// age; exceeding a budget raises SimAbort with the same stuck-task
// diagnostics the deadlock report carries. SimAbort derives from CheckError
// (existing catch sites keep working) and implements ClassifiedFailure so
// the exec layer can decide retry-vs-quarantine without knowing about the
// simulator.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/units.hpp"

namespace capmem::sim {

/// Why the engine gave up.
enum class AbortKind {
  kDeadlock,        ///< no runnable task, live tasks remain
  kLivelock,        ///< step or park-age budget exceeded while still running
  kBudgetExceeded,  ///< virtual-time budget exceeded
};

inline const char* to_string(AbortKind k) {
  switch (k) {
    case AbortKind::kDeadlock: return "deadlock";
    case AbortKind::kLivelock: return "livelock";
    case AbortKind::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

/// Engine watchdog budgets; 0 means unlimited. Checking costs one
/// predictable branch per scheduler step when nothing is armed, so default
/// runs stay byte-identical.
struct WatchdogBudget {
  std::uint64_t max_steps = 0;  ///< scheduler steps before kLivelock
  Nanos max_virtual_ns = 0;     ///< virtual time before kBudgetExceeded
  Nanos max_park_age_ns = 0;    ///< oldest parked waiter before kLivelock

  bool armed() const {
    return max_steps != 0 || max_virtual_ns != 0 || max_park_age_ns != 0;
  }
};

/// Raised by Engine::run() instead of hanging or dying: deadlocks, tripped
/// watchdog budgets. Carries the diagnostics the text report is built from
/// so harnesses can triage without parsing the message.
class SimAbort : public CheckError, public ClassifiedFailure {
 public:
  SimAbort(AbortKind kind, const std::string& what, Nanos at,
           std::uint64_t steps, int stuck_tid, Nanos stuck_park_age)
      : CheckError(what),
        kind_(kind),
        at_(at),
        steps_(steps),
        stuck_tid_(stuck_tid),
        stuck_park_age_(stuck_park_age) {}

  AbortKind kind() const { return kind_; }
  Nanos at() const { return at_; }                ///< virtual time of abort
  std::uint64_t steps() const { return steps_; }  ///< scheduler steps run
  /// Longest-parked task at abort time, -1 when nothing was parked.
  int stuck_tid() const { return stuck_tid_; }
  /// How long that task had been parked (virtual ns, >= 0).
  Nanos stuck_park_age() const { return stuck_park_age_; }

  /// Deadlocks reproduce under the same seed; budget trips are timeouts.
  FailureClass failure_class() const override {
    return kind_ == AbortKind::kDeadlock ? FailureClass::kDeterministic
                                         : FailureClass::kTimeout;
  }

 private:
  AbortKind kind_;
  Nanos at_;
  std::uint64_t steps_;
  int stuck_tid_;
  Nanos stuck_park_age_;
};

}  // namespace capmem::sim
