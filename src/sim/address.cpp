#include "sim/address.hpp"

namespace capmem::sim {

Addr AddressSpace::alloc(std::string name, std::uint64_t bytes,
                         Placement place, bool with_data) {
  CAPMEM_CHECK_MSG(bytes > 0, "zero-sized allocation '" << name << "'");
  const std::uint64_t rounded = lines_for(bytes) * kLineBytes;
  Slot slot;
  slot.info.base = next_;
  slot.info.bytes = rounded;
  slot.info.place = place;
  slot.info.name = std::move(name);
  slot.info.has_data = with_data;
  if (with_data) slot.storage.assign(rounded, std::byte{0});
  const Addr base = next_;
  next_ += rounded + kLineBytes;  // guard line between allocations
  allocs_.emplace(base, std::move(slot));
  return base;
}

void AddressSpace::free(Addr base) {
  const auto it = allocs_.find(base);
  CAPMEM_CHECK_MSG(it != allocs_.end(), "free of unknown base " << base);
  allocs_.erase(it);
}

bool AddressSpace::valid(Addr a) const {
  auto it = allocs_.upper_bound(a);
  if (it == allocs_.begin()) return false;
  --it;
  return it->second.info.contains(a);
}

const Allocation& AddressSpace::find(Addr a) const {
  auto it = allocs_.upper_bound(a);
  CAPMEM_CHECK_MSG(it != allocs_.begin(), "wild address " << a);
  --it;
  CAPMEM_CHECK_MSG(it->second.info.contains(a),
                   "address " << a << " past end of allocation '"
                              << it->second.info.name << "'");
  return it->second.info;
}

std::byte* AddressSpace::data(Addr a, std::uint64_t bytes) {
  auto it = allocs_.upper_bound(a);
  CAPMEM_CHECK_MSG(it != allocs_.begin(), "wild address " << a);
  --it;
  Slot& slot = it->second;
  CAPMEM_CHECK_MSG(slot.info.contains(a) && a + bytes <= slot.info.end(),
                   "access [" << a << "," << a + bytes
                              << ") crosses allocation '" << slot.info.name
                              << "'");
  CAPMEM_CHECK_MSG(slot.info.has_data,
                   "data access to dataless allocation '" << slot.info.name
                                                          << "'");
  return slot.storage.data() + (a - slot.info.base);
}

const std::byte* AddressSpace::data(Addr a, std::uint64_t bytes) const {
  return const_cast<AddressSpace*>(this)->data(a, bytes);
}

}  // namespace capmem::sim
