#include "sim/address.hpp"

namespace capmem::sim {

Addr AddressSpace::alloc(std::string name, std::uint64_t bytes,
                         Placement place, bool with_data) {
  CAPMEM_CHECK_MSG(bytes > 0, "zero-sized allocation '" << name << "'");
  const std::uint64_t rounded = lines_for(bytes) * kLineBytes;
  Slot slot;
  slot.info.base = next_;
  slot.info.bytes = rounded;
  slot.info.place = place;
  slot.info.name = std::move(name);
  slot.info.has_data = with_data;
  if (with_data) slot.storage.assign(rounded, std::byte{0});
  const Addr base = next_;
  next_ += rounded + kLineBytes;  // guard line between allocations
  allocs_.emplace(base, std::move(slot));
  return base;
}

void AddressSpace::free(Addr base) {
  const auto it = allocs_.find(base);
  CAPMEM_CHECK_MSG(it != allocs_.end(), "free of unknown base " << base);
  if (last_ == &it->second) last_ = nullptr;
  allocs_.erase(it);
}

bool AddressSpace::valid(Addr a) const {
  return const_cast<AddressSpace*>(this)->lookup_slot(a) != nullptr;
}

const Allocation& AddressSpace::find(Addr a) const {
  Slot* slot = const_cast<AddressSpace*>(this)->lookup_slot(a);
  CAPMEM_CHECK_MSG(slot != nullptr, "wild address " << a);
  return slot->info;
}

std::byte* AddressSpace::data(Addr a, std::uint64_t bytes) {
  Slot* slot = lookup_slot(a);
  CAPMEM_CHECK_MSG(slot != nullptr, "wild address " << a);
  CAPMEM_CHECK_MSG(a + bytes <= slot->info.end(),
                   "access [" << a << "," << a + bytes
                              << ") crosses allocation '" << slot->info.name
                              << "'");
  CAPMEM_CHECK_MSG(slot->info.has_data,
                   "data access to dataless allocation '" << slot->info.name
                                                          << "'");
  return slot->storage.data() + (a - slot->info.base);
}

const std::byte* AddressSpace::data(Addr a, std::uint64_t bytes) const {
  return const_cast<AddressSpace*>(this)->data(a, bytes);
}

}  // namespace capmem::sim
