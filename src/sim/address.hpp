// Simulated address space and allocation table.
//
// Buffers are allocated out of a single 64-bit virtual space with a bump
// allocator. Each allocation carries its memory-placement policy (which
// physical memory should back it, and the NUMA domain in SNC modes) and,
// optionally, real backing bytes: collectives and the sort operate on actual
// data; pure bandwidth experiments allocate "dataless" buffers so multi-GB
// footprints stay cheap on the host.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/config.hpp"

namespace capmem::sim {

/// Simulated virtual address.
using Addr = std::uint64_t;
/// Cache-line index (Addr / 64).
using Line = std::uint64_t;

inline Line line_of(Addr a) { return a / kLineBytes; }
inline Addr line_base(Addr a) { return a & ~(kLineBytes - 1); }

/// Where an allocation should live.
struct Placement {
  /// Physical memory to use. In cache mode everything is DDR-backed (the
  /// MCDRAM is a memory-side cache); asking for MCDRAM there is an error.
  MemKind kind = MemKind::kDDR;
  /// NUMA domain for SNC modes: nullopt = interleave across all domains
  /// (the paper's benchmarks are "not NUMA-aware" in SNC), otherwise the
  /// contiguous range of the given domain is used.
  std::optional<int> domain;
};

/// One allocation.
struct Allocation {
  Addr base = 0;
  std::uint64_t bytes = 0;
  Placement place;
  std::string name;
  bool has_data = false;

  Addr end() const { return base + bytes; }
  bool contains(Addr a) const { return a >= base && a < end(); }
};

/// Allocation table plus backing storage for data-carrying buffers.
class AddressSpace {
 public:
  AddressSpace() = default;

  /// Allocates `bytes` (rounded up to whole lines), line-aligned.
  Addr alloc(std::string name, std::uint64_t bytes, Placement place,
             bool with_data);

  /// Releases an allocation (tests use this; the table never reuses VA).
  void free(Addr base);

  /// Allocation covering `a`; throws on wild addresses.
  const Allocation& find(Addr a) const;
  bool valid(Addr a) const;

  /// Raw data access for data-carrying allocations. `bytes` must stay
  /// inside one allocation.
  std::byte* data(Addr a, std::uint64_t bytes);
  const std::byte* data(Addr a, std::uint64_t bytes) const;

  template <typename T>
  T load(Addr a) const {
    T v;
    __builtin_memcpy(&v, data(a, sizeof(T)), sizeof(T));
    return v;
  }
  template <typename T>
  void store(Addr a, const T& v) {
    __builtin_memcpy(data(a, sizeof(T)), &v, sizeof(T));
  }

  std::uint64_t total_allocated() const { return next_ - kBase; }
  std::size_t allocation_count() const { return allocs_.size(); }

 private:
  struct Slot {
    Allocation info;
    std::vector<std::byte> storage;  // empty when !has_data
  };
  /// Slot covering `a`, or nullptr. Caches the last hit: accesses cluster
  /// heavily within one buffer, so most lookups skip the tree walk
  /// (map nodes are stable, the cache is only dropped on free()).
  Slot* lookup_slot(Addr a) {
    if (last_ != nullptr && last_->info.contains(a)) return last_;
    auto it = allocs_.upper_bound(a);
    if (it == allocs_.begin()) return nullptr;
    --it;
    if (!it->second.info.contains(a)) return nullptr;
    last_ = &it->second;
    return last_;
  }

  static constexpr Addr kBase = 0x10000;  // keep 0 invalid
  Addr next_ = kBase;
  std::map<Addr, Slot> allocs_;  // keyed by base
  Slot* last_ = nullptr;
};

}  // namespace capmem::sim
