#include "sim/cache.hpp"

#include <algorithm>

namespace capmem::sim {

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes, int ways)
    : ways_(ways) {
  CAPMEM_CHECK(ways > 0);
  const std::uint64_t per_way = kLineBytes * static_cast<std::uint64_t>(ways);
  CAPMEM_CHECK_MSG(capacity_bytes % per_way == 0,
                   "capacity must be a multiple of ways*64");
  const std::uint64_t nsets = capacity_bytes / per_way;
  CAPMEM_CHECK(nsets > 0);
  sets_.resize(nsets);
  for (auto& s : sets_) s.reserve(static_cast<std::size_t>(ways));
}

bool SetAssocCache::lookup(Line line) {
  auto& set = set_of(line);
  for (auto& e : set) {
    if (e.line == line) {
      e.stamp = ++clock_;
      return true;
    }
  }
  return false;
}

bool SetAssocCache::contains(Line line) const {
  const auto& set = set_of(line);
  for (const auto& e : set)
    if (e.line == line) return true;
  return false;
}

std::optional<Line> SetAssocCache::insert(Line line) {
  auto& set = set_of(line);
  CAPMEM_DCHECK(!contains(line));
  if (static_cast<int>(set.size()) < ways_) {
    set.push_back(Entry{line, ++clock_});
    return std::nullopt;
  }
  auto victim = std::min_element(
      set.begin(), set.end(),
      [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
  const Line evicted = victim->line;
  *victim = Entry{line, ++clock_};
  return evicted;
}

bool SetAssocCache::erase(Line line) {
  auto& set = set_of(line);
  for (auto it = set.begin(); it != set.end(); ++it) {
    if (it->line == line) {
      set.erase(it);
      return true;
    }
  }
  return false;
}

void SetAssocCache::clear() {
  for (auto& s : sets_) s.clear();
}

std::uint64_t SetAssocCache::resident_lines() const {
  std::uint64_t n = 0;
  for (const auto& s : sets_) n += s.size();
  return n;
}

}  // namespace capmem::sim
