#include "sim/cache.hpp"

namespace capmem::sim {

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes, int ways)
    : ways_(ways) {
  CAPMEM_CHECK(ways > 0);
  const std::uint64_t per_way = kLineBytes * static_cast<std::uint64_t>(ways);
  CAPMEM_CHECK_MSG(capacity_bytes % per_way == 0,
                   "capacity must be a multiple of ways*64");
  nsets_ = capacity_bytes / per_way;
  CAPMEM_CHECK(nsets_ > 0);
  if ((nsets_ & (nsets_ - 1)) == 0) mask_ = nsets_ - 1;
  lines_.resize(nsets_ * static_cast<std::uint64_t>(ways));
  stamps_.resize(nsets_ * static_cast<std::uint64_t>(ways));
}

}  // namespace capmem::sim
