// Set-associative tag array with LRU replacement, used for the per-core L1s
// and the per-tile L2s. Tracks presence only — data lives in the address
// space; coherence state lives in the directory.
//
// Storage is two contiguous (nsets * ways) planes — line tags and LRU
// stamps — instead of a per-set heap vector; stamp == 0 marks an empty way
// (the LRU clock starts at 1). Tags and stamps are split so presence scans
// (contains/erase, the miss-heavy operations) touch half the bytes of an
// interleaved layout. The accessors are defined inline: they sit on the
// per-access hot path of MemSystem and are called tens of millions of times
// per simulated second.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/address.hpp"

namespace capmem::sim {

class SetAssocCache {
 public:
  /// `capacity_bytes` must be a multiple of ways*64.
  SetAssocCache(std::uint64_t capacity_bytes, int ways);

  /// True when `line` is resident; touching updates LRU order.
  bool lookup(Line line) {
    const std::size_t base = set_base(line);
    for (int w = 0; w < ways_; ++w) {
      if (stamps_[base + w] != 0 && lines_[base + w] == line) {
        stamps_[base + w] = ++clock_;
        return true;
      }
    }
    return false;
  }

  /// Presence test without LRU update.
  bool contains(Line line) const {
    const std::size_t base = set_base(line);
    for (int w = 0; w < ways_; ++w) {
      if (stamps_[base + w] != 0 && lines_[base + w] == line) return true;
    }
    return false;
  }

  /// Inserts `line` (must not be resident); returns the evicted line, if
  /// the target set was full.
  std::optional<Line> insert(Line line) {
    const std::size_t base = set_base(line);
    CAPMEM_DCHECK(!contains(line));
    // One pass: first empty way, else the LRU victim (stamps are unique, so
    // the minimum is unambiguous).
    int empty = -1;
    int victim = 0;
    for (int w = 0; w < ways_; ++w) {
      if (stamps_[base + w] == 0) {
        empty = w;
        break;
      }
      if (stamps_[base + w] < stamps_[base + victim]) victim = w;
    }
    if (empty >= 0) {
      lines_[base + empty] = line;
      stamps_[base + empty] = ++clock_;
      ++resident_;
      return std::nullopt;
    }
    const Line evicted = lines_[base + victim];
    lines_[base + victim] = line;
    stamps_[base + victim] = ++clock_;
    return evicted;
  }

  /// Removes `line` if resident; returns whether it was.
  bool erase(Line line) {
    const std::size_t base = set_base(line);
    for (int w = 0; w < ways_; ++w) {
      if (stamps_[base + w] != 0 && lines_[base + w] == line) {
        stamps_[base + w] = 0;
        lines_[base + w] = 0;
        --resident_;
        return true;
      }
    }
    return false;
  }

  /// Drops everything (used by flush-style benchmark resets).
  void clear() {
    std::fill(lines_.begin(), lines_.end(), 0);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    resident_ = 0;
  }

  int sets() const { return static_cast<int>(nsets_); }
  int ways() const { return ways_; }
  std::uint64_t resident_lines() const { return resident_; }

  /// Visits every resident line; order unspecified. Used by the
  /// capmem::check residency sweeps (tag-array contents vs directory).
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (std::size_t i = 0; i < stamps_.size(); ++i) {
      if (stamps_[i] != 0) fn(lines_[i]);
    }
  }

 private:
  std::size_t set_index(Line line) const {
    // nsets is a power of two for every real configuration; scaled test
    // machines may produce odd counts, hence the modulo fallback.
    return mask_ != 0 ? (line & mask_) : (line % nsets_);
  }
  std::size_t set_base(Line line) const {
    return set_index(line) * static_cast<std::size_t>(ways_);
  }

  int ways_;
  std::uint64_t nsets_;
  std::uint64_t mask_ = 0;  // nsets - 1 when nsets is a power of two
  std::uint64_t clock_ = 0;
  std::uint64_t resident_ = 0;
  std::vector<Line> lines_;           // tag plane
  std::vector<std::uint64_t> stamps_;  // LRU plane; 0 = empty way
};

}  // namespace capmem::sim
