// Set-associative tag array with LRU replacement, used for the per-core L1s
// and the per-tile L2s. Tracks presence only — data lives in the address
// space; coherence state lives in the directory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/address.hpp"

namespace capmem::sim {

class SetAssocCache {
 public:
  /// `capacity_bytes` must be a multiple of ways*64.
  SetAssocCache(std::uint64_t capacity_bytes, int ways);

  /// True when `line` is resident; touching updates LRU order.
  bool lookup(Line line);
  /// Presence test without LRU update.
  bool contains(Line line) const;

  /// Inserts `line` (must not be resident); returns the evicted line, if
  /// the target set was full.
  std::optional<Line> insert(Line line);

  /// Removes `line` if resident; returns whether it was.
  bool erase(Line line);

  /// Drops everything (used by flush-style benchmark resets).
  void clear();

  int sets() const { return static_cast<int>(sets_.size()); }
  int ways() const { return ways_; }
  std::uint64_t resident_lines() const;

  /// Visits every resident line; order unspecified. Used by the
  /// capmem::check residency sweeps (tag-array contents vs directory).
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const auto& set : sets_) {
      for (const Entry& e : set) fn(e.line);
    }
  }

 private:
  struct Entry {
    Line line = 0;
    std::uint64_t stamp = 0;  // higher = more recently used
  };
  std::vector<Entry>& set_of(Line line) {
    return sets_[line % sets_.size()];
  }
  const std::vector<Entry>& set_of(Line line) const {
    return sets_[line % sets_.size()];
  }

  int ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::vector<Entry>> sets_;
};

}  // namespace capmem::sim
