#include "sim/coherence.hpp"

#include <bit>

#include "common/check.hpp"

namespace capmem::sim {

const char* to_string(TileState s) {
  switch (s) {
    case TileState::kI: return "I";
    case TileState::kS: return "S";
    case TileState::kE: return "E";
    case TileState::kM: return "M";
    case TileState::kF: return "F";
    case TileState::kO: return "O";
  }
  return "?";
}

void Directory::drop_if_invalid(Line line) {
  const LineEntry* e = map_.find(line);
  if (e != nullptr && !e->anywhere()) {
    if (e == last_entry_) last_entry_ = nullptr;
    map_.erase(line);
  }
}

TileState Directory::state_in_tile(const LineEntry& e, int tile) {
  if (!e.present_in_tile(tile)) return TileState::kI;
  if (e.owner == tile) {
    // A dirty owner with other sharers is MOSI's O state; under
    // MESIF/MESI an owned line never has sharers, so this stays M/E.
    if (e.dirty)
      return (e.l2_mask & (e.l2_mask - 1)) != 0 ? TileState::kO
                                                : TileState::kM;
    return TileState::kE;
  }
  if (e.forward == tile) return TileState::kF;
  return TileState::kS;
}

TileState Directory::state_in_tile(Line line, int tile) const {
  const LineEntry* e = find(line);
  if (e == nullptr) return TileState::kI;
  return state_in_tile(*e, tile);
}

void Directory::check_entry(const LineEntry& e) {
  if (e.owner >= 0) {
    // M/E: exactly one L2 copy, held by the owner; no forwarder.
    CAPMEM_CHECK_MSG(std::popcount(e.l2_mask) == 1,
                     "owned line has " << std::popcount(e.l2_mask)
                                       << " L2 copies");
    CAPMEM_CHECK(e.present_in_tile(e.owner));
    CAPMEM_CHECK(e.forward == -1);
  } else {
    // S/F or I: clean everywhere; forwarder, if any, must be a sharer.
    CAPMEM_CHECK(!e.dirty);
    if (e.forward >= 0) CAPMEM_CHECK(e.present_in_tile(e.forward));
    if (e.l2_mask == 0) CAPMEM_CHECK(e.forward == -1);
  }
}

void Directory::check_entry(const LineEntry& e, const ProtocolRules& rules) {
  if (rules.protocol == Protocol::kMesif) return check_entry(e);
  if (e.owner >= 0) {
    CAPMEM_CHECK_MSG(e.present_in_tile(e.owner),
                     "owned line absent from the owner's L2");
    if (rules.dirty_shared) {
      // O: sharers are legal, but only while the owner is dirty (a clean
      // owner with sharers would be an unreachable hybrid of E and S).
      CAPMEM_CHECK_MSG(e.dirty || std::popcount(e.l2_mask) == 1,
                       "clean owned line has "
                           << std::popcount(e.l2_mask) << " L2 copies");
    } else {
      CAPMEM_CHECK_MSG(std::popcount(e.l2_mask) == 1,
                       "owned line has " << std::popcount(e.l2_mask)
                                         << " L2 copies");
    }
    if (!rules.has_exclusive) {
      CAPMEM_CHECK_MSG(e.dirty, "protocol has no E state: clean owned line");
    }
    CAPMEM_CHECK_MSG(e.forward == -1, "owned line has a forwarder");
  } else {
    CAPMEM_CHECK_MSG(!e.dirty, "dirty line without an owner");
    if (!rules.has_forward) {
      CAPMEM_CHECK_MSG(e.forward == -1,
                       "protocol has no F state: line has a forwarder");
    }
    if (e.forward >= 0) CAPMEM_CHECK(e.present_in_tile(e.forward));
    if (e.l2_mask == 0) CAPMEM_CHECK(e.forward == -1);
  }
}

void Directory::check_invariants(Line line) const {
  const LineEntry* e = find(line);
  if (e != nullptr) check_entry(*e, *rules_);
}

}  // namespace capmem::sim
