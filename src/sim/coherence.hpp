// Directory coherence state (paper §II.A: the CHAs form a distributed tag
// directory keeping the per-tile L2s coherent — with MESIF on KNL, or with
// the MESI/MOSI variants selected through sim/protocol.hpp).
//
// State is tracked at tile granularity, matching the paper's benchmarks: the
// unit of coherence is an L2 line in some tile, plus L1 presence bits per
// core. The classic states map onto this record as:
//   M/E — `owner` tile set, `dirty` distinguishes M from E
//   O   — `owner` set and dirty with other sharers in `l2_mask` (MOSI only)
//   S   — no owner; one or more tiles in `l2_mask`
//   F   — the designated forwarder among the sharers (`forward`, MESIF only)
//   I   — no record / empty masks
// Transitions are performed by the memory system; this module owns storage,
// queries and invariant checking. Which shapes are legal depends on the
// protocol's ProtocolRules table; the rules-free overloads check the
// default MESIF table.
#pragma once

#include <cstdint>
#include <utility>

#include "common/units.hpp"
#include "sim/address.hpp"
#include "sim/line_table.hpp"
#include "sim/mem_map.hpp"
#include "sim/protocol.hpp"

namespace capmem::sim {

/// Observable state of a line within one tile's L2 (the states the paper's
/// cache-to-cache benchmarks prepare and measure, plus MOSI's O).
enum class TileState { kI, kS, kE, kM, kF, kO };

// The sharer/presence bitmaps below are single 64-bit words; every machine
// shape is capped at kMaxCoherenceTiles tiles (and 64 cores) and
// MachineConfig::validate enforces it before a Topology is ever built.
static_assert(sizeof(std::uint64_t) * 8 == kMaxCoherenceTiles,
              "LineEntry::l2_mask/l1_mask width must match the configured "
              "coherence-tile limit");

const char* to_string(TileState s);

struct LineEntry {
  std::uint64_t l2_mask = 0;  ///< tiles with the line in L2
  std::uint64_t l1_mask = 0;  ///< cores with the line in L1
  int owner = -1;             ///< tile in M/E, -1 otherwise
  bool dirty = false;         ///< owner copy modified (M) vs clean (E)
  int forward = -1;           ///< forwarder tile when shared, -1 none

  /// CHA serialization point: requests to this line queue here, producing
  /// the paper's linear contention law.
  Nanos service_available = 0;
  /// Time at which the latest store to the line becomes visible (used to
  /// wake spin-waiters with the correct timestamp).
  Nanos last_write_visible = 0;
  /// Bumped on every store; spin-waiting is "wait until version changes".
  std::uint64_t version = 0;

  /// Memoized physical target. The address map is a pure function of
  /// (line, placement), and virtual addresses are never reused within a
  /// machine, so a line's target is fixed for the whole run; resolving it
  /// once per line instead of once per access keeps the hash-and-route
  /// arithmetic off the hot path.
  MemTarget target;
  bool target_valid = false;

  bool present_in_tile(int tile) const {
    return (l2_mask >> tile) & 1ull;
  }
  bool anywhere() const { return l2_mask != 0; }
};

class Directory {
 public:
  /// Entry for `line`, creating an Invalid one if absent. The reference is
  /// stable until this line is dropped.
  LineEntry& entry(Line line) {
    // One-slot cache: spin-waits and RFO sequences hit the same line many
    // times in a row. Pool references are stable (deque-backed), so the
    // pointer survives unrelated inserts; it is dropped on erase/clear.
    if (line == last_line_ && last_entry_ != nullptr) return *last_entry_;
    last_line_ = line;
    last_entry_ = &map_.get_or_create(line);
    return *last_entry_;
  }
  /// Entry if tracked, nullptr otherwise.
  const LineEntry* find(Line line) const { return map_.find(line); }
  LineEntry* find(Line line) { return map_.find(line); }
  /// Drops an entry that went globally Invalid (keeps the map compact).
  void drop_if_invalid(Line line);

  /// State of `line` as seen by `tile`'s L2.
  TileState state_in_tile(Line line, int tile) const;
  /// Same given an already looked-up entry.
  static TileState state_in_tile(const LineEntry& e, int tile);

  /// Legal-state table the instance checks against (defaults to MESIF).
  /// MemSystem sets it from MachineConfig::protocol at construction.
  void set_rules(const ProtocolRules& rules) { rules_ = &rules; }
  const ProtocolRules& rules() const { return *rules_; }

  /// Protocol invariants; cheap enough to run after every transition.
  /// Throws CheckError on violation. The rules-free overloads check this
  /// instance's table (static check_entry: the MESIF default).
  void check_invariants(Line line) const;
  static void check_entry(const LineEntry& e);
  static void check_entry(const LineEntry& e, const ProtocolRules& rules);
  /// Sweeps every tracked line (test helper).
  void check_all() const {
    const ProtocolRules& r = *rules_;
    map_.for_each([&r](Line, const LineEntry& e) { check_entry(e, r); });
  }

  /// Visits every tracked (line, entry); order unspecified. Used by the
  /// capmem::check global sweeps to cross-check the directory against the
  /// actual cache residency.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each(std::forward<Fn>(fn));
  }

  std::size_t tracked_lines() const { return map_.size(); }

  void clear() {
    map_.clear();
    last_entry_ = nullptr;
  }

 private:
  LineTable<LineEntry> map_;
  Line last_line_ = ~0ull;
  LineEntry* last_entry_ = nullptr;
  const ProtocolRules* rules_ = &rules_of(Protocol::kMesif);
};

}  // namespace capmem::sim
