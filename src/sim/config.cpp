#include "sim/config.hpp"

#include "common/check.hpp"

namespace capmem::sim {

const char* to_string(ClusterMode m) {
  switch (m) {
    case ClusterMode::kA2A: return "A2A";
    case ClusterMode::kHemisphere: return "HEM";
    case ClusterMode::kQuadrant: return "QUAD";
    case ClusterMode::kSNC2: return "SNC2";
    case ClusterMode::kSNC4: return "SNC4";
  }
  return "?";
}

const char* to_string(MemoryMode m) {
  switch (m) {
    case MemoryMode::kFlat: return "flat";
    case MemoryMode::kCache: return "cache";
    case MemoryMode::kHybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(MemKind k) {
  return k == MemKind::kDDR ? "DRAM" : "MCDRAM";
}

ClusterMode cluster_mode_from_string(const std::string& s) {
  for (ClusterMode m : all_cluster_modes())
    if (s == to_string(m)) return m;
  CAPMEM_CHECK_MSG(false, "unknown cluster mode '" << s << "'");
}

MemoryMode memory_mode_from_string(const std::string& s) {
  if (s == "flat") return MemoryMode::kFlat;
  if (s == "cache") return MemoryMode::kCache;
  if (s == "hybrid") return MemoryMode::kHybrid;
  CAPMEM_CHECK_MSG(false, "unknown memory mode '" << s << "'");
}

std::vector<ClusterMode> all_cluster_modes() {
  return {ClusterMode::kSNC4, ClusterMode::kSNC2, ClusterMode::kQuadrant,
          ClusterMode::kHemisphere, ClusterMode::kA2A};
}

int MachineConfig::cluster_domains() const {
  switch (cluster) {
    case ClusterMode::kSNC4: return 4;
    case ClusterMode::kSNC2: return 2;
    default: return 1;  // transparent modes expose one NUMA domain
  }
}

void MachineConfig::scale_memory(std::uint64_t factor) {
  CAPMEM_CHECK(factor > 0);
  dram_bytes /= factor;
  mcdram_bytes /= factor;
  CAPMEM_CHECK(dram_bytes >= MiB(1) && mcdram_bytes >= MiB(1));
}

void MachineConfig::validate() const {
  CAPMEM_CHECK(mesh_rows > 0 && mesh_cols > 0);
  CAPMEM_CHECK(physical_tiles <= mesh_rows * mesh_cols);
  CAPMEM_CHECK(active_tiles > 0 && active_tiles <= physical_tiles);
  CAPMEM_CHECK(cores_per_tile > 0 && threads_per_core > 0);
  CAPMEM_CHECK_MSG(cores() <= 64,
                   "the coherence masks use 64-bit core bitmaps");
  CAPMEM_CHECK(l1_bytes % (kLineBytes * static_cast<std::uint64_t>(l1_ways)) ==
               0);
  CAPMEM_CHECK(l2_bytes % (kLineBytes * static_cast<std::uint64_t>(l2_ways)) ==
               0);
  CAPMEM_CHECK(dram_controllers > 0 && dram_channels_per_controller > 0);
  CAPMEM_CHECK(mcdram_controllers > 0);
  CAPMEM_CHECK(hybrid_cache_fraction > 0.0 && hybrid_cache_fraction < 1.0);
  // Domain counts must divide the active tile count so SNC domains are
  // balanced.
  CAPMEM_CHECK(active_tiles % 4 == 0);
}

MachineConfig knl7210(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.validate();
  return cfg;
}

MachineConfig tiny_machine(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.name = "tiny";
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.mesh_rows = 3;
  cfg.mesh_cols = 4;
  cfg.physical_tiles = 10;
  cfg.active_tiles = 8;  // 16 cores
  cfg.dram_bytes = MiB(64);
  cfg.mcdram_bytes = MiB(16);
  cfg.seed = 7;
  cfg.validate();
  return cfg;
}

}  // namespace capmem::sim
