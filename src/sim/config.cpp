#include "sim/config.hpp"

#include "common/check.hpp"

namespace capmem::sim {

const char* to_string(ClusterMode m) {
  switch (m) {
    case ClusterMode::kA2A: return "A2A";
    case ClusterMode::kHemisphere: return "HEM";
    case ClusterMode::kQuadrant: return "QUAD";
    case ClusterMode::kSNC2: return "SNC2";
    case ClusterMode::kSNC4: return "SNC4";
  }
  return "?";
}

const char* to_string(MemoryMode m) {
  switch (m) {
    case MemoryMode::kFlat: return "flat";
    case MemoryMode::kCache: return "cache";
    case MemoryMode::kHybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(MemKind k) {
  return k == MemKind::kDDR ? "DRAM" : "MCDRAM";
}

ClusterMode cluster_mode_from_string(const std::string& s) {
  for (ClusterMode m : all_cluster_modes())
    if (s == to_string(m)) return m;
  CAPMEM_CHECK_MSG(false, "unknown cluster mode '" << s << "'");
}

MemoryMode memory_mode_from_string(const std::string& s) {
  if (s == "flat") return MemoryMode::kFlat;
  if (s == "cache") return MemoryMode::kCache;
  if (s == "hybrid") return MemoryMode::kHybrid;
  CAPMEM_CHECK_MSG(false, "unknown memory mode '" << s << "'");
}

std::vector<ClusterMode> all_cluster_modes() {
  return {ClusterMode::kSNC4, ClusterMode::kSNC2, ClusterMode::kQuadrant,
          ClusterMode::kHemisphere, ClusterMode::kA2A};
}

int MachineConfig::cluster_domains() const {
  switch (cluster) {
    case ClusterMode::kSNC4: return 4;
    case ClusterMode::kSNC2: return 2;
    default: return 1;  // transparent modes expose one NUMA domain
  }
}

void MachineConfig::scale_memory(std::uint64_t factor) {
  CAPMEM_CHECK(factor > 0);
  dram_bytes /= factor;
  mcdram_bytes /= factor;
  CAPMEM_CHECK(dram_bytes >= MiB(1) && mcdram_bytes >= MiB(1));
}

void MachineConfig::validate() const {
  CAPMEM_CHECK_MSG(mesh_rows > 0 && mesh_cols > 0,
                   "machine '" << name << "': mesh is " << mesh_rows << "x"
                               << mesh_cols
                               << "; both dimensions must be positive");
  CAPMEM_CHECK_MSG(physical_tiles > 0 &&
                       physical_tiles <= mesh_rows * mesh_cols,
                   "machine '" << name << "': physical_tiles="
                               << physical_tiles << " does not fit the "
                               << mesh_rows << "x" << mesh_cols << " mesh ("
                               << mesh_rows * mesh_cols << " slots)");
  CAPMEM_CHECK_MSG(active_tiles > 0 && active_tiles <= physical_tiles,
                   "machine '" << name << "': active_tiles=" << active_tiles
                               << " must be in 1.." << physical_tiles
                               << " (physical_tiles)");
  CAPMEM_CHECK_MSG(active_tiles <= kMaxCoherenceTiles,
                   "machine '" << name << "': active_tiles=" << active_tiles
                               << " exceeds the " << kMaxCoherenceTiles
                               << "-tile limit of the 64-bit l2_mask "
                                  "coherence bitmap (coherence.hpp)");
  CAPMEM_CHECK_MSG(cores_per_tile > 0 && threads_per_core > 0,
                   "machine '" << name << "': cores_per_tile and "
                                          "threads_per_core must be positive");
  CAPMEM_CHECK_MSG(cores() <= 64,
                   "machine '" << name << "': " << cores()
                               << " cores exceed the 64-bit l1_mask "
                                  "coherence bitmap; the masks cap "
                                  "active_tiles*cores_per_tile at 64");
  CAPMEM_CHECK_MSG(
      l1_bytes % (kLineBytes * static_cast<std::uint64_t>(l1_ways)) == 0,
      "machine '" << name << "': l1_bytes=" << l1_bytes
                  << " is not a multiple of line*ways = "
                  << kLineBytes * static_cast<std::uint64_t>(l1_ways));
  CAPMEM_CHECK_MSG(
      l2_bytes % (kLineBytes * static_cast<std::uint64_t>(l2_ways)) == 0,
      "machine '" << name << "': l2_bytes=" << l2_bytes
                  << " is not a multiple of line*ways = "
                  << kLineBytes * static_cast<std::uint64_t>(l2_ways));
  CAPMEM_CHECK_MSG(dram_controllers > 0 && dram_channels_per_controller > 0,
                   "machine '" << name
                               << "': needs at least one DDR controller "
                                  "with at least one channel (got "
                               << dram_controllers << " IMC x "
                               << dram_channels_per_controller << " ch)");
  CAPMEM_CHECK_MSG(mcdram_controllers > 0,
                   "machine '" << name
                               << "': needs at least one MCDRAM EDC");
  CAPMEM_CHECK_MSG(hybrid_cache_fraction > 0.0 && hybrid_cache_fraction < 1.0,
                   "machine '" << name << "': hybrid_cache_fraction="
                               << hybrid_cache_fraction
                               << " must be strictly between 0 and 1");
  // Domain counts must divide the active tile count so SNC domains are
  // balanced.
  CAPMEM_CHECK_MSG(active_tiles % 4 == 0,
                   "machine '" << name << "': active_tiles=" << active_tiles
                               << " must be a multiple of 4 so SNC4 "
                                  "domains are balanced");
}

MachineConfig knl7210(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.validate();
  return cfg;
}

MachineConfig tiny_machine(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.name = "tiny";
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.mesh_rows = 3;
  cfg.mesh_cols = 4;
  cfg.physical_tiles = 10;
  cfg.active_tiles = 8;  // 16 cores
  cfg.dram_bytes = MiB(64);
  cfg.mcdram_bytes = MiB(16);
  cfg.seed = 7;
  cfg.validate();
  return cfg;
}

namespace {

// Synthetic machines for the machine-family experiments. Their calibration
// constants deliberately differ from the KNL's so the fitted capability
// models differ — the point of the family is demonstrating the
// measure->fit->optimize pipeline transfers, not modeling real parts.

// 4x5 mesh, 16 tiles / 32 cores; slower mesh, narrow DDR, modest MCDRAM.
MachineConfig mini_16t(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.name = "mini_16t";
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.mesh_rows = 4;
  cfg.mesh_cols = 5;
  cfg.physical_tiles = 18;
  cfg.active_tiles = 16;  // 32 cores
  cfg.dram_bytes = GiB(32);
  cfg.mcdram_bytes = GiB(8);
  cfg.dram_channels_per_controller = 2;
  cfg.mcdram_controllers = 4;
  cfg.lat.remote_base = 82.0;
  cfg.lat.hop = 1.6;
  cfg.lat.dram_service = 110.0;
  cfg.lat.mcdram_service = 140.0;
  cfg.lat.line_service = 48.0;
  cfg.bw.dram_channel_gbps = 9.6;
  cfg.bw.mcdram_channel_gbps = 28.0;
  cfg.seed = 11;
  cfg.validate();
  return cfg;
}

// 8x4 mesh, 24 tiles / 48 cores; long skinny die, hop-dominated latencies.
MachineConfig tall_24t(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.name = "tall_24t";
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.mesh_rows = 8;
  cfg.mesh_cols = 4;
  cfg.physical_tiles = 28;
  cfg.active_tiles = 24;  // 48 cores
  cfg.dram_bytes = GiB(64);
  cfg.mcdram_bytes = GiB(12);
  cfg.mcdram_controllers = 6;
  cfg.lat.remote_base = 120.0;
  cfg.lat.hop = 0.8;
  cfg.lat.dram_service = 150.0;
  cfg.lat.mcdram_service = 175.0;
  cfg.lat.line_service = 80.0;
  cfg.bw.dram_channel_gbps = 11.0;
  cfg.bw.mcdram_channel_gbps = 36.0;
  cfg.seed = 23;
  cfg.validate();
  return cfg;
}

// 4x17 mesh, 64 single-core tiles: the coherence-mask limit, exercised with
// spread memory stops (the corner layout makes no sense at aspect 1:4).
MachineConfig wide_64t(ClusterMode cluster, MemoryMode memory) {
  MachineConfig cfg;
  cfg.name = "wide_64t";
  cfg.cluster = cluster;
  cfg.memory = memory;
  cfg.mesh_rows = 4;
  cfg.mesh_cols = 17;
  cfg.physical_tiles = 66;
  cfg.active_tiles = 64;
  cfg.cores_per_tile = 1;  // 64 cores: at the l1_mask limit
  cfg.threads_per_core = 2;
  cfg.stop_placement = StopPlacement::kSpread;
  cfg.dram_bytes = GiB(64);
  cfg.mcdram_bytes = GiB(16);
  cfg.lat.hop = 0.9;
  cfg.seed = 5;
  cfg.validate();
  return cfg;
}

}  // namespace

MachineConfig machine_preset(const std::string& name, ClusterMode cluster,
                             MemoryMode memory) {
  if (name == "knl_38t" || name == "knl7210") return knl7210(cluster, memory);
  if (name == "tiny_8t" || name == "tiny") return tiny_machine(cluster, memory);
  if (name == "mini_16t") return mini_16t(cluster, memory);
  if (name == "tall_24t") return tall_24t(cluster, memory);
  if (name == "wide_64t") return wide_64t(cluster, memory);
  std::string known;
  for (const std::string& n : machine_preset_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  CAPMEM_CHECK_MSG(false, "unknown machine preset '" << name << "' (known: "
                                                     << known << ")");
}

std::vector<std::string> machine_preset_names() {
  return {"knl_38t", "tiny_8t", "mini_16t", "tall_24t", "wide_64t"};
}

}  // namespace capmem::sim
