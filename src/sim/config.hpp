// Machine configuration for the simulated KNL.
//
// The struct below is the simulator's microarchitectural ground truth. The
// calibration constants are set so that the *measured* medians of the
// benchmark layer land near the paper's Tables I and II for the KNL 7210.
// Everything above the simulator (bench/, model/, coll/, sort/) treats these
// numbers as unknown: it only observes timed memory operations, which is what
// makes the measure->fit->optimize pipeline a faithful reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "sim/abort.hpp"
#include "sim/protocol.hpp"

namespace capmem::obs {
class TraceSink;
class Registry;
}  // namespace capmem::obs

namespace capmem::obs::attr {
class Sink;
}  // namespace capmem::obs::attr

namespace capmem::fault {
struct FaultPlan;
}  // namespace capmem::fault

namespace capmem::sim {

class CheckHook;

/// KNL cluster (NUMA-exposure) modes, paper §II.D.
enum class ClusterMode { kA2A, kHemisphere, kQuadrant, kSNC2, kSNC4 };

/// KNL near-memory (MCDRAM) modes, paper §II.C.
enum class MemoryMode { kFlat, kCache, kHybrid };

/// Physical memory technologies.
enum class MemKind { kDDR, kMCDRAM };

/// Where the machine factory places the IMC/EDC mesh stops.
///  - kEdges: KNL's floorplan — IMCs mid-height on the left/right die
///    edges, EDCs in the corners (paper Fig. 2b).
///  - kSpread: stops distributed evenly along the top/bottom rows, for
///    synthetic machines whose meshes are too wide or too flat for the
///    corner layout to make sense.
enum class StopPlacement { kEdges, kSpread };

/// Coherence masks (LineEntry::l2_mask / l1_mask) are single 64-bit words,
/// capping both active tiles and cores at 64. MachineConfig::validate
/// rejects shapes beyond it; coherence.hpp static_asserts the mask width.
inline constexpr int kMaxCoherenceTiles = 64;

const char* to_string(ClusterMode m);
const char* to_string(MemoryMode m);
const char* to_string(MemKind k);
ClusterMode cluster_mode_from_string(const std::string& s);
MemoryMode memory_mode_from_string(const std::string& s);

/// All five cluster modes, in the column order of the paper's tables
/// (SNC4, SNC2, QUAD, HEM, A2A).
std::vector<ClusterMode> all_cluster_modes();

/// Latency ground truth, in nanoseconds. Comments give the Table I/II cell
/// each constant is calibrated against (the measured value also includes
/// path/hop terms, so these are components, not the medians themselves).
struct LatencyParams {
  double l1_hit = 3.8;        ///< Table I "Local (L1)" 3.8 ns
  double l2_tile_m = 34.0;    ///< Table I "Tile (L2)" M state, 34 ns
  double l2_tile_e = 18.0;    ///< Table I E state, 17-18 ns
  double l2_tile_sf = 14.0;   ///< Table I S/F state, 14 ns

  /// Remote cache-to-cache transfer: fixed cost excluding mesh hops.
  /// Measured remote medians (96-125 ns) = base + state adder + hop * hops.
  double remote_base = 99.0;
  double remote_state_m = 8.0;   ///< M: snoop + downgrade/write-back
  double remote_state_e = 4.0;   ///< E: clean owner forward
  double remote_state_sf = 0.0;  ///< S/F: forwarder reply
  double hop = 1.05;             ///< per mesh hop (Y-then-X Manhattan)

  /// Memory service beyond the directory path. Flat-mode measured medians:
  /// DRAM 130-146 ns, MCDRAM 160-175 ns (MCDRAM trades latency for BW).
  double dram_service = 127.0;
  double mcdram_service = 155.0;

  /// Cache mode: memory-side MCDRAM cache tag check, added to every memory
  /// access; misses then pay the DRAM path. Measured cache-mode latency
  /// median 158-178 ns.
  double mc_cache_tag = 16.0;
  /// Snoop-before-evict of a modified L2 copy (paper §II.C cache mode).
  double mc_cache_evict_snoop = 30.0;

  /// CHA serialization per request on one line; yields the contention law
  /// T_C(N) = alpha + beta*N with beta ~= 34 ns (Table I). The raw service
  /// exceeds beta because intra-tile sharing lets ~half the requesters
  /// bypass the directory under the paper's fill-cores schedule.
  double line_service = 64.0;
};

/// Bandwidth / pipelining ground truth. Streaming ops are modeled as
/// pipelined line transfers: the per-line thread-issue occupancy is
/// latency / mlp, and shared resources (per-core issue port, memory
/// channels) impose reservation delays on top.
struct BandwidthParams {
  /// Memory-level parallelism (lines in flight) for streaming memory ops.
  /// Per-stream thread bandwidth = 64 B * mlp / latency; DRAM ~5.5 GB/s and
  /// MCDRAM ~6 GB/s per stream, so DRAM saturates with ~16 cores and MCDRAM
  /// needs all 64 (paper §V.A, Fig. 9).
  double mlp_mem_vector = 16.0;
  double mlp_mem_scalar = 4.0;

  /// Remote cache-to-cache streaming (Table I): single-thread read
  /// 2.5 GB/s vector (1 GB/s scalar), copy ~7.5 GB/s vector (~6 scalar).
  double mlp_c2c_read_vector = 3.9;
  double mlp_c2c_read_scalar = 1.55;
  double mlp_c2c_copy_vector = 16.0;
  double mlp_c2c_copy_scalar = 11.8;

  /// Intra-tile L2 streaming per-line costs (ns/line): copy from E 7.0
  /// (9.2 GB/s), from M 8.5 (7.5 GB/s, extra write-back), L1-resident 6.0.
  double tile_copy_line_e = 6.5;
  double tile_copy_line_m = 8.0;
  /// Per-tile L2 *supply* occupancy for cache-to-cache transfers (ns per
  /// line served to remote requesters). Caps what one tile can source when
  /// many readers pull from it (~9 GB/s aggregate) — the reason flat
  /// everyone-pulls-from-root broadcasts collapse at large payloads.
  double l2_supply_line_ns = 7.0;

  /// Channel rates. 6 DDR4 channels (2 IMCs x 3): 90 GB/s peak, ~85%
  /// effective => Table II STREAM copy/triad 77-82 GB/s aggregate.
  double dram_channel_gbps = 12.8;
  /// 8 MCDRAM EDCs: 400-500 GB/s raw peak; the effective per-EDC rate is
  /// chosen so the randomized-NT medians land at the paper's Table II
  /// medians (copy/triad 330-340 GB/s; write ~171 with the turnaround).
  double mcdram_channel_gbps = 44.0;
  /// Cache-mode efficiency on MCDRAM-cache hits (tag check + memory-side
  /// buffering): Table II cache-mode copy 130-175 vs flat 306-342 GB/s.
  double mc_cache_bw_factor = 0.65;
  /// Extra channel occupancy of pure store streams (DDR/MCDRAM write
  /// turnaround): Table II write ~= read/2 on both memories. Mixed
  /// read+write streams (copy/triad) amortize the turnaround away.
  double write_turnaround = 2.0;
  /// Memory-controller queue depth per channel, as lines of lead a
  /// requester may buffer before the channel exerts backpressure. Models
  /// the controller absorbing short bursts so saturated channels run at
  /// ~100% utilization instead of convoying.
  double channel_queue_lines = 64.0;
  /// Per-core issue occupancy per line of a streaming op, as a fraction of
  /// the per-line issue cost; 4 HW threads share one core's ports, which is
  /// why compact schedules need 4x the threads (Fig. 9a vs 9b).
  double core_issue_fraction = 1.0;
};

/// Deterministic measurement-noise model (real hardware has spread; the
/// paper reports medians/CIs/boxplots, so the simulator provides a seeded,
/// reproducible jitter).
struct NoiseParams {
  double service_sigma = 0.03;   ///< lognormal sigma on service times
  double snc2_extra_sigma = 0.06;///< SNC2 is "experimental", higher variance
  double spike_prob = 0.002;     ///< rare directory-retry spikes
  double spike_ns = 250.0;
  bool enabled = true;
};

/// Full machine description.
struct MachineConfig {
  std::string name = "knl7210";
  ClusterMode cluster = ClusterMode::kQuadrant;
  MemoryMode memory = MemoryMode::kFlat;
  /// Directory coherence protocol the memory system runs. The transition
  /// pipeline is instantiated per protocol at MemSystem construction
  /// (sim/protocol.hpp); MESIF is the calibrated KNL default.
  Protocol protocol = Protocol::kMesif;

  // --- topology ---
  int mesh_rows = 6;
  int mesh_cols = 7;
  int physical_tiles = 38;   ///< tile slots on the mesh (rest are IMC/IO)
  int active_tiles = 32;     ///< 7210: 64 cores = 32 tiles enabled
  int cores_per_tile = 2;
  int threads_per_core = 4;
  /// IMC/EDC mesh-stop layout (machine factory knob).
  StopPlacement stop_placement = StopPlacement::kEdges;
  /// Opaque directory (Kommrusch et al.): home CHAs hash over *all* active
  /// tiles regardless of cluster mode, hiding the domain affinity the
  /// cluster modes normally give the directory.
  bool opaque_directory = false;

  // --- caches ---
  std::uint64_t l1_bytes = 32 * 1024;  ///< per core, 8-way
  int l1_ways = 8;
  std::uint64_t l2_bytes = 1024 * 1024;  ///< per tile, 16-way
  int l2_ways = 16;

  // --- memory ---
  std::uint64_t dram_bytes = GiB(96);
  std::uint64_t mcdram_bytes = GiB(16);
  int dram_controllers = 2;
  int dram_channels_per_controller = 3;
  int mcdram_controllers = 8;  ///< EDCs
  /// Hybrid mode: fraction of MCDRAM used as cache (paper: 1/4 or 1/2).
  double hybrid_cache_fraction = 0.5;

  LatencyParams lat;
  BandwidthParams bw;
  NoiseParams noise;

  /// Maximum TSC skew across cores (the paper calibrates it away; we model
  /// it so the window-sync machinery is exercised).
  double tsc_skew_ns = 80.0;
  /// TSC read resolution (paper: 10 ns).
  double tsc_resolution_ns = 10.0;

  std::uint64_t seed = 42;

  // --- observability hooks (non-owning, not part of machine identity) ---
  // Machines built from this config emit virtual-time trace events into
  // `trace` and merge end-of-run component metrics into `metrics`. Both are
  // pure observers: null by default, and attaching them never changes
  // virtual-time results (the disabled path is a single pointer test).
  obs::TraceSink* trace = nullptr;
  obs::Registry* metrics = nullptr;
  /// Validation hook (capmem::check): observes every access, MESIF
  /// transition and home-CHA resolution. Same contract as the observability
  /// sinks — null by default, never steers, single-branch disabled path.
  CheckHook* check = nullptr;
  /// Attribution aggregator (capmem::obs::attr): when set, the Machine owns
  /// a per-run Ledger that charges every simulated nanosecond to a
  /// (category, tile) cell and every message to a traffic counter, then
  /// merges it here at the end of run() — where the exact conservation
  /// invariant (sum of cells == sum of task lifetimes, in integer
  /// picosecond ticks) is enforced. Same observer contract as trace/
  /// metrics: null by default, never steers, single-branch disabled path.
  obs::attr::Sink* attr = nullptr;
  /// Fault-injection plan (capmem::fault): deterministic degraded-silicon
  /// penalties on mesh paths, channels and directory lines. Unlike the
  /// observer hooks it *does* change virtual-time results when attached —
  /// that is its purpose — but null (the default) is byte-identical to the
  /// pre-fault simulator. Borrowed pointer: the plan must outlive the
  /// Machine.
  const fault::FaultPlan* fault = nullptr;

  /// Engine watchdog budgets (see sim/abort.hpp). All-zero (the default)
  /// disarms the watchdog entirely.
  WatchdogBudget watchdog;

  int cores() const { return active_tiles * cores_per_tile; }
  int hw_threads() const { return cores() * threads_per_core; }
  int dram_channels() const {
    return dram_controllers * dram_channels_per_controller;
  }
  int cluster_domains() const;

  /// Scales both memory capacities (and thus the MCDRAM cache tag array) by
  /// 1/factor so cache-mode experiments with realistic footprint/capacity
  /// ratios stay within host memory. Bandwidths/latencies are unaffected.
  void scale_memory(std::uint64_t factor);

  /// Validates internal consistency; throws CheckError on bad configs.
  void validate() const;
};

/// Preset matching the paper's evaluation platform: Xeon Phi 7210, 64 cores
/// at 1.30 GHz, 16 GB MCDRAM, 96 GB DDR4-2133.
MachineConfig knl7210(ClusterMode cluster = ClusterMode::kQuadrant,
                      MemoryMode memory = MemoryMode::kFlat);

/// Small machine for unit tests (4x3 mesh, 8 tiles, scaled memory).
MachineConfig tiny_machine(ClusterMode cluster = ClusterMode::kQuadrant,
                           MemoryMode memory = MemoryMode::kFlat);

/// Machine factory: named presets spanning the synthetic-machine family the
/// methodology is exercised on (à la Graphite's string-keyed factories).
///   knl_38t / knl7210 — the paper's Xeon Phi 7210 (the calibrated default)
///   tiny_8t  / tiny   — the unit-test machine above
///   mini_16t — 4x5 mesh, 16 tiles / 32 cores, slow narrow DDR
///   tall_24t — 8x4 mesh, 24 tiles / 48 cores, long skinny die
///   wide_64t — 4x17 mesh, 64 single-core tiles, the coherence-mask limit
/// Throws CheckError (listing the known names) for anything else.
MachineConfig machine_preset(const std::string& name,
                             ClusterMode cluster = ClusterMode::kQuadrant,
                             MemoryMode memory = MemoryMode::kFlat);

/// Canonical preset names accepted by machine_preset, default first.
std::vector<std::string> machine_preset_names();

}  // namespace capmem::sim
