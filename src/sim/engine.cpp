#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"

namespace capmem::sim {

namespace {

// One non-inlined helper per event so the enabled-path code stays out of the
// scheduler loop; callers guard with a single `if (trace_)` branch.
void emit_task_event(obs::TraceSink* sink, obs::EventKind kind, Nanos t,
                     int tid, std::uint64_t line = 0, Nanos dur = 0) {
  obs::TraceEvent e;
  e.kind = kind;
  e.t = t;
  e.dur = dur;
  e.tid = tid;
  e.line = line;
  sink->on_event(e);
}

void emit_sync_release(obs::TraceSink* sink, Nanos t, int arrivals) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kSyncRelease;
  e.t = t;
  e.a = arrivals;
  sink->on_event(e);
}

}  // namespace

void Advance::await_suspend(Task::Handle h) const {
  CAPMEM_DCHECK(dt >= 0);
  h.promise().clock += dt;
  h.promise().engine->requeue(h);
}

void AdvanceTo::await_suspend(Task::Handle h) const {
  auto& p = h.promise();
  p.clock = std::max(p.clock, t);
  p.engine->requeue(h);
}

void SyncPoint::await_suspend(Task::Handle h) const {
  h.promise().engine->sync_arrive(h);
}

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  for (Task::Handle h : tasks_) {
    if (h) h.destroy();
  }
}

int Engine::spawn(Task task, Nanos start) {
  CAPMEM_CHECK_MSG(!running_, "spawn during run() is not supported");
  Task::Handle h = task.release();
  CAPMEM_CHECK(h);
  const int tid = static_cast<int>(tasks_.size());
  h.promise().engine = this;
  h.promise().tid = tid;
  h.promise().clock = start;
  tasks_.push_back(h);
  run_q_.push(QEntry{start, seq_++, h, {}});
  ++live_;
  return tid;
}

void Engine::requeue(Task::Handle h) {
  run_q_.push(QEntry{h.promise().clock, seq_++, h, {}});
}

void Engine::schedule(Nanos t, std::function<void()> fn) {
  run_q_.push(QEntry{t, seq_++, {}, std::move(fn)});
}

void Engine::park(std::uint64_t key, Task::Handle h,
                  std::function<bool(Nanos)> try_wake) {
  const Nanos at = h.promise().clock;
  parked_[key].push_back(Waiter{h, std::move(try_wake), at});
  if (trace_) {
    emit_task_event(trace_, obs::EventKind::kTaskPark, at, h.promise().tid,
                    key);
  }
}

void Engine::notify(std::uint64_t key, Nanos visible) {
  const auto it = parked_.find(key);
  if (it == parked_.end()) return;
  auto& waiters = it->second;
  for (std::size_t i = 0; i < waiters.size();) {
    if (waiters[i].try_wake(visible)) {
      Task::Handle h = waiters[i].h;
      if (trace_) {
        // The parked interval as one slice: park time to the woken clock.
        emit_task_event(trace_, obs::EventKind::kTaskUnpark,
                        waiters[i].parked_at, h.promise().tid, key,
                        h.promise().clock - waiters[i].parked_at);
      }
      requeue(h);
      waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (waiters.empty()) parked_.erase(it);
}

void Engine::release_sync() {
  // All live tasks arrived: align clocks to the maximum and release.
  Nanos tmax = 0;
  for (Task::Handle w : sync_q_) tmax = std::max(tmax, w.promise().clock);
  for (Task::Handle w : sync_q_) {
    w.promise().clock = tmax;
    requeue(w);
  }
  if (trace_) {
    emit_sync_release(trace_, tmax, static_cast<int>(sync_q_.size()));
  }
  sync_q_.clear();
}

void Engine::sync_arrive(Task::Handle h) {
  sync_q_.push_back(h);
  if (static_cast<int>(sync_q_.size()) < live_) return;
  release_sync();
}

void Engine::finish(Task::Handle h) {
  --live_;
  if (h.promise().error) {
    running_ = false;
    std::rethrow_exception(h.promise().error);
  }
  if (trace_) {
    emit_task_event(trace_, obs::EventKind::kTaskFinish, h.promise().clock,
                    h.promise().tid);
  }
  // Release a barrier that was waiting only on still-live tasks.
  if (!sync_q_.empty() && static_cast<int>(sync_q_.size()) >= live_) {
    release_sync();
  }
}

void Engine::run() {
  CAPMEM_CHECK(!running_);
  running_ = true;
  while (!run_q_.empty()) {
    const QEntry e = run_q_.top();
    run_q_.pop();
    CAPMEM_DCHECK(e.t + 1e-6 >= global_time_);
    global_time_ = std::max(global_time_, e.t);
    ++steps_;
    if (e.h) {
      if (trace_) {
        emit_task_event(trace_, obs::EventKind::kTaskResume, e.t,
                        e.h.promise().tid);
      }
      e.h.resume();
      if (e.h.promise().done) finish(e.h);
    } else {
      e.fn();
    }
  }
  running_ = false;
  if (live_ > 0) report_deadlock();
}

void Engine::report_deadlock() const {
  std::ostringstream os;
  os << "simulation deadlock at t=" << global_time_ << " ns: " << live_
     << " task(s) blocked;";
  std::size_t parked_count = 0;
  for (const auto& [key, ws] : parked_) {
    parked_count += ws.size();
    os << " line " << key << " <- {";
    for (const auto& w : ws) {
      os << " tid " << w.h.promise().tid << " (parked at t=" << w.parked_at
         << ")";
    }
    os << " }";
  }
  if (!sync_q_.empty()) {
    os << " barrier holds " << sync_q_.size() << " arrival(s) from {";
    for (Task::Handle w : sync_q_) os << " tid " << w.promise().tid;
    os << " }";
  }
  if (parked_count == 0 && sync_q_.empty()) os << " (unknown wait state)";
  throw CheckError(os.str());
}

}  // namespace capmem::sim
