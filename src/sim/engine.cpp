#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace capmem::sim {

void Advance::await_suspend(Task::Handle h) const {
  CAPMEM_DCHECK(dt >= 0);
  h.promise().clock += dt;
  h.promise().engine->requeue(h);
}

void AdvanceTo::await_suspend(Task::Handle h) const {
  auto& p = h.promise();
  p.clock = std::max(p.clock, t);
  p.engine->requeue(h);
}

void SyncPoint::await_suspend(Task::Handle h) const {
  h.promise().engine->sync_arrive(h);
}

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  for (Task::Handle h : tasks_) {
    if (h) h.destroy();
  }
}

int Engine::spawn(Task task, Nanos start) {
  CAPMEM_CHECK_MSG(!running_, "spawn during run() is not supported");
  Task::Handle h = task.release();
  CAPMEM_CHECK(h);
  const int tid = static_cast<int>(tasks_.size());
  h.promise().engine = this;
  h.promise().tid = tid;
  h.promise().clock = start;
  tasks_.push_back(h);
  run_q_.push(QEntry{start, seq_++, h, {}});
  ++live_;
  return tid;
}

void Engine::requeue(Task::Handle h) {
  run_q_.push(QEntry{h.promise().clock, seq_++, h, {}});
}

void Engine::schedule(Nanos t, std::function<void()> fn) {
  run_q_.push(QEntry{t, seq_++, {}, std::move(fn)});
}

void Engine::park(std::uint64_t key, Task::Handle h,
                  std::function<bool(Nanos)> try_wake) {
  parked_[key].push_back(Waiter{h, std::move(try_wake)});
}

void Engine::notify(std::uint64_t key, Nanos visible) {
  const auto it = parked_.find(key);
  if (it == parked_.end()) return;
  auto& waiters = it->second;
  for (std::size_t i = 0; i < waiters.size();) {
    if (waiters[i].try_wake(visible)) {
      requeue(waiters[i].h);
      waiters.erase(waiters.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (waiters.empty()) parked_.erase(it);
}

void Engine::sync_arrive(Task::Handle h) {
  sync_q_.push_back(h);
  if (static_cast<int>(sync_q_.size()) < live_) return;
  // All live tasks arrived: align clocks to the maximum and release.
  Nanos tmax = 0;
  for (Task::Handle w : sync_q_) tmax = std::max(tmax, w.promise().clock);
  for (Task::Handle w : sync_q_) {
    w.promise().clock = tmax;
    requeue(w);
  }
  sync_q_.clear();
}

void Engine::finish(Task::Handle h) {
  --live_;
  if (h.promise().error) {
    running_ = false;
    std::rethrow_exception(h.promise().error);
  }
  // Release a barrier that was waiting only on still-live tasks.
  if (!sync_q_.empty() && static_cast<int>(sync_q_.size()) >= live_) {
    Nanos tmax = 0;
    for (Task::Handle w : sync_q_) tmax = std::max(tmax, w.promise().clock);
    for (Task::Handle w : sync_q_) {
      w.promise().clock = tmax;
      requeue(w);
    }
    sync_q_.clear();
  }
}

void Engine::run() {
  CAPMEM_CHECK(!running_);
  running_ = true;
  while (!run_q_.empty()) {
    const QEntry e = run_q_.top();
    run_q_.pop();
    CAPMEM_DCHECK(e.t + 1e-6 >= global_time_);
    global_time_ = std::max(global_time_, e.t);
    ++steps_;
    if (e.h) {
      e.h.resume();
      if (e.h.promise().done) finish(e.h);
    } else {
      e.fn();
    }
  }
  running_ = false;
  if (live_ > 0) report_deadlock();
}

void Engine::report_deadlock() const {
  std::ostringstream os;
  os << "simulation deadlock at t=" << global_time_ << " ns: " << live_
     << " task(s) blocked;";
  std::size_t parked_count = 0;
  for (const auto& [key, ws] : parked_) {
    parked_count += ws.size();
    os << " line " << key << " <- {";
    for (const auto& w : ws) os << ' ' << w.h.promise().tid;
    os << " }";
  }
  if (!sync_q_.empty()) {
    os << " barrier holds " << sync_q_.size() << " arrival(s)";
  }
  if (parked_count == 0 && sync_q_.empty()) os << " (unknown wait state)";
  throw CheckError(os.str());
}

}  // namespace capmem::sim
