#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

#include "obs/attr.hpp"
#include "obs/trace.hpp"

namespace capmem::sim {

namespace {

// One non-inlined helper per event so the enabled-path code stays out of the
// scheduler loop; callers guard with a single `if (trace_)` branch.
void emit_task_event(obs::TraceSink* sink, obs::EventKind kind, Nanos t,
                     int tid, std::uint64_t line = 0, Nanos dur = 0) {
  obs::TraceEvent e;
  e.kind = kind;
  e.t = t;
  e.dur = dur;
  e.tid = tid;
  e.line = line;
  sink->on_event(e);
}

void emit_sync_release(obs::TraceSink* sink, Nanos t, int arrivals) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kSyncRelease;
  e.t = t;
  e.a = arrivals;
  sink->on_event(e);
}

}  // namespace

void Advance::await_suspend(Task::Handle h) const {
  CAPMEM_DCHECK(dt >= 0);
  auto& p = h.promise();
  const Nanos from = p.clock;
  p.clock += dt;
  if (obs::attr::Ledger* a = p.engine->attr()) {
    a->charge(p.tid, obs::attr::TimeCat::kCompute, from, p.clock);
  }
  p.engine->requeue(h);
}

void AdvanceTo::await_suspend(Task::Handle h) const {
  auto& p = h.promise();
  const Nanos from = p.clock;
  p.clock = std::max(p.clock, t);
  if (obs::attr::Ledger* a = p.engine->attr()) {
    a->charge(p.tid, obs::attr::TimeCat::kTimerWait, from, p.clock);
  }
  p.engine->requeue(h);
}

void SyncPoint::await_suspend(Task::Handle h) const {
  h.promise().engine->sync_arrive(h);
}

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

Engine::~Engine() {
  for (Task::Handle h : tasks_) {
    if (h) h.destroy();
  }
}

int Engine::spawn(Task task, Nanos start) {
  CAPMEM_CHECK_MSG(!running_, "spawn during run() is not supported");
  Task::Handle h = task.release();
  CAPMEM_CHECK(h);
  const int tid = static_cast<int>(tasks_.size());
  h.promise().engine = this;
  h.promise().tid = tid;
  h.promise().clock = start;
  tasks_.push_back(h);
  run_q_.push(start, task_payload(h));
  ++live_;
  if (attr_) attr_->on_spawn(tid, start);
  return tid;
}

void Engine::requeue(Task::Handle h) {
  run_q_.push(h.promise().clock, task_payload(h));
}

void Engine::schedule(Nanos t, std::function<void()> fn) {
  std::uint32_t idx;
  if (!cb_free_.empty()) {
    idx = cb_free_.back();
    cb_free_.pop_back();
    cb_pool_[idx] = std::move(fn);
  } else {
    idx = static_cast<std::uint32_t>(cb_pool_.size());
    cb_pool_.push_back(std::move(fn));
  }
  run_q_.push(t, (static_cast<std::uint64_t>(idx) << 1) | 1);
}

void Engine::run_callback(std::uint64_t payload) {
  const auto idx = static_cast<std::uint32_t>(payload >> 1);
  // Move out before invoking: the callback may schedule() and reuse the
  // slot.
  std::function<void()> fn = std::move(cb_pool_[idx]);
  cb_pool_[idx] = nullptr;
  cb_free_.push_back(idx);
  fn();
}

void Engine::park(std::uint64_t key, Task::Handle h,
                  std::function<bool(Nanos)> try_wake) {
  const Nanos at = h.promise().clock;
  park_filter_ |= filter_bit(key);
  parked_.get_or_create(key).push_back(Waiter{h, std::move(try_wake), at});
  if (trace_) {
    emit_task_event(trace_, obs::EventKind::kTaskPark, at, h.promise().tid,
                    key);
  }
}

void Engine::notify(std::uint64_t key, Nanos visible, int writer_tid) {
  // Every store notifies its line, but almost all lines never have a waiter:
  // one branch against the presence filter skips the table probe entirely.
  if ((park_filter_ & filter_bit(key)) == 0) return;
  WaiterList* waiters = parked_.find(key);
  if (waiters == nullptr) return;
  for (std::size_t i = 0; i < waiters->size();) {
    if ((*waiters)[i].try_wake(visible)) {
      Task::Handle h = (*waiters)[i].h;
      if (trace_) {
        // The parked interval as one slice: park time to the woken clock.
        emit_task_event(trace_, obs::EventKind::kTaskUnpark,
                        (*waiters)[i].parked_at, h.promise().tid, key,
                        h.promise().clock - (*waiters)[i].parked_at);
      }
      if (attr_) {
        attr_->on_wake_edge(h.promise().tid, writer_tid, key,
                            h.promise().clock);
      }
      requeue(h);
      waiters->erase(i);  // ordered erase: wakeups stay FIFO within a key
    } else {
      ++i;
    }
  }
  // Reclaim the slot on wake-all so hot flag lines don't grow the table
  // monotonically (the free-listed pool reuses it on the next park).
  if (waiters->empty()) {
    parked_.erase(key);
    // The filter cannot forget single keys; re-arm it whenever the table
    // drains (frequent: every barrier release empties it).
    if (parked_.size() == 0) park_filter_ = 0;
  }
}

void Engine::release_sync() {
  // All live tasks arrived: align clocks to the maximum and release.
  Nanos tmax = 0;
  int last_tid = -1;  // the barrier's last arriver: everyone's predecessor
  for (Task::Handle w : sync_q_) {
    if (last_tid < 0 || w.promise().clock > tmax) {
      last_tid = w.promise().tid;
    }
    tmax = std::max(tmax, w.promise().clock);
  }
  for (Task::Handle w : sync_q_) {
    auto& p = w.promise();
    if (attr_) {
      attr_->charge(p.tid, obs::attr::TimeCat::kBarrierWait, p.clock, tmax);
      attr_->on_sync_edge(p.tid, last_tid, tmax);
    }
    p.clock = tmax;
    requeue(w);
  }
  if (trace_) {
    emit_sync_release(trace_, tmax, static_cast<int>(sync_q_.size()));
  }
  sync_q_.clear();
}

void Engine::sync_arrive(Task::Handle h) {
  sync_q_.push_back(h);
  if (static_cast<int>(sync_q_.size()) < live_) return;
  release_sync();
}

void Engine::finish(Task::Handle h) {
  --live_;
  if (h.promise().error) {
    running_ = false;
    std::rethrow_exception(h.promise().error);
  }
  if (trace_) {
    emit_task_event(trace_, obs::EventKind::kTaskFinish, h.promise().clock,
                    h.promise().tid);
  }
  // Release a barrier that was waiting only on still-live tasks.
  if (!sync_q_.empty() && static_cast<int>(sync_q_.size()) >= live_) {
    release_sync();
  }
}

void Engine::run() {
  CAPMEM_CHECK(!running_);
  running_ = true;
  while (!run_q_.empty()) {
    const EventQueue::Entry e = run_q_.pop_min();
    CAPMEM_DCHECK(e.t + 1e-6 >= global_time_);
    global_time_ = std::max(global_time_, e.t);
    ++steps_;
    if (wd_armed_) watchdog_check();
    if ((e.payload & 1) == 0) {
      const auto h =
          Task::Handle::from_address(reinterpret_cast<void*>(e.payload));
      if (trace_) {
        emit_task_event(trace_, obs::EventKind::kTaskResume, e.t,
                        h.promise().tid);
      }
      h.resume();
      if (h.promise().done) finish(h);
    } else {
      run_callback(e.payload);
    }
  }
  running_ = false;
  if (live_ > 0) report_deadlock();
}

void Engine::watchdog_check() {
  if (wd_.max_steps != 0 && steps_ > wd_.max_steps) {
    std::ostringstream r;
    r << "step budget " << wd_.max_steps << " exceeded";
    raise_abort(AbortKind::kLivelock, r.str());
  }
  if (wd_.max_virtual_ns != 0 && global_time_ > wd_.max_virtual_ns) {
    std::ostringstream r;
    r << "virtual-time budget " << wd_.max_virtual_ns << " ns exceeded";
    raise_abort(AbortKind::kBudgetExceeded, r.str());
  }
  // Park-age scan is O(parked tasks); amortize it over 64 steps. The trip
  // point stays deterministic: virtual state is a pure function of the
  // schedule, and so is the step counter.
  if (wd_.max_park_age_ns != 0 && (steps_ & 63) == 0) {
    Nanos worst = 0;
    parked_.for_each([&](std::uint64_t, const WaiterList& ws) {
      for (const auto& w : ws) {
        worst = std::max(worst, global_time_ - w.parked_at);
      }
    });
    if (worst > wd_.max_park_age_ns) {
      std::ostringstream r;
      r << "park-age budget " << wd_.max_park_age_ns << " ns exceeded";
      raise_abort(AbortKind::kLivelock, r.str());
    }
  }
}

void Engine::raise_abort(AbortKind kind, const std::string& reason) {
  running_ = false;
  std::ostringstream os;
  os << "simulation " << to_string(kind) << " at t=" << global_time_
     << " ns";
  if (kind == AbortKind::kDeadlock) {
    os << ": " << live_ << " task(s) blocked;";
  } else {
    os << " after " << steps_ << " step(s): " << reason << ";";
  }
  int stuck_tid = -1;
  Nanos stuck_age = 0;
  std::size_t parked_count = 0;
  parked_.for_each([&](std::uint64_t key, const WaiterList& ws) {
    parked_count += ws.size();
    os << " line " << key << " <- {";
    for (const auto& w : ws) {
      const Nanos age = std::max<Nanos>(0, global_time_ - w.parked_at);
      if (stuck_tid < 0 || age > stuck_age) {
        stuck_tid = w.h.promise().tid;
        stuck_age = age;
      }
      os << " tid " << w.h.promise().tid << " (parked at t=" << w.parked_at
         << ", age=" << age << " ns)";
    }
    os << " }";
  });
  if (!sync_q_.empty()) {
    os << " barrier holds " << sync_q_.size() << " arrival(s) from {";
    for (Task::Handle w : sync_q_) os << " tid " << w.promise().tid;
    os << " }";
  }
  if (parked_count == 0 && sync_q_.empty() &&
      kind == AbortKind::kDeadlock) {
    os << " (unknown wait state)";
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kAbort;
    e.t = global_time_;
    e.tid = stuck_tid;
    e.label = to_string(kind);
    trace_->on_event(e);
  }
  throw SimAbort(kind, os.str(), global_time_, steps_, stuck_tid,
                 stuck_age);
}

void Engine::report_deadlock() { raise_abort(AbortKind::kDeadlock, ""); }

}  // namespace capmem::sim
