// Deterministic virtual-time scheduler for simulated hardware threads.
//
// Each simulated thread is a C++20 coroutine (`Task`). The engine resumes,
// at every step, the runnable task with the smallest local clock, so all
// global state mutations (coherence transitions, resource reservations)
// happen in nondecreasing virtual time — which makes simple reservation
// queues exact and the whole simulation bit-reproducible.
//
// Tasks suspend through awaiters that either advance their clock (memory
// operations, compute) or park them on a wait key (spin-waiting on a flag
// line) until a store wakes them. A task that never unparks is a deadlock
// and run() reports it instead of hanging.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "sim/abort.hpp"
#include "sim/event_queue.hpp"
#include "sim/line_table.hpp"
#include "sim/small_vec.hpp"

namespace capmem::obs {
class TraceSink;
}  // namespace capmem::obs

namespace capmem::obs::attr {
class Ledger;
}  // namespace capmem::obs::attr

namespace capmem::sim {

class Engine;

/// A simulated-thread coroutine. Fire-and-forget: the engine takes ownership
/// of the frame when the task is spawned.
class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    Engine* engine = nullptr;
    int tid = -1;        ///< engine task id (== simulated thread id)
    Nanos clock = 0;     ///< local virtual time
    bool done = false;
    std::exception_ptr error;

    Task get_return_object() {
      return Task{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(Handle h) const noexcept {
        h.promise().done = true;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task(Task&& o) noexcept : h_(o.h_) { o.h_ = {}; }
  Task& operator=(Task&&) = delete;
  Task(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();  // only if never spawned
  }

  /// Transfers frame ownership to the engine (called by Engine::spawn).
  Handle release() {
    Handle h = h_;
    h_ = {};
    return h;
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_;
};

/// Suspends the current task and advances its clock by `dt`.
struct Advance {
  Nanos dt;
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) const;
  void await_resume() const noexcept {}
};

/// Suspends and sets the task clock to max(clock, t).
struct AdvanceTo {
  Nanos t;
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) const;
  void await_resume() const noexcept {}
};

/// Joins the engine-level synchronization barrier (a harness primitive: it
/// aligns all live task clocks to their maximum at zero simulated cost,
/// standing in for the TSC-window synchronization of the real benchmarks).
struct SyncPoint {
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) const;
  void await_resume() const noexcept {}
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a task; it becomes runnable at virtual time `start`.
  /// Returns its task id (dense, starting at 0).
  int spawn(Task task, Nanos start = 0);

  /// Runs until every task finished. Throws on task exceptions; raises
  /// SimAbort (a CheckError) on deadlocks (tasks parked forever / barrier
  /// mismatch) and on tripped watchdog budgets instead of hanging or
  /// killing the process.
  void run();

  /// Arms (or disarms, with an all-zero budget) the watchdog. Must be set
  /// before run(); the disabled path costs one branch per step.
  void set_watchdog(const WatchdogBudget& b) {
    wd_ = b;
    wd_armed_ = b.armed();
  }
  const WatchdogBudget& watchdog() const { return wd_; }

  /// Virtual time of the most recently executed step.
  Nanos now() const { return global_time_; }

  /// Deterministic per-engine RNG (noise models draw from it).
  Rng& rng() { return rng_; }

  /// Attaches a trace sink (null to detach). The engine emits task
  /// scheduling events (resume, park/unpark with the parked interval,
  /// finish, barrier release); sinks observe, never steer.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

  /// Attaches the attribution ledger (null to detach). The engine charges
  /// scheduler-owned clock mutations (compute advance, timer wait, barrier
  /// wait) and records wake/sync predecessor edges; like trace sinks, the
  /// ledger observes and never steers.
  void set_attr(obs::attr::Ledger* ledger) { attr_ = ledger; }
  obs::attr::Ledger* attr() const { return attr_; }

  int live_tasks() const { return live_; }
  int total_tasks() const { return static_cast<int>(tasks_.size()); }
  std::uint64_t steps() const { return steps_; }

  /// Wait keys currently holding at least one parked task.
  std::size_t parked_keys() const { return parked_.size(); }
  /// Waiter-list slots ever allocated by the park table (free-listed and
  /// reused after wake-all, so this plateaus on steady-state workloads —
  /// the memory-stability gauge tests assert exactly that).
  std::size_t parked_pool_slots() const { return parked_.pool_slots(); }

  /// Handle of task `tid` (valid between spawn and engine destruction).
  Task::Handle task_handle(int tid) const {
    return tasks_.at(static_cast<std::size_t>(tid));
  }

  // --- awaiter/machine interface ---

  /// Makes `h` runnable again at its current clock.
  void requeue(Task::Handle h);

  /// Schedules a bare callback at virtual time `t` (used by multi-line
  /// operation awaiters to pump their next chunk while the owning task
  /// stays suspended). Callbacks run interleaved with task steps in
  /// virtual-time order.
  void schedule(Nanos t, std::function<void()> fn);

  /// Parks `h` on `key` (a cache-line index). `try_wake(visible)` runs when
  /// a store to the key happens; it must either set the task clock and
  /// return true (the engine requeues it and removes the waiter) or return
  /// false to stay parked.
  void park(std::uint64_t key, Task::Handle h,
            std::function<bool(Nanos visible)> try_wake);

  /// Notifies waiters of a store to `key` becoming visible at `visible`.
  /// `writer_tid` names the storing task for critical-path edges (< 0:
  /// unknown writer; no edge is recorded).
  void notify(std::uint64_t key, Nanos visible, int writer_tid = -1);

  /// Barrier arrival (SyncPoint awaiter).
  void sync_arrive(Task::Handle h);

 private:
  struct Waiter {
    Task::Handle h;
    std::function<bool(Nanos)> try_wake;
    Nanos parked_at = 0;  ///< clock at park time (trace + diagnostics)
  };
  using WaiterList = SmallVec<Waiter, 4>;

  // Queue payloads are a tagged word: task entries carry the coroutine
  // frame address (always even), callback entries carry (pool index << 1)
  // | 1 — a queue entry is 24 bytes instead of the 56 the old QEntry with
  // an inline std::function needed.
  static std::uint64_t task_payload(Task::Handle h) {
    const auto p = reinterpret_cast<std::uint64_t>(h.address());
    CAPMEM_DCHECK((p & 1) == 0);
    return p;
  }

  void finish(Task::Handle h);
  void release_sync();
  void run_callback(std::uint64_t payload);
  void watchdog_check();
  [[noreturn]] void raise_abort(AbortKind kind, const std::string& reason);
  [[noreturn]] void report_deadlock();

  EventQueue run_q_;
  LineTable<WaiterList> parked_;
  /// 64-bit presence filter over parked wait keys: a zero bit proves no
  /// waiter, letting the per-store notify() miss in one branch. Set on
  /// park, reset only when the table drains (bits cannot be unset per-key).
  std::uint64_t park_filter_ = 0;
  static std::uint64_t filter_bit(std::uint64_t key) {
    return 1ull << ((key * 0x9E3779B97F4A7C15ull) >> 58);
  }
  std::vector<std::function<void()>> cb_pool_;
  std::vector<std::uint32_t> cb_free_;
  std::vector<Task::Handle> sync_q_;
  std::vector<Task::Handle> tasks_;
  Rng rng_;
  Nanos global_time_ = 0;
  std::uint64_t steps_ = 0;
  int live_ = 0;
  bool running_ = false;
  obs::TraceSink* trace_ = nullptr;
  obs::attr::Ledger* attr_ = nullptr;
  WatchdogBudget wd_;
  bool wd_armed_ = false;
};

}  // namespace capmem::sim
