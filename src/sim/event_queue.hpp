// Indexed two-level bucket (calendar) queue for the engine's run queue.
//
// The engine pops events in strictly nondecreasing virtual time, and almost
// every push lands within a few hundred nanoseconds of the current time — a
// binary heap pays O(log n) pointer-chasing per event for ordering power it
// never uses. This queue keys events into a power-of-two ring of buckets of
// kBucketNs virtual nanoseconds each; the current window covers buckets
// [base, base + kBuckets). Far-future events overflow into a min-heap and
// are drained into the ring whenever the window advances over them.
//
// Pop order is EXACTLY the total order min(t, then seq) — identical to the
// reference std::priority_queue — which tests/test_event_queue.cpp asserts
// against randomized schedules:
//   * the minimum live entry is always in the lowest occupied bucket (an
//     occupancy bitmap finds it in O(1) word scans); each bucket is a small
//     binary min-heap on (t, seq), so burst buckets (a barrier releasing N
//     tasks at one instant) pop in O(log k) instead of an O(k) scan;
//   * `seq` increments per push, so equal timestamps pop FIFO — the
//     tie-break the simulator's determinism depends on;
//   * a push below the window base (the engine tolerates epsilon-late
//     events) is clamped into the base bucket. That cannot reorder pops:
//     the base bucket is always the next one scanned, and the base only
//     advances over empty buckets, so among live entries a later equal-t
//     push can never land in an earlier bucket;
//   * the overflow heap's minimum is always at or beyond the window end
//     (drained on every base advance), so no ring entry can be beaten by a
//     hidden overflow entry.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace capmem::sim {

class EventQueue {
 public:
  struct Entry {
    Nanos t;
    std::uint64_t seq;
    std::uint64_t payload;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  bool empty() const { return in_window_ == 0 && overflow_.empty(); }
  std::size_t size() const { return in_window_ + overflow_.size(); }

  void push(Nanos t, std::uint64_t payload) {
    CAPMEM_DCHECK(t >= 0);
    const std::uint64_t seq = seq_++;
    if (empty()) base_bucket_ = bucket_of(t);
    std::uint64_t b = bucket_of(t);
    if (b < base_bucket_) b = base_bucket_;  // epsilon-late: see header
    if (b < base_bucket_ + kBuckets) {
      place(b, Entry{t, seq, payload});
    } else {
      overflow_.push(Entry{t, seq, payload});
    }
  }

  Entry pop_min() {
    CAPMEM_DCHECK(!empty());
    if (in_window_ == 0) {
      // Ring empty: jump the window to the overflow minimum.
      base_bucket_ = bucket_of(overflow_.top().t);
      drain_overflow();
    }
    const std::size_t base_slot = base_bucket_ & kMask;
    const std::size_t slot = next_occupied(base_slot);
    const std::uint64_t dist = (slot - base_slot) & kMask;
    if (dist > 0) {
      base_bucket_ += dist;
      drain_overflow();
    }
    std::vector<Entry>& v = ring_[slot];
    const Entry e = v.front();
    std::pop_heap(v.begin(), v.end(), std::greater<Entry>{});
    v.pop_back();
    if (v.empty()) clear_bit(slot);
    --in_window_;
    return e;
  }

 private:
  static constexpr std::size_t kBuckets = 1024;  // power of two
  static constexpr std::size_t kMask = kBuckets - 1;
  /// Bucket granularity in virtual ns: fine enough that a typical access
  /// latency (~100-300 ns) spreads over many buckets, wide enough that a
  /// 2 us window catches nearly every push (the rest overflow safely).
  static constexpr double kInvBucketNs = 0.5;  // 1 / 2.0 ns

  static std::uint64_t bucket_of(Nanos t) {
    return static_cast<std::uint64_t>(t * kInvBucketNs);
  }

  void place(std::uint64_t bucket, Entry e) {
    CAPMEM_DCHECK(bucket >= base_bucket_ &&
                  bucket < base_bucket_ + kBuckets);
    const std::size_t slot = bucket & kMask;
    std::vector<Entry>& v = ring_[slot];
    if (v.empty()) set_bit(slot);
    v.push_back(e);
    std::push_heap(v.begin(), v.end(), std::greater<Entry>{});
    ++in_window_;
  }

  /// Moves every overflow entry now inside the window into the ring. The
  /// heap minimum bounds all others, so this is O(1) when nothing drains.
  void drain_overflow() {
    while (!overflow_.empty() &&
           bucket_of(overflow_.top().t) < base_bucket_ + kBuckets) {
      place(bucket_of(overflow_.top().t), overflow_.top());
      overflow_.pop();
    }
  }

  void set_bit(std::size_t slot) {
    occupied_[slot >> 6] |= 1ull << (slot & 63);
  }
  void clear_bit(std::size_t slot) {
    occupied_[slot >> 6] &= ~(1ull << (slot & 63));
  }

  /// First occupied slot at or cyclically after `from` (the window is at
  /// most kBuckets wide, so cyclic slot order equals bucket order).
  std::size_t next_occupied(std::size_t from) const {
    std::size_t w = from >> 6;
    std::uint64_t word = occupied_[w] & (~0ull << (from & 63));
    for (std::size_t n = 0; n <= kWords; ++n) {
      if (word != 0) {
        return (w << 6) + static_cast<std::size_t>(
                              __builtin_ctzll(word));
      }
      w = (w + 1) & (kWords - 1);
      word = occupied_[w];
    }
    CAPMEM_CHECK_MSG(false, "EventQueue: bitmap empty with in_window_ > 0");
  }

  static constexpr std::size_t kWords = kBuckets / 64;

  std::vector<Entry> ring_[kBuckets];
  std::uint64_t occupied_[kWords] = {};
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      overflow_;
  std::uint64_t base_bucket_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t in_window_ = 0;
};

}  // namespace capmem::sim
