// Validation hook seam of the memory system (capmem::check attaches here).
//
// A CheckHook is a pure observer of the simulator's execution stream: the
// memory system reports every timed access (in execution order, which is the
// order stores become architecturally visible), every MESIF directory
// transition, every home-CHA resolution, and the untimed maintenance
// operations (flush / entry drop / reset). Like obs::TraceSink, the hook is
// carried by a nullable, non-owning MachineConfig pointer; the disabled path
// is a single branch and attached hooks must never steer the simulation
// (no RNG draws, no state mutation, no scheduling influence).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/address.hpp"

namespace capmem::sim {

class MemSystem;
struct LineEntry;
struct AccessResult;
struct Placement;
enum class AccessType;

/// One timed access, as reported to CheckHook::on_access.
struct AccessRecord {
  int tid = -1;
  int core = -1;
  int tile = -1;
  Line line = 0;
  AccessType type{};
  bool nt = false;          ///< non-temporal store (bypassed the hierarchy)
  bool streaming = false;   ///< part of a pipelined multi-line stream
  Nanos start = 0;          ///< task clock when the access was issued
  Nanos finish = 0;         ///< completion time (AccessResult::finish)
  /// Directory version of the line after the access (0 when untracked).
  std::uint64_t version_after = 0;
};

/// Observer interface for model-based checking. All callbacks fire
/// synchronously from MemSystem in execution order.
class CheckHook {
 public:
  virtual ~CheckHook() = default;

  /// After every timed access (reads, writes, NT stores, streaming lines).
  virtual void on_access(const AccessRecord& rec) = 0;

  /// After a MESIF directory transition; `entry` is the post-transition
  /// state and `mem` allows cross-structure queries (L1/L2 residency).
  virtual void on_transition(Line line, const LineEntry& entry,
                             const MemSystem& mem) = 0;

  /// A directory request for `line` with allocation placement `place` was
  /// resolved to home CHA `home_tile`.
  virtual void on_dir_lookup(Line line, const Placement& place,
                             int home_tile) = 0;

  /// Untimed flush of `line` (harness reset primitive).
  virtual void on_flush(Line line) = 0;

  /// The directory entry of `line` was dropped (went globally invalid, e.g.
  /// by L2 eviction of the last copy). Its version counter restarts at 0.
  virtual void on_drop(Line line) = 0;

  /// Untimed whole-machine reset (between experiments).
  virtual void on_reset() = 0;
};

}  // namespace capmem::sim
