// Open-addressing hash table mapping cache-line indices to LineEntry records.
//
// This is the hottest data structure in the simulator (every timed access
// touches it several times); std::unordered_map's node-based layout was
// measured at >60% of total runtime. Design:
//   * linear probing over a power-of-two slot array of (key, index) pairs —
//     12 bytes per slot, cache friendly;
//   * values live in a deque-backed pool with a free list, so references to
//     live entries are NEVER invalidated by other inserts or erases;
//   * erase uses backward-shift deletion (no tombstones, no degradation).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/check.hpp"

namespace capmem::sim {

template <typename Value>
class LineTable {
 public:
  LineTable() { rehash(1024); }

  std::size_t size() const { return size_; }

  /// Value slots ever allocated (live + free-listed). Erased slots are
  /// reused, so this plateaus on steady-state workloads; memory-stability
  /// tests gauge it.
  std::size_t pool_slots() const { return pool_.size(); }

  /// Pointer to the value for `key`, or nullptr.
  Value* find(std::uint64_t key) {
    std::size_t i = probe_start(key);
    while (slots_[i].idx != kEmpty) {
      if (slots_[i].key == key)
        return &pool_[slots_[i].idx];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Value* find(std::uint64_t key) const {
    return const_cast<LineTable*>(this)->find(key);
  }

  /// Value for `key`, default-constructing it if absent. The returned
  /// reference stays valid until this exact key is erased.
  Value& get_or_create(std::uint64_t key) {
    if (size_ + size_ / 4 >= slots_.size()) rehash(slots_.size() * 2);
    std::size_t i = probe_start(key);
    while (slots_[i].idx != kEmpty) {
      if (slots_[i].key == key) return pool_[slots_[i].idx];
      i = (i + 1) & mask_;
    }
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      pool_[idx] = Value{};
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    slots_[i] = Slot{key, idx};
    ++size_;
    return pool_[idx];
  }

  /// Removes `key` if present; returns whether it was.
  bool erase(std::uint64_t key) {
    std::size_t i = probe_start(key);
    while (slots_[i].idx != kEmpty) {
      if (slots_[i].key == key) {
        free_.push_back(slots_[i].idx);
        backward_shift(i);
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void clear() {
    for (auto& s : slots_) s.idx = kEmpty;
    pool_.clear();
    free_.clear();
    size_ = 0;
  }

  /// Visits every (key, value). Order unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.idx != kEmpty) fn(s.key, pool_[s.idx]);
    }
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t idx = kEmpty;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 29;
    return x;
  }
  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  void backward_shift(std::size_t hole) {
    std::size_t i = hole;
    while (true) {
      i = (i + 1) & mask_;
      if (slots_[i].idx == kEmpty) break;
      const std::size_t home = probe_start(slots_[i].key);
      // Move slot i into the hole unless it sits between home and hole
      // (cyclic test: the element must probe *through* the hole).
      const bool movable =
          ((i - home) & mask_) >= ((i - hole) & mask_);
      if (movable) {
        slots_[hole] = slots_[i];
        hole = i;
      }
    }
    slots_[hole] = Slot{};
  }

  void rehash(std::size_t new_cap) {
    CAPMEM_CHECK((new_cap & (new_cap - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (const Slot& s : old) {
      if (s.idx == kEmpty) continue;
      std::size_t i = probe_start(s.key);
      while (slots_[i].idx != kEmpty) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::deque<Value> pool_;
  std::vector<std::uint32_t> free_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace capmem::sim
