#include "sim/machine.hpp"

#include <algorithm>
#include <cstring>

namespace capmem::sim {

// ---------------------------------------------------------------- awaiters

namespace detail {

void LineOp::await_suspend(Task::Handle h) {
  auto& p = h.promise();
  const Allocation& al = m->allocation_of(addr);
  const Nanos from = p.clock;
  out = m->memsys().access(ctx->tid(), ctx->core(), line_of(addr), al.place,
                       type, opts, p.clock);
  p.clock = out.finish;
  if (obs::attr::Ledger* led = m->attr()) {
    led->charge(ctx->tid(), attr_cat(out.level), from, p.clock);
  }
  if (is_u64) {
    if (is_rmw) {
      loaded = m->space().load<std::uint64_t>(addr);
      m->space().store<std::uint64_t>(addr, loaded + store_value);
    } else if (type == AccessType::kRead) {
      loaded = m->space().load<std::uint64_t>(addr);
    } else {
      m->space().store<std::uint64_t>(addr, store_value);
    }
  }
  if (type == AccessType::kWrite) {
    m->engine().notify(line_of(addr), out.finish, ctx->tid());
  }
  p.engine->requeue(h);
}

namespace {

// One chunk step of a RangeOp: advances the task clock through up to
// `chunk_lines` lines of the kernel. Shared by the initial suspend and the
// pump callbacks.
void range_step(RangeOp& op, Task::Handle h) {
  auto& p = h.promise();
  Machine& m = *op.m;
  const int tid = op.ctx->tid();
  const int core = op.ctx->core();
  obs::attr::Ledger* const led = m.attr();

  // One timed line access: advance the task clock and, with the ledger
  // attached, charge the interval to the serving level's category.
  const auto timed = [&](Addr a, const Placement& place, AccessType t,
                         const AccessOpts& ao) {
    const Nanos from = p.clock;
    const AccessResult r =
        m.memsys().access(tid, core, line_of(a), place, t, ao, p.clock);
    p.clock = r.finish;
    if (led != nullptr) led->charge(tid, attr_cat(r.level), from, p.clock);
  };

  AccessOpts read_opts;
  read_opts.vector = op.opts.vector;
  read_opts.streaming = true;
  AccessOpts write_opts = read_opts;
  write_opts.nt = op.opts.nt;
  // Copy/triad stores are part of a mixed read+write stream; pure write
  // streams pay the memory write-turnaround occupancy.
  write_opts.copy_pair = op.kind == RangeOp::Kind::kCopy ||
                         op.kind == RangeOp::Kind::kTriad;

  const std::uint64_t chunk =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(op.opts.chunk_lines),
                              op.total_lines - op.done_lines);
  for (std::uint64_t i = 0; i < chunk; ++i) {
    const std::uint64_t off = (op.done_lines + i) * kLineBytes;
    switch (op.kind) {
      case RangeOp::Kind::kRead: {
        const Allocation& al = m.allocation_of(op.a);
        timed(op.a + off, al.place, AccessType::kRead, read_opts);
        break;
      }
      case RangeOp::Kind::kWrite: {
        const Allocation& al = m.allocation_of(op.a);
        timed(op.a + off, al.place, AccessType::kWrite, write_opts);
        m.engine().notify(line_of(op.a + off), p.clock, tid);
        break;
      }
      case RangeOp::Kind::kCopy: {
        const Allocation& src = m.allocation_of(op.b);
        AccessOpts ro = read_opts;
        ro.copy_pair = true;
        timed(op.b + off, src.place, AccessType::kRead, ro);
        const Allocation& dst = m.allocation_of(op.a);
        timed(op.a + off, dst.place, AccessType::kWrite, write_opts);
        if (op.move_data && src.has_data && dst.has_data) {
          const std::uint64_t n = std::min<std::uint64_t>(
              kLineBytes, op.bytes - (op.done_lines + i) * kLineBytes);
          std::memcpy(m.space().data(op.a + off, n),
                      m.space().data(op.b + off, n), n);
        }
        m.engine().notify(line_of(op.a + off), p.clock, tid);
        break;
      }
      case RangeOp::Kind::kTriad: {
        const Allocation& b = m.allocation_of(op.b);
        const Allocation& c = m.allocation_of(op.c);
        const Allocation& a = m.allocation_of(op.a);
        AccessOpts ro = read_opts;
        ro.copy_pair = true;
        timed(op.b + off, b.place, AccessType::kRead, ro);
        timed(op.c + off, c.place, AccessType::kRead, ro);
        timed(op.a + off, a.place, AccessType::kWrite, write_opts);
        m.engine().notify(line_of(op.a + off), p.clock, tid);
        break;
      }
    }
  }
  op.done_lines += chunk;
}

void range_pump(RangeOp* op, Task::Handle h) {
  range_step(*op, h);
  if (op->done_lines >= op->total_lines) {
    h.promise().engine->requeue(h);
    return;
  }
  h.promise().engine->schedule(h.promise().clock,
                               [op, h] { range_pump(op, h); });
}

}  // namespace

bool RangeOp::await_suspend(Task::Handle h) {
  range_step(*this, h);
  if (done_lines >= total_lines) {
    // Completed within the first chunk: resume immediately, but still go
    // through the scheduler so virtual-time ordering is preserved.
    h.promise().engine->requeue(h);
    return true;
  }
  RangeOp* self = this;  // awaiter frame is stable while suspended
  h.promise().engine->schedule(h.promise().clock,
                               [self, h] { range_pump(self, h); });
  return true;
}

bool WaitU64::probe(Task::Handle h, Nanos at) {
  AccessOpts o;
  o.polling = true;
  const Allocation& al = m->allocation_of(addr);
  const Nanos parked_from = h.promise().clock;
  const AccessResult r = m->memsys().access(ctx->tid(), ctx->core(),
                                        line_of(addr), al.place,
                                        AccessType::kRead, o, at);
  h.promise().clock = r.finish;
  if (obs::attr::Ledger* led = m->attr()) {
    // The interval up to the wake probe is time parked on the line; the
    // probe itself is a polling read charged at its serving level.
    led->charge(ctx->tid(), obs::attr::TimeCat::kParkWait, parked_from, at);
    led->charge(ctx->tid(), attr_cat(r.level), at, r.finish);
  }
  seen = m->space().load<std::uint64_t>(addr);
  return matches(seen);
}

void WaitU64::await_suspend(Task::Handle h) {
  if (probe(h, h.promise().clock)) {
    h.promise().engine->requeue(h);
    return;
  }
  WaitU64* self = this;
  m->engine().park(line_of(addr), h, [self, h](Nanos visible) {
    return self->probe(h, std::max(h.promise().clock, visible));
  });
}

}  // namespace detail

// --------------------------------------------------------------------- Ctx

int Ctx::tile() const { return m_->topology().tile_of_core(slot_.core); }

int Ctx::domain() const {
  return m_->topology().domain_of_tile(tile(), m_->config().cluster);
}

Nanos Ctx::now() const {
  return m_->engine().task_handle(tid_).promise().clock;
}

AdvanceTo Ctx::until_tsc(std::uint64_t ticks) const {
  const double res = m_->config().tsc_resolution_ns;
  return AdvanceTo{static_cast<double>(ticks) * res -
                   m_->tsc_skew(slot_.core)};
}

std::uint64_t Ctx::rdtsc() const {
  const double t = now() + m_->tsc_skew(slot_.core);
  const double res = m_->config().tsc_resolution_ns;
  return static_cast<std::uint64_t>(t / res);
}

detail::LineOp Ctx::touch(Addr a, AccessType t, AccessOpts o) {
  return detail::LineOp{m_, this, a, t, o, 0, false, false, {}, 0};
}

detail::ReadU64 Ctx::read_u64(Addr a, AccessOpts o) {
  return detail::ReadU64{detail::LineOp{m_, this, a, AccessType::kRead, o, 0,
                                        true, false, {}, 0}};
}

detail::LineOp Ctx::write_u64(Addr a, std::uint64_t v, AccessOpts o) {
  return detail::LineOp{m_, this, a, AccessType::kWrite,
                        o,  v,    true, false, {}, 0};
}

detail::ReadU64 Ctx::fetch_add_u64(Addr a, std::uint64_t delta,
                                   AccessOpts o) {
  return detail::ReadU64{detail::LineOp{m_, this, a, AccessType::kWrite, o,
                                        delta, true, true, {}, 0}};
}

detail::WaitU64 Ctx::wait_eq(Addr a, std::uint64_t v) {
  return detail::WaitU64{m_, this, a, v, false, 0};
}

detail::WaitU64 Ctx::wait_ne(Addr a, std::uint64_t v) {
  return detail::WaitU64{m_, this, a, v, true, 0};
}

detail::RangeOp Ctx::read_buf(Addr src, std::uint64_t bytes, BufOpts o) {
  detail::RangeOp op;
  op.m = m_;
  op.ctx = this;
  op.kind = detail::RangeOp::Kind::kRead;
  op.a = src;
  op.bytes = bytes;
  op.opts = o;
  return op;
}

detail::RangeOp Ctx::write_buf(Addr dst, std::uint64_t bytes, BufOpts o) {
  detail::RangeOp op;
  op.m = m_;
  op.ctx = this;
  op.kind = detail::RangeOp::Kind::kWrite;
  op.a = dst;
  op.bytes = bytes;
  op.opts = o;
  return op;
}

detail::RangeOp Ctx::copy(Addr dst, Addr src, std::uint64_t bytes,
                          BufOpts o) {
  detail::RangeOp op;
  op.m = m_;
  op.ctx = this;
  op.kind = detail::RangeOp::Kind::kCopy;
  op.a = dst;
  op.b = src;
  op.bytes = bytes;
  op.opts = o;
  op.move_data = true;
  return op;
}

detail::RangeOp Ctx::triad(Addr dst, Addr src1, Addr src2,
                           std::uint64_t bytes, BufOpts o) {
  detail::RangeOp op;
  op.m = m_;
  op.ctx = this;
  op.kind = detail::RangeOp::Kind::kTriad;
  op.a = dst;
  op.b = src1;
  op.c = src2;
  op.bytes = bytes;
  op.opts = o;
  return op;
}

std::uint64_t Ctx::peek_u64(Addr a) const {
  return m_->space_.load<std::uint64_t>(a);
}

void Ctx::poke_u64(Addr a, std::uint64_t v) {
  m_->space_.store<std::uint64_t>(a, v);
}

// ----------------------------------------------------------------- Machine

Machine::Machine(MachineConfig cfg)
    : cfg_(std::move(cfg)),
      topo_(cfg_),
      engine_(cfg_.seed),
      mem_(cfg_, topo_, engine_.rng()) {
  cfg_.validate();
  engine_.set_trace(cfg_.trace);
  engine_.set_watchdog(cfg_.watchdog);
  if (cfg_.attr != nullptr) {
    attr_ledger_ =
        std::make_unique<obs::attr::Ledger>(cfg_.active_tiles);
    engine_.set_attr(attr_ledger_.get());
    mem_.set_attr(attr_ledger_.get());
  }
  Rng skew_rng(cfg_.seed ^ 0x75c5u);
  tsc_skew_.resize(static_cast<std::size_t>(cfg_.cores()));
  for (auto& s : tsc_skew_) {
    s = skew_rng.uniform(-cfg_.tsc_skew_ns, cfg_.tsc_skew_ns);
  }
}

Addr Machine::alloc(std::string name, std::uint64_t bytes, Placement place,
                    bool with_data) {
  if (cfg_.memory == MemoryMode::kCache) {
    CAPMEM_CHECK_MSG(place.kind == MemKind::kDDR,
                     "cache mode exposes no MCDRAM address range (alloc '"
                         << name << "')");
  }
  last_alloc_ = nullptr;
  return space_.alloc(std::move(name), bytes, place, with_data);
}

int Machine::add_thread(CpuSlot slot, Program program) {
  CAPMEM_CHECK(!ran_);
  CAPMEM_CHECK(slot.core >= 0 && slot.core < cfg_.cores());
  CAPMEM_CHECK(slot.smt >= 0 && slot.smt < cfg_.threads_per_core);
  ctxs_.emplace_back();
  Ctx& ctx = ctxs_.back();
  ctx.m_ = this;
  ctx.slot_ = slot;
  programs_.push_back(std::move(program));
  return static_cast<int>(ctxs_.size()) - 1;
}

void Machine::run() {
  CAPMEM_CHECK_MSG(!ran_, "Machine::run is one-shot; build a new Machine");
  ran_ = true;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    Ctx& ctx = ctxs_[i];
    Task t = programs_[i](ctx);
    const int tid = engine_.spawn(std::move(t));
    ctx.tid_ = tid;
    if (attr_ledger_) {
      attr_ledger_->set_task_tile(tid, topo_.tile_of_core(ctx.slot_.core));
    }
  }
  engine_.run();
  if (attr_ledger_) flush_attr();
  if (cfg_.metrics != nullptr) {
    mem_.flush_metrics(engine_.now());
    // Park-table health: keys must drain to zero on a clean run, and the
    // pool high-water mark stays at the peak number of concurrently parked
    // wait keys (slots are free-listed, not leaked per park/wake cycle).
    cfg_.metrics->set("sim.engine.park.keys",
                      static_cast<double>(engine_.parked_keys()));
    cfg_.metrics->set("sim.engine.park.pool_slots",
                      static_cast<double>(engine_.parked_pool_slots()));
  }
}

void Machine::flush_attr() {
  obs::attr::Ledger& led = *attr_ledger_;
  led.set_channel_busy(mem_.dram_busy_ns(), mem_.mcdram_busy_ns());
  led.finalize(engine_.now());
  if (cfg_.metrics != nullptr) {
    obs::Registry& reg = *cfg_.metrics;
    for (int c = 0; c < static_cast<int>(obs::attr::TimeCat::kCount); ++c) {
      const auto cat = static_cast<obs::attr::TimeCat>(c);
      const obs::attr::Ticks t = led.total(cat);
      if (t == 0) continue;
      reg.add(std::string("attr.time.") + obs::attr::to_string(cat) + "_ns",
              obs::attr::to_ns(t));
    }
    reg.add("attr.total_ns", obs::attr::to_ns(led.total_all()));
    reg.add("attr.unattributed_ns", obs::attr::to_ns(led.unattributed()));
    reg.add("attr.mesh.hops_vertical",
            static_cast<double>(led.hops_vertical()));
    reg.add("attr.mesh.hops_horizontal",
            static_cast<double>(led.hops_horizontal()));
    reg.add("attr.dir.lookups", static_cast<double>(led.dir_lookups_total()));
  }
  if (cfg_.trace != nullptr) {
    const std::vector<obs::attr::PathLink> path = led.critical_path();
    int ordinal = 0;
    for (const obs::attr::PathLink& l : path) {
      if (l.pred < 0) continue;
      obs::TraceEvent e;
      e.kind = obs::EventKind::kCritEdge;
      e.t = l.t;
      e.dur = l.dur;
      e.tid = l.tid;
      e.tile = l.tile;
      e.line = l.key;
      e.a = l.pred;
      e.b = ordinal++;
      e.label = l.kind;
      cfg_.trace->on_event(e);
    }
  }
  if (cfg_.attr != nullptr) {
    const std::string label = cfg_.name + "/" + to_string(cfg_.cluster) +
                              "/" + to_string(cfg_.memory) + "/" +
                              to_string(cfg_.protocol);
    cfg_.attr->merge(led, label);
  }
}

void Machine::flush_buffer(Addr base, std::uint64_t bytes,
                           bool drop_mcdram_cache) {
  const Line first = line_of(base);
  const Line last = line_of(base + bytes - 1);
  for (Line l = first; l <= last; ++l) mem_.flush_line(l, drop_mcdram_cache);
}

const Allocation& Machine::allocation_of(Addr a) {
  if (last_alloc_ != nullptr && last_alloc_->contains(a)) return *last_alloc_;
  last_alloc_ = &space_.find(a);
  return *last_alloc_;
}

}  // namespace capmem::sim
