// Machine: the public facade of the simulated KNL.
//
// Usage pattern (a "program" is a coroutine running on one simulated HW
// thread):
//
//   Machine m(knl7210(ClusterMode::kSNC4, MemoryMode::kFlat));
//   Addr buf = m.alloc("buf", MiB(1), {MemKind::kMCDRAM, std::nullopt});
//   m.add_thread({.core = 0, .smt = 0}, [&](Ctx& ctx) -> Task {
//     co_await ctx.copy(dst, src, MiB(1), {.nt = true});
//     co_await ctx.sync();
//   });
//   m.run();
//
// A Machine executes exactly one run(): construct a fresh one per
// experiment repetition (construction is cheap; all heavy state is lazy).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/attr.hpp"
#include "sim/address.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/memsys.hpp"
#include "sim/thread.hpp"
#include "sim/topology.hpp"

namespace capmem::sim {

class Machine;
class Ctx;

/// Options for buffer-level operations.
struct BufOpts {
  bool vector = true;
  bool nt = false;
  /// Lines processed per scheduler step. The default of 1 keeps every
  /// resource reservation in global virtual-time order, which concurrent
  /// bandwidth sharing requires (larger chunks let one thread reserve
  /// channel slots "in the future", inflating the queueing other threads
  /// see). Raise it only for phases with no cross-thread resource sharing.
  int chunk_lines = 1;
};

namespace detail {

/// Awaiter performing one timed line access.
struct LineOp {
  Machine* m;
  Ctx* ctx;
  Addr addr;
  AccessType type;
  AccessOpts opts;
  std::uint64_t store_value = 0;  // for write_u64 / fetch_add delta
  bool is_u64 = false;
  bool is_rmw = false;            // fetch_add: loaded = old, stores old+delta
  AccessResult out;
  std::uint64_t loaded = 0;

  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h);
  AccessResult await_resume() const noexcept { return out; }
};

/// Awaiter that reads a 64-bit value with timing; resumes to the value
/// (also used for fetch_add, resuming to the previous value).
struct ReadU64 {
  LineOp inner;
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) { inner.await_suspend(h); }
  std::uint64_t await_resume() const noexcept { return inner.loaded; }
};

/// Awaiter processing a multi-line buffer operation in chunks, so
/// concurrent threads interleave their resource reservations fairly.
struct RangeOp {
  enum class Kind { kRead, kWrite, kCopy, kTriad };
  Machine* m;
  Ctx* ctx;
  Kind kind;
  Addr a = 0;  // dst (write/copy/triad) or src (read)
  Addr b = 0;  // src (copy), src1 (triad)
  Addr c = 0;  // src2 (triad)
  std::uint64_t bytes = 0;
  BufOpts opts;
  bool move_data = false;

  std::uint64_t done_lines = 0;
  std::uint64_t total_lines = 0;

  bool await_ready() noexcept {
    total_lines = lines_for(bytes);
    return total_lines == 0;
  }
  bool await_suspend(Task::Handle h);  // returns false when finished
  void await_resume() const noexcept {}
};

/// Awaiter that spin-waits until a predicate on a 64-bit word holds.
struct WaitU64 {
  Machine* m;
  Ctx* ctx;
  Addr addr;
  std::uint64_t expect = 0;
  bool wait_not_equal = false;  // false: until ==expect; true: until !=expect
  std::uint64_t seen = 0;

  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h);
  std::uint64_t await_resume() const noexcept { return seen; }

 private:
  bool matches(std::uint64_t v) const {
    return wait_not_equal ? v != expect : v == expect;
  }
  bool probe(Task::Handle h, Nanos at);
};

}  // namespace detail

/// Per-simulated-thread context: the API surface available inside programs.
class Ctx {
 public:
  int tid() const { return tid_; }
  int core() const { return slot_.core; }
  int smt() const { return slot_.smt; }
  int tile() const;
  /// This thread's cluster domain under the machine's mode.
  int domain() const;

  /// Current virtual time of this thread.
  Nanos now() const;

  /// Simulated TSC read: quantized, per-core skewed (paper §III.B).
  std::uint64_t rdtsc() const;

  Machine& machine() { return *m_; }

  // --- timed operations (all must be co_awaited) ---

  /// Pure compute for `ns` nanoseconds.
  Advance compute(Nanos ns) const { return Advance{ns}; }

  /// Harness barrier: aligns all live threads' clocks (zero simulated
  /// cost). Stands in for the TSC-window synchronization.
  SyncPoint sync() const { return SyncPoint{}; }

  /// Sleeps until virtual time `t` (no-op if already past).
  AdvanceTo until(Nanos t) const { return AdvanceTo{t}; }

  /// Sleeps until this core's raw TSC reads at least `ticks` — the
  /// spin-until-TSC primitive the window-synchronized harness uses (the
  /// conversion to virtual time applies the core's true skew internally,
  /// exactly like hardware spinning on rdtsc would).
  AdvanceTo until_tsc(std::uint64_t ticks) const;

  /// Timed single-line read / write (no data movement).
  detail::LineOp touch(Addr a, AccessType t, AccessOpts o = {});

  /// Timed 64-bit load/store with data.
  detail::ReadU64 read_u64(Addr a, AccessOpts o = {});
  detail::LineOp write_u64(Addr a, std::uint64_t v, AccessOpts o = {});

  /// Atomic fetch-and-add (lock xadd): one exclusive (write-class) access;
  /// resumes to the previous value. Atomic because simulator operations
  /// are indivisible in virtual time.
  detail::ReadU64 fetch_add_u64(Addr a, std::uint64_t delta,
                                AccessOpts o = {});

  /// Spin until the word at `a` equals / no longer equals `v`.
  detail::WaitU64 wait_eq(Addr a, std::uint64_t v);
  detail::WaitU64 wait_ne(Addr a, std::uint64_t v);

  /// Streaming kernels over [base, base+bytes):
  ///   read_buf : a = b[i]    (one load stream)
  ///   write_buf: b[i] = a    (one store stream; RFO unless nt)
  ///   copy     : a[i] = b[i] (moves data when both buffers carry data)
  ///   triad    : a[i] = b[i] + s*c[i]
  detail::RangeOp read_buf(Addr src, std::uint64_t bytes, BufOpts o = {});
  detail::RangeOp write_buf(Addr dst, std::uint64_t bytes, BufOpts o = {});
  detail::RangeOp copy(Addr dst, Addr src, std::uint64_t bytes,
                       BufOpts o = {});
  detail::RangeOp triad(Addr dst, Addr src1, Addr src2, std::uint64_t bytes,
                        BufOpts o = {});

  // --- untimed data access (harness setup/verification only) ---
  std::uint64_t peek_u64(Addr a) const;
  void poke_u64(Addr a, std::uint64_t v);

 private:
  friend class Machine;
  Machine* m_ = nullptr;
  int tid_ = -1;
  CpuSlot slot_;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  const MachineConfig& config() const { return cfg_; }
  const Topology& topology() const { return topo_; }
  MemSystem& memsys() { return mem_; }
  Engine& engine() { return engine_; }
  AddressSpace& space() { return space_; }

  /// Allocates a buffer. `with_data` buffers carry real bytes (flags,
  /// payloads, sort data); dataless buffers are timing-only.
  Addr alloc(std::string name, std::uint64_t bytes, Placement place = {},
             bool with_data = false);
  void free(Addr base) {
    last_alloc_ = nullptr;
    space_.free(base);
  }

  /// Registers a program pinned to `slot`. Returns its thread id.
  using Program = std::function<Task(Ctx&)>;
  int add_thread(CpuSlot slot, Program program);

  /// Runs all registered programs to completion. One-shot.
  void run();

  /// Virtual time at which the last event executed.
  Nanos elapsed() const { return engine_.now(); }

  /// Untimed flush of a whole buffer from all caches (harness resets).
  void flush_buffer(Addr base, std::uint64_t bytes,
                    bool drop_mcdram_cache = true);

  /// Placement of the allocation containing `a` (cached lookup).
  const Allocation& allocation_of(Addr a);

  /// TSC skew of a core (tests need it to validate the window sync).
  Nanos tsc_skew(int core) const {
    return tsc_skew_.at(static_cast<std::size_t>(core));
  }

  // --- resource utilization accessors (post-run observability) ---

  /// Busy time of one DRAM / MCDRAM channel so far.
  Nanos dram_channel_busy(int channel) const {
    return mem_.dram_pool().busy(channel);
  }
  Nanos mcdram_channel_busy(int channel) const {
    return mem_.mcdram_pool().busy(channel);
  }
  /// Pool utilization over the run: total busy time across channels divided
  /// by (channels * elapsed). 0 before run() or for a zero-length run.
  double dram_utilization() const {
    const Nanos t = elapsed();
    return t > 0 ? mem_.dram_pool().busy_total() /
                       (t * mem_.dram_pool().size())
                 : 0.0;
  }
  double mcdram_utilization() const {
    const Nanos t = elapsed();
    return t > 0 ? mem_.mcdram_pool().busy_total() /
                       (t * mem_.mcdram_pool().size())
                 : 0.0;
  }
  /// Busy time of one core's load/store issue ports.
  Nanos core_issue_busy(int core) const { return mem_.core_issue_busy(core); }
  /// Busy time of one tile's L2 supply port (cache-to-cache source side).
  Nanos l2_supply_busy(int tile) const { return mem_.l2_supply_busy(tile); }

  /// The per-run attribution ledger (null unless MachineConfig::attr is
  /// set). Owned by the Machine; finalized and merged into cfg.attr at the
  /// end of run().
  obs::attr::Ledger* attr() const { return attr_ledger_.get(); }

 private:
  friend class Ctx;
  friend struct detail::LineOp;
  friend struct detail::RangeOp;
  friend struct detail::WaitU64;

  /// Post-run attribution epilogue: feeds channel busy time, finalizes the
  /// ledger (conservation becomes checkable), rolls per-category totals into
  /// cfg_.metrics, emits critical-path flow events into cfg_.trace, and
  /// merges into the shared cfg_.attr sink.
  void flush_attr();

  MachineConfig cfg_;
  Topology topo_;
  Engine engine_;
  MemSystem mem_;
  AddressSpace space_;
  std::deque<Ctx> ctxs_;
  std::vector<Program> programs_;
  std::vector<Nanos> tsc_skew_;
  std::unique_ptr<obs::attr::Ledger> attr_ledger_;
  const Allocation* last_alloc_ = nullptr;
  bool ran_ = false;
};

}  // namespace capmem::sim
