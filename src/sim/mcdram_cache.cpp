#include "sim/mcdram_cache.hpp"

namespace capmem::sim {

McdramCache::McdramCache(std::uint64_t capacity_bytes)
    : sets_count_(capacity_bytes / kLineBytes) {}

bool McdramCache::probe(Line line) const {
  if (!enabled()) return false;
  const auto it = tags_.find(set_of(line));
  return it != tags_.end() && it->second == line;
}

McdramCache::Access McdramCache::access(Line line) {
  CAPMEM_CHECK(enabled());
  Access out;
  auto [it, inserted] = tags_.try_emplace(set_of(line), line);
  if (!inserted) {
    if (it->second == line) {
      out.hit = true;
      return out;
    }
    out.evicted = it->second;
    it->second = line;
  }
  return out;
}

void McdramCache::erase(Line line) {
  if (!enabled()) return;
  const auto it = tags_.find(set_of(line));
  if (it != tags_.end() && it->second == line) tags_.erase(it);
}

void McdramCache::clear() { tags_.clear(); }

}  // namespace capmem::sim
