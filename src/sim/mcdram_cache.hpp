// Memory-side MCDRAM cache model for the cache and hybrid memory modes
// (paper §II.C): direct mapped on physical line addresses, 64 B lines,
// inclusive of all modified L2 lines (write-backs go to MCDRAM), with a
// snoop before evicting a line that may be modified in an L2.
//
// Only touched sets are materialized, so a full-size (16 GB) cache costs
// host memory proportional to the working set, not the capacity.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/address.hpp"

namespace capmem::sim {

class McdramCache {
 public:
  /// `capacity_bytes` rounded down to whole lines; 0 disables the cache
  /// (flat mode).
  explicit McdramCache(std::uint64_t capacity_bytes);

  bool enabled() const { return sets_count_ > 0; }
  std::uint64_t sets() const { return sets_count_; }

  /// Result of looking up / filling one line.
  struct Access {
    bool hit = false;
    /// Line evicted by a fill (direct-mapped conflict), if any.
    std::optional<Line> evicted;
  };

  /// Probe without filling.
  bool probe(Line line) const;

  /// Probe and, on miss, fill (data read from DDR is sent to MCDRAM and the
  /// requesting tile simultaneously, so every miss fills).
  Access access(Line line);

  /// Write-back from an L2 lands in MCDRAM (the cache is inclusive of
  /// modified lines); same fill behaviour.
  Access write_back(Line line) { return access(line); }

  /// Invalidate (benchmark flush support).
  void erase(Line line);
  void clear();

  std::uint64_t resident_lines() const { return tags_.size(); }

 private:
  std::uint64_t set_of(Line line) const { return line % sets_count_; }
  std::uint64_t sets_count_;
  std::unordered_map<std::uint64_t, Line> tags_;  // set -> resident line
};

}  // namespace capmem::sim
