#include "sim/mem_map.hpp"

#include "common/check.hpp"

namespace capmem::sim {

MemMap::MemMap(const MachineConfig& cfg, const Topology& topo)
    : cfg_(&cfg),
      topo_(&topo),
      dram_channels_(cfg.dram_channels()),
      mcdram_channels_(cfg.mcdram_controllers) {}

std::uint64_t MemMap::mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

MemTarget MemMap::target(Line line, const Placement& place) const {
  MemTarget t;
  // Cache mode backs everything with DDR; the MCDRAM cache sits in front of
  // the memory controller path and is handled by the memory system, not the
  // address map.
  t.kind = cfg_->memory == MemoryMode::kCache ? MemKind::kDDR : place.kind;
  if (cfg_->memory == MemoryMode::kCache) {
    CAPMEM_CHECK_MSG(place.kind == MemKind::kDDR,
                     "cache mode exposes no MCDRAM address range");
  }

  const bool snc = cfg_->cluster == ClusterMode::kSNC2 ||
                   cfg_->cluster == ClusterMode::kSNC4;
  const std::uint64_t h = mix(line * 2 + (t.kind == MemKind::kDDR ? 0 : 1));

  if (t.kind == MemKind::kDDR) {
    if (snc && place.domain.has_value()) {
      // Contiguous domain range, interleaved over the channels of the
      // domain's closest IMC only.
      const int ndom = Topology::domains(cfg_->cluster);
      const int dom = *place.domain % ndom;
      // SNC2 hemispheres map 1:1 onto the two IMCs; SNC4 quadrants share
      // the IMC on their side of the die.
      const int quadrant = ndom == 4 ? dom : dom * 2;
      const int imc = topo_->closest_imc(quadrant);
      const int per = cfg_->dram_channels_per_controller;
      t.channel = imc * per + static_cast<int>(h % static_cast<unsigned>(per));
    } else {
      t.channel = static_cast<int>(h % static_cast<unsigned>(dram_channels_));
    }
    t.mem_stop =
        topo_->imc_coord(t.channel / cfg_->dram_channels_per_controller);
  } else {
    if (snc && place.domain.has_value()) {
      const auto& edcs =
          topo_->edcs_of_domain(cfg_->cluster, *place.domain %
                                                   Topology::domains(
                                                       cfg_->cluster));
      t.channel = edcs[h % edcs.size()];
    } else {
      t.channel =
          static_cast<int>(h % static_cast<unsigned>(mcdram_channels_));
    }
    t.mem_stop = topo_->edc_coord(t.channel);
  }

  t.home_tile = home_tile(line, t.mem_stop);
  return t;
}

int MemMap::home_tile(Line line, Coord mem_stop) const {
  const std::uint64_t h = mix(line ^ 0xabcdef1234567ull);
  // Opaque directory: the home CHA hashes over every active tile no matter
  // the cluster mode, hiding the domain affinity below. (Also the fallback
  // for degenerate meshes where a grid domain holds no tiles.)
  if (cfg_->opaque_directory) {
    return static_cast<int>(h % static_cast<unsigned>(topo_->active_tiles()));
  }
  switch (cfg_->cluster) {
    case ClusterMode::kA2A: {
      return static_cast<int>(
          h % static_cast<unsigned>(topo_->active_tiles()));
    }
    case ClusterMode::kQuadrant:
    case ClusterMode::kSNC4: {
      // Directory resides in the quadrant of the memory the line is
      // fetched from.
      // Grid domain of the memory stop, same halving rule as Topology.
      const int dom = (mem_stop.col >= (cfg_->mesh_cols + 1) / 2 ? 2 : 0) +
                      (mem_stop.row >= (cfg_->mesh_rows + 1) / 2 ? 1 : 0);
      const auto& tiles = topo_->tiles_in_domain(ClusterMode::kSNC4, dom);
      if (tiles.empty()) {
        return static_cast<int>(
            h % static_cast<unsigned>(topo_->active_tiles()));
      }
      return tiles[h % tiles.size()];
    }
    case ClusterMode::kHemisphere:
    case ClusterMode::kSNC2: {
      const int dom = mem_stop.col >= (cfg_->mesh_cols + 1) / 2 ? 1 : 0;
      const auto& tiles = topo_->tiles_in_domain(ClusterMode::kSNC2, dom);
      if (tiles.empty()) {
        return static_cast<int>(
            h % static_cast<unsigned>(topo_->active_tiles()));
      }
      return tiles[h % tiles.size()];
    }
  }
  return 0;
}

}  // namespace capmem::sim
