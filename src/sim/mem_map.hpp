// Address -> physical-memory / directory mapping (paper §II.C-D).
//
// Encodes how each cluster mode distributes cache lines over the memory
// channels and over the distributed tag directories (CHAs):
//   A2A        — lines hashed over all channels and all tile directories.
//   Quadrant   — channels uniform; directory chosen in the quadrant of the
//                memory stop the line is served from.
//   Hemisphere — same with two halves.
//   SNC4/SNC2  — like Quadrant/Hemisphere, plus NUMA-restricted channel
//                ranges: a domain-placed allocation uses only the channels
//                of its domain's closest IMC / its domain's EDCs.
#pragma once

#include "sim/address.hpp"
#include "sim/config.hpp"
#include "sim/topology.hpp"

namespace capmem::sim {

/// Physical destination of one cache line.
struct MemTarget {
  MemKind kind = MemKind::kDDR;
  int channel = 0;     ///< global channel index within `kind`
  Coord mem_stop;      ///< mesh stop of the serving IMC/EDC
  int home_tile = 0;   ///< tile whose CHA owns the line's directory entry
};

class MemMap {
 public:
  MemMap(const MachineConfig& cfg, const Topology& topo);

  /// Resolves the physical target of `line` for an allocation with
  /// placement `place`. Deterministic pure function of (line, place).
  MemTarget target(Line line, const Placement& place) const;

  /// Directory home tile for `line` given the memory stop it is served
  /// from (exposed separately for tests).
  int home_tile(Line line, Coord mem_stop) const;

  int dram_channels() const { return dram_channels_; }
  int mcdram_channels() const { return mcdram_channels_; }

 private:
  static std::uint64_t mix(std::uint64_t x);

  const MachineConfig* cfg_;
  const Topology* topo_;
  int dram_channels_;
  int mcdram_channels_;
};

}  // namespace capmem::sim
