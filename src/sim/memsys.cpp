#include "sim/memsys.hpp"

#include <algorithm>

#include "fault/plan.hpp"
#include "sim/mutation.hpp"

namespace capmem::sim {

namespace {

// Compile-time protocol policies. The transition pipeline (access_impl_p)
// is one template over these; the variant points are `if constexpr` on the
// flags, so each instantiation is a straight-line protocol with no runtime
// protocol branches. MESIF compiles to the exact pre-refactor code (same
// statements, same RNG-draw order), preserving byte-identical transcripts.
struct MesifPolicy {
  static constexpr Protocol kProtocol = Protocol::kMesif;
  static constexpr bool kHasForward = true;    // F among the sharers
  static constexpr bool kHasExclusive = true;  // clean sole copy installs E
  static constexpr bool kDirtyShared = false;  // owned => only cached copy
};

struct MesiPolicy {
  static constexpr Protocol kProtocol = Protocol::kMesi;
  static constexpr bool kHasForward = false;  // shared reads go to memory
  static constexpr bool kHasExclusive = true;
  static constexpr bool kDirtyShared = false;
};

struct MosiPolicy {
  static constexpr Protocol kProtocol = Protocol::kMosi;
  static constexpr bool kHasForward = false;
  static constexpr bool kHasExclusive = false;  // read misses install S
  static constexpr bool kDirtyShared = true;    // O: dirty owner + sharers
};

// Per-transition directory check against the policy's legal-state table.
// MESIF keeps the original single-table fast path.
template <class P>
inline void check_entry_p(const LineEntry& e) {
  if constexpr (P::kProtocol == Protocol::kMesif) {
    Directory::check_entry(e);
  } else {
    Directory::check_entry(e, rules_of(P::kProtocol));
  }
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kL1: return "L1";
    case Level::kL2Tile: return "L2-tile";
    case Level::kRemoteL2: return "remote-L2";
    case Level::kDram: return "DRAM";
    case Level::kMcdram: return "MCDRAM";
    case Level::kMcdramCacheHit: return "MC$-hit";
    case Level::kMcdramCacheMiss: return "MC$-miss";
  }
  return "?";
}

MemSystem::MemSystem(const MachineConfig& cfg, const Topology& topo, Rng& rng)
    : cfg_(&cfg),
      topo_(&topo),
      rng_(&rng),
      map_(cfg, topo),
      mc_cache_(cfg.memory == MemoryMode::kCache
                    ? cfg.mcdram_bytes
                    : cfg.memory == MemoryMode::kHybrid
                          ? static_cast<std::uint64_t>(
                                static_cast<double>(cfg.mcdram_bytes) *
                                cfg.hybrid_cache_fraction)
                          : 0),
      dram_(cfg.dram_channels(), cfg.bw.dram_channel_gbps,
            cfg.bw.channel_queue_lines * kLineBytes /
                cfg.bw.dram_channel_gbps),
      mcdram_(cfg.mcdram_controllers, cfg.bw.mcdram_channel_gbps,
              cfg.bw.channel_queue_lines * kLineBytes /
                  cfg.bw.mcdram_channel_gbps) {
  protocol_ = cfg.protocol;
  dir_.set_rules(rules_of(cfg.protocol));
  for (int c = 0; c < cfg.cores(); ++c)
    l1_.emplace_back(cfg.l1_bytes, cfg.l1_ways);
  for (int t = 0; t < cfg.active_tiles; ++t)
    l2_.emplace_back(cfg.l2_bytes, cfg.l2_ways);
  core_ports_.resize(static_cast<std::size_t>(cfg.cores()));
  l2_supply_.resize(static_cast<std::size_t>(cfg.active_tiles));
  counters_.resize(static_cast<std::size_t>(cfg.hw_threads()));
  if (cfg.cluster == ClusterMode::kSNC2)
    extra_sigma_ = cfg.noise.snc2_extra_sigma;
  trace_ = cfg.trace;
  metrics_ = cfg.metrics;
  check_ = cfg.check;
  obs_on_ = trace_ != nullptr || metrics_ != nullptr;
  tapped_ = obs_on_ || check_ != nullptr;
  dir_requests_.resize(static_cast<std::size_t>(cfg.active_tiles), 0);
  if (obs_on_) {
    queue_delay_.resize(static_cast<std::size_t>(cfg.hw_threads()));
    if (trace_ != nullptr) {
      dram_.set_obs(trace_, "dram");
      mcdram_.set_obs(trace_, "mcdram");
    }
  }
  fault_ = cfg.fault;
  if (fault_ != nullptr) {
    if (fault_->mesh_enabled()) {
      fault_mesh_ = fault_->degraded_tile_mask(cfg.active_tiles);
    }
    if (fault_->channels_enabled()) {
      dram_.set_fault_factors(fault_->channel_factors(dram_.size(), false));
      mcdram_.set_fault_factors(
          fault_->channel_factors(mcdram_.size(), true));
    }
    fault_stuck_ = fault_->stuck_enabled();
  }
}

Nanos MemSystem::fault_path_penalty(int tid, Nanos now, int a, int b,
                                    int c) {
  int retries = 0;
  retries += fault_mesh_[static_cast<std::size_t>(a)];
  retries += fault_mesh_[static_cast<std::size_t>(b)];
  if (c >= 0) retries += fault_mesh_[static_cast<std::size_t>(c)];
  if (retries == 0) return 0;
  fault_link_retries_ += static_cast<std::uint64_t>(retries);
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kFaultRetry;
    e.t = now;
    e.tid = tid;
    e.a = retries;
    e.label = "mesh-link";
    trace_->on_event(e);
  }
  return fault_->link_retry_ns * retries;
}

Nanos MemSystem::jitter(Nanos v, bool allow_spike) {
  if (!cfg_->noise.enabled) return v;
  const auto& n = cfg_->noise;
  Nanos out = v * rng_->lognormal_factor(n.service_sigma + extra_sigma_);
  // Directory-retry spikes model rare latency outliers. They are only
  // applied to single-line (latency) operations: injecting them into
  // pipelined streams would punch unfillable holes into the FIFO channel
  // reservations and artificially halve saturated bandwidth.
  if (allow_spike && rng_->next_double() < n.spike_prob) out += n.spike_ns;
  return out;
}

int MemSystem::mesh_legs(int req_tile, int home_tile, Coord far_stop) const {
  const Coord rq = topo_->tile_coord(req_tile);
  const Coord hm = topo_->tile_coord(home_tile);
  return topo_->hops(rq, hm) + topo_->hops(hm, far_stop) +
         topo_->hops(far_stop, rq);
}

int MemSystem::mesh_legs_tiles(int req_tile, int home_tile,
                               int owner_tile) const {
  return mesh_legs(req_tile, home_tile, topo_->tile_coord(owner_tile));
}

Nanos MemSystem::remote_transfer_cost(TileState owner_state, int legs) {
  const auto& lt = cfg_->lat;
  double state_adder = lt.remote_state_sf;
  if (owner_state == TileState::kM) state_adder = lt.remote_state_m;
  // MOSI's O serves like M: the owner holds the only up-to-date (dirty) copy.
  if (owner_state == TileState::kO) state_adder = lt.remote_state_m;
  if (owner_state == TileState::kE) state_adder = lt.remote_state_e;
  return jitter(lt.remote_base + state_adder + lt.hop * legs);
}

Nanos MemSystem::stream_issue_cost(Level level, TileState prior,
                                   AccessType type,
                                   const AccessOpts& opts) const {
  const auto& bw = cfg_->bw;
  const auto& lt = cfg_->lat;
  const double line = static_cast<double>(kLineBytes);
  if (type == AccessType::kWrite) {
    // Local store streams occupy a store port; memory-destined write
    // streams are RFO/latency-bound like reads (the visible-bandwidth
    // halving comes from the doubled channel traffic).
    switch (level) {
      case Level::kL1: return 2.0;
      case Level::kL2Tile:
      case Level::kRemoteL2: return 2.5;
      default: break;  // memory levels fall through to the read costs
    }
  }
  switch (level) {
    case Level::kL1:
      return line / (opts.vector ? 20.0 : 10.0);
    case Level::kL2Tile: {
      // Calibrated so a copy pair (read + local write) lands at the Table I
      // intra-tile copy bandwidths: E ~9.2 GB/s, M ~7.5 GB/s.
      const double base =
          prior == TileState::kM || prior == TileState::kO
              ? bw.tile_copy_line_m - 2.0
              : bw.tile_copy_line_e - 2.0;
      return opts.vector ? base : base * 1.5;
    }
    case Level::kRemoteL2: {
      const double lat = lt.remote_base;
      const double mlp = opts.copy_pair
                             ? (opts.vector ? bw.mlp_c2c_copy_vector
                                            : bw.mlp_c2c_copy_scalar)
                             : (opts.vector ? bw.mlp_c2c_read_vector
                                            : bw.mlp_c2c_read_scalar);
      return lat / mlp;
    }
    case Level::kDram:
    case Level::kMcdramCacheMiss: {
      const double mlp =
          opts.vector ? bw.mlp_mem_vector : bw.mlp_mem_scalar;
      return (lt.dram_service + (level == Level::kMcdramCacheMiss
                                     ? lt.mc_cache_tag
                                     : 0.0)) /
             mlp;
    }
    case Level::kMcdram:
    case Level::kMcdramCacheHit: {
      const double mlp =
          opts.vector ? bw.mlp_mem_vector : bw.mlp_mem_scalar;
      return (lt.mcdram_service + (level == Level::kMcdramCacheHit
                                       ? lt.mc_cache_tag
                                       : 0.0)) /
             mlp;
    }
  }
  return 10.0;
}

const MemTarget& MemSystem::target_of(LineEntry& e, Line line,
                                      const Placement& place) {
  if (!e.target_valid) {
    e.target = map_.target(line, place);
    e.target_valid = true;
  }
  return e.target;
}

Nanos MemSystem::l2_supply(int src_tile, Nanos at) {
  Reservation& port = l2_supply_[static_cast<std::size_t>(src_tile)];
  const Nanos service = cfg_->bw.l2_supply_line_ns;
  return port.acquire(at, service) + service;
}

Nanos MemSystem::core_issue(int core, Nanos now, Nanos occupancy) {
  Reservation& port = core_ports_[static_cast<std::size_t>(core)];
  const Nanos start =
      port.acquire(now, occupancy * cfg_->bw.core_issue_fraction);
  return start + occupancy;
}

void MemSystem::l1_insert(int core, Line line, LineEntry& e) {
  if (l1_[static_cast<std::size_t>(core)].contains(line)) return;
  const auto evicted = l1_[static_cast<std::size_t>(core)].insert(line);
  e.l1_mask |= 1ull << core;
  if (evicted) {
    LineEntry* ve = dir_.find(*evicted);
    if (ve != nullptr) ve->l1_mask &= ~(1ull << core);
  }
}

void MemSystem::evict_l2_victim(int tile, Line victim, Nanos now) {
  LineEntry* ve = dir_.find(victim);
  if (ve == nullptr) return;
  // Drop the victim from the L1s of this tile's cores (inclusive hierarchy).
  for (int c = topo_->first_core_of_tile(tile);
       c < topo_->first_core_of_tile(tile) + cfg_->cores_per_tile; ++c) {
    if ((ve->l1_mask >> c) & 1ull) {
      l1_[static_cast<std::size_t>(c)].erase(victim);
      ve->l1_mask &= ~(1ull << c);
    }
  }
  ve->l2_mask &= ~(1ull << tile);
  if (ve->forward == tile) ve->forward = -1;
  if (ve->owner == tile) {
    if (ve->dirty) {
      // Write-back traffic; in cache/hybrid mode modified lines land in the
      // memory-side MCDRAM cache (it is inclusive of modified L2 lines).
      if (mc_cache_.enabled()) {
        mc_cache_.write_back(victim);
        mcdram_.transfer(static_cast<int>(victim) %
                             mcdram_.size(),
                         now, static_cast<double>(kLineBytes));
      } else {
        dram_.transfer(static_cast<int>(victim % static_cast<Line>(
                                            dram_.size())),
                       now, static_cast<double>(kLineBytes));
      }
    }
    ve->owner = -1;
    ve->dirty = false;
  }
  dir_.drop_if_invalid(victim);
  if (check_ != nullptr) {
    const LineEntry* e = dir_.find(victim);
    if (e != nullptr) {
      check_->on_transition(victim, *e, *this);
    } else {
      check_->on_drop(victim);
    }
  }
}

void MemSystem::fill_caches(int core, int tile, Line line, LineEntry& e) {
  if (!l2_[static_cast<std::size_t>(tile)].contains(line)) {
    const auto evicted = l2_[static_cast<std::size_t>(tile)].insert(line);
    e.l2_mask |= 1ull << tile;
    if (evicted) evict_l2_victim(tile, *evicted, 0.0);
  }
  l1_insert(core, line, e);
}

void MemSystem::invalidate_others(LineEntry& e, Line line, int keep_tile,
                                  int tid, Nanos now) {
  bool stale_injected = false;
  // Walk only the set sharer bits (ascending, same order as a full tile
  // scan); the mask never has bits at or above active_tiles().
  std::uint64_t pending = e.l2_mask;
  if (keep_tile >= 0) pending &= ~(1ull << keep_tile);
  while (pending != 0) {
    const int t = __builtin_ctzll(pending);
    pending &= pending - 1;
    if (obs_on_) {
      note_coherence(tid, -1, t, line, Directory::state_in_tile(e, t),
                     TileState::kI, now, "invalidate");
    }
    if (mutation::is(mutation::Kind::kStaleL2Copy) && !stale_injected) {
      // Fault injection (mutation-smoke builds only): leave the victim's
      // L2 tag resident while the directory forgets the sharer.
      stale_injected = true;
    } else {
      l2_[static_cast<std::size_t>(t)].erase(line);
    }
    e.l2_mask &= ~(1ull << t);
    for (int c = topo_->first_core_of_tile(t);
         c < topo_->first_core_of_tile(t) + cfg_->cores_per_tile; ++c) {
      if ((e.l1_mask >> c) & 1ull) {
        l1_[static_cast<std::size_t>(c)].erase(line);
        e.l1_mask &= ~(1ull << c);
      }
    }
    counters_[static_cast<std::size_t>(tid)].invalidations++;
  }
  // L1 copies in the keep tile held by *other* cores are invalidated by the
  // caller when needed (intra-tile write).
  if (e.forward != -1 && e.forward != keep_tile) e.forward = -1;
  if (e.owner != -1 && e.owner != keep_tile) {
    e.owner = -1;
    e.dirty = false;
  }
}

AccessResult MemSystem::memory_access(int tid, int core, Line line,
                                      const MemTarget& target,
                                      AccessType type, const AccessOpts& opts,
                                      Nanos now, int req_tile) {
  auto& ctr = counters_[static_cast<std::size_t>(tid)];
  const auto& lt = cfg_->lat;
  const int legs = mesh_legs(req_tile, target.home_tile, target.mem_stop);
  const Nanos path = lt.hop * legs;
  if (obs_on_) {
    note_hops(tid, core, legs, now, req_tile, target.home_tile,
              target.mem_stop);
  }
  const Nanos fpen =
      fault_mesh_.empty()
          ? 0
          : fault_path_penalty(tid, now, req_tile, target.home_tile);

  AccessResult res;
  const bool rfo = type == AccessType::kWrite && !opts.nt;
  // Write traffic: RFO adds the fill read; pure store streams additionally
  // pay the write-turnaround occupancy (mixed read+write streams, flagged
  // via copy_pair, amortize it away).
  double traffic_factor = 1.0;
  if (type == AccessType::kWrite) {
    traffic_factor = opts.copy_pair ? 1.0 : cfg_->bw.write_turnaround;
    if (rfo) traffic_factor += 1.0;
  }
  const double traffic = static_cast<double>(kLineBytes) * traffic_factor;

  Nanos service = 0;
  Nanos channel_done = now;
  if (target.kind == MemKind::kMCDRAM) {
    res.level = Level::kMcdram;
    service = lt.mcdram_service;
    channel_done = mcdram_.transfer(target.channel, now, traffic);
    ctr.mcdram_lines++;
  } else if (!mc_cache_.enabled()) {
    res.level = Level::kDram;
    service = lt.dram_service;
    channel_done = dram_.transfer(target.channel, now, traffic);
    ctr.dram_lines++;
  } else {
    // Cache mode: the memory-side MCDRAM cache fronts the DDR path.
    const auto mc = mc_cache_.access(line);
    if (mc.hit) {
      res.level = Level::kMcdramCacheHit;
      service = lt.mcdram_service;
      // Through the memory-side cache, store streams are controller-paced
      // (no DDR write-turnaround): charge the un-inflated line traffic.
      const double mc_traffic =
          static_cast<double>(kLineBytes) * (rfo ? 2.0 : 1.0);
      channel_done =
          mcdram_.transfer(static_cast<int>(line) % mcdram_.size(), now,
                           mc_traffic, cfg_->bw.mc_cache_bw_factor);
      if (type == AccessType::kWrite) {
        // Dirtied cache lines are eventually written back to DDR; charge
        // that traffic now so write streams stay DDR-bound in cache mode
        // (Table II: cache-mode write 56-72 GB/s vs flat MCDRAM 147-171).
        channel_done = std::max(
            channel_done, dram_.transfer(target.channel, now,
                                         static_cast<double>(kLineBytes)));
      }
      ctr.mc_cache_hits++;
    } else {
      res.level = Level::kMcdramCacheMiss;
      service = lt.dram_service + lt.mc_cache_tag;
      // DDR supplies the data; the line is filled into MCDRAM
      // simultaneously (paper §II.C), consuming both channels.
      channel_done = dram_.transfer(target.channel, now, traffic);
      mcdram_.transfer(static_cast<int>(line) % mcdram_.size(), now,
                       static_cast<double>(kLineBytes),
                       cfg_->bw.mc_cache_bw_factor);
      ctr.mc_cache_misses++;
      if (mc.evicted) {
        // Before eviction, a snoop checks for a modified L2 copy.
        const LineEntry* ev = dir_.find(*mc.evicted);
        if (ev != nullptr && ev->dirty) service += lt.mc_cache_evict_snoop;
      }
      // The DDR access is accounted by mc_cache_misses; dram_lines counts
      // only flat-mode DDR service so the per-level counters partition
      // line_ops exactly.
    }
  }

  if (opts.streaming) {
    const Nanos issue = stream_issue_cost(res.level, TileState::kI, type,
                                          opts);
    const Nanos core_done = core_issue(core, now, issue);
    res.finish =
        std::max({now + jitter(issue, false), core_done, channel_done});
  } else {
    const Nanos core_done = core_issue(core, now, 1.0);
    res.finish =
        std::max({now + jitter(path + service), core_done, channel_done});
  }
  res.finish += fpen;
  res.prior = TileState::kI;
  return res;
}

AccessResult MemSystem::access(int tid, int core, Line line,
                               const Placement& place, AccessType type,
                               const AccessOpts& opts, Nanos now) {
  // The disabled observability/checker path is this single branch:
  // access_impl is the exact pre-obs access body, so default runs stay
  // byte-identical.
  if (!tapped_) return access_impl(tid, core, line, place, type, opts, now);
  const AccessResult res =
      access_impl(tid, core, line, place, type, opts, now);
  if (obs_on_) note_access(tid, core, line, type, res, now);
  if (check_ != nullptr) {
    note_check_access(tid, core, line, type, opts, res, now);
  }
  return res;
}

void MemSystem::note_check_access(int tid, int core, Line line,
                                  AccessType type, const AccessOpts& opts,
                                  const AccessResult& res, Nanos now) {
  AccessRecord rec;
  rec.tid = tid;
  rec.core = core;
  rec.tile = topo_->tile_of_core(core);
  rec.line = line;
  rec.type = type;
  rec.nt = opts.nt;
  rec.streaming = opts.streaming;
  rec.start = now;
  rec.finish = res.finish;
  const LineEntry* e = dir_.find(line);
  rec.version_after = e != nullptr ? e->version : 0;
  check_->on_access(rec);
}

void MemSystem::note_access(int tid, int core, Line line, AccessType type,
                            const AccessResult& res, Nanos now) {
  if (attr_ != nullptr) {
    attr_->count_access(topo_->tile_of_core(core), attr_cat(res.level));
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kLineAccess;
    e.t = now;
    e.dur = res.finish - now;
    e.tid = tid;
    e.core = core;
    e.tile = topo_->tile_of_core(core);
    e.line = line;
    e.label = to_string(res.level);
    trace_->on_event(e);
  }
  // Per-thread channel queue delay of memory-served accesses (the pools
  // remember the queueing component of their most recent transfer).
  if (!queue_delay_.empty()) {
    switch (res.level) {
      case Level::kDram:
      case Level::kMcdramCacheMiss:
        queue_delay_[static_cast<std::size_t>(tid)].record(
            dram_.last_queue_ns());
        break;
      case Level::kMcdram:
      case Level::kMcdramCacheHit:
        queue_delay_[static_cast<std::size_t>(tid)].record(
            mcdram_.last_queue_ns());
        break;
      default:
        break;
    }
  }
  (void)type;
}

void MemSystem::note_dir_lookup(int tid, Line line, int home_tile, Nanos now,
                                Nanos svc_start, Nanos service) {
  dir_requests_[static_cast<std::size_t>(home_tile)]++;
  cha_queue_.record(svc_start - now);
  if (attr_ != nullptr) {
    attr_->add_dir_lookup(home_tile, svc_start - now, service);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kDirLookup;
    e.t = svc_start;
    e.dur = service;
    e.tid = tid;
    e.line = line;
    e.a = home_tile;
    e.queue_ns = svc_start - now;
    trace_->on_event(e);
  }
}

void MemSystem::note_hops(int tid, int core, int legs, Nanos now,
                          int req_tile, int home_tile, Coord far_stop) {
  noc_hops_total_ += static_cast<std::uint64_t>(legs);
  if (attr_ != nullptr) {
    // Split the request triangle's Manhattan hops by ring direction
    // (KNL's mesh routes Y-then-X; |dr| legs ride the vertical rings).
    const Coord rq = topo_->tile_coord(req_tile);
    const Coord hm = topo_->tile_coord(home_tile);
    const auto d = [](int a, int b) { return a > b ? a - b : b - a; };
    const int vertical = d(hm.row, rq.row) + d(far_stop.row, hm.row) +
                         d(rq.row, far_stop.row);
    const int horizontal = d(hm.col, rq.col) + d(far_stop.col, hm.col) +
                           d(rq.col, far_stop.col);
    attr_->add_hops(req_tile, vertical, horizontal);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kNocHops;
    e.t = now;
    e.tid = tid;
    e.core = core;
    e.a = legs;
    trace_->on_event(e);
  }
}

void MemSystem::note_coherence(int tid, int core, int tile, Line line,
                               TileState from, TileState to, Nanos now,
                               const char* label) {
  if (attr_ != nullptr) {
    attr_->add_transition(static_cast<int>(from), static_cast<int>(to),
                          label);
  }
  if (trace_ == nullptr) return;
  obs::TraceEvent e;
  e.kind = obs::EventKind::kCoherence;
  e.t = now;
  e.tid = tid;
  e.core = core;
  e.tile = tile;
  e.line = line;
  e.a = static_cast<int>(from);
  e.b = static_cast<int>(to);
  e.label = label;
  trace_->on_event(e);
}

AccessResult MemSystem::access_impl(int tid, int core, Line line,
                                    const Placement& place, AccessType type,
                                    const AccessOpts& opts, Nanos now) {
  switch (protocol_) {
    case Protocol::kMesi:
      return access_impl_p<MesiPolicy>(tid, core, line, place, type, opts,
                                       now);
    case Protocol::kMosi:
      return access_impl_p<MosiPolicy>(tid, core, line, place, type, opts,
                                       now);
    case Protocol::kMesif:
      break;
  }
  return access_impl_p<MesifPolicy>(tid, core, line, place, type, opts, now);
}

template <class Policy>
AccessResult MemSystem::access_impl_p(int tid, int core, Line line,
                                      const Placement& place, AccessType type,
                                      const AccessOpts& opts, Nanos now) {
  using P = Policy;
  CAPMEM_DCHECK(core >= 0 && core < cfg_->cores());
  CAPMEM_DCHECK(tid >= 0 && tid < static_cast<int>(counters_.size()));
  auto& ctr = counters_[static_cast<std::size_t>(tid)];
  ctr.line_ops++;
  const int tile = topo_->tile_of_core(core);
  const auto& lt = cfg_->lat;

  // Non-temporal stores bypass the hierarchy: invalidate any cached copies,
  // push the line straight to memory (no RFO, no fill).
  if (opts.nt && type == AccessType::kWrite) {
    LineEntry& e = dir_.entry(line);
    invalidate_others(e, line, /*keep_tile=*/-1, tid, now);
    // Also drop our own copy if present.
    if (e.present_in_tile(tile)) {
      l2_[static_cast<std::size_t>(tile)].erase(line);
      e.l2_mask &= ~(1ull << tile);
      for (int c = topo_->first_core_of_tile(tile);
           c < topo_->first_core_of_tile(tile) + cfg_->cores_per_tile; ++c) {
        if ((e.l1_mask >> c) & 1ull) {
          l1_[static_cast<std::size_t>(c)].erase(line);
          e.l1_mask &= ~(1ull << c);
        }
      }
      e.owner = -1;
      e.dirty = false;
    }
    const MemTarget& target = target_of(e, line, place);
    AccessResult res;
    const double nt_traffic =
        static_cast<double>(kLineBytes) *
        (opts.copy_pair ? 1.0 : cfg_->bw.write_turnaround);
    Nanos channel_done;
    if (target.kind == MemKind::kMCDRAM) {
      channel_done = mcdram_.transfer(target.channel, now, nt_traffic);
      res.level = Level::kMcdram;
      ctr.mcdram_lines++;
    } else if (mc_cache_.enabled()) {
      // NT data may still be allocated into the memory-side cache
      // (paper §II.C: even uncacheable data can land in the MCDRAM cache),
      // but the dirtied line is eventually written back to DDR — charge
      // both channels so NT write streams stay DDR-bound in cache mode.
      mc_cache_.access(line);
      channel_done = mcdram_.transfer(static_cast<int>(line) %
                                          mcdram_.size(),
                                      now, static_cast<double>(kLineBytes),
                                      cfg_->bw.mc_cache_bw_factor);
      channel_done = std::max(
          channel_done,
          dram_.transfer(target.channel, now,
                         static_cast<double>(kLineBytes)));
      res.level = Level::kMcdramCacheHit;
      ctr.mc_cache_hits++;
    } else {
      channel_done = dram_.transfer(target.channel, now, nt_traffic);
      res.level = Level::kDram;
      ctr.dram_lines++;
    }
    const Nanos issue = opts.streaming ? 2.0 : 8.0;
    const Nanos core_done = core_issue(core, now, issue);
    res.finish =
        std::max({now + jitter(issue, false), core_done, channel_done});
    e.version++;
    e.last_write_visible = res.finish;
    check_entry_p<P>(e);
    note_transition(line, e);
    return res;
  }

  LineEntry& e = dir_.entry(line);
  const bool l1_hit = l1_[static_cast<std::size_t>(core)].lookup(line);
  const bool l2_hit = l2_[static_cast<std::size_t>(tile)].lookup(line);
  CAPMEM_DCHECK(!l1_hit || l2_hit);

  AccessResult res;

  if (type == AccessType::kRead) {
    if (l1_hit) {
      ctr.l1_hits++;
      res.level = Level::kL1;
      res.prior = Directory::state_in_tile(e, tile);
      const Nanos cost = opts.streaming
                             ? stream_issue_cost(Level::kL1, res.prior, type,
                                                 opts)
                             : lt.l1_hit;
      res.finish = opts.streaming
                       ? std::max(now + cost, core_issue(core, now, cost))
                       : std::max(now + cost, core_issue(core, now, 1.0));
      return res;
    }
    if (l2_hit) {
      ctr.l2_tile_hits++;
      res.level = Level::kL2Tile;
      res.prior = Directory::state_in_tile(e, tile);
      Nanos cost;
      if (opts.streaming) {
        cost = stream_issue_cost(Level::kL2Tile, res.prior, type, opts);
        res.finish =
            std::max(now + jitter(cost, false), core_issue(core, now, cost));
      } else {
        cost = res.prior == TileState::kM || res.prior == TileState::kO
                   ? lt.l2_tile_m
               : res.prior == TileState::kE ? lt.l2_tile_e
                                            : lt.l2_tile_sf;
        // Reading another core's modified tile line forces the write-back
        // downgrade inside the tile (M -> shared within tile).
        res.finish = std::max(now + jitter(cost), core_issue(core, now, 1.0));
      }
      l1_insert(core, line, e);
      check_entry_p<P>(e);
      note_transition(line, e);
      return res;
    }

    // Directory request: serialize at the line's CHA (contention law).
    Nanos svc_start = std::max(now, e.service_available);
    if (fault_stuck_ && fault_->line_stuck(line)) {
      // Sticky CHA entry: one extra re-lookup before service.
      svc_start += fault_->stuck_retry_ns;
      ++fault_stuck_hits_;
      if (trace_ != nullptr) {
        obs::TraceEvent fe;
        fe.kind = obs::EventKind::kFaultRetry;
        fe.t = now;
        fe.tid = tid;
        fe.line = line;
        fe.label = "stuck-dir";
        trace_->on_event(fe);
      }
    }
    e.service_available = svc_start + jitter(lt.line_service, false);
    const MemTarget& target = target_of(e, line, place);
    if (obs_on_) {
      note_dir_lookup(tid, line, target.home_tile, now, svc_start,
                      e.service_available - svc_start);
    }
    if (check_ != nullptr) {
      check_->on_dir_lookup(line, place, target.home_tile);
    }

    if (e.owner >= 0 && e.owner != tile) {
      // Remote owned copy (M/E, or M/O under MOSI): cache-to-cache transfer.
      if constexpr (P::kDirtyShared) {
        res.prior = Directory::state_in_tile(e, e.owner);
      } else {
        res.prior = e.dirty ? TileState::kM : TileState::kE;
      }
      ctr.remote_hits++;
      res.level = Level::kRemoteL2;
      const int legs = mesh_legs_tiles(tile, target.home_tile, e.owner);
      if (obs_on_) {
        note_hops(tid, core, legs, now, tile, target.home_tile,
                  topo_->tile_coord(e.owner));
        if constexpr (P::kDirtyShared) {
          // MOSI: the owner keeps the dirty line and moves to O.
          note_coherence(tid, core, e.owner, line, res.prior, TileState::kO,
                         svc_start, "share");
        } else {
          // The old owner is downgraded to a shared copy (MESIF read c2c).
          note_coherence(tid, core, e.owner, line, res.prior, TileState::kS,
                         svc_start, "downgrade");
        }
      }
      Nanos cost;
      if (opts.streaming) {
        cost = stream_issue_cost(Level::kRemoteL2, res.prior, type, opts);
        res.finish = std::max(svc_start + jitter(cost, false),
                              core_issue(core, now, cost));
      } else {
        cost = remote_transfer_cost(res.prior, legs);
        res.finish =
            std::max(svc_start + cost, core_issue(core, now, 1.0));
      }
      res.finish = std::max(res.finish, l2_supply(e.owner, svc_start));
      if (!fault_mesh_.empty()) {
        res.finish +=
            fault_path_penalty(tid, now, tile, target.home_tile, e.owner);
      }
      if constexpr (P::kDirtyShared) {
        // MOSI: the owner keeps its dirty copy and stays responsible for it
        // (M -> O once the requester's copy lands); no write-back, memory
        // stays stale until the owner is invalidated or evicted.
        if (mutation::is(mutation::Kind::kMosiLostOwner)) {
          // Fault injection (mutation-smoke builds only): the O-state
          // bookkeeping "loses" the owner while the line stays dirty.
          e.owner = -1;
        }
      } else {
        if (e.dirty) {
          // Downgrade write-back (dirty owner -> S, memory updated).
          ctr.writebacks++;
          if (mc_cache_.enabled()) {
            mc_cache_.write_back(line);
          } else if (target.kind == MemKind::kMCDRAM) {
            mcdram_.transfer(target.channel, now,
                             static_cast<double>(kLineBytes));
          } else {
            dram_.transfer(target.channel, now,
                           static_cast<double>(kLineBytes));
          }
        }
        e.owner = -1;
        e.dirty = false;
        if constexpr (P::kHasForward) {
          e.forward = tile;  // newest requester holds F (MESIF)
        } else if (mutation::is(mutation::Kind::kMesiPhantomForwarder)) {
          // Fault injection (mutation-smoke builds only): a c2c read
          // designates the requester as forwarder — a state MESI lacks.
          e.forward = tile;
        }
      }
      fill_caches(core, tile, line, e);
      check_entry_p<P>(e);
      note_transition(line, e);
      return res;
    }

    if (e.l2_mask != 0) {
      // Shared: served by the forwarder if one exists, else by memory.
      res.prior = e.forward >= 0 ? TileState::kF : TileState::kS;
      if constexpr (P::kHasForward) {
        if (e.forward >= 0) {
          ctr.remote_hits++;
          res.level = Level::kRemoteL2;
          const int legs = mesh_legs_tiles(tile, target.home_tile,
                                           e.forward);
          if (obs_on_) {
            note_hops(tid, core, legs, now, tile, target.home_tile,
                      topo_->tile_coord(e.forward));
          }
          Nanos cost;
          if (opts.streaming) {
            cost = stream_issue_cost(Level::kRemoteL2, res.prior, type,
                                     opts);
            res.finish = std::max(svc_start + jitter(cost, false),
                                  core_issue(core, now, cost));
          } else {
            cost = remote_transfer_cost(res.prior, legs);
            res.finish =
                std::max(svc_start + cost, core_issue(core, now, 1.0));
          }
          res.finish = std::max(res.finish, l2_supply(e.forward, svc_start));
          if (!fault_mesh_.empty()) {
            res.finish += fault_path_penalty(tid, now, tile,
                                             target.home_tile, e.forward);
          }
          e.forward = tile;  // F migrates to the newest requester
          fill_caches(core, tile, line, e);
          check_entry_p<P>(e);
          note_transition(line, e);
          return res;
        }
      }
      // Silent sharers only (every shared read without a forwarder state):
      // memory supplies the data.
      res = memory_access(tid, core, line, target, type, opts,
                          std::max(now, svc_start), tile);
      if constexpr (P::kHasForward) e.forward = tile;
      fill_caches(core, tile, line, e);
      check_entry_p<P>(e);
      note_transition(line, e);
      return res;
    }

    // Globally invalid: fetch from memory. Protocols with E install the
    // sole clean copy as Exclusive; MOSI installs plain Shared.
    res = memory_access(tid, core, line, target, type, opts,
                        std::max(now, svc_start), tile);
    if constexpr (P::kHasExclusive) {
      e.owner = tile;
      e.dirty = false;
    }
    fill_caches(core, tile, line, e);
    check_entry_p<P>(e);
    note_transition(line, e);
    return res;
  }

  // --- write path ---
  bool silent_upgrade = e.owner == tile && l2_hit;
  if constexpr (P::kDirtyShared) {
    // MOSI: an O owner with other sharers must still run the invalidation
    // round through the home CHA; only a sole-copy owner upgrades silently.
    silent_upgrade = silent_upgrade && (e.l2_mask & (e.l2_mask - 1)) == 0;
  }
  if (silent_upgrade) {
    // We own the line: silent upgrade M, drop other-core L1 copies in tile.
    res.level = l1_hit ? Level::kL1 : Level::kL2Tile;
    res.prior = e.dirty ? TileState::kM : TileState::kE;
    if (l1_hit) ctr.l1_hits++; else ctr.l2_tile_hits++;
    for (int c = topo_->first_core_of_tile(tile);
         c < topo_->first_core_of_tile(tile) + cfg_->cores_per_tile; ++c) {
      if (c != core && ((e.l1_mask >> c) & 1ull)) {
        l1_[static_cast<std::size_t>(c)].erase(line);
        e.l1_mask &= ~(1ull << c);
      }
    }
    Nanos cost;
    if (opts.streaming) {
      cost = stream_issue_cost(l1_hit ? Level::kL1 : Level::kL2Tile,
                               res.prior, type, opts);
      res.finish = std::max(now + cost, core_issue(core, now, cost));
    } else {
      cost = l1_hit ? lt.l1_hit
                    : (e.dirty ? lt.l2_tile_m : lt.l2_tile_e);
      res.finish = std::max(now + jitter(cost), core_issue(core, now, 1.0));
    }
    if (obs_on_ && res.prior != TileState::kM) {
      note_coherence(tid, core, tile, line, res.prior, TileState::kM, now,
                     "upgrade");
    }
    e.dirty = true;
    l1_insert(core, line, e);
    if (!mutation::is(mutation::Kind::kSkipVersionBump)) e.version++;
    e.last_write_visible = res.finish;
    check_entry_p<P>(e);
    note_transition(line, e);
    return res;
  }

  // RFO through the directory.
  Nanos svc_start = std::max(now, e.service_available);
  if (fault_stuck_ && fault_->line_stuck(line)) {
    svc_start += fault_->stuck_retry_ns;
    ++fault_stuck_hits_;
    if (trace_ != nullptr) {
      obs::TraceEvent fe;
      fe.kind = obs::EventKind::kFaultRetry;
      fe.t = now;
      fe.tid = tid;
      fe.line = line;
      fe.label = "stuck-dir";
      trace_->on_event(fe);
    }
  }
  e.service_available = svc_start + jitter(lt.line_service, false);
  const MemTarget& target = target_of(e, line, place);
  if (obs_on_) {
    note_dir_lookup(tid, line, target.home_tile, now, svc_start,
                    e.service_available - svc_start);
  }
  if (check_ != nullptr) {
    check_->on_dir_lookup(line, place, target.home_tile);
  }

  if (e.owner >= 0 && e.owner != tile) {
    ctr.remote_hits++;
    res.level = Level::kRemoteL2;
    if constexpr (P::kDirtyShared) {
      res.prior = Directory::state_in_tile(e, e.owner);
    } else {
      res.prior = e.dirty ? TileState::kM : TileState::kE;
    }
    const int legs = mesh_legs_tiles(tile, target.home_tile, e.owner);
    if (obs_on_) {
      note_hops(tid, core, legs, now, tile, target.home_tile,
                topo_->tile_coord(e.owner));
    }
    const int src = e.owner;
    Nanos cost;
    if (opts.streaming) {
      cost = stream_issue_cost(Level::kRemoteL2, res.prior, type, opts);
      res.finish = std::max(svc_start + jitter(cost, false),
                            core_issue(core, now, cost));
    } else {
      cost = remote_transfer_cost(res.prior, legs);
      res.finish = std::max(svc_start + cost, core_issue(core, now, 1.0));
    }
    res.finish = std::max(res.finish, l2_supply(src, svc_start));
    if (!fault_mesh_.empty()) {
      res.finish += fault_path_penalty(tid, now, tile, target.home_tile, src);
    }
    invalidate_others(e, line, tile, tid, now);
  } else if (e.l2_mask != 0 &&
             (!(e.owner == tile) ||
              (P::kDirtyShared && (e.l2_mask & (e.l2_mask - 1)) != 0))) {
    // Upgrade from shared: invalidation round via the home CHA. Under MOSI
    // this includes the O owner itself writing while other tiles share the
    // line — the sharers are invalidated but no memory fetch is needed.
    res.level = Level::kRemoteL2;
    res.prior = e.present_in_tile(tile)
                    ? Directory::state_in_tile(e, tile)
                    : (e.forward >= 0 ? TileState::kF : TileState::kS);
    const int far = e.forward >= 0 ? e.forward : tile;
    const int legs = mesh_legs_tiles(tile, target.home_tile, far);
    if (obs_on_) {
      note_hops(tid, core, legs, now, tile, target.home_tile,
                topo_->tile_coord(far));
    }
    Nanos cost;
    if (opts.streaming) {
      cost = stream_issue_cost(Level::kRemoteL2, TileState::kS, type, opts);
      res.finish = std::max(svc_start + jitter(cost, false),
                            core_issue(core, now, cost));
    } else {
      cost = remote_transfer_cost(TileState::kS, legs);
      res.finish = std::max(svc_start + cost, core_issue(core, now, 1.0));
    }
    if (!fault_mesh_.empty()) {
      res.finish += fault_path_penalty(tid, now, tile, target.home_tile, far);
    }
    invalidate_others(e, line, tile, tid, now);
    ctr.remote_hits++;
  } else {
    // Globally invalid (or stale self-entry): RFO memory fetch.
    res = memory_access(tid, core, line, target, type, opts,
                        std::max(now, svc_start), tile);
  }

  if (obs_on_) {
    note_coherence(tid, core, tile, line, res.prior, TileState::kM, now,
                   "upgrade");
  }
  e.owner = tile;
  e.dirty = true;
  e.forward = -1;
  fill_caches(core, tile, line, e);
  // Only this core's L1 may keep the copy after a write.
  for (int c = topo_->first_core_of_tile(tile);
       c < topo_->first_core_of_tile(tile) + cfg_->cores_per_tile; ++c) {
    if (c != core && ((e.l1_mask >> c) & 1ull)) {
      l1_[static_cast<std::size_t>(c)].erase(line);
      e.l1_mask &= ~(1ull << c);
    }
  }
  e.version++;
  e.last_write_visible = res.finish;
  check_entry_p<P>(e);
  note_transition(line, e);
  return res;
}

void MemSystem::flush_line(Line line, bool drop_mcdram_cache) {
  LineEntry* e = dir_.find(line);
  if (e != nullptr) {
    for (int t = 0; t < topo_->active_tiles(); ++t) {
      if ((e->l2_mask >> t) & 1ull)
        l2_[static_cast<std::size_t>(t)].erase(line);
    }
    for (int c = 0; c < cfg_->cores(); ++c) {
      if ((e->l1_mask >> c) & 1ull)
        l1_[static_cast<std::size_t>(c)].erase(line);
    }
    e->l2_mask = 0;
    e->l1_mask = 0;
    e->owner = -1;
    e->forward = -1;
    e->dirty = false;
    dir_.drop_if_invalid(line);
    if (check_ != nullptr) check_->on_flush(line);
  }
  if (drop_mcdram_cache) mc_cache_.erase(line);
}

void MemSystem::reset() {
  for (auto& c : l1_) c.clear();
  for (auto& c : l2_) c.clear();
  mc_cache_.clear();
  dram_.reset();
  mcdram_.reset();
  for (auto& p : core_ports_) p.reset();
  for (auto& p : l2_supply_) p.reset();
  dir_.clear();
  if (check_ != nullptr) check_->on_reset();
}

void MemSystem::clear_counters() {
  for (auto& c : counters_) c = ThreadCounters{};
}

double MemSystem::dram_busy_ns() const {
  double b = 0;
  for (int c = 0; c < dram_.size(); ++c) b += dram_.busy(c);
  return b;
}

double MemSystem::mcdram_busy_ns() const {
  double b = 0;
  for (int c = 0; c < mcdram_.size(); ++c) b += mcdram_.busy(c);
  return b;
}

void MemSystem::flush_metrics(Nanos elapsed) {
  if (metrics_ == nullptr) return;
  obs::Registry& reg = *metrics_;
  reg.add("sim.machines", 1);
  reg.add("sim.elapsed_ns", elapsed);

  // Per-channel busy time and utilization (busy / machine elapsed). The
  // utilization histograms aggregate the channel population across every
  // Machine that flushed into this registry.
  const auto flush_pool = [&](const ChannelPool& pool, const char* name) {
    for (int c = 0; c < pool.size(); ++c) {
      reg.add(std::string("sim.") + name + ".ch" + std::to_string(c) +
                  ".busy_ns",
              pool.busy(c));
      if (elapsed > 0) {
        reg.record(std::string("sim.") + name + ".channel_util",
                   pool.busy(c) / elapsed);
      }
    }
    reg.add(std::string("sim.") + name + ".busy_ns", pool.busy_total());
  };
  flush_pool(dram_, "dram");
  flush_pool(mcdram_, "mcdram");

  // Mesh occupancy (hop totals) and directory home-CHA request counts.
  reg.add("sim.noc.hops", static_cast<double>(noc_hops_total_));
  for (std::size_t t = 0; t < dir_requests_.size(); ++t) {
    if (dir_requests_[t] == 0) continue;
    reg.add("sim.dir.home" + std::to_string(t) + ".requests",
            static_cast<double>(dir_requests_[t]));
  }
  reg.merge_hist("sim.cha.queue_ns", cha_queue_);

  // Queue-delay distributions: one aggregate plus per-thread breakdowns.
  obs::Log2Hist all_queue;
  for (std::size_t tid = 0; tid < queue_delay_.size(); ++tid) {
    const obs::Log2Hist& h = queue_delay_[tid];
    if (h.count == 0) continue;
    all_queue.merge(h);
    reg.merge_hist("sim.mem.queue_delay_ns.tid" + std::to_string(tid), h);
  }
  reg.merge_hist("sim.mem.queue_delay_ns", all_queue);

  // Core issue-port / L2-supply occupancy.
  double issue_busy = 0;
  for (const auto& p : core_ports_) issue_busy += p.busy();
  double supply_busy = 0;
  for (const auto& p : l2_supply_) supply_busy += p.busy();
  reg.add("sim.core_issue.busy_ns", issue_busy);
  reg.add("sim.l2_supply.busy_ns", supply_busy);

  // ThreadCounters aggregate (the classification partition of line_ops).
  ThreadCounters sum;
  for (const auto& c : counters_) {
    sum.l1_hits += c.l1_hits;
    sum.l2_tile_hits += c.l2_tile_hits;
    sum.remote_hits += c.remote_hits;
    sum.dram_lines += c.dram_lines;
    sum.mcdram_lines += c.mcdram_lines;
    sum.mc_cache_hits += c.mc_cache_hits;
    sum.mc_cache_misses += c.mc_cache_misses;
    sum.writebacks += c.writebacks;
    sum.invalidations += c.invalidations;
    sum.line_ops += c.line_ops;
  }
  reg.add("sim.mem.l1_hits", static_cast<double>(sum.l1_hits));
  reg.add("sim.mem.l2_tile_hits", static_cast<double>(sum.l2_tile_hits));
  reg.add("sim.mem.remote_hits", static_cast<double>(sum.remote_hits));
  reg.add("sim.mem.dram_lines", static_cast<double>(sum.dram_lines));
  reg.add("sim.mem.mcdram_lines", static_cast<double>(sum.mcdram_lines));
  reg.add("sim.mem.mc_cache_hits", static_cast<double>(sum.mc_cache_hits));
  reg.add("sim.mem.mc_cache_misses",
          static_cast<double>(sum.mc_cache_misses));
  reg.add("sim.mem.writebacks", static_cast<double>(sum.writebacks));
  reg.add("sim.mem.invalidations", static_cast<double>(sum.invalidations));
  reg.add("sim.mem.line_ops", static_cast<double>(sum.line_ops));
  // MCDRAM-cache hit ratio of this machine, as a distribution across
  // machines (a plain counter ratio is recoverable from the two counters).
  const std::uint64_t mc_total = sum.mc_cache_hits + sum.mc_cache_misses;
  if (mc_total > 0) {
    reg.record("sim.mc_cache.hit_ratio",
               static_cast<double>(sum.mc_cache_hits) /
                   static_cast<double>(mc_total));
  }

  // Fault-injection counters (only with a plan attached, so healthy runs
  // don't grow zero-valued keys).
  if (fault_ != nullptr) {
    reg.add("sim.fault.link_retries",
            static_cast<double>(fault_link_retries_));
    reg.add("sim.fault.stuck_dir_hits",
            static_cast<double>(fault_stuck_hits_));
    reg.add("sim.fault.degraded_transfers",
            static_cast<double>(dram_.degraded_transfers() +
                                mcdram_.degraded_transfers()));
  }
}

}  // namespace capmem::sim
