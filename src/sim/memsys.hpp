// The memory system: every timed memory operation goes through here.
//
// Given (thread, line, read/write, options, virtual time), this module
//   1. walks the cache hierarchy (per-core L1, per-tile L2),
//   2. performs the MESIF directory transition,
//   3. reserves contended resources (per-line CHA service, per-core issue
//      ports, memory channels, memory-side MCDRAM cache in cache mode),
//   4. returns the completion time plus a breakdown of where the line came
//      from.
//
// Single-line ("latency") operations pay the full round-trip; streaming
// operations (multi-line copies, STREAM kernels) pay a pipelined per-line
// issue cost bounded below by the resource reservations, which is what makes
// bandwidth saturate at the channel rates while a single thread stays
// latency/MLP-bound (paper §V.A, Fig. 9).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/attr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/address.hpp"
#include "sim/cache.hpp"
#include "sim/coherence.hpp"
#include "sim/config.hpp"
#include "sim/hooks.hpp"
#include "sim/mcdram_cache.hpp"
#include "sim/mem_map.hpp"
#include "sim/resource.hpp"
#include "sim/topology.hpp"

namespace capmem::sim {

/// Where a request was satisfied.
enum class Level {
  kL1,
  kL2Tile,      ///< own tile's L2 (possibly the other core's data)
  kRemoteL2,    ///< another tile's L2 via the directory
  kDram,
  kMcdram,
  kMcdramCacheHit,   ///< cache mode: hit in the memory-side cache
  kMcdramCacheMiss,  ///< cache mode: miss, served from DDR + fill
};
const char* to_string(Level level);

enum class AccessType { kRead, kWrite };

struct AccessOpts {
  bool vector = true;     ///< AVX-512-style access (higher MLP)
  bool nt = false;        ///< non-temporal hint: bypass caches, no RFO
  bool streaming = false; ///< part of a pipelined multi-line operation
  bool copy_pair = false; ///< streaming read that feeds a paired store
  bool polling = false;   ///< spin-poll read (repeated; L1-hit when cached)
};

struct AccessResult {
  Nanos finish = 0;       ///< completion time of this line
  Level level = Level::kL1;
  TileState prior = TileState::kI;  ///< state at the serving location
};

/// Attribution category of the level that served an access (the time a
/// task spends in the access is charged there by the Machine awaiters).
inline obs::attr::TimeCat attr_cat(Level level) {
  switch (level) {
    case Level::kL1: return obs::attr::TimeCat::kL1;
    case Level::kL2Tile: return obs::attr::TimeCat::kL2Tile;
    case Level::kRemoteL2: return obs::attr::TimeCat::kRemoteL2;
    case Level::kDram: return obs::attr::TimeCat::kDram;
    case Level::kMcdram: return obs::attr::TimeCat::kMcdram;
    case Level::kMcdramCacheHit: return obs::attr::TimeCat::kMcCacheHit;
    case Level::kMcdramCacheMiss: return obs::attr::TimeCat::kMcCacheMiss;
  }
  return obs::attr::TimeCat::kUnattributed;
}

/// Per-thread event counters (exposed through Machine for tests and the
/// efficiency analyses).
/// The classification counters (l1_hits .. mc_cache_misses) partition
/// line_ops: every access increments exactly one of them.
struct ThreadCounters {
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_tile_hits = 0;
  std::uint64_t remote_hits = 0;
  std::uint64_t dram_lines = 0;
  std::uint64_t mcdram_lines = 0;
  std::uint64_t mc_cache_hits = 0;
  std::uint64_t mc_cache_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t line_ops = 0;
};

class MemSystem {
 public:
  MemSystem(const MachineConfig& cfg, const Topology& topo, Rng& rng);

  /// Timed access to one line by HW thread `tid` running on `core`.
  /// `place` is the placement of the owning allocation. Mutates coherence
  /// state; returns completion time. With observability hooks attached
  /// (MachineConfig::trace / ::metrics) each access additionally emits a
  /// classified kLineAccess trace event and feeds the local instruments —
  /// without them the only extra cost is one branch.
  AccessResult access(int tid, int core, Line line, const Placement& place,
                      AccessType type, const AccessOpts& opts, Nanos now);

  /// Untimed full flush of a line: drops it from every cache and the
  /// directory (and optionally the MCDRAM cache). Harness primitive used
  /// to reset cache state between benchmark iterations.
  void flush_line(Line line, bool drop_mcdram_cache = true);

  /// Untimed reset of all caches/directory/resources (between experiments).
  void reset();

  const ThreadCounters& counters(int tid) const { return counters_.at(tid); }
  void clear_counters();

  const Directory& directory() const { return dir_; }
  TileState state_in_tile(Line line, int tile) const {
    return dir_.state_in_tile(line, tile);
  }

  // --- cross-structure queries (capmem::check invariant sweeps) ---
  bool line_in_l1(int core, Line line) const {
    return l1_.at(static_cast<std::size_t>(core)).contains(line);
  }
  bool line_in_l2(int tile, Line line) const {
    return l2_.at(static_cast<std::size_t>(tile)).contains(line);
  }
  const SetAssocCache& l1_cache(int core) const {
    return l1_.at(static_cast<std::size_t>(core));
  }
  const SetAssocCache& l2_cache(int tile) const {
    return l2_.at(static_cast<std::size_t>(tile));
  }
  const MemMap& mem_map() const { return map_; }

  /// Aggregate bytes of DRAM / MCDRAM channel traffic so far.
  double dram_busy_ns() const;
  double mcdram_busy_ns() const;

  // --- observability accessors (Machine re-exports these) ---
  const ChannelPool& dram_pool() const { return dram_; }
  const ChannelPool& mcdram_pool() const { return mcdram_; }
  Nanos core_issue_busy(int core) const {
    return core_ports_.at(static_cast<std::size_t>(core)).busy();
  }
  Nanos l2_supply_busy(int tile) const {
    return l2_supply_.at(static_cast<std::size_t>(tile)).busy();
  }
  std::uint64_t dir_requests(int home_tile) const {
    return dir_requests_.at(static_cast<std::size_t>(home_tile));
  }
  std::uint64_t noc_hops() const { return noc_hops_total_; }

  /// Merges the hot-path-local instruments (per-channel busy time and
  /// utilization, home-CHA request counts, NoC hop totals, queue-delay
  /// histograms, the ThreadCounters aggregate) into the attached
  /// obs::Registry. Called once by Machine::run(); no-op without a registry.
  void flush_metrics(Nanos elapsed);

  int tile_of_core(int core) const { return topo_->tile_of_core(core); }

  /// Attaches the attribution ledger (null to detach). The memory system
  /// feeds traffic counters (per-level access counts, directional mesh
  /// hops, CHA lookups, coherence transitions); time is charged by the
  /// Machine awaiters that own the task clocks. Must be called before the
  /// first access.
  void set_attr(obs::attr::Ledger* ledger) {
    attr_ = ledger;
    obs_on_ = obs_on_ || attr_ != nullptr;
    tapped_ = tapped_ || attr_ != nullptr;
  }

 private:
  // Cost helpers. `legs` is the mesh path length in hops.
  Nanos jitter(Nanos v, bool allow_spike = true);
  /// Per-line memoized map_.target() (see LineEntry::target).
  const MemTarget& target_of(LineEntry& e, Line line, const Placement& place);
  int mesh_legs(int req_tile, int home_tile, Coord far_stop) const;
  int mesh_legs_tiles(int req_tile, int home_tile, int owner_tile) const;

  Nanos remote_transfer_cost(TileState owner_state, int legs);
  /// Protocol dispatch: one switch on the construction-time protocol_, into
  /// the per-policy instantiation below. The policies are compile-time
  /// structs private to memsys.cpp, so every protocol-variant point is an
  /// `if constexpr` and the hot path stays devirtualized — the MESIF
  /// instantiation is the exact pre-refactor transition code.
  AccessResult access_impl(int tid, int core, Line line,
                           const Placement& place, AccessType type,
                           const AccessOpts& opts, Nanos now);
  template <class Policy>
  AccessResult access_impl_p(int tid, int core, Line line,
                             const Placement& place, AccessType type,
                             const AccessOpts& opts, Nanos now);
  AccessResult memory_access(int tid, int core, Line line,
                             const MemTarget& target, AccessType type,
                             const AccessOpts& opts, Nanos now,
                             int req_tile);

  // State maintenance.
  void fill_caches(int core, int tile, Line line, LineEntry& e);
  void evict_l2_victim(int tile, Line victim, Nanos now);
  void invalidate_others(LineEntry& e, Line line, int keep_tile, int tid,
                         Nanos now);
  void l1_insert(int core, Line line, LineEntry& e);

  // Validation taps (called only when check_ attached).
  void note_transition(Line line, const LineEntry& e) {
    if (check_ != nullptr) check_->on_transition(line, e, *this);
  }
  void note_check_access(int tid, int core, Line line, AccessType type,
                         const AccessOpts& opts, const AccessResult& res,
                         Nanos now);

  // Observability taps (called only when obs_on_).
  void note_access(int tid, int core, Line line, AccessType type,
                   const AccessResult& res, Nanos now);
  void note_dir_lookup(int tid, Line line, int home_tile, Nanos now,
                       Nanos svc_start, Nanos service);
  /// `req_tile` -> `home_tile` -> `far_stop` -> `req_tile` is the request
  /// path whose hop count is `legs`; the endpoints let the attribution
  /// ledger split the hops by ring direction (vertical/horizontal).
  void note_hops(int tid, int core, int legs, Nanos now, int req_tile,
                 int home_tile, Coord far_stop);
  void note_coherence(int tid, int core, int tile, Line line, TileState from,
                      TileState to, Nanos now, const char* label);

  // Fault-injection tap: additive penalty for a mesh path whose endpoint
  // tiles (`c` < 0 when the path has only two) include degraded ones.
  // Callers guard with `!fault_mesh_.empty()`.
  Nanos fault_path_penalty(int tid, Nanos now, int a, int b, int c = -1);

  // Streaming issue occupancy for a line served at `level`.
  Nanos stream_issue_cost(Level level, TileState prior, AccessType type,
                          const AccessOpts& opts) const;
  // Reserve the core's issue ports; returns completion of the issue slot.
  Nanos core_issue(int core, Nanos now, Nanos occupancy);
  // Reserve the source tile's L2 supply port for one c2c line; returns the
  // time the line has been served.
  Nanos l2_supply(int src_tile, Nanos at);

  const MachineConfig* cfg_;
  const Topology* topo_;
  Rng* rng_;
  Protocol protocol_ = Protocol::kMesif;
  MemMap map_;
  Directory dir_;
  McdramCache mc_cache_;
  ChannelPool dram_;
  ChannelPool mcdram_;
  std::vector<SetAssocCache> l1_;          // per core
  std::vector<SetAssocCache> l2_;          // per tile
  std::vector<Reservation> core_ports_;    // per core
  std::vector<Reservation> l2_supply_;     // per tile: c2c source bandwidth
  std::vector<ThreadCounters> counters_;   // per tid (grown on demand)
  double extra_sigma_ = 0.0;               // SNC2 experimental-mode variance

  // Observability state. The hot-path instruments are component-local and
  // allocation-free (plain counters, fixed Log2Hists); flush_metrics()
  // merges them into the shared registry once per run.
  obs::TraceSink* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::attr::Ledger* attr_ = nullptr;
  CheckHook* check_ = nullptr;
  bool obs_on_ = false;
  bool tapped_ = false;  ///< obs_on_ || check_ attached (hot-path gate)

  // Fault-injection state (all empty/false without a FaultPlan; the healthy
  // hot path pays one vector-emptiness / bool branch per guarded site).
  const fault::FaultPlan* fault_ = nullptr;
  std::vector<std::uint8_t> fault_mesh_;  ///< per-tile degraded endpoints
  bool fault_stuck_ = false;
  std::uint64_t fault_link_retries_ = 0;
  std::uint64_t fault_stuck_hits_ = 0;
  std::vector<std::uint64_t> dir_requests_;  // per home tile
  std::uint64_t noc_hops_total_ = 0;
  obs::Log2Hist cha_queue_;                  // directory queueing delays
  std::vector<obs::Log2Hist> queue_delay_;   // per tid, channel queue delays
};

}  // namespace capmem::sim
