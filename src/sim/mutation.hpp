// Test-only fault injection for the mutation-smoke test.
//
// Proves the capmem::check oracle has teeth: a build with
// CAPMEM_MUTATION_SMOKE defined (the `capmem_sim_mutant` library used only
// by tests/test_mutation.cpp) can deliberately corrupt one MESIF transition
// at runtime, and the checker must report divergence exactly then. In
// regular builds the predicates are constexpr-false, so every injection
// site folds away to the unmodified code — production capmem_sim contains
// no trace of the machinery.
#pragma once

namespace capmem::sim::mutation {

enum class Kind {
  kNone,
  /// The owned-tile silent write upgrade "forgets" to bump the line's
  /// directory version (a silent bookkeeping corruption: the simulator
  /// keeps running normally and only the oracle's mirror can notice).
  kSkipVersionBump,
  /// An invalidation round clears the directory sharer bit but leaves the
  /// victim tile's L2 copy resident (a stale-line coherence bug: only the
  /// cross-structure residency sweep can notice).
  kStaleL2Copy,
  /// MESI only: a read served cache-to-cache designates the requester as a
  /// forwarder — a state MESI does not have. Caught by the protocol's
  /// legal-state table (has_forward = false) on the very transition.
  kMesiPhantomForwarder,
  /// MOSI only: a read from a modified line drops the owner while leaving
  /// the line dirty — the O-state bookkeeping "loses" the owner, so the
  /// dirty-implies-owner rule trips on the very transition.
  kMosiLostOwner,
};

#ifdef CAPMEM_MUTATION_SMOKE
inline Kind g_kind = Kind::kNone;
inline void set(Kind k) { g_kind = k; }
inline bool is(Kind k) { return g_kind == k; }
#else
inline void set(Kind) {}
constexpr bool is(Kind) { return false; }
#endif

}  // namespace capmem::sim::mutation
