#include "sim/protocol.hpp"

#include "common/check.hpp"

namespace capmem::sim {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kMesif: return "mesif";
    case Protocol::kMesi: return "mesi";
    case Protocol::kMosi: return "mosi";
  }
  return "?";
}

Protocol parse_protocol(const std::string& s) {
  for (Protocol p : all_protocols())
    if (s == to_string(p)) return p;
  CAPMEM_CHECK_MSG(false, "unknown protocol '" << s
                          << "' (expected mesif, mesi or mosi)");
}

std::vector<Protocol> all_protocols() {
  return {Protocol::kMesif, Protocol::kMesi, Protocol::kMosi};
}

const ProtocolRules& rules_of(Protocol p) {
  static const ProtocolRules mesif{Protocol::kMesif, true, true, false};
  static const ProtocolRules mesi{Protocol::kMesi, false, true, false};
  static const ProtocolRules mosi{Protocol::kMosi, false, false, true};
  switch (p) {
    case Protocol::kMesif: return mesif;
    case Protocol::kMesi: return mesi;
    case Protocol::kMosi: return mosi;
  }
  return mesif;
}

}  // namespace capmem::sim
