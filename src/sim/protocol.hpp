// Coherence-protocol selection and legal-state tables.
//
// The simulator's directory pipeline (sim/memsys.cpp) is one template whose
// protocol-variant points are gated by a compile-time policy, instantiated
// once per Protocol and dispatched at MemSystem construction — the hot path
// stays devirtualized and the default MESIF instantiation is textually the
// pre-refactor code. Everything *outside* the hot path (the check layer,
// Directory::check_all, CLI parsing) consumes the runtime ProtocolRules
// table below, following Graphite's createMMU protocol-string factory.
#pragma once

#include <string>
#include <vector>

namespace capmem::sim {

/// Directory coherence protocols the transition pipeline can run.
///  - kMesif: KNL's tile-granularity MESIF (the calibrated default).
///  - kMesi:  MESIF minus the forwarder — shared lines are served by
///            memory, never by a peer cache in S.
///  - kMosi:  owned-dirty-sharing — a dirty line may have sharers while
///            the owner (O state) holds the only up-to-date copy; reads
///            from a modified line do not write back to memory.
enum class Protocol { kMesif, kMesi, kMosi };

const char* to_string(Protocol p);

/// Factory from a CLI string ("mesif" | "mesi" | "mosi"); throws CheckError
/// with the known names on anything else.
Protocol parse_protocol(const std::string& s);

/// All protocols, default (MESIF) first.
std::vector<Protocol> all_protocols();

/// Legal-state table: which directory-entry shapes a protocol may produce.
/// Consumed by Directory::check_entry / InvariantChecker so the check layer
/// is protocol-parametric without knowing transition internals.
struct ProtocolRules {
  Protocol protocol = Protocol::kMesif;
  /// A forwarder (LineEntry::forward >= 0) may exist on unowned lines.
  bool has_forward = true;
  /// A clean owned line (E state) is legal. Without it, owners are always
  /// dirty and a clean sole copy degrades to S.
  bool has_exclusive = true;
  /// A dirty line may have sharers besides the owner (O state). Without it,
  /// an owned line must be the only cached copy.
  bool dirty_shared = false;
};

/// The legal-state table for `p` (static storage; valid forever).
const ProtocolRules& rules_of(Protocol p);

}  // namespace capmem::sim
