#include "sim/resource.hpp"

// Header-only today; this TU anchors the module in the build so future
// out-of-line additions have a home.
namespace capmem::sim {}
