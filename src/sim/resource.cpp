#include "sim/resource.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace capmem::sim {

Nanos ChannelPool::transfer(int channel, Nanos now, double bytes,
                            double rate_factor) {
  Reservation& ch = channels_.at(static_cast<std::size_t>(channel));
  if (!degrade_.empty()) {
    const double f = degrade_[static_cast<std::size_t>(channel)];
    if (f != 1.0) {
      rate_factor *= f;
      ++degraded_transfers_;
    }
  }
  const Nanos service = bytes / (rate_ * rate_factor);
  const Nanos arrive = now - lead_ns_;
  // Queue delay: time the request sat behind earlier reservations between
  // its (back-dated) arrival and service start.
  last_queue_ns_ = std::max<Nanos>(0, ch.available() - arrive);
  const Nanos start = ch.acquire(arrive, service);
  const Nanos done = start + service;
  if (trace_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kChannelXfer;
    e.t = start;
    e.dur = service;
    e.a = channel;
    e.queue_ns = last_queue_ns_;
    e.label = name_;
    trace_->on_event(e);
  }
  return std::max(now, done);
}

}  // namespace capmem::sim
