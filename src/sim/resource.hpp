// Reservation resources: the contention primitives of the simulator.
//
// A Reservation models a serially reusable unit (a memory channel, a core's
// load/store issue ports). Acquiring it at virtual time `now` for `service`
// nanoseconds returns the start time max(now, available) and pushes the
// availability forward. Because the engine executes operations in
// nondecreasing virtual time, this is an exact single-server FIFO queue.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace capmem::obs {
class TraceSink;
}  // namespace capmem::obs

namespace capmem::sim {

class Reservation {
 public:
  /// Reserves the resource; returns the service start time.
  Nanos acquire(Nanos now, Nanos service) {
    CAPMEM_DCHECK(service >= 0);
    const Nanos start = now > available_ ? now : available_;
    available_ = start + service;
    busy_ += service;
    return start;
  }

  /// Completion time of the last reservation.
  Nanos available() const { return available_; }
  /// Total busy time, for utilization accounting.
  Nanos busy() const { return busy_; }

  void reset() {
    available_ = 0;
    busy_ = 0;
  }

 private:
  Nanos available_ = 0;
  Nanos busy_ = 0;
};

/// A set of identical parallel servers (e.g. the channels of one memory
/// kind). Callers address a specific channel (the address map decides which
/// line lives on which channel).
///
/// Each channel is a rate limiter with a bounded request queue: a requester
/// may run up to `lead_ns` of reserved work ahead of its own clock before
/// the channel exerts backpressure. This models the memory controller's
/// per-channel queue absorbing bursts — without it, one-outstanding-line
/// threads convoy on randomly imbalanced channels and a saturated memory
/// system idles at ~50% utilization, which real controllers do not.
class ChannelPool {
 public:
  ChannelPool(int channels, GBps per_channel_rate, Nanos lead_ns = 0)
      : rate_(per_channel_rate),
        lead_ns_(lead_ns),
        channels_(static_cast<std::size_t>(channels)) {
    CAPMEM_CHECK(channels > 0 && per_channel_rate > 0);
  }

  /// Reserves `bytes` of transfer on `channel`; returns the time at which
  /// the requester may consider the transfer complete. The request is
  /// back-dated by up to `lead_ns` (the controller had it queued while the
  /// requester's clock was held up elsewhere), so a channel that fell idle
  /// within the lead window still serves it without a gap.
  Nanos transfer(int channel, Nanos now, double bytes,
                 double rate_factor = 1.0);

  /// Attaches a trace sink (null to detach); `name` must have static
  /// storage duration ("dram"/"mcdram") and labels the emitted
  /// kChannelXfer events.
  void set_obs(obs::TraceSink* sink, const char* name) {
    trace_ = sink;
    name_ = name;
  }

  /// Installs per-channel fault factors (1.0 = healthy; < 1.0 = flaky
  /// channel serving at that fraction of the pool rate). Empty (the
  /// default) keeps the healthy fast path to a single branch per transfer.
  /// Sized vectors must match size().
  void set_fault_factors(std::vector<double> factors) {
    CAPMEM_CHECK(factors.empty() || factors.size() == channels_.size());
    degrade_ = std::move(factors);
  }
  /// Transfers that hit a flaky channel since construction/reset.
  std::uint64_t degraded_transfers() const { return degraded_transfers_; }

  int size() const { return static_cast<int>(channels_.size()); }
  GBps rate() const { return rate_; }
  Nanos lead() const { return lead_ns_; }
  Nanos busy(int channel) const {
    return channels_.at(static_cast<std::size_t>(channel)).busy();
  }
  /// Sum of per-channel busy times, for pool-level utilization.
  Nanos busy_total() const {
    Nanos t = 0;
    for (const auto& c : channels_) t += c.busy();
    return t;
  }
  /// Controller queue delay of the most recent transfer(): how long the
  /// request sat behind earlier reservations before service started.
  Nanos last_queue_ns() const { return last_queue_ns_; }
  const char* name() const { return name_; }
  void reset() {
    for (auto& c : channels_) c.reset();
    last_queue_ns_ = 0;
    degraded_transfers_ = 0;
  }

 private:
  GBps rate_;
  Nanos lead_ns_;
  std::vector<Reservation> channels_;
  std::vector<double> degrade_;  ///< empty unless a fault plan is attached
  std::uint64_t degraded_transfers_ = 0;
  Nanos last_queue_ns_ = 0;
  obs::TraceSink* trace_ = nullptr;
  const char* name_ = "channel";
};

}  // namespace capmem::sim
