// Small vector with inline storage: the first N elements live inside the
// object, killing the per-list heap allocation that dominated the engine's
// waiter tables (most wait keys only ever hold a handful of parked tasks).
//
// Deliberately minimal: move-only, grow-only capacity, and *ordered* erase —
// the engine's wakeup order is FIFO within a key, so erase must shift, never
// swap-with-back.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace capmem::sim {

template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& o) noexcept { steal(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy();
      steal(o);
    }
    return *this;
  }
  ~SmallVec() { destroy(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    CAPMEM_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    CAPMEM_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void push_back(T v) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(data_ + size_)) T(std::move(v));
    ++size_;
  }

  /// Removes element `i`, shifting the tail left (order-preserving).
  void erase(std::size_t i) {
    CAPMEM_DCHECK(i < size_);
    for (std::size_t j = i + 1; j < size_; ++j)
      data_[j - 1] = std::move(data_[j]);
    data_[size_ - 1].~T();
    --size_;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

 private:
  bool is_inline() const {
    return data_ == reinterpret_cast<const T*>(inline_);
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* heap = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(heap + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_);
    data_ = heap;
    cap_ = new_cap;
  }

  void destroy() {
    clear();
    if (!is_inline()) ::operator delete(data_);
    data_ = reinterpret_cast<T*>(inline_);
    cap_ = N;
  }

  /// Takes `o`'s contents; `o` is left empty (inline, zero size).
  void steal(SmallVec& o) {
    if (o.is_inline()) {
      data_ = reinterpret_cast<T*>(inline_);
      cap_ = N;
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(o.data_[i]));
        o.data_[i].~T();
      }
      size_ = o.size_;
      o.size_ = 0;
    } else {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = reinterpret_cast<T*>(o.inline_);
      o.cap_ = N;
      o.size_ = 0;
    }
  }

  T* data_ = reinterpret_cast<T*>(inline_);
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
  alignas(T) unsigned char inline_[N * sizeof(T)];
};

}  // namespace capmem::sim
