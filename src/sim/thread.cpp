#include "sim/thread.hpp"

#include "common/check.hpp"

namespace capmem::sim {

const char* to_string(Schedule s) {
  switch (s) {
    case Schedule::kScatter: return "scatter";
    case Schedule::kFillTiles: return "fill-tiles";
    case Schedule::kFillCores: return "fill-cores";
  }
  return "?";
}

Schedule schedule_from_string(const std::string& s) {
  if (s == "scatter") return Schedule::kScatter;
  if (s == "fill-tiles") return Schedule::kFillTiles;
  if (s == "fill-cores") return Schedule::kFillCores;
  CAPMEM_CHECK_MSG(false, "unknown schedule '" << s << "'");
}

std::vector<CpuSlot> make_schedule(const MachineConfig& cfg, Schedule sched,
                                   int nthreads) {
  CAPMEM_CHECK_MSG(nthreads > 0 && nthreads <= cfg.hw_threads(),
                   "nthreads=" << nthreads << " exceeds "
                               << cfg.hw_threads() << " HW threads");
  const int tiles = cfg.active_tiles;
  const int cpt = cfg.cores_per_tile;
  const int smt = cfg.threads_per_core;
  std::vector<CpuSlot> out;
  out.reserve(static_cast<std::size_t>(nthreads));

  switch (sched) {
    case Schedule::kScatter:
      // Layers: (smt s, core-of-tile c) ordered by s then c, tiles fastest.
      for (int s = 0; s < smt && static_cast<int>(out.size()) < nthreads;
           ++s) {
        for (int c = 0; c < cpt && static_cast<int>(out.size()) < nthreads;
             ++c) {
          for (int t = 0;
               t < tiles && static_cast<int>(out.size()) < nthreads; ++t) {
            out.push_back(CpuSlot{t * cpt + c, s});
          }
        }
      }
      break;
    case Schedule::kFillTiles:
      for (int s = 0; s < smt && static_cast<int>(out.size()) < nthreads;
           ++s) {
        for (int t = 0; t < tiles && static_cast<int>(out.size()) < nthreads;
             ++t) {
          for (int c = 0;
               c < cpt && static_cast<int>(out.size()) < nthreads; ++c) {
            out.push_back(CpuSlot{t * cpt + c, s});
          }
        }
      }
      break;
    case Schedule::kFillCores:
      for (int core = 0;
           core < cfg.cores() && static_cast<int>(out.size()) < nthreads;
           ++core) {
        for (int s = 0; s < smt && static_cast<int>(out.size()) < nthreads;
             ++s) {
          out.push_back(CpuSlot{core, s});
        }
      }
      break;
  }
  CAPMEM_CHECK(static_cast<int>(out.size()) == nthreads);
  return out;
}

}  // namespace capmem::sim
