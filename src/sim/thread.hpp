// Thread pinning schedules (paper §IV.B.3 and §V.A).
//
// The paper pins threads with three schedules:
//   scatter     — first one thread per tile, then the second core of each
//                 tile, then the SMT layers ("1/2/4 threads per core").
//   fill tiles  — one thread per core, walking tiles in order (both cores
//                 of tile 0, then tile 1, ...), then the SMT layers.
//   fill cores  — compact: all four HW threads of core 0, then core 1, ...
#pragma once

#include <vector>

#include "sim/config.hpp"

namespace capmem::sim {

enum class Schedule { kScatter, kFillTiles, kFillCores };

const char* to_string(Schedule s);
Schedule schedule_from_string(const std::string& s);

/// One pinning slot: a core and an SMT slot on it.
struct CpuSlot {
  int core = 0;
  int smt = 0;
};

/// First `nthreads` pinning slots under `sched`. nthreads must not exceed
/// cfg.hw_threads().
std::vector<CpuSlot> make_schedule(const MachineConfig& cfg, Schedule sched,
                                   int nthreads);

}  // namespace capmem::sim
