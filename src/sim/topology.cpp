#include "sim/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace capmem::sim {

namespace {
// Bit-mix used to pick which physical tiles are disabled; deterministic per
// machine seed so the "unknown tile location" property of real KNL parts is
// reproduced without being the same for every config.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

Topology::Topology(const MachineConfig& cfg)
    : rows_(cfg.mesh_rows),
      cols_(cfg.mesh_cols),
      cores_per_tile_(cfg.cores_per_tile),
      num_edcs_(cfg.mcdram_controllers),
      num_imcs_(cfg.dram_controllers) {
  cfg.validate();

  // Memory stops. kEdges is KNL's floorplan: IMCs sit mid-height on the
  // left/right die edges, EDCs in the corners (paper Fig. 2b). kSpread
  // distributes IMCs along the middle row and EDCs alternating between the
  // top and bottom rows, for synthetic meshes whose aspect ratio makes the
  // corner layout meaningless. Stops occupy conceptual positions and do not
  // consume tile slots in this model.
  if (cfg.stop_placement == StopPlacement::kEdges) {
    for (int i = 0; i < num_imcs_; ++i) {
      imc_pos_.push_back(Coord{rows_ / 2, i % 2 == 0 ? 0 : cols_ - 1});
    }
    for (int e = 0; e < num_edcs_; ++e) {
      const int corner = e % 4;
      const int row = corner < 2 ? 0 : rows_ - 1;
      int col = corner % 2 == 0 ? 0 : cols_ - 1;
      if (e >= 4) col = std::clamp(col + (corner % 2 == 0 ? 1 : -1), 0,
                                   cols_ - 1);
      edc_pos_.push_back(Coord{row, col});
    }
  } else {
    for (int i = 0; i < num_imcs_; ++i) {
      imc_pos_.push_back(
          Coord{rows_ / 2, (2 * i + 1) * cols_ / (2 * num_imcs_)});
    }
    for (int e = 0; e < num_edcs_; ++e) {
      edc_pos_.push_back(Coord{e % 2 == 0 ? 0 : rows_ - 1,
                               (2 * e + 1) * cols_ / (2 * num_edcs_)});
    }
  }

  // Enumerate all grid slots per quadrant, then pick `physical_tiles` of
  // them round-robin across quadrants so the physical part is as balanced
  // as the grid allows. The yield-victim tiles are then disabled so every
  // quadrant ends with exactly active_tiles/4 tiles — real parts are fused
  // that way so SNC4 exposes equal NUMA domains.
  std::vector<std::vector<Coord>> quad_slots(4);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      quad_slots[static_cast<std::size_t>(grid_domain(Coord{r, c}, 4))]
          .push_back(Coord{r, c});
    }
  }
  std::vector<std::vector<Coord>> by_quad(4);
  int picked = 0;
  for (std::size_t k = 0; picked < cfg.physical_tiles; ++k) {
    bool any = false;
    for (std::size_t q = 0; q < 4 && picked < cfg.physical_tiles; ++q) {
      if (k < quad_slots[q].size()) {
        by_quad[q].push_back(quad_slots[q][k]);
        ++picked;
        any = true;
      }
    }
    CAPMEM_CHECK_MSG(any || picked >= cfg.physical_tiles,
                     "grid too small for physical_tiles");
  }

  const int target = cfg.active_tiles / 4;
  std::uint64_t h = mix(cfg.seed + 0x7031);
  bool balanced = true;
  for (const auto& q : by_quad)
    if (static_cast<int>(q.size()) < target) balanced = false;
  if (balanced) {
    for (auto& q : by_quad) {
      while (static_cast<int>(q.size()) > target) {
        h = mix(h);
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(h % q.size()));
      }
    }
    for (const auto& q : by_quad)
      for (const Coord& s : q) tile_pos_.push_back(s);
  } else {
    // Degenerate meshes (e.g. a single row, where two quadrants are empty)
    // cannot expose balanced SNC4 domains; disable the yield victims
    // seed-randomly across the whole part instead. Real presets never take
    // this path — validate() guarantees the counts, and their grids give
    // every quadrant at least `target` slots.
    for (const auto& q : by_quad)
      for (const Coord& s : q) tile_pos_.push_back(s);
    while (static_cast<int>(tile_pos_.size()) > cfg.active_tiles) {
      h = mix(h);
      tile_pos_.erase(tile_pos_.begin() +
                      static_cast<std::ptrdiff_t>(h % tile_pos_.size()));
    }
  }
  // Logical order must not leak position: shuffle deterministically.
  Rng rng(cfg.seed + 0x1109);
  for (std::size_t i = tile_pos_.size(); i > 1; --i) {
    std::swap(tile_pos_[i - 1], tile_pos_[rng.next_below(i)]);
  }
  CAPMEM_CHECK(static_cast<int>(tile_pos_.size()) == cfg.active_tiles);

  for (int logdom = 0; logdom < 3; ++logdom) {
    const int ndom = 1 << logdom;
    domain_tiles_[logdom].assign(static_cast<std::size_t>(ndom), {});
    for (int t = 0; t < active_tiles(); ++t) {
      domain_tiles_[logdom][static_cast<std::size_t>(
                                grid_domain(tile_pos_[static_cast<std::size_t>(
                                                t)],
                                            ndom))]
          .push_back(t);
    }
    // Same precomputation for the EDC stops (per-access lookups must not
    // rebuild these lists).
    domain_edcs_[logdom].assign(static_cast<std::size_t>(ndom), {});
    for (int dom = 0; dom < ndom; ++dom) {
      auto& out = domain_edcs_[logdom][static_cast<std::size_t>(dom)];
      for (int e = 0; e < num_edcs_; ++e) {
        if (ndom == 1 ||
            grid_domain(edc_pos_[static_cast<std::size_t>(e)], ndom) == dom) {
          out.push_back(e);
        }
      }
      if (out.empty()) out.push_back(dom % num_edcs_);  // degenerate meshes
    }
  }
}

int Topology::grid_domain(Coord c, int ndom) const {
  if (ndom == 1) return 0;
  const int right = c.col >= (cols_ + 1) / 2 ? 1 : 0;
  if (ndom == 2) return right;
  const int bottom = c.row >= (rows_ + 1) / 2 ? 1 : 0;
  return right * 2 + bottom;
}

int Topology::domains(ClusterMode mode) {
  switch (mode) {
    case ClusterMode::kSNC4:
    case ClusterMode::kQuadrant: return 4;
    case ClusterMode::kSNC2:
    case ClusterMode::kHemisphere: return 2;
    case ClusterMode::kA2A: return 1;
  }
  return 1;
}

int Topology::domain_of_tile(int tile, ClusterMode mode) const {
  return grid_domain(tile_coord(tile), domains(mode));
}

const std::vector<int>& Topology::tiles_in_domain(ClusterMode mode,
                                                  int domain) const {
  const int ndom = domains(mode);
  CAPMEM_CHECK(domain >= 0 && domain < ndom);
  const int logdom = ndom == 4 ? 2 : ndom == 2 ? 1 : 0;
  return domain_tiles_[logdom][static_cast<std::size_t>(domain)];
}

Coord Topology::imc_coord(int imc) const {
  CAPMEM_CHECK(imc >= 0 && imc < num_imcs_);
  return imc_pos_[static_cast<std::size_t>(imc)];
}

Coord Topology::edc_coord(int edc) const {
  CAPMEM_CHECK(edc >= 0 && edc < num_edcs_);
  return edc_pos_[static_cast<std::size_t>(edc)];
}

int Topology::closest_imc(int quadrant) const {
  // Left-side quadrants (0,1) use IMC 0, right-side (2,3) use IMC 1
  // (quadrant id is right*2+bottom).
  return (quadrant >= 2 && num_imcs_ > 1) ? 1 : 0;
}

const std::vector<int>& Topology::edcs_of_domain(ClusterMode mode,
                                                 int domain) const {
  const int ndom = domains(mode);
  CAPMEM_CHECK(domain >= 0 && domain < ndom);
  const int logdom = ndom == 4 ? 2 : ndom == 2 ? 1 : 0;
  return domain_edcs_[logdom][static_cast<std::size_t>(domain)];
}

}  // namespace capmem::sim
