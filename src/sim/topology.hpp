// Mesh topology: tile placement, disabled tiles, cluster-domain assignment,
// and ring routing distances (paper §II.B).
//
// The mesh is a grid of slots. Some slots hold tiles; the remaining slots
// model the IMC/EDC/IO stops. Because of yield, some physical tiles are
// disabled (paper: at least two) — the preset machine disables
// `physical_tiles - active_tiles` of them deterministically. As on real KNL,
// the *position* of a given active tile is not exposed to software: the
// benchmark layer only sees logical tile ids and the SNC/quadrant domain id.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "sim/config.hpp"

namespace capmem::sim {

/// Grid coordinate of a mesh stop.
struct Coord {
  int row = 0;
  int col = 0;
  bool operator==(const Coord&) const = default;
};

class Topology {
 public:
  explicit Topology(const MachineConfig& cfg);

  int active_tiles() const { return static_cast<int>(tile_pos_.size()); }
  int cores() const { return active_tiles() * cores_per_tile_; }

  /// Physical grid position of logical (active) tile `t`.
  Coord tile_coord(int t) const {
    CAPMEM_DCHECK(t >= 0 && t < active_tiles());
    return tile_pos_[static_cast<std::size_t>(t)];
  }

  /// Logical tile of core `c` and cores of tile `t`.
  int tile_of_core(int core) const { return core / cores_per_tile_; }
  int first_core_of_tile(int tile) const { return tile * cores_per_tile_; }

  /// Mesh hop count between two stops. Packets route Y first, then X; the
  /// half-rings re-inject at die edges, so distance is Manhattan.
  int hops(Coord a, Coord b) const {
    const int dr = a.row - b.row;
    const int dc = a.col - b.col;
    return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
  }
  int tile_hops(int ta, int tb) const {
    return hops(tile_coord(ta), tile_coord(tb));
  }

  /// Cluster domain of a tile under `mode`: quadrant id (0..3) for
  /// SNC4/Quadrant, hemisphere id (0..1) for SNC2/Hemisphere, 0 for A2A.
  int domain_of_tile(int tile, ClusterMode mode) const;
  /// Number of domains for `mode` (4, 2, or 1).
  static int domains(ClusterMode mode);

  /// Active tiles belonging to `domain` under `mode`.
  const std::vector<int>& tiles_in_domain(ClusterMode mode, int domain) const;

  /// Mesh stop of DDR controller `imc` (0..1) / MCDRAM EDC `edc` (0..7,
  /// modulo the configured controller count).
  Coord imc_coord(int imc) const;
  Coord edc_coord(int edc) const;

  /// DDR controller / EDC serving a given quadrant (for SNC interleaving:
  /// "the DDR range assigned to a quadrant is interleaved among the three
  /// channels of the closest DDR memory controller", paper §II.D).
  int closest_imc(int quadrant) const;
  const std::vector<int>& edcs_of_domain(ClusterMode mode,
                                         int domain) const;

  /// Quadrant (always 4-way) of a tile, independent of cluster mode — used
  /// by the memory map for quadrant/SNC4 affinity.
  int quadrant_of_tile(int tile) const {
    return domain_of_tile(tile, ClusterMode::kSNC4);
  }

 private:
  int grid_domain(Coord c, int ndom) const;

  int rows_;
  int cols_;
  int cores_per_tile_;
  int num_edcs_;
  int num_imcs_;
  std::vector<Coord> tile_pos_;           // active tile -> coord
  std::vector<Coord> imc_pos_;
  std::vector<Coord> edc_pos_;
  // domain -> tiles, for ndom in {1,2,4} indexed by log2(ndom)
  std::vector<std::vector<int>> domain_tiles_[3];
  std::vector<std::vector<int>> domain_edcs_[3];
};

}  // namespace capmem::sim
