#include "sort/bitonic_net.hpp"

#include <algorithm>
#include <utility>

namespace capmem::sort {

namespace {
// One compare-exchange on lanes i and j (ascending).
inline void cmpx(Vec16& v, int i, int j) {
  if (v[static_cast<std::size_t>(i)] > v[static_cast<std::size_t>(j)]) {
    std::swap(v[static_cast<std::size_t>(i)],
              v[static_cast<std::size_t>(j)]);
  }
}
}  // namespace

void sort16(Vec16& v) {
  // Batcher's bitonic sorting network for 16 elements: stages k = 2..16,
  // sub-stages j = k/2..1; lane pairs (i, i^j) compared in the direction
  // given by bit k of i.
  for (int k = 2; k <= 16; k <<= 1) {
    for (int j = k >> 1; j > 0; j >>= 1) {
      for (int i = 0; i < 16; ++i) {
        const int l = i ^ j;
        if (l > i) {
          const bool ascending = (i & k) == 0;
          if (ascending) {
            cmpx(v, i, l);
          } else {
            cmpx(v, l, i);
          }
        }
      }
    }
  }
}

void merge16(Vec16& lo, Vec16& hi) {
  // Classic vectorized merge: reverse the second sorted sequence to form a
  // bitonic sequence of 32, then run log2(32) = 5 butterfly stages.
  std::reverse(hi.begin(), hi.end());
  // Stage 1: element-wise min/max across the two vectors.
  for (int i = 0; i < 16; ++i) {
    if (lo[static_cast<std::size_t>(i)] > hi[static_cast<std::size_t>(i)]) {
      std::swap(lo[static_cast<std::size_t>(i)],
                hi[static_cast<std::size_t>(i)]);
    }
  }
  // Stages 2-5 inside each vector (bitonic cleaner of width 16).
  auto clean = [](Vec16& v) {
    for (int j = 8; j > 0; j >>= 1) {
      for (int i = 0; i < 16; ++i) {
        const int l = i ^ j;
        if (l > i) cmpx(v, i, l);
      }
    }
  };
  clean(lo);
  clean(hi);
}

}  // namespace capmem::sort
