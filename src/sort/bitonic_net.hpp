// Width-16 bitonic networks on int32 (paper §V.B: "we implement the merge
// with a bitonic network of width 16 (for integers) to take advantage of
// vector instructions — hence, we always fetch full lines").
//
// The networks really sort/merge host data; alongside the result they
// report the AVX-512-style vector-operation count, which the simulator
// charges as compute time (one 16-lane min/max or shuffle per operation).
#pragma once

#include <array>
#include <cstdint>

namespace capmem::sort {

/// 16 int32 values = one 64-byte cache line.
using Vec16 = std::array<std::int32_t, 16>;

/// Vector ops consumed by one sort16 (Batcher bitonic sorting network:
/// 10 compare-exchange stages, each a min+max+two-shuffle group).
inline constexpr int kSort16VectorOps = 40;
/// Vector ops of one merge16 step (5 compare-exchange stages).
inline constexpr int kMerge16VectorOps = 20;

/// Nanoseconds per vector operation on the modeled core (1.3 GHz, 2 VPUs).
inline constexpr double kNsPerVectorOp = 0.385;

/// Sorts 16 values in-place with the bitonic sorting network.
void sort16(Vec16& v);

/// Bitonic merge of two *sorted* vectors: afterwards `lo` holds the 16
/// smallest of the 32 inputs (sorted) and `hi` the 16 largest (sorted).
void merge16(Vec16& lo, Vec16& hi);

/// Compute cost (ns) helpers used by both the simulator charge and the
/// analytic sort model.
inline double sort16_ns() { return kSort16VectorOps * kNsPerVectorOp; }
inline double merge16_ns() { return kMerge16VectorOps * kNsPerVectorOp; }

}  // namespace capmem::sort
