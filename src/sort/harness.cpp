#include "sort/harness.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "exec/experiment.hpp"
#include "sort/bitonic_net.hpp"

namespace capmem::sort {

model::SortModel make_sort_model(const sim::MachineConfig& cfg,
                                 const model::CapabilityModel& caps,
                                 sim::MemKind kind,
                                 const std::vector<int>& fit_threads,
                                 const SortOptions& opts, int jobs) {
  model::SortArch arch;
  arch.l1_bytes = cfg.l1_bytes;
  arch.l2_bytes = cfg.l2_bytes;
  arch.threads_per_tile = cfg.cores_per_tile;
  arch.bitonic_ns_per_line = merge16_ns();
  model::SortModel sm(caps, arch);

  // Each fit sort is an isolated simulation; the input data depends only on
  // opts.seed, so fanning them out over host threads changes nothing.
  const std::vector<SortRun> runs = exec::parallel_map<SortRun>(
      static_cast<int>(fit_threads.size()), jobs, [&](int i) {
        SortOptions o = opts;
        return parallel_merge_sort(cfg, KiB(1),
                                   fit_threads[static_cast<std::size_t>(i)],
                                   o);
      });
  std::vector<double> measured;
  for (const SortRun& run : runs) {
    CAPMEM_CHECK_MSG(run.sorted_ok && run.checksum_ok,
                     "1 KB fit sort failed verification");
    measured.push_back(run.total_ns);
  }
  sm.fit_overhead(fit_threads, measured, kind);
  CAPMEM_LOG_INFO << "sort overhead model: " << sm.overhead().alpha << " + "
                  << sm.overhead().beta << "*threads (r2="
                  << sm.overhead().r2 << ")";
  return sm;
}

SortCurves sort_sweep(const sim::MachineConfig& cfg,
                      const model::SortModel& model, std::uint64_t bytes,
                      const std::vector<int>& threads,
                      const SortOptions& opts, int jobs) {
  SortCurves out;
  out.bytes = bytes;
  const std::vector<SortRun> runs = exec::parallel_map<SortRun>(
      static_cast<int>(threads.size()), jobs, [&](int i) {
        const int n = threads[static_cast<std::size_t>(i)];
        CAPMEM_LOG_INFO << "sort sweep: " << bytes << " B, " << n
                        << " threads";
        return parallel_merge_sort(cfg, bytes, n, opts);
      });
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const int n = threads[i];
    const SortRun& run = runs[i];
    if (!run.sorted_ok || !run.checksum_ok) out.all_correct = false;
    out.threads.push_back(n);
    out.measured_ns.push_back(run.total_ns);
    out.mem_model_lat_ns.push_back(
        model.predict(bytes, n, opts.kind, /*use_bandwidth=*/false));
    out.mem_model_bw_ns.push_back(
        model.predict(bytes, n, opts.kind, /*use_bandwidth=*/true));
    out.full_model_lat_ns.push_back(
        model.predict_full(bytes, n, opts.kind, false));
    out.full_model_bw_ns.push_back(
        model.predict_full(bytes, n, opts.kind, true));
    if (out.cutoff_threads < 0 &&
        model.overhead_fraction(bytes, n, opts.kind) > 0.10) {
      out.cutoff_threads = n;
    }
  }
  return out;
}

}  // namespace capmem::sort
