#include "sort/harness.hpp"

#include "common/check.hpp"
#include "sort/bitonic_net.hpp"
#include "common/log.hpp"

namespace capmem::sort {

model::SortModel make_sort_model(const sim::MachineConfig& cfg,
                                 const model::CapabilityModel& caps,
                                 sim::MemKind kind,
                                 const std::vector<int>& fit_threads,
                                 const SortOptions& opts) {
  model::SortArch arch;
  arch.l1_bytes = cfg.l1_bytes;
  arch.l2_bytes = cfg.l2_bytes;
  arch.threads_per_tile = cfg.cores_per_tile;
  arch.bitonic_ns_per_line = merge16_ns();
  model::SortModel sm(caps, arch);

  std::vector<double> measured;
  for (int n : fit_threads) {
    SortOptions o = opts;
    const SortRun run = parallel_merge_sort(cfg, KiB(1), n, o);
    CAPMEM_CHECK_MSG(run.sorted_ok && run.checksum_ok,
                     "1 KB fit sort failed verification");
    measured.push_back(run.total_ns);
  }
  sm.fit_overhead(fit_threads, measured, kind);
  CAPMEM_LOG_INFO << "sort overhead model: " << sm.overhead().alpha << " + "
                  << sm.overhead().beta << "*threads (r2="
                  << sm.overhead().r2 << ")";
  return sm;
}

SortCurves sort_sweep(const sim::MachineConfig& cfg,
                      const model::SortModel& model, std::uint64_t bytes,
                      const std::vector<int>& threads,
                      const SortOptions& opts) {
  SortCurves out;
  out.bytes = bytes;
  for (int n : threads) {
    CAPMEM_LOG_INFO << "sort sweep: " << bytes << " B, " << n << " threads";
    const SortRun run = parallel_merge_sort(cfg, bytes, n, opts);
    if (!run.sorted_ok || !run.checksum_ok) out.all_correct = false;
    out.threads.push_back(n);
    out.measured_ns.push_back(run.total_ns);
    out.mem_model_lat_ns.push_back(
        model.predict(bytes, n, opts.kind, /*use_bandwidth=*/false));
    out.mem_model_bw_ns.push_back(
        model.predict(bytes, n, opts.kind, /*use_bandwidth=*/true));
    out.full_model_lat_ns.push_back(
        model.predict_full(bytes, n, opts.kind, false));
    out.full_model_bw_ns.push_back(
        model.predict_full(bytes, n, opts.kind, true));
    if (out.cutoff_threads < 0 &&
        model.overhead_fraction(bytes, n, opts.kind) > 0.10) {
      out.cutoff_threads = n;
    }
  }
  return out;
}

}  // namespace capmem::sort
