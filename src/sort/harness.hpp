// Sort experiment harness (paper Fig. 10): measured sort times next to the
// four model curves (memory model with latency / bandwidth cost, and the
// corresponding full models with the fitted overhead), plus the >10%
// overhead cutoff that marks where the implementation stops being
// memory-bound.
#pragma once

#include <vector>

#include "model/sort_model.hpp"
#include "sort/parallel_sort.hpp"

namespace capmem::sort {

/// Builds the sort model for `cfg` and fits its overhead term from
/// measured 1 KB sorts over `fit_threads` (paper §V.B.2). The fit sorts
/// are independent simulations and run on `jobs` host threads (exec
/// layer); results are bit-identical for any jobs value.
model::SortModel make_sort_model(const sim::MachineConfig& cfg,
                                 const model::CapabilityModel& caps,
                                 sim::MemKind kind,
                                 const std::vector<int>& fit_threads,
                                 const SortOptions& opts = {}, int jobs = 1);

struct SortCurves {
  std::uint64_t bytes = 0;
  std::vector<int> threads;
  std::vector<double> measured_ns;
  std::vector<double> mem_model_lat_ns;
  std::vector<double> mem_model_bw_ns;
  std::vector<double> full_model_lat_ns;
  std::vector<double> full_model_bw_ns;
  /// First thread count whose overhead exceeds 10% of the memory model
  /// (-1: never) — the paper's vertical marker.
  int cutoff_threads = -1;
  bool all_correct = true;
};

/// Measured-vs-model sweep for one input size. The measured sorts run on
/// `jobs` host threads (exec layer); model curves are pure functions.
SortCurves sort_sweep(const sim::MachineConfig& cfg,
                      const model::SortModel& model, std::uint64_t bytes,
                      const std::vector<int>& threads,
                      const SortOptions& opts = {}, int jobs = 1);

}  // namespace capmem::sort
