#include "sort/merge.hpp"

#include <cstring>

#include "common/check.hpp"

namespace capmem::sort {

using sim::AccessOpts;
using sim::AccessType;
using sim::Addr;
using sim::Task;

namespace {
// Lines processed per engine step: small enough that concurrent merging
// threads interleave their channel reservations in virtual-time order.
constexpr int kChunk = 4;

AccessOpts read_opts() {
  AccessOpts o;
  o.streaming = true;
  o.copy_pair = true;  // merge streams feed a paired store
  return o;
}
AccessOpts write_opts(bool nt) {
  AccessOpts o;
  o.streaming = true;
  o.nt = nt;
  return o;
}
}  // namespace

void MergeOp::load_line(Addr a, Vec16& v) const {
  std::memcpy(v.data(), ctx->machine().space().data(a, kLineBytes),
              kLineBytes);
}

void MergeOp::store_line(Addr a, const Vec16& v) const {
  std::memcpy(ctx->machine().space().data(a, kLineBytes), v.data(),
              kLineBytes);
}

void MergeOp::step(Task::Handle h) {
  auto& p = h.promise();
  auto& mem = ctx->machine().memsys();
  auto& machine = ctx->machine();
  const int tid = ctx->tid();
  const int core = ctx->core();
  const AccessOpts ro = read_opts();
  const AccessOpts wo = write_opts(nt);

  auto timed_read = [&](Addr a) {
    p.clock = mem.access(tid, core, sim::line_of(a),
                         machine.allocation_of(a).place, AccessType::kRead,
                         ro, p.clock)
                  .finish;
  };
  auto timed_write = [&](Addr a) {
    p.clock = mem.access(tid, core, sim::line_of(a),
                         machine.allocation_of(a).place, AccessType::kWrite,
                         wo, p.clock)
                  .finish;
    machine.engine().notify(sim::line_of(a), p.clock);
  };
  auto head_of = [&](Addr base, std::uint64_t idx) {
    return *reinterpret_cast<const std::int32_t*>(
        machine.space().data(base + idx * kLineBytes, 4));
  };

  for (int budget = 0; budget < kChunk; ++budget) {
    if (!primed_) {
      Vec16 a, b;
      timed_read(in1);
      load_line(in1, a);
      timed_read(in2);
      load_line(in2, b);
      i1_ = 1;
      i2_ = 1;
      merge16(a, b);
      p.clock += merge16_ns();
      store_line(out, a);
      timed_write(out);
      iout_ = 1;
      cur_ = b;
      primed_ = true;
      continue;
    }
    if (i1_ >= n1 && i2_ >= n2) {
      // Drain: the pending high vector is the final output line.
      store_line(out + iout_ * kLineBytes, cur_);
      timed_write(out + iout_ * kLineBytes);
      ++iout_;
      CAPMEM_DCHECK(iout_ == n1 + n2);
      p.engine->requeue(h);
      return;
    }
    // Pull from the run whose next head is smaller (merge-path rule).
    Vec16 next;
    if (i1_ < n1 &&
        (i2_ >= n2 || head_of(in1, i1_) <= head_of(in2, i2_))) {
      timed_read(in1 + i1_ * kLineBytes);
      load_line(in1 + i1_ * kLineBytes, next);
      ++i1_;
    } else {
      timed_read(in2 + i2_ * kLineBytes);
      load_line(in2 + i2_ * kLineBytes, next);
      ++i2_;
    }
    merge16(cur_, next);
    p.clock += merge16_ns();
    store_line(out + iout_ * kLineBytes, cur_);
    timed_write(out + iout_ * kLineBytes);
    ++iout_;
    cur_ = next;
  }
  MergeOp* self = this;
  p.engine->schedule(p.clock, [self, h] { self->step(h); });
}

void MergeOp::await_suspend(Task::Handle h) {
  CAPMEM_CHECK(n1 >= 1 && n2 >= 1);
  step(h);
}

void SortLinesOp::step(Task::Handle h) {
  auto& p = h.promise();
  auto& mem = ctx->machine().memsys();
  auto& machine = ctx->machine();
  const AccessOpts ro = read_opts();
  AccessOpts wo;
  wo.streaming = true;

  for (int budget = 0; budget < kChunk * 2; ++budget) {
    if (done_ >= lines) {
      p.engine->requeue(h);
      return;
    }
    const Addr a = buf + done_ * kLineBytes;
    p.clock = mem.access(ctx->tid(), ctx->core(), sim::line_of(a),
                         machine.allocation_of(a).place, AccessType::kRead,
                         ro, p.clock)
                  .finish;
    Vec16 v;
    std::memcpy(v.data(), machine.space().data(a, kLineBytes), kLineBytes);
    sort16(v);
    p.clock += sort16_ns();
    std::memcpy(machine.space().data(a, kLineBytes), v.data(), kLineBytes);
    p.clock = mem.access(ctx->tid(), ctx->core(), sim::line_of(a),
                         machine.allocation_of(a).place, AccessType::kWrite,
                         wo, p.clock)
                  .finish;
    machine.engine().notify(sim::line_of(a), p.clock);
    ++done_;
  }
  SortLinesOp* self = this;
  p.engine->schedule(p.clock, [self, h] { self->step(h); });
}

void SortLinesOp::await_suspend(Task::Handle h) { step(h); }

}  // namespace capmem::sort
