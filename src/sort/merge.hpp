// Timed merge of sorted int32 runs on the simulated machine (paper §V.B.1:
// each merge reads two lists of n/2 lines and writes n lines; after the
// first fetched pair, every step reads one line, runs the bitonic network,
// and writes one line).
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "sort/bitonic_net.hpp"

namespace capmem::sort {

/// Merges the sorted runs [in1, in1_lines) and [in2, in2_lines) into `out`
/// (disjoint from the inputs). All sizes in cache lines (16 int32 each).
/// Charges one streaming read per input line, one streaming write per
/// output line, and the bitonic-network compute. Must be co_awaited from a
/// simulated thread... implemented as a Task-composable step sequence via
/// the owning coroutine: call as
///   co_await merge_runs(ctx, out, in1, n1, in2, n2, opts);
struct MergeOp {
  MergeOp(sim::Ctx* c, sim::Addr o, sim::Addr a, std::uint64_t na,
          sim::Addr b, std::uint64_t nb, bool non_temporal)
      : ctx(c), out(o), in1(a), n1(na), in2(b), n2(nb), nt(non_temporal) {}

  sim::Ctx* ctx;
  sim::Addr out;
  sim::Addr in1;
  std::uint64_t n1;
  sim::Addr in2;
  std::uint64_t n2;
  bool nt = false;

  // Awaiter state machine: the whole merge runs inside engine callbacks,
  // the owning task stays suspended (same pattern as RangeOp).
  bool await_ready() const noexcept { return false; }
  void await_suspend(sim::Task::Handle h);
  void await_resume() const noexcept {}

 private:
  void step(sim::Task::Handle h);
  void load_line(sim::Addr a, Vec16& v) const;
  void store_line(sim::Addr a, const Vec16& v) const;

  std::uint64_t i1_ = 0, i2_ = 0, iout_ = 0;
  Vec16 cur_{};
  bool primed_ = false;
};

inline MergeOp merge_runs(sim::Ctx& ctx, sim::Addr out, sim::Addr in1,
                          std::uint64_t n1, sim::Addr in2, std::uint64_t n2,
                          bool nt = false) {
  return MergeOp{&ctx, out, in1, n1, in2, n2, nt};
}

/// Sorts each 16-element line of [buf, lines) independently with the
/// bitonic sorting network (the sort's leaf stage).
struct SortLinesOp {
  SortLinesOp(sim::Ctx* c, sim::Addr b, std::uint64_t n)
      : ctx(c), buf(b), lines(n) {}

  sim::Ctx* ctx;
  sim::Addr buf;
  std::uint64_t lines;

  bool await_ready() const noexcept { return lines == 0; }
  void await_suspend(sim::Task::Handle h);
  void await_resume() const noexcept {}

 private:
  void step(sim::Task::Handle h);
  std::uint64_t done_ = 0;
};

inline SortLinesOp sort_lines(sim::Ctx& ctx, sim::Addr buf,
                              std::uint64_t lines) {
  return SortLinesOp{&ctx, buf, lines};
}

}  // namespace capmem::sort
