#include "sort/parallel_sort.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sim/machine.hpp"
#include "sort/merge.hpp"

namespace capmem::sort {

using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::MemoryMode;
using sim::Task;

namespace {
bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

SortRun parallel_merge_sort(const sim::MachineConfig& cfg,
                            std::uint64_t bytes, int nthreads,
                            const SortOptions& opts) {
  CAPMEM_CHECK_MSG(is_pow2(bytes) && bytes >= kLineBytes,
                   "bytes must be a power of two >= 64");
  CAPMEM_CHECK_MSG(is_pow2(static_cast<std::uint64_t>(nthreads)),
                   "nthreads must be a power of two");
  // Small inputs cannot feed every thread (one line minimum per worker);
  // the surplus threads still participate — they spin on a completion flag
  // like idle workers of a real runtime would, which is exactly the
  // thread-management overhead the paper's overhead model captures.
  const int workers = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(nthreads), bytes / kLineBytes));

  Machine m(cfg);
  const bool cache_mode = cfg.memory == MemoryMode::kCache;
  const sim::Placement place{cache_mode ? sim::MemKind::kDDR : opts.kind,
                             std::nullopt};
  const Addr buf_a = m.alloc("sort_a", bytes, place, /*with_data=*/true);
  const Addr buf_b = m.alloc("sort_b", bytes, place, /*with_data=*/true);
  // Ready flags: flags[rank * stages + stage] (one writer each).
  const int stages = [&] {
    int s = 0;
    while ((1 << s) < workers) ++s;
    return s;
  }();
  const Addr flags = m.alloc(
      "sort_flags",
      static_cast<std::uint64_t>(workers) *
          static_cast<std::uint64_t>(std::max(1, stages)) * kLineBytes,
      place, /*with_data=*/true);
  const Addr done_flag =
      m.alloc("sort_done", kLineBytes, place, /*with_data=*/true);
  auto flag_addr = [&](int rank, int stage) {
    return flags + (static_cast<std::uint64_t>(rank) *
                        static_cast<std::uint64_t>(std::max(1, stages)) +
                    static_cast<std::uint64_t>(stage)) *
                       kLineBytes;
  };

  // Fill with deterministic pseudo-random keys (host side: the paper's
  // harness also generates input outside the timed region).
  {
    Rng rng(opts.seed);
    auto* data = reinterpret_cast<std::int32_t*>(
        m.space().data(buf_a, bytes));
    for (std::uint64_t i = 0; i < bytes / 4; ++i) {
      data[i] = static_cast<std::int32_t>(rng.next_u64());
    }
  }
  std::uint64_t expected_sum = 0;
  {
    const auto* data = reinterpret_cast<const std::int32_t*>(
        m.space().data(buf_a, bytes));
    for (std::uint64_t i = 0; i < bytes / 4; ++i) {
      expected_sum += static_cast<std::uint32_t>(data[i]);
    }
  }

  const std::uint64_t total_lines = bytes / kLineBytes;
  const std::uint64_t chunk_lines =
      total_lines / static_cast<std::uint64_t>(workers);
  // Within-chunk merge levels; parity decides which buffer holds the data
  // after the local phase.
  int local_levels = 0;
  while ((1ull << local_levels) < chunk_lines) ++local_levels;

  const auto slots = sim::make_schedule(cfg, opts.sched, nthreads);
  double makespan = 0;

  for (int rank = workers; rank < nthreads; ++rank) {
    // Surplus threads: wait for completion (idle-worker overhead).
    m.add_thread(slots[static_cast<std::size_t>(rank)],
                 [&](Ctx& ctx) -> Task {
                   co_await ctx.wait_eq(done_flag, 1);
                   makespan = std::max(makespan, ctx.now());
                 });
  }
  for (int rank = 0; rank < workers; ++rank) {
    m.add_thread(slots[static_cast<std::size_t>(rank)],
                 [&, rank](Ctx& ctx) -> Task {
      const std::uint64_t off = static_cast<std::uint64_t>(rank) *
                                chunk_lines * kLineBytes;
      // Leaf pass: sort each line in place.
      co_await sort_lines(ctx, buf_a + off, chunk_lines);
      // Local merge levels with ping-pong buffers.
      Addr src = buf_a;
      Addr dst = buf_b;
      for (int lvl = 0; lvl < local_levels; ++lvl) {
        const std::uint64_t run = 1ull << lvl;  // lines per sorted run
        for (std::uint64_t r = 0; r < chunk_lines; r += 2 * run) {
          const std::uint64_t base = off + r * kLineBytes;
          co_await merge_runs(ctx, dst + base, src + base, run,
                              src + base + run * kLineBytes, run,
                              opts.nt_writes);
        }
        std::swap(src, dst);
      }
      // Cross-thread binary merge tree: at stage s, ranks divisible by
      // 2^(s+1) merge their run with the run of rank + 2^s.
      std::uint64_t run = chunk_lines;
      for (int s = 0; s < stages; ++s) {
        const int partner_bit = 1 << s;
        if (rank & partner_bit) {
          // Publish "my run is ready at stage s" and retire.
          co_await ctx.write_u64(flag_addr(rank, s), 1);
          break;
        }
        if (rank + partner_bit < workers) {
          co_await ctx.wait_eq(flag_addr(rank + partner_bit, s), 1);
          // The partner's run lies directly after mine (rank + 2^s starts
          // at off + run lines once run = chunk * 2^s).
          co_await merge_runs(ctx, dst + off, src + off, run,
                              src + off + run * kLineBytes, run,
                              opts.nt_writes);
          run *= 2;
          std::swap(src, dst);
        }
      }
      if (rank == 0) co_await ctx.write_u64(done_flag, 1);
      makespan = std::max(makespan, ctx.now());
    });
  }
  m.run();

  SortRun result;
  result.total_ns = makespan;
  for (int t = 0; t < nthreads; ++t) {
    result.counters.push_back(m.memsys().counters(t));
  }

  if (opts.verify) {
    // The sorted data lives in buf_a or buf_b depending on the total level
    // parity (local levels + stages swaps).
    const int swaps = local_levels + stages;
    const Addr final_buf = (swaps % 2 == 0) ? buf_a : buf_b;
    const auto* data = reinterpret_cast<const std::int32_t*>(
        m.space().data(final_buf, bytes));
    std::uint64_t sum = 0;
    bool sorted = true;
    for (std::uint64_t i = 0; i < bytes / 4; ++i) {
      sum += static_cast<std::uint32_t>(data[i]);
      if (i > 0 && data[i] < data[i - 1]) sorted = false;
    }
    result.sorted_ok = sorted;
    result.checksum_ok = sum == expected_sum;
  }
  return result;
}

}  // namespace capmem::sort
