// Parallel integer merge sort with bitonic-network merging and ping-pong
// buffers (paper §V.B): every thread sorts its chunk locally (leaf sort16
// pass + within-chunk merge levels), then threads pair up in a binary
// merge tree where the worker count halves per stage — the access pattern
// whose bandwidth needs the sort model explains.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/memsys.hpp"
#include "sim/thread.hpp"

namespace capmem::sort {

struct SortOptions {
  sim::MemKind kind = sim::MemKind::kDDR;  ///< buffer placement (flat mode)
  sim::Schedule sched = sim::Schedule::kFillTiles;
  bool nt_writes = false;
  std::uint64_t seed = 99;
  bool verify = true;  ///< host-side sorted/permutation check after the run
};

struct SortRun {
  double total_ns = 0;   ///< makespan (max thread finish time)
  bool sorted_ok = true; ///< verification result
  std::uint64_t checksum_ok = true;
  /// Per-thread event counters, for resource-efficiency assessment
  /// (model::assess).
  std::vector<sim::ThreadCounters> counters;
};

/// Sorts `bytes` of random int32 keys with `nthreads` on a fresh machine.
/// `bytes` and `nthreads` must be powers of two with bytes/nthreads >= 64.
SortRun parallel_merge_sort(const sim::MachineConfig& cfg,
                            std::uint64_t bytes, int nthreads,
                            const SortOptions& opts = {});

}  // namespace capmem::sort
