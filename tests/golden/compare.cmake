# Golden-output regression check: runs BENCH with ARGS and byte-compares
# its stdout against EXPECTED. Invoked by ctest (see tests/CMakeLists.txt):
#
#   cmake -DBENCH=<exe> -DARGS="--iters;5" -DEXPECTED=<file> -P compare.cmake
#
# The simulator is deterministic for a fixed seed at any --jobs, so the
# checked-in files only change when simulated timing or table formatting
# changes — both of which deserve a deliberate refresh:
#
#   <exe> <args> > tests/golden/<name>.txt
if(NOT DEFINED BENCH OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "compare.cmake needs -DBENCH=... and -DEXPECTED=...")
endif()
separate_arguments(ARG_LIST UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${BENCH} ${ARG_LIST}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE bench_err
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH} exited with ${rc}:\n${bench_err}")
endif()
file(READ "${EXPECTED}" expected)
if(NOT actual STREQUAL expected)
  file(WRITE "${EXPECTED}.actual" "${actual}")
  message(FATAL_ERROR
    "stdout diverged from ${EXPECTED}\n"
    "actual output written to ${EXPECTED}.actual\n"
    "if the change is intentional, refresh the golden file:\n"
    "  ${BENCH} ${ARGS} > ${EXPECTED}")
endif()
