// Conservation/accounting invariants of the memory system: every line op is
// classified exactly once, channel busy time equals traffic served, and
// aggregate bandwidth never exceeds physical channel capacity.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace capmem::sim {
namespace {

MachineConfig quiet() {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  return cfg;
}

// Sum of the per-level classification counters for thread `tid`.
std::uint64_t classified_ops(const ThreadCounters& c) {
  return c.l1_hits + c.l2_tile_hits + c.remote_hits + c.dram_lines +
         c.mcdram_lines + c.mc_cache_hits + c.mc_cache_misses;
}

TEST(Accounting, EveryReadClassifiedExactlyOnce) {
  Machine m(quiet());
  const Addr buf = m.alloc("b", KiB(256), {}, false);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_buf(buf, KiB(256));   // cold: memory
    co_await ctx.read_buf(buf, KiB(256));   // warm: L1/L2 mix
  });
  m.run();
  const ThreadCounters& c = m.memsys().counters(0);
  EXPECT_EQ(c.line_ops, 2 * KiB(256) / kLineBytes);
  EXPECT_EQ(classified_ops(c), c.line_ops);
}

TEST(Accounting, CacheModeOpsClassifiedOnce) {
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kCache);
  cfg.scale_memory(256);
  cfg.noise.enabled = false;
  Machine m(cfg);
  const Addr buf = m.alloc("b", KiB(64), {}, false);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_buf(buf, KiB(64));
    ctx.machine().flush_buffer(buf, KiB(64), /*drop_mcdram_cache=*/false);
    co_await ctx.read_buf(buf, KiB(64));  // memory-side cache hits
  });
  m.run();
  const ThreadCounters& c = m.memsys().counters(0);
  EXPECT_EQ(classified_ops(c), c.line_ops);
  EXPECT_GT(c.mc_cache_hits, 0u);
}

TEST(Accounting, MixedWorkloadPartitionsEveryOp) {
  // Multi-threaded mix of local hits, cross-tile transfers, cold DRAM and
  // cold MCDRAM traffic: for every thread the per-level classification
  // counters must partition line_ops exactly — no op dropped, none counted
  // at two levels.
  Machine m(quiet());
  const Addr shared = m.alloc("shared", KiB(4), {}, true);
  const Addr dram =
      m.alloc("dram", KiB(64), {MemKind::kDDR, std::nullopt}, false);
  const Addr mcd =
      m.alloc("mcd", KiB(64), {MemKind::kMCDRAM, std::nullopt}, false);
  const int nthreads = 4;
  for (int t = 0; t < nthreads; ++t) {
    m.add_thread({t * 4, 0}, [&, t](Ctx& ctx) -> Task {
      co_await ctx.write_buf(shared, KiB(4));       // RFO + invalidations
      co_await ctx.read_buf(shared, KiB(4));        // local / remote hits
      const std::uint64_t slice = KiB(64) / nthreads;
      const Addr d = dram + static_cast<std::uint64_t>(t) * slice;
      const Addr h = mcd + static_cast<std::uint64_t>(t) * slice;
      co_await ctx.read_buf(d, slice);              // cold DRAM
      co_await ctx.read_buf(h, slice);              // cold MCDRAM
      co_await ctx.read_buf(d, slice);              // warm re-read
      co_await ctx.sync();
    });
  }
  m.run();
  std::uint64_t total_ops = 0;
  for (int t = 0; t < nthreads; ++t) {
    const ThreadCounters& c = m.memsys().counters(t);
    EXPECT_EQ(classified_ops(c), c.line_ops) << "tid " << t;
    total_ops += c.line_ops;
  }
  // The mix actually exercised all four classes somewhere.
  std::uint64_t l1 = 0, remote = 0, dram_lines = 0, mcd_lines = 0;
  for (int t = 0; t < nthreads; ++t) {
    const ThreadCounters& c = m.memsys().counters(t);
    l1 += c.l1_hits;
    remote += c.remote_hits;
    dram_lines += c.dram_lines;
    mcd_lines += c.mcdram_lines;
  }
  EXPECT_GT(total_ops, 0u);
  EXPECT_GT(l1, 0u);
  EXPECT_GT(remote, 0u);
  EXPECT_GT(dram_lines, 0u);
  EXPECT_GT(mcd_lines, 0u);
}

TEST(Accounting, DramBusyMatchesTrafficServed) {
  // A pure cold read stream of N lines must book exactly N * 64B / rate of
  // channel busy time (no RFO, no write-backs).
  MachineConfig cfg = quiet();
  Machine m(cfg);
  const std::uint64_t bytes = MiB(1);
  const Addr buf = m.alloc("b", bytes, {}, false);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_buf(buf, bytes);
  });
  m.run();
  const double expected_busy =
      static_cast<double>(bytes) / cfg.bw.dram_channel_gbps;
  EXPECT_NEAR(m.memsys().dram_busy_ns(), expected_busy,
              expected_busy * 0.01);
}

TEST(Accounting, RfoWritesDoubleTheTraffic) {
  MachineConfig cfg = quiet();
  auto busy_for = [&](bool nt) {
    Machine m(cfg);
    const std::uint64_t bytes = KiB(256);
    const Addr buf = m.alloc("b", bytes, {}, false);
    m.add_thread({0, 0}, [&, nt](Ctx& ctx) -> Task {
      BufOpts o;
      o.nt = nt;
      co_await ctx.write_buf(buf, bytes, o);
    });
    m.run();
    return m.memsys().dram_busy_ns();
  };
  // Pure stores pay the write-turnaround either way; RFO adds the fill
  // read on top (3x total vs 2x for NT).
  EXPECT_NEAR(busy_for(false) / busy_for(true), 1.5, 0.05);
}

TEST(Accounting, AggregateBandwidthNeverExceedsChannelSum) {
  MachineConfig cfg = quiet();
  Machine m(cfg);
  const std::uint64_t bytes = MiB(1);
  const int n = 32;
  std::vector<Addr> bufs;
  for (int i = 0; i < n; ++i)
    bufs.push_back(m.alloc("b" + std::to_string(i), bytes, {}, false));
  Nanos end = 0;
  const auto slots = make_schedule(cfg, Schedule::kFillTiles, n);
  for (int i = 0; i < n; ++i) {
    m.add_thread(slots[static_cast<std::size_t>(i)],
                 [&, i](Ctx& ctx) -> Task {
                   co_await ctx.read_buf(bufs[static_cast<std::size_t>(i)],
                                         bytes);
                   end = std::max(end, ctx.now());
                 });
  }
  m.run();
  const double agg = bandwidth_gbps(bytes * n, end);
  const double cap = cfg.bw.dram_channel_gbps * cfg.dram_channels();
  EXPECT_LE(agg, cap * 1.001);
  EXPECT_GT(agg, cap * 0.85);  // and saturation actually uses the channels
}

TEST(Accounting, WritebacksCountedOnDowngrade) {
  Machine m(quiet());
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(buf, 1);  // M in tile 0
    co_await ctx.sync();
    co_await ctx.sync();
  });
  m.add_thread({10, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    co_await ctx.read_u64(buf);  // forces the downgrade write-back
    co_await ctx.sync();
  });
  m.run();
  EXPECT_EQ(m.memsys().counters(1).writebacks, 1u);
}

TEST(Accounting, InvalidationsCountedOnUpgrade) {
  Machine m(quiet());
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_u64(buf);
    co_await ctx.sync();
    co_await ctx.sync();
  });
  m.add_thread({10, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    co_await ctx.read_u64(buf);   // two sharers now
    co_await ctx.write_u64(buf, 1);  // invalidate the other tile
    co_await ctx.sync();
  });
  m.run();
  EXPECT_GE(m.memsys().counters(1).invalidations, 1u);
}

TEST(Accounting, VirtualTimeNeverDecreases) {
  // Interleaved mixed workload: each thread's clock is nondecreasing and
  // the engine's global time ends at the max thread clock.
  Machine m(quiet());
  const Addr shared = m.alloc("s", KiB(4), {}, true);
  Rng rng(9);
  std::vector<double> finals(8, 0);
  for (int t = 0; t < 8; ++t) {
    m.add_thread({t * 2, 0}, [&, t](Ctx& ctx) -> Task {
      Nanos prev = 0;
      Rng local(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 200; ++i) {
        const Addr a = shared + local.next_below(64) * kLineBytes;
        if (local.next_below(2) == 0) {
          co_await ctx.touch(a, AccessType::kRead);
        } else {
          co_await ctx.compute(local.uniform(1, 20));
        }
        EXPECT_GE(ctx.now(), prev);  // ASSERT cannot return from a coroutine
        prev = ctx.now();
      }
      finals[static_cast<std::size_t>(t)] = ctx.now();
    });
  }
  m.run();
  EXPECT_DOUBLE_EQ(m.elapsed(),
                   *std::max_element(finals.begin(), finals.end()));
}

}  // namespace
}  // namespace capmem::sim
