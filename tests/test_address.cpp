#include <gtest/gtest.h>

#include "sim/address.hpp"

namespace capmem::sim {
namespace {

TEST(AddressSpace, AllocRoundsToLines) {
  AddressSpace s;
  const Addr a = s.alloc("x", 100, {}, false);
  const Allocation& al = s.find(a);
  EXPECT_EQ(al.bytes, 128u);
  EXPECT_EQ(al.base % kLineBytes, 0u);
}

TEST(AddressSpace, FindByInteriorAddress) {
  AddressSpace s;
  const Addr a = s.alloc("x", KiB(1), {}, false);
  EXPECT_EQ(s.find(a + 500).base, a);
  EXPECT_TRUE(s.valid(a + 1023));
  EXPECT_FALSE(s.valid(a + KiB(1)));
}

TEST(AddressSpace, WildAddressThrows) {
  AddressSpace s;
  s.alloc("x", 64, {}, false);
  EXPECT_THROW(s.find(1), CheckError);
}

TEST(AddressSpace, GuardLineBetweenAllocations) {
  AddressSpace s;
  const Addr a = s.alloc("a", 64, {}, false);
  const Addr b = s.alloc("b", 64, {}, false);
  EXPECT_GE(b, a + 128);  // 64B payload + 64B guard
  EXPECT_FALSE(s.valid(a + 64));
}

TEST(AddressSpace, DataRoundTrip) {
  AddressSpace s;
  const Addr a = s.alloc("d", 256, {}, true);
  s.store<std::uint64_t>(a + 8, 0xdeadbeefull);
  EXPECT_EQ(s.load<std::uint64_t>(a + 8), 0xdeadbeefull);
  s.store<std::uint32_t>(a + 252, 7u);
  EXPECT_EQ(s.load<std::uint32_t>(a + 252), 7u);
}

TEST(AddressSpace, DatalessAccessThrows) {
  AddressSpace s;
  const Addr a = s.alloc("nd", 64, {}, false);
  EXPECT_THROW(s.load<std::uint64_t>(a), CheckError);
}

TEST(AddressSpace, CrossAllocationAccessThrows) {
  AddressSpace s;
  const Addr a = s.alloc("d", 64, {}, true);
  EXPECT_THROW(s.data(a + 60, 8), CheckError);
}

TEST(AddressSpace, ZeroSizeThrows) {
  AddressSpace s;
  EXPECT_THROW(s.alloc("z", 0, {}, false), CheckError);
}

TEST(AddressSpace, FreeRemoves) {
  AddressSpace s;
  const Addr a = s.alloc("x", 64, {}, false);
  s.free(a);
  EXPECT_FALSE(s.valid(a));
  EXPECT_THROW(s.free(a), CheckError);
}

TEST(AddressSpace, DataZeroInitialized) {
  AddressSpace s;
  const Addr a = s.alloc("d", 128, {}, true);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s.load<std::uint64_t>(a + i * 8), 0u);
}

TEST(AddressSpace, PlacementStored) {
  AddressSpace s;
  const Addr a =
      s.alloc("m", 64, {MemKind::kMCDRAM, std::optional<int>(2)}, false);
  EXPECT_EQ(s.find(a).place.kind, MemKind::kMCDRAM);
  EXPECT_EQ(s.find(a).place.domain, 2);
}

TEST(LineMath, LineOfAndBase) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_base(130), 128u);
  EXPECT_EQ(lines_for(1), 1u);
  EXPECT_EQ(lines_for(64), 1u);
  EXPECT_EQ(lines_for(65), 2u);
}

}  // namespace
}  // namespace capmem::sim
