#include <gtest/gtest.h>

#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/check.hpp"

namespace capmem {
namespace {

TEST(AsciiPlot, RendersSeriesAndLegend) {
  std::ostringstream os;
  PlotSeries s1{"dram", {1, 2, 4, 8}, {10, 20, 35, 38}};
  PlotSeries s2{"mcdram", {1, 2, 4, 8}, {9, 18, 36, 72}};
  PlotOptions opts;
  opts.title = "bw";
  opts.x_label = "threads";
  ascii_plot(os, {s1, s2}, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("bw"), std::string::npos);
  EXPECT_NE(out.find("a = dram"), std::string::npos);
  EXPECT_NE(out.find("b = mcdram"), std::string::npos);
  EXPECT_NE(out.find("threads"), std::string::npos);
  EXPECT_NE(out.find('a'), std::string::npos);
}

TEST(AsciiPlot, EmptyInputHandled) {
  std::ostringstream os;
  ascii_plot(os, {});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(AsciiPlot, LogScales) {
  std::ostringstream os;
  PlotSeries s{"x", {1, 10, 100, 1000}, {1, 2, 3, 4}};
  PlotOptions opts;
  opts.log_x = true;
  ascii_plot(os, {s}, opts);
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlot, LogOfNonPositiveThrows) {
  std::ostringstream os;
  PlotSeries s{"x", {0, 1}, {1, 2}};
  PlotOptions opts;
  opts.log_x = true;
  EXPECT_THROW(ascii_plot(os, {s}, opts), CheckError);
}

TEST(AsciiPlot, SinglePointDoesNotDivideByZero) {
  std::ostringstream os;
  PlotSeries s{"p", {5}, {7}};
  ascii_plot(os, {s});
  EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlot, MismatchedSeriesThrows) {
  std::ostringstream os;
  PlotSeries s{"bad", {1, 2}, {1}};
  EXPECT_THROW(ascii_plot(os, {s}), CheckError);
}

TEST(AsciiPlot, TinyDimensionsRejected) {
  std::ostringstream os;
  PlotSeries s{"p", {1, 2}, {1, 2}};
  PlotOptions opts;
  opts.width = 5;
  EXPECT_THROW(ascii_plot(os, {s}, opts), CheckError);
}

}  // namespace
}  // namespace capmem
