// Tests for the virtual-time attribution subsystem (obs::attr):
//
//  * Conservation: every simulated nanosecond a machine runs is charged to
//    exactly one category — sum of cells == sum of task lifetimes, in
//    integer picosecond ticks, across all 15 cluster x memory
//    configurations and all three coherence protocols, with nothing left
//    in the kUnattributed escape hatch.
//  * Invariance: attaching the ledger must not change simulation results
//    (same virtual times, same final memory) — the observer seam stays
//    pure.
//  * Critical path: a staged wait/sync workload yields a non-empty,
//    well-formed chain (chronological, valid tids, wake/sync kinds).
//  * Cross-validation rows and the exec progress meter ride along.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/workload.hpp"
#include "exec/pool.hpp"
#include "exec/progress.hpp"
#include "obs/attr.hpp"
#include "sim/machine.hpp"

namespace capmem {
namespace {

using obs::attr::Sink;
using obs::attr::TimeCat;

// A small program that exercises every charge site: compute, timed
// accesses (single-line and streaming), a park/wake pair, the harness
// barrier, an atomic, and a timer sleep.
void run_staged_machine(sim::MachineConfig cfg, Sink* sink) {
  cfg.attr = sink;
  sim::Machine m(cfg);
  const sim::Addr flag = m.alloc("flag", kLineBytes, {}, true);
  const sim::Addr ctr = m.alloc("ctr", kLineBytes, {}, true);
  const sim::Addr a = m.alloc("a", 32 * kLineBytes, {});
  const sim::Addr b = m.alloc("b", 32 * kLineBytes, {});
  const sim::Addr c = m.alloc("c", 32 * kLineBytes, {});
  constexpr int kThreads = 4;
  const auto slots =
      sim::make_schedule(cfg, sim::Schedule::kScatter, kThreads);
  for (int r = 0; r < kThreads; ++r) {
    m.add_thread(slots[static_cast<std::size_t>(r)],
                 [&, r](sim::Ctx& ctx) -> sim::Task {
                   // The writer computes long enough that every waiter's
                   // first probe sees the flag unset and genuinely parks.
                   if (r == 0) {
                     co_await ctx.compute(500);
                     co_await ctx.write_u64(flag, 1);
                   } else {
                     co_await ctx.compute(1 + r);
                     co_await ctx.wait_eq(flag, 1);
                   }
                   co_await ctx.fetch_add_u64(ctr, 1);
                   co_await ctx.sync();
                   co_await ctx.triad(a, b, c, 32 * kLineBytes);
                   // Staggered tails: the last finisher (the critical-path
                   // anchor) is a waiter that owns a wake edge.
                   co_await ctx.until(ctx.now() + 7 * (r + 1));
                 });
  }
  m.run();
}

TEST(AttrLedger, ConservationAcrossAllConfigsAndProtocols) {
  for (sim::ClusterMode cm : sim::all_cluster_modes()) {
    for (sim::MemoryMode mm :
         {sim::MemoryMode::kFlat, sim::MemoryMode::kCache,
          sim::MemoryMode::kHybrid}) {
      for (sim::Protocol proto :
           {sim::Protocol::kMesif, sim::Protocol::kMesi,
            sim::Protocol::kMosi}) {
        check::WorkloadSpec spec;
        spec.machine = "mini_16t";
        spec.cluster = cm;
        spec.memory = mm;
        spec.protocol = proto;
        spec.threads = 6;
        spec.ops_per_thread = 60;
        spec.seed = 11;
        Sink sink;
        const check::WorkloadResult r =
            check::run_workload(spec, nullptr, nullptr, &sink);
        const std::string label = spec.label();
        ASSERT_TRUE(r.ran) << label << ": " << r.error;
        // merge() already hard-checks conservation; assert it (and the
        // empty escape hatch) here too so a failure names the config.
        EXPECT_EQ(sink.machines(), 1u) << label;
        EXPECT_EQ(sink.total_ticks(), sink.expected_ticks()) << label;
        EXPECT_EQ(sink.unattributed_ticks(), 0) << label;
        EXPECT_GT(sink.total_ticks(), 0) << label;
      }
    }
  }
}

TEST(AttrLedger, AttachingItChangesNothing) {
  check::WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 7;
  Sink sink;
  const check::WorkloadResult with =
      check::run_workload(spec, nullptr, nullptr, &sink);
  const check::WorkloadResult without = check::run_workload(spec, nullptr);
  ASSERT_TRUE(with.ran);
  ASSERT_TRUE(without.ran);
  EXPECT_DOUBLE_EQ(with.elapsed, without.elapsed);
  EXPECT_EQ(with.final_data, without.final_data);
  EXPECT_EQ(with.final_counter, without.final_counter);
  EXPECT_EQ(with.final_slot, without.final_slot);
}

TEST(AttrLedger, StagedWorkloadChargesEverySite) {
  Sink sink;
  run_staged_machine(sim::knl7210(sim::ClusterMode::kQuadrant,
                                  sim::MemoryMode::kFlat),
                     &sink);
  EXPECT_EQ(sink.total_ticks(), sink.expected_ticks());
  EXPECT_EQ(sink.unattributed_ticks(), 0);
  EXPECT_GT(sink.time(TimeCat::kCompute), 0);
  EXPECT_GT(sink.time(TimeCat::kParkWait), 0);   // wait_eq spinners
  EXPECT_GT(sink.time(TimeCat::kBarrierWait), 0);  // sync() stragglers
  EXPECT_GT(sink.time(TimeCat::kTimerWait), 0);  // until()
  EXPECT_GT(sink.access_count(TimeCat::kL1) +
                sink.access_count(TimeCat::kL2Tile) +
                sink.access_count(TimeCat::kRemoteL2) +
                sink.access_count(TimeCat::kDram) +
                sink.access_count(TimeCat::kMcdram),
            0u);
  EXPECT_GT(sink.time(TimeCat::kDram) + sink.time(TimeCat::kMcdram), 0);
}

TEST(AttrLedger, McdramCacheCategoriesAppearInCacheMode) {
  Sink sink;
  run_staged_machine(sim::knl7210(sim::ClusterMode::kQuadrant,
                                  sim::MemoryMode::kCache),
                     &sink);
  EXPECT_EQ(sink.total_ticks(), sink.expected_ticks());
  EXPECT_GT(sink.access_count(TimeCat::kMcCacheHit) +
                sink.access_count(TimeCat::kMcCacheMiss),
            0u);
}

TEST(AttrCriticalPath, StagedWorkloadYieldsWellFormedChain) {
  Sink sink;
  run_staged_machine(sim::knl7210(sim::ClusterMode::kQuadrant,
                                  sim::MemoryMode::kFlat),
                     &sink);
  const std::vector<obs::attr::PathLink> path = sink.critical_path();
  ASSERT_FALSE(path.empty());
  double prev_t = -1;
  bool saw_wake = false;
  for (const obs::attr::PathLink& l : path) {
    EXPECT_GE(l.tid, 0);
    EXPECT_GE(l.pred, 0);
    EXPECT_GE(l.tile, 0);
    EXPECT_GE(l.pred_tile, 0);
    EXPECT_GE(l.t, prev_t);  // chronological after the backward walk
    EXPECT_GE(l.dur, 0);
    const std::string kind(l.kind);
    EXPECT_TRUE(kind == "wake" || kind == "sync") << kind;
    if (kind == "wake") saw_wake = true;
    prev_t = l.t;
  }
  // The staged program parks three threads on a flag write, then crosses a
  // barrier: the dominant chain must contain at least one dependency, and
  // with three parked waiters a wake edge is expected on it.
  EXPECT_TRUE(saw_wake || !path.empty());
}

TEST(AttrSink, CrossvalRowsMeasureMergedMeans) {
  Sink sink;
  sink.add_crossval("r_mem_dram", 150.0, TimeCat::kDram);
  sink.add_crossval("never_seen", 1.0, TimeCat::kMcCacheMiss);
  run_staged_machine(sim::knl7210(sim::ClusterMode::kQuadrant,
                                  sim::MemoryMode::kFlat),
                     &sink);
  const std::vector<Sink::CrossRow> rows = sink.crossval();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].term, "r_mem_dram");
  EXPECT_GT(rows[0].samples, 0u);
  EXPECT_GT(rows[0].measured_ns, 0.0);
  EXPECT_EQ(rows[1].samples, 0u);  // flat mode never touches the mc-cache
}

TEST(AttrSink, DumpJsonIsWellFormedEnoughToGrep) {
  Sink sink;
  run_staged_machine(sim::knl7210(sim::ClusterMode::kQuadrant,
                                  sim::MemoryMode::kFlat),
                     &sink);
  std::ostringstream os;
  sink.dump_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"schema\": \"capmem.attr.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"conservation\""), std::string::npos);
  EXPECT_NE(j.find("\"critical_path\""), std::string::npos);
}

TEST(ProgressMeter, CountsTicksAndRendersLine) {
  exec::ProgressMeter pm("unit", 10);
  pm.tick(3);
  pm.note_quarantined(2);
  EXPECT_EQ(pm.completed(), 3u);
  EXPECT_EQ(pm.total(), 10u);
  EXPECT_EQ(pm.quarantined(), 2u);
  const std::string line = pm.line();
  EXPECT_NE(line.find("unit"), std::string::npos);
  EXPECT_NE(line.find("3/10 jobs"), std::string::npos);
  EXPECT_NE(line.find("quarantined 2"), std::string::npos);
}

TEST(ProgressMeter, InstalledMeterTicksEveryJobEvenOnThrow) {
  exec::ProgressMeter pm("batch");
  exec::ProgressMeter* prev = exec::set_progress_meter(&pm);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back([i] {
      if (i == 2) throw std::runtime_error("boom");
    });
  }
  const std::vector<exec::JobError> errors =
      exec::run_jobs_collect(std::move(jobs), 2);
  exec::set_progress_meter(prev);
  EXPECT_EQ(errors.size(), 1u);
  EXPECT_EQ(pm.completed(), 5u);  // the throwing job still consumed a slot
  EXPECT_EQ(pm.total(), 5u);
}

}  // namespace
}  // namespace capmem
