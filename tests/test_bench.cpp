// Tests of the measurement layer, run on the tiny machine so they stay
// fast: the benchmarks must recover the qualitative structure the
// simulator implements (latency ordering, contention linearity, NT gains,
// saturation) without reading any ground-truth constants.
#include <gtest/gtest.h>

#include "bench/c2c.hpp"
#include "bench/congestion.hpp"
#include "bench/contention.hpp"
#include "bench/multiline.hpp"
#include "bench/pointer_chase.hpp"
#include "bench/stream.hpp"
#include "bench/suite.hpp"

namespace capmem::bench {
namespace {

using sim::ClusterMode;
using sim::knl7210;
using sim::MachineConfig;
using sim::MemKind;
using sim::MemoryMode;

C2COptions quick_c2c() {
  C2COptions o;
  o.run.iters = 21;
  return o;
}

TEST(C2CBench, StateOrderingWithinTile) {
  const MachineConfig cfg = knl7210();
  const Summary m = c2c_read_latency(cfg, 1, 0, PrepState::kM, quick_c2c());
  const Summary e = c2c_read_latency(cfg, 1, 0, PrepState::kE, quick_c2c());
  const Summary sf = c2c_read_latency(cfg, 1, 0, PrepState::kS, quick_c2c());
  EXPECT_GT(m.median, e.median);
  EXPECT_GT(e.median, sf.median);
}

TEST(C2CBench, RemoteSlowerThanTileSlowerThanL1) {
  const MachineConfig cfg = knl7210();
  const Summary l1 = c2c_read_latency(cfg, 0, 0, PrepState::kE, quick_c2c());
  const Summary tile =
      c2c_read_latency(cfg, 1, 0, PrepState::kE, quick_c2c());
  const Summary remote =
      c2c_read_latency(cfg, 20, 0, PrepState::kE, quick_c2c());
  EXPECT_LT(l1.median, tile.median);
  EXPECT_LT(tile.median, remote.median);
}

TEST(C2CBench, InvalidStateIsServedByMemory) {
  const MachineConfig cfg = knl7210();
  const Summary i = c2c_read_latency(cfg, 20, 0, PrepState::kI, quick_c2c());
  const Summary m = c2c_read_latency(cfg, 20, 0, PrepState::kM, quick_c2c());
  EXPECT_GT(i.median, m.median);  // memory beyond a cache transfer
}

TEST(C2CBench, ForwardStatePreparationInvolvesHelper) {
  const MachineConfig cfg = knl7210();
  const Summary f = c2c_read_latency(cfg, 20, 0, PrepState::kF, quick_c2c());
  EXPECT_GT(f.median, 80.0);
  EXPECT_LT(f.median, 150.0);
}

TEST(C2CBench, PerCoreSeriesCoversAllOtherCores) {
  MachineConfig cfg = sim::tiny_machine();
  C2COptions o;
  o.run.iters = 9;
  const auto series =
      c2c_latency_per_core(cfg, 0, {PrepState::kE}, o);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].size(), static_cast<std::size_t>(cfg.cores() - 1));
}

TEST(ContentionBench, FitIsLinearWithPositiveSlope) {
  const MachineConfig cfg = knl7210();
  ContentionOptions o;
  o.run.iters = 21;
  const ContentionResult r = contention_1n(cfg, {1, 2, 4, 8, 16}, o);
  EXPECT_GT(r.fit.beta, 10.0);
  EXPECT_GT(r.fit.r2, 0.95);
  // Monotone medians.
  for (std::size_t i = 1; i < r.per_n.size(); ++i) {
    EXPECT_GE(r.per_n.ys[i].median, r.per_n.ys[i - 1].median * 0.9);
  }
}

TEST(CongestionBench, NoMeshCongestion) {
  const MachineConfig cfg = knl7210();
  CongestionOptions o;
  o.run.iters = 15;
  const CongestionResult r = congestion_pairs(cfg, {1, 4, 8}, o);
  EXPECT_LT(r.ratio, 1.25);  // the paper reports "None"
}

TEST(MultilineBench, VectorBeatsScalar) {
  const MachineConfig cfg = knl7210();
  MultilineOptions o;
  o.run.iters = 9;
  const Summary vec =
      multiline_bw(cfg, 20, 0, KiB(32), XferOp::kRead, PrepState::kE, o);
  o.vector = false;
  const Summary scalar =
      multiline_bw(cfg, 20, 0, KiB(32), XferOp::kRead, PrepState::kE, o);
  EXPECT_GT(vec.median, scalar.median * 1.5);  // paper: 2.5 vs 1 GB/s
}

TEST(MultilineBench, CopyFasterThanReadRemote) {
  const MachineConfig cfg = knl7210();
  MultilineOptions o;
  o.run.iters = 9;
  const Summary copy =
      multiline_bw(cfg, 20, 0, KiB(32), XferOp::kCopy, PrepState::kE, o);
  const Summary read =
      multiline_bw(cfg, 20, 0, KiB(32), XferOp::kRead, PrepState::kE, o);
  EXPECT_GT(copy.median, read.median * 1.5);  // paper: ~7.5 vs 2.5
}

TEST(MemLatencyBench, McdramAboveDram) {
  const MachineConfig cfg = knl7210();
  MemLatencyOptions o;
  o.run.iters = 31;
  const Summary dram = memory_latency(cfg, MemKind::kDDR, o);
  const Summary mcdram = memory_latency(cfg, MemKind::kMCDRAM, o);
  EXPECT_GT(mcdram.median, dram.median + 10.0);
}

TEST(MemLatencyBench, CacheModeNearMcdramLatency) {
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kCache);
  cfg.scale_memory(512);
  MemLatencyOptions o;
  o.run.iters = 31;
  const Summary lat = memory_latency(cfg, MemKind::kDDR, o);
  EXPECT_GT(lat.median, 150.0);
  EXPECT_LT(lat.median, 200.0);  // paper: 158-178 ns
}

TEST(StreamBench, McdramAggregateBeatsDram) {
  const MachineConfig cfg = knl7210();
  StreamConfig sc;
  sc.run.iters = 3;
  sc.buffer_bytes = KiB(128);
  sc.nthreads = 32;
  sc.kind = MemKind::kDDR;
  const double dram = stream_bench(cfg, StreamOp::kRead, sc).gbps.median;
  sc.kind = MemKind::kMCDRAM;
  const double mcdram = stream_bench(cfg, StreamOp::kRead, sc).gbps.median;
  EXPECT_GT(mcdram, dram * 2.0);
}

TEST(StreamBench, WriteHalvedByTurnaround) {
  const MachineConfig cfg = knl7210();
  StreamConfig sc;
  sc.run.iters = 3;
  sc.buffer_bytes = KiB(128);
  sc.nthreads = 16;
  const double rd = stream_bench(cfg, StreamOp::kRead, sc).gbps.median;
  const double wr = stream_bench(cfg, StreamOp::kWrite, sc).gbps.median;
  EXPECT_LT(wr, rd * 0.7);
  EXPECT_GT(wr, rd * 0.3);
}

TEST(StreamBench, StreamConventionFactors) {
  EXPECT_DOUBLE_EQ(stream_bytes_factor(StreamOp::kCopy), 2.0);
  EXPECT_DOUBLE_EQ(stream_bytes_factor(StreamOp::kTriad), 3.0);
  EXPECT_DOUBLE_EQ(stream_bytes_factor(StreamOp::kRead), 1.0);
  EXPECT_DOUBLE_EQ(stream_bytes_factor(StreamOp::kWrite), 1.0);
}

TEST(StreamBench, ThreadSweepIsMonotoneUntilSaturation) {
  const MachineConfig cfg = knl7210();
  StreamConfig sc;
  sc.run.iters = 3;
  sc.buffer_bytes = KiB(128);
  sc.kind = MemKind::kDDR;
  const Series s = stream_thread_sweep(cfg, StreamOp::kRead, sc, {1, 4, 16});
  EXPECT_LT(s.ys[0].median, s.ys[1].median);
  EXPECT_LT(s.ys[1].median, s.ys[2].median * 1.05);
}

TEST(Suite, CacheHalfPopulatesEverything) {
  SuiteOptions o;
  o.run.iters = 9;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  const SuiteResults r = run_suite(knl7210(), o);
  EXPECT_GT(r.lat_l1.median, 0);
  EXPECT_GT(r.lat_remote_m.median, r.lat_tile_m.median);
  EXPECT_GE(r.range_remote_m.hi, r.range_remote_m.lo);
  EXPECT_GT(r.contention.fit.beta, 0);
  EXPECT_TRUE(r.mem_lat_mcdram.has_value());
  EXPECT_FALSE(r.has_streams);
}

TEST(Suite, MedianCiAcceptanceCriterion) {
  // The paper only reports medians within 10% of the 95% CI; the suite's
  // latency summaries must satisfy that with modest iteration counts.
  SuiteOptions o;
  o.run.iters = 31;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2};
  const SuiteResults r = run_suite(knl7210(), o);
  EXPECT_TRUE(r.lat_l1.median_within(0.10));
  EXPECT_TRUE(r.lat_tile_m.median_within(0.10));
  EXPECT_TRUE(r.mem_lat_dram.median_within(0.10));
}

}  // namespace
}  // namespace capmem::bench
