#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace capmem::sim {
namespace {

TEST(Cache, GeometryFromCapacity) {
  SetAssocCache c(32 * 1024, 8);  // KNL L1: 64 sets x 8 ways
  EXPECT_EQ(c.sets(), 64);
  EXPECT_EQ(c.ways(), 8);
}

TEST(Cache, InvalidGeometryThrows) {
  EXPECT_THROW(SetAssocCache(100, 8), CheckError);
  EXPECT_THROW(SetAssocCache(0, 8), CheckError);
}

TEST(Cache, InsertThenLookup) {
  SetAssocCache c(kLineBytes * 8, 2);  // 4 sets x 2 ways
  EXPECT_FALSE(c.lookup(5));
  EXPECT_EQ(c.insert(5), std::nullopt);
  EXPECT_TRUE(c.lookup(5));
  EXPECT_TRUE(c.contains(5));
}

TEST(Cache, LruEvictionWithinSet) {
  SetAssocCache c(kLineBytes * 8, 2);  // 4 sets
  // Lines 0, 4, 8 all map to set 0.
  c.insert(0);
  c.insert(4);
  c.lookup(0);  // make 4 the LRU
  const auto evicted = c.insert(8);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 4u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(8));
}

TEST(Cache, EraseAndClear) {
  SetAssocCache c(kLineBytes * 8, 2);
  c.insert(3);
  EXPECT_TRUE(c.erase(3));
  EXPECT_FALSE(c.erase(3));
  c.insert(1);
  c.insert(2);
  c.clear();
  EXPECT_EQ(c.resident_lines(), 0u);
}

TEST(Cache, DistinctSetsDoNotConflict) {
  SetAssocCache c(kLineBytes * 8, 2);  // 4 sets
  for (Line l = 0; l < 4; ++l) EXPECT_EQ(c.insert(l), std::nullopt);
  EXPECT_EQ(c.resident_lines(), 4u);
}

TEST(Cache, CapacityProperty) {
  // Inserting any sequence never exceeds sets*ways resident lines.
  SetAssocCache c(kLineBytes * 32, 4);  // 8 sets x 4 ways
  for (Line l = 0; l < 1000; ++l) {
    if (!c.lookup(l * 7)) c.insert(l * 7);
    EXPECT_LE(c.resident_lines(), 32u);
  }
}

class CacheSweep : public ::testing::TestWithParam<int> {};

TEST_P(CacheSweep, FullSetAlwaysEvictsExactlyOne) {
  const int ways = GetParam();
  SetAssocCache c(kLineBytes * static_cast<std::uint64_t>(ways) * 2, ways);
  // Fill set 0 (stride = number of sets = 2).
  for (int i = 0; i < ways; ++i)
    EXPECT_EQ(c.insert(static_cast<Line>(i) * 2), std::nullopt);
  for (int i = ways; i < ways + 5; ++i) {
    EXPECT_TRUE(c.insert(static_cast<Line>(i) * 2).has_value());
    EXPECT_EQ(c.resident_lines(), static_cast<std::uint64_t>(ways));
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace capmem::sim
