// Unit tests for the capmem::check layer: generator determinism, checker
// purity (attaching it must not change simulation results), oracle
// bookkeeping on crafted workloads, and end-to-end run_diff agreement.
// The 15-configuration sweep lives in test_fuzz.cpp; the fault-injection
// counterpart (checker MUST flag a corrupted simulator) in
// test_mutation.cpp.
#include <gtest/gtest.h>

#include "check/differ.hpp"
#include "sim/machine.hpp"

namespace capmem::check {
namespace {

TEST(Workload, GeneratorIsDeterministic) {
  WorkloadSpec spec;
  spec.seed = 42;
  const auto a = generate_ops(spec);
  const auto b = generate_ops(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size());
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      EXPECT_EQ(a[t][i].kind, b[t][i].kind);
      EXPECT_EQ(a[t][i].arg, b[t][i].arg);
      EXPECT_EQ(a[t][i].val, b[t][i].val);
      EXPECT_DOUBLE_EQ(a[t][i].ns, b[t][i].ns);
    }
  }
}

TEST(Workload, SeedsProduceDistinctSchedules) {
  WorkloadSpec a, b;
  a.seed = 1;
  b.seed = 2;
  const auto oa = generate_ops(a);
  const auto ob = generate_ops(b);
  bool differ = false;
  for (std::size_t i = 0; i < oa[0].size() && !differ; ++i) {
    differ = oa[0][i].kind != ob[0][i].kind || oa[0][i].arg != ob[0][i].arg;
  }
  EXPECT_TRUE(differ);
}

TEST(Workload, EncodeValueIdentifiesWriter) {
  EXPECT_NE(encode_value(0, 1), 0u);  // shadow 0 <=> never written
  EXPECT_NE(encode_value(0, 1), encode_value(1, 1));
  EXPECT_NE(encode_value(3, 7), encode_value(3, 8));
  EXPECT_EQ(encode_value(2, 5) >> 32, 3u);
  EXPECT_EQ(encode_value(2, 5) & 0xffffffffu, 5u);
}

TEST(Checker, AttachingItChangesNothing) {
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 7;
  Checker checker(workload_config(spec));
  const WorkloadResult with = run_workload(spec, &checker);
  const WorkloadResult without = run_workload(spec, nullptr);
  ASSERT_TRUE(with.ran);
  ASSERT_TRUE(without.ran);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_DOUBLE_EQ(with.elapsed, without.elapsed);
  EXPECT_EQ(with.dir_lines, without.dir_lines);
  EXPECT_EQ(with.final_data, without.final_data);
  EXPECT_EQ(with.final_counter, without.final_counter);
  EXPECT_EQ(with.final_slot, without.final_slot);
}

TEST(Checker, OracleTracksLastWriter) {
  sim::MachineConfig cfg = sim::knl7210();
  Checker checker(cfg);
  cfg.check = &checker;
  sim::Machine m(cfg);
  const sim::Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = sim::make_schedule(cfg, sim::Schedule::kScatter, 1);
  m.add_thread(slots[0], [&](sim::Ctx& ctx) -> sim::Task {
    co_await ctx.write_u64(a, encode_value(0, 1));
    co_await ctx.write_u64(a, encode_value(0, 2));
    co_await ctx.read_u64(a);
  });
  m.run();
  checker.final_sweep(m.memsys());
  EXPECT_TRUE(checker.ok()) << checker.report();
  const Oracle::WriterInfo* w = checker.oracle().writer(sim::line_of(a));
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->last_tid, 0);
  EXPECT_EQ(w->last_count, 2u);
  EXPECT_EQ(w->total_writes, 2u);
  EXPECT_EQ(m.space().load<std::uint64_t>(a), encode_value(0, 2));
}

TEST(Checker, CountsAccessesAndTransitions) {
  WorkloadSpec spec;
  spec.threads = 6;
  spec.ops_per_thread = 80;
  Checker checker(workload_config(spec));
  const WorkloadResult r = run_workload(spec, &checker);
  ASSERT_TRUE(r.ran);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.oracle().accesses(), 0u);
  EXPECT_GT(checker.oracle().writes(), 0u);
  EXPECT_GT(checker.transitions(), 0u);
  EXPECT_TRUE(checker.report().empty());
}

TEST(Diff, CleanSimulatorPassesAcrossSeeds) {
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    WorkloadSpec spec;
    spec.threads = 8;
    spec.ops_per_thread = 120;
    spec.seed = seed;
    const DiffOutcome out = run_diff(spec);
    EXPECT_TRUE(out.ok) << spec.label() << '\n' << out.report;
    EXPECT_EQ(out.violations, 0u);
  }
}

TEST(Diff, HeavyContentionSingleLine) {
  WorkloadSpec spec;
  spec.threads = 12;
  spec.data_lines = 1;  // every write contends on one line
  spec.counter_lines = 1;
  spec.ops_per_thread = 150;
  spec.seed = 5;
  const DiffOutcome out = run_diff(spec);
  EXPECT_TRUE(out.ok) << out.report;
}

TEST(Diff, PrefixTruncatesExecution) {
  WorkloadSpec full;
  full.threads = 6;
  full.ops_per_thread = 100;
  full.seed = 23;
  WorkloadSpec cut = full;
  cut.prefix = 10;
  const DiffOutcome a = run_diff(full);
  const DiffOutcome b = run_diff(cut);
  ASSERT_TRUE(a.ok) << a.report;
  ASSERT_TRUE(b.ok) << b.report;
  EXPECT_LT(b.elapsed, a.elapsed);
}

TEST(Diff, ReproTextRoundTrips) {
  WorkloadSpec spec;
  spec.threads = 4;
  spec.ops_per_thread = 30;
  spec.seed = 8;
  const DiffOutcome out = run_diff(spec);
  ASSERT_TRUE(out.ok);
  const std::string text = repro_text(out);
  EXPECT_NE(text.find("seed=8"), std::string::npos);
  EXPECT_NE(text.find("t0:"), std::string::npos);
  EXPECT_NE(text.find("t3:"), std::string::npos);
}

}  // namespace
}  // namespace capmem::check
