#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/cli.hpp"

namespace capmem {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return Cli(static_cast<int>(v.size()), v.data());
}

TEST(Cli, EqualsAndSpaceForms) {
  Cli c = make({"--mode=SNC4", "--iters", "100"});
  EXPECT_EQ(c.get_string("mode", "QUAD"), "SNC4");
  EXPECT_EQ(c.get_int("iters", 1), 100);
  c.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli c = make({});
  EXPECT_EQ(c.get_string("mode", "QUAD"), "QUAD");
  EXPECT_EQ(c.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(c.get_flag("fast"));
  c.finish();
}

TEST(Cli, BareFlagIsTrue) {
  Cli c = make({"--fast"});
  EXPECT_TRUE(c.get_flag("fast"));
  c.finish();
}

TEST(Cli, FlagFalseForms) {
  Cli c = make({"--fast=false", "--slow=0"});
  EXPECT_FALSE(c.get_flag("fast", true));
  EXPECT_FALSE(c.get_flag("slow", true));
  c.finish();
}

TEST(Cli, UnknownOptionThrowsOnFinish) {
  Cli c = make({"--bogus=1"});
  c.get_int("real", 0);
  EXPECT_THROW(c.finish(), CheckError);
}

TEST(Cli, NonDashArgumentRejected) {
  EXPECT_THROW(make({"positional"}), CheckError);
}

TEST(Cli, DoubleParsing) {
  Cli c = make({"--x=3.25"});
  EXPECT_DOUBLE_EQ(c.get_double("x", 0), 3.25);
  c.finish();
}

}  // namespace
}  // namespace capmem
