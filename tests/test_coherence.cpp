#include <gtest/gtest.h>

#include "sim/coherence.hpp"

namespace capmem::sim {
namespace {

TEST(Directory, UntrackedLineIsInvalid) {
  Directory d;
  EXPECT_EQ(d.find(5), nullptr);
  EXPECT_EQ(d.state_in_tile(5, 0), TileState::kI);
}

TEST(Directory, OwnerStates) {
  Directory d;
  LineEntry& e = d.entry(1);
  e.owner = 3;
  e.l2_mask = 1ull << 3;
  e.dirty = false;
  EXPECT_EQ(d.state_in_tile(1, 3), TileState::kE);
  e.dirty = true;
  EXPECT_EQ(d.state_in_tile(1, 3), TileState::kM);
  EXPECT_EQ(d.state_in_tile(1, 4), TileState::kI);
  d.check_invariants(1);
}

TEST(Directory, SharedAndForwardStates) {
  Directory d;
  LineEntry& e = d.entry(2);
  e.l2_mask = (1ull << 1) | (1ull << 5);
  e.forward = 5;
  EXPECT_EQ(d.state_in_tile(2, 1), TileState::kS);
  EXPECT_EQ(d.state_in_tile(2, 5), TileState::kF);
  d.check_invariants(2);
}

TEST(Directory, InvariantOwnerNeedsSingleCopy) {
  Directory d;
  LineEntry& e = d.entry(3);
  e.owner = 1;
  e.l2_mask = (1ull << 1) | (1ull << 2);
  EXPECT_THROW(d.check_invariants(3), CheckError);
}

TEST(Directory, InvariantOwnerMustBePresent) {
  Directory d;
  LineEntry& e = d.entry(4);
  e.owner = 1;
  e.l2_mask = 1ull << 2;
  EXPECT_THROW(d.check_invariants(4), CheckError);
}

TEST(Directory, InvariantDirtyRequiresOwner) {
  Directory d;
  LineEntry& e = d.entry(5);
  e.l2_mask = 1ull << 2;
  e.dirty = true;
  EXPECT_THROW(d.check_invariants(5), CheckError);
}

TEST(Directory, InvariantForwarderMustBeSharer) {
  Directory d;
  LineEntry& e = d.entry(6);
  e.l2_mask = 1ull << 2;
  e.forward = 3;
  EXPECT_THROW(d.check_invariants(6), CheckError);
}

TEST(Directory, DropIfInvalidCompacts) {
  Directory d;
  d.entry(7);
  EXPECT_EQ(d.tracked_lines(), 1u);
  d.drop_if_invalid(7);
  EXPECT_EQ(d.tracked_lines(), 0u);
  LineEntry& e = d.entry(8);
  e.l2_mask = 1;
  e.owner = 0;
  d.drop_if_invalid(8);
  EXPECT_EQ(d.tracked_lines(), 1u);
}

TEST(TileStateNames, AllDistinct) {
  EXPECT_STREQ(to_string(TileState::kI), "I");
  EXPECT_STREQ(to_string(TileState::kM), "M");
  EXPECT_STREQ(to_string(TileState::kE), "E");
  EXPECT_STREQ(to_string(TileState::kS), "S");
  EXPECT_STREQ(to_string(TileState::kF), "F");
}

}  // namespace
}  // namespace capmem::sim
