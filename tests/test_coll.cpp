// Collective correctness and performance-shape tests: every algorithm
// delivers/accumulates/separates correctly across schedules, modes and
// thread counts, and the tuned variants beat the baselines at scale.
#include <gtest/gtest.h>

#include <set>

#include "coll/harness.hpp"
#include "coll/runtime.hpp"
#include "coll/tuned.hpp"
#include "model/fit.hpp"
#include "sim/machine.hpp"

namespace capmem::coll {
namespace {

using model::CapabilityModel;
using sim::ClusterMode;
using sim::knl7210;
using sim::MachineConfig;
using sim::MemoryMode;
using sim::Schedule;

const CapabilityModel& fitted() {
  static const CapabilityModel m = [] {
    bench::SuiteOptions o;
    o.run.iters = 15;
    o.remote_samples = 2;
    o.contention_ns = {1, 2, 4, 8};
    return model::fit_cache_model(knl7210(), o);
  }();
  return m;
}

TEST(Runtime, CellSetLayoutDisjointLines) {
  sim::Machine m(knl7210());
  CellSet cells(m, "t", 4, 3, {});
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(cells.flag(r, s) % kLineBytes, 0u);
      EXPECT_EQ(cells.payload(r, s), cells.flag(r, s) + 8);
      for (int r2 = 0; r2 < 4; ++r2) {
        for (int s2 = 0; s2 < 3; ++s2) {
          if (r != r2 || s != s2) {
            EXPECT_NE(sim::line_of(cells.flag(r, s)),
                      sim::line_of(cells.flag(r2, s2)));
          }
        }
      }
    }
  }
  EXPECT_THROW(cells.flag(4, 0), CheckError);
}

TEST(Runtime, TileGroupsPartitionRanks) {
  sim::Machine machine(knl7210());
  World w;
  w.machine = &machine;
  w.slots = sim::make_schedule(knl7210(), Schedule::kFillTiles, 16);
  const TileGroups g = group_by_tile(w);
  EXPECT_EQ(g.leaders.size(), 8u);  // 16 threads fill 8 tiles (2 cores each)
  int total = static_cast<int>(g.leaders.size());
  for (const auto& mem : g.members) total += static_cast<int>(mem.size());
  EXPECT_EQ(total, 16);
  EXPECT_TRUE(g.is_leader(0));
  for (std::size_t i = 0; i < g.leaders.size(); ++i) {
    for (int r : g.members[i]) {
      EXPECT_EQ(g.group_of_rank(r),
                g.group_of_rank(g.leaders[i]));
    }
  }
}

TEST(TreePlan, FlattenPreservesStructure) {
  model::TreeNode root;
  root.size = 4;
  root.children.resize(2);
  root.children[0].children.resize(1);
  const TreePlan plan = flatten_tree(root);
  ASSERT_EQ(plan.parent.size(), 4u);
  EXPECT_EQ(plan.parent[0], -1);
  EXPECT_EQ(plan.parent[1], 0);
  EXPECT_EQ(plan.parent[2], 1);
  EXPECT_EQ(plan.parent[3], 0);
  EXPECT_EQ(plan.children[0], (std::vector<int>{1, 3}));
}

struct CollCase {
  Algo algo;
  int threads;
  Schedule sched;
};

class AllCollectives : public ::testing::TestWithParam<CollCase> {};

TEST_P(AllCollectives, CorrectAtAllScales) {
  const CollCase c = GetParam();
  HarnessOptions ho;
  ho.iters = 11;
  ho.sched = c.sched;
  const CollResult r =
      run_collective(knl7210(), c.algo, c.threads, &fitted(), ho);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.per_iter_max.median, 0.0);
}

std::vector<CollCase> all_cases() {
  std::vector<CollCase> cases;
  for (Algo a : {Algo::kTunedBarrier, Algo::kTunedBroadcast,
                 Algo::kTunedReduce, Algo::kOmpBarrier, Algo::kOmpBroadcast,
                 Algo::kOmpReduce, Algo::kMpiBarrier, Algo::kMpiBroadcast,
                 Algo::kMpiReduce, Algo::kTunedAllreduce,
                 Algo::kOmpAllreduce, Algo::kMpiAllreduce}) {
    for (int n : {2, 3, 17, 64}) {
      cases.push_back({a, n, Schedule::kScatter});
    }
    cases.push_back({a, 32, Schedule::kFillTiles});
    cases.push_back({a, 128, Schedule::kFillCores});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllCollectives, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<CollCase>& info) {
      std::string name = std::string(to_string(info.param.algo)) + "_" +
                         std::to_string(info.param.threads) + "_" +
                         sim::to_string(info.param.sched);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Collectives, CorrectInCacheMode) {
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kCache);
  cfg.scale_memory(256);
  HarnessOptions ho;
  ho.iters = 7;
  ho.cell_kind = sim::MemKind::kDDR;
  for (Algo a :
       {Algo::kTunedBroadcast, Algo::kTunedReduce, Algo::kTunedBarrier}) {
    const CollResult r = run_collective(cfg, a, 32, &fitted(), ho);
    EXPECT_EQ(r.errors, 0u) << to_string(a);
  }
}

TEST(Collectives, TunedBeatsBaselinesAtScale) {
  HarnessOptions ho;
  ho.iters = 31;
  const MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kFlat);
  struct Triple {
    Algo tuned, omp, mpi;
  };
  for (const Triple t :
       {Triple{Algo::kTunedBarrier, Algo::kOmpBarrier, Algo::kMpiBarrier},
        Triple{Algo::kTunedBroadcast, Algo::kOmpBroadcast,
               Algo::kMpiBroadcast},
        Triple{Algo::kTunedReduce, Algo::kOmpReduce, Algo::kMpiReduce}}) {
    const double tu =
        run_collective(cfg, t.tuned, 64, &fitted(), ho).per_iter_max.median;
    const double om =
        run_collective(cfg, t.omp, 64, &fitted(), ho).per_iter_max.median;
    const double mp =
        run_collective(cfg, t.mpi, 64, &fitted(), ho).per_iter_max.median;
    EXPECT_GT(om / tu, 1.3) << to_string(t.tuned);
    EXPECT_GT(mp / tu, 2.5) << to_string(t.tuned);
  }
}

TEST(Collectives, BandRoughlyContainsMeasurement) {
  // The paper notes its model "overestimates ... at 32 or 64 threads but
  // captures the trends" — require the measured median within a factor of
  // the band rather than strict containment.
  HarnessOptions ho;
  ho.iters = 31;
  for (Algo a :
       {Algo::kTunedBarrier, Algo::kTunedBroadcast, Algo::kTunedReduce}) {
    const CollResult r = run_collective(knl7210(), a, 64, &fitted(), ho);
    ASSERT_TRUE(r.has_band);
    EXPECT_GT(r.per_iter_max.median, r.band.best_ns * 0.5) << to_string(a);
    EXPECT_LT(r.per_iter_max.median, r.band.worst_ns * 2.0) << to_string(a);
  }
}

TEST(Collectives, BarrierSeparationProperty) {
  // No rank may leave the barrier before every rank arrived: verify with
  // randomized skews before the barrier.
  const MachineConfig cfg = knl7210();
  sim::Machine machine(cfg);
  World w;
  w.machine = &machine;
  const int n = 24;
  w.slots = sim::make_schedule(cfg, Schedule::kScatter, n);
  w.place = {};
  const auto d =
      model::optimize_dissemination(fitted(), n, sim::MemKind::kDDR);
  const int rounds = std::max(1, d.rounds);
  const int fanout = d.m;
  CellSet flags(machine, "sep_flags", n, rounds * fanout, w.place);
  std::vector<double> arrive(n), leave(n);
  Rng rng(3);
  std::vector<double> delay(n);
  for (auto& x : delay) x = rng.uniform(0.0, 3000.0);
  for (int r = 0; r < n; ++r) {
    machine.add_thread(
        w.slots[static_cast<std::size_t>(r)],
        [&, r](sim::Ctx& ctx) -> sim::Task {
          co_await ctx.compute(delay[static_cast<std::size_t>(r)]);
          arrive[static_cast<std::size_t>(r)] = ctx.now();
          long long stride = 1;
          for (int j = 0; j < rounds; ++j) {
            for (int c = 1; c <= fanout; ++c) {
              const int peer = static_cast<int>((r + c * stride) % n);
              co_await ctx.write_u64(flags.flag(peer, j * fanout + c - 1),
                                     1);
            }
            for (int c = 1; c <= fanout; ++c) {
              co_await ctx.wait_eq(flags.flag(r, j * fanout + c - 1), 1);
            }
            stride *= (fanout + 1);
          }
          leave[static_cast<std::size_t>(r)] = ctx.now();
        });
  }
  machine.run();
  const double max_arrive = *std::max_element(arrive.begin(), arrive.end());
  const double min_leave = *std::min_element(leave.begin(), leave.end());
  EXPECT_GE(min_leave, max_arrive);
}

TEST(Collectives, AllreduceBandComposesReduceAndBroadcast) {
  const model::ThreadLayout lay = model::layout_for(64, 32, 8, true);
  const auto r = model::reduce_band(fitted(), lay, sim::MemKind::kMCDRAM);
  const auto b =
      model::broadcast_band(fitted(), lay, sim::MemKind::kMCDRAM);
  const auto ar =
      model::allreduce_band(fitted(), lay, sim::MemKind::kMCDRAM);
  EXPECT_DOUBLE_EQ(ar.best_ns, r.best_ns + b.best_ns);
  EXPECT_DOUBLE_EQ(ar.worst_ns, r.worst_ns + b.worst_ns);
}

TEST(Collectives, AlgoNamesAreUniqueAndTaggedTuned) {
  std::set<std::string> names;
  for (Algo a : {Algo::kTunedBarrier, Algo::kTunedBroadcast,
                 Algo::kTunedReduce, Algo::kOmpBarrier, Algo::kOmpBroadcast,
                 Algo::kOmpReduce, Algo::kMpiBarrier, Algo::kMpiBroadcast,
                 Algo::kMpiReduce, Algo::kTunedAllreduce,
                 Algo::kOmpAllreduce, Algo::kMpiAllreduce}) {
    EXPECT_TRUE(names.insert(to_string(a)).second) << to_string(a);
    EXPECT_EQ(is_tuned(a),
              std::string(to_string(a)).rfind("tuned-", 0) == 0);
  }
}

TEST(Harness, RecorderPerIterMax) {
  Recorder rec(2, 3);
  rec.record(0, 0, 10);
  rec.record(1, 0, 20);
  rec.record(0, 1, 5);
  rec.record(1, 1, 3);
  rec.record(0, 2, 7);
  rec.record(1, 2, 7);
  EXPECT_EQ(rec.iter_max_series(), (std::vector<double>{20, 5, 7}));
  EXPECT_DOUBLE_EQ(rec.per_iter_max().median, 7.0);
}

TEST(Harness, TunedWithoutModelRejected) {
  HarnessOptions ho;
  ho.iters = 3;
  EXPECT_THROW(
      run_collective(knl7210(), Algo::kTunedBarrier, 8, nullptr, ho),
      CheckError);
}

}  // namespace
}  // namespace capmem::coll
