#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/config.hpp"

namespace capmem::sim {
namespace {

TEST(Config, Knl7210Preset) {
  const MachineConfig cfg = knl7210();
  EXPECT_EQ(cfg.cores(), 64);
  EXPECT_EQ(cfg.hw_threads(), 256);
  EXPECT_EQ(cfg.active_tiles, 32);
  EXPECT_EQ(cfg.dram_channels(), 6);
  EXPECT_EQ(cfg.mcdram_controllers, 8);
  EXPECT_EQ(cfg.mcdram_bytes, GiB(16));
  EXPECT_EQ(cfg.dram_bytes, GiB(96));
}

TEST(Config, TinyMachinePreset) {
  const MachineConfig cfg = tiny_machine();
  EXPECT_EQ(cfg.cores(), 16);
  cfg.validate();
}

TEST(Config, ClusterDomains) {
  EXPECT_EQ(knl7210(ClusterMode::kSNC4).cluster_domains(), 4);
  EXPECT_EQ(knl7210(ClusterMode::kSNC2).cluster_domains(), 2);
  EXPECT_EQ(knl7210(ClusterMode::kQuadrant).cluster_domains(), 1);
  EXPECT_EQ(knl7210(ClusterMode::kA2A).cluster_domains(), 1);
}

TEST(Config, ScaleMemory) {
  MachineConfig cfg = knl7210();
  cfg.scale_memory(256);
  EXPECT_EQ(cfg.mcdram_bytes, MiB(64));
  EXPECT_EQ(cfg.dram_bytes, MiB(384));
  EXPECT_THROW(cfg.scale_memory(0), CheckError);
  MachineConfig tiny = knl7210();
  EXPECT_THROW(tiny.scale_memory(1ull << 40), CheckError);
}

TEST(Config, ValidationCatchesBadGeometry) {
  MachineConfig cfg = knl7210();
  cfg.active_tiles = 40;  // > physical
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = knl7210();
  cfg.active_tiles = 33;  // core-count/quadrant balance
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = knl7210();
  cfg.threads_per_core = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg = knl7210();
  cfg.l1_bytes = 1000;  // not a multiple of ways*64
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Config, CoreMaskLimitEnforced) {
  MachineConfig cfg = knl7210();
  cfg.physical_tiles = 38;
  cfg.active_tiles = 36;  // 72 cores: exceeds the 64-bit core bitmap
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Config, ModeStringsRoundTrip) {
  for (ClusterMode m : all_cluster_modes()) {
    EXPECT_EQ(cluster_mode_from_string(to_string(m)), m);
  }
  for (MemoryMode m :
       {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
    EXPECT_EQ(memory_mode_from_string(to_string(m)), m);
  }
  EXPECT_THROW(cluster_mode_from_string("bogus"), CheckError);
  EXPECT_THROW(memory_mode_from_string("bogus"), CheckError);
}

TEST(Config, TableOrderMatchesPaper) {
  const auto modes = all_cluster_modes();
  ASSERT_EQ(modes.size(), 5u);
  EXPECT_EQ(modes[0], ClusterMode::kSNC4);
  EXPECT_EQ(modes[1], ClusterMode::kSNC2);
  EXPECT_EQ(modes[2], ClusterMode::kQuadrant);
  EXPECT_EQ(modes[3], ClusterMode::kHemisphere);
  EXPECT_EQ(modes[4], ClusterMode::kA2A);
}

TEST(Units, Conversions) {
  EXPECT_EQ(KiB(2), 2048u);
  EXPECT_EQ(MiB(1), 1048576u);
  EXPECT_EQ(GiB(1), 1073741824u);
  EXPECT_DOUBLE_EQ(bandwidth_gbps(64, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(bandwidth_gbps(64, 0.0), 0.0);
}

}  // namespace
}  // namespace capmem::sim
