// Efficiency-assessment tests, including the end-to-end use on a real sort
// run (the paper's second use case, quantified).
#include <gtest/gtest.h>

#include "model/efficiency.hpp"
#include "model/fit.hpp"
#include "sort/parallel_sort.hpp"

namespace capmem::model {
namespace {

using sim::knl7210;
using sim::MemKind;
using sim::ThreadCounters;

CapabilityModel bw_model() {
  CapabilityModel m;
  m.bw_dram = {4.0, 38.0};
  m.bw_mcdram = {3.7, 170.0};
  m.lat_dram = 140;
  m.lat_mcdram = 167;
  m.has_mcdram = true;
  return m;
}

TEST(Efficiency, TrafficBreakdownAndVerdict) {
  ThreadCounters c;
  c.l1_hits = 700;
  c.l2_tile_hits = 100;
  c.dram_lines = 200;
  c.line_ops = 1000;
  // 200 lines = 12.8 KB over 1000 ns = 12.8 GB/s vs achievable 16 (4x4).
  const EfficiencyReport r =
      assess(bw_model(), {c}, 1000.0, 4, MemKind::kDDR);
  EXPECT_EQ(r.total_ops, 1000u);
  EXPECT_DOUBLE_EQ(r.cache_hit_fraction, 0.8);
  EXPECT_NEAR(r.memory_gbps, 12.8, 0.01);
  EXPECT_NEAR(r.memory_efficiency, 0.8, 0.01);
  EXPECT_NEAR(r.memory_bound_ns, 800.0, 0.5);
  EXPECT_NEAR(r.overhead_fraction, 0.2, 0.01);
  EXPECT_FALSE(r.memory_bound());
  // 80% cache hits: the verdict calls the run cache-resident rather than
  // overhead-dominated.
  EXPECT_NE(r.verdict.find("cache-resident"), std::string::npos);
}

TEST(Efficiency, OverheadDominatedVerdict) {
  ThreadCounters c;
  c.dram_lines = 100;
  c.line_ops = 150;  // low cache-hit fraction
  const EfficiencyReport r =
      assess(bw_model(), {c}, 100000.0, 4, MemKind::kDDR);
  EXPECT_FALSE(r.memory_bound());
  EXPECT_NE(r.verdict.find("NOT memory-bound"), std::string::npos);
}

TEST(Efficiency, FullyMemoryBound) {
  ThreadCounters c;
  c.dram_lines = 1000;
  c.line_ops = 1000;
  const double bytes = 1000.0 * 64;
  const double achievable = bw_model().bw_dram.at_threads(4);
  const EfficiencyReport r = assess(bw_model(), {c}, bytes / achievable, 4,
                                    MemKind::kDDR);
  EXPECT_NEAR(r.overhead_fraction, 0.0, 1e-9);
  EXPECT_TRUE(r.memory_bound());
}

TEST(Efficiency, AggregatesAcrossThreads) {
  ThreadCounters a, b;
  a.l1_hits = 10;
  a.line_ops = 10;
  b.mcdram_lines = 5;
  b.line_ops = 5;
  const EfficiencyReport r =
      assess(bw_model(), {a, b}, 100.0, 2, MemKind::kMCDRAM);
  EXPECT_EQ(r.total_ops, 15u);
  EXPECT_EQ(r.mcdram_lines, 5u);
}

TEST(Efficiency, EmptyCountersHandled) {
  const EfficiencyReport r = assess(bw_model(), {}, 10.0, 1, MemKind::kDDR);
  EXPECT_EQ(r.total_ops, 0u);
  EXPECT_NE(r.verdict.find("no memory operations"), std::string::npos);
}

TEST(Efficiency, RejectsBadInputs) {
  EXPECT_THROW(assess(bw_model(), {}, 0.0, 1, MemKind::kDDR), CheckError);
  EXPECT_THROW(assess(bw_model(), {}, 10.0, 0, MemKind::kDDR), CheckError);
}

TEST(Efficiency, SortRunEndToEnd) {
  // Large sort at few threads should assess as (close to) memory-bound;
  // a tiny sort at many threads as overhead-dominated.
  CapabilityModel m = bw_model();
  sort::SortOptions o;
  o.kind = MemKind::kDDR;
  const sort::SortRun big = sort::parallel_merge_sort(knl7210(), MiB(2), 4, o);
  const EfficiencyReport rb =
      assess(m, big.counters, big.total_ns, 4, MemKind::kDDR);
  const sort::SortRun tiny =
      sort::parallel_merge_sort(knl7210(), KiB(1), 64, o);
  const EfficiencyReport rt =
      assess(m, tiny.counters, tiny.total_ns, 64, MemKind::kDDR);
  EXPECT_LT(rb.overhead_fraction, rt.overhead_fraction);
  EXPECT_GT(rt.overhead_fraction, 0.5);  // 1 KB with 64 threads: overhead
}

}  // namespace
}  // namespace capmem::model
