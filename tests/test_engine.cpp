// Engine semantics: virtual-time ordering, barriers, parking/waking,
// determinism, deadlock detection.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace capmem::sim {
namespace {

TEST(Engine, RunsSingleTaskToCompletion) {
  Engine e(1);
  bool done = false;
  auto prog = [&]() -> Task {
    co_await Advance{10.0};
    co_await Advance{5.0};
    done = true;
  };
  e.spawn(prog());
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 15.0);
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(Engine, InterleavesTasksInVirtualTimeOrder) {
  Engine e(1);
  std::vector<int> order;
  auto prog = [&](int id, Nanos step) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await Advance{step};
      order.push_back(id);
    }
  };
  e.spawn(prog(0, 10.0));  // acts at t=10,20,30
  e.spawn(prog(1, 4.0));   // acts at t=4,8,12
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 0, 1, 0, 0}));
}

TEST(Engine, AdvanceToTakesMax) {
  Engine e(1);
  Nanos observed = -1;
  auto prog = [&]() -> Task {
    co_await Advance{50.0};
    co_await AdvanceTo{20.0};  // in the past: no-op
    co_await AdvanceTo{80.0};
  };
  e.spawn(prog());
  e.run();
  observed = e.now();
  EXPECT_DOUBLE_EQ(observed, 80.0);
}

TEST(Engine, SyncAlignsClocksToMax) {
  Engine e(1);
  std::vector<Nanos> after(2, 0);
  Engine* ep = &e;
  auto prog = [&, ep](int id, Nanos work) -> Task {
    co_await Advance{work};
    co_await SyncPoint{};
    after[static_cast<std::size_t>(id)] =
        ep->task_handle(id).promise().clock;
  };
  e.spawn(prog(0, 100.0));
  e.spawn(prog(1, 7.0));
  e.run();
  EXPECT_DOUBLE_EQ(after[0], 100.0);
  EXPECT_DOUBLE_EQ(after[1], 100.0);
}

TEST(Engine, SyncReleasedWhenOtherTaskFinishes) {
  // One task syncs, the other finishes without syncing: the barrier must
  // release once only live tasks remain.
  Engine e(1);
  bool released = false;
  auto syncer = [&]() -> Task {
    co_await SyncPoint{};
    released = true;
  };
  auto worker = [&]() -> Task { co_await Advance{5.0}; };
  e.spawn(syncer());
  e.spawn(worker());
  e.run();
  EXPECT_TRUE(released);
}

TEST(Engine, ParkAndNotifyWakesWithVisibleTime) {
  Engine e(1);
  Nanos woke_at = -1;
  auto waiter = [&]() -> Task {
    struct ParkOnce {
      Engine* e;
      Nanos* woke_at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        Nanos* w = woke_at;
        e->park(42, h, [h, w](Nanos visible) {
          h.promise().clock = std::max(h.promise().clock, visible);
          *w = h.promise().clock;
          return true;
        });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkOnce{&e, &woke_at};
  };
  auto writer = [&]() -> Task {
    co_await Advance{33.0};
    e.notify(42, 33.0);
  };
  e.spawn(waiter());
  e.spawn(writer());
  e.run();
  EXPECT_DOUBLE_EQ(woke_at, 33.0);
}

TEST(Engine, NotifyKeepsUnsatisfiedWaitersParked) {
  Engine e(1);
  int wakes = 0;
  auto waiter = [&]() -> Task {
    struct ParkTwice {
      Engine* e;
      int* wakes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        int* w = wakes;
        e->park(7, h, [h, w](Nanos visible) {
          ++*w;
          if (*w < 2) return false;  // stay parked on first notify
          h.promise().clock = std::max(h.promise().clock, visible);
          return true;
        });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkTwice{&e, &wakes};
  };
  auto writer = [&]() -> Task {
    co_await Advance{5.0};
    e.notify(7, 5.0);
    co_await Advance{5.0};
    e.notify(7, 10.0);
  };
  e.spawn(waiter());
  e.spawn(writer());
  e.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Engine, DeadlockIsReportedNotHung) {
  Engine e(1);
  auto waiter = [&]() -> Task {
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(99, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(waiter());
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, DeadlockDiagnosticNamesTheStuckTask) {
  // The report must identify *which* task is stuck and when it parked, so a
  // hung benchmark is debuggable from the exception text alone.
  Engine e(1);
  auto waiter = [&]() -> Task {
    co_await Advance{17.0};
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(99, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(waiter());
  try {
    e.run();
    FAIL() << "expected a deadlock report";
  } catch (const CheckError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("tid 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("parked at t=17"), std::string::npos) << msg;
  }
}

TEST(Engine, BarrierMismatchIsDeadlock) {
  Engine e(1);
  auto a = [&]() -> Task { co_await SyncPoint{}; };
  auto b = [&]() -> Task {
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(1, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(a());
  e.spawn(b());
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, TaskExceptionPropagates) {
  Engine e(1);
  auto prog = [&]() -> Task {
    co_await Advance{1.0};
    throw std::runtime_error("boom");
  };
  e.spawn(prog());
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, CallbacksInterleaveWithTasks) {
  Engine e(1);
  std::vector<int> order;
  e.schedule(5.0, [&] { order.push_back(100); });
  e.schedule(15.0, [&] { order.push_back(200); });
  auto prog = [&]() -> Task {
    co_await Advance{10.0};
    order.push_back(1);
    co_await Advance{10.0};
    order.push_back(2);
  };
  e.spawn(prog());
  e.run();
  EXPECT_EQ(order, (std::vector<int>{100, 1, 200, 2}));
}

TEST(Engine, DeterministicStepCount) {
  auto run_once = [] {
    Engine e(123);
    auto prog = [](int n) -> Task {
      for (int i = 0; i < n; ++i) co_await Advance{1.5};
    };
    e.spawn(prog(10));
    e.spawn(prog(20));
    e.run();
    return e.steps();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace capmem::sim
