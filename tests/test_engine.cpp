// Engine semantics: virtual-time ordering, barriers, parking/waking,
// determinism, deadlock detection.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace capmem::sim {
namespace {

TEST(Engine, RunsSingleTaskToCompletion) {
  Engine e(1);
  bool done = false;
  auto prog = [&]() -> Task {
    co_await Advance{10.0};
    co_await Advance{5.0};
    done = true;
  };
  e.spawn(prog());
  e.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(e.now(), 15.0);
  EXPECT_EQ(e.live_tasks(), 0);
}

TEST(Engine, InterleavesTasksInVirtualTimeOrder) {
  Engine e(1);
  std::vector<int> order;
  auto prog = [&](int id, Nanos step) -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await Advance{step};
      order.push_back(id);
    }
  };
  e.spawn(prog(0, 10.0));  // acts at t=10,20,30
  e.spawn(prog(1, 4.0));   // acts at t=4,8,12
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 1, 0, 1, 0, 0}));
}

TEST(Engine, AdvanceToTakesMax) {
  Engine e(1);
  Nanos observed = -1;
  auto prog = [&]() -> Task {
    co_await Advance{50.0};
    co_await AdvanceTo{20.0};  // in the past: no-op
    co_await AdvanceTo{80.0};
  };
  e.spawn(prog());
  e.run();
  observed = e.now();
  EXPECT_DOUBLE_EQ(observed, 80.0);
}

TEST(Engine, SyncAlignsClocksToMax) {
  Engine e(1);
  std::vector<Nanos> after(2, 0);
  Engine* ep = &e;
  auto prog = [&, ep](int id, Nanos work) -> Task {
    co_await Advance{work};
    co_await SyncPoint{};
    after[static_cast<std::size_t>(id)] =
        ep->task_handle(id).promise().clock;
  };
  e.spawn(prog(0, 100.0));
  e.spawn(prog(1, 7.0));
  e.run();
  EXPECT_DOUBLE_EQ(after[0], 100.0);
  EXPECT_DOUBLE_EQ(after[1], 100.0);
}

TEST(Engine, SyncReleasedWhenOtherTaskFinishes) {
  // One task syncs, the other finishes without syncing: the barrier must
  // release once only live tasks remain.
  Engine e(1);
  bool released = false;
  auto syncer = [&]() -> Task {
    co_await SyncPoint{};
    released = true;
  };
  auto worker = [&]() -> Task { co_await Advance{5.0}; };
  e.spawn(syncer());
  e.spawn(worker());
  e.run();
  EXPECT_TRUE(released);
}

TEST(Engine, ParkAndNotifyWakesWithVisibleTime) {
  Engine e(1);
  Nanos woke_at = -1;
  auto waiter = [&]() -> Task {
    struct ParkOnce {
      Engine* e;
      Nanos* woke_at;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        Nanos* w = woke_at;
        e->park(42, h, [h, w](Nanos visible) {
          h.promise().clock = std::max(h.promise().clock, visible);
          *w = h.promise().clock;
          return true;
        });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkOnce{&e, &woke_at};
  };
  auto writer = [&]() -> Task {
    co_await Advance{33.0};
    e.notify(42, 33.0);
  };
  e.spawn(waiter());
  e.spawn(writer());
  e.run();
  EXPECT_DOUBLE_EQ(woke_at, 33.0);
}

TEST(Engine, NotifyKeepsUnsatisfiedWaitersParked) {
  Engine e(1);
  int wakes = 0;
  auto waiter = [&]() -> Task {
    struct ParkTwice {
      Engine* e;
      int* wakes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        int* w = wakes;
        e->park(7, h, [h, w](Nanos visible) {
          ++*w;
          if (*w < 2) return false;  // stay parked on first notify
          h.promise().clock = std::max(h.promise().clock, visible);
          return true;
        });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkTwice{&e, &wakes};
  };
  auto writer = [&]() -> Task {
    co_await Advance{5.0};
    e.notify(7, 5.0);
    co_await Advance{5.0};
    e.notify(7, 10.0);
  };
  e.spawn(waiter());
  e.spawn(writer());
  e.run();
  EXPECT_EQ(wakes, 2);
}

TEST(Engine, DeadlockIsReportedNotHung) {
  Engine e(1);
  auto waiter = [&]() -> Task {
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(99, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(waiter());
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, DeadlockDiagnosticNamesTheStuckTask) {
  // The report must identify *which* task is stuck and when it parked, so a
  // hung benchmark is debuggable from the exception text alone.
  Engine e(1);
  auto waiter = [&]() -> Task {
    co_await Advance{17.0};
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(99, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(waiter());
  try {
    e.run();
    FAIL() << "expected a deadlock report";
  } catch (const CheckError& err) {
    const std::string msg = err.what();
    EXPECT_NE(msg.find("tid 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("parked at t=17"), std::string::npos) << msg;
  }
}

TEST(Engine, DeadlockIsAStructuredSimAbort) {
  // The deadlock report is now a SimAbort: still a CheckError (the two
  // tests above keep catching it), but carrying kind/tid/park-age fields so
  // harnesses can triage without parsing the message, and classified as
  // deterministic — retrying the same seed deadlocks again.
  Engine e(1);
  auto waiter = [&]() -> Task {
    co_await Advance{17.0};
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(99, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(waiter());
  try {
    e.run();
    FAIL() << "expected a deadlock abort";
  } catch (const SimAbort& err) {
    EXPECT_EQ(err.kind(), AbortKind::kDeadlock);
    EXPECT_EQ(err.stuck_tid(), 0);
    EXPECT_EQ(err.failure_class(), FailureClass::kDeterministic);
  }
}

TEST(Engine, StepBudgetTripsLivelockNamingTheStuckTask) {
  // A livelocked schedule — a spinner polling a flag line that is never
  // written — deadlock detection can't catch: there is always a runnable
  // task. The step budget must stop it with the same stuck-task diagnostics
  // the deadlock report carries (mirroring DeadlockDiagnosticNamesTheStuckTask).
  Engine e(1);
  WatchdogBudget wd;
  wd.max_steps = 200;
  e.set_watchdog(wd);
  auto waiter = [&]() -> Task {
    co_await Advance{17.0};
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(55, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};  // tid 0: waits on a line no one writes
  };
  auto spinner = [&]() -> Task {
    for (;;) co_await Advance{1.0};  // tid 1: polls forever
  };
  e.spawn(waiter());
  e.spawn(spinner());
  try {
    e.run();
    FAIL() << "expected the step budget to trip";
  } catch (const SimAbort& err) {
    EXPECT_EQ(err.kind(), AbortKind::kLivelock);
    EXPECT_EQ(err.failure_class(), FailureClass::kTimeout);
    EXPECT_GT(err.steps(), 200u);
    // The longest-parked task is named, with its park age.
    EXPECT_EQ(err.stuck_tid(), 0);
    EXPECT_GT(err.stuck_park_age(), 0.0);
    const std::string msg = err.what();
    EXPECT_NE(msg.find("livelock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("step budget 200 exceeded"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("tid 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("parked at t=17"), std::string::npos) << msg;
  }
}

TEST(Engine, ParkAgeBudgetTripsLivelock) {
  Engine e(1);
  WatchdogBudget wd;
  wd.max_park_age_ns = 100.0;
  e.set_watchdog(wd);
  auto waiter = [&]() -> Task {
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(55, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  auto spinner = [&]() -> Task {
    for (;;) co_await Advance{1.0};
  };
  e.spawn(waiter());
  e.spawn(spinner());
  try {
    e.run();
    FAIL() << "expected the park-age budget to trip";
  } catch (const SimAbort& err) {
    EXPECT_EQ(err.kind(), AbortKind::kLivelock);
    EXPECT_GT(err.stuck_park_age(), 100.0);
  }
}

TEST(Engine, VirtualTimeBudgetTripsBudgetExceeded) {
  Engine e(1);
  WatchdogBudget wd;
  wd.max_virtual_ns = 50.0;
  e.set_watchdog(wd);
  auto runner = [&]() -> Task {
    for (;;) co_await Advance{5.0};
  };
  e.spawn(runner());
  try {
    e.run();
    FAIL() << "expected the virtual-time budget to trip";
  } catch (const SimAbort& err) {
    EXPECT_EQ(err.kind(), AbortKind::kBudgetExceeded);
    EXPECT_EQ(err.failure_class(), FailureClass::kTimeout);
    EXPECT_GT(err.at(), 50.0);
  }
  // And it is still catchable as the historical CheckError.
  Engine e2(1);
  e2.set_watchdog(wd);
  auto runner2 = [&]() -> Task {
    for (;;) co_await Advance{5.0};
  };
  e2.spawn(runner2());
  EXPECT_THROW(e2.run(), CheckError);
}

TEST(Engine, UnarmedWatchdogChangesNothing) {
  // Default budgets (all zero) must leave a long run untouched.
  Engine e(1);
  EXPECT_FALSE(e.watchdog().armed());
  int laps = 0;
  auto runner = [&]() -> Task {
    for (int i = 0; i < 5000; ++i) {
      co_await Advance{1.0};
      ++laps;
    }
  };
  e.spawn(runner());
  e.run();
  EXPECT_EQ(laps, 5000);
}

TEST(Engine, BarrierMismatchIsDeadlock) {
  Engine e(1);
  auto a = [&]() -> Task { co_await SyncPoint{}; };
  auto b = [&]() -> Task {
    struct ParkForever {
      Engine* e;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        e->park(1, h, [](Nanos) { return false; });
      }
      void await_resume() const noexcept {}
    };
    co_await ParkForever{&e};
  };
  e.spawn(a());
  e.spawn(b());
  EXPECT_THROW(e.run(), CheckError);
}

TEST(Engine, TaskExceptionPropagates) {
  Engine e(1);
  auto prog = [&]() -> Task {
    co_await Advance{1.0};
    throw std::runtime_error("boom");
  };
  e.spawn(prog());
  EXPECT_THROW(e.run(), std::runtime_error);
}

TEST(Engine, CallbacksInterleaveWithTasks) {
  Engine e(1);
  std::vector<int> order;
  e.schedule(5.0, [&] { order.push_back(100); });
  e.schedule(15.0, [&] { order.push_back(200); });
  auto prog = [&]() -> Task {
    co_await Advance{10.0};
    order.push_back(1);
    co_await Advance{10.0};
    order.push_back(2);
  };
  e.spawn(prog());
  e.run();
  EXPECT_EQ(order, (std::vector<int>{100, 1, 200, 2}));
}

// --- determinism transcript regression -------------------------------------
//
// A fixed-seed mixed park/unpark/advance/sync/callback schedule whose full
// scheduling trace is compared against the checked-in transcript below. Any
// queue or waiter-table rewrite that reorders resumes, wakeups (including
// the FIFO tie-break on equal timestamps) or barrier releases fails loudly
// here. Refresh recipe after an *intentional* semantic change:
//
//   ./tests/test_engine --gtest_filter=Engine.DeterminismTranscript ^
//       2>/dev/null | sed -n '/BEGIN TRANSCRIPT/,/END TRANSCRIPT/p'
//
// (join the two lines; the continuation marker avoids a multi-line-comment
// warning)
//
// (the test prints the actual transcript between those markers on mismatch;
// paste it over kExpectedTranscript).

namespace transcript {

class TranscriptSink final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& e) override {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s t=%.17g tid=%d line=%llu dur=%.17g a=%d\n",
                  obs::to_string(e.kind), e.t, e.tid,
                  static_cast<unsigned long long>(e.line), e.dur, e.a);
    out += buf;
  }
  std::string out;
};

struct Shared {
  Engine* e;
  // Per-ring-slot flag values plus the observer flag (index 4).
  std::array<std::uint64_t, 5> vals{};
};

/// Sets vals[key] = v and notifies waiters at the writer's current clock
/// (the store-then-notify shape every timed write in machine.cpp has).
struct StoreNotify {
  Shared* s;
  std::size_t key;
  std::uint64_t v;
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) const {
    s->vals[key] = v;
    s->e->notify(key, h.promise().clock);
    s->e->requeue(h);
  }
  void await_resume() const noexcept {}
};

/// Parks until vals[key] >= target (re-checks on every notify; wakes with
/// the store's visibility time, like WaitU64 does).
struct ParkUntil {
  Shared* s;
  std::size_t key;
  std::uint64_t target;
  bool await_ready() const noexcept { return false; }
  void await_suspend(Task::Handle h) const {
    if (s->vals[key] >= target) {
      s->e->requeue(h);
      return;
    }
    Shared* sp = s;
    const std::size_t k = key;
    const std::uint64_t tgt = target;
    s->e->park(k, h, [sp, k, tgt, h](Nanos visible) {
      if (sp->vals[k] < tgt) return false;
      h.promise().clock = std::max(h.promise().clock, visible);
      return true;
    });
  }
  void await_resume() const noexcept {}
};

// The checked-in transcript (see refresh recipe above).
const char kExpectedTranscript[] = R"(task-resume t=0 tid=0 line=0 dur=0 a=-1
task-resume t=0 tid=1 line=0 dur=0 a=-1
task-resume t=0 tid=2 line=0 dur=0 a=-1
task-resume t=0 tid=3 line=0 dur=0 a=-1
task-resume t=0 tid=4 line=0 dur=0 a=-1
task-resume t=0 tid=5 line=0 dur=0 a=-1
task-resume t=0.25 tid=4 line=0 dur=0 a=-1
task-park t=0.25 tid=4 line=4 dur=0 a=-1
task-resume t=0.25 tid=5 line=0 dur=0 a=-1
task-park t=0.25 tid=5 line=4 dur=0 a=-1
task-resume t=1 tid=1 line=0 dur=0 a=-1
task-resume t=1 tid=1 line=0 dur=0 a=-1
task-park t=1 tid=1 line=1 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-unpark t=1 tid=1 line=1 dur=2 a=-1
task-resume t=3 tid=3 line=0 dur=0 a=-1
task-resume t=3 tid=1 line=0 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-resume t=3 tid=3 line=0 dur=0 a=-1
task-park t=3 tid=3 line=3 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-unpark t=0.25 tid=4 line=4 dur=2.75 a=-1
task-unpark t=0.25 tid=5 line=4 dur=2.75 a=-1
task-resume t=3 tid=4 line=0 dur=0 a=-1
task-park t=3 tid=4 line=4 dur=0 a=-1
task-resume t=3 tid=5 line=0 dur=0 a=-1
task-park t=3 tid=5 line=4 dur=0 a=-1
task-resume t=3 tid=0 line=0 dur=0 a=-1
task-park t=3 tid=0 line=0 dur=0 a=-1
task-resume t=3.5 tid=2 line=0 dur=0 a=-1
task-unpark t=3 tid=3 line=3 dur=0.5 a=-1
task-resume t=3.5 tid=1 line=0 dur=0 a=-1
task-resume t=3.5 tid=3 line=0 dur=0 a=-1
task-resume t=3.5 tid=2 line=0 dur=0 a=-1
task-resume t=3.5 tid=1 line=0 dur=0 a=-1
task-resume t=3.5 tid=2 line=0 dur=0 a=-1
task-resume t=3.5 tid=1 line=0 dur=0 a=-1
task-resume t=5.5 tid=1 line=0 dur=0 a=-1
task-resume t=5.5 tid=1 line=0 dur=0 a=-1
task-park t=5.5 tid=1 line=1 dur=0 a=-1
task-resume t=6 tid=2 line=0 dur=0 a=-1
task-resume t=6 tid=2 line=0 dur=0 a=-1
task-resume t=6 tid=2 line=0 dur=0 a=-1
task-resume t=6.5 tid=3 line=0 dur=0 a=-1
task-unpark t=3 tid=0 line=0 dur=3.5 a=-1
task-resume t=6.5 tid=2 line=0 dur=0 a=-1
task-resume t=6.5 tid=0 line=0 dur=0 a=-1
task-resume t=6.5 tid=3 line=0 dur=0 a=-1
task-resume t=6.5 tid=2 line=0 dur=0 a=-1
task-resume t=6.5 tid=3 line=0 dur=0 a=-1
task-resume t=6.5 tid=2 line=0 dur=0 a=-1
task-resume t=7 tid=3 line=0 dur=0 a=-1
task-resume t=7 tid=2 line=0 dur=0 a=-1
task-resume t=7 tid=3 line=0 dur=0 a=-1
task-resume t=7 tid=2 line=0 dur=0 a=-1
task-park t=7 tid=2 line=2 dur=0 a=-1
task-resume t=7 tid=3 line=0 dur=0 a=-1
task-resume t=8 tid=3 line=0 dur=0 a=-1
task-resume t=8 tid=3 line=0 dur=0 a=-1
task-resume t=8 tid=3 line=0 dur=0 a=-1
task-resume t=9 tid=0 line=0 dur=0 a=-1
task-unpark t=5.5 tid=1 line=1 dur=3.5 a=-1
task-resume t=9 tid=1 line=0 dur=0 a=-1
task-resume t=9 tid=0 line=0 dur=0 a=-1
task-resume t=9 tid=0 line=0 dur=0 a=-1
task-resume t=9 tid=0 line=0 dur=0 a=-1
task-resume t=10.5 tid=0 line=0 dur=0 a=-1
task-resume t=10.5 tid=0 line=0 dur=0 a=-1
task-unpark t=3 tid=4 line=4 dur=7.5 a=-1
task-unpark t=3 tid=5 line=4 dur=7.5 a=-1
task-resume t=10.5 tid=4 line=0 dur=0 a=-1
task-resume t=10.5 tid=5 line=0 dur=0 a=-1
task-resume t=10.5 tid=0 line=0 dur=0 a=-1
task-resume t=10.5 tid=0 line=0 dur=0 a=-1
task-resume t=12 tid=1 line=0 dur=0 a=-1
task-unpark t=7 tid=2 line=2 dur=5 a=-1
task-resume t=12 tid=2 line=0 dur=0 a=-1
task-resume t=12 tid=1 line=0 dur=0 a=-1
task-resume t=12 tid=1 line=0 dur=0 a=-1
sync-release t=12 tid=-1 line=0 dur=0 a=6
task-resume t=12 tid=3 line=0 dur=0 a=-1
task-finish t=12 tid=3 line=0 dur=0 a=-1
task-resume t=12 tid=4 line=0 dur=0 a=-1
task-finish t=12 tid=4 line=0 dur=0 a=-1
task-resume t=12 tid=5 line=0 dur=0 a=-1
task-finish t=12 tid=5 line=0 dur=0 a=-1
task-resume t=12 tid=0 line=0 dur=0 a=-1
task-finish t=12 tid=0 line=0 dur=0 a=-1
task-resume t=12 tid=2 line=0 dur=0 a=-1
task-finish t=12 tid=2 line=0 dur=0 a=-1
task-resume t=12 tid=1 line=0 dur=0 a=-1
task-finish t=12 tid=1 line=0 dur=0 a=-1
steps=72 now=12
)";

}  // namespace transcript

TEST(Engine, DeterminismTranscript) {
  using namespace transcript;
  constexpr int kRing = 4;
  constexpr int kRounds = 4;
  Engine e(2026);
  TranscriptSink sink;
  e.set_trace(&sink);
  Shared s{&e, {}};

  // Ring tasks: advance a per-task deterministic jitter (quantized so equal
  // timestamps and the FIFO tie-break actually occur), signal the right
  // neighbour's flag, then wait for our own — a neighbour barrier. Task 0
  // also bumps the observer flag each round. Everyone joins one final
  // engine barrier.
  auto ring = [&s](int i) -> Task {
    Rng rng(1000 + static_cast<std::uint64_t>(i));
    for (std::uint64_t r = 1; r <= kRounds; ++r) {
      co_await Advance{0.5 * static_cast<double>(rng.next_below(8))};
      co_await StoreNotify{&s, static_cast<std::size_t>((i + 1) % kRing), r};
      if (i == 0) co_await StoreNotify{&s, 4, r};
      co_await ParkUntil{&s, static_cast<std::size_t>(i), r};
    }
    co_await SyncPoint{};
  };
  // Two observers parked on the same key with the same target: one notify
  // satisfies both, pinning the FIFO wake order on a shared waiter list.
  auto observer = [&s](Nanos skew) -> Task {
    co_await Advance{skew};
    for (std::uint64_t r = 1; r <= 2; ++r) {
      co_await ParkUntil{&s, 4, 2 * r};
    }
    co_await SyncPoint{};
  };
  for (int i = 0; i < kRing; ++i) e.spawn(ring(i));
  e.spawn(observer(0.25));
  e.spawn(observer(0.25));
  // Bare callbacks interleaved with task steps; the no-op notifies must not
  // wake anyone (predicates re-check the flag value).
  e.schedule(1.25, [&s] { s.e->notify(0, 1.25); });
  e.schedule(3.25, [&s] { s.e->notify(4, 3.25); });
  e.run();

  char foot[64];
  std::snprintf(foot, sizeof foot, "steps=%llu now=%.17g\n",
                static_cast<unsigned long long>(e.steps()), e.now());
  sink.out += foot;
  if (sink.out != kExpectedTranscript) {
    std::printf("BEGIN TRANSCRIPT\n%sEND TRANSCRIPT\n", sink.out.c_str());
  }
  EXPECT_EQ(sink.out, kExpectedTranscript)
      << "scheduling order changed; see refresh recipe above";
}

TEST(Engine, ParkTableReclaimsSlotsAcrossCycles) {
  // Regression for the park table growing monotonically: waiters used to
  // stay in the table (as empty lists) after wake-all, so a run touching
  // many distinct wait keys leaked one slot per key. Park/wake 200 distinct
  // keys with at most one parked at a time; the pool high-water mark must
  // reflect the concurrency (1), not the key count.
  Engine e(1);
  constexpr int kCycles = 200;
  int wakes = 0;
  auto key_of = [](int c) { return 1000ull + static_cast<std::uint64_t>(c); };
  auto waiter = [&]() -> Task {
    struct ParkOn {
      Engine* e;
      std::uint64_t key;
      int* wakes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(Task::Handle h) const {
        int* w = wakes;
        e->park(key, h, [h, w](Nanos visible) {
          h.promise().clock = std::max(h.promise().clock, visible);
          ++*w;
          return true;
        });
      }
      void await_resume() const noexcept {}
    };
    for (int c = 0; c < kCycles; ++c) {
      co_await ParkOn{&e, key_of(c), &wakes};
    }
  };
  auto writer = [&]() -> Task {
    Nanos t = 0;
    for (int c = 0; c < kCycles; ++c) {
      co_await Advance{1.0};
      t += 1.0;
      e.notify(key_of(c), t);
    }
  };
  e.spawn(waiter());
  e.spawn(writer());
  e.run();
  EXPECT_EQ(wakes, kCycles);
  EXPECT_EQ(e.parked_keys(), 0u);
  EXPECT_LE(e.parked_pool_slots(), 2u);
}

TEST(Engine, DeterministicStepCount) {
  auto run_once = [] {
    Engine e(123);
    auto prog = [](int n) -> Task {
      for (int i = 0; i < n; ++i) co_await Advance{1.5};
    };
    e.spawn(prog(10));
    e.spawn(prog(20));
    e.run();
    return e.steps();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace capmem::sim
