// Property tests for the calendar run queue (sim/event_queue.hpp): on any
// schedule the engine can produce, pop order must be IDENTICAL to a
// reference std::priority_queue ordered by (t, then push sequence) — the
// FIFO tie-break the simulator's determinism depends on. The randomized
// scenarios stress each structural edge separately: dense near-future
// bursts (ring fast path), same-timestamp storms (per-bucket heap + seq
// tie-break), far-future pushes (overflow heap drain), and slightly-late
// pushes (epsilon clamp into the base bucket).
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"

namespace capmem::sim {
namespace {

// Reference model: a binary heap on (t, seq). seq is assigned in push
// order, so equal timestamps leave in FIFO order — the exact contract the
// engine relied on with std::priority_queue before the calendar queue.
class RefQueue {
 public:
  void push(Nanos t, std::uint64_t payload) {
    q_.push(EventQueue::Entry{t, seq_++, payload});
  }
  EventQueue::Entry pop_min() {
    EventQueue::Entry e = q_.top();
    q_.pop();
    return e;
  }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

 private:
  std::priority_queue<EventQueue::Entry, std::vector<EventQueue::Entry>,
                      std::greater<EventQueue::Entry>>
      q_;
  std::uint64_t seq_ = 0;
};

// Drives both queues through `ops` randomized operations drawn by `next_t`
// (given the timestamp of the most recent pop) and checks every popped
// (t, seq, payload) triple matches.
template <typename NextT>
void run_lockstep(std::uint64_t seed, int ops, double push_bias,
                  NextT&& next_t) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  EventQueue dut;
  RefQueue ref;
  Nanos now = 0;
  std::uint64_t payload = 0;
  for (int i = 0; i < ops; ++i) {
    const bool do_push = ref.empty() || coin(rng) < push_bias;
    if (do_push) {
      const Nanos t = next_t(rng, now);
      dut.push(t, payload);
      ref.push(t, payload);
      ++payload;
    } else {
      ASSERT_EQ(dut.size(), ref.size());
      const EventQueue::Entry got = dut.pop_min();
      const EventQueue::Entry want = ref.pop_min();
      ASSERT_EQ(got.t, want.t) << "op " << i;
      ASSERT_EQ(got.seq, want.seq) << "op " << i;
      ASSERT_EQ(got.payload, want.payload) << "op " << i;
      now = got.t;
    }
  }
  while (!ref.empty()) {
    ASSERT_FALSE(dut.empty());
    const EventQueue::Entry got = dut.pop_min();
    const EventQueue::Entry want = ref.pop_min();
    ASSERT_EQ(got.t, want.t);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(dut.empty());
  EXPECT_EQ(dut.size(), 0u);
}

TEST(EventQueue, PopsInPushOrderForEqualTimestamps) {
  EventQueue q;
  for (std::uint64_t p = 0; p < 100; ++p) q.push(42.0, p);
  for (std::uint64_t p = 0; p < 100; ++p) {
    const EventQueue::Entry e = q.pop_min();
    EXPECT_EQ(e.t, 42.0);
    EXPECT_EQ(e.payload, p);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, InterleavesAcrossBucketsAndOverflow) {
  // Deterministic mix hitting base bucket, distinct ring buckets, and the
  // overflow heap (beyond the 1024 * 2 ns window) in one schedule.
  EventQueue q;
  RefQueue ref;
  const double ts[] = {0.0, 0.5, 3000.0, 1.0, 0.5, 5000.0, 2047.9, 2048.1,
                       0.0, 10000.0, 1.0};
  std::uint64_t p = 0;
  for (double t : ts) {
    q.push(t, p);
    ref.push(t, p);
    ++p;
  }
  while (!ref.empty()) {
    const EventQueue::Entry got = q.pop_min();
    const EventQueue::Entry want = ref.pop_min();
    ASSERT_EQ(got.t, want.t);
    ASSERT_EQ(got.seq, want.seq);
    ASSERT_EQ(got.payload, want.payload);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedNearFutureSchedule) {
  // The engine's common case: every push lands within a few hundred ns of
  // the current virtual time.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    std::uniform_real_distribution<double> d(0.0, 400.0);
    run_lockstep(seed, 10000, 0.55, [&](std::mt19937_64& rng, Nanos now) {
      return now + d(rng);
    });
  }
}

TEST(EventQueue, RandomizedSameTimestampStorms) {
  // Barrier releases: long runs of identical timestamps, where only the
  // seq tie-break distinguishes entries.
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    std::uniform_int_distribution<int> step(0, 4);
    run_lockstep(seed, 10000, 0.6, [&](std::mt19937_64& rng, Nanos now) {
      // ~80% of pushes reuse the current time exactly.
      return now + (step(rng) == 0 ? 1.0 : 0.0);
    });
  }
}

TEST(EventQueue, RandomizedFarFutureOverflow) {
  // Heavy-tailed deltas: most pushes in-window, a steady stream far past
  // the 2 us window end so the overflow heap continuously drains.
  for (std::uint64_t seed = 20; seed <= 23; ++seed) {
    std::uniform_real_distribution<double> near(0.0, 100.0);
    std::uniform_real_distribution<double> far(2000.0, 500000.0);
    std::uniform_int_distribution<int> tail(0, 3);
    run_lockstep(seed, 10000, 0.55, [&](std::mt19937_64& rng, Nanos now) {
      return now + (tail(rng) == 0 ? far(rng) : near(rng));
    });
  }
}

TEST(EventQueue, RandomizedEpsilonLatePushes) {
  // The engine tolerates pushes a hair before the last popped time (FP
  // rounding in latency sums); the queue clamps them into the base bucket
  // without reordering anything already popped.
  for (std::uint64_t seed = 30; seed <= 33; ++seed) {
    std::uniform_real_distribution<double> d(0.0, 50.0);
    std::uniform_int_distribution<int> late(0, 9);
    run_lockstep(seed, 10000, 0.55, [&](std::mt19937_64& rng, Nanos now) {
      if (late(rng) == 0 && now > 1.0) return now - 1e-9;  // epsilon-late
      return now + d(rng);
    });
  }
}

TEST(EventQueue, RandomizedMixedRegime) {
  // Everything at once, longer sequences: drain-to-empty phases (push_bias
  // well under 0.5 forces repeated empty restarts, re-anchoring the window).
  for (std::uint64_t seed = 40; seed <= 42; ++seed) {
    std::uniform_real_distribution<double> near(0.0, 300.0);
    std::uniform_real_distribution<double> far(2000.0, 50000.0);
    std::uniform_int_distribution<int> kind(0, 9);
    run_lockstep(seed, 10000, 0.45, [&](std::mt19937_64& rng, Nanos now) {
      const int k = kind(rng);
      if (k == 0) return now + far(rng);
      if (k <= 3) return now;  // exact tie
      return now + near(rng);
    });
  }
}

}  // namespace
}  // namespace capmem::sim
