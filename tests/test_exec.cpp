// Tests of the parallel experiment-execution layer: the worker pool, the
// deterministic seed derivation, the Experiment runner, and the contract
// the whole layer exists for — suite results that are bit-identical no
// matter how many host workers execute the cells.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "bench/suite.hpp"
#include "coll/harness.hpp"
#include "exec/experiment.hpp"
#include "exec/pool.hpp"
#include "exec/recovery.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace capmem::exec {
namespace {

TEST(Seed, DerivationIsStable) {
  // Pure function of its inputs — same value on every call.
  for (std::uint64_t base : {0ull, 1ull, 99ull, 0xdeadbeefull}) {
    EXPECT_EQ(derive_seed(base, 3, 7), derive_seed(base, 3, 7));
  }
  // And sensitive to every component.
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(1, 1, 0));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(1, 0, 1));
}

TEST(Seed, NoCollisionsAcrossConfigTrialGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 64; ++c) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      EXPECT_TRUE(seen.insert(derive_seed(1, c, t)).second)
          << "collision at config " << c << " trial " << t;
    }
  }
  // Swapping config and trial must not alias either.
  EXPECT_NE(derive_seed(1, 2, 5), derive_seed(1, 5, 2));
}

TEST(Pool, RunsSubmittedWork) {
  Pool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(Pool, PropagatesExceptions) {
  Pool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(RunJobs, ExecutesAllJobsSerialAndParallel) {
  for (int workers : {1, 8}) {
    std::vector<int> done(64, 0);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 64; ++i) {
      jobs.push_back([&done, i] { done[static_cast<std::size_t>(i)] = i + 1; });
    }
    run_jobs(std::move(jobs), workers);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(done[static_cast<std::size_t>(i)], i + 1);
    }
  }
}

TEST(RunJobs, RethrowsFirstExceptionBySubmissionOrder) {
  for (int workers : {1, 4}) {
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] {});
    jobs.push_back([] { throw std::runtime_error("first"); });
    jobs.push_back([] { throw std::logic_error("second"); });
    try {
      run_jobs(std::move(jobs), workers);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(RunJobsCollect, ReportsEveryFailureInSubmissionOrder) {
  for (int workers : {1, 4}) {
    std::vector<int> done(4, 0);
    std::vector<std::function<void()>> jobs;
    jobs.push_back([&done] { done[0] = 1; });
    jobs.push_back([] { throw std::runtime_error("first"); });
    jobs.push_back([&done] { done[2] = 1; });
    jobs.push_back([] { throw std::logic_error("second"); });
    const auto errors = run_jobs_collect(std::move(jobs), workers);
    // Every job ran — a throwing job no longer stops its siblings, even on
    // the serial path.
    EXPECT_EQ(done[0], 1);
    EXPECT_EQ(done[2], 1);
    ASSERT_EQ(errors.size(), 2u);
    EXPECT_EQ(errors[0].job, 1u);
    EXPECT_EQ(errors[1].job, 3u);
    EXPECT_THROW(std::rethrow_exception(errors[0].error),
                 std::runtime_error);
    EXPECT_THROW(std::rethrow_exception(errors[1].error), std::logic_error);
  }
}

TEST(RunJobs, FailureHandlerSeesEveryFailureWithoutRethrow) {
  std::vector<std::size_t> seen;
  auto previous = set_job_failure_handler(
      [&seen](std::size_t job, std::exception_ptr) { seen.push_back(job); });
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("a"); });
  jobs.push_back([] {});
  jobs.push_back([] { throw std::runtime_error("b"); });
  run_jobs(std::move(jobs), 4);  // must not throw: the handler absorbs
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 2}));
  // Restore whatever was installed before (usually null).
  set_job_failure_handler(std::move(previous));
}

TEST(RunJobsRecover, SiblingJobsSurviveADeadlockedSimulation) {
  // Regression for the --jobs N hazard: one simulation deadlocking used to
  // tear down the whole batch. Under recovery the deadlock is quarantined
  // (deterministic — same seed deadlocks again) and every sibling completes.
  for (int workers : {1, 4}) {
    std::vector<int> done(6, 0);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 6; ++i) {
      if (i == 2) {
        jobs.push_back([] {
          sim::Engine e(1);
          auto waiter = [&]() -> sim::Task {
            struct ParkForever {
              sim::Engine* e;
              bool await_ready() const noexcept { return false; }
              void await_suspend(sim::Task::Handle h) const {
                e->park(9, h, [](Nanos) { return false; });
              }
              void await_resume() const noexcept {}
            };
            co_await ParkForever{&e};
          };
          e.spawn(waiter());
          e.run();  // throws sim::SimAbort (deadlock)
        });
      } else {
        jobs.push_back([&done, i] { done[static_cast<std::size_t>(i)] = 1; });
      }
    }
    RecoveryOptions opts;
    opts.retry.sleep = false;
    const BatchReport rep = run_jobs_recover(std::move(jobs), workers, opts);
    for (int i = 0; i < 6; ++i) {
      if (i != 2) EXPECT_EQ(done[static_cast<std::size_t>(i)], 1) << i;
    }
    EXPECT_EQ(rep.jobs, 6u);
    EXPECT_EQ(rep.ok, 5u);
    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_EQ(rep.retried, 0u);  // deterministic: retry would not help
    ASSERT_EQ(rep.failures.size(), 1u);
    EXPECT_EQ(rep.failures[0].job, 2u);
    EXPECT_EQ(rep.failures[0].status, JobStatus::kQuarantined);
    EXPECT_EQ(rep.failures[0].cls, FailureClass::kDeterministic);
    EXPECT_EQ(rep.failures[0].attempts, 1);
    EXPECT_NE(rep.failures[0].error.find("deadlock"), std::string::npos);
  }
}

TEST(RunJobsRecover, RetryReinvokesTheSameJobWithTheSameSeed) {
  // A transiently-failing job is re-invoked as the *same* functor: a job
  // deriving its seed via derive_seed sees the identical seed on retry.
  std::vector<std::uint64_t> seeds_seen;
  int attempts = 0;
  std::vector<std::function<void()>> jobs;
  jobs.push_back([&seeds_seen, &attempts] {
    seeds_seen.push_back(derive_seed(7, 2, 5));
    if (++attempts == 1) {
      throw std::system_error(
          std::make_error_code(std::errc::resource_unavailable_try_again),
          "flaky host");
    }
  });
  RecoveryOptions opts;
  opts.retry.sleep = false;
  const BatchReport rep = run_jobs_recover(std::move(jobs), 1, opts);
  EXPECT_TRUE(rep.all_ok());
  EXPECT_EQ(rep.ok, 1u);
  EXPECT_EQ(rep.retried, 1u);
  ASSERT_EQ(seeds_seen.size(), 2u);
  EXPECT_EQ(seeds_seen[0], derive_seed(7, 2, 5));
  EXPECT_EQ(seeds_seen[0], seeds_seen[1]);
}

TEST(RunJobsRecover, SummaryIsByteIdenticalAcrossWorkerCounts) {
  // One quarantine, one persistent transient failure, one timeout, five ok:
  // the report (counts, order, text) must not depend on --jobs.
  const auto run_batch = [](int workers) {
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 8; ++i) {
      if (i == 2) {
        jobs.push_back([] { throw std::logic_error("bad cell"); });
      } else if (i == 5) {
        jobs.push_back([] {
          throw std::system_error(
              std::make_error_code(
                  std::errc::resource_unavailable_try_again),
              "always flaky");
        });
      } else if (i == 6) {
        jobs.push_back([] {
          throw sim::SimAbort(sim::AbortKind::kLivelock,
                              "step budget 10 exceeded", 1.0, 11, 0, 1.0);
        });
      } else {
        jobs.push_back([] {});
      }
    }
    RecoveryOptions opts;
    opts.retry.sleep = false;
    return run_jobs_recover(std::move(jobs), workers, opts);
  };
  const BatchReport serial = run_batch(1);
  const BatchReport parallel = run_batch(8);
  EXPECT_EQ(serial.summary(), parallel.summary());
  EXPECT_EQ(serial.jobs, 8u);
  EXPECT_EQ(serial.ok, 5u);
  EXPECT_EQ(serial.quarantined, 1u);
  EXPECT_EQ(serial.failed, 1u);
  EXPECT_EQ(serial.timed_out, 1u);
  EXPECT_EQ(serial.retried, 1u);  // only the transient job retried
  ASSERT_EQ(serial.failures.size(), 3u);
  EXPECT_EQ(serial.failures[0].job, 2u);
  EXPECT_EQ(serial.failures[1].job, 5u);
  EXPECT_EQ(serial.failures[1].attempts, 3);  // default max_attempts
  EXPECT_EQ(serial.failures[2].job, 6u);
  EXPECT_EQ(serial.failures[2].status, JobStatus::kTimedOut);
}

TEST(TryParallelMap, DeliversResultsAndReportTogether) {
  const auto [results, rep] = try_parallel_map<int>(
      10, 4, [](int i) {
        if (i == 3) throw std::logic_error("cell 3 is cursed");
        return i * i;
      });
  EXPECT_EQ(rep.ok, 9u);
  EXPECT_EQ(rep.quarantined, 1u);
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Experiment, SeedsFollowDerivationAndReduceSeesTrialOrder) {
  Experiment<int, std::vector<std::uint64_t>> e;
  e.configs = {10, 20, 30};
  e.trials = 4;
  e.base_seed = 42;
  e.program = [](int /*cfg*/, const Trial& t) {
    return std::vector<std::uint64_t>{t.seed};
  };
  e.reduce = [](int /*cfg*/, std::vector<std::vector<std::uint64_t>>&& rs) {
    std::vector<std::uint64_t> flat;
    for (auto& r : rs) flat.push_back(r[0]);
    return flat;
  };
  const auto serial = run_experiment(e, 1);
  const auto parallel = run_experiment(e, 8);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial, parallel);
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), 4u);
    for (std::size_t t = 0; t < serial[c].size(); ++t) {
      EXPECT_EQ(serial[c][t], derive_seed(42, c, t));
    }
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto serial = parallel_map<int>(33, 1, [](int i) { return i * i; });
  const auto parallel = parallel_map<int>(33, 8, [](int i) { return i * i; });
  EXPECT_EQ(serial, parallel);
  for (int i = 0; i < 33; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)], i * i);
  }
}

// --- Suite bit-identity across worker counts -----------------------------

void expect_same(const Summary& a, const Summary& b, const char* what) {
  EXPECT_EQ(a.n, b.n) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.q1, b.q1) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.q3, b.q3) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
}

void expect_same(const LinearFit& a, const LinearFit& b, const char* what) {
  EXPECT_EQ(a.alpha, b.alpha) << what;
  EXPECT_EQ(a.beta, b.beta) << what;
  EXPECT_EQ(a.r2, b.r2) << what;
}

void expect_same(const bench::Series& a, const bench::Series& b,
                 const char* what) {
  EXPECT_EQ(a.name, b.name) << what;
  EXPECT_EQ(a.xs, b.xs) << what;
  ASSERT_EQ(a.ys.size(), b.ys.size()) << what;
  for (std::size_t i = 0; i < a.ys.size(); ++i) {
    expect_same(a.ys[i], b.ys[i], what);
  }
}

void expect_same_suite(const bench::SuiteResults& a,
                       const bench::SuiteResults& b) {
  expect_same(a.lat_l1, b.lat_l1, "lat_l1");
  expect_same(a.lat_tile_m, b.lat_tile_m, "lat_tile_m");
  expect_same(a.lat_tile_e, b.lat_tile_e, "lat_tile_e");
  expect_same(a.lat_tile_sf, b.lat_tile_sf, "lat_tile_sf");
  expect_same(a.lat_remote_m, b.lat_remote_m, "lat_remote_m");
  expect_same(a.lat_remote_e, b.lat_remote_e, "lat_remote_e");
  expect_same(a.lat_remote_sf, b.lat_remote_sf, "lat_remote_sf");
  EXPECT_EQ(a.range_remote_m.lo, b.range_remote_m.lo);
  EXPECT_EQ(a.range_remote_m.hi, b.range_remote_m.hi);
  EXPECT_EQ(a.range_remote_e.lo, b.range_remote_e.lo);
  EXPECT_EQ(a.range_remote_e.hi, b.range_remote_e.hi);
  EXPECT_EQ(a.range_remote_sf.lo, b.range_remote_sf.lo);
  EXPECT_EQ(a.range_remote_sf.hi, b.range_remote_sf.hi);
  expect_same(a.bw_read_remote, b.bw_read_remote, "bw_read_remote");
  expect_same(a.bw_copy_tile_m, b.bw_copy_tile_m, "bw_copy_tile_m");
  expect_same(a.bw_copy_tile_e, b.bw_copy_tile_e, "bw_copy_tile_e");
  expect_same(a.bw_copy_remote, b.bw_copy_remote, "bw_copy_remote");
  expect_same(a.multiline_ns, b.multiline_ns, "multiline_ns");
  expect_same(a.contention.fit, b.contention.fit, "contention.fit");
  expect_same(a.contention.per_n, b.contention.per_n, "contention.per_n");
  expect_same(a.congestion.latency_vs_pairs, b.congestion.latency_vs_pairs,
              "congestion");
  EXPECT_EQ(a.congestion.ratio, b.congestion.ratio);
  expect_same(a.mem_lat_dram, b.mem_lat_dram, "mem_lat_dram");
  ASSERT_EQ(a.mem_lat_mcdram.has_value(), b.mem_lat_mcdram.has_value());
  if (a.mem_lat_mcdram) {
    expect_same(*a.mem_lat_mcdram, *b.mem_lat_mcdram, "mem_lat_mcdram");
  }
}

TEST(Suite, BitIdenticalAcrossWorkerCounts) {
  bench::SuiteOptions o;
  o.run.iters = 9;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  const sim::MachineConfig cfg = sim::knl7210();

  o.jobs = 1;
  const bench::SuiteResults serial = bench::run_suite(cfg, o);
  o.jobs = 8;
  const bench::SuiteResults parallel = bench::run_suite(cfg, o);
  expect_same_suite(serial, parallel);
}

TEST(Suite, BitIdenticalWithObservabilityAttached) {
  // Attaching trace + metrics sinks (and the process registry that turns on
  // exec profiling) must leave every virtual-time result bit-identical:
  // sinks observe, never steer — even under parallel host execution.
  bench::SuiteOptions o;
  o.run.iters = 9;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  o.jobs = 8;
  const sim::MachineConfig bare_cfg = sim::knl7210();
  const bench::SuiteResults bare = bench::run_suite(bare_cfg, o);

  obs::NullSink sink;
  obs::Registry reg;
  obs::set_process_registry(&reg);
  sim::MachineConfig traced_cfg = sim::knl7210();
  traced_cfg.trace = &sink;
  traced_cfg.metrics = &reg;
  const bench::SuiteResults traced = bench::run_suite(traced_cfg, o);
  obs::set_process_registry(nullptr);

  expect_same_suite(bare, traced);
  // And observation did actually happen.
  EXPECT_GT(reg.counter("sim.machines"), 0.0);
  EXPECT_GT(reg.counter("exec.jobs"), 0.0);
}

TEST(CollSweep, MatchesSerialRuns) {
  const sim::MachineConfig cfg = sim::tiny_machine();
  coll::HarnessOptions ho;
  ho.iters = 11;
  const std::vector<coll::SweepPoint> points{
      {coll::Algo::kOmpBarrier, 4},
      {coll::Algo::kMpiBarrier, 8},
      {coll::Algo::kOmpBroadcast, 4},
  };
  const auto swept =
      coll::run_collective_sweep(cfg, points, nullptr, ho, 8);
  ASSERT_EQ(swept.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto direct = coll::run_collective(cfg, points[i].algo,
                                             points[i].nthreads, nullptr, ho);
    expect_same(swept[i].per_iter_max, direct.per_iter_max, "coll sweep");
    EXPECT_EQ(swept[i].errors, direct.errors);
  }
}

}  // namespace
}  // namespace capmem::exec
