// Tests of the parallel experiment-execution layer: the worker pool, the
// deterministic seed derivation, the Experiment runner, and the contract
// the whole layer exists for — suite results that are bit-identical no
// matter how many host workers execute the cells.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "bench/suite.hpp"
#include "coll/harness.hpp"
#include "exec/experiment.hpp"
#include "exec/pool.hpp"
#include "exec/seed.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace capmem::exec {
namespace {

TEST(Seed, DerivationIsStable) {
  // Pure function of its inputs — same value on every call.
  for (std::uint64_t base : {0ull, 1ull, 99ull, 0xdeadbeefull}) {
    EXPECT_EQ(derive_seed(base, 3, 7), derive_seed(base, 3, 7));
  }
  // And sensitive to every component.
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(2, 0, 0));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(1, 1, 0));
  EXPECT_NE(derive_seed(1, 0, 0), derive_seed(1, 0, 1));
}

TEST(Seed, NoCollisionsAcrossConfigTrialGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < 64; ++c) {
    for (std::uint64_t t = 0; t < 64; ++t) {
      EXPECT_TRUE(seen.insert(derive_seed(1, c, t)).second)
          << "collision at config " << c << " trial " << t;
    }
  }
  // Swapping config and trial must not alias either.
  EXPECT_NE(derive_seed(1, 2, 5), derive_seed(1, 5, 2));
}

TEST(Pool, RunsSubmittedWork) {
  Pool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(Pool, PropagatesExceptions) {
  Pool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(RunJobs, ExecutesAllJobsSerialAndParallel) {
  for (int workers : {1, 8}) {
    std::vector<int> done(64, 0);
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 64; ++i) {
      jobs.push_back([&done, i] { done[static_cast<std::size_t>(i)] = i + 1; });
    }
    run_jobs(std::move(jobs), workers);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(done[static_cast<std::size_t>(i)], i + 1);
    }
  }
}

TEST(RunJobs, RethrowsFirstExceptionBySubmissionOrder) {
  for (int workers : {1, 4}) {
    std::vector<std::function<void()>> jobs;
    jobs.push_back([] {});
    jobs.push_back([] { throw std::runtime_error("first"); });
    jobs.push_back([] { throw std::logic_error("second"); });
    try {
      run_jobs(std::move(jobs), workers);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "first");
    }
  }
}

TEST(Experiment, SeedsFollowDerivationAndReduceSeesTrialOrder) {
  Experiment<int, std::vector<std::uint64_t>> e;
  e.configs = {10, 20, 30};
  e.trials = 4;
  e.base_seed = 42;
  e.program = [](int /*cfg*/, const Trial& t) {
    return std::vector<std::uint64_t>{t.seed};
  };
  e.reduce = [](int /*cfg*/, std::vector<std::vector<std::uint64_t>>&& rs) {
    std::vector<std::uint64_t> flat;
    for (auto& r : rs) flat.push_back(r[0]);
    return flat;
  };
  const auto serial = run_experiment(e, 1);
  const auto parallel = run_experiment(e, 8);
  ASSERT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial, parallel);
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), 4u);
    for (std::size_t t = 0; t < serial[c].size(); ++t) {
      EXPECT_EQ(serial[c][t], derive_seed(42, c, t));
    }
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  const auto serial = parallel_map<int>(33, 1, [](int i) { return i * i; });
  const auto parallel = parallel_map<int>(33, 8, [](int i) { return i * i; });
  EXPECT_EQ(serial, parallel);
  for (int i = 0; i < 33; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)], i * i);
  }
}

// --- Suite bit-identity across worker counts -----------------------------

void expect_same(const Summary& a, const Summary& b, const char* what) {
  EXPECT_EQ(a.n, b.n) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.q1, b.q1) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.q3, b.q3) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
}

void expect_same(const LinearFit& a, const LinearFit& b, const char* what) {
  EXPECT_EQ(a.alpha, b.alpha) << what;
  EXPECT_EQ(a.beta, b.beta) << what;
  EXPECT_EQ(a.r2, b.r2) << what;
}

void expect_same(const bench::Series& a, const bench::Series& b,
                 const char* what) {
  EXPECT_EQ(a.name, b.name) << what;
  EXPECT_EQ(a.xs, b.xs) << what;
  ASSERT_EQ(a.ys.size(), b.ys.size()) << what;
  for (std::size_t i = 0; i < a.ys.size(); ++i) {
    expect_same(a.ys[i], b.ys[i], what);
  }
}

void expect_same_suite(const bench::SuiteResults& a,
                       const bench::SuiteResults& b) {
  expect_same(a.lat_l1, b.lat_l1, "lat_l1");
  expect_same(a.lat_tile_m, b.lat_tile_m, "lat_tile_m");
  expect_same(a.lat_tile_e, b.lat_tile_e, "lat_tile_e");
  expect_same(a.lat_tile_sf, b.lat_tile_sf, "lat_tile_sf");
  expect_same(a.lat_remote_m, b.lat_remote_m, "lat_remote_m");
  expect_same(a.lat_remote_e, b.lat_remote_e, "lat_remote_e");
  expect_same(a.lat_remote_sf, b.lat_remote_sf, "lat_remote_sf");
  EXPECT_EQ(a.range_remote_m.lo, b.range_remote_m.lo);
  EXPECT_EQ(a.range_remote_m.hi, b.range_remote_m.hi);
  EXPECT_EQ(a.range_remote_e.lo, b.range_remote_e.lo);
  EXPECT_EQ(a.range_remote_e.hi, b.range_remote_e.hi);
  EXPECT_EQ(a.range_remote_sf.lo, b.range_remote_sf.lo);
  EXPECT_EQ(a.range_remote_sf.hi, b.range_remote_sf.hi);
  expect_same(a.bw_read_remote, b.bw_read_remote, "bw_read_remote");
  expect_same(a.bw_copy_tile_m, b.bw_copy_tile_m, "bw_copy_tile_m");
  expect_same(a.bw_copy_tile_e, b.bw_copy_tile_e, "bw_copy_tile_e");
  expect_same(a.bw_copy_remote, b.bw_copy_remote, "bw_copy_remote");
  expect_same(a.multiline_ns, b.multiline_ns, "multiline_ns");
  expect_same(a.contention.fit, b.contention.fit, "contention.fit");
  expect_same(a.contention.per_n, b.contention.per_n, "contention.per_n");
  expect_same(a.congestion.latency_vs_pairs, b.congestion.latency_vs_pairs,
              "congestion");
  EXPECT_EQ(a.congestion.ratio, b.congestion.ratio);
  expect_same(a.mem_lat_dram, b.mem_lat_dram, "mem_lat_dram");
  ASSERT_EQ(a.mem_lat_mcdram.has_value(), b.mem_lat_mcdram.has_value());
  if (a.mem_lat_mcdram) {
    expect_same(*a.mem_lat_mcdram, *b.mem_lat_mcdram, "mem_lat_mcdram");
  }
}

TEST(Suite, BitIdenticalAcrossWorkerCounts) {
  bench::SuiteOptions o;
  o.run.iters = 9;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  const sim::MachineConfig cfg = sim::knl7210();

  o.jobs = 1;
  const bench::SuiteResults serial = bench::run_suite(cfg, o);
  o.jobs = 8;
  const bench::SuiteResults parallel = bench::run_suite(cfg, o);
  expect_same_suite(serial, parallel);
}

TEST(Suite, BitIdenticalWithObservabilityAttached) {
  // Attaching trace + metrics sinks (and the process registry that turns on
  // exec profiling) must leave every virtual-time result bit-identical:
  // sinks observe, never steer — even under parallel host execution.
  bench::SuiteOptions o;
  o.run.iters = 9;
  o.streams = false;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  o.jobs = 8;
  const sim::MachineConfig bare_cfg = sim::knl7210();
  const bench::SuiteResults bare = bench::run_suite(bare_cfg, o);

  obs::NullSink sink;
  obs::Registry reg;
  obs::set_process_registry(&reg);
  sim::MachineConfig traced_cfg = sim::knl7210();
  traced_cfg.trace = &sink;
  traced_cfg.metrics = &reg;
  const bench::SuiteResults traced = bench::run_suite(traced_cfg, o);
  obs::set_process_registry(nullptr);

  expect_same_suite(bare, traced);
  // And observation did actually happen.
  EXPECT_GT(reg.counter("sim.machines"), 0.0);
  EXPECT_GT(reg.counter("exec.jobs"), 0.0);
}

TEST(CollSweep, MatchesSerialRuns) {
  const sim::MachineConfig cfg = sim::tiny_machine();
  coll::HarnessOptions ho;
  ho.iters = 11;
  const std::vector<coll::SweepPoint> points{
      {coll::Algo::kOmpBarrier, 4},
      {coll::Algo::kMpiBarrier, 8},
      {coll::Algo::kOmpBroadcast, 4},
  };
  const auto swept =
      coll::run_collective_sweep(cfg, points, nullptr, ho, 8);
  ASSERT_EQ(swept.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto direct = coll::run_collective(cfg, points[i].algo,
                                             points[i].nthreads, nullptr, ho);
    expect_same(swept[i].per_iter_max, direct.per_iter_max, "coll sweep");
    EXPECT_EQ(swept[i].errors, direct.errors);
  }
}

}  // namespace
}  // namespace capmem::exec
