// Fault-injection semantics: seed-derived plans are deterministic, a
// disabled/absent plan is byte-identical to healthy silicon, degraded
// silicon is strictly slower but still correct, and fault counters flow
// into the metrics registry.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"

namespace capmem::fault {
namespace {

using sim::Addr;
using sim::Ctx;
using sim::Machine;
using sim::MachineConfig;
using sim::Task;

TEST(Plan, FromSeedIsDeterministic) {
  for (int sev = 0; sev <= 3; ++sev) {
    const FaultPlan a = from_seed(77, sev);
    const FaultPlan b = from_seed(77, sev);
    EXPECT_EQ(a.extra_disabled_tiles, b.extra_disabled_tiles);
    EXPECT_EQ(a.degraded_tiles, b.degraded_tiles);
    EXPECT_EQ(a.flaky_dram_channels, b.flaky_dram_channels);
    EXPECT_EQ(a.flaky_mcdram_channels, b.flaky_mcdram_channels);
    EXPECT_EQ(a.stuck_line_fraction, b.stuck_line_fraction);
    EXPECT_EQ(a.describe(), b.describe());
  }
  // Different seeds pick different degraded hardware (with overwhelming
  // probability; these two seeds are checked to differ).
  EXPECT_NE(from_seed(1, 2).degraded_tile_mask(32),
            from_seed(2, 2).degraded_tile_mask(32));
}

TEST(Plan, SeverityLadderEnablesProgressively) {
  const FaultPlan s0 = from_seed(5, 0);
  EXPECT_FALSE(s0.enabled());

  const FaultPlan s1 = from_seed(5, 1);
  EXPECT_TRUE(s1.enabled());
  EXPECT_TRUE(s1.mesh_enabled());
  EXPECT_FALSE(s1.channels_enabled());
  EXPECT_EQ(s1.extra_disabled_tiles, 0);

  const FaultPlan s2 = from_seed(5, 2);
  EXPECT_TRUE(s2.mesh_enabled());
  EXPECT_TRUE(s2.channels_enabled());
  EXPECT_TRUE(s2.stuck_enabled());
  EXPECT_EQ(s2.extra_disabled_tiles, 0);

  const FaultPlan s3 = from_seed(5, 3);
  EXPECT_EQ(s3.extra_disabled_tiles, 4);
  EXPECT_GT(s3.stuck_line_fraction, s2.stuck_line_fraction);
}

TEST(Plan, MaskAndFactorsAreRightSized) {
  const FaultPlan p = from_seed(9, 2);
  const auto mask = p.degraded_tile_mask(32);
  ASSERT_EQ(mask.size(), 32u);
  int degraded = 0;
  for (std::uint8_t m : mask) degraded += m;
  EXPECT_EQ(degraded, p.degraded_tiles);

  const auto ddr = p.channel_factors(6, /*mcdram=*/false);
  const auto mc = p.channel_factors(8, /*mcdram=*/true);
  ASSERT_EQ(ddr.size(), 6u);
  ASSERT_EQ(mc.size(), 8u);
  int flaky_ddr = 0, flaky_mc = 0;
  for (double f : ddr) {
    EXPECT_TRUE(f == 1.0 || f == p.channel_rate_factor);
    flaky_ddr += f != 1.0;
  }
  for (double f : mc) flaky_mc += f != 1.0;
  EXPECT_EQ(flaky_ddr, p.flaky_dram_channels);
  EXPECT_EQ(flaky_mc, p.flaky_mcdram_channels);
}

TEST(Plan, LineStuckTracksFraction) {
  FaultPlan p;
  p.seed = 123;
  EXPECT_FALSE(p.line_stuck(42));  // fraction 0: nothing sticks
  p.stuck_line_fraction = 0.05;
  int stuck = 0;
  for (std::uint64_t line = 0; line < 10000; ++line) {
    stuck += p.line_stuck(line);
    EXPECT_EQ(p.line_stuck(line), p.line_stuck(line));
  }
  EXPECT_GT(stuck, 250);  // ~500 expected at 5%
  EXPECT_LT(stuck, 850);
}

TEST(Apply, ReducesTilesAndAttachesPlan) {
  MachineConfig cfg = sim::knl7210();
  const int tiles_before = cfg.active_tiles;
  const FaultPlan plan = from_seed(11, 3);
  apply(cfg, plan);
  EXPECT_EQ(cfg.active_tiles, tiles_before - plan.extra_disabled_tiles);
  EXPECT_EQ(cfg.fault, &plan);
}

// Small cross-tile workload with shared writes, remote reads, and atomics —
// enough traffic to traverse mesh links and the directory.
double run_elapsed(MachineConfig cfg) {
  cfg.noise.enabled = false;
  Machine m(cfg);
  const Addr buf = m.alloc("buf", 16 * kLineBytes, {}, true);
  const Addr ctr = m.alloc("ctr", kLineBytes, {}, true);
  for (int t = 0; t < 4; ++t) {
    m.add_thread({t * 9, 0}, [&, t](Ctx& ctx) -> Task {
      for (int i = 0; i < 10; ++i) {
        const std::uint64_t w = static_cast<std::uint64_t>(t * 3 + i) % 16;
        const std::uint64_t r = static_cast<std::uint64_t>(i * 5 + t) % 16;
        co_await ctx.write_u64(buf + w * kLineBytes, 1 + w);
        co_await ctx.read_u64(buf + r * kLineBytes);
        co_await ctx.fetch_add_u64(ctr, 1);
      }
    });
  }
  m.run();
  return m.elapsed();
}

TEST(Machine, DisabledPlanIsByteIdenticalToNoPlan) {
  MachineConfig healthy = sim::knl7210();
  const double base = run_elapsed(healthy);

  FaultPlan noop;  // default plan: enabled() == false
  MachineConfig attached = sim::knl7210();
  apply(attached, noop);
  EXPECT_EQ(run_elapsed(attached), base);
}

TEST(Machine, DegradedSiliconIsStrictlySlowerAndStillCorrect) {
  const double base = run_elapsed(sim::knl7210());

  FaultPlan plan;
  plan.seed = 3;
  plan.degraded_tiles = 16;        // half the mesh endpoints are lossy
  plan.stuck_line_fraction = 0.5;  // every other directory line sticky
  MachineConfig degraded = sim::knl7210();
  apply(degraded, plan);
  // run_elapsed's asserts (none) aside, Machine::run CHECKs coherence
  // internally; the run completing at all means degraded != broken.
  EXPECT_GT(run_elapsed(degraded), base);
}

TEST(Metrics, FaultCountersFlowIntoRegistry) {
  obs::Registry reg;
  FaultPlan plan;
  plan.seed = 3;
  plan.degraded_tiles = 16;
  plan.stuck_line_fraction = 0.5;
  MachineConfig cfg = sim::knl7210();
  apply(cfg, plan);
  cfg.metrics = &reg;
  run_elapsed(cfg);
  // Half the mesh endpoints lossy and half the directory sticky: both
  // retry counters must have fired on a cross-tile workload. The flaky
  // channels only count when a transfer actually lands on one.
  EXPECT_GT(reg.counter("sim.fault.link_retries"), 0.0);
  EXPECT_GT(reg.counter("sim.fault.stuck_dir_hits"), 0.0);
  EXPECT_GE(reg.counter("sim.fault.degraded_transfers"), 0.0);
}

}  // namespace
}  // namespace capmem::fault
