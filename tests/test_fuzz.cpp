// Randomized stress tests of the coherent machine: many threads execute
// random operation mixes over shared and private lines, and we check
//   * per-line single-writer monotonicity (reads never go backwards),
//   * final memory values equal each writer's last write,
//   * MESIF invariants over the whole directory after the run,
//   * determinism of the entire interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "check/differ.hpp"
#include "common/rng.hpp"
#include "sim/machine.hpp"

namespace capmem::sim {
namespace {

struct FuzzConfig {
  int threads = 12;
  int shared_lines = 16;
  int ops_per_thread = 400;
  std::uint64_t seed = 1;
  ClusterMode cluster = ClusterMode::kQuadrant;
  MemoryMode memory = MemoryMode::kFlat;
};

struct FuzzOutcome {
  bool monotonic = true;
  bool finals_ok = true;
  Nanos elapsed = 0;
  std::uint64_t dir_lines = 0;
};

FuzzOutcome run_fuzz(const FuzzConfig& fc) {
  MachineConfig cfg = knl7210(fc.cluster, fc.memory);
  if (fc.memory != MemoryMode::kFlat) cfg.scale_memory(256);
  cfg.seed = fc.seed;
  Machine m(cfg);

  // Line i is written only by thread i % threads; everyone reads anything.
  const Addr shared = m.alloc(
      "shared", static_cast<std::uint64_t>(fc.shared_lines) * kLineBytes, {},
      true);
  auto line_addr = [&](int i) {
    return shared + static_cast<std::uint64_t>(i) * kLineBytes;
  };
  std::vector<std::uint64_t> write_count(
      static_cast<std::size_t>(fc.shared_lines), 0);

  FuzzOutcome out;
  const auto slots = make_schedule(cfg, Schedule::kScatter, fc.threads);
  for (int t = 0; t < fc.threads; ++t) {
    m.add_thread(slots[static_cast<std::size_t>(t)],
                 [&, t](Ctx& ctx) -> Task {
      Rng rng(fc.seed * 1000003 + static_cast<std::uint64_t>(t));
      std::vector<std::uint64_t> last_seen(
          static_cast<std::size_t>(fc.shared_lines), 0);
      std::vector<std::uint64_t> my_counter(
          static_cast<std::size_t>(fc.shared_lines), 0);
      const Addr priv = ctx.machine().alloc(
          "priv" + std::to_string(t), KiB(4), {}, false);
      for (int op = 0; op < fc.ops_per_thread; ++op) {
        const int line = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(fc.shared_lines)));
        switch (rng.next_below(4)) {
          case 0: {  // read a shared line: single-writer monotonicity
            const std::uint64_t v = co_await ctx.read_u64(line_addr(line));
            if (v < last_seen[static_cast<std::size_t>(line)]) {
              out.monotonic = false;
            }
            last_seen[static_cast<std::size_t>(line)] = v;
            break;
          }
          case 1: {  // write my own lines (single-writer discipline)
            if (line % fc.threads == t) {
              const std::uint64_t v =
                  ++my_counter[static_cast<std::size_t>(line)];
              co_await ctx.write_u64(line_addr(line), v);
              write_count[static_cast<std::size_t>(line)] = v;
            } else {
              co_await ctx.touch(line_addr(line), AccessType::kRead);
            }
            break;
          }
          case 2: {  // private streaming traffic (cache churn)
            co_await ctx.read_buf(priv, KiB(4));
            break;
          }
          default: {  // compute gap
            co_await ctx.compute(rng.uniform(1.0, 50.0));
          }
        }
      }
    });
  }
  m.run();
  m.memsys().directory().check_all();
  out.elapsed = m.elapsed();
  out.dir_lines = m.memsys().directory().tracked_lines();

  // Final values: the last write of each line's owner must be in memory.
  for (int i = 0; i < fc.shared_lines; ++i) {
    if (m.space().load<std::uint64_t>(line_addr(i)) !=
        write_count[static_cast<std::size_t>(i)]) {
      out.finals_ok = false;
    }
  }
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, SingleWriterMonotonicityAndInvariants) {
  FuzzConfig fc;
  fc.seed = static_cast<std::uint64_t>(GetParam());
  const FuzzOutcome out = run_fuzz(fc);
  EXPECT_TRUE(out.monotonic);
  EXPECT_TRUE(out.finals_ok);
  EXPECT_GT(out.elapsed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(1, 9));

TEST(Fuzz, AllClusterModes) {
  for (ClusterMode cm : all_cluster_modes()) {
    FuzzConfig fc;
    fc.cluster = cm;
    fc.threads = 8;
    fc.ops_per_thread = 200;
    const FuzzOutcome out = run_fuzz(fc);
    EXPECT_TRUE(out.monotonic) << to_string(cm);
    EXPECT_TRUE(out.finals_ok) << to_string(cm);
  }
}

TEST(Fuzz, CacheAndHybridModes) {
  for (MemoryMode mm : {MemoryMode::kCache, MemoryMode::kHybrid}) {
    FuzzConfig fc;
    fc.memory = mm;
    fc.threads = 8;
    fc.ops_per_thread = 200;
    const FuzzOutcome out = run_fuzz(fc);
    EXPECT_TRUE(out.monotonic) << to_string(mm);
    EXPECT_TRUE(out.finals_ok) << to_string(mm);
  }
}

TEST(Fuzz, DeterministicInterleaving) {
  FuzzConfig fc;
  fc.seed = 77;
  const FuzzOutcome a = run_fuzz(fc);
  const FuzzOutcome b = run_fuzz(fc);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.dir_lines, b.dir_lines);
}

TEST(Fuzz, ManyThreadsHeavyContention) {
  FuzzConfig fc;
  fc.threads = 32;
  fc.shared_lines = 4;  // heavy sharing
  fc.ops_per_thread = 300;
  const FuzzOutcome out = run_fuzz(fc);
  EXPECT_TRUE(out.monotonic);
  EXPECT_TRUE(out.finals_ok);
}

// --- differential sweep: check::run_diff over every cluster x memory mode ---
//
// The richer generator in capmem::check (NT stores, fetch-add counters,
// false-sharing slots, flushes) plus the attached Checker (SC oracle +
// MESIF sweeps) must agree with the simulator on every configuration the
// paper models. Three fixed seeds per cell keep this inside ctest budget;
// bench/fuzz_diff covers the deep sweep.

struct DiffCell {
  ClusterMode cluster;
  MemoryMode memory;
};

std::vector<DiffCell> all_diff_cells() {
  std::vector<DiffCell> cells;
  for (ClusterMode cm : all_cluster_modes()) {
    for (MemoryMode mm :
         {MemoryMode::kFlat, MemoryMode::kCache, MemoryMode::kHybrid}) {
      cells.push_back({cm, mm});
    }
  }
  return cells;
}

class DiffSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiffSweep, OracleAgreesInEveryConfiguration) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  for (const DiffCell& cell : all_diff_cells()) {
    check::WorkloadSpec spec;
    spec.threads = 6;
    spec.ops_per_thread = 100;
    spec.seed = seed;
    spec.cluster = cell.cluster;
    spec.memory = cell.memory;
    const check::DiffOutcome out = check::run_diff(spec);
    EXPECT_TRUE(out.ok) << spec.label() << '\n' << out.report;
    EXPECT_EQ(out.violations, 0u) << spec.label();
    EXPECT_GT(out.elapsed, 0) << spec.label();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffSweep, ::testing::Range(11, 14));

TEST(DiffSweep, DeterministicOutcome) {
  check::WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 99;
  const check::DiffOutcome a = check::run_diff(spec);
  const check::DiffOutcome b = check::run_diff(spec);
  ASSERT_TRUE(a.ok) << a.report;
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
}

}  // namespace
}  // namespace capmem::sim
