// Hybrid memory mode (paper §II.C: part cache, part flat): explicit MCDRAM
// allocations coexist with a reduced memory-side cache fronting the DDR
// range.
#include <gtest/gtest.h>

#include "bench/pointer_chase.hpp"
#include "model/fit.hpp"
#include "sim/machine.hpp"

namespace capmem::sim {
namespace {

MachineConfig hybrid_cfg(double cache_fraction = 0.5) {
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kHybrid);
  cfg.hybrid_cache_fraction = cache_fraction;
  cfg.scale_memory(256);
  cfg.noise.enabled = false;
  return cfg;
}

TEST(Hybrid, McdramAllocationsAllowed) {
  Machine m(hybrid_cfg());
  const Addr a = m.alloc("flat_part", kLineBytes,
                         {MemKind::kMCDRAM, std::nullopt}, true);
  double cost = 0;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    const Nanos t0 = ctx.now();
    co_await ctx.read_u64(a);
    cost = ctx.now() - t0;
  });
  m.run();
  EXPECT_NEAR(cost, 166, 20);  // straight MCDRAM access
}

TEST(Hybrid, DdrAccessesGoThroughTheCachePart) {
  Machine m(hybrid_cfg());
  const Addr a = m.alloc("ddr", kLineBytes, {}, true);
  std::vector<Level> levels;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    auto r1 = co_await ctx.touch(a, AccessType::kRead);
    ctx.machine().flush_buffer(a, kLineBytes, /*drop_mcdram_cache=*/false);
    auto r2 = co_await ctx.touch(a, AccessType::kRead);
    levels.push_back(r1.level);
    levels.push_back(r2.level);
  });
  m.run();
  EXPECT_EQ(levels[0], Level::kMcdramCacheMiss);
  EXPECT_EQ(levels[1], Level::kMcdramCacheHit);
}

TEST(Hybrid, CacheCapacityScalesWithFraction) {
  // Direct-mapped sets = fraction * mcdram_bytes / 64: a quarter-cache
  // machine conflicts 2x as often as a half-cache one on a strided probe.
  auto conflict_misses = [](double fraction) {
    Machine m(hybrid_cfg(fraction));
    const std::uint64_t sets = static_cast<std::uint64_t>(
        static_cast<double>(m.config().mcdram_bytes) * fraction /
        kLineBytes);
    const Addr a = m.alloc("probe", 4 * (sets + 1) * kLineBytes, {}, false);
    std::uint64_t misses = 0;
    m.add_thread({0, 0}, [&, sets](Ctx& ctx) -> Task {
      // Two lines mapping to the same set in the smaller cache.
      for (int i = 0; i < 10; ++i) {
        for (std::uint64_t off : {std::uint64_t{0}, sets * kLineBytes}) {
          ctx.machine().flush_buffer(a + off, kLineBytes, false);
          const auto r = co_await ctx.touch(a + off, AccessType::kRead);
          if (r.level == Level::kMcdramCacheMiss) ++misses;
        }
      }
    });
    m.run();
    return misses;
  };
  // At fraction f the stride `sets(f)` aliases; the same stride does not
  // alias in a cache twice the size.
  const std::uint64_t small = conflict_misses(0.25);
  EXPECT_GT(small, 15u);  // nearly every access conflicts
}

TEST(Hybrid, ValidatesFraction) {
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kHybrid);
  cfg.hybrid_cache_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.hybrid_cache_fraction = 1.0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(Hybrid, SuiteAndFitRunEndToEnd) {
  MachineConfig cfg = knl7210(ClusterMode::kSNC4, MemoryMode::kHybrid);
  cfg.scale_memory(256);
  bench::SuiteOptions o;
  o.run.iters = 9;
  o.remote_samples = 2;
  o.contention_ns = {1, 2, 4};
  const model::CapabilityModel m = model::fit_cache_model(cfg, o);
  EXPECT_GT(m.r_remote, m.r_tile);
  EXPECT_TRUE(m.has_mcdram);  // the flat part exists
  // DDR-backed latency goes through the (hybrid) cache: between DRAM and
  // MCDRAM+tag territory.
  EXPECT_GT(m.r_mem_dram, 120);
  EXPECT_LT(m.r_mem_dram, 210);
}

}  // namespace
}  // namespace capmem::sim
