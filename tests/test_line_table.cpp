#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "sim/coherence.hpp"
#include "sim/line_table.hpp"

namespace capmem::sim {
namespace {

TEST(LineTable, InsertFindErase) {
  LineTable<int> t;
  EXPECT_EQ(t.find(5), nullptr);
  t.get_or_create(5) = 42;
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), 42);
  EXPECT_TRUE(t.erase(5));
  EXPECT_EQ(t.find(5), nullptr);
  EXPECT_FALSE(t.erase(5));
}

TEST(LineTable, GetOrCreateIsIdempotent) {
  LineTable<int> t;
  t.get_or_create(9) = 1;
  EXPECT_EQ(t.get_or_create(9), 1);
  EXPECT_EQ(t.size(), 1u);
}

TEST(LineTable, ReferencesStableAcrossInsertsAndErases) {
  LineTable<int> t;
  int& ref = t.get_or_create(1000000);  // outside the churn key range
  ref = 7;
  for (std::uint64_t k = 0; k < 50000; ++k) t.get_or_create(k) = 1;
  for (std::uint64_t k = 0; k < 25000; ++k) t.erase(k);
  ASSERT_NE(t.find(1000000), nullptr);
  EXPECT_EQ(*t.find(1000000), 7);
  EXPECT_EQ(ref, 7);  // deque-backed pool never relocates live entries
}

TEST(LineTable, MatchesStdMapUnderRandomOps) {
  LineTable<int> t;
  std::map<std::uint64_t, int> ref;
  Rng rng(77);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next_below(500);
    switch (rng.next_below(3)) {
      case 0: {
        const int v = static_cast<int>(rng.next_below(1000));
        t.get_or_create(key) = v;
        ref[key] = v;
        break;
      }
      case 1: {
        EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const int* found = t.find(key);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
}

TEST(LineTable, BackwardShiftKeepsCollidingKeysFindable) {
  // Force collisions by inserting many keys, then erase interleaved and
  // verify all survivors remain findable (tombstone-free deletion).
  LineTable<int> t;
  for (std::uint64_t k = 0; k < 10000; ++k) t.get_or_create(k) = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 10000; k += 2) t.erase(k);
  for (std::uint64_t k = 1; k < 10000; k += 2) {
    ASSERT_NE(t.find(k), nullptr) << k;
    EXPECT_EQ(*t.find(k), static_cast<int>(k));
  }
}

TEST(LineTable, ForEachVisitsAll) {
  LineTable<int> t;
  for (std::uint64_t k = 10; k < 20; ++k) t.get_or_create(k) = 1;
  std::size_t count = 0;
  std::uint64_t key_sum = 0;
  t.for_each([&](std::uint64_t k, const int&) {
    ++count;
    key_sum += k;
  });
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(key_sum, 145u);
}

TEST(LineTable, ClearEmpties) {
  LineTable<int> t;
  for (std::uint64_t k = 0; k < 100; ++k) t.get_or_create(k);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(5), nullptr);
  t.get_or_create(5) = 3;  // usable after clear
  EXPECT_EQ(*t.find(5), 3);
}

TEST(LineTable, GrowsPastInitialCapacity) {
  LineTable<LineEntry> t;
  for (std::uint64_t k = 0; k < 100000; ++k) t.get_or_create(k);
  EXPECT_EQ(t.size(), 100000u);
  EXPECT_NE(t.find(99999), nullptr);
}

}  // namespace
}  // namespace capmem::sim
