#include <gtest/gtest.h>

#include <vector>

#include "common/linreg.hpp"
#include "common/rng.hpp"

namespace capmem {
namespace {

TEST(LinReg, ExactLine) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{5, 7, 9, 11};  // y = 3 + 2x
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.alpha, 3.0, 1e-9);
  EXPECT_NEAR(f.beta, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
  EXPECT_NEAR(f(10.0), 23.0, 1e-9);
}

TEST(LinReg, NoisyLineRecoversParameters) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(200.0 + 34.0 * x + rng.normal() * 5.0);
  }
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_NEAR(f.alpha, 200.0, 5.0);
  EXPECT_NEAR(f.beta, 34.0, 0.5);
  EXPECT_GT(f.r2, 0.99);
}

TEST(LinReg, ConstantXFallsBackToMean) {
  std::vector<double> xs{2, 2, 2};
  std::vector<double> ys{1, 2, 3};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.alpha, 2.0);
  EXPECT_DOUBLE_EQ(f.beta, 0.0);
  EXPECT_DOUBLE_EQ(f.r2, 0.0);
}

TEST(LinReg, MismatchedSizesThrow) {
  std::vector<double> xs{1, 2};
  std::vector<double> ys{1};
  EXPECT_THROW(fit_linear(xs, ys), CheckError);
}

TEST(LinReg, PerfectFlatLineHasR2One) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{4, 4, 4};
  const LinearFit f = fit_linear(xs, ys);
  EXPECT_DOUBLE_EQ(f.beta, 0.0);
  EXPECT_DOUBLE_EQ(f.r2, 1.0);  // zero residuals
}

}  // namespace
}  // namespace capmem
