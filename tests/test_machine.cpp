// End-to-end semantics of the simulated machine: latency ordering, cache
// state preparation, flag signalling, contention growth, bandwidth
// saturation, data correctness, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"

namespace capmem::sim {
namespace {

MachineConfig quiet(MachineConfig cfg) {
  cfg.noise.enabled = false;  // exact numbers for unit assertions
  return cfg;
}

// Measures the latency of `probe_core` reading one line that `prep` left in
// a given state. Returns the read cost in ns.
double measure_read(MachineConfig cfg, int owner_core, int probe_core,
                    bool owner_writes, bool flush_first = false) {
  Machine m(quiet(cfg));
  const Addr buf = m.alloc("buf", kLineBytes, {}, true);
  double cost = -1;
  m.add_thread({owner_core, 0}, [&](Ctx& ctx) -> Task {
    if (owner_writes) {
      co_await ctx.write_u64(buf, 1);
    } else {
      co_await ctx.read_u64(buf);
    }
    co_await ctx.sync();
  });
  m.add_thread({probe_core, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    if (flush_first) ctx.machine().flush_buffer(buf, kLineBytes);
    const Nanos t0 = ctx.now();
    co_await ctx.read_u64(buf);
    cost = ctx.now() - t0;
  });
  m.run();
  return cost;
}

TEST(Machine, LatencyOrderingMatchesHierarchy) {
  const MachineConfig cfg = knl7210();
  // Same core re-read: L1 hit.
  const double l1 = measure_read(cfg, 0, 0, true);
  // Other core, same tile (cores 0 and 1 share tile 0), owner modified.
  const double tile_m = measure_read(cfg, 0, 1, true);
  // Remote tile, modified.
  const double remote_m = measure_read(cfg, 0, 10, true);
  // From memory (flushed everywhere first).
  const double dram = measure_read(cfg, 0, 10, true, /*flush_first=*/true);

  EXPECT_LT(l1, tile_m);
  EXPECT_LT(tile_m, remote_m);
  EXPECT_LT(remote_m, dram);
  EXPECT_NEAR(l1, cfg.lat.l1_hit, 1.0);
  EXPECT_NEAR(tile_m, cfg.lat.l2_tile_m, 2.0);
  EXPECT_GT(remote_m, 90.0);
  EXPECT_LT(remote_m, 140.0);
  EXPECT_GT(dram, 120.0);
  EXPECT_LT(dram, 165.0);
}

TEST(Machine, ExclusiveCheaperThanModifiedWithinTile) {
  const MachineConfig cfg = knl7210();
  const double tile_m = measure_read(cfg, 0, 1, /*owner_writes=*/true);
  const double tile_e = measure_read(cfg, 0, 1, /*owner_writes=*/false);
  EXPECT_LT(tile_e, tile_m);
}

TEST(Machine, McdramFlatHasHigherLatencyThanDram) {
  MachineConfig cfg = knl7210();
  auto probe_mem = [&](MemKind kind) {
    Machine m(quiet(cfg));
    const Addr buf = m.alloc("b", kLineBytes, {kind, std::nullopt}, true);
    double cost = -1;
    m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
      const Nanos t0 = ctx.now();
      co_await ctx.read_u64(buf);
      cost = ctx.now() - t0;
    });
    m.run();
    return cost;
  };
  const double dram = probe_mem(MemKind::kDDR);
  const double mcdram = probe_mem(MemKind::kMCDRAM);
  EXPECT_GT(mcdram, dram);       // Table II: 160-175 vs 130-146 ns
  EXPECT_NEAR(dram, 138, 18);
  EXPECT_NEAR(mcdram, 166, 18);
}

TEST(Machine, StateAfterWriteIsModified) {
  Machine m(quiet(knl7210()));
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(buf, 7);
  });
  m.run();
  EXPECT_EQ(m.memsys().state_in_tile(line_of(buf), 0), TileState::kM);
}

TEST(Machine, StateAfterReadIsExclusiveThenSharedForward) {
  Machine m(quiet(knl7210()));
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_u64(buf);
    co_await ctx.sync();
    co_await ctx.sync();
  });
  m.add_thread({10, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    co_await ctx.read_u64(buf);
    co_await ctx.sync();
  });
  m.run();
  // After both reads: requester (core 10, tile 5) holds F, owner became S.
  EXPECT_EQ(m.memsys().state_in_tile(line_of(buf), 5), TileState::kF);
  EXPECT_EQ(m.memsys().state_in_tile(line_of(buf), 0), TileState::kS);
}

TEST(Machine, WriteInvalidatesSharers) {
  Machine m(quiet(knl7210()));
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_u64(buf);
    co_await ctx.sync();
    co_await ctx.sync();
  });
  m.add_thread({20, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    co_await ctx.write_u64(buf, 1);
    co_await ctx.sync();
  });
  m.run();
  EXPECT_EQ(m.memsys().state_in_tile(line_of(buf), 0), TileState::kI);
  EXPECT_EQ(m.memsys().state_in_tile(line_of(buf), 10), TileState::kM);
}

TEST(Machine, FlagSignallingWakesConsumerAfterProducer) {
  Machine m(quiet(knl7210()));
  const Addr flag = m.alloc("flag", kLineBytes, {}, true);
  Nanos produced = -1, consumed = -1;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.compute(500.0);
    co_await ctx.write_u64(flag, 1);
    produced = ctx.now();
  });
  m.add_thread({10, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.wait_eq(flag, 1);
    consumed = ctx.now();
  });
  m.run();
  EXPECT_GT(produced, 500.0);
  // Consumer observes the value only after it is visible, plus a re-fetch.
  EXPECT_GT(consumed, produced);
  EXPECT_LT(consumed, produced + 200.0);
  EXPECT_EQ(m.space().load<std::uint64_t>(flag), 1u);
}

TEST(Machine, WaitNeReturnsNewValue) {
  Machine m(quiet(knl7210()));
  const Addr flag = m.alloc("flag", kLineBytes, {}, true);
  std::uint64_t seen = 0;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.compute(100.0);
    co_await ctx.write_u64(flag, 42);
  });
  m.add_thread({2, 0}, [&](Ctx& ctx) -> Task {
    seen = co_await ctx.wait_ne(flag, 0);
  });
  m.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Machine, ContentionGrowsRoughlyLinearly) {
  // N threads all copy the same owner line; the max completion should grow
  // linearly with N (Table I: T_C(N) = alpha + beta*N).
  auto run_n = [](int n) {
    Machine m(quiet(knl7210()));
    const Addr buf = m.alloc("hot", kLineBytes, {}, true);
    Nanos max_done = 0;
    m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
      co_await ctx.write_u64(buf, 1);
      co_await ctx.sync();
      co_await ctx.sync();
    });
    for (int i = 0; i < n; ++i) {
      m.add_thread({2 + 2 * i, 0}, [&, i](Ctx& ctx) -> Task {
        co_await ctx.sync();
        co_await ctx.read_u64(buf);
        max_done = std::max(max_done, ctx.now());
        co_await ctx.sync();
      });
    }
    m.run();
    return max_done;
  };
  const double t4 = run_n(4);
  const double t16 = run_n(16);
  const double slope = (t16 - t4) / 12.0;
  EXPECT_GT(slope, 15.0);
  EXPECT_LT(slope, 95.0);  // raw line service; the fill-tiles-schedule
                           // benchmark measures the paper's beta ~= 34
}

double aggregate_read_bw(MachineConfig cfg, MemKind kind, int nthreads,
                         std::uint64_t bytes_per_thread) {
  Machine m(quiet(cfg));
  std::vector<Addr> bufs;
  for (int i = 0; i < nthreads; ++i) {
    bufs.push_back(m.alloc("b" + std::to_string(i), bytes_per_thread,
                           {kind, std::nullopt}, false));
  }
  const auto slots = make_schedule(cfg, Schedule::kFillTiles, nthreads);
  Nanos t0 = 0, t1 = 0;
  for (int i = 0; i < nthreads; ++i) {
    m.add_thread(slots[static_cast<std::size_t>(i)],
                 [&, i](Ctx& ctx) -> Task {
                   co_await ctx.sync();
                   co_await ctx.read_buf(bufs[static_cast<std::size_t>(i)],
                                         bytes_per_thread);
                   co_await ctx.sync();
                   if (i == 0) t1 = ctx.now();
                 });
  }
  t0 = 0;
  m.run();
  const double total =
      static_cast<double>(bytes_per_thread) * nthreads;
  return bandwidth_gbps(static_cast<std::uint64_t>(total), t1 - t0);
}

TEST(Machine, DramReadBandwidthSaturates) {
  const MachineConfig cfg = knl7210();
  const double bw8 = aggregate_read_bw(cfg, MemKind::kDDR, 8, MiB(2));
  const double bw32 = aggregate_read_bw(cfg, MemKind::kDDR, 32, MiB(2));
  EXPECT_GT(bw8, 30.0);
  EXPECT_GT(bw32, bw8 * 0.9);
  EXPECT_LT(bw32, 90.0);  // never exceeds the channel aggregate
}

TEST(Machine, McdramBandwidthExceedsDram) {
  const MachineConfig cfg = knl7210();
  const double dram = aggregate_read_bw(cfg, MemKind::kDDR, 32, MiB(2));
  const double mcd = aggregate_read_bw(cfg, MemKind::kMCDRAM, 32, MiB(2));
  EXPECT_GT(mcd, dram * 2.0);  // paper: ~4x on read at scale
}

TEST(Machine, CopyMovesData) {
  Machine m(quiet(knl7210()));
  const std::uint64_t n = KiB(4);
  const Addr src = m.alloc("src", n, {}, true);
  const Addr dst = m.alloc("dst", n, {}, true);
  for (std::uint64_t i = 0; i < n / 8; ++i)
    m.space().store<std::uint64_t>(src + i * 8, i * 3 + 1);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.copy(dst, src, n);
  });
  m.run();
  for (std::uint64_t i = 0; i < n / 8; ++i)
    ASSERT_EQ(m.space().load<std::uint64_t>(dst + i * 8), i * 3 + 1);
}

TEST(Machine, NtWriteBeatsRfoWriteOnVisibleBandwidth) {
  auto write_bw = [](bool nt) {
    Machine m(quiet(knl7210()));
    const std::uint64_t bytes = MiB(4);
    std::vector<Addr> bufs;
    const int n = 16;
    for (int i = 0; i < n; ++i)
      bufs.push_back(m.alloc("b" + std::to_string(i), bytes, {}, false));
    Nanos end = 0;
    const auto slots = make_schedule(knl7210(), Schedule::kFillTiles, n);
    for (int i = 0; i < n; ++i) {
      m.add_thread(slots[static_cast<std::size_t>(i)],
                   [&, i, nt](Ctx& ctx) -> Task {
                     BufOpts o;
                     o.nt = nt;
                     co_await ctx.write_buf(bufs[static_cast<std::size_t>(i)],
                                            bytes, o);
                     end = std::max(end, ctx.now());
                   });
    }
    m.run();
    return bandwidth_gbps(bytes * n, end);
  };
  const double rfo = write_bw(false);
  const double nt = write_bw(true);
  EXPECT_GT(nt, rfo * 1.5);  // RFO doubles the channel traffic
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(knl7210());  // noise ON: determinism must still hold
    const Addr buf = m.alloc("b", KiB(64), {}, false);
    Nanos end = 0;
    for (int i = 0; i < 4; ++i) {
      m.add_thread({i * 2, 0}, [&, i](Ctx& ctx) -> Task {
        co_await ctx.read_buf(buf, KiB(64));
        end = std::max(end, ctx.now());
      });
    }
    m.run();
    return end;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(Machine, CountersTrackHitsAndMemory) {
  Machine m(quiet(knl7210()));
  const Addr buf = m.alloc("b", KiB(1), {}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.read_u64(buf);   // DRAM
    co_await ctx.read_u64(buf);   // L1
    co_await ctx.read_u64(buf);   // L1
  });
  m.run();
  const auto& c = m.memsys().counters(0);
  EXPECT_EQ(c.dram_lines, 1u);
  EXPECT_EQ(c.l1_hits, 2u);
  EXPECT_EQ(c.line_ops, 3u);
}

TEST(Machine, RdtscQuantizedAndSkewed) {
  Machine m(quiet(knl7210()));
  std::uint64_t tick0 = 0, tick1 = 0;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    tick0 = ctx.rdtsc();
    co_await ctx.compute(100.0);
    tick1 = ctx.rdtsc();
  });
  m.run();
  EXPECT_GE(tick1, tick0 + 9);  // ~100ns at 10ns resolution
  EXPECT_LE(tick1, tick0 + 11);
}

TEST(Machine, CacheModeRejectsMcdramAllocations) {
  Machine m(quiet(knl7210(ClusterMode::kQuadrant, MemoryMode::kCache)));
  EXPECT_THROW(m.alloc("x", kLineBytes, {MemKind::kMCDRAM, std::nullopt}),
               CheckError);
}

TEST(Machine, CacheModeSecondAccessHitsMcdramCache) {
  Machine m(quiet(knl7210(ClusterMode::kQuadrant, MemoryMode::kCache)));
  const Addr buf = m.alloc("b", kLineBytes, {}, true);
  std::vector<Level> levels;
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    auto r1 = co_await ctx.touch(buf, AccessType::kRead);
    ctx.machine().flush_buffer(buf, kLineBytes,
                               /*drop_mcdram_cache=*/false);
    auto r2 = co_await ctx.touch(buf, AccessType::kRead);
    levels.push_back(r1.level);
    levels.push_back(r2.level);
  });
  m.run();
  EXPECT_EQ(levels[0], Level::kMcdramCacheMiss);
  EXPECT_EQ(levels[1], Level::kMcdramCacheHit);
}

TEST(Machine, SmtThreadsShareCoreIssuePorts) {
  // 4 streaming threads on one core should be much slower than 4 threads on
  // 4 different cores (Fig. 9: compact needs 4x the threads).
  auto run_sched = [](bool same_core) {
    Machine m(quiet(knl7210()));
    const std::uint64_t bytes = KiB(256);
    std::vector<Addr> bufs;
    for (int i = 0; i < 4; ++i)
      bufs.push_back(m.alloc("b" + std::to_string(i), bytes, {}, false));
    Nanos end = 0;
    for (int i = 0; i < 4; ++i) {
      const CpuSlot slot = same_core ? CpuSlot{0, i} : CpuSlot{i * 2, 0};
      m.add_thread(slot, [&, i](Ctx& ctx) -> Task {
        co_await ctx.read_buf(bufs[static_cast<std::size_t>(i)], bytes);
        end = std::max(end, ctx.now());
      });
    }
    m.run();
    return end;
  };
  EXPECT_GT(run_sched(true), run_sched(false) * 2.0);
}

}  // namespace
}  // namespace capmem::sim
