// Machine-factory coverage: every preset is a valid machine, the fuzz
// differ passes on non-KNL presets under non-MESIF protocols, and the
// paper's measure -> fit -> optimize pipeline runs end-to-end on synthetic
// machines — with fitted constants that differ per machine while the
// model's predicted collective cost still brackets what the simulator
// delivers on that same machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "check/differ.hpp"
#include "coll/harness.hpp"
#include "common/check.hpp"
#include "model/fit.hpp"
#include "model/tree_opt.hpp"
#include "sim/machine.hpp"

namespace capmem {
namespace {

using check::DiffOutcome;
using check::WorkloadSpec;
using check::run_diff;

TEST(MachineFamily, EveryPresetValidates) {
  for (const std::string& name : sim::machine_preset_names()) {
    SCOPED_TRACE(name);
    const sim::MachineConfig cfg = sim::machine_preset(name);
    cfg.validate();
    sim::Topology topo(cfg);
    EXPECT_EQ(topo.active_tiles(), cfg.active_tiles);
  }
}

TEST(MachineFamily, UnknownPresetThrowsWithNames) {
  try {
    sim::machine_preset("knl_9999");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    // The message must list the known presets so the CLI error is
    // actionable.
    EXPECT_NE(std::string(e.what()).find("knl_38t"), std::string::npos)
        << e.what();
  }
}

TEST(MachineFamily, PresetAliases) {
  EXPECT_EQ(sim::machine_preset("knl_38t").name,
            sim::machine_preset("knl7210").name);
  EXPECT_EQ(sim::machine_preset("tiny_8t").active_tiles,
            sim::machine_preset("tiny").active_tiles);
}

TEST(MachineFamily, PresetsAreDistinctMachines) {
  const sim::MachineConfig mini = sim::machine_preset("mini_16t");
  const sim::MachineConfig tall = sim::machine_preset("tall_24t");
  const sim::MachineConfig wide = sim::machine_preset("wide_64t");
  EXPECT_EQ(mini.active_tiles, 16);
  EXPECT_EQ(tall.active_tiles, 24);
  EXPECT_EQ(wide.active_tiles, 64);
  EXPECT_NE(mini.mesh_rows * 100 + mini.mesh_cols,
            tall.mesh_rows * 100 + tall.mesh_cols);
  EXPECT_NE(mini.lat.remote_base, tall.lat.remote_base);
  EXPECT_EQ(wide.stop_placement, sim::StopPlacement::kSpread);
}

// The differ's full machinery (SC oracle, rules-aware invariant sweeps,
// inline shadow) on non-KNL machines under non-MESIF protocols.
void diff_cell(const std::string& machine, sim::Protocol protocol,
               sim::ClusterMode cluster, sim::MemoryMode memory) {
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 29;
  spec.machine = machine;
  spec.protocol = protocol;
  spec.cluster = cluster;
  spec.memory = memory;
  const DiffOutcome out = run_diff(spec);
  EXPECT_TRUE(out.ok) << spec.label() << ":\n" << out.report;
}

TEST(MachineFamily, DiffPassesMesiOnMini) {
  diff_cell("mini_16t", sim::Protocol::kMesi, sim::ClusterMode::kQuadrant,
            sim::MemoryMode::kFlat);
  diff_cell("mini_16t", sim::Protocol::kMesi, sim::ClusterMode::kSNC4,
            sim::MemoryMode::kCache);
}

TEST(MachineFamily, DiffPassesMosiOnMini) {
  diff_cell("mini_16t", sim::Protocol::kMosi, sim::ClusterMode::kQuadrant,
            sim::MemoryMode::kFlat);
  diff_cell("mini_16t", sim::Protocol::kMosi, sim::ClusterMode::kA2A,
            sim::MemoryMode::kHybrid);
}

TEST(MachineFamily, DiffPassesAllProtocolsOnTall) {
  for (sim::Protocol p : sim::all_protocols()) {
    SCOPED_TRACE(sim::to_string(p));
    diff_cell("tall_24t", p, sim::ClusterMode::kSNC2,
              sim::MemoryMode::kFlat);
  }
}

TEST(MachineFamily, DiffPassesOnWideMesh) {
  diff_cell("wide_64t", sim::Protocol::kMesi, sim::ClusterMode::kQuadrant,
            sim::MemoryMode::kFlat);
}

// measure -> fit on two synthetic machines: the pipeline is
// machine-agnostic, and the fitted capability constants must reflect each
// machine's own timing, not KNL's.
TEST(MachineFamily, FittedConstantsDifferAcrossMachines) {
  bench::SuiteOptions sopts;
  sopts.run.iters = 5;
  const model::CapabilityModel mini =
      model::fit_cache_model(sim::machine_preset("mini_16t"), sopts);
  const model::CapabilityModel tall =
      model::fit_cache_model(sim::machine_preset("tall_24t"), sopts);
  EXPECT_GT(mini.r_remote, 0.0);
  EXPECT_GT(tall.r_remote, 0.0);
  // tall_24t's remote_base (120 ns) is ~50% above mini_16t's (82 ns); the
  // fitted R_R must order the machines the same way with clear separation.
  EXPECT_GT(tall.r_remote, mini.r_remote * 1.15);
  EXPECT_NE(mini.lat_dram, tall.lat_dram);
}

// fit -> optimize -> simulate agreement on a synthetic machine (the
// fig6-style loop of the paper, §IV.B.3): the tuned barrier's simulated
// cost must land inside a small factor of the model's min-max band that
// was predicted *from measurements of that same machine*.
void check_predicted_vs_simulated(const std::string& machine) {
  const sim::MachineConfig cfg = sim::machine_preset(machine);
  bench::SuiteOptions sopts;
  sopts.run.iters = 5;
  const model::CapabilityModel m = model::fit_cache_model(cfg, sopts);

  coll::HarnessOptions ho;
  ho.iters = 21;
  const int nthreads = std::min(16, cfg.hw_threads());
  const coll::CollResult r =
      coll::run_collective(cfg, coll::Algo::kTunedBarrier, nthreads, &m, ho);
  EXPECT_EQ(r.errors, 0u);
  ASSERT_TRUE(r.has_band);
  EXPECT_GT(r.band.best_ns, 0.0);
  EXPECT_GE(r.band.worst_ns, r.band.best_ns);
  // Same acceptance shape as the paper's figures: the measured median sits
  // within a modest factor of the predicted band (model error is expected;
  // an order-of-magnitude miss would mean the fit ran on the wrong
  // machine).
  EXPECT_GT(r.per_iter_max.median, r.band.best_ns * 0.3)
      << machine << ": simulated " << r.per_iter_max.median << " vs band ["
      << r.band.best_ns << ", " << r.band.worst_ns << "]";
  EXPECT_LT(r.per_iter_max.median, r.band.worst_ns * 3.0)
      << machine << ": simulated " << r.per_iter_max.median << " vs band ["
      << r.band.best_ns << ", " << r.band.worst_ns << "]";
}

TEST(MachineFamily, PredictedVsSimulatedAgreesOnMini) {
  check_predicted_vs_simulated("mini_16t");
}

TEST(MachineFamily, PredictedVsSimulatedAgreesOnTall) {
  check_predicted_vs_simulated("tall_24t");
}

// The optimizer consumes whatever constants the fit produced, so two
// machines with different capabilities may tune to different trees; at
// minimum the predicted costs must differ.
TEST(MachineFamily, TunedTreesReflectTheMachine) {
  bench::SuiteOptions sopts;
  sopts.run.iters = 5;
  const model::CapabilityModel mini =
      model::fit_cache_model(sim::machine_preset("mini_16t"), sopts);
  const model::CapabilityModel tall =
      model::fit_cache_model(sim::machine_preset("tall_24t"), sopts);
  const model::TunedTree a = model::optimize_tree(
      mini, 16, model::TreeKind::kBroadcast, sim::MemKind::kMCDRAM);
  const model::TunedTree b = model::optimize_tree(
      tall, 16, model::TreeKind::kBroadcast, sim::MemKind::kMCDRAM);
  EXPECT_EQ(model::tree_nodes(a.root), 16);
  EXPECT_EQ(model::tree_nodes(b.root), 16);
  EXPECT_NE(a.predicted_ns, b.predicted_ns);
}

}  // namespace
}  // namespace capmem
