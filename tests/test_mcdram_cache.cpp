#include <gtest/gtest.h>

#include "sim/mcdram_cache.hpp"

namespace capmem::sim {
namespace {

TEST(McdramCache, DisabledWhenZeroCapacity) {
  McdramCache c(0);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(c.probe(1));
}

TEST(McdramCache, MissThenHit) {
  McdramCache c(kLineBytes * 16);
  EXPECT_FALSE(c.probe(3));
  const auto a = c.access(3);
  EXPECT_FALSE(a.hit);
  EXPECT_FALSE(a.evicted.has_value());
  EXPECT_TRUE(c.probe(3));
  EXPECT_TRUE(c.access(3).hit);
}

TEST(McdramCache, DirectMappedConflict) {
  McdramCache c(kLineBytes * 16);  // 16 sets
  c.access(5);
  const auto a = c.access(5 + 16);  // same set
  EXPECT_FALSE(a.hit);
  ASSERT_TRUE(a.evicted.has_value());
  EXPECT_EQ(*a.evicted, 5u);
  EXPECT_FALSE(c.probe(5));
  EXPECT_TRUE(c.probe(21));
}

TEST(McdramCache, DistinctSetsCoexist) {
  McdramCache c(kLineBytes * 16);
  for (Line l = 0; l < 16; ++l) c.access(l);
  for (Line l = 0; l < 16; ++l) EXPECT_TRUE(c.probe(l));
  EXPECT_EQ(c.resident_lines(), 16u);
}

TEST(McdramCache, EraseOnlyMatchingTag) {
  McdramCache c(kLineBytes * 16);
  c.access(2);
  c.erase(2 + 16);  // same set, different tag: no-op
  EXPECT_TRUE(c.probe(2));
  c.erase(2);
  EXPECT_FALSE(c.probe(2));
}

TEST(McdramCache, WriteBackFills) {
  McdramCache c(kLineBytes * 16);
  c.write_back(9);
  EXPECT_TRUE(c.probe(9));
}

TEST(McdramCache, ClearEmpties) {
  McdramCache c(kLineBytes * 16);
  c.access(1);
  c.access(2);
  c.clear();
  EXPECT_EQ(c.resident_lines(), 0u);
}

TEST(McdramCache, AccessWhenDisabledThrows) {
  McdramCache c(0);
  EXPECT_THROW(c.access(1), CheckError);
}

}  // namespace
}  // namespace capmem::sim
