#include <gtest/gtest.h>

#include "bench/measurement.hpp"

namespace capmem::bench {
namespace {

TEST(SampleVec, CollectsAndSummarizes) {
  SampleVec v;
  for (double x : {3.0, 1.0, 2.0}) v.add(x);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.median(), 2.0);
  EXPECT_DOUBLE_EQ(v.max(), 3.0);
  EXPECT_EQ(v.summary().n, 3u);
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_DOUBLE_EQ(v.max(), 0.0);
}

TEST(Series, AccumulatesPoints) {
  Series s;
  s.name = "t";
  Summary y;
  y.median = 5;
  s.add(1.0, y);
  s.add(2.0, y);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.xs[1], 2.0);
  EXPECT_DOUBLE_EQ(s.ys[0].median, 5.0);
}

TEST(RunOpts, PaperDefaultsDocumented) {
  const RunOpts r;
  EXPECT_GE(r.iters, 51);  // enough for stable medians on the simulator
  EXPECT_EQ(r.seed, 1u);
}

}  // namespace
}  // namespace capmem::bench
