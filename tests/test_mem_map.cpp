#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/mem_map.hpp"

namespace capmem::sim {
namespace {

struct Ctx2 {
  MachineConfig cfg;
  Topology topo;
  MemMap map;
  explicit Ctx2(MachineConfig c) : cfg(std::move(c)), topo(cfg), map(cfg, topo) {}
};

TEST(MemMap, KindFollowsPlacementInFlatMode) {
  Ctx2 c(knl7210(ClusterMode::kQuadrant, MemoryMode::kFlat));
  EXPECT_EQ(c.map.target(123, {MemKind::kDDR, std::nullopt}).kind,
            MemKind::kDDR);
  EXPECT_EQ(c.map.target(123, {MemKind::kMCDRAM, std::nullopt}).kind,
            MemKind::kMCDRAM);
}

TEST(MemMap, CacheModeAlwaysDdrBacked) {
  Ctx2 c(knl7210(ClusterMode::kQuadrant, MemoryMode::kCache));
  EXPECT_EQ(c.map.target(55, {MemKind::kDDR, std::nullopt}).kind,
            MemKind::kDDR);
  EXPECT_THROW(c.map.target(55, {MemKind::kMCDRAM, std::nullopt}),
               CheckError);
}

TEST(MemMap, ChannelsRoughlyUniformInUmaModes) {
  Ctx2 c(knl7210(ClusterMode::kA2A, MemoryMode::kFlat));
  std::map<int, int> hist;
  const int n = 60000;
  for (Line l = 0; l < n; ++l)
    hist[c.map.target(l, {MemKind::kDDR, std::nullopt}).channel]++;
  EXPECT_EQ(static_cast<int>(hist.size()), c.cfg.dram_channels());
  for (const auto& [ch, cnt] : hist) {
    (void)ch;
    EXPECT_NEAR(cnt, n / c.cfg.dram_channels(), n / c.cfg.dram_channels() * 0.1);
  }
}

TEST(MemMap, A2AHomesSpreadOverAllTiles) {
  Ctx2 c(knl7210(ClusterMode::kA2A, MemoryMode::kFlat));
  std::map<int, int> homes;
  for (Line l = 0; l < 32000; ++l)
    homes[c.map.target(l, {}).home_tile]++;
  EXPECT_EQ(static_cast<int>(homes.size()), c.cfg.active_tiles);
}

TEST(MemMap, QuadrantHomesResideInMemoryStopQuadrant) {
  Ctx2 c(knl7210(ClusterMode::kQuadrant, MemoryMode::kFlat));
  for (Line l = 0; l < 4000; ++l) {
    const MemTarget t = c.map.target(l, {MemKind::kMCDRAM, std::nullopt});
    const int stop_dom =
        (t.mem_stop.col >= (c.cfg.mesh_cols + 1) / 2 ? 2 : 0) +
        (t.mem_stop.row >= (c.cfg.mesh_rows + 1) / 2 ? 1 : 0);
    EXPECT_EQ(c.topo.quadrant_of_tile(t.home_tile), stop_dom);
  }
}

TEST(MemMap, OpaqueDirectoryHidesDomainAffinity) {
  // Kommrusch-style opaque directory: home CHAs hash over every active
  // tile even in quadrant mode, so homes must spread across all tiles and
  // escape the memory stop's quadrant for some lines.
  MachineConfig cfg = knl7210(ClusterMode::kQuadrant, MemoryMode::kFlat);
  cfg.opaque_directory = true;
  Ctx2 c(std::move(cfg));
  std::map<int, int> homes;
  bool escaped = false;
  for (Line l = 0; l < 32000; ++l) {
    const MemTarget t = c.map.target(l, {MemKind::kMCDRAM, std::nullopt});
    homes[t.home_tile]++;
    const int stop_dom =
        (t.mem_stop.col >= (c.cfg.mesh_cols + 1) / 2 ? 2 : 0) +
        (t.mem_stop.row >= (c.cfg.mesh_rows + 1) / 2 ? 1 : 0);
    if (c.topo.quadrant_of_tile(t.home_tile) != stop_dom) escaped = true;
  }
  EXPECT_EQ(static_cast<int>(homes.size()), c.cfg.active_tiles);
  EXPECT_TRUE(escaped);
}

TEST(MemMap, Snc4DomainPlacementUsesClosestImcChannels) {
  Ctx2 c(knl7210(ClusterMode::kSNC4, MemoryMode::kFlat));
  const int per = c.cfg.dram_channels_per_controller;
  for (int dom = 0; dom < 4; ++dom) {
    const int imc = c.topo.closest_imc(dom);
    for (Line l = 0; l < 2000; ++l) {
      const MemTarget t =
          c.map.target(l, {MemKind::kDDR, std::optional<int>(dom)});
      EXPECT_GE(t.channel, imc * per);
      EXPECT_LT(t.channel, (imc + 1) * per);
    }
  }
}

TEST(MemMap, Snc4McdramDomainPlacementStaysInDomainEdcs) {
  Ctx2 c(knl7210(ClusterMode::kSNC4, MemoryMode::kFlat));
  for (int dom = 0; dom < 4; ++dom) {
    const auto edcs = c.topo.edcs_of_domain(ClusterMode::kSNC4, dom);
    for (Line l = 0; l < 2000; ++l) {
      const MemTarget t =
          c.map.target(l, {MemKind::kMCDRAM, std::optional<int>(dom)});
      EXPECT_NE(std::find(edcs.begin(), edcs.end(), t.channel), edcs.end());
    }
  }
}

TEST(MemMap, InterleavedPlacementUsesAllChannelsInSnc) {
  Ctx2 c(knl7210(ClusterMode::kSNC4, MemoryMode::kFlat));
  std::map<int, int> hist;
  for (Line l = 0; l < 30000; ++l)
    hist[c.map.target(l, {MemKind::kDDR, std::nullopt}).channel]++;
  EXPECT_EQ(static_cast<int>(hist.size()), c.cfg.dram_channels());
}

TEST(MemMap, DeterministicPureFunction) {
  Ctx2 c(knl7210(ClusterMode::kSNC2, MemoryMode::kFlat));
  for (Line l = 0; l < 100; ++l) {
    const MemTarget a = c.map.target(l, {});
    const MemTarget b = c.map.target(l, {});
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.home_tile, b.home_tile);
    EXPECT_EQ(a.kind, b.kind);
  }
}

TEST(MemMap, HemisphereHomesMatchStopHalf) {
  Ctx2 c(knl7210(ClusterMode::kHemisphere, MemoryMode::kFlat));
  for (Line l = 0; l < 4000; ++l) {
    const MemTarget t = c.map.target(l, {MemKind::kMCDRAM, std::nullopt});
    const int stop_half = t.mem_stop.col >= (c.cfg.mesh_cols + 1) / 2 ? 1 : 0;
    EXPECT_EQ(c.topo.domain_of_tile(t.home_tile, ClusterMode::kSNC2),
              stop_half);
  }
}

}  // namespace
}  // namespace capmem::sim
