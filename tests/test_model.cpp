// Tests of the capability-model layer: parameter fitting closes the loop
// with the simulator's configured ground truth, serialization round-trips,
// and both optimizers are exactly optimal against brute force.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "common/check.hpp"
#include "model/collective_model.hpp"
#include "model/dissemination_opt.hpp"
#include "model/fit.hpp"
#include "model/params.hpp"
#include "model/tree_opt.hpp"

namespace capmem::model {
namespace {

using sim::knl7210;
using sim::MachineConfig;
using sim::MemKind;

// One shared fitted model for the whole file (fitting costs ~1 s).
const CapabilityModel& fitted() {
  static const CapabilityModel m = [] {
    bench::SuiteOptions o;
    o.run.iters = 21;
    o.remote_samples = 3;
    return fit_cache_model(knl7210(), o);
  }();
  return m;
}

TEST(Fit, RecoversConfiguredGroundTruth) {
  // The round-trip property: measure -> fit lands near the simulator's
  // (hidden) calibration constants. The fit layer never reads them.
  const MachineConfig cfg = knl7210();
  const CapabilityModel& m = fitted();
  EXPECT_NEAR(m.r_local, cfg.lat.l1_hit, 0.5);
  EXPECT_NEAR(m.r_tile, cfg.lat.l2_tile_m, 2.0);
  EXPECT_NEAR(m.r_l2, cfg.lat.l2_tile_e, 2.0);
  EXPECT_NEAR(m.r_remote, cfg.lat.remote_base + 20, 15.0);
  EXPECT_NEAR(m.r_mem_dram, cfg.lat.dram_service + 13, 12.0);
  EXPECT_NEAR(m.r_mem_mcdram, cfg.lat.mcdram_service + 13, 12.0);
  EXPECT_GT(m.contention.beta, 20.0);
  EXPECT_LT(m.contention.beta, 50.0);
  EXPECT_GT(m.contention.r2, 0.95);
}

TEST(Params, SaveLoadRoundTrip) {
  const CapabilityModel& m = fitted();
  std::stringstream ss;
  m.save(ss);
  const CapabilityModel back = CapabilityModel::load(ss);
  EXPECT_TRUE(back == m);
}

TEST(Params, LoadRejectsMissingKeys) {
  std::stringstream ss;
  ss << "cluster QUAD\nmemory flat\nr_local 3.8\n";
  EXPECT_THROW(CapabilityModel::load(ss), CheckError);
}

TEST(Params, ContentionClampedBelowByRemote) {
  CapabilityModel m;
  m.r_remote = 100;
  m.contention.alpha = 10;
  m.contention.beta = 5;
  EXPECT_DOUBLE_EQ(m.t_contention(1), 100.0);   // clamp
  EXPECT_DOUBLE_EQ(m.t_contention(50), 260.0);  // linear law
}

TEST(BandwidthLaw, RampThenCap) {
  BandwidthLaw law{5.0, 80.0};
  EXPECT_DOUBLE_EQ(law.at_threads(1), 5.0);
  EXPECT_DOUBLE_EQ(law.at_threads(8), 40.0);
  EXPECT_DOUBLE_EQ(law.at_threads(64), 80.0);
  BandwidthLaw uncapped{5.0, 0.0};
  EXPECT_DOUBLE_EQ(uncapped.at_threads(64), 320.0);
}

// --- tree optimizer ---

// Brute force: exact minimum of Eq. 1 over all fanouts/partitions (with
// balanced splits, which is optimal given monotonicity).
double brute_tree(const CapabilityModel& m, int n, TreeKind kind,
                  MemKind buf) {
  if (n <= 1) return 0.0;
  double best = -1;
  for (int k = 1; k <= n - 1; ++k) {
    const int largest = (n - 1 + k - 1) / k;
    const double c =
        level_cost(m, kind, k, buf) + brute_tree(m, largest, kind, buf);
    if (best < 0 || c < best) best = c;
  }
  return best;
}

TEST(TreeOpt, MatchesBruteForce) {
  const CapabilityModel& m = fitted();
  for (int n : {2, 3, 5, 8, 13, 21, 32}) {
    const TunedTree t = optimize_tree(m, n, TreeKind::kBroadcast,
                                      MemKind::kMCDRAM);
    EXPECT_NEAR(t.predicted_ns,
                brute_tree(m, n, TreeKind::kBroadcast, MemKind::kMCDRAM),
                1e-6)
        << "n=" << n;
  }
}

TEST(TreeOpt, TreeCoversExactlyNNodes) {
  const CapabilityModel& m = fitted();
  for (int n = 1; n <= 40; ++n) {
    const TunedTree t =
        optimize_tree(m, n, TreeKind::kReduce, MemKind::kDDR);
    EXPECT_EQ(tree_nodes(t.root), n);
  }
}

TEST(TreeOpt, CostEvaluationMatchesPrediction) {
  const CapabilityModel& m = fitted();
  const TunedTree t =
      optimize_tree(m, 32, TreeKind::kBroadcast, MemKind::kMCDRAM);
  EXPECT_NEAR(tree_cost(m, t.root, TreeKind::kBroadcast, MemKind::kMCDRAM),
              t.predicted_ns, 1e-6);
}

TEST(TreeOpt, WorstAtLeastBest) {
  const CapabilityModel& m = fitted();
  const TunedTree t =
      optimize_tree(m, 32, TreeKind::kBroadcast, MemKind::kMCDRAM);
  EXPECT_GE(tree_cost(m, t.root, TreeKind::kBroadcast, MemKind::kMCDRAM,
                      /*worst=*/true),
            t.predicted_ns);
}

TEST(TreeOpt, CostMonotoneInSize) {
  const CapabilityModel& m = fitted();
  double prev = -1;
  for (int n = 1; n <= 38; ++n) {
    const double c =
        optimize_tree(m, n, TreeKind::kBroadcast, MemKind::kMCDRAM)
            .predicted_ns;
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(TreeOpt, HighContentionFlattensFanout) {
  CapabilityModel cheap = fitted();
  cheap.contention.beta = 0.0;
  cheap.contention.alpha = 0.0;
  CapabilityModel pricey = fitted();
  pricey.contention.beta *= 10.0;
  const int k_cheap =
      optimize_tree(cheap, 32, TreeKind::kBroadcast, MemKind::kMCDRAM)
          .root.fanout();
  const int k_pricey =
      optimize_tree(pricey, 32, TreeKind::kBroadcast, MemKind::kMCDRAM)
          .root.fanout();
  EXPECT_GE(k_cheap, k_pricey);  // contention punishes wide fan-out
}

TEST(TreeOpt, SingleNodeTreeIsFree) {
  const TunedTree t =
      optimize_tree(fitted(), 1, TreeKind::kBroadcast, MemKind::kDDR);
  EXPECT_DOUBLE_EQ(t.predicted_ns, 0.0);
  EXPECT_EQ(t.root.fanout(), 0);
}

TEST(TreeOpt, RenderContainsAllNodes) {
  const TunedTree t =
      optimize_tree(fitted(), 12, TreeKind::kReduce, MemKind::kDDR);
  const std::string s = render_tree(t.root);
  EXPECT_NE(s.find("11"), std::string::npos);  // last preorder id
  EXPECT_NE(s.find("(k="), std::string::npos);
}

// --- dissemination optimizer ---

TEST(DissOpt, RoundsFormula) {
  EXPECT_EQ(dissemination_rounds(1, 1), 0);
  EXPECT_EQ(dissemination_rounds(2, 1), 1);
  EXPECT_EQ(dissemination_rounds(64, 1), 6);
  EXPECT_EQ(dissemination_rounds(64, 3), 3);
  EXPECT_EQ(dissemination_rounds(65, 3), 4);
  EXPECT_EQ(dissemination_rounds(256, 3), 4);
}

TEST(DissOpt, MatchesBruteForce) {
  const CapabilityModel& m = fitted();
  for (int n : {2, 7, 16, 64, 200}) {
    const TunedDissemination d =
        optimize_dissemination(m, n, MemKind::kMCDRAM);
    double best = 1e18;
    for (int mm = 1; mm <= n - 1; ++mm) {
      best = std::min(best, dissemination_cost(m, n, mm, MemKind::kMCDRAM));
    }
    EXPECT_NEAR(d.predicted_ns, best, 1e-9) << n;
    EXPECT_EQ(d.rounds, dissemination_rounds(n, d.m));
  }
}

TEST(DissOpt, ReachabilityConstraintHolds) {
  const CapabilityModel& m = fitted();
  for (int n : {2, 5, 64, 256}) {
    const TunedDissemination d =
        optimize_dissemination(m, n, MemKind::kMCDRAM);
    double reach = 1;
    for (int j = 0; j < d.rounds; ++j) reach *= (d.m + 1);
    EXPECT_GE(reach, n);
  }
}

TEST(DissOpt, WorstAtLeastBest) {
  const CapabilityModel& m = fitted();
  const TunedDissemination d = optimize_dissemination(m, 64, MemKind::kDDR);
  EXPECT_GE(dissemination_cost_worst(m, 64, d.m, MemKind::kDDR),
            d.predicted_ns);
}

// --- collective model composition ---

TEST(CollectiveModel, LayoutScatterVsFill) {
  const ThreadLayout sc = layout_for(8, 32, 8, /*scatter=*/true);
  EXPECT_EQ(sc.tiles, 8);
  EXPECT_EQ(sc.threads_per_tile, 1);
  const ThreadLayout fl = layout_for(8, 32, 8, /*scatter=*/false);
  EXPECT_EQ(fl.tiles, 1);
  EXPECT_EQ(fl.threads_per_tile, 8);
}

TEST(CollectiveModel, BandsAreOrdered) {
  const CapabilityModel& m = fitted();
  const ThreadLayout lay = layout_for(64, 32, 8, true);
  for (const CostBand& band :
       {broadcast_band(m, lay, MemKind::kMCDRAM),
        reduce_band(m, lay, MemKind::kMCDRAM),
        barrier_band(m, lay, MemKind::kMCDRAM)}) {
    EXPECT_GT(band.best_ns, 0);
    EXPECT_GE(band.worst_ns, band.best_ns);
  }
}

TEST(CollectiveModel, IntraTileCostGrowsWithThreads) {
  const CapabilityModel& m = fitted();
  EXPECT_DOUBLE_EQ(intra_tile_cost(m, 1, TreeKind::kBroadcast), 0.0);
  EXPECT_LT(intra_tile_cost(m, 2, TreeKind::kBroadcast),
            intra_tile_cost(m, 8, TreeKind::kBroadcast));
}

}  // namespace
}  // namespace capmem::model
