// Mutation-smoke: proves the capmem::check layer has teeth.
//
// This binary links `capmem_sim_mutant` — the simulator compiled with
// CAPMEM_MUTATION_SMOKE, whose runtime switch (sim/mutation.hpp) can
// corrupt one MESIF transition — and compiles the check sources directly
// against it. The checker must report divergence exactly when an injection
// is armed: clean runs stay clean, the version-skip fault is caught by the
// oracle's version mirror, the stale-copy fault by the cross-structure
// residency sweep, and each fault is invisible to the probe that does not
// exercise its transition (selectivity).
#include <gtest/gtest.h>

#include "check/differ.hpp"
#include "sim/machine.hpp"
#include "sim/mutation.hpp"

namespace capmem::check {
namespace {

using sim::mutation::Kind;

// The switch is process-global; every test arms its own kind and the guard
// disarms on exit so ordering between tests cannot leak.
struct MutationGuard {
  explicit MutationGuard(Kind k) { sim::mutation::set(k); }
  ~MutationGuard() { sim::mutation::set(Kind::kNone); }
};

// One thread writes one line twice: the first write takes the RFO path
// (version bump ungated), the second the owned-tile silent upgrade — the
// gated injection site. Returns the checker's violation count.
std::uint64_t silent_upgrade_probe() {
  sim::MachineConfig cfg = sim::knl7210();
  Checker checker(cfg);
  cfg.check = &checker;
  sim::Machine m(cfg);
  const sim::Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = sim::make_schedule(cfg, sim::Schedule::kScatter, 1);
  m.add_thread(slots[0], [&](sim::Ctx& ctx) -> sim::Task {
    co_await ctx.write_u64(a, 1);
    co_await ctx.write_u64(a, 2);
  });
  m.run();
  checker.final_sweep(m.memsys());
  return checker.violation_count();
}

// Tile A reads a line (becomes a sharer), then a thread on another tile
// writes it: the RFO's invalidation round is where the stale-copy fault
// leaves A's L2 tag behind. Returns the checker's violation count.
std::uint64_t shared_invalidate_probe() {
  sim::MachineConfig cfg = sim::knl7210();
  Checker checker(cfg);
  cfg.check = &checker;
  sim::Machine m(cfg);
  const sim::Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = sim::make_schedule(cfg, sim::Schedule::kScatter, 2);
  m.add_thread(slots[0], [&](sim::Ctx& ctx) -> sim::Task {
    co_await ctx.read_u64(a);
  });
  m.add_thread(slots[1], [&](sim::Ctx& ctx) -> sim::Task {
    co_await ctx.compute(500.0);  // let the reader finish first
    co_await ctx.write_u64(a, 7);
  });
  m.run();
  checker.final_sweep(m.memsys());
  return checker.violation_count();
}

TEST(Mutation, CleanBuildPassesBothProbes) {
  MutationGuard guard(Kind::kNone);
  EXPECT_EQ(silent_upgrade_probe(), 0u);
  EXPECT_EQ(shared_invalidate_probe(), 0u);
}

TEST(Mutation, CleanBuildPassesRandomizedDiff) {
  MutationGuard guard(Kind::kNone);
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 13;
  const DiffOutcome out = run_diff(spec);
  EXPECT_TRUE(out.ok) << out.report;
}

TEST(Mutation, OracleCatchesSkippedVersionBump) {
  MutationGuard guard(Kind::kSkipVersionBump);
  EXPECT_GT(silent_upgrade_probe(), 0u);
}

TEST(Mutation, VersionBumpFaultInvisibleToRfoOnlyProbe) {
  // The shared-invalidate probe writes each line exactly once (always the
  // ungated RFO path), so the version-skip fault must not fire there.
  MutationGuard guard(Kind::kSkipVersionBump);
  EXPECT_EQ(shared_invalidate_probe(), 0u);
}

TEST(Mutation, SweepCatchesStaleL2Copy) {
  MutationGuard guard(Kind::kStaleL2Copy);
  EXPECT_GT(shared_invalidate_probe(), 0u);
}

TEST(Mutation, StaleCopyFaultInvisibleWithoutSharers) {
  // A single-thread writer never invalidates a remote sharer, so the
  // stale-copy fault has no transition to corrupt.
  MutationGuard guard(Kind::kStaleL2Copy);
  EXPECT_EQ(silent_upgrade_probe(), 0u);
}

TEST(Mutation, DiffHarnessCatchesVersionFault) {
  MutationGuard guard(Kind::kSkipVersionBump);
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 13;  // same spec that passes clean above
  const DiffOutcome out = run_diff(spec);
  EXPECT_FALSE(out.ok);
  EXPECT_GT(out.violations, 0u);
}

TEST(Mutation, DiffHarnessCatchesStaleCopyFault) {
  MutationGuard guard(Kind::kStaleL2Copy);
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 13;
  const DiffOutcome out = run_diff(spec);
  EXPECT_FALSE(out.ok);
  EXPECT_GT(out.violations, 0u);
}

// --- protocol-specific injections (one illegal transition per protocol)
// ---
//
// Each fault corrupts a transition only its protocol performs, immediately
// before the per-transition legal-state check, so the check must throw on
// that very transition — and runs under any *other* protocol must stay
// clean, proving the rules tables are selective rather than merely strict.

WorkloadSpec protocol_spec(sim::Protocol p) {
  WorkloadSpec spec;
  spec.threads = 8;
  spec.ops_per_thread = 120;
  spec.seed = 13;
  spec.protocol = p;
  return spec;
}

TEST(Mutation, RulesCatchMesiPhantomForwarder) {
  MutationGuard guard(Kind::kMesiPhantomForwarder);
  const DiffOutcome out = run_diff(protocol_spec(sim::Protocol::kMesi));
  EXPECT_FALSE(out.ok);
  // The table check throws on the corrupting transition itself, so the
  // report carries the simulator abort, not a downstream value diff.
  EXPECT_NE(out.report.find("simulator threw"), std::string::npos)
      << out.report;
}

TEST(Mutation, PhantomForwarderInvisibleUnderMesif) {
  // MESIF legitimately designates forwarders, so the injection predicate
  // never fires on the MESIF instantiation of the transition.
  MutationGuard guard(Kind::kMesiPhantomForwarder);
  const DiffOutcome out = run_diff(protocol_spec(sim::Protocol::kMesif));
  EXPECT_TRUE(out.ok) << out.report;
}

TEST(Mutation, RulesCatchMosiLostOwner) {
  MutationGuard guard(Kind::kMosiLostOwner);
  const DiffOutcome out = run_diff(protocol_spec(sim::Protocol::kMosi));
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.report.find("simulator threw"), std::string::npos)
      << out.report;
}

TEST(Mutation, LostOwnerInvisibleUnderMesif) {
  // MESIF write-backs and downgrades on the same transition, so there is
  // no dirty-shared bookkeeping for the fault to corrupt.
  MutationGuard guard(Kind::kMosiLostOwner);
  const DiffOutcome out = run_diff(protocol_spec(sim::Protocol::kMesif));
  EXPECT_TRUE(out.ok) << out.report;
}

}  // namespace
}  // namespace capmem::check
