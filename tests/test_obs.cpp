// Observability layer: histograms, the metrics registry, Chrome trace
// output, run manifests — and the layer's central contract, that attaching
// sinks never perturbs virtual time ("sinks observe, never steer").
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/pool.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace capmem::obs {
namespace {

// --- a minimal JSON well-formedness checker ------------------------------
// Enough of RFC 8259 to reject truncated or mis-quoted documents; the CI
// smoke job additionally validates real outputs with python -m json.tool.

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;
      ++i;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '-' ||
            s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool literal(const char* lit) {
    ws();
    const std::size_t n = std::string(lit).size();
    if (s.compare(i, n, lit) != 0) return false;
    i += n;
    return true;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    ws();
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool valid_json(const std::string& doc) {
  JsonParser p{doc};
  if (!p.value()) return false;
  p.ws();
  return p.i == doc.size();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(JsonChecker, SanityOnKnownDocuments) {
  EXPECT_TRUE(valid_json(R"({"a": [1, 2.5, -3e4], "b": {"c": "x\"y"}})"));
  EXPECT_TRUE(valid_json("[true, false, null]"));
  EXPECT_FALSE(valid_json(R"({"a": 1)"));
  EXPECT_FALSE(valid_json(R"({"a" 1})"));
  EXPECT_FALSE(valid_json("[1, 2,]{"));
}

// --- Log2Hist ------------------------------------------------------------

TEST(Log2Hist, RecordsIntoPowerOfTwoBuckets) {
  Log2Hist h;
  h.record(1.0);
  h.record(3.0);
  h.record(1000.0);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1004.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1004.0 / 3.0);
  // Every sample must land in a bucket whose upper edge covers it and whose
  // predecessor does not.
  std::uint64_t total = 0;
  for (int i = 0; i < Log2Hist::kBuckets; ++i) total += h.buckets[i];
  EXPECT_EQ(total, 3u);
  for (int i = 1; i < Log2Hist::kBuckets; ++i) {
    EXPECT_GT(Log2Hist::bucket_le(i), Log2Hist::bucket_le(i - 1));
  }
}

TEST(Log2Hist, ZeroAndNegativeGoToBucketZero) {
  Log2Hist h;
  h.record(0.0);
  h.record(-5.0);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.count, 2u);
}

TEST(Log2Hist, MergeIsAdditive) {
  Log2Hist a, b;
  a.record(2.0);
  a.record(64.0);
  b.record(0.5);
  b.record(1e6);
  Log2Hist m = a;
  m.merge(b);
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.sum, a.sum + b.sum);
  EXPECT_DOUBLE_EQ(m.min, 0.5);
  EXPECT_DOUBLE_EQ(m.max, 1e6);
  Log2Hist empty;
  m.merge(empty);  // merging an empty hist changes nothing
  EXPECT_EQ(m.count, 4u);
  EXPECT_DOUBLE_EQ(m.min, 0.5);
}

// --- Registry ------------------------------------------------------------

TEST(Registry, CountersGaugesHistograms) {
  Registry r;
  EXPECT_TRUE(r.empty());
  r.add("c", 2);
  r.add("c", 3);
  r.set("g", 7);
  r.record("h", 10);
  r.record("h", 20);
  EXPECT_DOUBLE_EQ(r.counter("c"), 5);
  EXPECT_TRUE(r.has_counter("c"));
  EXPECT_FALSE(r.has_counter("missing"));
  EXPECT_DOUBLE_EQ(r.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(r.gauge("g"), 7);
  EXPECT_EQ(r.hist("h").count, 2u);
  EXPECT_FALSE(r.empty());
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(Registry, DumpIsValidJson) {
  Registry r;
  r.add("sim.jobs", 4);
  r.set("exec.workers", 8);
  r.record("weird \"name\"\n", 1.5);
  std::ostringstream os;
  r.dump_json(os);
  EXPECT_TRUE(valid_json(os.str())) << os.str();
  EXPECT_NE(os.str().find("capmem.metrics.v1"), std::string::npos);
}

TEST(Registry, ProcessRegistryInstallUninstall) {
  EXPECT_EQ(process_registry(), nullptr);
  Registry r;
  set_process_registry(&r);
  EXPECT_EQ(process_registry(), &r);
  set_process_registry(nullptr);
  EXPECT_EQ(process_registry(), nullptr);
}

// --- trace categories ----------------------------------------------------

TEST(Trace, CategoryParsing) {
  EXPECT_EQ(parse_categories("all"), kCatAll);
  EXPECT_EQ(parse_categories("task"), kCatTask);
  EXPECT_EQ(parse_categories("task,channel"), kCatTask | kCatChannel);
  EXPECT_THROW(parse_categories("bogus"), CheckError);
  EXPECT_EQ(category_of(EventKind::kTaskResume), kCatTask);
  EXPECT_EQ(category_of(EventKind::kChannelXfer), kCatChannel);
  EXPECT_EQ(category_of(EventKind::kCoherence), kCatCoherence);
}

// --- RunManifest ---------------------------------------------------------

TEST(Manifest, DumpIsValidJson) {
  RunManifest m;
  m.program = "test_obs";
  m.args = {"--trace-out", "x \"quoted\".json"};
  m.config = "knl7210 SNC4/flat";
  m.seed = 42;
  m.jobs = 8;
  m.phases.push_back({"fit", 12.5});
  m.phases.push_back({"sweep", 99.0});
  std::ostringstream os;
  m.dump_json(os);
  EXPECT_TRUE(valid_json(os.str())) << os.str();
  EXPECT_NE(os.str().find("capmem.manifest.v1"), std::string::npos);
  EXPECT_NE(os.str().find("sweep"), std::string::npos);
}

// --- simulator integration -----------------------------------------------

// A small mixed workload on the tiny machine: local hits, a cross-tile
// transfer, and cold memory traffic through both pools. Returns the machine
// so tests can inspect post-run accessors.
struct Workload {
  std::unique_ptr<sim::Machine> m;
  double elapsed = 0;
};

Workload run_workload(sim::MachineConfig cfg, TraceSink* sink,
                      Registry* metrics) {
  using namespace capmem::sim;
  cfg.trace = sink;
  cfg.metrics = metrics;
  Workload w;
  w.m = std::make_unique<Machine>(cfg);
  Machine& m = *w.m;
  const Addr shared = m.alloc("shared", kLineBytes, {}, true);
  const Addr dram = m.alloc("dram", KiB(16), {MemKind::kDDR, std::nullopt});
  const Addr mcd =
      m.alloc("mcd", KiB(16), {MemKind::kMCDRAM, std::nullopt});
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(shared, 1);       // M in tile 0
    co_await ctx.read_buf(dram, KiB(16));    // DRAM channels
    co_await ctx.sync();
    co_await ctx.sync();
  });
  m.add_thread({2, 0}, [&](Ctx& ctx) -> Task {
    co_await ctx.sync();
    co_await ctx.read_u64(shared);           // remote M: coherence downgrade
    co_await ctx.write_u64(shared, 2);       // RFO: invalidation + upgrade
    co_await ctx.read_buf(mcd, KiB(16));     // MCDRAM channels
    co_await ctx.sync();
  });
  m.run();
  w.elapsed = m.elapsed();
  return w;
}

sim::MachineConfig quiet_tiny() {
  sim::MachineConfig cfg = sim::tiny_machine();
  cfg.noise.enabled = false;
  return cfg;
}

TEST(TraceIntegration, SinksObserveNeverSteer) {
  const double bare = run_workload(quiet_tiny(), nullptr, nullptr).elapsed;
  NullSink null_sink;
  const double nulled =
      run_workload(quiet_tiny(), &null_sink, nullptr).elapsed;
  const std::string path = tmp_path("steer_trace.json");
  Registry reg;
  double written = 0;
  {
    ChromeTraceWriter w(path);
    written = run_workload(quiet_tiny(), &w, &reg).elapsed;
  }
  EXPECT_DOUBLE_EQ(bare, nulled);
  EXPECT_DOUBLE_EQ(bare, written);
  std::remove(path.c_str());
}

TEST(TraceIntegration, ChromeTraceIsValidJsonWithAllEventFamilies) {
  const std::string path = tmp_path("events_trace.json");
  double elapsed = 0;
  std::uint64_t nevents = 0;
  {
    ChromeTraceWriter w(path);
    elapsed = run_workload(quiet_tiny(), &w, nullptr).elapsed;
    w.flush();
    nevents = w.events_written();
    EXPECT_EQ(w.path(), path);
  }
  EXPECT_GT(elapsed, 0.0);
  EXPECT_GT(nevents, 0u);
  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(valid_json(doc)) << doc.substr(0, 400);
  // The mixed workload must produce every major event family.
  EXPECT_NE(doc.find(R"("cat":"task")"), std::string::npos);
  EXPECT_NE(doc.find(R"("cat":"access")"), std::string::npos);
  EXPECT_NE(doc.find(R"("cat":"coherence")"), std::string::npos);
  EXPECT_NE(doc.find(R"("cat":"directory")"), std::string::npos);
  EXPECT_NE(doc.find(R"("cat":"channel")"), std::string::npos);
  EXPECT_NE(doc.find(R"("name":"sync")"), std::string::npos);
  // Track metadata names both pools.
  EXPECT_NE(doc.find("dram"), std::string::npos);
  EXPECT_NE(doc.find("mcdram"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIntegration, CategoryFilterDropsUnrequestedKinds) {
  const std::string path = tmp_path("filtered_trace.json");
  {
    ChromeTraceWriter w(path, kCatChannel);
    run_workload(quiet_tiny(), &w, nullptr);
  }
  const std::string doc = slurp(path);
  EXPECT_TRUE(valid_json(doc));
  EXPECT_NE(doc.find(R"("cat":"channel")"), std::string::npos);
  EXPECT_EQ(doc.find(R"("cat":"task")"), std::string::npos);
  EXPECT_EQ(doc.find(R"("cat":"access")"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsIntegration, FlushedRegistryCoversComponents) {
  Registry reg;
  Workload w = run_workload(quiet_tiny(), nullptr, &reg);
  sim::Machine* m = w.m.get();
  ASSERT_NE(m, nullptr);

  // Channel busy time flows into per-pool counters...
  EXPECT_GT(reg.counter("sim.dram.busy_ns"), 0.0);
  EXPECT_GT(reg.counter("sim.mcdram.busy_ns"), 0.0);
  EXPECT_GT(reg.counter("sim.dram.ch0.busy_ns"), 0.0);
  // ...and matches the Machine accessors (satellite: utilization API).
  double dram_busy = 0;
  for (int c = 0; c < m->config().dram_channels(); ++c) {
    dram_busy += m->dram_channel_busy(c);
  }
  EXPECT_DOUBLE_EQ(reg.counter("sim.dram.busy_ns"), dram_busy);
  EXPECT_GT(m->dram_utilization(), 0.0);
  EXPECT_LE(m->dram_utilization(), 1.0);
  EXPECT_GT(m->mcdram_utilization(), 0.0);
  EXPECT_GT(m->core_issue_busy(0), 0.0);
  EXPECT_GT(m->l2_supply_busy(0), 0.0);

  // Utilization histograms carry one sample per channel.
  EXPECT_EQ(reg.hist("sim.dram.channel_util").count,
            static_cast<std::uint64_t>(m->config().dram_channels()));

  // Queue-delay distributions exist per thread and in aggregate.
  EXPECT_GT(reg.hist("sim.mem.queue_delay_ns").count, 0u);
  EXPECT_GT(reg.hist("sim.mem.queue_delay_ns.tid0").count, 0u);

  // Directory and NoC activity from the coherence traffic.
  EXPECT_GT(reg.counter("sim.noc.hops"), 0.0);
  EXPECT_GT(reg.hist("sim.cha.queue_ns").count, 0u);
  bool any_home = false;
  for (int t = 0; t < 64; ++t) {
    if (reg.has_counter("sim.dir.home" + std::to_string(t) + ".requests")) {
      any_home = true;
    }
  }
  EXPECT_TRUE(any_home);

  // ThreadCounters aggregates and run header.
  EXPECT_GT(reg.counter("sim.mem.line_ops"), 0.0);
  EXPECT_DOUBLE_EQ(reg.counter("sim.machines"), 1.0);
  EXPECT_GT(reg.counter("sim.elapsed_ns"), 0.0);

  std::ostringstream os;
  reg.dump_json(os);
  EXPECT_TRUE(valid_json(os.str()));
}

TEST(MetricsIntegration, ParkTableDrainsAndPoolStaysBounded) {
  // A flag ping-pong that parks on many distinct lines over the run. The
  // end-of-run gauges must show the park table fully drained and its pool
  // sized to the peak number of concurrently parked keys — not the total
  // number of park/wake cycles (the table reclaims slots on wake-all).
  using namespace capmem::sim;
  Registry reg;
  sim::MachineConfig cfg = quiet_tiny();
  cfg.metrics = &reg;
  Machine m(cfg);
  constexpr int kRounds = 32;
  // One flag line per round: distinct wait keys throughout the run.
  const Addr flags = m.alloc("flags", kRounds * kLineBytes,
                             {MemKind::kDDR, std::nullopt}, true);
  m.add_thread({0, 0}, [&](Ctx& ctx) -> Task {
    for (int r = 0; r < kRounds; ++r) {
      co_await ctx.write_u64(flags + static_cast<Addr>(r) * kLineBytes, 1);
    }
  });
  m.add_thread({1, 0}, [&](Ctx& ctx) -> Task {
    for (int r = 0; r < kRounds; ++r) {
      co_await ctx.wait_eq(flags + static_cast<Addr>(r) * kLineBytes, 1);
    }
  });
  m.run();
  EXPECT_DOUBLE_EQ(reg.gauge("sim.engine.park.keys"), 0.0);
  // At most one key is parked at any instant here; allow a little slack for
  // the waiter overlapping adjacent rounds.
  EXPECT_LE(reg.gauge("sim.engine.park.pool_slots"), 4.0);
}

TEST(MetricsIntegration, ExecRunJobsProfilesIntoProcessRegistry) {
  Registry reg;
  set_process_registry(&reg);
  std::vector<std::function<void()>> jobs;
  std::atomic<int> ran{0};
  for (int i = 0; i < 12; ++i) jobs.push_back([&ran] { ++ran; });
  exec::run_jobs(std::move(jobs), 4);
  set_process_registry(nullptr);
  EXPECT_EQ(ran.load(), 12);
  EXPECT_DOUBLE_EQ(reg.counter("exec.jobs"), 12.0);
  EXPECT_DOUBLE_EQ(reg.counter("exec.batches"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("exec.workers"), 4.0);
  EXPECT_EQ(reg.hist("exec.job_wall_us").count, 12u);
  EXPECT_EQ(reg.hist("exec.job_queue_wait_us").count, 12u);
  EXPECT_GT(reg.hist("exec.worker_util").count, 0u);
}

TEST(MetricsIntegration, RunJobsUnprofiledWithoutRegistry) {
  ASSERT_EQ(process_registry(), nullptr);
  std::vector<std::function<void()>> jobs;
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) jobs.push_back([&ran] { ++ran; });
  exec::run_jobs(std::move(jobs), 2);  // must not crash or record anywhere
  EXPECT_EQ(ran.load(), 5);
}

}  // namespace
}  // namespace capmem::obs
