// Multi-line payload broadcast tests: data correctness across sizes,
// thread counts and tree shapes; the payload-aware optimizer's structural
// behaviour (narrowing small-message trees, flattening large-message ones).
#include <gtest/gtest.h>

#include "coll/harness.hpp"
#include "coll/payload_bcast.hpp"
#include "model/fit.hpp"

namespace capmem::coll {
namespace {

using model::CapabilityModel;
using sim::knl7210;
using sim::MachineConfig;
using sim::MemKind;
using sim::Schedule;

CapabilityModel toy_model() {
  CapabilityModel m;
  m.r_local = 4;
  m.r_tile = 34;
  m.r_remote = 118;
  m.r_mem_dram = 140;
  m.r_mem_mcdram = 167;
  m.contention.alpha = 60;
  m.contention.beta = 34;
  m.multiline.alpha = 50;
  m.multiline.beta = 9;
  m.multiline.r2 = 1;
  return m;
}

std::size_t run_payload(int nthreads, std::uint64_t bytes, bool tuned,
                        int iters = 5) {
  const MachineConfig cfg = knl7210(sim::ClusterMode::kSNC4,
                                    sim::MemoryMode::kFlat);
  sim::Machine machine(cfg);
  World w;
  w.machine = &machine;
  w.slots = sim::make_schedule(cfg, Schedule::kScatter, nthreads);
  w.place = sim::Placement{MemKind::kMCDRAM, std::nullopt};
  Recorder rec(nthreads, iters);
  if (tuned) {
    const TileGroups g = group_by_tile(w);
    const auto tree = model::optimize_tree(
        toy_model(), static_cast<int>(g.leaders.size()),
        model::TreeKind::kBroadcast, MemKind::kMCDRAM,
        static_cast<int>(lines_for(bytes)));
    TunedPayloadBroadcast impl(w, tree, bytes);
    for (int r = 0; r < nthreads; ++r) {
      machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                         impl.program(r, iters, &rec));
    }
    machine.run();
  } else {
    FlatPayloadBroadcast impl(w, bytes);
    for (int r = 0; r < nthreads; ++r) {
      machine.add_thread(w.slots[static_cast<std::size_t>(r)],
                         impl.program(r, iters, &rec));
    }
    machine.run();
  }
  return rec.errors();
}

class PayloadSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PayloadSweep, TunedDeliversCorrectly) {
  const auto [threads, bytes] = GetParam();
  EXPECT_EQ(run_payload(threads, bytes, /*tuned=*/true), 0u);
}

TEST_P(PayloadSweep, FlatDeliversCorrectly) {
  const auto [threads, bytes] = GetParam();
  EXPECT_EQ(run_payload(threads, bytes, /*tuned=*/false), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PayloadSweep,
    ::testing::Combine(::testing::Values(2, 7, 16, 64),
                       ::testing::Values(std::uint64_t{64}, KiB(1),
                                         KiB(16))),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param)) + "t_" +
             std::to_string(std::get<1>(info.param)) + "B";
    });

TEST(PayloadModel, OptimizerFlattensForLargeMessages) {
  const CapabilityModel m = toy_model();
  const auto small = model::optimize_tree(
      m, 32, model::TreeKind::kBroadcast, MemKind::kMCDRAM, 1);
  const auto large = model::optimize_tree(
      m, 32, model::TreeKind::kBroadcast, MemKind::kMCDRAM, 1024);
  EXPECT_GT(small.root.fanout(), 1);
  EXPECT_LT(small.root.fanout(), 16);  // contention-limited
  EXPECT_GT(large.root.fanout(), small.root.fanout());  // copy-parallel
  EXPECT_LT(model::tree_depth(large.root), 3);
}

TEST(PayloadModel, MessageCostFallsBackToRemote) {
  CapabilityModel m = toy_model();
  EXPECT_DOUBLE_EQ(m.r_message(1), m.r_remote);
  EXPECT_DOUBLE_EQ(m.r_message(100), 50 + 9 * 100);
  m.multiline = {};  // unfitted: fall back for any size
  EXPECT_DOUBLE_EQ(m.r_message(100), m.r_remote);
}

TEST(PayloadModel, SingleLineMatchesEq1) {
  const CapabilityModel m = toy_model();
  EXPECT_DOUBLE_EQ(
      model::level_cost(m, model::TreeKind::kBroadcast, 4,
                        MemKind::kMCDRAM, 1),
      m.r_mem_mcdram + m.r_local + m.t_contention(4) + m.r_mem_mcdram +
          4 * m.r_remote);
}

TEST(PayloadWord, DeterministicAndIterationDependent) {
  EXPECT_EQ(payload_word(3, 7), payload_word(3, 7));
  EXPECT_NE(payload_word(3, 7), payload_word(4, 7));
  EXPECT_NE(payload_word(3, 7), payload_word(3, 8));
}

}  // namespace
}  // namespace capmem::coll
