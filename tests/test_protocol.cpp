#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/coherence.hpp"
#include "sim/machine.hpp"
#include "sim/protocol.hpp"

namespace capmem::sim {
namespace {

TEST(Protocol, NamesRoundTrip) {
  for (Protocol p : all_protocols()) {
    EXPECT_EQ(parse_protocol(to_string(p)), p);
  }
  EXPECT_THROW(parse_protocol("moesi"), CheckError);
  EXPECT_THROW(parse_protocol(""), CheckError);
}

TEST(Protocol, DefaultIsMesif) {
  EXPECT_EQ(all_protocols().front(), Protocol::kMesif);
  EXPECT_EQ(MachineConfig{}.protocol, Protocol::kMesif);
}

TEST(Protocol, RulesTables) {
  const ProtocolRules& mesif = rules_of(Protocol::kMesif);
  EXPECT_TRUE(mesif.has_forward);
  EXPECT_TRUE(mesif.has_exclusive);
  EXPECT_FALSE(mesif.dirty_shared);

  const ProtocolRules& mesi = rules_of(Protocol::kMesi);
  EXPECT_FALSE(mesi.has_forward);
  EXPECT_TRUE(mesi.has_exclusive);
  EXPECT_FALSE(mesi.dirty_shared);

  const ProtocolRules& mosi = rules_of(Protocol::kMosi);
  EXPECT_FALSE(mosi.has_forward);
  EXPECT_FALSE(mosi.has_exclusive);
  EXPECT_TRUE(mosi.dirty_shared);
}

TEST(Protocol, RulesAreStable) {
  // rules_of returns long-lived references the Directory may hold.
  EXPECT_EQ(&rules_of(Protocol::kMosi), &rules_of(Protocol::kMosi));
}

LineEntry dirty_shared_entry() {
  LineEntry e;
  e.owner = 2;
  e.dirty = true;
  e.l2_mask = (1ull << 2) | (1ull << 5);  // owner + one sharer
  return e;
}

TEST(Protocol, MosiPermitsDirtySharing) {
  const LineEntry e = dirty_shared_entry();
  EXPECT_NO_THROW(Directory::check_entry(e, rules_of(Protocol::kMosi)));
  // The same entry is illegal under the single-copy-ownership protocols.
  EXPECT_THROW(Directory::check_entry(e), CheckError);
  EXPECT_THROW(Directory::check_entry(e, rules_of(Protocol::kMesi)),
               CheckError);
}

TEST(Protocol, MesiForbidsForwarder) {
  LineEntry e;
  e.l2_mask = 1ull << 3;
  e.forward = 3;
  EXPECT_NO_THROW(Directory::check_entry(e));  // legal F under MESIF
  EXPECT_THROW(Directory::check_entry(e, rules_of(Protocol::kMesi)),
               CheckError);
  EXPECT_THROW(Directory::check_entry(e, rules_of(Protocol::kMosi)),
               CheckError);
}

TEST(Protocol, MosiForbidsCleanOwnership) {
  LineEntry e;
  e.owner = 1;
  e.dirty = false;  // E-state bookkeeping MOSI does not have
  e.l2_mask = 1ull << 1;
  EXPECT_NO_THROW(Directory::check_entry(e));
  EXPECT_THROW(Directory::check_entry(e, rules_of(Protocol::kMosi)),
               CheckError);
}

TEST(Protocol, StateInTileReportsOwned) {
  const LineEntry e = dirty_shared_entry();
  EXPECT_EQ(Directory::state_in_tile(e, 2), TileState::kO);
  EXPECT_EQ(Directory::state_in_tile(e, 5), TileState::kS);
  LineEntry sole = e;
  sole.l2_mask = 1ull << 2;
  EXPECT_EQ(Directory::state_in_tile(sole, 2), TileState::kM);
}

// Shared-read pattern under every protocol: writer makes the line dirty,
// two remote readers pull it, writer reclaims it. Runs on the tiny preset
// with the per-transition table check live on every transition.
void run_share_pattern(Protocol p) {
  MachineConfig cfg = machine_preset("tiny_8t");
  cfg.protocol = p;
  Machine m(cfg);
  const Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = make_schedule(cfg, Schedule::kScatter, 3);
  m.add_thread(slots[0], [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(a, 41);
    co_await ctx.compute(4000.0);
    co_await ctx.write_u64(a, 42);
  });
  for (int r = 1; r <= 2; ++r) {
    m.add_thread(slots[static_cast<std::size_t>(r)],
                 [&, r](Ctx& ctx) -> Task {
      co_await ctx.compute(500.0 * r);
      co_await ctx.read_u64(a);
      co_await ctx.read_u64(a);
    });
  }
  m.run();
  m.memsys().directory().check_all();
  EXPECT_EQ(m.space().load<std::uint64_t>(a), 42u);
}

TEST(Protocol, SharePatternLegalUnderEveryProtocol) {
  for (Protocol p : all_protocols()) {
    SCOPED_TRACE(to_string(p));
    run_share_pattern(p);
  }
}

// MOSI semantics: a read from a remote modified line leaves the owner
// intact (O) with the requester as sharer, and no write-back happens.
TEST(Protocol, MosiReadKeepsDirtyOwner) {
  MachineConfig cfg = machine_preset("tiny_8t");
  cfg.protocol = Protocol::kMosi;
  Machine m(cfg);
  const Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = make_schedule(cfg, Schedule::kScatter, 2);
  int writer_tile = -1;
  m.add_thread(slots[0], [&](Ctx& ctx) -> Task {
    writer_tile = ctx.machine().memsys().tile_of_core(slots[0].core);
    co_await ctx.write_u64(a, 9);
  });
  m.add_thread(slots[1], [&](Ctx& ctx) -> Task {
    co_await ctx.compute(800.0);
    co_await ctx.read_u64(a);
  });
  m.run();
  const Line line = line_of(a);
  const LineEntry* e = m.memsys().directory().find(line);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, writer_tile);
  EXPECT_TRUE(e->dirty);
  EXPECT_EQ(e->forward, -1);
  EXPECT_EQ(Directory::state_in_tile(*e, writer_tile), TileState::kO);
  std::uint64_t writebacks = 0;
  for (int t = 0; t < 2; ++t) writebacks += m.memsys().counters(t).writebacks;
  EXPECT_EQ(writebacks, 0u);
}

// MESIF semantics on the same pattern: the owner is downgraded, the dirty
// data written back, and the requester becomes the forwarder.
TEST(Protocol, MesifReadDowngradesOwner) {
  MachineConfig cfg = machine_preset("tiny_8t");
  Machine m(cfg);
  const Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = make_schedule(cfg, Schedule::kScatter, 2);
  int reader_tile = -1;
  m.add_thread(slots[0], [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(a, 9);
  });
  m.add_thread(slots[1], [&](Ctx& ctx) -> Task {
    reader_tile = ctx.machine().memsys().tile_of_core(slots[1].core);
    co_await ctx.compute(800.0);
    co_await ctx.read_u64(a);
  });
  m.run();
  const LineEntry* e = m.memsys().directory().find(line_of(a));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, -1);
  EXPECT_FALSE(e->dirty);
  EXPECT_EQ(e->forward, reader_tile);
}

// MESI semantics: same downgrade and write-back as MESIF, but nobody
// becomes a forwarder — the next shared read is served by memory.
TEST(Protocol, MesiReadLeavesNoForwarder) {
  MachineConfig cfg = machine_preset("tiny_8t");
  cfg.protocol = Protocol::kMesi;
  Machine m(cfg);
  const Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = make_schedule(cfg, Schedule::kScatter, 2);
  m.add_thread(slots[0], [&](Ctx& ctx) -> Task {
    co_await ctx.write_u64(a, 9);
  });
  m.add_thread(slots[1], [&](Ctx& ctx) -> Task {
    co_await ctx.compute(800.0);
    co_await ctx.read_u64(a);
  });
  m.run();
  const LineEntry* e = m.memsys().directory().find(line_of(a));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, -1);
  EXPECT_EQ(e->forward, -1);
}

// MOSI installs plain Shared on a cold read miss (no E state), so a
// subsequent write from the same tile still runs the upgrade round.
TEST(Protocol, MosiColdReadInstallsShared) {
  MachineConfig cfg = machine_preset("tiny_8t");
  cfg.protocol = Protocol::kMosi;
  Machine m(cfg);
  const Addr a = m.alloc("x", kLineBytes, {}, true);
  const auto slots = make_schedule(cfg, Schedule::kScatter, 1);
  m.add_thread(slots[0], [&](Ctx& ctx) -> Task {
    co_await ctx.read_u64(a);
  });
  m.run();
  const LineEntry* e = m.memsys().directory().find(line_of(a));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, -1);
  EXPECT_NE(e->l2_mask, 0u);
}

}  // namespace
}  // namespace capmem::sim
