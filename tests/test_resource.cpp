#include <gtest/gtest.h>

#include "sim/resource.hpp"

namespace capmem::sim {
namespace {

TEST(Reservation, UncontendedStartsImmediately) {
  Reservation r;
  EXPECT_DOUBLE_EQ(r.acquire(10.0, 5.0), 10.0);
  EXPECT_DOUBLE_EQ(r.available(), 15.0);
}

TEST(Reservation, BackToBackQueues) {
  Reservation r;
  r.acquire(0.0, 10.0);
  EXPECT_DOUBLE_EQ(r.acquire(3.0, 10.0), 10.0);  // waits for first
  EXPECT_DOUBLE_EQ(r.acquire(50.0, 10.0), 50.0);  // idle gap: immediate
}

TEST(Reservation, BusyAccumulates) {
  Reservation r;
  r.acquire(0.0, 4.0);
  r.acquire(0.0, 6.0);
  EXPECT_DOUBLE_EQ(r.busy(), 10.0);
  r.reset();
  EXPECT_DOUBLE_EQ(r.busy(), 0.0);
  EXPECT_DOUBLE_EQ(r.available(), 0.0);
}

TEST(ChannelPool, TransferTimeMatchesRate) {
  ChannelPool p(2, 10.0);  // 10 GB/s = 10 bytes/ns
  EXPECT_DOUBLE_EQ(p.transfer(0, 0.0, 640.0), 64.0);
  // Second transfer on same channel queues; other channel is free.
  EXPECT_DOUBLE_EQ(p.transfer(0, 0.0, 640.0), 128.0);
  EXPECT_DOUBLE_EQ(p.transfer(1, 0.0, 640.0), 64.0);
}

TEST(ChannelPool, RateFactorSlowsTransfer) {
  ChannelPool p(1, 10.0);
  EXPECT_DOUBLE_EQ(p.transfer(0, 0.0, 100.0, 0.5), 20.0);
}

TEST(ChannelPool, InvalidConfigThrows) {
  EXPECT_THROW(ChannelPool(0, 10.0), CheckError);
  EXPECT_THROW(ChannelPool(2, 0.0), CheckError);
}

TEST(ChannelPool, OutOfRangeChannelThrows) {
  ChannelPool p(2, 1.0);
  EXPECT_THROW(p.transfer(2, 0.0, 1.0), std::out_of_range);
}

TEST(ChannelPool, AggregateBandwidthProperty) {
  // Saturating both channels: total bytes / makespan == 2x rate.
  ChannelPool p(2, 5.0);
  double end = 0;
  for (int i = 0; i < 100; ++i) {
    end = std::max(end, p.transfer(i % 2, 0.0, 64.0));
  }
  const double gbps = 100 * 64.0 / end;
  EXPECT_NEAR(gbps, 10.0, 0.2);
}

}  // namespace
}  // namespace capmem::sim
