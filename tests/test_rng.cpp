#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace capmem {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(7), 7u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(11);
  std::vector<int> hist(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) hist[r.next_below(8)]++;
  for (int h : hist) EXPECT_NEAR(h, n / 8, n / 8 * 0.1);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng r(6);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalFactorHasMedianOne) {
  Rng r(8);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) v.push_back(r.lognormal_factor(0.1));
  std::nth_element(v.begin(), v.begin() + 10000, v.end());
  EXPECT_NEAR(v[10000], 1.0, 0.01);
}

TEST(Rng, ReseedResets) {
  Rng r(5);
  const std::uint64_t first = r.next_u64();
  r.next_u64();
  r.reseed(5);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace capmem
