// Sort application tests: bitonic network properties (exhaustive-ish),
// timed merge correctness, and the full parallel sort across sizes,
// threads, schedules and memory kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.hpp"
#include "sim/machine.hpp"
#include "sort/bitonic_net.hpp"
#include "sort/merge.hpp"
#include "sort/parallel_sort.hpp"

namespace capmem::sort {
namespace {

using sim::knl7210;
using sim::MachineConfig;
using sim::MemKind;

Vec16 random_vec(Rng& rng) {
  Vec16 v;
  for (auto& x : v) x = static_cast<std::int32_t>(rng.next_u64());
  return v;
}

TEST(Bitonic, Sort16SortsRandomVectors) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    Vec16 v = random_vec(rng);
    Vec16 ref = v;
    sort16(v);
    std::sort(ref.begin(), ref.end());
    EXPECT_EQ(v, ref);
  }
}

TEST(Bitonic, Sort16ZeroOnePrinciple) {
  // A comparison network sorts everything iff it sorts all 0/1 inputs:
  // check all 65536 of them.
  for (int mask = 0; mask < (1 << 16); ++mask) {
    Vec16 v;
    for (int i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    sort16(v);
    for (int i = 1; i < 16; ++i) {
      ASSERT_LE(v[static_cast<std::size_t>(i - 1)],
                v[static_cast<std::size_t>(i)])
          << "mask=" << mask;
    }
  }
}

TEST(Bitonic, Merge16MergesSortedVectors) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    Vec16 a = random_vec(rng);
    Vec16 b = random_vec(rng);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::array<std::int32_t, 32> ref;
    std::merge(a.begin(), a.end(), b.begin(), b.end(), ref.begin());
    merge16(a, b);
    for (int k = 0; k < 16; ++k) {
      ASSERT_EQ(a[static_cast<std::size_t>(k)],
                ref[static_cast<std::size_t>(k)]);
      ASSERT_EQ(b[static_cast<std::size_t>(k)],
                ref[static_cast<std::size_t>(k + 16)]);
    }
  }
}

TEST(Bitonic, CostConstantsPositive) {
  EXPECT_GT(sort16_ns(), 0);
  EXPECT_GT(merge16_ns(), 0);
  EXPECT_GT(sort16_ns(), merge16_ns());  // full sort > single merge step
}

TEST(MergeOp, MergesTwoRunsOnTheMachine) {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  sim::Machine m(cfg);
  const std::uint64_t n1 = 8, n2 = 8;
  const sim::Addr a = m.alloc("a", n1 * kLineBytes, {}, true);
  const sim::Addr b = m.alloc("b", n2 * kLineBytes, {}, true);
  const sim::Addr out = m.alloc("out", (n1 + n2) * kLineBytes, {}, true);
  Rng rng(5);
  std::vector<std::int32_t> va(n1 * 16), vb(n2 * 16);
  for (auto& x : va) x = static_cast<std::int32_t>(rng.next_u64());
  for (auto& x : vb) x = static_cast<std::int32_t>(rng.next_u64());
  std::sort(va.begin(), va.end());
  std::sort(vb.begin(), vb.end());
  std::memcpy(m.space().data(a, n1 * kLineBytes), va.data(),
              n1 * kLineBytes);
  std::memcpy(m.space().data(b, n2 * kLineBytes), vb.data(),
              n2 * kLineBytes);
  double dt = 0;
  m.add_thread({0, 0}, [&](sim::Ctx& ctx) -> sim::Task {
    const Nanos t0 = ctx.now();
    co_await merge_runs(ctx, out, a, n1, b, n2);
    dt = ctx.now() - t0;
  });
  m.run();
  std::vector<std::int32_t> ref;
  ref.insert(ref.end(), va.begin(), va.end());
  ref.insert(ref.end(), vb.begin(), vb.end());
  std::sort(ref.begin(), ref.end());
  const auto* got = reinterpret_cast<const std::int32_t*>(
      m.space().data(out, (n1 + n2) * kLineBytes));
  for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(got[i], ref[i]);
  // Timing sanity: n reads + n writes at >= L1 cost plus network compute.
  EXPECT_GT(dt, (n1 + n2) * 2 * 3.0);
}

TEST(MergeOp, UnevenRunLengths) {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  sim::Machine m(cfg);
  const std::uint64_t n1 = 1, n2 = 15;
  const sim::Addr a = m.alloc("a", n1 * kLineBytes, {}, true);
  const sim::Addr b = m.alloc("b", n2 * kLineBytes, {}, true);
  const sim::Addr out = m.alloc("out", (n1 + n2) * kLineBytes, {}, true);
  auto* pa = reinterpret_cast<std::int32_t*>(m.space().data(a, n1 * 64));
  auto* pb = reinterpret_cast<std::int32_t*>(m.space().data(b, n2 * 64));
  for (std::uint64_t i = 0; i < n1 * 16; ++i)
    pa[i] = static_cast<std::int32_t>(i * 31);
  for (std::uint64_t i = 0; i < n2 * 16; ++i)
    pb[i] = static_cast<std::int32_t>(i * 2);
  m.add_thread({0, 0}, [&](sim::Ctx& ctx) -> sim::Task {
    co_await merge_runs(ctx, out, a, n1, b, n2);
  });
  m.run();
  const auto* got = reinterpret_cast<const std::int32_t*>(
      m.space().data(out, (n1 + n2) * kLineBytes));
  for (std::uint64_t i = 1; i < (n1 + n2) * 16; ++i)
    ASSERT_LE(got[i - 1], got[i]);
}

TEST(SortLines, SortsEachLineIndependently) {
  MachineConfig cfg = knl7210();
  sim::Machine m(cfg);
  const std::uint64_t lines = 4;
  const sim::Addr buf = m.alloc("b", lines * kLineBytes, {}, true);
  Rng rng(7);
  auto* p = reinterpret_cast<std::int32_t*>(
      m.space().data(buf, lines * kLineBytes));
  for (std::uint64_t i = 0; i < lines * 16; ++i)
    p[i] = static_cast<std::int32_t>(rng.next_u64());
  std::vector<std::int32_t> ref(p, p + lines * 16);
  m.add_thread({0, 0}, [&](sim::Ctx& ctx) -> sim::Task {
    co_await sort_lines(ctx, buf, lines);
  });
  m.run();
  for (std::uint64_t l = 0; l < lines; ++l) {
    std::sort(ref.begin() + static_cast<std::ptrdiff_t>(l * 16),
              ref.begin() + static_cast<std::ptrdiff_t>((l + 1) * 16));
    for (int k = 0; k < 16; ++k)
      ASSERT_EQ(p[l * 16 + static_cast<std::uint64_t>(k)],
                ref[l * 16 + static_cast<std::uint64_t>(k)]);
  }
}

struct SortCase {
  std::uint64_t bytes;
  int threads;
};

class SortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSweep, SortsCorrectly) {
  const SortCase c = GetParam();
  SortOptions o;
  o.kind = MemKind::kMCDRAM;
  const SortRun r = parallel_merge_sort(knl7210(), c.bytes, c.threads, o);
  EXPECT_TRUE(r.sorted_ok);
  EXPECT_TRUE(r.checksum_ok);
  EXPECT_GT(r.total_ns, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SortSweep,
    ::testing::Values(SortCase{64, 1}, SortCase{KiB(1), 1},
                      SortCase{KiB(1), 16}, SortCase{KiB(1), 256},
                      SortCase{KiB(16), 4}, SortCase{KiB(64), 8},
                      SortCase{KiB(256), 32}, SortCase{MiB(1), 64},
                      SortCase{MiB(1), 2}),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return std::to_string(info.param.bytes) + "B_" +
             std::to_string(info.param.threads) + "t";
    });

TEST(ParallelSort, DramAndCacheModeWork) {
  SortOptions o;
  o.kind = MemKind::kDDR;
  EXPECT_TRUE(parallel_merge_sort(knl7210(), KiB(64), 8, o).sorted_ok);
  MachineConfig cache = knl7210(sim::ClusterMode::kQuadrant,
                                sim::MemoryMode::kCache);
  cache.scale_memory(256);
  const SortRun r = parallel_merge_sort(cache, KiB(64), 8, o);
  EXPECT_TRUE(r.sorted_ok && r.checksum_ok);
}

TEST(ParallelSort, DifferentSeedsDifferentDataStillSorted) {
  for (std::uint64_t seed : {1ull, 42ull, 12345ull}) {
    SortOptions o;
    o.seed = seed;
    EXPECT_TRUE(parallel_merge_sort(knl7210(), KiB(32), 4, o).sorted_ok);
  }
}

TEST(ParallelSort, MoreThreadsHelpLargeInputs) {
  SortOptions o;
  const double t1 = parallel_merge_sort(knl7210(), MiB(1), 1, o).total_ns;
  const double t16 = parallel_merge_sort(knl7210(), MiB(1), 16, o).total_ns;
  EXPECT_GT(t1, t16 * 2.0);
}

TEST(ParallelSort, McdramDoesNotBeatDramAtScale) {
  // The paper's headline result, as a regression test.
  SortOptions d;
  d.kind = MemKind::kDDR;
  SortOptions m2;
  m2.kind = MemKind::kMCDRAM;
  const double td = parallel_merge_sort(knl7210(), MiB(4), 64, d).total_ns;
  const double tm = parallel_merge_sort(knl7210(), MiB(4), 64, m2).total_ns;
  EXPECT_LT(td / tm, 1.15);  // MCDRAM gains nothing meaningful
}

TEST(ParallelSort, RejectsBadArguments) {
  EXPECT_THROW(parallel_merge_sort(knl7210(), 100, 2, {}), CheckError);
  EXPECT_THROW(parallel_merge_sort(knl7210(), KiB(1), 3, {}), CheckError);
}

TEST(ParallelSort, DeterministicAcrossRuns) {
  SortOptions o;
  const double a = parallel_merge_sort(knl7210(), KiB(64), 8, o).total_ns;
  const double b = parallel_merge_sort(knl7210(), KiB(64), 8, o).total_ns;
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace capmem::sort
