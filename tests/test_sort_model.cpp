// Tests of the analytic sort model (Eqs. 3-5, overhead model) and of the
// advisor / roofline extensions.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "model/advisor.hpp"
#include "model/roofline.hpp"
#include "model/sort_model.hpp"

namespace capmem::model {
namespace {

using sim::MemKind;

CapabilityModel toy_model() {
  CapabilityModel m;
  m.r_local = 4.0;
  m.r_l2 = 18.0;
  m.r_tile = 34.0;
  m.r_remote = 118.0;
  m.r_mem_dram = 140.0;
  m.r_mem_mcdram = 167.0;
  m.lat_dram = 140.0;
  m.lat_mcdram = 167.0;
  m.contention.alpha = 60;
  m.contention.beta = 34;
  m.bw_dram = {4.0, 38.0};
  m.bw_mcdram = {3.7, 170.0};
  m.has_mcdram = true;
  return m;
}

SortModel toy_sort_model() { return SortModel(toy_model(), SortArch{}); }

TEST(SortModel, MoreDataCostsMore) {
  const SortModel sm = toy_sort_model();
  double prev = 0;
  for (std::uint64_t b : {KiB(1), KiB(64), MiB(1), MiB(16)}) {
    const double t = sm.predict(b, 16, MemKind::kDDR, true);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(SortModel, LatencyModelAboveBandwidthModel) {
  const SortModel sm = toy_sort_model();
  for (int n : {1, 4, 64}) {
    EXPECT_GE(sm.predict(MiB(16), n, MemKind::kDDR, false),
              sm.predict(MiB(16), n, MemKind::kDDR, true))
        << n;
  }
}

TEST(SortModel, ThreadsHelpLargeSorts) {
  const SortModel sm = toy_sort_model();
  EXPECT_GT(sm.predict(MiB(64), 1, MemKind::kDDR, true),
            sm.predict(MiB(64), 64, MemKind::kDDR, true) * 2.0);
}

TEST(SortModel, McdramDoesNotHelpBandwidthModel) {
  // The paper's headline: the sort's decaying parallelism keeps it in the
  // per-thread regime, so MCDRAM's aggregate bandwidth is unusable.
  const SortModel sm = toy_sort_model();
  const double dram = sm.predict(MiB(64), 64, MemKind::kDDR, true);
  const double mcdram = sm.predict(MiB(64), 64, MemKind::kMCDRAM, true);
  EXPECT_NEAR(mcdram / dram, 1.0, 0.35);
}

TEST(SortModel, LatencyModelPrefersDram) {
  const SortModel sm = toy_sort_model();
  EXPECT_LT(sm.predict(MiB(4), 16, MemKind::kDDR, false),
            sm.predict(MiB(4), 16, MemKind::kMCDRAM, false));
}

TEST(SortModel, OverheadFitAndFullModel) {
  SortModel sm = toy_sort_model();
  const std::vector<int> threads{1, 2, 4, 8, 16};
  std::vector<double> measured;
  for (int n : threads) {
    // Generate from the sync-free memory model (the fit's baseline) plus a
    // known linear overhead.
    measured.push_back(
        sm.predict(KiB(1), n, MemKind::kDDR, false, false) + 500.0 +
        100.0 * n);
  }
  sm.fit_overhead(threads, measured, MemKind::kDDR);
  EXPECT_NEAR(sm.overhead().beta, 100.0, 1.0);
  EXPECT_NEAR(sm.overhead().alpha, 500.0, 5.0);
  EXPECT_GT(sm.predict_full(KiB(1), 8, MemKind::kDDR, false),
            sm.predict(KiB(1), 8, MemKind::kDDR, false));
}

TEST(SortModel, OverheadFractionGrowsWithThreadsShrinksWithData) {
  SortModel sm = toy_sort_model();
  const std::vector<int> threads{1, 4, 16};
  std::vector<double> measured;
  for (int n : threads) {
    measured.push_back(sm.predict(KiB(1), n, MemKind::kDDR, false) +
                       1000.0 * n);
  }
  sm.fit_overhead(threads, measured, MemKind::kDDR);
  EXPECT_GT(sm.overhead_fraction(MiB(1), 16, MemKind::kDDR),
            sm.overhead_fraction(MiB(1), 2, MemKind::kDDR));
  EXPECT_GT(sm.overhead_fraction(MiB(1), 16, MemKind::kDDR),
            sm.overhead_fraction(MiB(64), 16, MemKind::kDDR));
}

TEST(SortModel, RejectsBadArguments) {
  const SortModel sm = toy_sort_model();
  EXPECT_THROW(sm.predict(32, 1, MemKind::kDDR, true), CheckError);
  EXPECT_THROW(sm.predict(KiB(1), 0, MemKind::kDDR, true), CheckError);
}

// --- roofline ---

TEST(Roofline, AttainableAndRidge) {
  Roofline r{1000.0, 100.0, "X"};
  EXPECT_DOUBLE_EQ(r.ridge_point(), 10.0);
  EXPECT_DOUBLE_EQ(r.attainable(1.0), 100.0);
  EXPECT_DOUBLE_EQ(r.attainable(100.0), 1000.0);
  EXPECT_TRUE(r.memory_bound(1.0));
  EXPECT_FALSE(r.memory_bound(20.0));
}

TEST(Roofline, BuiltFromModel) {
  const auto rooflines = build_rooflines(toy_model());
  ASSERT_EQ(rooflines.size(), 2u);
  EXPECT_DOUBLE_EQ(rooflines[0].mem_gbps, 38.0);
  EXPECT_DOUBLE_EQ(rooflines[1].mem_gbps, 170.0);
  EXPECT_LT(rooflines[1].ridge_point(), rooflines[0].ridge_point());
}

// --- advisor ---

TEST(Advisor, StreamingManyThreadsPrefersMcdram) {
  const Advice a = advise(toy_model(), {GiB(8), 64, 1.0, false});
  EXPECT_EQ(a.kind, MemKind::kMCDRAM);
  EXPECT_GT(a.speedup_vs_other, 1.5);
}

TEST(Advisor, LatencyBoundPrefersDram) {
  const Advice a = advise(toy_model(), {GiB(4), 16, 0.0, false});
  EXPECT_EQ(a.kind, MemKind::kDDR);
}

TEST(Advisor, ThreadDecayPrefersDram) {
  const Advice a = advise(toy_model(), {GiB(1), 64, 0.9, true});
  EXPECT_EQ(a.kind, MemKind::kDDR);
  EXPECT_NE(a.reasoning.find("decay"), std::string::npos);
}

TEST(Advisor, OversizedWorkingSetForcesDram) {
  const Advice a = advise(toy_model(), {GiB(60), 64, 1.0, false});
  EXPECT_EQ(a.kind, MemKind::kDDR);
  EXPECT_DOUBLE_EQ(a.speedup_vs_other, 1.0);
}

TEST(Advisor, CacheModeHasNoChoice) {
  CapabilityModel m = toy_model();
  m.has_mcdram = false;
  const Advice a = advise(m, {GiB(1), 64, 1.0, false});
  EXPECT_EQ(a.kind, MemKind::kDDR);
  EXPECT_NE(a.reasoning.find("cache mode"), std::string::npos);
}

TEST(Advisor, RejectsBadProfiles) {
  EXPECT_THROW(advise(toy_model(), {GiB(1), 0, 1.0, false}), CheckError);
  EXPECT_THROW(advise(toy_model(), {GiB(1), 4, 1.5, false}), CheckError);
}

}  // namespace
}  // namespace capmem::model
