#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace capmem {
namespace {

TEST(Stats, MedianOddEven) {
  std::vector<double> odd{3, 1, 2};
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpointsAndInterpolation) {
  std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 15.0);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, 1.5), CheckError);
  EXPECT_THROW(quantile(v, -0.1), CheckError);
}

TEST(Stats, MeanAndStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_NEAR(stddev(v), 2.138, 0.001);
}

TEST(Stats, EmptyInputsAreZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(median(v), 0.0);
  EXPECT_DOUBLE_EQ(mean(v), 0.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Stats, SummaryFiveNumber) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 101);
  EXPECT_DOUBLE_EQ(s.median, 51);
  EXPECT_DOUBLE_EQ(s.q1, 26);
  EXPECT_DOUBLE_EQ(s.q3, 76);
  EXPECT_DOUBLE_EQ(s.iqr(), 50);
}

TEST(Stats, MedianCiCoversTightData) {
  std::vector<double> v(1000, 100.0);
  for (std::size_t i = 0; i < 50; ++i) v[i] = 101.0;
  const Summary s = summarize(v);
  EXPECT_LE(s.median_ci_lo, s.median);
  EXPECT_GE(s.median_ci_hi, s.median);
  EXPECT_TRUE(s.median_within(0.1));  // the paper's acceptance criterion
}

TEST(Stats, MedianWithinDetectsWideCi) {
  // Bimodal data: half 1, half 100 -> median CI spans the gap.
  std::vector<double> v;
  for (int i = 0; i < 50; ++i) v.push_back(1.0);
  for (int i = 0; i < 50; ++i) v.push_back(100.0);
  const Summary s = summarize(v);
  EXPECT_FALSE(s.median_within(0.1));
}

TEST(Stats, ElementwiseMax) {
  std::vector<std::vector<double>> series{{1, 5, 2}, {3, 4, 9}, {2, 2, 2}};
  EXPECT_EQ(elementwise_max(series), (std::vector<double>{3, 5, 9}));
}

TEST(Stats, ElementwiseMaxRejectsRagged) {
  std::vector<std::vector<double>> series{{1, 2}, {1}};
  EXPECT_THROW(elementwise_max(series), CheckError);
}

TEST(Stats, SummaryStrMentionsMedianAndN) {
  std::vector<double> v{1, 2, 3};
  const std::string s = summarize(v).str();
  EXPECT_NE(s.find("2"), std::string::npos);
  EXPECT_NE(s.find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace capmem
