#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/table.hpp"

namespace capmem {
namespace {

TEST(FmtNum, TrimsTrailingZeros) {
  EXPECT_EQ(fmt_num(3.800, 3), "3.8");
  EXPECT_EQ(fmt_num(118.0, 3), "118");
  EXPECT_EQ(fmt_num(0.25, 3), "0.25");
  EXPECT_EQ(fmt_num(-0.0001, 2), "0");
}

TEST(FmtNum, HandlesNan) {
  EXPECT_EQ(fmt_num(std::nan(""), 3), "nan");
}

TEST(Table, AlignedTextOutput) {
  Table t("demo");
  t.set_header({"mode", "lat", "bw"});
  t.add_row({"SNC4", "118", "7.7"});
  t.add_row_nums("A2A", {122.0, 7.5});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("SNC4"), std::string::npos);
  EXPECT_NE(s.find("122"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvQuoting) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, RaggedRowsPadded) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace capmem
