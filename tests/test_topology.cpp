#include <gtest/gtest.h>

#include <set>

#include "sim/topology.hpp"

namespace capmem::sim {
namespace {

TEST(Topology, ActiveTileCountMatchesConfig) {
  const MachineConfig cfg = knl7210();
  Topology t(cfg);
  EXPECT_EQ(t.active_tiles(), cfg.active_tiles);
  EXPECT_EQ(t.cores(), cfg.cores());
}

TEST(Topology, TilePositionsUniqueAndInGrid) {
  const MachineConfig cfg = knl7210();
  Topology t(cfg);
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < t.active_tiles(); ++i) {
    const Coord c = t.tile_coord(i);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, cfg.mesh_rows);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, cfg.mesh_cols);
    EXPECT_TRUE(seen.insert({c.row, c.col}).second);
  }
}

TEST(Topology, HopsAreManhattanAndSymmetric) {
  Topology t(knl7210());
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(t.tile_hops(a, b), t.tile_hops(b, a));
      EXPECT_GE(t.tile_hops(a, b), 0);
    }
    EXPECT_EQ(t.tile_hops(a, a), 0);
  }
}

TEST(Topology, HopsSatisfyTriangleInequality) {
  Topology t(knl7210());
  for (int a = 0; a < 6; ++a)
    for (int b = 0; b < 6; ++b)
      for (int c = 0; c < 6; ++c)
        EXPECT_LE(t.tile_hops(a, c), t.tile_hops(a, b) + t.tile_hops(b, c));
}

TEST(Topology, DomainsPartitionTiles) {
  Topology t(knl7210());
  for (ClusterMode mode : all_cluster_modes()) {
    const int ndom = Topology::domains(mode);
    int total = 0;
    for (int d = 0; d < ndom; ++d) {
      for (int tile : t.tiles_in_domain(mode, d)) {
        EXPECT_EQ(t.domain_of_tile(tile, mode), d);
        ++total;
      }
    }
    EXPECT_EQ(total, t.active_tiles());
  }
}

TEST(Topology, QuadrantsAreBalanced) {
  Topology t(knl7210());
  for (int d = 0; d < 4; ++d) {
    const auto& tiles = t.tiles_in_domain(ClusterMode::kSNC4, d);
    EXPECT_EQ(static_cast<int>(tiles.size()), t.active_tiles() / 4);
  }
}

TEST(Topology, DomainCounts) {
  EXPECT_EQ(Topology::domains(ClusterMode::kSNC4), 4);
  EXPECT_EQ(Topology::domains(ClusterMode::kQuadrant), 4);
  EXPECT_EQ(Topology::domains(ClusterMode::kSNC2), 2);
  EXPECT_EQ(Topology::domains(ClusterMode::kHemisphere), 2);
  EXPECT_EQ(Topology::domains(ClusterMode::kA2A), 1);
}

TEST(Topology, HemisphereIsCoarseningOfQuadrants) {
  Topology t(knl7210());
  for (int tile = 0; tile < t.active_tiles(); ++tile) {
    const int q = t.domain_of_tile(tile, ClusterMode::kSNC4);
    const int h = t.domain_of_tile(tile, ClusterMode::kSNC2);
    EXPECT_EQ(h, q / 2);  // quadrant id is right*2+bottom
  }
}

TEST(Topology, ClosestImcPerQuadrant) {
  Topology t(knl7210());
  EXPECT_EQ(t.closest_imc(0), 0);
  EXPECT_EQ(t.closest_imc(1), 0);
  EXPECT_EQ(t.closest_imc(2), 1);
  EXPECT_EQ(t.closest_imc(3), 1);
}

TEST(Topology, EdcsCoverAllDomains) {
  Topology t(knl7210());
  for (ClusterMode mode : all_cluster_modes()) {
    for (int d = 0; d < Topology::domains(mode); ++d) {
      EXPECT_FALSE(t.edcs_of_domain(mode, d).empty());
    }
  }
}

TEST(Topology, DisabledTilesDifferAcrossSeeds) {
  MachineConfig a = knl7210();
  MachineConfig b = knl7210();
  b.seed = a.seed + 1;
  Topology ta(a), tb(b);
  bool any_diff = false;
  for (int i = 0; i < ta.active_tiles(); ++i) {
    if (!(ta.tile_coord(i) == tb.tile_coord(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Topology, DeterministicForSameSeed) {
  Topology a(knl7210()), b(knl7210());
  for (int i = 0; i < a.active_tiles(); ++i)
    EXPECT_TRUE(a.tile_coord(i) == b.tile_coord(i));
}

TEST(Topology, TinyMachineValid) {
  Topology t(tiny_machine());
  EXPECT_EQ(t.active_tiles(), 8);
  for (int d = 0; d < 4; ++d)
    EXPECT_FALSE(t.tiles_in_domain(ClusterMode::kSNC4, d).empty());
}

TEST(Topology, TileOfCoreMapping) {
  Topology t(knl7210());
  EXPECT_EQ(t.tile_of_core(0), 0);
  EXPECT_EQ(t.tile_of_core(1), 0);
  EXPECT_EQ(t.tile_of_core(2), 1);
  EXPECT_EQ(t.first_core_of_tile(5), 10);
}

}  // namespace
}  // namespace capmem::sim
