#include <gtest/gtest.h>

#include <set>

#include "sim/topology.hpp"

namespace capmem::sim {
namespace {

TEST(Topology, ActiveTileCountMatchesConfig) {
  const MachineConfig cfg = knl7210();
  Topology t(cfg);
  EXPECT_EQ(t.active_tiles(), cfg.active_tiles);
  EXPECT_EQ(t.cores(), cfg.cores());
}

TEST(Topology, TilePositionsUniqueAndInGrid) {
  const MachineConfig cfg = knl7210();
  Topology t(cfg);
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < t.active_tiles(); ++i) {
    const Coord c = t.tile_coord(i);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, cfg.mesh_rows);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, cfg.mesh_cols);
    EXPECT_TRUE(seen.insert({c.row, c.col}).second);
  }
}

TEST(Topology, HopsAreManhattanAndSymmetric) {
  Topology t(knl7210());
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(t.tile_hops(a, b), t.tile_hops(b, a));
      EXPECT_GE(t.tile_hops(a, b), 0);
    }
    EXPECT_EQ(t.tile_hops(a, a), 0);
  }
}

TEST(Topology, HopsSatisfyTriangleInequality) {
  Topology t(knl7210());
  for (int a = 0; a < 6; ++a)
    for (int b = 0; b < 6; ++b)
      for (int c = 0; c < 6; ++c)
        EXPECT_LE(t.tile_hops(a, c), t.tile_hops(a, b) + t.tile_hops(b, c));
}

TEST(Topology, DomainsPartitionTiles) {
  Topology t(knl7210());
  for (ClusterMode mode : all_cluster_modes()) {
    const int ndom = Topology::domains(mode);
    int total = 0;
    for (int d = 0; d < ndom; ++d) {
      for (int tile : t.tiles_in_domain(mode, d)) {
        EXPECT_EQ(t.domain_of_tile(tile, mode), d);
        ++total;
      }
    }
    EXPECT_EQ(total, t.active_tiles());
  }
}

TEST(Topology, QuadrantsAreBalanced) {
  Topology t(knl7210());
  for (int d = 0; d < 4; ++d) {
    const auto& tiles = t.tiles_in_domain(ClusterMode::kSNC4, d);
    EXPECT_EQ(static_cast<int>(tiles.size()), t.active_tiles() / 4);
  }
}

TEST(Topology, DomainCounts) {
  EXPECT_EQ(Topology::domains(ClusterMode::kSNC4), 4);
  EXPECT_EQ(Topology::domains(ClusterMode::kQuadrant), 4);
  EXPECT_EQ(Topology::domains(ClusterMode::kSNC2), 2);
  EXPECT_EQ(Topology::domains(ClusterMode::kHemisphere), 2);
  EXPECT_EQ(Topology::domains(ClusterMode::kA2A), 1);
}

TEST(Topology, HemisphereIsCoarseningOfQuadrants) {
  Topology t(knl7210());
  for (int tile = 0; tile < t.active_tiles(); ++tile) {
    const int q = t.domain_of_tile(tile, ClusterMode::kSNC4);
    const int h = t.domain_of_tile(tile, ClusterMode::kSNC2);
    EXPECT_EQ(h, q / 2);  // quadrant id is right*2+bottom
  }
}

TEST(Topology, ClosestImcPerQuadrant) {
  Topology t(knl7210());
  EXPECT_EQ(t.closest_imc(0), 0);
  EXPECT_EQ(t.closest_imc(1), 0);
  EXPECT_EQ(t.closest_imc(2), 1);
  EXPECT_EQ(t.closest_imc(3), 1);
}

TEST(Topology, EdcsCoverAllDomains) {
  Topology t(knl7210());
  for (ClusterMode mode : all_cluster_modes()) {
    for (int d = 0; d < Topology::domains(mode); ++d) {
      EXPECT_FALSE(t.edcs_of_domain(mode, d).empty());
    }
  }
}

TEST(Topology, DisabledTilesDifferAcrossSeeds) {
  MachineConfig a = knl7210();
  MachineConfig b = knl7210();
  b.seed = a.seed + 1;
  Topology ta(a), tb(b);
  bool any_diff = false;
  for (int i = 0; i < ta.active_tiles(); ++i) {
    if (!(ta.tile_coord(i) == tb.tile_coord(i))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Topology, DeterministicForSameSeed) {
  Topology a(knl7210()), b(knl7210());
  for (int i = 0; i < a.active_tiles(); ++i)
    EXPECT_TRUE(a.tile_coord(i) == b.tile_coord(i));
}

TEST(Topology, TinyMachineValid) {
  Topology t(tiny_machine());
  EXPECT_EQ(t.active_tiles(), 8);
  for (int d = 0; d < 4; ++d)
    EXPECT_FALSE(t.tiles_in_domain(ClusterMode::kSNC4, d).empty());
}

TEST(Topology, TileOfCoreMapping) {
  Topology t(knl7210());
  EXPECT_EQ(t.tile_of_core(0), 0);
  EXPECT_EQ(t.tile_of_core(1), 0);
  EXPECT_EQ(t.tile_of_core(2), 1);
  EXPECT_EQ(t.first_core_of_tile(5), 10);
}

// --- machine-factory meshes (non-6x7 geometries) ---

// Every cluster mode's domains must partition the active tiles exactly
// once, and every memory-stop query must stay in range, no matter the
// mesh's aspect ratio.
void check_mesh_invariants(const MachineConfig& cfg) {
  Topology t(cfg);
  EXPECT_EQ(t.active_tiles(), cfg.active_tiles);
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < t.active_tiles(); ++i) {
    const Coord c = t.tile_coord(i);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, cfg.mesh_rows);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, cfg.mesh_cols);
    EXPECT_TRUE(seen.insert({c.row, c.col}).second);
  }
  for (ClusterMode mode : all_cluster_modes()) {
    int total = 0;
    std::set<int> covered;
    for (int d = 0; d < Topology::domains(mode); ++d) {
      for (int tile : t.tiles_in_domain(mode, d)) {
        EXPECT_EQ(t.domain_of_tile(tile, mode), d);
        EXPECT_TRUE(covered.insert(tile).second);
        ++total;
      }
      EXPECT_FALSE(t.edcs_of_domain(mode, d).empty());
      for (int e : t.edcs_of_domain(mode, d)) {
        EXPECT_GE(e, 0);
        EXPECT_LT(e, cfg.mcdram_controllers);
      }
    }
    EXPECT_EQ(total, t.active_tiles());
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GE(t.closest_imc(q), 0);
    EXPECT_LT(t.closest_imc(q), cfg.dram_controllers);
  }
  for (int i = 0; i < cfg.dram_controllers; ++i) {
    const Coord c = t.imc_coord(i);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, cfg.mesh_rows);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, cfg.mesh_cols);
  }
  for (int e = 0; e < cfg.mcdram_controllers; ++e) {
    const Coord c = t.edc_coord(e);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, cfg.mesh_rows);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, cfg.mesh_cols);
  }
}

TEST(Topology, TallMeshPreset) { check_mesh_invariants(machine_preset("tall_24t")); }

TEST(Topology, MiniMeshPreset) { check_mesh_invariants(machine_preset("mini_16t")); }

TEST(Topology, WideMeshAtTileLimit) {
  const MachineConfig cfg = machine_preset("wide_64t");
  EXPECT_EQ(cfg.active_tiles, kMaxCoherenceTiles);
  check_mesh_invariants(cfg);
}

TEST(Topology, SingleRowDegenerateMesh) {
  // A 1-row mesh leaves two grid quadrants empty; the fallback disables
  // yield victims across the whole part instead of per quadrant, and the
  // domain partition must still cover every tile exactly once.
  MachineConfig cfg = tiny_machine();
  cfg.mesh_rows = 1;
  cfg.mesh_cols = 12;
  cfg.physical_tiles = 10;
  cfg.active_tiles = 8;
  check_mesh_invariants(cfg);
}

TEST(Topology, SpreadPlacementDistributesStops) {
  const MachineConfig cfg = machine_preset("wide_64t");
  ASSERT_EQ(cfg.stop_placement, StopPlacement::kSpread);
  Topology t(cfg);
  // IMCs sit mid-height at distinct columns; EDCs alternate between the
  // top and bottom rows.
  std::set<int> imc_cols;
  for (int i = 0; i < cfg.dram_controllers; ++i) {
    EXPECT_EQ(t.imc_coord(i).row, cfg.mesh_rows / 2);
    imc_cols.insert(t.imc_coord(i).col);
  }
  EXPECT_EQ(static_cast<int>(imc_cols.size()), cfg.dram_controllers);
  for (int e = 0; e < cfg.mcdram_controllers; ++e) {
    const int row = t.edc_coord(e).row;
    EXPECT_TRUE(row == 0 || row == cfg.mesh_rows - 1);
  }
}

}  // namespace
}  // namespace capmem::sim
