// Window-synchronized harness tests: the TSC skew calibration recovers the
// machine's (hidden) per-core offsets, and window-based measurements agree
// with the idealized engine-barrier harness.
#include <gtest/gtest.h>

#include "bench/windows.hpp"
#include "sim/machine.hpp"

namespace capmem::bench {
namespace {

using sim::knl7210;
using sim::MachineConfig;

TEST(TscSkew, CalibrationRecoversGroundTruth) {
  MachineConfig cfg = knl7210();
  cfg.noise.enabled = false;
  sim::Machine probe(cfg);  // exposes the ground-truth skews
  const std::vector<double> est = calibrate_tsc_skew(cfg, 9);
  ASSERT_EQ(static_cast<int>(est.size()), cfg.cores());
  EXPECT_DOUBLE_EQ(est[0], 0.0);
  for (int c = 1; c < cfg.cores(); c += 7) {
    const double truth = probe.tsc_skew(c) - probe.tsc_skew(0);
    // Quantization (10 ns) + forward/backward path asymmetry (the reply
    // leg includes a poll wake-up) bound the estimator error well below
    // the +/-80 ns skew range being corrected.
    EXPECT_NEAR(est[static_cast<std::size_t>(c)], truth, 60.0) << c;
  }
}

TEST(TscSkew, DeterministicPerSeed) {
  MachineConfig cfg = knl7210();
  const auto a = calibrate_tsc_skew(cfg, 5);
  const auto b = calibrate_tsc_skew(cfg, 5);
  EXPECT_EQ(a, b);
}

TEST(WindowedHarness, AgreesWithBarrierHarness) {
  MachineConfig cfg = knl7210();
  WindowOptions wo;
  wo.run.iters = 31;
  const Summary windowed =
      c2c_read_latency_windowed(cfg, /*victim=*/20, /*probe=*/0,
                                PrepState::kM, wo);
  C2COptions co;
  co.run.iters = 31;
  const Summary barrier =
      c2c_read_latency(cfg, 20, 0, PrepState::kM, co);
  EXPECT_NEAR(windowed.median, barrier.median, barrier.median * 0.10);
}

TEST(WindowedHarness, ExclusiveStateToo) {
  MachineConfig cfg = knl7210();
  WindowOptions wo;
  wo.run.iters = 21;
  const Summary m =
      c2c_read_latency_windowed(cfg, 20, 0, PrepState::kM, wo);
  const Summary e =
      c2c_read_latency_windowed(cfg, 20, 0, PrepState::kE, wo);
  EXPECT_GT(m.median, e.median);  // M pays the write-back downgrade
}

TEST(WindowedHarness, RejectsMultiPreparerStates) {
  MachineConfig cfg = knl7210();
  WindowOptions wo;
  wo.run.iters = 3;
  EXPECT_THROW(
      c2c_read_latency_windowed(cfg, 20, 0, PrepState::kS, wo),
      CheckError);
}

}  // namespace
}  // namespace capmem::bench
